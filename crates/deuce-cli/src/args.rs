//! Command-line parsing (hand-rolled; the workspace stays
//! dependency-light).

use deuce_crypto::EpochInterval;
use deuce_schemes::{SchemeConfig, SchemeKind, WordSize};
use deuce_sim::{ManifestError, RunError, ShardSpec};
use deuce_trace::Benchmark;

/// Usage text for `deuce help`.
pub const USAGE: &str = "\
deuce — write-efficient encryption simulator for non-volatile memories

USAGE:
  deuce gen     --benchmark <name> [--writes N] [--lines N] [--cores N]
                [--seed N] [--format bin|jsonl] -o <file>
  deuce stats   <trace-file>
  deuce run     (--trace <file> | --benchmark <name>) --scheme <scheme>
                [--epoch N] [--word-bytes N] [--writes N] [--lines N]
                [--cores N] [--seed N] [--telemetry <file>] [fault flags]
                [--pad-cache N] [--stream] [--checkpoint <file>]
                [--checkpoint-every N] [--from-checkpoint <file>]
                [--trace-out <file>] [--flight-recorder N]
                [--store-file <path> [--resident-pages N]]
  deuce compare (--trace <file> | --benchmark <name>) [generation flags]
                [--telemetry <file>] [fault flags] [--pad-cache N]
  deuce sweep   (--trace <file> | --benchmark <name>) [generation flags]
                [--telemetry <file>] [fault flags] [--pad-cache N]
                [--manifest <file> [--shard i/n] [--resume]]
                [--store-file <path> [--resident-pages N]]
  deuce merge   <manifest-file>...
  deuce report  <telemetry-file>
  deuce watch   <checkpoint-or-manifest-file>... [--once] [--interval-ms N]
  deuce serve   [--tenants N] [--shards N] [--requests N] [--queue-depth N]
                [--batch N] [--scheme <scheme>] [--epoch N] [--word-bytes N]
                [--benchmark <name>] [--lines N] [--seed N]
                [--telemetry <file>] [--progress <file>]
                [--flight-recorder N] [--store-dir <dir> [--resident-pages N]]
                [--replay]
  deuce aes-backend
  deuce help

STREAMING:
  gen writes the trace directly from the generator, so any --writes
  count runs in bounded memory; --format jsonl emits a line-oriented
  text dialect instead of the binary container (both stream, both are
  accepted everywhere a trace file is). run --stream drives the
  simulation from the trace source one event at a time — bit-identical
  to the materialised run at O(1) trace memory. --checkpoint <file>
  appends a progress fingerprint every --checkpoint-every writes
  (default 1000000); --from-checkpoint <file> replays the stream and
  verifies the run still matches the recorded fingerprint (a changed
  trace, config, or binary is detected, not silently absorbed).

SHARDING:
  sweep --manifest <file> records each finished grid cell as one
  flushed JSONL line; --shard i/n runs only cells with index ≡ i mod n,
  so one grid splits across processes. --resume skips cells already in
  the manifest (a killed shard re-runs only what it lost). merge checks
  the shard manifests cover the whole grid and prints the combined
  table, byte-identical to an unsharded sweep.

TELEMETRY:
  --telemetry <file> streams structured instrumentation (counters,
  histograms, a time series keyed on simulated time) to <file> as JSONL
  plus a CSV summary next to it; [--sample-every N] sets the
  time-series window (default 64 writes). `deuce report <file>` renders
  the collected telemetry as text tables.

OBSERVABILITY:
  run --trace-out <file> writes a Chrome trace-event JSON of the run's
  hierarchical spans (run -> pipeline stages -> pad generation / ECP
  repair), loadable in Perfetto or chrome://tracing; the same spans
  land as `span` records in the telemetry JSONL and as a self-time
  table in `deuce report`. run --flight-recorder N keeps a ring of the
  last N write events and dumps it to <out>.flight.jsonl when the run
  fails or goes uncorrectable. `deuce watch <file>...` tails run
  checkpoint files and sweep manifests, showing per-source progress,
  throughput, and ETA; --once prints a single snapshot and exits,
  --interval-ms sets the poll period (default 2000).

SERVING:
  serve stands up a sharded multi-tenant encrypted-memory service:
  --tenants isolated key domains (per-tenant key seed, line store, and
  counter cache), --shards worker threads each draining a bounded queue
  of --queue-depth requests. Each tenant's request stream is generated
  from --benchmark (--requests per tenant, submitted in --batch-sized
  chunks) and a full batch is rejected — never partially applied — when
  a shard queue is full. Per-tenant results are bit-identical to a
  single-threaded replay of the same stream: `deuce serve --replay`
  prints exactly the per-tenant summary blocks the service prints,
  whatever the shard count. --progress <file> appends serve_progress
  JSONL lines `deuce watch` can tail; --store-dir backs each tenant's
  line store with its own page file under <dir>. Wall-clock service
  statistics go to stderr so stdout stays diffable.

FAULTS:
  --faults injects online stuck-at cell faults: each cell dies once its
  sampled endurance is exhausted, ECP entries absorb the first deaths
  per line, exhausted lines retire to a spare pool, and an exhausted
  pool makes further deaths uncorrectable (device end of life).
  [--endurance-scale X] scales the sampled per-cell endurance (default
  1e-6: paper-model 1e8 becomes ~100 writes, for accelerated-wear
  studies); [--ecp-entries N] sets the per-line ECP budget (default 6);
  [--spare-lines N] sizes the retirement pool (default 8). These three
  flags require --faults.

PAD CACHE:
  --pad-cache N puts a direct-mapped cache of N generated line pads in
  front of the AES engine. Pads are a pure function of (address,
  counter), so caching changes only AES work — every simulated metric
  is bit-identical — and the run summary (and telemetry, when enabled)
  gains pad_cache_hits / pad_cache_misses / pad_cache_prefills rows
  (prefills are next-epoch pads warmed speculatively at each epoch
  rollover).

AES DISPATCH:
  Pad generation resolves one cipher tier at engine construction:
  hardware AES (AES-NI / NEON) when the host has it, the portable
  T-table path otherwise, with the FIPS-197 byte-oriented reference as
  the correctness oracle. All tiers are bit-identical; the chosen tier
  appears as an aes_backend row in run and compare output and as a
  gated telemetry record. DEUCE_AES_FORCE=reference|ttable|hw pins a
  tier (hw errors where unavailable). `deuce aes-backend` prints the
  detected tier and every tier available on this host.

OUT-OF-CORE STORE:
  --store-file <path> backs the line store with a page file instead of
  RAM: lines live in 64-slot pages, at most --resident-pages of which
  (default 1024) stay resident in an LRU cache; dirty pages write back
  on eviction. Address spaces far larger than RAM run in a fixed
  residency budget, bit-identical to the in-RAM run — the summary (and
  telemetry) gains store_page_faults / store_page_evictions /
  store_pages_flushed / store_resident_bytes rows. With sweep, each
  grid cell gets its own derived page file next to <path>.

SCHEMES:
  nodcw nofnw encdcw encfnw ble deuce dyndeuce deucefnw bledeuce addrpad

BENCHMARKS:
  libq mcf lbm Gems milc omnetpp leslie3d soplex zeusmp wrf xalanc astar";

/// CLI failure modes.
#[derive(Debug)]
pub enum CliError {
    /// Argument parsing failed.
    Usage(String),
    /// Reading or writing a trace failed.
    Trace(deuce_trace::TraceIoError),
    /// A telemetry file could not be interpreted.
    Telemetry(String),
    /// A checkpoint replay diverged from the recorded run.
    Checkpoint(String),
    /// A sweep manifest could not be read, resumed, or merged.
    Manifest(ManifestError),
    /// The out-of-core line-store backend failed on page-file I/O.
    Store(String),
    /// Terminal or file output failed.
    Io(std::io::Error),
}

impl core::fmt::Display for CliError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "{msg}\n\n{USAGE}"),
            CliError::Trace(e) => write!(f, "{e}"),
            CliError::Telemetry(msg) => write!(f, "{msg}"),
            CliError::Checkpoint(msg) => write!(f, "{msg}"),
            CliError::Manifest(e) => write!(f, "{e}"),
            CliError::Store(msg) => write!(f, "{msg}"),
            CliError::Io(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

impl From<deuce_trace::TraceIoError> for CliError {
    fn from(e: deuce_trace::TraceIoError) -> Self {
        CliError::Trace(e)
    }
}

impl From<RunError> for CliError {
    fn from(e: RunError) -> Self {
        match e {
            RunError::Trace(t) => CliError::Trace(t),
            mismatch @ RunError::CheckpointMismatch { .. } => {
                CliError::Checkpoint(mismatch.to_string())
            }
            store @ RunError::Store(_) => CliError::Store(store.to_string()),
        }
    }
}

impl From<ManifestError> for CliError {
    fn from(e: ManifestError) -> Self {
        CliError::Manifest(e)
    }
}

/// On-disk trace format for `gen -o` (`--format`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceFormat {
    /// The binary `DEUCETRC` container (compact, seekable).
    #[default]
    Binary,
    /// The JSONL text dialect (greppable, concatenation-friendly).
    Jsonl,
}

/// Workload-generation arguments shared by `gen`, `run`, and `compare`.
#[derive(Debug, Clone)]
pub struct GenArgs {
    /// Benchmark profile to generate.
    pub benchmark: Benchmark,
    /// Total writebacks.
    pub writes: usize,
    /// Working-set lines per core.
    pub lines: usize,
    /// Cores in rate mode.
    pub cores: u8,
    /// RNG seed.
    pub seed: u64,
    /// Output path (for `gen`).
    pub output: Option<String>,
    /// Output format (for `gen`).
    pub format: TraceFormat,
}

impl Default for GenArgs {
    fn default() -> Self {
        Self {
            benchmark: Benchmark::Libquantum,
            writes: 20_000,
            lines: 256,
            cores: 1,
            seed: 42,
            output: None,
            format: TraceFormat::Binary,
        }
    }
}

/// Fault-injection arguments shared by `run`, `compare`, and `sweep`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultArgs {
    /// Inject stuck-at faults (`--faults`).
    pub enabled: bool,
    /// Endurance scale-down for accelerated wear (`--endurance-scale`).
    pub endurance_scale: f64,
    /// ECP correction entries per line (`--ecp-entries`).
    pub ecp_entries: u8,
    /// Spare lines for retirement (`--spare-lines`).
    pub spare_lines: u32,
}

impl Default for FaultArgs {
    fn default() -> Self {
        Self {
            enabled: false,
            endurance_scale: 1e-6,
            ecp_entries: 6,
            spare_lines: 8,
        }
    }
}

/// `deuce stats` arguments.
#[derive(Debug, Clone)]
pub struct StatsArgs {
    /// Trace file to summarize.
    pub trace_path: String,
}

/// `deuce run` / `deuce compare` arguments.
#[derive(Debug, Clone)]
pub struct RunArgs {
    /// Load a saved trace instead of generating one.
    pub trace_path: Option<String>,
    /// Generation parameters (used when no trace file is given).
    pub gen: GenArgs,
    /// Scheme to simulate (`run` only; `compare` runs them all).
    pub scheme: Option<SchemeConfig>,
    /// Stream telemetry to this JSONL file (plus a CSV sibling).
    pub telemetry: Option<String>,
    /// Time-series window in counted writes.
    pub sample_every: u64,
    /// Online fault injection.
    pub faults: FaultArgs,
    /// Line-pad cache entries (`--pad-cache`); `None` = no cache.
    pub pad_cache: Option<usize>,
    /// Drive the run from a streaming source instead of materialising
    /// the trace (`--stream`, `run` only).
    pub stream: bool,
    /// Append periodic run checkpoints to this file (`--checkpoint`).
    pub checkpoint: Option<String>,
    /// Counted writes between checkpoints (`--checkpoint-every`).
    pub checkpoint_every: u64,
    /// Replay-verify the run against the last checkpoint in this file
    /// (`--from-checkpoint`).
    pub from_checkpoint: Option<String>,
    /// Which slice of the sweep grid this process owns (`--shard`);
    /// `None` = the whole grid.
    pub shard: Option<ShardSpec>,
    /// Record completed sweep cells in this manifest (`--manifest`).
    pub manifest: Option<String>,
    /// Skip cells already in the manifest (`--resume`).
    pub resume: bool,
    /// Write a Chrome trace-event JSON of the run's spans
    /// (`--trace-out`, `run` only).
    pub trace_out: Option<String>,
    /// Keep a ring of the last N write events, dumped on failure
    /// (`--flight-recorder`, `run` only).
    pub flight_recorder: Option<usize>,
    /// Back the line store with this page file instead of RAM
    /// (`--store-file`, `run` and `sweep`).
    pub store_file: Option<String>,
    /// Resident-page budget for the page-file store's LRU cache
    /// (`--resident-pages`); `None` = the default 1024.
    pub resident_pages: Option<usize>,
}

impl Default for RunArgs {
    fn default() -> Self {
        Self {
            trace_path: None,
            gen: GenArgs::default(),
            scheme: None,
            telemetry: None,
            sample_every: 64,
            faults: FaultArgs::default(),
            pad_cache: None,
            stream: false,
            checkpoint: None,
            checkpoint_every: 1_000_000,
            from_checkpoint: None,
            shard: None,
            manifest: None,
            resume: false,
            trace_out: None,
            flight_recorder: None,
            store_file: None,
            resident_pages: None,
        }
    }
}

/// `deuce merge` arguments.
#[derive(Debug, Clone)]
pub struct MergeArgs {
    /// Shard manifests to combine.
    pub manifests: Vec<String>,
}

/// `deuce report` arguments.
#[derive(Debug, Clone)]
pub struct ReportArgs {
    /// Telemetry JSONL file to render.
    pub telemetry_path: String,
}

/// `deuce watch` arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatchArgs {
    /// Checkpoint JSONL files and sweep manifests to tail.
    pub paths: Vec<String>,
    /// Print one snapshot and exit (`--once`).
    pub once: bool,
    /// Poll period in milliseconds (`--interval-ms`).
    pub interval_ms: u64,
}

/// `deuce serve` arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeArgs {
    /// Isolated tenant key domains (`--tenants`).
    pub tenants: usize,
    /// Worker shard threads (`--shards`).
    pub shards: usize,
    /// Requests per tenant (`--requests`).
    pub requests: usize,
    /// Per-shard queue capacity (`--queue-depth`).
    pub queue_depth: usize,
    /// Requests per submitted batch (`--batch`).
    pub batch: usize,
    /// Scheme every tenant simulates (`--scheme`, default deuce).
    pub scheme: SchemeConfig,
    /// Benchmark profile generating each tenant's request stream.
    pub benchmark: Benchmark,
    /// Working-set lines per tenant (`--lines`).
    pub lines: usize,
    /// Base RNG / key seed; tenant `i` uses `seed + i` (`--seed`).
    pub seed: u64,
    /// Write aggregate telemetry (counters, serve spans, per-tenant and
    /// per-shard records) to this JSONL file (`--telemetry`).
    pub telemetry: Option<String>,
    /// Append live `serve_progress` JSONL lines to this file for
    /// `deuce watch` (`--progress`).
    pub progress: Option<String>,
    /// Per-tenant flight ring of the last N applied writes, dumped on
    /// an uncorrectable write or a shard panic (`--flight-recorder`).
    pub flight_recorder: Option<usize>,
    /// Back each tenant's line store with a page file under this
    /// directory (`--store-dir`); `None` = in-RAM arenas.
    pub store_dir: Option<String>,
    /// Resident-page budget per tenant page file (`--resident-pages`).
    pub resident_pages: Option<usize>,
    /// Single-threaded replay: print the per-tenant summary blocks the
    /// service would print, without spinning up shards (`--replay`).
    pub replay: bool,
}

impl Default for ServeArgs {
    fn default() -> Self {
        Self {
            tenants: 2,
            shards: 2,
            requests: 10_000,
            queue_depth: 1024,
            batch: 32,
            scheme: SchemeConfig::new(SchemeKind::Deuce),
            benchmark: Benchmark::Libquantum,
            lines: 256,
            seed: 42,
            telemetry: None,
            progress: None,
            flight_recorder: None,
            store_dir: None,
            resident_pages: None,
            replay: false,
        }
    }
}

/// A parsed CLI invocation.
#[derive(Debug, Clone)]
pub enum Command {
    /// Generate a trace file.
    Gen(GenArgs),
    /// Summarize a trace file.
    Stats(StatsArgs),
    /// Simulate one scheme.
    Run(RunArgs),
    /// Simulate every scheme and tabulate.
    Compare(RunArgs),
    /// Sweep DEUCE's epoch interval and word size.
    Sweep(RunArgs),
    /// Combine shard manifests into the full sweep table.
    Merge(MergeArgs),
    /// Render a telemetry file as text tables.
    Report(ReportArgs),
    /// Live-monitor checkpoint files and sweep manifests.
    Watch(WatchArgs),
    /// Run the sharded multi-tenant encrypted-memory service.
    Serve(ServeArgs),
    /// Print the detected and available AES dispatch tiers.
    AesBackend,
    /// Print usage.
    Help,
}

fn parse_scheme_kind(name: &str) -> Result<SchemeKind, CliError> {
    Ok(match name.to_ascii_lowercase().as_str() {
        "nodcw" | "unencrypted-dcw" => SchemeKind::UnencryptedDcw,
        "nofnw" | "unencrypted-fnw" => SchemeKind::UnencryptedFnw,
        "encdcw" | "encrypted" | "encrypted-dcw" => SchemeKind::EncryptedDcw,
        "encfnw" | "encrypted-fnw" => SchemeKind::EncryptedFnw,
        "ble" => SchemeKind::Ble,
        "deuce" => SchemeKind::Deuce,
        "dyndeuce" => SchemeKind::DynDeuce,
        "deucefnw" | "deuce+fnw" => SchemeKind::DeuceFnw,
        "bledeuce" | "ble+deuce" => SchemeKind::BleDeuce,
        "addrpad" => SchemeKind::AddrPad,
        other => return Err(CliError::Usage(format!("unknown scheme {other:?}"))),
    })
}

impl Command {
    /// Parses an argument list (without the program name).
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Usage`] on malformed input.
    pub fn parse<I: IntoIterator<Item = String>>(argv: I) -> Result<Self, CliError> {
        let mut args = argv.into_iter();
        let subcommand = match args.next() {
            None => return Ok(Command::Help),
            Some(s) => s,
        };

        if subcommand == "merge" {
            let manifests: Vec<String> = args.collect();
            if manifests.is_empty() {
                return Err(CliError::Usage("merge requires at least one manifest file".into()));
            }
            if let Some(flag) = manifests.iter().find(|m| m.starts_with('-')) {
                return Err(CliError::Usage(format!("merge takes no flags (got {flag:?})")));
            }
            return Ok(Command::Merge(MergeArgs { manifests }));
        }

        if subcommand == "watch" {
            let mut paths = Vec::new();
            let mut once = false;
            let mut interval_ms: u64 = 2000;
            let mut args = args;
            while let Some(arg) = args.next() {
                match arg.as_str() {
                    "--once" => once = true,
                    "--interval-ms" => {
                        let v = args.next().ok_or_else(|| {
                            CliError::Usage("flag --interval-ms requires a value".into())
                        })?;
                        interval_ms = parse_number(&v, "--interval-ms")?;
                        if interval_ms == 0 {
                            return Err(CliError::Usage(
                                "--interval-ms must be at least 1".into(),
                            ));
                        }
                    }
                    flag if flag.starts_with('-') => {
                        return Err(CliError::Usage(format!("unknown flag {flag:?}")));
                    }
                    path => paths.push(path.to_string()),
                }
            }
            if paths.is_empty() {
                return Err(CliError::Usage(
                    "watch requires at least one checkpoint or manifest file".into(),
                ));
            }
            return Ok(Command::Watch(WatchArgs { paths, once, interval_ms }));
        }

        if subcommand == "serve" {
            return Self::parse_serve(args);
        }

        if subcommand == "aes-backend" {
            if let Some(extra) = args.next() {
                return Err(CliError::Usage(format!(
                    "aes-backend takes no arguments (got {extra:?})"
                )));
            }
            return Ok(Command::AesBackend);
        }

        let mut gen = GenArgs::default();
        let mut benchmark_given = false;
        let mut trace_path: Option<String> = None;
        let mut positional: Option<String> = None;
        let mut scheme_kind: Option<SchemeKind> = None;
        let mut epoch: Option<u64> = None;
        let mut word_bytes: Option<usize> = None;
        let mut telemetry: Option<String> = None;
        let mut sample_every: u64 = 64;
        let mut faults = FaultArgs::default();
        let mut fault_tuning: Option<&'static str> = None;
        let mut pad_cache: Option<usize> = None;
        let mut stream = false;
        let mut checkpoint: Option<String> = None;
        let mut checkpoint_every: u64 = 1_000_000;
        let mut from_checkpoint: Option<String> = None;
        let mut shard: Option<ShardSpec> = None;
        let mut manifest: Option<String> = None;
        let mut resume = false;
        let mut trace_out: Option<String> = None;
        let mut flight_recorder: Option<usize> = None;
        let mut store_file: Option<String> = None;
        let mut resident_pages: Option<usize> = None;

        while let Some(flag) = args.next() {
            let mut value = |flag: &str| {
                args.next()
                    .ok_or_else(|| CliError::Usage(format!("flag {flag} requires a value")))
            };
            match flag.as_str() {
                "--benchmark" => {
                    let name = value("--benchmark")?;
                    gen.benchmark = Benchmark::from_name(&name)
                        .map_err(|e| CliError::Usage(e.to_string()))?;
                    benchmark_given = true;
                }
                "--writes" => gen.writes = parse_number(&value("--writes")?, "--writes")?,
                "--lines" => gen.lines = parse_number(&value("--lines")?, "--lines")?,
                "--cores" => gen.cores = parse_number(&value("--cores")?, "--cores")?,
                "--seed" => gen.seed = parse_number(&value("--seed")?, "--seed")?,
                "-o" | "--output" => gen.output = Some(value("-o")?),
                "--trace" => trace_path = Some(value("--trace")?),
                "--scheme" => scheme_kind = Some(parse_scheme_kind(&value("--scheme")?)?),
                "--epoch" => epoch = Some(parse_number(&value("--epoch")?, "--epoch")?),
                "--word-bytes" => {
                    word_bytes = Some(parse_number(&value("--word-bytes")?, "--word-bytes")?);
                }
                "--telemetry" => telemetry = Some(value("--telemetry")?),
                "--faults" => faults.enabled = true,
                "--endurance-scale" => {
                    faults.endurance_scale =
                        parse_number(&value("--endurance-scale")?, "--endurance-scale")?;
                    if !(faults.endurance_scale.is_finite() && faults.endurance_scale > 0.0) {
                        return Err(CliError::Usage(
                            "--endurance-scale must be a positive number".into(),
                        ));
                    }
                    fault_tuning = Some("--endurance-scale");
                }
                "--ecp-entries" => {
                    faults.ecp_entries = parse_number(&value("--ecp-entries")?, "--ecp-entries")?;
                    fault_tuning = Some("--ecp-entries");
                }
                "--spare-lines" => {
                    faults.spare_lines = parse_number(&value("--spare-lines")?, "--spare-lines")?;
                    fault_tuning = Some("--spare-lines");
                }
                "--pad-cache" => {
                    let entries: usize = parse_number(&value("--pad-cache")?, "--pad-cache")?;
                    if entries == 0 {
                        return Err(CliError::Usage(
                            "--pad-cache must be at least 1 entry".into(),
                        ));
                    }
                    pad_cache = Some(entries);
                }
                "--sample-every" => {
                    sample_every = parse_number(&value("--sample-every")?, "--sample-every")?;
                    if sample_every == 0 {
                        return Err(CliError::Usage(
                            "--sample-every must be at least 1".into(),
                        ));
                    }
                }
                "--format" => {
                    gen.format = match value("--format")?.to_ascii_lowercase().as_str() {
                        "bin" | "binary" => TraceFormat::Binary,
                        "jsonl" | "json" => TraceFormat::Jsonl,
                        other => {
                            return Err(CliError::Usage(format!(
                                "--format must be bin or jsonl (got {other:?})"
                            )))
                        }
                    };
                }
                "--stream" => stream = true,
                "--checkpoint" => checkpoint = Some(value("--checkpoint")?),
                "--checkpoint-every" => {
                    checkpoint_every =
                        parse_number(&value("--checkpoint-every")?, "--checkpoint-every")?;
                    if checkpoint_every == 0 {
                        return Err(CliError::Usage(
                            "--checkpoint-every must be at least 1".into(),
                        ));
                    }
                }
                "--from-checkpoint" => from_checkpoint = Some(value("--from-checkpoint")?),
                "--shard" => {
                    shard = Some(ShardSpec::parse(&value("--shard")?).map_err(CliError::Usage)?);
                }
                "--manifest" => manifest = Some(value("--manifest")?),
                "--resume" => resume = true,
                "--trace-out" => trace_out = Some(value("--trace-out")?),
                "--flight-recorder" => {
                    let events: usize =
                        parse_number(&value("--flight-recorder")?, "--flight-recorder")?;
                    if events == 0 {
                        return Err(CliError::Usage(
                            "--flight-recorder must keep at least 1 event".into(),
                        ));
                    }
                    flight_recorder = Some(events);
                }
                "--store-file" => store_file = Some(value("--store-file")?),
                "--resident-pages" => {
                    let pages: usize =
                        parse_number(&value("--resident-pages")?, "--resident-pages")?;
                    if pages == 0 {
                        return Err(CliError::Usage(
                            "--resident-pages must keep at least 1 page resident".into(),
                        ));
                    }
                    resident_pages = Some(pages);
                }
                other if !other.starts_with('-') && positional.is_none() => {
                    positional = Some(other.to_string());
                }
                other => return Err(CliError::Usage(format!("unknown flag {other:?}"))),
            }
        }

        if let (Some(flag), false) = (fault_tuning, faults.enabled) {
            return Err(CliError::Usage(format!("{flag} requires --faults")));
        }
        if resident_pages.is_some() && store_file.is_none() {
            return Err(CliError::Usage(
                "--resident-pages requires --store-file <path>".into(),
            ));
        }

        let scheme = match scheme_kind {
            None => None,
            Some(kind) => {
                let mut config = SchemeConfig::new(kind);
                if let Some(e) = epoch {
                    config.epoch = EpochInterval::new(e)
                        .map_err(|e| CliError::Usage(e.to_string()))?;
                }
                if let Some(w) = word_bytes {
                    config.word_size = WordSize::from_bytes(w)
                        .map_err(|e| CliError::Usage(e.to_string()))?;
                }
                Some(config)
            }
        };

        match subcommand.as_str() {
            "gen" => {
                if !benchmark_given {
                    return Err(CliError::Usage("gen requires --benchmark".into()));
                }
                if store_file.is_some() {
                    return Err(CliError::Usage(
                        "--store-file applies to run and sweep, not gen".into(),
                    ));
                }
                if gen.output.is_none() {
                    return Err(CliError::Usage("gen requires -o <file>".into()));
                }
                Ok(Command::Gen(gen))
            }
            "stats" => {
                let trace_path = positional.or(trace_path).ok_or_else(|| {
                    CliError::Usage("stats requires a trace file".into())
                })?;
                Ok(Command::Stats(StatsArgs { trace_path }))
            }
            "run" => {
                if trace_path.is_none() && !benchmark_given {
                    return Err(CliError::Usage(
                        "run requires --trace <file> or --benchmark <name>".into(),
                    ));
                }
                let scheme = scheme.ok_or_else(|| {
                    CliError::Usage("run requires --scheme <scheme>".into())
                })?;
                if shard.is_some() || manifest.is_some() || resume {
                    return Err(CliError::Usage(
                        "--shard/--manifest/--resume apply to sweep, not run".into(),
                    ));
                }
                if !stream && (checkpoint.is_some() || from_checkpoint.is_some()) {
                    return Err(CliError::Usage(
                        "--checkpoint and --from-checkpoint require --stream".into(),
                    ));
                }
                if checkpoint.is_some() && from_checkpoint.is_some() {
                    return Err(CliError::Usage(
                        "--checkpoint and --from-checkpoint are mutually exclusive".into(),
                    ));
                }
                Ok(Command::Run(RunArgs {
                    trace_path,
                    gen,
                    scheme: Some(scheme),
                    telemetry,
                    sample_every,
                    faults,
                    pad_cache,
                    stream,
                    checkpoint,
                    checkpoint_every,
                    from_checkpoint,
                    shard: None,
                    manifest: None,
                    resume: false,
                    trace_out,
                    flight_recorder,
                    store_file,
                    resident_pages,
                }))
            }
            "compare" | "sweep" => {
                if trace_path.is_none() && !benchmark_given {
                    return Err(CliError::Usage(format!(
                        "{subcommand} requires --trace <file> or --benchmark <name>"
                    )));
                }
                if stream || checkpoint.is_some() || from_checkpoint.is_some() {
                    return Err(CliError::Usage(format!(
                        "--stream/--checkpoint/--from-checkpoint apply to run, not {subcommand}"
                    )));
                }
                if subcommand == "compare" && (shard.is_some() || manifest.is_some() || resume) {
                    return Err(CliError::Usage(
                        "--shard/--manifest/--resume apply to sweep, not compare".into(),
                    ));
                }
                if subcommand == "compare" && store_file.is_some() {
                    return Err(CliError::Usage(
                        "--store-file applies to run and sweep, not compare".into(),
                    ));
                }
                if manifest.is_none() && (shard.is_some() || resume) {
                    return Err(CliError::Usage(
                        "--shard and --resume require --manifest <file>".into(),
                    ));
                }
                if trace_out.is_some() || flight_recorder.is_some() {
                    return Err(CliError::Usage(format!(
                        "--trace-out/--flight-recorder apply to run, not {subcommand}"
                    )));
                }
                if manifest.is_some() && telemetry.is_some() {
                    return Err(CliError::Usage(
                        "--manifest and --telemetry cannot be combined (shard output \
                         is the manifest; merge the shards first, then re-run with \
                         --telemetry if needed)"
                            .into(),
                    ));
                }
                let run_args = RunArgs {
                    trace_path,
                    gen,
                    scheme,
                    telemetry,
                    sample_every,
                    faults,
                    pad_cache,
                    stream: false,
                    checkpoint: None,
                    checkpoint_every,
                    from_checkpoint: None,
                    shard,
                    manifest,
                    resume,
                    trace_out: None,
                    flight_recorder: None,
                    store_file,
                    resident_pages,
                };
                Ok(if subcommand == "compare" {
                    Command::Compare(run_args)
                } else {
                    Command::Sweep(run_args)
                })
            }
            "report" => {
                let telemetry_path = positional.or(telemetry).ok_or_else(|| {
                    CliError::Usage("report requires a telemetry file".into())
                })?;
                Ok(Command::Report(ReportArgs { telemetry_path }))
            }
            "help" | "--help" | "-h" => Ok(Command::Help),
            other => Err(CliError::Usage(format!("unknown subcommand {other:?}"))),
        }
    }

    /// Parses the `serve` subcommand's flags.
    fn parse_serve<I: Iterator<Item = String>>(mut args: I) -> Result<Self, CliError> {
        let mut serve = ServeArgs::default();
        let mut epoch: Option<u64> = None;
        let mut word_bytes: Option<usize> = None;
        while let Some(flag) = args.next() {
            let mut value = |flag: &str| {
                args.next()
                    .ok_or_else(|| CliError::Usage(format!("flag {flag} requires a value")))
            };
            match flag.as_str() {
                "--tenants" => serve.tenants = parse_number(&value("--tenants")?, "--tenants")?,
                "--shards" => serve.shards = parse_number(&value("--shards")?, "--shards")?,
                "--requests" => {
                    serve.requests = parse_number(&value("--requests")?, "--requests")?;
                }
                "--queue-depth" => {
                    serve.queue_depth = parse_number(&value("--queue-depth")?, "--queue-depth")?;
                }
                "--batch" => serve.batch = parse_number(&value("--batch")?, "--batch")?,
                "--scheme" => {
                    serve.scheme = SchemeConfig::new(parse_scheme_kind(&value("--scheme")?)?);
                }
                "--epoch" => epoch = Some(parse_number(&value("--epoch")?, "--epoch")?),
                "--word-bytes" => {
                    word_bytes = Some(parse_number(&value("--word-bytes")?, "--word-bytes")?);
                }
                "--benchmark" => {
                    serve.benchmark = Benchmark::from_name(&value("--benchmark")?)
                        .map_err(|e| CliError::Usage(e.to_string()))?;
                }
                "--lines" => serve.lines = parse_number(&value("--lines")?, "--lines")?,
                "--seed" => serve.seed = parse_number(&value("--seed")?, "--seed")?,
                "--telemetry" => serve.telemetry = Some(value("--telemetry")?),
                "--progress" => serve.progress = Some(value("--progress")?),
                "--flight-recorder" => {
                    let events: usize =
                        parse_number(&value("--flight-recorder")?, "--flight-recorder")?;
                    if events == 0 {
                        return Err(CliError::Usage(
                            "--flight-recorder must keep at least 1 event".into(),
                        ));
                    }
                    serve.flight_recorder = Some(events);
                }
                "--store-dir" => serve.store_dir = Some(value("--store-dir")?),
                "--resident-pages" => {
                    let pages: usize =
                        parse_number(&value("--resident-pages")?, "--resident-pages")?;
                    if pages == 0 {
                        return Err(CliError::Usage(
                            "--resident-pages must keep at least 1 page resident".into(),
                        ));
                    }
                    serve.resident_pages = Some(pages);
                }
                "--replay" => serve.replay = true,
                other => return Err(CliError::Usage(format!("unknown flag {other:?}"))),
            }
        }
        if serve.tenants == 0 || serve.shards == 0 || serve.requests == 0 {
            return Err(CliError::Usage(
                "--tenants, --shards, and --requests must all be at least 1".into(),
            ));
        }
        if serve.queue_depth == 0 || serve.batch == 0 {
            return Err(CliError::Usage(
                "--queue-depth and --batch must be at least 1".into(),
            ));
        }
        if serve.batch > serve.queue_depth {
            return Err(CliError::Usage(
                "--batch cannot exceed --queue-depth (an oversized batch can \
                 never be accepted)"
                    .into(),
            ));
        }
        if serve.resident_pages.is_some() && serve.store_dir.is_none() {
            return Err(CliError::Usage(
                "--resident-pages requires --store-dir <dir>".into(),
            ));
        }
        if let Some(e) = epoch {
            serve.scheme.epoch =
                EpochInterval::new(e).map_err(|e| CliError::Usage(e.to_string()))?;
        }
        if let Some(w) = word_bytes {
            serve.scheme.word_size =
                WordSize::from_bytes(w).map_err(|e| CliError::Usage(e.to_string()))?;
        }
        Ok(Command::Serve(serve))
    }
}

fn parse_number<T: std::str::FromStr>(s: &str, flag: &str) -> Result<T, CliError> {
    s.parse()
        .map_err(|_| CliError::Usage(format!("{flag}: invalid number {s:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(argv: &[&str]) -> Result<Command, CliError> {
        Command::parse(argv.iter().map(ToString::to_string))
    }

    #[test]
    fn no_args_is_help() {
        assert!(matches!(parse(&[]), Ok(Command::Help)));
        assert!(matches!(parse(&["help"]), Ok(Command::Help)));
    }

    #[test]
    fn gen_requires_benchmark_and_output() {
        assert!(matches!(parse(&["gen"]), Err(CliError::Usage(_))));
        assert!(matches!(
            parse(&["gen", "--benchmark", "libq"]),
            Err(CliError::Usage(_))
        ));
        let cmd = parse(&["gen", "--benchmark", "libq", "-o", "t.bin", "--writes", "5"]).unwrap();
        match cmd {
            Command::Gen(g) => {
                assert_eq!(g.benchmark, Benchmark::Libquantum);
                assert_eq!(g.writes, 5);
                assert_eq!(g.output.as_deref(), Some("t.bin"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn run_parses_scheme_and_overrides() {
        let cmd = parse(&[
            "run",
            "--benchmark",
            "mcf",
            "--scheme",
            "deuce",
            "--epoch",
            "16",
            "--word-bytes",
            "4",
        ])
        .unwrap();
        match cmd {
            Command::Run(r) => {
                let scheme = r.scheme.unwrap();
                assert_eq!(scheme.kind, SchemeKind::Deuce);
                assert_eq!(scheme.epoch.writes(), 16);
                assert_eq!(scheme.word_size, WordSize::Bytes4);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn scheme_aliases() {
        for (alias, kind) in [
            ("deuce", SchemeKind::Deuce),
            ("DynDeuce", SchemeKind::DynDeuce),
            ("ble+deuce", SchemeKind::BleDeuce),
            ("encrypted", SchemeKind::EncryptedDcw),
            ("addrpad", SchemeKind::AddrPad),
        ] {
            assert_eq!(parse_scheme_kind(alias).unwrap(), kind);
        }
        assert!(parse_scheme_kind("nope").is_err());
    }

    #[test]
    fn invalid_numbers_are_usage_errors() {
        assert!(matches!(
            parse(&["run", "--benchmark", "mcf", "--scheme", "deuce", "--writes", "abc"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&["run", "--benchmark", "mcf", "--scheme", "deuce", "--epoch", "7"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn stats_takes_positional_path() {
        match parse(&["stats", "trace.bin"]).unwrap() {
            Command::Stats(s) => assert_eq!(s.trace_path, "trace.bin"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn telemetry_flags_parse() {
        let cmd = parse(&[
            "run",
            "--benchmark",
            "mcf",
            "--scheme",
            "deuce",
            "--telemetry",
            "out.jsonl",
            "--sample-every",
            "16",
        ])
        .unwrap();
        match cmd {
            Command::Run(r) => {
                assert_eq!(r.telemetry.as_deref(), Some("out.jsonl"));
                assert_eq!(r.sample_every, 16);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Default window, no telemetry.
        match parse(&["compare", "--benchmark", "mcf"]).unwrap() {
            Command::Compare(r) => {
                assert!(r.telemetry.is_none());
                assert_eq!(r.sample_every, 64);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(
            parse(&["run", "--benchmark", "mcf", "--scheme", "deuce", "--sample-every", "0"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn fault_flags_parse() {
        let cmd = parse(&[
            "run",
            "--benchmark",
            "mcf",
            "--scheme",
            "deuce",
            "--faults",
            "--endurance-scale",
            "2e-7",
            "--ecp-entries",
            "2",
            "--spare-lines",
            "4",
        ])
        .unwrap();
        match cmd {
            Command::Run(r) => {
                assert!(r.faults.enabled);
                assert!((r.faults.endurance_scale - 2e-7).abs() < 1e-18);
                assert_eq!(r.faults.ecp_entries, 2);
                assert_eq!(r.faults.spare_lines, 4);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Defaults when --faults is absent.
        match parse(&["compare", "--benchmark", "mcf"]).unwrap() {
            Command::Compare(r) => assert_eq!(r.faults, FaultArgs::default()),
            other => panic!("unexpected {other:?}"),
        }
        // Tuning flags demand --faults; the scale must be positive.
        assert!(matches!(
            parse(&["compare", "--benchmark", "mcf", "--spare-lines", "4"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&["run", "--benchmark", "mcf", "--scheme", "deuce", "--faults",
                    "--endurance-scale", "0"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn pad_cache_flag_parses() {
        let cmd = parse(&[
            "run", "--benchmark", "mcf", "--scheme", "deuce", "--pad-cache", "128",
        ])
        .unwrap();
        match cmd {
            Command::Run(r) => assert_eq!(r.pad_cache, Some(128)),
            other => panic!("unexpected {other:?}"),
        }
        // Off by default; zero entries is a usage error.
        match parse(&["compare", "--benchmark", "mcf"]).unwrap() {
            Command::Compare(r) => assert!(r.pad_cache.is_none()),
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(
            parse(&["run", "--benchmark", "mcf", "--scheme", "deuce", "--pad-cache", "0"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn report_takes_positional_path() {
        match parse(&["report", "out.jsonl"]).unwrap() {
            Command::Report(r) => assert_eq!(r.telemetry_path, "out.jsonl"),
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(parse(&["report"]), Err(CliError::Usage(_))));
    }

    #[test]
    fn compare_without_scheme_is_fine() {
        assert!(matches!(
            parse(&["compare", "--benchmark", "gems"]),
            Ok(Command::Compare(_))
        ));
    }

    #[test]
    fn gen_format_flag_parses() {
        let cmd =
            parse(&["gen", "--benchmark", "libq", "-o", "t.jsonl", "--format", "jsonl"]).unwrap();
        match cmd {
            Command::Gen(g) => assert_eq!(g.format, TraceFormat::Jsonl),
            other => panic!("unexpected {other:?}"),
        }
        match parse(&["gen", "--benchmark", "libq", "-o", "t.bin"]).unwrap() {
            Command::Gen(g) => assert_eq!(g.format, TraceFormat::Binary),
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(
            parse(&["gen", "--benchmark", "libq", "-o", "t", "--format", "xml"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn stream_and_checkpoint_flags_parse() {
        let cmd = parse(&[
            "run", "--benchmark", "mcf", "--scheme", "deuce", "--stream", "--checkpoint",
            "cp.jsonl", "--checkpoint-every", "500",
        ])
        .unwrap();
        match cmd {
            Command::Run(r) => {
                assert!(r.stream);
                assert_eq!(r.checkpoint.as_deref(), Some("cp.jsonl"));
                assert_eq!(r.checkpoint_every, 500);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Checkpointing needs the streaming driver; emit and verify are
        // mutually exclusive.
        assert!(matches!(
            parse(&["run", "--benchmark", "mcf", "--scheme", "deuce", "--checkpoint", "c"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&["run", "--benchmark", "mcf", "--scheme", "deuce", "--stream",
                    "--checkpoint", "a", "--from-checkpoint", "b"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&["run", "--benchmark", "mcf", "--scheme", "deuce", "--stream",
                    "--checkpoint", "c", "--checkpoint-every", "0"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn sweep_shard_flags_parse() {
        let cmd = parse(&[
            "sweep", "--benchmark", "mcf", "--manifest", "m.jsonl", "--shard", "1/2", "--resume",
        ])
        .unwrap();
        match cmd {
            Command::Sweep(r) => {
                assert_eq!(r.shard, Some(ShardSpec { index: 1, count: 2 }));
                assert_eq!(r.manifest.as_deref(), Some("m.jsonl"));
                assert!(r.resume);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Shard flags demand a manifest, stay off compare/run, and
        // cannot be combined with telemetry.
        assert!(matches!(
            parse(&["sweep", "--benchmark", "mcf", "--shard", "0/2"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&["sweep", "--benchmark", "mcf", "--shard", "2/2", "--manifest", "m"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&["compare", "--benchmark", "mcf", "--manifest", "m"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&["run", "--benchmark", "mcf", "--scheme", "deuce", "--manifest", "m"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&["sweep", "--benchmark", "mcf", "--manifest", "m", "--telemetry", "t"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn observability_flags_parse() {
        let cmd = parse(&[
            "run", "--benchmark", "mcf", "--scheme", "deuce", "--trace-out", "spans.json",
            "--flight-recorder", "64",
        ])
        .unwrap();
        match cmd {
            Command::Run(r) => {
                assert_eq!(r.trace_out.as_deref(), Some("spans.json"));
                assert_eq!(r.flight_recorder, Some(64));
            }
            other => panic!("unexpected {other:?}"),
        }
        // Off by default; run-only; a zero-length ring is a usage error.
        match parse(&["run", "--benchmark", "mcf", "--scheme", "deuce"]).unwrap() {
            Command::Run(r) => {
                assert!(r.trace_out.is_none());
                assert!(r.flight_recorder.is_none());
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(
            parse(&["sweep", "--benchmark", "mcf", "--trace-out", "s.json"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&["compare", "--benchmark", "mcf", "--flight-recorder", "8"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&["run", "--benchmark", "mcf", "--scheme", "deuce", "--flight-recorder", "0"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn store_flags_parse() {
        let cmd = parse(&[
            "run", "--benchmark", "mcf", "--scheme", "deuce", "--store-file", "lines.pages",
            "--resident-pages", "8",
        ])
        .unwrap();
        match cmd {
            Command::Run(r) => {
                assert_eq!(r.store_file.as_deref(), Some("lines.pages"));
                assert_eq!(r.resident_pages, Some(8));
            }
            other => panic!("unexpected {other:?}"),
        }
        // Defaulted budget when only the path is given; sweep takes the
        // flags too.
        match parse(&["sweep", "--benchmark", "mcf", "--store-file", "s.pages"]).unwrap() {
            Command::Sweep(r) => {
                assert_eq!(r.store_file.as_deref(), Some("s.pages"));
                assert_eq!(r.resident_pages, None);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Budget needs a path, must be nonzero, and the store flags stay
        // off gen and compare.
        assert!(matches!(
            parse(&["run", "--benchmark", "mcf", "--scheme", "deuce", "--resident-pages", "8"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&["run", "--benchmark", "mcf", "--scheme", "deuce", "--store-file", "s",
                    "--resident-pages", "0"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&["gen", "--benchmark", "libq", "-o", "t.bin", "--store-file", "s"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&["compare", "--benchmark", "mcf", "--store-file", "s"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn watch_takes_paths_and_flags() {
        match parse(&["watch", "cp.jsonl", "m.jsonl", "--once"]).unwrap() {
            Command::Watch(w) => {
                assert_eq!(w.paths, vec!["cp.jsonl", "m.jsonl"]);
                assert!(w.once);
                assert_eq!(w.interval_ms, 2000, "default poll period");
            }
            other => panic!("unexpected {other:?}"),
        }
        match parse(&["watch", "cp.jsonl", "--interval-ms", "250"]).unwrap() {
            Command::Watch(w) => {
                assert!(!w.once);
                assert_eq!(w.interval_ms, 250);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(parse(&["watch"]), Err(CliError::Usage(_))));
        assert!(matches!(parse(&["watch", "--once"]), Err(CliError::Usage(_))));
        assert!(matches!(
            parse(&["watch", "cp.jsonl", "--interval-ms", "0"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&["watch", "cp.jsonl", "--shard", "0/2"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn aes_backend_takes_no_arguments() {
        assert!(matches!(parse(&["aes-backend"]), Ok(Command::AesBackend)));
        assert!(matches!(
            parse(&["aes-backend", "--force", "hw"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn merge_takes_manifest_paths() {
        match parse(&["merge", "a.jsonl", "b.jsonl"]).unwrap() {
            Command::Merge(m) => assert_eq!(m.manifests, vec!["a.jsonl", "b.jsonl"]),
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(parse(&["merge"]), Err(CliError::Usage(_))));
        assert!(matches!(parse(&["merge", "--shard", "a"]), Err(CliError::Usage(_))));
    }

    #[test]
    fn serve_defaults_parse() {
        match parse(&["serve"]).unwrap() {
            Command::Serve(s) => assert_eq!(s, ServeArgs::default()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn serve_flags_parse() {
        let cmd = parse(&[
            "serve",
            "--tenants",
            "4",
            "--shards",
            "8",
            "--requests",
            "5000",
            "--queue-depth",
            "256",
            "--batch",
            "16",
            "--scheme",
            "dyndeuce",
            "--epoch",
            "64",
            "--benchmark",
            "mcf",
            "--lines",
            "512",
            "--seed",
            "7",
            "--telemetry",
            "serve.jsonl",
            "--progress",
            "serve-progress.jsonl",
            "--flight-recorder",
            "32",
            "--store-dir",
            "/tmp/pages",
            "--resident-pages",
            "64",
        ])
        .unwrap();
        match cmd {
            Command::Serve(s) => {
                assert_eq!(s.tenants, 4);
                assert_eq!(s.shards, 8);
                assert_eq!(s.requests, 5000);
                assert_eq!(s.queue_depth, 256);
                assert_eq!(s.batch, 16);
                assert_eq!(s.scheme.kind, SchemeKind::DynDeuce);
                assert_eq!(s.scheme.epoch, EpochInterval::new(64).unwrap());
                assert_eq!(s.benchmark, Benchmark::Mcf);
                assert_eq!(s.lines, 512);
                assert_eq!(s.seed, 7);
                assert_eq!(s.telemetry.as_deref(), Some("serve.jsonl"));
                assert_eq!(s.progress.as_deref(), Some("serve-progress.jsonl"));
                assert_eq!(s.flight_recorder, Some(32));
                assert_eq!(s.store_dir.as_deref(), Some("/tmp/pages"));
                assert_eq!(s.resident_pages, Some(64));
                assert!(!s.replay);
            }
            other => panic!("unexpected {other:?}"),
        }
        match parse(&["serve", "--replay"]).unwrap() {
            Command::Serve(s) => assert!(s.replay),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn serve_rejects_unsatisfiable_shapes() {
        // A batch larger than the queue can never be accepted — the
        // parser refuses the livelock up front.
        assert!(matches!(
            parse(&["serve", "--batch", "64", "--queue-depth", "32"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(parse(&["serve", "--tenants", "0"]), Err(CliError::Usage(_))));
        assert!(matches!(parse(&["serve", "--shards", "0"]), Err(CliError::Usage(_))));
        assert!(matches!(parse(&["serve", "--queue-depth", "0"]), Err(CliError::Usage(_))));
        assert!(matches!(
            parse(&["serve", "--resident-pages", "16"]),
            Err(CliError::Usage(_)),
        ), "--resident-pages without --store-dir");
        assert!(matches!(parse(&["serve", "--flip"]), Err(CliError::Usage(_))));
        assert!(matches!(parse(&["serve", "--seed"]), Err(CliError::Usage(_))));
    }
}

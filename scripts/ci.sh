#!/usr/bin/env bash
# Tier-1 verification: hermetic build, full test suite, lint.
#
# The workspace has zero external dependencies, so everything runs with
# --offline on a bare toolchain. Run from the repository root:
#
#   bash scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline --workspace"
cargo build --release --offline --workspace

echo "==> cargo test -q --offline --workspace"
cargo test -q --offline --workspace

echo "==> cargo clippy -q --offline --workspace --all-targets -- -D warnings"
cargo clippy -q --offline --workspace --all-targets -- -D warnings

echo "==> tier-1 OK"

//! End-to-end tests of the compiled `deuce` binary.

use std::process::Command;

fn deuce() -> Command {
    Command::new(env!("CARGO_BIN_EXE_deuce"))
}

#[test]
fn help_prints_usage() {
    let output = deuce().arg("help").output().expect("binary runs");
    assert!(output.status.success());
    let text = String::from_utf8(output.stdout).unwrap();
    assert!(text.contains("USAGE"));
    assert!(text.contains("deuce run"));
}

#[test]
fn no_args_prints_usage_and_succeeds() {
    let output = deuce().output().expect("binary runs");
    assert!(output.status.success());
    assert!(String::from_utf8(output.stdout).unwrap().contains("USAGE"));
}

#[test]
fn bad_flag_fails_with_message() {
    let output = deuce().args(["run", "--bogus"]).output().expect("binary runs");
    assert!(!output.status.success());
    let err = String::from_utf8(output.stderr).unwrap();
    assert!(err.contains("bogus"));
}

#[test]
fn full_pipeline_through_the_binary() {
    let dir = std::env::temp_dir().join("deuce-bin-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("pipeline.trace");
    let trace_str = trace.to_str().unwrap();

    let output = deuce()
        .args([
            "gen", "--benchmark", "libq", "--writes", "400", "--lines", "32", "-o", trace_str,
        ])
        .output()
        .expect("gen runs");
    assert!(output.status.success(), "{:?}", output);

    let output = deuce().args(["stats", trace_str]).output().expect("stats runs");
    assert!(output.status.success());
    assert!(String::from_utf8(output.stdout).unwrap().contains("writes\t400"));

    let output = deuce()
        .args(["run", "--trace", trace_str, "--scheme", "deuce"])
        .output()
        .expect("run runs");
    assert!(output.status.success());
    let text = String::from_utf8(output.stdout).unwrap();
    assert!(text.contains("scheme\tDEUCE"), "{text}");

    let output = deuce()
        .args(["sweep", "--trace", trace_str])
        .output()
        .expect("sweep runs");
    assert!(output.status.success());
    assert_eq!(String::from_utf8(output.stdout).unwrap().lines().count(), 17);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn streamed_run_matches_materialised_through_the_binary() {
    let dir = std::env::temp_dir().join("deuce-bin-stream-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("s.jsonl");
    let trace_str = trace.to_str().unwrap();

    // JSONL gen, then the same run materialised and streamed.
    let output = deuce()
        .args([
            "gen", "--benchmark", "mcf", "--writes", "400", "--lines", "32", "--format", "jsonl",
            "-o", trace_str,
        ])
        .output()
        .expect("gen runs");
    assert!(output.status.success(), "{output:?}");

    let materialised = deuce()
        .args(["run", "--trace", trace_str, "--scheme", "deuce"])
        .output()
        .expect("run runs");
    assert!(materialised.status.success());
    let streamed = deuce()
        .args(["run", "--trace", trace_str, "--scheme", "deuce", "--stream"])
        .output()
        .expect("run --stream runs");
    assert!(streamed.status.success());
    assert_eq!(streamed.stdout, materialised.stdout, "streaming must not change results");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sharded_sweep_through_the_binary() {
    let dir = std::env::temp_dir().join("deuce-bin-shard-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let m0 = dir.join("m0.jsonl");
    let m1 = dir.join("m1.jsonl");
    let base = ["--benchmark", "mcf", "--writes", "300", "--lines", "32", "--seed", "5"];

    let unsharded = deuce().arg("sweep").args(base).output().expect("sweep runs");
    assert!(unsharded.status.success(), "{unsharded:?}");

    for (spec, path) in [("0/2", &m0), ("1/2", &m1)] {
        let output = deuce()
            .arg("sweep")
            .args(base)
            .args(["--shard", spec, "--manifest", path.to_str().unwrap()])
            .output()
            .expect("shard runs");
        assert!(output.status.success(), "{output:?}");
        let text = String::from_utf8(output.stdout).unwrap();
        assert!(text.contains("cells_run\t8"), "{text}");
    }

    let merged = deuce()
        .args(["merge", m0.to_str().unwrap(), m1.to_str().unwrap()])
        .output()
        .expect("merge runs");
    assert!(merged.status.success(), "{merged:?}");
    assert_eq!(merged.stdout, unsharded.stdout, "merge output == unsharded sweep output");

    // A killed shard: truncate shard 1's manifest, resume it, re-merge.
    let text = std::fs::read_to_string(&m1).unwrap();
    let kept: String = text.lines().take(3).map(|l| format!("{l}\n")).collect();
    std::fs::write(&m1, kept).unwrap();
    let resumed = deuce()
        .arg("sweep")
        .args(base)
        .args(["--shard", "1/2", "--manifest", m1.to_str().unwrap(), "--resume"])
        .output()
        .expect("resume runs");
    assert!(resumed.status.success(), "{resumed:?}");
    let resumed_text = String::from_utf8(resumed.stdout).unwrap();
    assert!(resumed_text.contains("cells_skipped\t2"), "{resumed_text}");
    assert!(resumed_text.contains("cells_run\t6"), "{resumed_text}");
    let merged = deuce()
        .args(["merge", m0.to_str().unwrap(), m1.to_str().unwrap()])
        .output()
        .expect("merge runs");
    assert!(merged.status.success());
    assert_eq!(merged.stdout, unsharded.stdout, "resumed shard still merges identically");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn paged_store_kill_and_resume_through_the_binary() {
    let dir = std::env::temp_dir().join("deuce-bin-paged-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("p.jsonl");
    let pages = dir.join("p.pages");
    let cp = dir.join("p.cp");
    let trace_str = trace.to_str().unwrap();

    // 192 lines into a one-page budget: the run faults and evicts
    // throughout, so the checkpoints carry real flush state.
    let output = deuce()
        .args([
            "gen", "--benchmark", "mcf", "--writes", "600", "--lines", "192", "--format", "jsonl",
            "-o", trace_str,
        ])
        .output()
        .expect("gen runs");
    assert!(output.status.success(), "{output:?}");

    // First process: a streamed paged run emitting checkpoints. Both
    // the page file and the checkpoint file outlive the process.
    let paged_flags = ["--store-file", pages.to_str().unwrap(), "--resident-pages", "1"];
    let first = deuce()
        .args(["run", "--trace", trace_str, "--scheme", "deuce", "--stream"])
        .args(paged_flags)
        .args(["--checkpoint", cp.to_str().unwrap(), "--checkpoint-every", "200"])
        .output()
        .expect("run runs");
    assert!(first.status.success(), "{first:?}");
    let first_text = String::from_utf8(first.stdout).unwrap();
    assert!(first_text.contains("store_page_evictions"), "{first_text}");
    assert!(pages.exists(), "page file outlives the process");
    assert!(cp.exists(), "checkpoint file outlives the process");

    // Second process: replay-verify against the surviving checkpoint
    // over the same page-file path. Verification includes the flushed
    // page fingerprint, so the write-back history must recur exactly.
    let second = deuce()
        .args(["run", "--trace", trace_str, "--scheme", "deuce", "--stream"])
        .args(paged_flags)
        .args(["--from-checkpoint", cp.to_str().unwrap()])
        .output()
        .expect("resume runs");
    assert!(second.status.success(), "{second:?}");
    let second_text = String::from_utf8(second.stdout).unwrap();
    assert!(second_text.contains("resume_verified"), "{second_text}");

    // Apart from the checkpoint/resume trailer lines, the resumed run
    // reports exactly what the original did — including the store rows.
    let body = |text: &str| -> String {
        text.lines()
            .filter(|l| !l.starts_with("checkpoint\t") && !l.starts_with("resume_verified\t"))
            .map(|l| format!("{l}\n"))
            .collect()
    };
    assert_eq!(body(&second_text), body(&first_text));

    // An arena replay of the same checkpoint must be rejected: the
    // checkpoint pins the paged store's flush state.
    let arena = deuce()
        .args(["run", "--trace", trace_str, "--scheme", "deuce", "--stream"])
        .args(["--from-checkpoint", cp.to_str().unwrap()])
        .output()
        .expect("arena resume runs");
    assert!(!arena.status.success(), "arena resume must fail against a paged checkpoint");
    let err = String::from_utf8(arena.stderr).unwrap();
    assert!(err.contains("flush"), "{err}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn telemetry_run_and_report_through_the_binary() {
    let dir = std::env::temp_dir().join("deuce-bin-telemetry-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let jsonl = dir.join("run.jsonl");
    let jsonl_str = jsonl.to_str().unwrap();

    let output = deuce()
        .args([
            "run",
            "--benchmark",
            "libq",
            "--writes",
            "500",
            "--lines",
            "32",
            "--scheme",
            "deuce",
            "--telemetry",
            jsonl_str,
            "--sample-every",
            "64",
        ])
        .output()
        .expect("run runs");
    assert!(output.status.success(), "{output:?}");
    assert!(String::from_utf8(output.stdout).unwrap().contains("telemetry\t"));
    assert!(jsonl.exists());
    assert!(dir.join("run.csv").exists());

    let output = deuce().args(["report", jsonl_str]).output().expect("report runs");
    assert!(output.status.success(), "{output:?}");
    let text = String::from_utf8(output.stdout).unwrap();
    assert!(text.contains("== run DEUCE"), "{text}");
    assert!(text.contains("flips/write histogram:"));
    assert!(text.contains("time series (one row per 64 writes"));

    std::fs::remove_dir_all(&dir).ok();
}

//! Service internals: builder, handle, shard workers, and the
//! reservation-based backpressure protocol.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use deuce_crypto::OtpEngine;
use deuce_schemes::AnyScheme;
use deuce_sim::{SessionStep, SimConfig, Simulator, StepSession};
use deuce_telemetry::{FlightEvent, FlightRecorder, Histogram, Recorder};

use crate::report::{build_recorder, ServeReport, ServeStats, ShardReport, TenantReport};
use crate::request::{request_event, Request};

/// Requests drained per queue pop; bounds tenant-lock hold time.
const MAX_BATCH: usize = 32;

/// Opaque handle naming one registered tenant.
///
/// Obtained from [`ServeHandle::tenant`]; passing it to
/// [`ServeHandle::submit`] routes the batch into that tenant's key
/// domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TenantId(pub(crate) usize);

impl TenantId {
    /// The tenant's registration index (order of
    /// [`ServiceBuilder::tenant`] calls).
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

/// Why a batch was rejected at submission.
///
/// Rejection is all-or-nothing: a rejected batch reserved no queue
/// slots, consumed no sequence numbers, and will never be applied —
/// resubmitting the identical batch later is safe and equivalent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// A shard the batch routes to has no room for the batch's share.
    QueueFull {
        /// The shard that was full.
        shard: usize,
        /// That shard's occupancy (queued + reserved) at rejection.
        queued: usize,
        /// The per-shard queue capacity.
        capacity: usize,
        /// Suggested wait before retrying, estimated from the observed
        /// drain rate (wall clock; never feeds simulated results).
        retry_after: Duration,
    },
    /// [`ServeHandle::shutdown`] has begun; no new work is accepted.
    ShuttingDown,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::QueueFull { shard, queued, capacity, retry_after } => write!(
                f,
                "shard {shard} queue full ({queued}/{capacity}); retry after {retry_after:?}"
            ),
            Self::ShuttingDown => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Why the service failed to start.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// No tenants were registered.
    NoTenants,
    /// Two tenants share a name.
    DuplicateTenant(String),
    /// A tenant's store backend could not be opened (paged backends
    /// create their page file at start).
    Store {
        /// The tenant whose backend failed.
        tenant: String,
        /// The underlying error.
        error: String,
    },
    /// A shard worker thread could not be spawned.
    Spawn(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NoTenants => write!(f, "no tenants registered"),
            Self::DuplicateTenant(name) => write!(f, "duplicate tenant {name:?}"),
            Self::Store { tenant, error } => {
                write!(f, "tenant {tenant:?} store backend: {error}")
            }
            Self::Spawn(error) => write!(f, "spawn shard worker: {error}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// A tenant's stepping state: the session plus the reorder buffer that
/// turns shard-parallel delivery back into sequence order.
pub(crate) struct TenantCore {
    pub(crate) session: StepSession<AnyScheme, OtpEngine>,
    /// Delivered-but-not-applied requests, keyed by sequence number.
    pending: BTreeMap<u64, Request>,
    /// Next sequence number to commit.
    next_apply: u64,
    /// Requests applied so far.
    pub(crate) applied: u64,
    /// Ring of recent applied requests, when flight recording is on.
    pub(crate) flight: Option<FlightRing>,
    /// Flight ring snapshotted at the first uncorrectable write.
    pub(crate) ue_snapshot: Option<FlightRecorder>,
}

/// Minimal [`Recorder`] feeding only the flight ring. Recording never
/// changes simulated results (pinned by the simulator's parity tests),
/// so stepping with this is bit-identical to stepping bare.
pub(crate) struct FlightRing(pub(crate) FlightRecorder);

impl Recorder for FlightRing {
    fn wants_flight(&self) -> bool {
        true
    }

    fn flight_observed(&mut self, event: FlightEvent) {
        self.0.record(event);
    }
}

pub(crate) struct Tenant {
    pub(crate) name: String,
    pub(crate) core: Mutex<TenantCore>,
    /// Next sequence number to hand out at submission.
    next_seq: AtomicU64,
    /// Latched on the first uncorrectable write.
    pub(crate) degraded: AtomicBool,
}

/// One worker shard's queue and accounting.
pub(crate) struct Shard {
    queue: Mutex<VecDeque<Item>>,
    available: Condvar,
    /// Queued items plus reserved-but-not-yet-pushed slots; the value
    /// the admission check runs against.
    occupancy: AtomicUsize,
    pub(crate) drained: AtomicU64,
    pub(crate) batches: AtomicU64,
    pub(crate) max_depth: AtomicUsize,
    /// Wall time spent popping batches (lock held, excludes idle wait).
    pub(crate) drain_wall_ns: AtomicU64,
    /// Wall time spent stepping tenant sessions.
    pub(crate) apply_wall_ns: AtomicU64,
}

impl Shard {
    fn new() -> Self {
        Self {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            occupancy: AtomicUsize::new(0),
            drained: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            max_depth: AtomicUsize::new(0),
            drain_wall_ns: AtomicU64::new(0),
            apply_wall_ns: AtomicU64::new(0),
        }
    }

    /// Reserves `n` slots against `capacity`; false if that would
    /// overflow the queue.
    fn try_reserve(&self, n: usize, capacity: usize) -> bool {
        self.occupancy
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |cur| {
                (cur + n <= capacity).then_some(cur + n)
            })
            .is_ok()
    }

    fn release(&self, n: usize) {
        self.occupancy.fetch_sub(n, Ordering::SeqCst);
    }
}

struct Item {
    tenant: usize,
    seq: u64,
    request: Request,
}

pub(crate) struct ServiceState {
    pub(crate) tenants: Vec<Tenant>,
    pub(crate) shards: Vec<Shard>,
    pub(crate) queue_depth: usize,
    stop: AtomicBool,
    paused: Mutex<bool>,
    unpaused: Condvar,
    pub(crate) started: Instant,
    pub(crate) submitted: AtomicU64,
    pub(crate) rejected: AtomicU64,
    pub(crate) applied: AtomicU64,
    pub(crate) batch_sizes: Mutex<Histogram>,
}

impl ServiceState {
    fn wait_unpaused(&self) {
        let mut paused = self.paused.lock().unwrap_or_else(PoisonError::into_inner);
        while *paused && !self.stop.load(Ordering::SeqCst) {
            paused = self
                .unpaused
                .wait(paused)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// Routes `(tenant, addr)` to a shard (splitmix64 finalizer over the
/// pair). Pure, so routing is identical across runs; determinism does
/// not depend on it because commits go through the reorder buffer.
fn shard_of(tenant: usize, addr: u64, shards: usize) -> usize {
    let mut z = (tenant as u64)
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(addr);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    ((z ^ (z >> 31)) % shards as u64) as usize
}

/// Configures and launches a service; see the crate docs for the
/// guarantees the running service provides.
///
/// # Examples
///
/// ```
/// use deuce_serve::ServiceBuilder;
/// use deuce_sim::{SchemeKind, SimConfig};
///
/// let handle = ServiceBuilder::new()
///     .shards(4)
///     .queue_depth(256)
///     .tenant("solo", SimConfig::new(SchemeKind::Deuce))
///     .start()
///     .expect("one tenant, four shards");
/// let report = handle.shutdown();
/// assert_eq!(report.shards.len(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct ServiceBuilder {
    shards: usize,
    queue_depth: usize,
    paused: bool,
    flight_capacity: Option<usize>,
    tenants: Vec<(String, SimConfig)>,
}

impl Default for ServiceBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ServiceBuilder {
    /// A builder with one shard, a queue depth of 1024, no flight
    /// recording, and no tenants.
    #[must_use]
    pub fn new() -> Self {
        Self {
            shards: 1,
            queue_depth: 1024,
            paused: false,
            flight_capacity: None,
            tenants: Vec::new(),
        }
    }

    /// Sets the worker shard count (clamped to at least 1).
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Sets the per-shard queue capacity (clamped to at least 1).
    /// Submissions that would overflow any routed-to shard are rejected
    /// whole with [`SubmitError::QueueFull`].
    #[must_use]
    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth.max(1);
        self
    }

    /// Starts the service with shard workers parked: submissions queue
    /// (and exercise backpressure deterministically) but nothing is
    /// applied until [`ServeHandle::resume`]. Made for tests.
    #[must_use]
    pub fn start_paused(mut self) -> Self {
        self.paused = true;
        self
    }

    /// Keeps a per-tenant ring of the last `capacity` applied write
    /// events, snapshotted at the first uncorrectable write and
    /// surfaced in [`TenantReport::flight`] for post-mortems.
    #[must_use]
    pub fn with_flight_recorder(mut self, capacity: usize) -> Self {
        self.flight_capacity = Some(capacity);
        self
    }

    /// Registers a tenant: an isolated key domain simulated under
    /// `config`. Names must be unique.
    #[must_use]
    pub fn tenant(mut self, name: impl Into<String>, config: SimConfig) -> Self {
        self.tenants.push((name.into(), config));
        self
    }

    /// Builds every tenant's session, spawns the shard workers, and
    /// returns the running service's handle.
    ///
    /// # Errors
    ///
    /// [`ServeError::NoTenants`] with an empty tenant list,
    /// [`ServeError::DuplicateTenant`] on a name collision,
    /// [`ServeError::Store`] if a tenant's store backend cannot be
    /// opened, and [`ServeError::Spawn`] if a worker thread fails to
    /// start.
    pub fn start(self) -> Result<ServeHandle, ServeError> {
        if self.tenants.is_empty() {
            return Err(ServeError::NoTenants);
        }
        let mut tenants = Vec::with_capacity(self.tenants.len());
        for (name, config) in self.tenants {
            if tenants.iter().any(|t: &Tenant| t.name == name) {
                return Err(ServeError::DuplicateTenant(name));
            }
            let session = Simulator::new(config).owned_session(1).map_err(|e| {
                ServeError::Store { tenant: name.clone(), error: e.to_string() }
            })?;
            tenants.push(Tenant {
                name,
                core: Mutex::new(TenantCore {
                    session,
                    pending: BTreeMap::new(),
                    next_apply: 0,
                    applied: 0,
                    flight: self
                        .flight_capacity
                        .map(|cap| FlightRing(FlightRecorder::new(cap))),
                    ue_snapshot: None,
                }),
                next_seq: AtomicU64::new(0),
                degraded: AtomicBool::new(false),
            });
        }

        let state = Arc::new(ServiceState {
            tenants,
            shards: (0..self.shards).map(|_| Shard::new()).collect(),
            queue_depth: self.queue_depth,
            stop: AtomicBool::new(false),
            paused: Mutex::new(self.paused),
            unpaused: Condvar::new(),
            started: Instant::now(),
            submitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            applied: AtomicU64::new(0),
            batch_sizes: Mutex::new(Histogram::new()),
        });

        let mut workers = Vec::with_capacity(self.shards);
        for shard in 0..self.shards {
            let state = Arc::clone(&state);
            let handle = std::thread::Builder::new()
                .name(format!("deuce-serve-{shard}"))
                .spawn(move || worker(&state, shard))
                .map_err(|e| ServeError::Spawn(e.to_string()))?;
            workers.push(handle);
        }
        Ok(ServeHandle { state, workers })
    }
}

/// The shard worker loop: drain a batch from this shard's queue,
/// deliver each item into its tenant's reorder buffer, and commit
/// everything that is next in sequence.
fn worker(state: &ServiceState, shard_idx: usize) {
    let shard = &state.shards[shard_idx];
    let mut batch: Vec<Item> = Vec::with_capacity(MAX_BATCH);
    loop {
        state.wait_unpaused();
        batch.clear();
        {
            let mut queue = shard.queue.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if !queue.is_empty() {
                    let t0 = Instant::now();
                    shard
                        .max_depth
                        .fetch_max(queue.len(), Ordering::Relaxed);
                    while batch.len() < MAX_BATCH {
                        match queue.pop_front() {
                            Some(item) => batch.push(item),
                            None => break,
                        }
                    }
                    shard
                        .drain_wall_ns
                        .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    break;
                }
                if state.stop.load(Ordering::SeqCst)
                    && shard.occupancy.load(Ordering::SeqCst) == 0
                {
                    return;
                }
                queue = shard
                    .available
                    .wait_timeout(queue, Duration::from_millis(5))
                    .unwrap_or_else(PoisonError::into_inner)
                    .0;
            }
        }

        shard.release(batch.len());
        shard.drained.fetch_add(batch.len() as u64, Ordering::SeqCst);
        shard.batches.fetch_add(1, Ordering::Relaxed);
        state
            .batch_sizes
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .record(batch.len() as u64);

        let t0 = Instant::now();
        for item in batch.drain(..) {
            let tenant = &state.tenants[item.tenant];
            let mut guard = tenant.core.lock().unwrap_or_else(PoisonError::into_inner);
            let core = &mut *guard;
            core.pending.insert(item.seq, item.request);
            while let Some(request) = core.pending.remove(&core.next_apply) {
                let event = request_event(core.next_apply, &request);
                let step = match core.flight.as_mut() {
                    Some(ring) => core.session.step_recorded(&event, ring),
                    None => core.session.step(&event),
                };
                core.next_apply += 1;
                core.applied += 1;
                state.applied.fetch_add(1, Ordering::SeqCst);
                if let SessionStep::Write { uncorrectable: true, .. } = step {
                    tenant.degraded.store(true, Ordering::SeqCst);
                    if core.ue_snapshot.is_none() {
                        core.ue_snapshot =
                            core.flight.as_ref().map(|ring| ring.0.clone());
                    }
                }
            }
        }
        shard
            .apply_wall_ns
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }
}

/// Handle to a running service: submit work, watch progress, shut down.
///
/// Dropping the handle without calling [`shutdown`](Self::shutdown)
/// leaks the worker threads for the remainder of the process; always
/// shut down to collect results.
pub struct ServeHandle {
    state: Arc<ServiceState>,
    workers: Vec<JoinHandle<()>>,
}

impl ServeHandle {
    /// Looks up a tenant by registration name.
    ///
    /// # Examples
    ///
    /// ```
    /// use deuce_serve::ServiceBuilder;
    /// use deuce_sim::{SchemeKind, SimConfig};
    ///
    /// let handle = ServiceBuilder::new()
    ///     .tenant("a", SimConfig::new(SchemeKind::Deuce))
    ///     .start()
    ///     .unwrap();
    /// assert!(handle.tenant("a").is_some());
    /// assert!(handle.tenant("nope").is_none());
    /// handle.shutdown();
    /// ```
    #[must_use]
    pub fn tenant(&self, name: &str) -> Option<TenantId> {
        self.state
            .tenants
            .iter()
            .position(|t| t.name == name)
            .map(TenantId)
    }

    /// Registered tenant names, in registration order.
    #[must_use]
    pub fn tenant_names(&self) -> Vec<String> {
        self.state.tenants.iter().map(|t| t.name.clone()).collect()
    }

    /// The worker shard count.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.state.shards.len()
    }

    /// The per-shard queue capacity.
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.state.queue_depth
    }

    /// Submits a batch of requests for `tenant`, atomically.
    ///
    /// Queue slots are reserved on every shard the batch routes to
    /// *before* anything is enqueued; if any shard lacks room the
    /// reservations are rolled back and the whole batch is rejected
    /// with [`SubmitError::QueueFull`] — no request from a rejected
    /// batch is ever applied, and no sequence numbers are consumed.
    /// On success every request is assigned the tenant's next sequence
    /// numbers in batch order and will be applied exactly once.
    ///
    /// Sequence order across *separate* `submit` calls for the same
    /// tenant follows the order the calls reserve, so drive each
    /// tenant from one thread when replay-comparable streams matter.
    ///
    /// # Errors
    ///
    /// [`SubmitError::QueueFull`] under backpressure (resubmit after
    /// `retry_after`), [`SubmitError::ShuttingDown`] once shutdown has
    /// begun. An empty batch always succeeds. A batch whose share on
    /// any single shard exceeds [`queue_depth`](Self::queue_depth) can
    /// *never* be accepted — retrying it loops forever; keep batches
    /// no larger than the queue depth.
    ///
    /// # Examples
    ///
    /// ```
    /// use deuce_serve::{Request, ServiceBuilder};
    /// use deuce_sim::{SchemeKind, SimConfig};
    /// use deuce_trace::LineAddr;
    ///
    /// let handle = ServiceBuilder::new()
    ///     .tenant("a", SimConfig::new(SchemeKind::Deuce))
    ///     .start()
    ///     .unwrap();
    /// let a = handle.tenant("a").unwrap();
    /// handle
    ///     .submit(a, &[Request::write(LineAddr::new(1), [1; 64])])
    ///     .unwrap();
    /// assert_eq!(handle.shutdown().applied, 1);
    /// ```
    pub fn submit(&self, tenant: TenantId, batch: &[Request]) -> Result<(), SubmitError> {
        if batch.is_empty() {
            return Ok(());
        }
        if self.state.stop.load(Ordering::SeqCst) {
            return Err(SubmitError::ShuttingDown);
        }
        let shards = self.state.shards.len();
        let mut counts = vec![0usize; shards];
        for request in batch {
            counts[shard_of(tenant.0, request.addr().value(), shards)] += 1;
        }

        for (shard, &n) in counts.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if !self.state.shards[shard].try_reserve(n, self.state.queue_depth) {
                for (prior, &m) in counts.iter().enumerate().take(shard) {
                    if m > 0 {
                        self.state.shards[prior].release(m);
                    }
                }
                self.state
                    .rejected
                    .fetch_add(batch.len() as u64, Ordering::SeqCst);
                let queued = self.state.shards[shard].occupancy.load(Ordering::SeqCst);
                return Err(SubmitError::QueueFull {
                    shard,
                    queued,
                    capacity: self.state.queue_depth,
                    retry_after: self.retry_after(queued),
                });
            }
        }

        let base = self.state.tenants[tenant.0]
            .next_seq
            .fetch_add(batch.len() as u64, Ordering::SeqCst);
        let mut routed: Vec<Vec<Item>> = (0..shards).map(|_| Vec::new()).collect();
        for (i, request) in batch.iter().enumerate() {
            let shard = shard_of(tenant.0, request.addr().value(), shards);
            routed[shard].push(Item {
                tenant: tenant.0,
                seq: base + i as u64,
                request: *request,
            });
        }
        for (shard, items) in routed.into_iter().enumerate() {
            if items.is_empty() {
                continue;
            }
            let target = &self.state.shards[shard];
            let mut queue = target.queue.lock().unwrap_or_else(PoisonError::into_inner);
            queue.extend(items);
            drop(queue);
            target.available.notify_all();
        }
        self.state
            .submitted
            .fetch_add(batch.len() as u64, Ordering::SeqCst);
        Ok(())
    }

    /// Estimated wait for `queued` items to drain at the observed
    /// per-shard rate; a 10ms default before any drain data exists.
    fn retry_after(&self, queued: usize) -> Duration {
        let elapsed = self.state.started.elapsed().as_secs_f64();
        let drained: u64 = self
            .state
            .shards
            .iter()
            .map(|s| s.drained.load(Ordering::Relaxed))
            .sum();
        let rate = drained as f64 / self.state.shards.len() as f64 / elapsed.max(1e-6);
        if rate < 1.0 {
            Duration::from_millis(10)
        } else {
            Duration::from_secs_f64((queued as f64 / rate).clamp(0.000_1, 0.25))
        }
    }

    /// Releases workers parked by [`ServiceBuilder::start_paused`].
    /// Idempotent; a no-op on a never-paused service.
    ///
    /// # Examples
    ///
    /// ```
    /// use deuce_serve::{Request, ServiceBuilder};
    /// use deuce_sim::{SchemeKind, SimConfig};
    /// use deuce_trace::LineAddr;
    ///
    /// let handle = ServiceBuilder::new()
    ///     .start_paused()
    ///     .tenant("a", SimConfig::new(SchemeKind::Deuce))
    ///     .start()
    ///     .unwrap();
    /// let a = handle.tenant("a").unwrap();
    /// handle.submit(a, &[Request::read(LineAddr::new(0))]).unwrap();
    /// handle.resume();
    /// assert_eq!(handle.shutdown().applied, 1);
    /// ```
    pub fn resume(&self) {
        let mut paused = self
            .state
            .paused
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        *paused = false;
        drop(paused);
        self.state.unpaused.notify_all();
    }

    /// A point-in-time progress snapshot (lock-free; safe to poll from
    /// a monitoring loop while submitters run).
    ///
    /// # Examples
    ///
    /// ```
    /// use deuce_serve::ServiceBuilder;
    /// use deuce_sim::{SchemeKind, SimConfig};
    ///
    /// let handle = ServiceBuilder::new()
    ///     .tenant("a", SimConfig::new(SchemeKind::Deuce))
    ///     .start()
    ///     .unwrap();
    /// let stats = handle.stats();
    /// assert_eq!(stats.submitted, 0);
    /// assert_eq!(stats.shard_depths, vec![0]);
    /// handle.shutdown();
    /// ```
    #[must_use]
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            submitted: self.state.submitted.load(Ordering::SeqCst),
            rejected: self.state.rejected.load(Ordering::SeqCst),
            applied: self.state.applied.load(Ordering::SeqCst),
            elapsed: self.state.started.elapsed(),
            shard_depths: self
                .state
                .shards
                .iter()
                .map(|s| s.occupancy.load(Ordering::SeqCst))
                .collect(),
        }
    }

    /// Stops admission, drains every queue, joins the workers, and
    /// finalises every tenant — returning the full [`ServeReport`].
    ///
    /// All requests accepted before the call are applied before their
    /// tenant is finalised; submissions racing with shutdown fail with
    /// [`SubmitError::ShuttingDown`]. A panicked shard is recorded in
    /// [`ServeReport::panicked_shards`] rather than propagated, so the
    /// surviving tenants' results are still collected.
    ///
    /// # Examples
    ///
    /// ```
    /// use deuce_serve::{Request, ServiceBuilder};
    /// use deuce_sim::{SchemeKind, SimConfig};
    /// use deuce_trace::LineAddr;
    ///
    /// let handle = ServiceBuilder::new()
    ///     .shards(2)
    ///     .tenant("a", SimConfig::new(SchemeKind::Deuce))
    ///     .start()
    ///     .unwrap();
    /// let a = handle.tenant("a").unwrap();
    /// for i in 0..10 {
    ///     handle
    ///         .submit(a, &[Request::write(LineAddr::new(i % 4), [i as u8; 64])])
    ///         .unwrap();
    /// }
    /// let report = handle.shutdown();
    /// assert_eq!(report.tenants[0].requests_applied, 10);
    /// let result = report.tenants[0].result.as_ref().unwrap();
    /// assert_eq!(result.writes + result.reads + 4, 10); // 4 first touches
    /// ```
    #[must_use = "the report carries every tenant's results"]
    pub fn shutdown(self) -> ServeReport {
        self.state.stop.store(true, Ordering::SeqCst);
        self.resume();
        for shard in &self.state.shards {
            shard.available.notify_all();
        }
        let mut panicked_shards = Vec::new();
        for (idx, workers) in self.workers.into_iter().enumerate() {
            if workers.join().is_err() {
                panicked_shards.push(idx);
            }
        }
        let state = match Arc::try_unwrap(self.state) {
            Ok(state) => state,
            Err(_) => unreachable!("all workers joined; the handle holds the last Arc"),
        };
        let elapsed = state.started.elapsed();

        let shards: Vec<ShardReport> = state
            .shards
            .iter()
            .map(|s| ShardReport {
                drained: s.drained.load(Ordering::SeqCst),
                batches: s.batches.load(Ordering::SeqCst),
                max_depth: s.max_depth.load(Ordering::SeqCst),
                drain_wall_ns: s.drain_wall_ns.load(Ordering::SeqCst),
                apply_wall_ns: s.apply_wall_ns.load(Ordering::SeqCst),
            })
            .collect();

        let mut tenants = Vec::with_capacity(state.tenants.len());
        for tenant in state.tenants {
            let core = tenant
                .core
                .into_inner()
                .unwrap_or_else(PoisonError::into_inner);
            let fingerprint = core.session.content_fingerprint();
            let flight = core.ue_snapshot.or(core.flight.map(|ring| ring.0));
            tenants.push(TenantReport {
                name: tenant.name,
                requests_applied: core.applied,
                fingerprint,
                degraded: tenant.degraded.load(Ordering::SeqCst),
                result: core.session.finish().map_err(|e| e.to_string()),
                flight,
            });
        }

        let applied = state.applied.load(Ordering::SeqCst);
        let batch_sizes = state
            .batch_sizes
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner);
        let recorder = build_recorder(&tenants, &shards);
        ServeReport {
            tenants,
            shards,
            submitted: state.submitted.load(Ordering::SeqCst),
            rejected: state.rejected.load(Ordering::SeqCst),
            applied,
            elapsed,
            batch_sizes,
            panicked_shards,
            recorder,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deuce_sim::SchemeKind;
    use deuce_trace::LineAddr;

    fn config() -> SimConfig {
        SimConfig::new(SchemeKind::Deuce)
    }

    #[test]
    fn start_rejects_empty_and_duplicate_tenants() {
        assert_eq!(
            ServiceBuilder::new().start().err(),
            Some(ServeError::NoTenants)
        );
        let err = ServiceBuilder::new()
            .tenant("a", config())
            .tenant("a", config())
            .start()
            .err();
        assert_eq!(err, Some(ServeError::DuplicateTenant("a".into())));
    }

    #[test]
    fn shard_routing_is_stable_and_in_range() {
        for tenant in 0..4 {
            for addr in 0..64 {
                let s = shard_of(tenant, addr, 3);
                assert!(s < 3);
                assert_eq!(s, shard_of(tenant, addr, 3));
            }
        }
        assert_eq!(shard_of(0, 0, 1), 0);
    }

    #[test]
    fn paused_service_reports_depth_then_drains_on_resume() {
        let handle = ServiceBuilder::new()
            .start_paused()
            .queue_depth(8)
            .tenant("a", config())
            .start()
            .unwrap();
        let a = handle.tenant("a").unwrap();
        let reqs: Vec<Request> = (0..6)
            .map(|i| Request::write(LineAddr::new(i), [i as u8; 64]))
            .collect();
        handle.submit(a, &reqs).unwrap();
        let stats = handle.stats();
        assert_eq!(stats.submitted, 6);
        assert_eq!(stats.applied, 0);
        assert_eq!(stats.shard_depths.iter().sum::<usize>(), 6);
        handle.resume();
        let report = handle.shutdown();
        assert_eq!(report.applied, 6);
        assert_eq!(report.tenants[0].requests_applied, 6);
        assert!(report.panicked_shards.is_empty());
    }

    #[test]
    fn queue_full_rejects_whole_batch_and_rolls_back() {
        let handle = ServiceBuilder::new()
            .start_paused()
            .queue_depth(4)
            .tenant("a", config())
            .start()
            .unwrap();
        let a = handle.tenant("a").unwrap();
        let make = |lo: u64, n: u64| -> Vec<Request> {
            (lo..lo + n)
                .map(|i| Request::write(LineAddr::new(i), [1; 64]))
                .collect()
        };
        handle.submit(a, &make(0, 3)).unwrap();
        let err = handle.submit(a, &make(3, 3)).unwrap_err();
        assert!(matches!(err, SubmitError::QueueFull { capacity: 4, .. }));
        // The failed reservation rolled back: one more still fits.
        handle.submit(a, &make(100, 1)).unwrap();
        handle.resume();
        let report = handle.shutdown();
        assert_eq!(report.applied, 4, "only accepted requests applied");
        assert_eq!(report.rejected, 3);
    }

    #[test]
    fn submit_after_shutdown_begins_is_rejected() {
        let handle = ServiceBuilder::new().tenant("a", config()).start().unwrap();
        let a = handle.tenant("a").unwrap();
        handle.state.stop.store(true, Ordering::SeqCst);
        assert_eq!(
            handle.submit(a, &[Request::read(LineAddr::new(0))]),
            Err(SubmitError::ShuttingDown)
        );
        let report = handle.shutdown();
        assert_eq!(report.applied, 0);
    }
}

//! Figure 14: lifetime normalized to encrypted memory.
//!
//! Paper: FNW ≈ 1.14×, DEUCE ≈ 1.11× (bit-write reduction wasted on a
//! skewed footprint), DEUCE+HWL ≈ 2× (reduction fully realized).
//!
//! Methodology notes (documented in DESIGN.md §3): all configurations
//! run on top of vertical wear leveling (Start-Gap), so the binding wear
//! is the hottest *bit position* aggregated across lines. The runs here
//! use the hashed HWL variant with a small gap interval so the rotation
//! cycles enough times at simulation scale; Start-Gap copy writes are
//! excluded from wear (≤1% of writes at the paper's ψ=100).

use deuce_bench::{mean, per_benchmark, run_config, tsv_header, tsv_row, ExperimentArgs};
use deuce_sim::{HwlMode, LifetimePolicy, SimConfig, WearConfig};
use deuce_schemes::SchemeKind;

fn main() {
    let args = ExperimentArgs::parse();
    let policy = LifetimePolicy::VerticalLeveled;

    let rows = per_benchmark(&args.benchmarks, |benchmark| {
        let trace = args.trace(benchmark);
        let lines = args.lines * usize::from(args.cores);
        let wear = WearConfig::vertical_only(lines);
        let wear_hwl = WearConfig::with_hwl(lines, HwlMode::Hashed).gap_interval(2);

        let lifetime = |kind: SchemeKind, wear: WearConfig| {
            run_config(SimConfig::new(kind).with_wear(wear), &trace)
                .lifetime(policy)
                .expect("wear enabled")
        };

        let encrypted = lifetime(SchemeKind::EncryptedDcw, wear);
        [
            lifetime(SchemeKind::EncryptedFnw, wear) / encrypted,
            lifetime(SchemeKind::Deuce, wear) / encrypted,
            lifetime(SchemeKind::Deuce, wear_hwl) / encrypted,
        ]
    });

    tsv_header(&["benchmark", "FNW", "DEUCE", "DEUCE-HWL"]);
    let mut columns = vec![Vec::new(); 3];
    for (benchmark, ratios) in &rows {
        let mut cells = vec![benchmark.name().to_string()];
        for (i, r) in ratios.iter().enumerate() {
            columns[i].push(*r);
            cells.push(format!("{r:.2}x"));
        }
        tsv_row(&cells);
    }
    let mut avg = vec!["AVERAGE".to_string()];
    for column in &columns {
        avg.push(format!("{:.2}x", mean(column)));
    }
    tsv_row(&avg);
}

//! The 4×4 AES state and the four round transformations of FIPS-197 §5.

use crate::gf;
use crate::sbox;
use crate::Block;

/// The AES state: 16 bytes arranged column-major as in FIPS-197 §3.4
/// (`state[r][c] = input[r + 4c]`). We store it flat in input order, so
/// index `i` holds row `i % 4`, column `i / 4`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct State {
    bytes: [u8; 16],
}

impl State {
    #[must_use]
    pub(crate) fn from_bytes(bytes: &Block) -> Self {
        Self { bytes: *bytes }
    }

    #[must_use]
    pub(crate) fn to_bytes(self) -> Block {
        self.bytes
    }

    /// `AddRoundKey`: XOR the state with a 16-byte round key.
    pub(crate) fn add_round_key(&mut self, round_key: &Block) {
        for (b, k) in self.bytes.iter_mut().zip(round_key) {
            *b ^= k;
        }
    }

    /// `SubBytes`: apply the S-box to every byte.
    pub(crate) fn sub_bytes(&mut self) {
        for b in &mut self.bytes {
            *b = sbox::sub(*b);
        }
    }

    /// `InvSubBytes`.
    pub(crate) fn inv_sub_bytes(&mut self) {
        for b in &mut self.bytes {
            *b = sbox::inv_sub(*b);
        }
    }

    #[inline]
    fn at(&self, row: usize, col: usize) -> u8 {
        self.bytes[row + 4 * col]
    }

    #[inline]
    fn set(&mut self, row: usize, col: usize, value: u8) {
        self.bytes[row + 4 * col] = value;
    }

    /// `ShiftRows`: row `r` rotates left by `r` positions.
    pub(crate) fn shift_rows(&mut self) {
        let snapshot = *self;
        for row in 1..4 {
            for col in 0..4 {
                self.set(row, col, snapshot.at(row, (col + row) % 4));
            }
        }
    }

    /// `InvShiftRows`: row `r` rotates right by `r` positions.
    pub(crate) fn inv_shift_rows(&mut self) {
        let snapshot = *self;
        for row in 1..4 {
            for col in 0..4 {
                self.set(row, col, snapshot.at(row, (col + 4 - row) % 4));
            }
        }
    }

    /// `MixColumns`: each column is multiplied by the fixed polynomial
    /// {03}x^3 + {01}x^2 + {01}x + {02} over GF(2^8).
    pub(crate) fn mix_columns(&mut self) {
        for col in 0..4 {
            let a0 = self.at(0, col);
            let a1 = self.at(1, col);
            let a2 = self.at(2, col);
            let a3 = self.at(3, col);
            self.set(0, col, gf::xtime(a0) ^ gf::mul(a1, 3) ^ a2 ^ a3);
            self.set(1, col, a0 ^ gf::xtime(a1) ^ gf::mul(a2, 3) ^ a3);
            self.set(2, col, a0 ^ a1 ^ gf::xtime(a2) ^ gf::mul(a3, 3));
            self.set(3, col, gf::mul(a0, 3) ^ a1 ^ a2 ^ gf::xtime(a3));
        }
    }

    /// `InvMixColumns`: multiply by {0b}x^3 + {0d}x^2 + {09}x + {0e}.
    pub(crate) fn inv_mix_columns(&mut self) {
        for col in 0..4 {
            let a0 = self.at(0, col);
            let a1 = self.at(1, col);
            let a2 = self.at(2, col);
            let a3 = self.at(3, col);
            self.set(
                0,
                col,
                gf::mul(a0, 0x0e) ^ gf::mul(a1, 0x0b) ^ gf::mul(a2, 0x0d) ^ gf::mul(a3, 0x09),
            );
            self.set(
                1,
                col,
                gf::mul(a0, 0x09) ^ gf::mul(a1, 0x0e) ^ gf::mul(a2, 0x0b) ^ gf::mul(a3, 0x0d),
            );
            self.set(
                2,
                col,
                gf::mul(a0, 0x0d) ^ gf::mul(a1, 0x09) ^ gf::mul(a2, 0x0e) ^ gf::mul(a3, 0x0b),
            );
            self.set(
                3,
                col,
                gf::mul(a0, 0x0b) ^ gf::mul(a1, 0x0d) ^ gf::mul(a2, 0x09) ^ gf::mul(a3, 0x0e),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_state() -> State {
        let mut bytes = [0u8; 16];
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = (i as u8).wrapping_mul(0x1f).wrapping_add(3);
        }
        State::from_bytes(&bytes)
    }

    #[test]
    fn shift_rows_roundtrip() {
        let original = sample_state();
        let mut s = original;
        s.shift_rows();
        assert_ne!(s, original);
        s.inv_shift_rows();
        assert_eq!(s, original);
    }

    #[test]
    fn shift_rows_leaves_row_zero_alone() {
        let original = sample_state();
        let mut s = original;
        s.shift_rows();
        for col in 0..4 {
            assert_eq!(s.at(0, col), original.at(0, col));
        }
    }

    #[test]
    fn mix_columns_roundtrip() {
        let original = sample_state();
        let mut s = original;
        s.mix_columns();
        assert_ne!(s, original);
        s.inv_mix_columns();
        assert_eq!(s, original);
    }

    /// FIPS-197 §5.1.3 MixColumns example column: [db 13 53 45] -> [8e 4d a1 bc].
    #[test]
    fn mix_columns_known_column() {
        let mut bytes = [0u8; 16];
        bytes[0] = 0xdb;
        bytes[1] = 0x13;
        bytes[2] = 0x53;
        bytes[3] = 0x45;
        let mut s = State::from_bytes(&bytes);
        s.mix_columns();
        let out = s.to_bytes();
        assert_eq!(&out[..4], &[0x8e, 0x4d, 0xa1, 0xbc]);
    }

    #[test]
    fn sub_bytes_roundtrip() {
        let original = sample_state();
        let mut s = original;
        s.sub_bytes();
        s.inv_sub_bytes();
        assert_eq!(s, original);
    }

    #[test]
    fn add_round_key_is_involutive() {
        let original = sample_state();
        let key = [0xa5u8; 16];
        let mut s = original;
        s.add_round_key(&key);
        s.add_round_key(&key);
        assert_eq!(s, original);
    }
}

//! Address-only pad encryption (§7.2).
//!
//! If a system only needs protection against the *stolen DIMM* attack —
//! not bus snooping — the paper observes it can drop the counter from
//! counter-mode encryption and derive each line's pad from the line
//! address alone. Data at rest is unreadable without the key, every
//! line's pad is unique (no cross-line dictionary attacks), and because
//! the pad never changes, bit flips stay at unencrypted-DCW levels.
//!
//! The cost is security against an on-bus adversary: consecutive
//! writebacks of a line are XORed with the *same* pad, so
//! `ct_1 ^ ct_2 = pt_1 ^ pt_2` leaks the plaintext difference — exactly
//! the trade-off §7.2 describes. The
//! `examples/stolen_dimm.rs` demo shows both sides.

use deuce_crypto::{LineAddr, LineBytes, OtpEngine};
use deuce_nvm::{LineImage, MetaBits};

use crate::scheme::{LineMut, LineRef, LineScheme, SchemeCell};
use crate::WriteOutcome;

/// The fixed counter value used for pad derivation (there is no stored
/// counter).
const PAD_EPOCH: u64 = 0;

/// Counterless encryption with a per-line, address-derived pad. Per-line
/// state: none (the pad never changes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AddrPadScheme;

impl LineScheme for AddrPadScheme {
    type State = ();

    fn needs_shadow(&self) -> bool {
        false
    }

    fn metadata_bits(&self) -> u32 {
        0
    }

    fn init(&self, engine: &OtpEngine, addr: LineAddr, initial: &LineBytes) -> (LineBytes, ()) {
        (engine.line_pad(addr, PAD_EPOCH).xor(initial), ())
    }

    fn write(
        &self,
        engine: &OtpEngine,
        addr: LineAddr,
        line: LineMut<'_, ()>,
        data: &LineBytes,
    ) -> WriteOutcome {
        let old_image = LineImage::new(*line.stored, MetaBits::new(0));
        *line.stored = engine.line_pad(addr, PAD_EPOCH).xor(data);
        WriteOutcome::from_images(
            old_image,
            LineImage::new(*line.stored, MetaBits::new(0)),
            0,
            false,
        )
    }

    fn read(&self, engine: &OtpEngine, addr: LineAddr, line: LineRef<'_, ()>) -> LineBytes {
        engine.line_pad(addr, PAD_EPOCH).xor(line.stored)
    }

    fn image(&self, line: LineRef<'_, ()>) -> LineImage {
        LineImage::new(*line.stored, MetaBits::new(0))
    }
}

/// One memory line encrypted with a per-line, address-derived pad
/// (counterless).
pub type AddrPadLine = SchemeCell<AddrPadScheme>;

impl AddrPadLine {
    /// Initializes the line with `initial` encrypted under the address
    /// pad.
    #[must_use]
    pub fn new(engine: &OtpEngine, addr: LineAddr, initial: &LineBytes) -> Self {
        Self::with_scheme(AddrPadScheme, engine, addr, initial)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deuce_crypto::SecretKey;

    fn engine() -> OtpEngine {
        OtpEngine::new(&SecretKey::from_seed(77))
    }

    #[test]
    fn roundtrip_and_at_rest_secrecy() {
        let e = engine();
        let secret = [0x42u8; 64];
        let mut line = AddrPadLine::new(&e, LineAddr::new(3), &secret);
        assert_eq!(line.read(&e), secret);
        assert_ne!(line.image().data(), &secret, "at rest data is encrypted");
        let update = [0x43u8; 64];
        let _ = line.write(&e, &update);
        assert_eq!(line.read(&e), update);
    }

    #[test]
    fn flips_match_plaintext_dcw() {
        let e = engine();
        let mut line = AddrPadLine::new(&e, LineAddr::new(4), &[0u8; 64]);
        let mut data = [0u8; 64];
        data[0] = 0b101;
        let outcome = line.write(&e, &data);
        assert_eq!(outcome.flips.total(), 2, "only the changed plaintext bits flip");
    }

    #[test]
    fn distinct_lines_use_distinct_pads() {
        let e = engine();
        let a = AddrPadLine::new(&e, LineAddr::new(1), &[0u8; 64]);
        let b = AddrPadLine::new(&e, LineAddr::new(2), &[0u8; 64]);
        assert_ne!(a.image().data(), b.image().data());
    }

    /// The documented weakness: the XOR of two ciphertexts of the same
    /// line equals the XOR of the plaintexts — a bus snooper learns
    /// plaintext differences.
    #[test]
    fn bus_snooper_learns_plaintext_difference() {
        let e = engine();
        let pt1 = [0x11u8; 64];
        let mut line = AddrPadLine::new(&e, LineAddr::new(9), &pt1);
        let ct1 = *line.image().data();
        let mut pt2 = pt1;
        pt2[5] ^= 0xF0;
        let _ = line.write(&e, &pt2);
        let ct2 = *line.image().data();
        let mut leak = [0u8; 64];
        for i in 0..64 {
            leak[i] = ct1[i] ^ ct2[i];
        }
        let mut expected = [0u8; 64];
        expected[5] = 0xF0;
        assert_eq!(leak, expected, "pad reuse leaks pt1 ^ pt2");
    }
}

#!/usr/bin/env bash
# Out-of-core store benchmark: billion-line address space, fixed
# resident budget.
#
# Streams the same sparse workload — touched lines scattered across a
# power-of-two address space — through the DEUCE simulation three
# times: once over the in-RAM arena, and twice over the page-file
# backend (at 1x and 2x the write count) with a fixed resident-page
# budget. Asserts the paged run is bit-identical to the arena run,
# that the store's peak resident bytes never exceed the configured
# budget, and that the peak is identical at 1x and 2x writes — the
# out-of-core store's footprint is flat in the workload size. Writes
# BENCH_store.json.
#
#   bash scripts/bench_store.sh [space] [touched] [writes] [resident_pages]
#   # defaults: 2^30-line space, 1,000,000 touched, 2,000,000 writes,
#   # 4096 resident pages
set -euo pipefail
cd "$(dirname "$0")/.."

SPACE="${1:-1073741824}"
TOUCHED="${2:-1000000}"
WRITES="${3:-2000000}"
PAGES="${4:-4096}"

echo "==> cargo build --release --offline --example store_bench"
cargo build --release --offline --example store_bench
BIN=target/release/examples/store_bench

PAGE_FILE="$(mktemp -u /tmp/deuce-bench-store-XXXXXX.pages)"
trap 'rm -f "$PAGE_FILE"' EXIT

echo "==> arena run ($TOUCHED touched lines in a $SPACE-line space, $WRITES writes)"
ARENA="$("$BIN" arena "$SPACE" "$TOUCHED" "$WRITES")"
echo "$ARENA"
echo "==> paged run (budget $PAGES resident pages)"
PAGED="$("$BIN" paged "$SPACE" "$TOUCHED" "$WRITES" "$PAGES" "$PAGE_FILE")"
echo "$PAGED"
echo "==> paged run at 2x writes (flat-residency check)"
PAGED2="$("$BIN" paged "$SPACE" "$TOUCHED" "$((WRITES * 2))" "$PAGES" "$PAGE_FILE")"
echo "$PAGED2"

field() { sed -n "s/.*\"$2\":\"\{0,1\}\([0-9a-fx.]*\)\"\{0,1\}[,}].*/\1/p" <<<"$1"; }

# Bit-identical check: every paper-facing counter and the simulated-time
# bit pattern must agree between the arena and the paged store.
for key in writes_counted reads data_flips meta_flips exec_time_ns_bits; do
    a="$(field "$ARENA" "$key")"
    p="$(field "$PAGED" "$key")"
    if [ "$a" != "$p" ]; then
        echo "PARITY FAILURE: $key arena=$a paged=$p" >&2
        exit 1
    fi
done
echo "==> parity OK (paged store is bit-identical to the arena)"

PEAK="$(field "$PAGED" store_peak_resident_bytes)"
PEAK2="$(field "$PAGED2" store_peak_resident_bytes)"
BUDGET="$(field "$PAGED" resident_budget_bytes)"
if [ "$PEAK" -gt "$BUDGET" ]; then
    echo "BUDGET FAILURE: peak $PEAK exceeds budget $BUDGET" >&2
    exit 1
fi
if [ "$PEAK" != "$PEAK2" ]; then
    echo "FLATNESS FAILURE: peak $PEAK at 1x writes vs $PEAK2 at 2x" >&2
    exit 1
fi
echo "==> residency OK (peak $PEAK <= budget $BUDGET, flat at 2x writes)"

ARENA_BYTES="$(field "$ARENA" line_store_bytes)"
PAGED_WPS="$(field "$PAGED" writes_per_sec)"
RATIO="$(awk -v a="$ARENA_BYTES" -v b="$PEAK" 'BEGIN{printf "%.2f", a/b}')"

DATE="$(date +%F)"
cat > BENCH_store.json <<EOF
{
  "description": "Arena-vs-paged store run of the DEUCE scheme over a sparse synthetic workload: $TOUCHED distinct lines scattered uniformly across a $SPACE-line address space, $WRITES writebacks (single core, seed 11). 'arena' keeps every touched line resident in RAM; 'paged' routes the LineStore through FilePageBackend with a $PAGES-resident-page budget and a write-back LRU cache. The paged run was verified bit-identical to the arena run (writes, reads, data/meta flips, exec_time_ns bit pattern), its store peak resident bytes were verified to stay within the configured budget, and the peak was verified identical at 2x the write count (flat residency) by scripts/bench_store.sh before this file was written.",
  "date": "$DATE",
  "space_lines": $SPACE,
  "touched_lines": $TOUCHED,
  "writes": $WRITES,
  "resident_pages": $PAGES,
  "arena": $ARENA,
  "paged": $PAGED,
  "paged_2x_writes": $PAGED2,
  "summary": {
    "line_store_bytes_arena": $ARENA_BYTES,
    "store_peak_resident_bytes_paged": $PEAK,
    "resident_budget_bytes": $BUDGET,
    "store_resident_ratio": $RATIO,
    "writes_per_sec_paged_store": $PAGED_WPS,
    "note": "the arena's line storage scales with the touched-line count; the paged store's peak is pinned at the resident-page budget no matter how large the address space or the workload grows."
  }
}
EOF
echo "==> wrote BENCH_store.json"

//! The fully-resident in-RAM backend: the original arena, now one
//! [`PageBackend`] among several.

use deuce_crypto::{LineBytes, LINE_BYTES};

use crate::scheme::{LineMut, LineRef, LineScheme};
use crate::store::backend::PageBackend;

/// Dense in-RAM slot storage: three parallel arrays, every page
/// permanently resident. This is the default backend and is
/// bit-identical to the historical monolithic `LineStore` layout.
#[derive(Debug, Clone)]
pub struct ArenaBackend<S: LineScheme> {
    needs_shadow: bool,
    stored: Vec<LineBytes>,
    /// Parallel to `stored` iff the scheme needs a shadow; empty
    /// otherwise.
    shadow: Vec<LineBytes>,
    state: Vec<S::State>,
    /// Shadow stand-in handed to shadowless schemes (they never read or
    /// write it).
    scratch: LineBytes,
}

impl<S: LineScheme> ArenaBackend<S> {
    /// Creates an empty arena; nothing is allocated until the first
    /// slot is pushed.
    #[must_use]
    pub fn new(needs_shadow: bool) -> Self {
        Self {
            needs_shadow,
            stored: Vec::new(),
            shadow: Vec::new(),
            state: Vec::new(),
            scratch: [0u8; LINE_BYTES],
        }
    }
}

impl<S: LineScheme> PageBackend<S> for ArenaBackend<S> {
    fn push(&mut self, stored: &LineBytes, shadow: Option<&LineBytes>, state: S::State) -> u32 {
        let slot = u32::try_from(self.stored.len()).expect("more than u32::MAX lines");
        self.stored.push(*stored);
        if let Some(shadow) = shadow {
            self.shadow.push(*shadow);
        }
        self.state.push(state);
        slot
    }

    fn len(&self) -> usize {
        self.stored.len()
    }

    fn with_slot_mut<T>(&mut self, slot: u32, f: impl FnOnce(LineMut<'_, S::State>) -> T) -> T {
        let i = slot as usize;
        let shadow = if self.needs_shadow {
            &mut self.shadow[i]
        } else {
            &mut self.scratch
        };
        f(LineMut {
            stored: &mut self.stored[i],
            shadow,
            state: &mut self.state[i],
        })
    }

    fn with_slot<T>(&self, slot: u32, f: impl FnOnce(LineRef<'_, S::State>) -> T) -> T {
        let i = slot as usize;
        f(LineRef {
            stored: &self.stored[i],
            state: &self.state[i],
        })
    }

    fn per_line_bytes(&self) -> u64 {
        let shadow = if self.needs_shadow { LINE_BYTES } else { 0 };
        (LINE_BYTES + shadow + core::mem::size_of::<S::State>()) as u64
    }

    fn resident_bytes(&self) -> u64 {
        self.len() as u64 * PageBackend::<S>::per_line_bytes(self)
    }
}

//! Log2-bucketed streaming histograms.
//!
//! A [`Histogram`] ingests `u64` samples one at a time in O(1) with no
//! allocation after construction: sample `v` lands in bucket
//! `⌊log2 v⌋ + 1` (bucket 0 holds the zeros), so 64 buckets cover the
//! whole `u64` range. Count, sum, min, and max are tracked exactly;
//! percentiles are answered from the bucket boundaries (within one
//! power of two), which is all the run reports need.

/// Number of buckets: one for zero plus one per bit position.
pub const BUCKETS: usize = 65;

/// A streaming histogram over `u64` samples with power-of-two buckets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// The bucket index for a sample.
#[must_use]
fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// The half-open value range `[lo, hi)` a bucket covers (`hi` saturates
/// at `u64::MAX` for the top bucket).
#[must_use]
pub fn bucket_bounds(bucket: usize) -> (u64, u64) {
    match bucket {
        0 => (0, 1),
        64 => (1 << 63, u64::MAX),
        b => (1 << (b - 1), 1 << b),
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self { counts: [0; BUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// Ingests one sample.
    pub fn record(&mut self, value: u64) {
        self.counts[bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Samples ingested.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or `None` when empty.
    #[must_use]
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` when empty.
    #[must_use]
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean sample value (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Count in one bucket.
    #[must_use]
    pub fn bucket_count(&self, bucket: usize) -> u64 {
        self.counts[bucket]
    }

    /// Non-empty buckets as `(lo, hi, count)` rows, in value order.
    #[must_use]
    pub fn rows(&self) -> Vec<(u64, u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(b, &c)| {
                let (lo, hi) = bucket_bounds(b);
                (lo, hi, c)
            })
            .collect()
    }

    /// Upper bound of the bucket containing the `q`-quantile
    /// (`0.0 ≤ q ≤ 1.0`), or `None` when empty. Accurate to the bucket
    /// boundary, i.e. within a factor of two.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(bucket_bounds(b).1.min(self.max).max(self.min));
            }
        }
        Some(self.max)
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_powers_land_in_their_buckets() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(1024);
        assert_eq!(h.bucket_count(0), 1, "zero bucket");
        assert_eq!(h.bucket_count(1), 1, "[1,2)");
        assert_eq!(h.bucket_count(2), 2, "[2,4)");
        assert_eq!(h.bucket_count(11), 1, "[1024,2048)");
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1030);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(1024));
    }

    #[test]
    fn rows_report_bounds_in_order() {
        let mut h = Histogram::new();
        h.record(5);
        h.record(6);
        h.record(300);
        assert_eq!(h.rows(), vec![(4, 8, 2), (256, 512, 1)]);
    }

    #[test]
    fn quantiles_are_bucket_accurate() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        // Rank 50 lands in bucket [32,64): its upper bound, clamped to
        // the observed [1,100] range, is exactly 64.
        assert_eq!(h.quantile(0.5), Some(64));
        // Rank clamps to 1: bucket [1,2)'s upper bound is 2.
        assert_eq!(h.quantile(0.0), Some(2));
        assert_eq!(h.quantile(1.0), Some(100), "max caps the top bucket");
    }

    #[test]
    fn quantile_of_empty_histogram_is_none() {
        let h = Histogram::new();
        for q in [0.0, 0.5, 1.0] {
            assert!(h.quantile(q).is_none());
        }
    }

    #[test]
    fn single_bucket_quantiles_collapse_to_the_value() {
        let mut h = Histogram::new();
        h.record(5);
        for q in [0.0, 0.25, 0.5, 1.0] {
            assert_eq!(h.quantile(q), Some(5), "q={q}");
        }
    }

    #[test]
    fn out_of_range_q_is_clamped() {
        let mut h = Histogram::new();
        h.record(7);
        h.record(9);
        assert_eq!(h.quantile(-1.0), h.quantile(0.0));
        assert_eq!(h.quantile(2.0), h.quantile(1.0));
    }

    #[test]
    fn merge_is_sum_of_parts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for v in [0u64, 3, 9, 12, 700] {
            a.record(v);
            whole.record(v);
        }
        for v in [1u64, 9, 4096] {
            b.record(v);
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn extreme_values_do_not_overflow() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.bucket_count(64), 2);
        assert_eq!(h.sum(), u64::MAX, "sum saturates");
        assert_eq!(bucket_bounds(64).1, u64::MAX);
    }
}

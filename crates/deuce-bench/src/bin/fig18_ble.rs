//! Figure 18: DEUCE is orthogonal to Block-Level Encryption.
//!
//! Paper's averages: BLE 33%, DEUCE 24%, BLE+DEUCE 19.9%.

use deuce_bench::{mean, pct, per_benchmark, run_scheme, tsv_header, tsv_row, ExperimentArgs};
use deuce_schemes::{SchemeConfig, SchemeKind};

fn main() {
    let args = ExperimentArgs::parse();
    let schemes = [SchemeKind::Ble, SchemeKind::Deuce, SchemeKind::BleDeuce];

    let rows = per_benchmark(&args.benchmarks, |benchmark| {
        let trace = args.trace(benchmark);
        schemes.map(|kind| run_scheme(SchemeConfig::new(kind), &trace).flip_rate())
    });

    tsv_header(&["benchmark", "BLE", "DEUCE", "BLE+DEUCE"]);
    let mut columns = vec![Vec::new(); schemes.len()];
    for (benchmark, rates) in &rows {
        let mut cells = vec![benchmark.name().to_string()];
        for (i, rate) in rates.iter().enumerate() {
            columns[i].push(*rate);
            cells.push(pct(*rate));
        }
        tsv_row(&cells);
    }
    let mut avg = vec!["AVERAGE".to_string()];
    for column in &columns {
        avg.push(pct(mean(column)));
    }
    tsv_row(&avg);
}

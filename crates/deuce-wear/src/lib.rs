//! Wear leveling for endurance-limited PCM (§5 of the DEUCE paper).
//!
//! DEUCE halves the bits written per writeback, but lifetime only improves
//! 11% because the *same* words keep getting re-encrypted: the hottest
//! cell still wears out early. The paper's fix is **Horizontal Wear
//! Leveling (HWL)**: instead of tracking a rotation amount per line, the
//! rotation is an *algebraic function* of the global Start-Gap registers
//! that vertical wear leveling already maintains — zero storage overhead,
//! and the rotation writes piggy-back on the line movement Start-Gap
//! performs anyway.
//!
//! Provided here:
//!
//! - [`StartGap`] — the vertical wear-leveling substrate \[20\]: the
//!   Start/Gap registers, gap movement, and logical→physical remapping.
//! - [`SecurityRefresh`] — the randomized alternative \[21\]: key-XOR
//!   remapping with gradual pairwise migration, also HWL-extensible.
//! - [`HorizontalWearLeveler`] — rotation = `Start' % BitsInLine`
//!   (§5.3), plus the hashed per-line variant of footnote 2 that resists
//!   adversarial write patterns.
//! - [`PerLineRotation`] — the storage-per-line baseline HWL replaces.
//! - [`LifetimePolicy`] / [`relative_lifetime`] — turning
//!   [`deuce_nvm::WearSummary`]-style cell wear into the normalized
//!   lifetimes of Fig. 14.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod attack_detector;
mod hwl;
mod lifetime;
mod per_line;
mod security_refresh;
mod start_gap;

pub use attack_detector::{AttackDetector, WriteVerdict};
pub use hwl::{HorizontalWearLeveler, HwlMode};
pub use lifetime::{relative_lifetime, LifetimePolicy};
pub use per_line::PerLineRotation;
pub use security_refresh::{FrameSwap, SecurityRefresh};
pub use start_gap::{GapMove, StartGap};

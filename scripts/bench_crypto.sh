#!/usr/bin/env bash
# Per-tier crypto benchmark: times the AES block paths (single, 4-wide,
# 8-wide) and the line-pad paths (single and paired) on every dispatch
# tier this host offers — reference, T-table, and hardware where
# detected — then writes the numbers and headline speedups to
# BENCH_crypto.json. The differential suites pin every tier
# bit-identical; this script records what the fast tiers buy.
#
#   bash scripts/bench_crypto.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline -p deuce-cli"
cargo build --release --offline -p deuce-cli
DEUCE=target/release/deuce

DETECTED="$("$DEUCE" aes-backend | awk -F'\t' '$1 == "detected" {print $2}')"
AVAILABLE="$("$DEUCE" aes-backend | awk -F'\t' '$1 == "available" {print $2}')"
echo "==> detected tier: $DETECTED (available: $AVAILABLE)"

echo "==> cargo bench -p deuce-bench --bench hot_paths -- pad_throughput"
OUT="$(cargo bench -q --offline -p deuce-bench --bench hot_paths -- pad_throughput)"
echo "$OUT"

ns() {
    awk -F'\t' -v n="pad_throughput/$1" '$1 == n {print $2}' <<<"$OUT"
}

# One JSON object per tier; the reference tier has no batched entry
# points of its own (its batches loop the single-block path).
TIERS_JSON=""
for tier in $AVAILABLE; do
    lp="$(ns "line_pad_$tier")"
    lpp="$(ns "line_pad_pair_$tier")"
    if [ "$tier" = reference ]; then
        blk="$(ns aes_block_reference)"
        b4=null
        b8=null
    else
        blk="$(ns "aes_block_$tier")"
        b4="$(ns "aes_blocks4_$tier")"
        b8="$(ns "aes_blocks8_$tier")"
    fi
    TIERS_JSON="$TIERS_JSON
    \"$tier\": {\"aes_block\": $blk, \"aes_blocks4\": $b4, \"aes_blocks8\": $b8, \"line_pad\": $lp, \"line_pad_pair\": $lpp},"
done
TIERS_JSON="${TIERS_JSON%,}"

LP_REF="$(ns line_pad_reference)"
LP_TT="$(ns line_pad_ttable)"
LP_DET="$(ns "line_pad_$DETECTED")"
SPEEDUP_REF="$(awk -v a="$LP_REF" -v b="$LP_DET" 'BEGIN{printf "%.1f", a/b}')"
SPEEDUP_TT="$(awk -v a="$LP_TT" -v b="$LP_DET" 'BEGIN{printf "%.1f", a/b}')"
echo "==> line_pad on '$DETECTED': ${LP_DET}ns (${SPEEDUP_REF}x vs reference, ${SPEEDUP_TT}x vs ttable)"

DATE="$(date +%F)"
cat > BENCH_crypto.json <<EOF
{
  "description": "Per-tier crypto benchmarks: the AES block paths (single, 4-wide, 8-wide batched) and the line-pad paths (single and LCTR/TCTR paired) timed on every AES dispatch tier this host offers. Measured with \`cargo bench -p deuce-bench --bench hot_paths -- pad_throughput\` (calibrating harness, release profile); detected tier '$DETECTED'. All tiers are bit-identical (deuce-aes/tests/differential.rs, deuce-crypto/tests/engine_differential.rs, re-run per tier under DEUCE_AES_FORCE by scripts/ci.sh); the tiers differ only in speed. Historical note: the pre-dispatch T-table baseline recorded 227.5ns line_pad / 257.4ns batched on 2026-08-06.",
  "date": "$DATE",
  "units": "ns_per_iter",
  "detected_tier": "$DETECTED",
  "available_tiers": "$AVAILABLE",
  "tiers": {$TIERS_JSON
  },
  "pad_cache": {
    "line_pad_cached_hot": $(ns line_pad_cached_hot),
    "note": "steady-state PadCache hit path (working set 16 lines, 256-entry cache); tier-independent because a hit skips AES entirely."
  },
  "pad_xor": {
    "xor_line_words": $(ns xor_line_words),
    "note": "u64-chunked 64-byte XOR in place; differential-tested against the byte loop in deuce-crypto pad tests."
  },
  "summary": {
    "aes_backend_detected": "$DETECTED",
    "line_pad_ns_detected": $LP_DET,
    "line_pad_ns_ttable": $LP_TT,
    "line_pad_ns_reference": $LP_REF,
    "speedup_line_pad": $SPEEDUP_REF,
    "speedup_line_pad_vs_ttable": $SPEEDUP_TT,
    "note": "speedup_line_pad compares the detected tier against the byte-oriented reference; speedup_line_pad_vs_ttable against the portable T-table fallback. The hw tier pipelines eight AES states per call (one dual-pad DEUCE read) through AES-NI/NEON rounds."
  }
}
EOF
echo "==> wrote BENCH_crypto.json"

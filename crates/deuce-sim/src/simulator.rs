//! The simulator driving traces through schemes, device, wear, and
//! timing models.

use std::collections::HashMap;

use deuce_crypto::{LineAddr, OtpEngine, SecretKey};
use deuce_nvm::{write_slots, CellArray};
use deuce_schemes::SchemeLine;
use deuce_trace::{Op, Trace};
use deuce_wear::{HorizontalWearLeveler, HwlMode, SecurityRefresh, StartGap};

use crate::config::{SimConfig, VerticalWl};
use crate::counter_cache::CounterCache;
use crate::result::SimResult;
use crate::timing::MemoryTimingModel;

/// Runs traces under one configuration.
///
/// Lines are instantiated lazily: the first write to an address is
/// treated as the initial placement (encrypted as it enters memory, per
/// §3.1) and is *not* counted in the flip statistics — matching how
/// [`deuce_trace::TraceStats`] skips each line's first write.
#[derive(Debug)]
pub struct Simulator {
    config: SimConfig,
    engine: OtpEngine,
}

impl Simulator {
    /// Creates a simulator.
    #[must_use]
    pub fn new(config: SimConfig) -> Self {
        let engine = OtpEngine::new(&SecretKey::from_seed(config.key_seed));
        Self { config, engine }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Drives a trace through the full stack and aggregates every metric.
    ///
    /// # Panics
    ///
    /// Panics if wear tracking is enabled and the trace touches more
    /// distinct lines than [`crate::WearConfig::lines`].
    #[must_use]
    pub fn run_trace(&self, trace: &Trace) -> SimResult {
        let cores = trace
            .events()
            .iter()
            .map(|e| usize::from(e.core) + 1)
            .max()
            .unwrap_or(1);
        let mut timing = MemoryTimingModel::with_power_channels(
            self.config.timing,
            self.config.cpu,
            self.config.geometry,
            cores,
            self.config.power_channels,
        );

        let meta_bits = self.config.scheme.metadata_bits();
        let bits_per_line = deuce_crypto::LINE_BITS as u32 + meta_bits;
        let mut wear_state = self.config.wear.map(|w| WearState {
            cells: CellArray::new(w.lines, bits_per_line),
            vwl: match w.vwl {
                VerticalWl::StartGap => {
                    Leveler::StartGap(StartGap::new(w.lines.max(2), w.gap_interval))
                }
                VerticalWl::SecurityRefresh => Leveler::SecurityRefresh(SecurityRefresh::new(
                    w.lines.max(2).next_power_of_two(),
                    w.gap_interval,
                    self.config.key_seed,
                )),
            },
            hwl: w.hwl,
            bits_per_line,
            index_of: HashMap::new(),
        });

        let mut counter_cache = self.config.counter_cache.map(CounterCache::new);
        // Counter lines live in a dedicated region; give them distinct
        // addresses for bank mapping.
        const COUNTER_REGION: u64 = 1 << 40;

        let mut lines: HashMap<u64, SchemeLine> = HashMap::new();
        let mut result = SimResult {
            writes: 0,
            reads: 0,
            data_flips: 0,
            meta_flips: 0,
            counter_flips: 0,
            counters_in_metric: self.config.metric.count_counter_bits,
            total_slots: 0,
            epoch_starts: 0,
            exec_time_ns: 0.0,
            energy_params: self.config.energy,
            cells: None,
            metadata_bits: meta_bits,
            counter_cache_misses: 0,
            counter_cache_hit_ratio: 0.0,
        };

        for event in trace.events() {
            // The counter must be available before the pad can be
            // generated; a counter-cache miss costs an extra (blocking)
            // memory read, and a dirty eviction an extra 1-slot write.
            if let Some(cache) = &mut counter_cache {
                let dirtying = event.op == Op::Write;
                let traffic = cache.access(event.line.value(), dirtying);
                let counter_line =
                    deuce_crypto::LineAddr::new(COUNTER_REGION | (event.line.value() / 16));
                if traffic.fill {
                    timing.read(usize::from(event.core), event.instr, counter_line);
                }
                if traffic.writeback {
                    timing.write(usize::from(event.core), event.instr, counter_line, 1);
                }
            }
            match event.op {
                Op::Read => {
                    result.reads += 1;
                    timing.read(usize::from(event.core), event.instr, event.line);
                }
                Op::Write => {
                    let data = event.data.expect("write events carry data");
                    match lines.entry(event.line.value()) {
                        std::collections::hash_map::Entry::Vacant(slot) => {
                            // Initial placement: encrypt-in, not counted.
                            slot.insert(SchemeLine::new(
                                &self.config.scheme,
                                &self.engine,
                                event.line,
                                &data,
                            ));
                        }
                        std::collections::hash_map::Entry::Occupied(mut slot) => {
                            let outcome = slot.get_mut().write(&self.engine, &data);
                            result.writes += 1;
                            result.data_flips += u64::from(outcome.flips.data);
                            result.meta_flips += u64::from(outcome.flips.meta);
                            result.counter_flips += u64::from(outcome.counter_flips);
                            result.epoch_starts += u64::from(outcome.epoch_started);

                            let slots = write_slots(
                                &outcome.old_image,
                                &outcome.new_image,
                                self.config.slot,
                            );
                            result.total_slots += u64::from(slots);
                            timing.write(usize::from(event.core), event.instr, event.line, slots);

                            if let Some(w) = &mut wear_state {
                                w.record(event.line, &outcome);
                            }
                        }
                    }
                }
            }
        }

        result.exec_time_ns = timing.exec_time_ns();
        result.cells = wear_state.map(|w| w.cells);
        if let Some(cache) = &counter_cache {
            result.counter_cache_misses = cache.misses();
            result.counter_cache_hit_ratio = cache.hit_ratio();
        }
        result
    }
}

/// Wear-tracking state bundled together.
#[derive(Debug)]
struct WearState {
    cells: CellArray,
    vwl: Leveler,
    hwl: Option<HwlMode>,
    bits_per_line: u32,
    index_of: HashMap<u64, usize>,
}

/// The vertical wear-leveling substrate in use.
#[derive(Debug)]
enum Leveler {
    StartGap(StartGap),
    SecurityRefresh(SecurityRefresh),
}

impl WearState {
    fn rotation(&self, index: usize, addr: u64) -> u32 {
        let Some(mode) = self.hwl else { return 0 };
        match &self.vwl {
            Leveler::StartGap(sg) => {
                HorizontalWearLeveler::new(mode, self.bits_per_line).rotation(sg, index, addr)
            }
            Leveler::SecurityRefresh(sr) => match mode {
                HwlMode::Algebraic => sr.hwl_rotation(index, self.bits_per_line),
                HwlMode::Hashed => {
                    // Decorrelate per line, as footnote 2 prescribes.
                    let base = u64::from(sr.hwl_rotation(index, self.bits_per_line));
                    let mut z = base ^ addr.rotate_left(17) ^ 0x94d0_49bb_1331_11eb;
                    z = (z ^ (z >> 27)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                    ((z ^ (z >> 31)) % u64::from(self.bits_per_line)) as u32
                }
            },
        }
    }

    fn record(&mut self, addr: LineAddr, outcome: &deuce_schemes::WriteOutcome) {
        let next = self.index_of.len();
        let lines = self.cells.lines();
        let index = *self.index_of.entry(addr.value()).or_insert_with(|| {
            assert!(
                next < lines,
                "trace touches more than the configured {lines} wear-tracked lines"
            );
            next
        });
        let rotation = self.rotation(index, addr.value());
        self.cells
            .record_write(index, &outcome.old_image, &outcome.new_image, rotation);
        match &mut self.vwl {
            Leveler::StartGap(sg) => {
                let _ = sg.record_write();
            }
            Leveler::SecurityRefresh(sr) => {
                let _ = sr.record_write();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WearConfig;
    use deuce_schemes::SchemeKind;
    use deuce_trace::{Benchmark, TraceConfig};
    use deuce_wear::HwlMode;

    fn trace(benchmark: Benchmark, writes: usize) -> Trace {
        TraceConfig::new(benchmark).lines(64).writes(writes).seed(11).generate()
    }

    #[test]
    fn encrypted_baseline_flips_half() {
        let t = trace(Benchmark::Mcf, 3000);
        let r = Simulator::new(SimConfig::new(SchemeKind::EncryptedDcw)).run_trace(&t);
        assert!((r.flip_rate() - 0.5).abs() < 0.01, "rate {}", r.flip_rate());
        assert!(r.avg_slots_per_write() > 3.9, "slots {}", r.avg_slots_per_write());
    }

    #[test]
    fn deuce_beats_encrypted_on_sparse_workload() {
        let t = trace(Benchmark::Libquantum, 3000);
        let enc = Simulator::new(SimConfig::new(SchemeKind::EncryptedDcw)).run_trace(&t);
        let deuce = Simulator::new(SimConfig::new(SchemeKind::Deuce)).run_trace(&t);
        assert!(deuce.flip_rate() < enc.flip_rate() / 2.0);
        assert!(deuce.avg_slots_per_write() < enc.avg_slots_per_write());
        assert!(deuce.exec_time_ns < enc.exec_time_ns);
    }

    #[test]
    fn unencrypted_is_cheapest() {
        let t = trace(Benchmark::Omnetpp, 2000);
        let plain = Simulator::new(SimConfig::new(SchemeKind::UnencryptedDcw)).run_trace(&t);
        let deuce = Simulator::new(SimConfig::new(SchemeKind::Deuce)).run_trace(&t);
        assert!(plain.flip_rate() < deuce.flip_rate());
        assert_eq!(plain.counter_flips, 0);
    }

    #[test]
    fn first_write_per_line_is_not_counted() {
        let t = trace(Benchmark::Astar, 500);
        let r = Simulator::new(SimConfig::new(SchemeKind::Deuce)).run_trace(&t);
        let distinct = t
            .writes()
            .map(|e| e.line.value())
            .collect::<std::collections::HashSet<_>>()
            .len() as u64;
        assert_eq!(r.writes, t.write_count() as u64 - distinct);
    }

    #[test]
    fn wear_tracking_populates_cells() {
        let t = trace(Benchmark::Libquantum, 2000);
        let cfg = SimConfig::new(SchemeKind::Deuce)
            .with_wear(WearConfig::with_hwl(64, HwlMode::Hashed).gap_interval(5));
        let r = Simulator::new(cfg).run_trace(&t);
        let cells = r.cells.as_ref().expect("wear enabled");
        assert_eq!(cells.writes_recorded(), r.writes);
        assert!(r.wear_summary().unwrap().total_bit_writes > 0);
        assert!(r.lifetime(crate::LifetimePolicy::VerticalLeveled).unwrap() > 0.0);
    }

    #[test]
    fn hwl_levels_bit_positions() {
        let t = trace(Benchmark::Libquantum, 6000);
        let no_hwl = Simulator::new(
            SimConfig::new(SchemeKind::Deuce).with_wear(WearConfig::vertical_only(64)),
        )
        .run_trace(&t);
        let hwl = Simulator::new(
            SimConfig::new(SchemeKind::Deuce)
                .with_wear(WearConfig::with_hwl(64, HwlMode::Hashed).gap_interval(2)),
        )
        .run_trace(&t);
        let skew_without = no_hwl.cells.as_ref().unwrap().wear_summary().max_over_avg();
        let life_no = no_hwl.lifetime(crate::LifetimePolicy::VerticalLeveled).unwrap();
        let life_hwl = hwl.lifetime(crate::LifetimePolicy::VerticalLeveled).unwrap();
        assert!(skew_without > 3.0, "libq should be skewed, got {skew_without}");
        assert!(
            life_hwl > life_no * 1.5,
            "HWL lifetime {life_hwl} vs {life_no}"
        );
    }

    #[test]
    fn reads_contribute_to_time_and_energy() {
        let t = TraceConfig::new(Benchmark::Mcf).lines(64).writes(1000).seed(1).generate();
        let r = Simulator::new(SimConfig::new(SchemeKind::Deuce)).run_trace(&t);
        assert!(r.reads > 0);
        assert!(r.exec_time_ns > 0.0);
        assert!(r.energy_pj() > 0.0);
        assert!(r.power_mw() > 0.0);
    }

    #[test]
    #[should_panic(expected = "wear-tracked lines")]
    fn wear_overflow_is_detected() {
        let t = trace(Benchmark::Mcf, 2000);
        let cfg = SimConfig::new(SchemeKind::Deuce).with_wear(WearConfig::vertical_only(2));
        let _ = Simulator::new(cfg).run_trace(&t);
    }
}

//! The attack models of §2 made concrete: what each adversary sees
//! under each memory configuration, and how the integrity layer stops
//! the bus-tampering escalation.
//!
//! ```text
//! cargo run --release --example stolen_dimm
//! ```

use deuce::crypto::{LineAddr, OtpEngine, SecretKey};
use deuce::integrity::{CounterTree, LineMac};
use deuce::schemes::{
    AddrPadLine, DeuceLine, EpochInterval, SchemeConfig, SchemeKind, SchemeLine, WordSize,
};

fn secret_line() -> [u8; 64] {
    let pattern = b"PATIENT RECORD #4711 DIAGNOSIS: ";
    std::array::from_fn(|i| pattern[i % pattern.len()])
}

fn printable(bytes: &[u8]) -> String {
    bytes
        .iter()
        .map(|&b| if b.is_ascii_graphic() || b == b' ' { b as char } else { '.' })
        .collect()
}

fn main() {
    let engine = OtpEngine::new(&SecretKey::from_seed(2024));
    let secret = secret_line();

    println!("== Attack 1: stolen DIMM (adversary dumps the array) ==\n");
    for (i, kind) in [SchemeKind::UnencryptedDcw, SchemeKind::AddrPad, SchemeKind::Deuce]
        .into_iter()
        .enumerate()
    {
        let line = SchemeLine::new(
            &SchemeConfig::new(kind),
            &engine,
            LineAddr::new(0x100 + i as u64),
            &secret,
        );
        let at_rest = line.image();
        println!("{:<12} {}", kind.label(), printable(&at_rest.data()[..32]));
    }
    println!("\nOnly the unencrypted DIMM leaks; both encrypted layouts are noise.\n");

    println!("== Attack 2: bus snooping (adversary watches consecutive writebacks) ==\n");
    // AddrPad reuses its pad, so XOR of two ciphertexts = XOR of
    // plaintexts: the snooper learns exactly which bytes changed and how.
    let mut addr_pad = AddrPadLine::new(&engine, LineAddr::new(0x200), &secret);
    let ct1 = *addr_pad.image().data();
    let mut update = secret;
    update[24..28].copy_from_slice(b"HIV+");
    let _ = addr_pad.write(&engine, &update);
    let ct2 = *addr_pad.image().data();
    let leak: Vec<u8> = ct1.iter().zip(&ct2).map(|(a, b)| a ^ b).collect();
    println!(
        "AddrPad      snooper computes ct1^ct2 = {:02x?}... (nonzero at the\n             changed bytes: plaintext diff leaks!)",
        &leak[20..32]
    );

    // DEUCE's counters give every write a fresh pad: the XOR is noise.
    let mut deuce = DeuceLine::new(
        &engine,
        LineAddr::new(0x300),
        &secret,
        WordSize::Bytes2,
        EpochInterval::DEFAULT,
        28,
    );
    let ct1 = *deuce.image().data();
    let _ = deuce.write(&engine, &update);
    let ct2 = *deuce.image().data();
    let nonzero = ct1.iter().zip(&ct2).filter(|(a, b)| a != b).count();
    println!(
        "DEUCE        snooper sees {nonzero} changed ciphertext bytes of pure\n             keystream — only *which word* changed is visible (§4.3.5)."
    );

    println!("\n== Attack 3: bus tampering (adversary rolls a counter back) ==\n");
    let mut tree = CounterTree::new(1024, *SecretKey::from_seed(9).as_bytes());
    let mac = LineMac::new(*SecretKey::from_seed(10).as_bytes());
    let line_idx = 0x2A;
    // Writes advance the counter and the tree.
    tree.update(line_idx, 1);
    tree.update(line_idx, 2);
    let tag = mac.tag(LineAddr::new(line_idx as u64), 2, &secret);
    // The attacker resets the stored counter to 1, hoping the controller
    // re-uses pad(1) and opens a pad-reuse attack (footnote 1).
    match tree.verify(line_idx, 1) {
        Err(e) => println!("counter rollback:   detected — {e}"),
        Ok(()) => println!("counter rollback:   MISSED (bug!)"),
    }
    // And splices stale data back in.
    let stale = [0u8; 64];
    let caught = !mac.check(LineAddr::new(line_idx as u64), 2, &stale, &tag);
    println!(
        "data splicing:      {}",
        if caught { "detected — MAC mismatch" } else { "MISSED (bug!)" }
    );
}

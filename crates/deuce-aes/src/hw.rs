//! Hardware AES rounds: AES-NI on x86_64, NEON/AES on aarch64.
//!
//! This is the only module in the crate that uses `unsafe` — the
//! `std::arch` intrinsics require it. Two invariants keep it sound:
//!
//! 1. Every intrinsic-bearing function is `#[target_feature(enable =
//!    "aes")]`, and the safe wrappers below are only reachable through
//!    the dispatch layer, which selects [`crate::AesBackend::Hw`]
//!    strictly after `is_x86_feature_detected!("aes")` (resp.
//!    `is_aarch64_feature_detected!("aes")`) reported support.
//! 2. All loads and stores go through the unaligned `loadu`/`ld1`
//!    intrinsics on plain byte arrays — no alignment assumptions, no
//!    pointer arithmetic beyond array bounds the types already prove.
//!
//! Round keys are loaded from the expanded [`KeySchedule`] on each call
//! rather than cached as vector registers in the cipher struct; the
//! schedule is at most 240 bytes and L1-resident, and keeping the
//! struct free of architecture-specific state keeps `Clone`/`Debug`
//! and the other tiers untouched.
//!
//! The 8-block entry point is the throughput path: AES round
//! instructions pipeline (multi-cycle latency, single-cycle issue), so
//! eight independent states advancing round-by-round hide nearly all of
//! the latency a serial chain would expose. Decryption uses the
//! equivalent inverse cipher with `aesimc`-transformed middle round
//! keys, derived on the fly — decryption is off every scheme hot path
//! (OTP decryption re-*encrypts* the counter block), so there is
//! nothing to amortise.

#![allow(unsafe_code)]

use crate::key_schedule::KeySchedule;
use crate::Block;

/// Encrypts one block with hardware AES rounds.
///
/// Callers must only reach this through a cipher whose backend is
/// [`crate::AesBackend::Hw`], which the dispatch layer guarantees is
/// selected only on hosts with the `aes` CPU feature.
#[must_use]
pub(crate) fn encrypt_block(schedule: &KeySchedule, plaintext: &Block) -> Block {
    // SAFETY: dispatch selects the hw tier only after runtime feature
    // detection reported the `aes` target feature (module invariant 1).
    unsafe { arch::encrypt_block(schedule, plaintext) }
}

/// Encrypts four independent blocks, pipelining the round instructions.
#[must_use]
pub(crate) fn encrypt_blocks4(schedule: &KeySchedule, blocks: &[Block; 4]) -> [Block; 4] {
    // SAFETY: as in `encrypt_block`.
    unsafe { arch::encrypt_blocks4(schedule, blocks) }
}

/// Encrypts eight independent blocks, pipelining the round instructions.
#[must_use]
pub(crate) fn encrypt_blocks8(schedule: &KeySchedule, blocks: &[Block; 8]) -> [Block; 8] {
    // SAFETY: as in `encrypt_block`.
    unsafe { arch::encrypt_blocks8(schedule, blocks) }
}

/// Decrypts one block via the equivalent inverse cipher.
#[must_use]
pub(crate) fn decrypt_block(schedule: &KeySchedule, ciphertext: &Block) -> Block {
    // SAFETY: as in `encrypt_block`.
    unsafe { arch::decrypt_block(schedule, ciphertext) }
}

#[cfg(target_arch = "x86_64")]
mod arch {
    use super::{Block, KeySchedule};
    use core::arch::x86_64::{
        __m128i, _mm_aesdec_si128, _mm_aesdeclast_si128, _mm_aesenc_si128, _mm_aesenclast_si128,
        _mm_aesimc_si128, _mm_loadu_si128, _mm_setzero_si128, _mm_storeu_si128, _mm_xor_si128,
    };

    /// Loads the expanded round keys as `__m128i` values. AES-NI
    /// consumes round keys in the natural FIPS-197 byte order, exactly
    /// as [`KeySchedule::round_key`] stores them.
    #[inline]
    #[target_feature(enable = "aes")]
    unsafe fn round_keys(schedule: &KeySchedule) -> ([__m128i; 15], usize) {
        let rounds = schedule.rounds();
        let mut rk = [_mm_setzero_si128(); 15];
        for (r, slot) in rk.iter_mut().enumerate().take(rounds + 1) {
            *slot = _mm_loadu_si128(schedule.round_key(r).as_ptr().cast());
        }
        (rk, rounds)
    }

    #[inline]
    #[target_feature(enable = "aes")]
    unsafe fn store(state: __m128i) -> Block {
        let mut out = [0u8; 16];
        _mm_storeu_si128(out.as_mut_ptr().cast(), state);
        out
    }

    #[target_feature(enable = "aes")]
    pub(super) unsafe fn encrypt_block(schedule: &KeySchedule, plaintext: &Block) -> Block {
        let (rk, rounds) = round_keys(schedule);
        let mut s = _mm_xor_si128(_mm_loadu_si128(plaintext.as_ptr().cast()), rk[0]);
        for key in &rk[1..rounds] {
            s = _mm_aesenc_si128(s, *key);
        }
        store(_mm_aesenclast_si128(s, rk[rounds]))
    }

    /// Advances `N` independent states round-by-round: one `aesenc` per
    /// state per round, issued back to back so the pipelined units
    /// overlap their latencies.
    #[inline]
    #[target_feature(enable = "aes")]
    unsafe fn encrypt_batch<const N: usize>(
        schedule: &KeySchedule,
        blocks: &[Block; N],
    ) -> [Block; N] {
        let (rk, rounds) = round_keys(schedule);
        let mut s = [_mm_setzero_si128(); N];
        for (state, block) in s.iter_mut().zip(blocks) {
            *state = _mm_xor_si128(_mm_loadu_si128(block.as_ptr().cast()), rk[0]);
        }
        for key in &rk[1..rounds] {
            for state in &mut s {
                *state = _mm_aesenc_si128(*state, *key);
            }
        }
        let mut out = [[0u8; 16]; N];
        for (slot, state) in out.iter_mut().zip(s) {
            *slot = store(_mm_aesenclast_si128(state, rk[rounds]));
        }
        out
    }

    #[target_feature(enable = "aes")]
    pub(super) unsafe fn encrypt_blocks4(schedule: &KeySchedule, blocks: &[Block; 4]) -> [Block; 4] {
        encrypt_batch(schedule, blocks)
    }

    #[target_feature(enable = "aes")]
    pub(super) unsafe fn encrypt_blocks8(schedule: &KeySchedule, blocks: &[Block; 8]) -> [Block; 8] {
        encrypt_batch(schedule, blocks)
    }

    /// Equivalent inverse cipher (FIPS-197 §5.3.5): middle round keys
    /// pass through `aesimc`, consumed in reverse order.
    #[target_feature(enable = "aes")]
    pub(super) unsafe fn decrypt_block(schedule: &KeySchedule, ciphertext: &Block) -> Block {
        let (rk, rounds) = round_keys(schedule);
        let mut s = _mm_xor_si128(_mm_loadu_si128(ciphertext.as_ptr().cast()), rk[rounds]);
        for key in rk[1..rounds].iter().rev() {
            s = _mm_aesdec_si128(s, _mm_aesimc_si128(*key));
        }
        store(_mm_aesdeclast_si128(s, rk[0]))
    }
}

#[cfg(target_arch = "aarch64")]
mod arch {
    use super::{Block, KeySchedule};
    use core::arch::aarch64::{
        uint8x16_t, vaesdq_u8, vaeseq_u8, vaesimcq_u8, vaesmcq_u8, vdupq_n_u8, veorq_u8, vld1q_u8,
        vst1q_u8,
    };

    #[inline]
    #[target_feature(enable = "aes")]
    unsafe fn round_keys(schedule: &KeySchedule) -> ([uint8x16_t; 15], usize) {
        let rounds = schedule.rounds();
        let mut rk = [vdupq_n_u8(0); 15];
        for (r, slot) in rk.iter_mut().enumerate().take(rounds + 1) {
            *slot = vld1q_u8(schedule.round_key(r).as_ptr());
        }
        (rk, rounds)
    }

    #[inline]
    #[target_feature(enable = "aes")]
    unsafe fn store(state: uint8x16_t) -> Block {
        let mut out = [0u8; 16];
        vst1q_u8(out.as_mut_ptr(), state);
        out
    }

    /// One state through the ARM round structure: `AESE` folds
    /// AddRoundKey into SubBytes/ShiftRows, so the final round is
    /// `AESE` with the second-to-last key followed by a bare XOR of the
    /// last.
    #[inline]
    #[target_feature(enable = "aes")]
    unsafe fn encrypt_state(mut s: uint8x16_t, rk: &[uint8x16_t; 15], rounds: usize) -> uint8x16_t {
        for key in &rk[..rounds - 1] {
            s = vaesmcq_u8(vaeseq_u8(s, *key));
        }
        veorq_u8(vaeseq_u8(s, rk[rounds - 1]), rk[rounds])
    }

    #[target_feature(enable = "aes")]
    pub(super) unsafe fn encrypt_block(schedule: &KeySchedule, plaintext: &Block) -> Block {
        let (rk, rounds) = round_keys(schedule);
        store(encrypt_state(vld1q_u8(plaintext.as_ptr()), &rk, rounds))
    }

    /// Advances `N` independent states round-by-round, as on x86: the
    /// `AESE`/`AESMC` pair fuses on every NEON-AES core, and eight
    /// in-flight states cover its latency.
    #[inline]
    #[target_feature(enable = "aes")]
    unsafe fn encrypt_batch<const N: usize>(
        schedule: &KeySchedule,
        blocks: &[Block; N],
    ) -> [Block; N] {
        let (rk, rounds) = round_keys(schedule);
        let mut s = [vdupq_n_u8(0); N];
        for (state, block) in s.iter_mut().zip(blocks) {
            *state = vld1q_u8(block.as_ptr());
        }
        for key in &rk[..rounds - 1] {
            for state in &mut s {
                *state = vaesmcq_u8(vaeseq_u8(*state, *key));
            }
        }
        let mut out = [[0u8; 16]; N];
        for (slot, state) in out.iter_mut().zip(s) {
            *slot = store(veorq_u8(vaeseq_u8(state, rk[rounds - 1]), rk[rounds]));
        }
        out
    }

    #[target_feature(enable = "aes")]
    pub(super) unsafe fn encrypt_blocks4(schedule: &KeySchedule, blocks: &[Block; 4]) -> [Block; 4] {
        encrypt_batch(schedule, blocks)
    }

    #[target_feature(enable = "aes")]
    pub(super) unsafe fn encrypt_blocks8(schedule: &KeySchedule, blocks: &[Block; 8]) -> [Block; 8] {
        encrypt_batch(schedule, blocks)
    }

    /// Equivalent inverse cipher: `AESD` XORs the key *before* the
    /// inverse substitution, so the last round key is consumed first
    /// untransformed, middle keys pass through `AESIMC`, and the first
    /// round key is a trailing bare XOR.
    #[target_feature(enable = "aes")]
    pub(super) unsafe fn decrypt_block(schedule: &KeySchedule, ciphertext: &Block) -> Block {
        let (rk, rounds) = round_keys(schedule);
        let mut s = vaesdq_u8(vld1q_u8(ciphertext.as_ptr()), rk[rounds]);
        for key in rk[1..rounds].iter().rev() {
            s = vaesdq_u8(vaesimcq_u8(s), vaesimcq_u8(*key));
        }
        store(veorq_u8(s, rk[0]))
    }
}

#[cfg(test)]
#[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
mod tests {
    use super::*;
    use crate::dispatch;
    use crate::{Aes, KeySize};

    fn schedule(key: &[u8]) -> KeySchedule {
        let size = match key.len() {
            16 => KeySize::Aes128,
            24 => KeySize::Aes192,
            _ => KeySize::Aes256,
        };
        KeySchedule::expand(key, size)
    }

    /// FIPS-197 Appendix C vectors straight through the intrinsic path.
    #[test]
    fn fips197_appendix_c_on_hw() {
        if !dispatch::hw_available() {
            return;
        }
        let pt: Block = core::array::from_fn(|i| (i as u8) * 0x11);
        let cases: [(&[u8], Block); 3] = [
            (
                &(0x00..=0x0f).collect::<Vec<u8>>(),
                [
                    0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70,
                    0xb4, 0xc5, 0x5a,
                ],
            ),
            (
                &(0x00..=0x17).collect::<Vec<u8>>(),
                [
                    0xdd, 0xa9, 0x7c, 0xa4, 0x86, 0x4c, 0xdf, 0xe0, 0x6e, 0xaf, 0x70, 0xa0, 0xec,
                    0x0d, 0x71, 0x91,
                ],
            ),
            (
                &(0x00..=0x1f).collect::<Vec<u8>>(),
                [
                    0x8e, 0xa2, 0xb7, 0xca, 0x51, 0x67, 0x45, 0xbf, 0xea, 0xfc, 0x49, 0x90, 0x4b,
                    0x49, 0x60, 0x89,
                ],
            ),
        ];
        for (key, expected) in cases {
            let ks = schedule(key);
            assert_eq!(encrypt_block(&ks, &pt), expected);
            assert_eq!(encrypt_blocks4(&ks, &[pt; 4]), [expected; 4]);
            assert_eq!(encrypt_blocks8(&ks, &[pt; 8]), [expected; 8]);
            assert_eq!(decrypt_block(&ks, &expected), pt);
        }
    }

    /// Batched entry points must equal eight independent single-block
    /// calls on distinct inputs (catches state cross-talk the all-equal
    /// KAT batches cannot).
    #[test]
    fn batches_match_singles_on_distinct_blocks() {
        if !dispatch::hw_available() {
            return;
        }
        let key: Vec<u8> = (0x10..0x20).collect();
        let ks = schedule(&key);
        let blocks: [Block; 8] = core::array::from_fn(|i| core::array::from_fn(|j| (i * 16 + j) as u8));
        let cts = encrypt_blocks8(&ks, &blocks);
        for (block, ct) in blocks.iter().zip(&cts) {
            assert_eq!(encrypt_block(&ks, block), *ct);
            assert_eq!(decrypt_block(&ks, ct), *block);
        }
        let quad: [Block; 4] = core::array::from_fn(|i| blocks[i]);
        assert_eq!(encrypt_blocks4(&ks, &quad), core::array::from_fn(|i| cts[i]));
    }

    /// The hw tier must agree with the reference oracle on random-ish
    /// structured inputs across all key sizes.
    #[test]
    fn hw_matches_reference_oracle() {
        if !dispatch::hw_available() {
            return;
        }
        for key_len in [16usize, 24, 32] {
            let key: Vec<u8> = (0..key_len as u8).map(|b| b.wrapping_mul(37).wrapping_add(11)).collect();
            let ks = schedule(&key);
            let oracle = Aes::new(&key).unwrap();
            for seed in 0..64u64 {
                let block: Block =
                    core::array::from_fn(|i| (seed.wrapping_mul(0x9E37_79B9).wrapping_add(i as u64) >> 13) as u8);
                let expected = oracle.encrypt_block_reference(&block);
                assert_eq!(encrypt_block(&ks, &block), expected, "key_len {key_len} seed {seed}");
                assert_eq!(decrypt_block(&ks, &expected), block, "key_len {key_len} seed {seed}");
            }
        }
    }
}

//! Aggregated simulation results and derived metrics.

use deuce_crypto::{AesBackend, PadCacheStats};
use deuce_nvm::{CellArray, EnergyParams, WearSummary};
use deuce_schemes::StorePageStats;
use deuce_wear::{relative_lifetime, LifetimePolicy};

/// What online fault injection observed over a run: the graceful-
/// degradation ladder from cell deaths through ECP consumption and line
/// retirement to uncorrectable writes (Fig. 14's lifetime question
/// answered online rather than analytically).
///
/// Write indices are 1-based positions in the counted write stream, so
/// `first_uncorrectable_write == Some(n)` means the device sustained
/// `n - 1` clean line writes — the number two schemes are compared on.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultReport {
    /// Cells that permanently failed (stuck-at) during the run.
    pub cell_deaths: u64,
    /// ECP correction entries consumed across all lines, including
    /// entries freed again when their line retired.
    pub ecp_entries_consumed: u64,
    /// Lines retired to the spare pool.
    pub lines_retired: u64,
    /// Writes that hit a line with no correction resources left.
    pub uncorrectable_writes: u64,
    /// Write index of the first line retirement, if any.
    pub first_retirement_write: Option<u64>,
    /// Write index of the first uncorrectable write — the run's
    /// end-of-life point, if reached.
    pub first_uncorrectable_write: Option<u64>,
    /// Spare lines still unused at end of run.
    pub spare_lines_left: u32,
    /// ECP entries currently in use, per logical line (final state;
    /// retired lines restart at zero on their spare).
    pub ecp_entries_used: Vec<u32>,
}

/// Everything one simulation run produced.
///
/// All figure-of-merit accessors are derived on demand so a single run
/// feeds every figure: flips (Figs. 5/8/9/10/18), slots (Fig. 15),
/// execution time (Fig. 16), energy/power/EDP (Fig. 17) and wear
/// (Figs. 12/14).
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Writes counted (excludes each line's initial placement write).
    pub writes: u64,
    /// Reads serviced.
    pub reads: u64,
    /// Data-bit flips across all counted writes.
    pub data_flips: u64,
    /// Metadata-bit flips across all counted writes.
    pub meta_flips: u64,
    /// Counter-storage flips (reported separately; see
    /// [`crate::MetricConfig`]).
    pub counter_flips: u64,
    /// Whether counter flips were included in the figure of merit.
    pub counters_in_metric: bool,
    /// Write slots consumed across all counted writes.
    pub total_slots: u64,
    /// DEUCE epoch starts observed.
    pub epoch_starts: u64,
    /// Execution time from the timing model.
    pub exec_time_ns: f64,
    /// Energy parameters used (for deriving energy/power).
    pub energy_params: EnergyParams,
    /// Per-cell wear tracking, when enabled.
    pub cells: Option<CellArray>,
    /// Metadata bits per line of the simulated scheme.
    pub metadata_bits: u32,
    /// Counter-cache misses (extra counter-line reads), when the
    /// counter-cache model is enabled.
    pub counter_cache_misses: u64,
    /// Dirty counter-line evictions written back to memory, when the
    /// counter-cache model is enabled.
    pub counter_cache_writebacks: u64,
    /// Counter-cache hit ratio (0 when the model is disabled).
    pub counter_cache_hit_ratio: f64,
    /// Resident bytes of the line-store arena at end of run (stored
    /// images + shadows + compact per-line state; index excluded).
    pub line_store_bytes: u64,
    /// Fault-injection observations, when faults were enabled.
    pub faults: Option<FaultReport>,
    /// Line-pad-cache hit/miss totals for this run, when the pad cache
    /// was enabled. Purely an AES-work metric: pads are a pure function
    /// of `(address, counter)`, so caching never changes any other
    /// field of the result.
    pub pad_cache: Option<PadCacheStats>,
    /// Store-paging statistics for this run, when the out-of-core page
    /// file backend was used (`None` for the in-RAM arena). Purely a
    /// residency metric: paging never changes any other field of the
    /// result.
    pub store: Option<StorePageStats>,
    /// The AES dispatch tier pad generation ran on, so throughput
    /// numbers are attributable to a tier. A host/dispatch property:
    /// every tier produces bit-identical pads, so no other field
    /// depends on it.
    pub aes_backend: AesBackend,
}

/// An empty result: every counter zero, no wear tracking, and the
/// paper's energy parameters. Accumulating drivers start from this and
/// fill in what they measure (`..SimResult::default()` keeps struct
/// literals short as fields are added).
impl Default for SimResult {
    fn default() -> Self {
        Self {
            writes: 0,
            reads: 0,
            data_flips: 0,
            meta_flips: 0,
            counter_flips: 0,
            counters_in_metric: false,
            total_slots: 0,
            epoch_starts: 0,
            exec_time_ns: 0.0,
            energy_params: EnergyParams::PAPER,
            cells: None,
            metadata_bits: 0,
            counter_cache_misses: 0,
            counter_cache_writebacks: 0,
            counter_cache_hit_ratio: 0.0,
            line_store_bytes: 0,
            faults: None,
            pad_cache: None,
            store: None,
            // The portable tier; sessions overwrite this with the
            // engine's actual dispatch choice.
            aes_backend: AesBackend::default(),
        }
    }
}

impl SimResult {
    /// Total bit flips counted by the figure of merit.
    #[must_use]
    pub fn metric_flips(&self) -> u64 {
        let base = self.data_flips + self.meta_flips;
        if self.counters_in_metric {
            base + self.counter_flips
        } else {
            base
        }
    }

    /// Mean flips per write.
    #[must_use]
    pub fn avg_flips_per_write(&self) -> f64 {
        if self.writes == 0 {
            0.0
        } else {
            self.metric_flips() as f64 / self.writes as f64
        }
    }

    /// The paper's figure of merit: mean modified bits per write as a
    /// fraction of the 512 data bits in a line.
    #[must_use]
    pub fn flip_rate(&self) -> f64 {
        self.avg_flips_per_write() / deuce_crypto::LINE_BITS as f64
    }

    /// Mean write slots consumed per write (Fig. 15).
    #[must_use]
    pub fn avg_slots_per_write(&self) -> f64 {
        if self.writes == 0 {
            0.0
        } else {
            self.total_slots as f64 / self.writes as f64
        }
    }

    /// Total memory energy in picojoules (writes + reads + background).
    ///
    /// The write term charges every flip the figure of merit counts —
    /// including counter-storage flips when
    /// [`counters_in_metric`](Self::counters_in_metric) is set, since
    /// those bits are written to the same PCM cells.
    #[must_use]
    pub fn energy_pj(&self) -> f64 {
        let metric_flips = self.metric_flips();
        let flips = u32::try_from(metric_flips).unwrap_or(u32::MAX);
        // write_energy_pj is linear, so one call with the total is exact
        // when it fits; fall back to explicit multiplication otherwise.
        let write = if u64::from(flips) == metric_flips {
            self.energy_params.write_energy_pj(flips)
        } else {
            self.energy_params.write_pj_per_bit * metric_flips as f64
        };
        let read = self.energy_params.read_energy_pj() * self.reads as f64;
        let background = self.energy_params.background_energy_pj(self.exec_time_ns as u64);
        write + read + background
    }

    /// Mean memory power in milliwatts over the run.
    #[must_use]
    pub fn power_mw(&self) -> f64 {
        if self.exec_time_ns == 0.0 {
            0.0
        } else {
            self.energy_pj() / self.exec_time_ns
        }
    }

    /// Energy-delay product (pJ · ns), the Fig. 17 metric.
    #[must_use]
    pub fn edp(&self) -> f64 {
        self.energy_pj() * self.exec_time_ns
    }

    /// Speedup of this run relative to `baseline` (same trace).
    #[must_use]
    pub fn speedup_over(&self, baseline: &SimResult) -> f64 {
        if self.exec_time_ns == 0.0 {
            1.0
        } else {
            baseline.exec_time_ns / self.exec_time_ns
        }
    }

    /// Wear summary, if cell tracking was enabled.
    #[must_use]
    pub fn wear_summary(&self) -> Option<WearSummary> {
        self.cells.as_ref().map(CellArray::wear_summary)
    }

    /// Relative lifetime metric under a policy; `None` without cell
    /// tracking. Normalize two runs' values against each other for
    /// Fig. 14.
    #[must_use]
    pub fn lifetime(&self, policy: LifetimePolicy) -> Option<f64> {
        let cells = self.cells.as_ref()?;
        let summary = cells.wear_summary();
        Some(relative_lifetime(
            &cells.position_totals(),
            summary.max_cell_writes,
            summary.line_writes,
            policy,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SimResult {
        SimResult {
            writes: 100,
            reads: 50,
            data_flips: 12_800, // 128/write = 25%
            meta_flips: 200,
            counter_flips: 150,
            total_slots: 264,
            epoch_starts: 3,
            exec_time_ns: 10_000.0,
            metadata_bits: 32,
            ..SimResult::default()
        }
    }

    #[test]
    fn default_is_a_zero_run() {
        let r = SimResult::default();
        assert_eq!(r.writes, 0);
        assert_eq!(r.metric_flips(), 0);
        assert_eq!(r.avg_flips_per_write(), 0.0);
        assert_eq!(r.energy_pj(), 0.0);
        assert!(r.cells.is_none());
    }

    #[test]
    fn flip_rate_excludes_counters_by_default() {
        let r = sample();
        assert!((r.avg_flips_per_write() - 130.0).abs() < 1e-9);
        assert!((r.flip_rate() - 130.0 / 512.0).abs() < 1e-12);
        let mut with = sample();
        with.counters_in_metric = true;
        assert!(with.flip_rate() > r.flip_rate());
    }

    #[test]
    fn slots_and_speedup() {
        let r = sample();
        assert!((r.avg_slots_per_write() - 2.64).abs() < 1e-9);
        let mut slower = sample();
        slower.exec_time_ns = 20_000.0;
        assert!((r.speedup_over(&slower) - 2.0).abs() < 1e-12);
        assert!((slower.speedup_over(&r) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn energy_power_edp_consistency() {
        let r = sample();
        let e = r.energy_pj();
        assert!(e > 0.0);
        assert!((r.power_mw() - e / 10_000.0).abs() < 1e-9);
        assert!((r.edp() - e * 10_000.0).abs() < 1e-3);
    }

    #[test]
    fn energy_charges_counter_flips_when_in_metric() {
        let base = sample();
        let mut with = sample();
        with.counters_in_metric = true;
        // 150 counter flips × write energy per bit, on top of the base.
        let extra = with.energy_params.write_pj_per_bit * 150.0;
        assert!(
            (with.energy_pj() - base.energy_pj() - extra).abs() < 1e-9,
            "counter flips in the metric must be charged as written bits: \
             {} vs {} + {extra}",
            with.energy_pj(),
            base.energy_pj(),
        );
        // Out of the metric, counter flips stay unpriced.
        assert!((base.energy_pj() - energy_by_hand(&base)).abs() < 1e-9);
    }

    fn energy_by_hand(r: &SimResult) -> f64 {
        r.energy_params.write_pj_per_bit * (r.data_flips + r.meta_flips) as f64
            + r.energy_params.read_energy_pj() * r.reads as f64
            + r.energy_params.background_energy_pj(r.exec_time_ns as u64)
    }

    #[test]
    fn zero_writes_are_safe() {
        let mut r = sample();
        r.writes = 0;
        r.exec_time_ns = 0.0;
        assert_eq!(r.avg_flips_per_write(), 0.0);
        assert_eq!(r.avg_slots_per_write(), 0.0);
        assert_eq!(r.power_mw(), 0.0);
        assert_eq!(r.speedup_over(&sample()), 1.0);
        assert!(r.lifetime(LifetimePolicy::Raw).is_none());
    }
}

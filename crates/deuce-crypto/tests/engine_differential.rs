//! Differential validation of the batched pad path — on every AES
//! dispatch tier the host offers — against the serial byte-oriented
//! reference engine.
//!
//! `OtpEngine::new` (batched fast path, optionally cached, on hw or
//! T-table tiers) and `OtpEngine::new_reference` must emit bit-identical
//! pads for every `(address, counter)` pair, through the single, paired,
//! and prefilled entry points — this is the engine-level half of the
//! bit-identical-ciphertext contract (the cipher-level half lives in
//! `deuce-aes/tests/differential.rs`). `scripts/ci.sh` additionally
//! re-runs the suite with each `DEUCE_AES_FORCE` tier pinned.

use deuce_crypto::{available_backends, LineAddr, OtpEngine, SecretKey};
use deuce_rng::{DeuceRng, Rng};

#[test]
fn line_pads_agree_across_engines() {
    let key = SecretKey::from_seed(0x5EED);
    let reference = OtpEngine::new_reference(&key);
    let engines: Vec<(String, OtpEngine)> = available_backends()
        .iter()
        .flat_map(|b| {
            [
                (format!("{b}"), OtpEngine::new(&key).with_aes_backend(*b)),
                (
                    format!("{b}+cache"),
                    OtpEngine::new(&key).with_aes_backend(*b).with_pad_cache(32),
                ),
            ]
        })
        .collect();
    let mut rng = DeuceRng::seed_from_u64(0x11AE);
    for _ in 0..2000 {
        let mut raw = [0u8; 16];
        rng.fill(&mut raw);
        let addr = LineAddr::new(u64::from_le_bytes(raw[..8].try_into().unwrap()));
        let counter = u64::from_le_bytes(raw[8..].try_into().unwrap()) & ((1 << 48) - 1);
        let expected = reference.line_pad(addr, counter);
        for (label, engine) in &engines {
            assert_eq!(
                engine.line_pad(addr, counter),
                expected,
                "{label} diverged at addr {addr}, counter {counter}"
            );
        }
    }
}

/// The paired entry point (DEUCE read path: LCTR and TCTR pads in one
/// 8-block batch) and epoch prefill (speculative next-epoch insert) must
/// be bit-identical to serial reference pads on every tier.
#[test]
fn paired_and_prefilled_pads_agree_across_engines() {
    let key = SecretKey::from_seed(0xFA12);
    let reference = OtpEngine::new_reference(&key);
    let mut rng = DeuceRng::seed_from_u64(0x33CE);
    for backend in available_backends() {
        let plain = OtpEngine::new(&key).with_aes_backend(*backend);
        let cached = OtpEngine::new(&key).with_aes_backend(*backend).with_pad_cache(64);
        for _ in 0..500 {
            let mut raw = [0u8; 24];
            rng.fill(&mut raw);
            let addr = LineAddr::new(u64::from_le_bytes(raw[..8].try_into().unwrap()));
            let ctr_a = u64::from_le_bytes(raw[8..16].try_into().unwrap()) & ((1 << 48) - 1);
            let ctr_b = u64::from_le_bytes(raw[16..].try_into().unwrap()) & ((1 << 48) - 1);
            let exp_a = reference.line_pad(addr, ctr_a);
            let exp_b = reference.line_pad(addr, ctr_b);
            for engine in [&plain, &cached] {
                let (a, b) = engine.line_pad_pair(addr, ctr_a, ctr_b);
                assert_eq!(a, exp_a, "{backend} pair.a at addr {addr}");
                assert_eq!(b, exp_b, "{backend} pair.b at addr {addr}");
            }
            // Prefill, then demand the same pad: must still match the
            // reference byte for byte.
            cached.prefill_line_pad(addr, ctr_b);
            assert_eq!(
                cached.line_pad(addr, ctr_b),
                exp_b,
                "{backend} prefilled pad diverged at addr {addr}, counter {ctr_b}"
            );
        }
    }
}

#[test]
fn block_pads_agree_across_engines() {
    let key = SecretKey::from_seed(0xB10C);
    let fast = OtpEngine::new(&key);
    let reference = OtpEngine::new_reference(&key);
    let mut rng = DeuceRng::seed_from_u64(0x22BE);
    for _ in 0..2000 {
        let mut raw = [0u8; 16];
        rng.fill(&mut raw);
        let addr = LineAddr::new(u64::from_le_bytes(raw[..8].try_into().unwrap()));
        let counter = u64::from_le_bytes(raw[8..].try_into().unwrap()) & ((1 << 48) - 1);
        for block in 0..4 {
            assert_eq!(
                fast.block_pad(addr, block, counter),
                reference.block_pad(addr, block, counter),
                "addr {addr}, counter {counter}, block {block}"
            );
        }
    }
}

/// Boundary values of the 48-bit counter field and the address space
/// must agree too — the randomized sweep is unlikely to land on them.
#[test]
fn edge_inputs_agree_across_engines() {
    let key = SecretKey::from_seed(7);
    let fast = OtpEngine::new(&key);
    let reference = OtpEngine::new_reference(&key);
    for addr in [0u64, 1, u64::MAX] {
        for counter in [0u64, 1, (1 << 48) - 1] {
            let addr = LineAddr::new(addr);
            assert_eq!(fast.line_pad(addr, counter), reference.line_pad(addr, counter));
            for block in 0..4 {
                assert_eq!(
                    fast.block_pad(addr, block, counter),
                    reference.block_pad(addr, block, counter)
                );
            }
        }
    }
}

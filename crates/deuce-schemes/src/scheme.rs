//! The monomorphisable scheme interface: [`LineScheme`] plus the
//! [`SchemeCell`] single-line owner built on it.
//!
//! A scheme is split into two pieces:
//!
//! - a small `Copy` **parameter struct** (word size, epoch, counter
//!   width …) shared by every line, implementing [`LineScheme`]; and
//! - a compact **per-line state** ([`LineScheme::State`]) holding only
//!   what varies per line — raw counter values and raw metadata bits.
//!
//! Storage (the 64 ciphertext bytes, the optional plaintext shadow, and
//! the state) lives *outside* the scheme, in a [`SchemeCell`] for a
//! single line or a [`crate::LineStore`] arena for many. The simulator
//! hot loop is generic over `S: LineScheme` and monomorphises away all
//! dispatch; [`crate::SchemeLine`] (a `SchemeCell<AnyScheme>`) keeps the
//! runtime-selected path for CLI sweeps.

use deuce_crypto::{LineAddr, LineBytes, OtpEngine};
use deuce_nvm::LineImage;

use crate::WriteOutcome;

/// Mutable view of one line's storage, lent to [`LineScheme::write`].
#[derive(Debug)]
pub struct LineMut<'a, S> {
    /// Ciphertext exactly as stored in the PCM cells.
    pub stored: &'a mut LineBytes,
    /// Plaintext of the previous write. Only meaningful for schemes
    /// whose [`LineScheme::needs_shadow`] is true; others receive a
    /// scratch buffer they must ignore.
    pub shadow: &'a mut LineBytes,
    /// The scheme's compact per-line state.
    pub state: &'a mut S,
}

/// Shared view of one line's storage, lent to [`LineScheme::read`] and
/// [`LineScheme::image`].
#[derive(Debug, Clone, Copy)]
pub struct LineRef<'a, S> {
    /// Ciphertext exactly as stored in the PCM cells.
    pub stored: &'a LineBytes,
    /// The scheme's compact per-line state.
    pub state: &'a S,
}

/// One of the paper's per-line write-reduction state machines, expressed
/// over externally-owned storage.
///
/// Implementations must be bit-identical to the historical fat-enum
/// schemes: same stored images, same flip accounting, same epoch
/// behaviour (pinned by `deuce-sim/tests/scheme_parity.rs`).
pub trait LineScheme {
    /// Compact per-line state (raw counters and raw metadata bits).
    type State: Copy + core::fmt::Debug;

    /// Whether lines keep a plaintext shadow of the last write (DEUCE
    /// variants compare incoming data against it to mark modified
    /// words; BLE uses it to skip untouched blocks).
    fn needs_shadow(&self) -> bool;

    /// Metadata bits per line for Table 3 accounting.
    fn metadata_bits(&self) -> u32;

    /// Encrypts/encodes `initial` into a fresh line's stored bytes and
    /// initial state (counter 0, which is an epoch start).
    fn init(&self, engine: &OtpEngine, addr: LineAddr, initial: &LineBytes)
        -> (LineBytes, Self::State);

    /// Drives one full-line write through the scheme state machine.
    /// Implementations with a shadow must refresh it to `data`.
    fn write(
        &self,
        engine: &OtpEngine,
        addr: LineAddr,
        line: LineMut<'_, Self::State>,
        data: &LineBytes,
    ) -> WriteOutcome;

    /// Decrypts/decodes the logical line value.
    fn read(&self, engine: &OtpEngine, addr: LineAddr, line: LineRef<'_, Self::State>)
        -> LineBytes;

    /// The stored image (ciphertext + metadata bits) of a line.
    fn image(&self, line: LineRef<'_, Self::State>) -> LineImage;
}

/// One self-contained memory line under a scheme `S`: owns the stored
/// bytes, the shadow, and the per-line state.
///
/// The concrete line types ([`crate::DeuceLine`], [`crate::BleLine`],
/// …) are aliases of this with scheme-specific constructors, and
/// [`crate::SchemeLine`] is `SchemeCell<AnyScheme>`.
///
/// # Examples
///
/// ```
/// use deuce_crypto::{LineAddr, OtpEngine, SecretKey};
/// use deuce_schemes::{EncryptedDcwScheme, SchemeCell};
///
/// let engine = OtpEngine::new(&SecretKey::from_seed(1));
/// let scheme = EncryptedDcwScheme::new(28);
/// let mut line = SchemeCell::with_scheme(scheme, &engine, LineAddr::new(3), &[0u8; 64]);
/// let data = [7u8; 64];
/// let _ = line.write(&engine, &data);
/// assert_eq!(line.read(&engine), data);
/// ```
#[derive(Debug, Clone)]
pub struct SchemeCell<S: LineScheme> {
    scheme: S,
    addr: LineAddr,
    stored: LineBytes,
    shadow: LineBytes,
    state: S::State,
}

impl<S: LineScheme> SchemeCell<S> {
    /// Creates a line holding `initial` under `scheme`.
    #[must_use]
    pub fn with_scheme(scheme: S, engine: &OtpEngine, addr: LineAddr, initial: &LineBytes) -> Self {
        let (stored, state) = scheme.init(engine, addr, initial);
        Self {
            scheme,
            addr,
            stored,
            shadow: *initial,
            state,
        }
    }

    /// Writes a full line of new data, returning the exact device-level
    /// outcome.
    #[must_use]
    pub fn write(&mut self, engine: &OtpEngine, data: &LineBytes) -> WriteOutcome {
        self.scheme.write(
            engine,
            self.addr,
            LineMut {
                stored: &mut self.stored,
                shadow: &mut self.shadow,
                state: &mut self.state,
            },
            data,
        )
    }

    /// Reads (and if necessary decrypts) the logical line value.
    #[must_use]
    pub fn read(&self, engine: &OtpEngine) -> LineBytes {
        self.scheme.read(
            engine,
            self.addr,
            LineRef {
                stored: &self.stored,
                state: &self.state,
            },
        )
    }

    /// The current stored image.
    #[must_use]
    pub fn image(&self) -> LineImage {
        self.scheme.image(LineRef {
            stored: &self.stored,
            state: &self.state,
        })
    }

    /// Metadata bits this line stores (Table 3 accounting).
    #[must_use]
    pub fn metadata_bits(&self) -> u32 {
        self.scheme.metadata_bits()
    }

    /// The scheme parameters this line runs under.
    #[must_use]
    pub fn scheme(&self) -> &S {
        &self.scheme
    }

    /// The compact per-line state.
    #[must_use]
    pub fn state(&self) -> &S::State {
        &self.state
    }
}

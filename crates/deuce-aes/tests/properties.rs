//! Property-based tests for the AES implementation.

use deuce_aes::{Aes, Aes128, Block};
use proptest::prelude::*;

fn popcount_diff(a: &Block, b: &Block) -> u32 {
    a.iter().zip(b).map(|(x, y)| (x ^ y).count_ones()).sum()
}

proptest! {
    /// Decryption inverts encryption for every key size and random data.
    #[test]
    fn roundtrip_all_key_sizes(
        len_idx in 0usize..3,
        key_bytes in any::<[u8; 32]>(),
        pt in any::<[u8; 16]>(),
    ) {
        let len = [16usize, 24, 32][len_idx];
        let key = &key_bytes[..len];
        let cipher = Aes::new(key).unwrap();
        let ct = cipher.encrypt_block(&pt);
        prop_assert_eq!(cipher.decrypt_block(&ct), pt);
    }

    /// Encryption is injective: distinct plaintexts map to distinct
    /// ciphertexts under the same key.
    #[test]
    fn injective(key in any::<[u8; 16]>(), a in any::<[u8; 16]>(), b in any::<[u8; 16]>()) {
        prop_assume!(a != b);
        let cipher = Aes128::new(&key);
        prop_assert_ne!(cipher.encrypt_block(&a), cipher.encrypt_block(&b));
    }

    /// Avalanche effect: flipping one plaintext bit changes a substantial
    /// fraction of ciphertext bits. This is the property that makes naive
    /// encrypted PCM writes flip ~50% of the bits (DEUCE's motivation), so
    /// we pin it down: a single-bit change must flip at least 30 of 128
    /// ciphertext bits (the expected value is 64).
    #[test]
    fn avalanche(key in any::<[u8; 16]>(), pt in any::<[u8; 16]>(), bit in 0usize..128) {
        let cipher = Aes128::new(&key);
        let ct = cipher.encrypt_block(&pt);
        let mut flipped = pt;
        flipped[bit / 8] ^= 1 << (bit % 8);
        let ct2 = cipher.encrypt_block(&flipped);
        let diff = popcount_diff(&ct, &ct2);
        prop_assert!(diff >= 30, "only {diff} bits differed");
        prop_assert!(diff <= 98, "{diff} bits differed (suspiciously many)");
    }

    /// Key avalanche: flipping one key bit changes the ciphertext.
    #[test]
    fn key_sensitivity(key in any::<[u8; 16]>(), pt in any::<[u8; 16]>(), bit in 0usize..128) {
        let cipher = Aes128::new(&key);
        let mut key2 = key;
        key2[bit / 8] ^= 1 << (bit % 8);
        let cipher2 = Aes128::new(&key2);
        let diff = popcount_diff(&cipher.encrypt_block(&pt), &cipher2.encrypt_block(&pt));
        prop_assert!(diff >= 30, "only {diff} bits differed");
    }
}

/// Statistical check across many blocks: mean avalanche is close to 64 bits.
#[test]
fn mean_avalanche_is_near_half() {
    let cipher = Aes128::new(&[0x13u8; 16]);
    let mut total = 0u64;
    let trials = 2000u64;
    for i in 0..trials {
        let mut pt = [0u8; 16];
        pt[..8].copy_from_slice(&i.to_le_bytes());
        let ct = cipher.encrypt_block(&pt);
        let mut pt2 = pt;
        pt2[15] ^= 0x80;
        let ct2 = cipher.encrypt_block(&pt2);
        total += u64::from(popcount_diff(&ct, &ct2));
    }
    let mean = total as f64 / trials as f64;
    assert!((mean - 64.0).abs() < 2.0, "mean avalanche {mean}");
}

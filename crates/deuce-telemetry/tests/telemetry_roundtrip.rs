//! Integration: a recorder filled by a synthetic "run" exports JSONL
//! that parses back to the same numbers, deterministically.

use deuce_telemetry::{
    export, parse, Counter, Gauge, Recorder, Stage, TelemetryConfig, TelemetryRecorder,
    WriteObservation,
};

fn synthetic_run(sample_every: u64) -> TelemetryRecorder {
    let mut rec = TelemetryRecorder::new(TelemetryConfig {
        sample_every,
        energy_pj_per_flip: 13.5,
    });
    let mut hits = 0u64;
    let mut misses = 0u64;
    for i in 1..=300u64 {
        rec.add(Counter::Writes, 1);
        rec.add(Counter::CounterAccesses, 1);
        if i % 5 == 0 {
            misses += 1;
            rec.add(Counter::CounterFills, 1);
        } else {
            hits += 1;
        }
        rec.residency(i.min(64));
        rec.stage_ns(Stage::Scheme, 40 + i % 17);
        let flips = 40 + (i * 7) % 90;
        rec.add(Counter::DataFlips, flips);
        rec.write_observed(&WriteObservation {
            sim_ns: 150.0 * i as f64,
            flips,
            slots: 1 + (i % 4) as u32,
            cache_hits: hits,
            cache_misses: misses,
        });
    }
    rec.gauge(Gauge::ExecTimeNs, 45_000.0);
    rec.gauge(Gauge::HitRatio, hits as f64 / 300.0);
    rec
}

#[test]
fn export_parse_round_trip_preserves_the_numbers() {
    let rec = synthetic_run(32);
    let mut buf = Vec::new();
    export::write_jsonl(&mut buf, "synthetic", &rec).unwrap();
    let text = String::from_utf8(buf).unwrap();
    let events = parse::parse_jsonl(&text).unwrap();

    let counter = |name: &str| {
        events
            .iter()
            .find(|e| e.kind() == "counter" && e.str("name") == Some(name))
            .and_then(|e| e.u64("value"))
            .unwrap()
    };
    assert_eq!(counter("writes"), 300);
    assert_eq!(counter("counter_fills"), 60);
    assert_eq!(counter("data_flips"), rec.counter(Counter::DataFlips));

    let samples: Vec<_> = events.iter().filter(|e| e.kind() == "sample").collect();
    assert_eq!(samples.len(), rec.samples().len());
    assert_eq!(samples.len(), 300 / 32);
    for (event, sample) in samples.iter().zip(rec.samples()) {
        assert_eq!(event.u64("writes"), Some(sample.writes));
        assert_eq!(event.num("sim_ns"), Some(sample.sim_ns), "f64 round-trips exactly");
        assert_eq!(event.num("flips_per_write"), Some(sample.flips_per_write));
        assert_eq!(event.num("power_mw"), Some(sample.power_mw));
    }

    let hist = events
        .iter()
        .find(|e| e.kind() == "hist" && e.str("name") == Some("flips_per_write"))
        .unwrap();
    assert_eq!(hist.u64("count"), Some(300));
    assert_eq!(hist.u64("sum"), Some(rec.flips_hist().sum()));
    let bucket_total: u64 = events
        .iter()
        .filter(|e| e.kind() == "hist_bucket" && e.str("name") == Some("flips_per_write"))
        .map(|e| e.u64("count").unwrap())
        .sum();
    assert_eq!(bucket_total, 300, "buckets partition the samples");
}

#[test]
fn identical_runs_export_identical_deterministic_sections() {
    let render = |rec: &TelemetryRecorder| {
        let mut buf = Vec::new();
        export::write_jsonl(&mut buf, "r", rec).unwrap();
        let text = String::from_utf8(buf).unwrap();
        // Drop wall-clock profile events; everything else must be stable.
        text.lines()
            .filter(|l| !l.contains("\"type\":\"profile\""))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(render(&synthetic_run(64)), render(&synthetic_run(64)));
    assert_ne!(render(&synthetic_run(64)), render(&synthetic_run(16)));
}

#[test]
fn csv_summary_matches_recorder_state() {
    let rec = synthetic_run(50);
    let mut buf = Vec::new();
    export::write_csv_header(&mut buf).unwrap();
    export::write_csv(&mut buf, "synthetic", &rec).unwrap();
    let text = String::from_utf8(buf).unwrap();
    assert!(text.contains(&format!("synthetic,writes,{}", rec.counter(Counter::Writes))));
    assert!(text.contains("synthetic,series_samples,6"));
    assert!(text.contains("synthetic,exec_time_ns,45000.0"));
}

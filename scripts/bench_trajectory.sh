#!/usr/bin/env bash
# Performance trajectory: fold the headline numbers from every recorded
# BENCH_*.json into one table, so a CI log shows at a glance where the
# repo's measured wins stand. Read-only — this never re-runs the
# benchmarks, it only reports what the bench scripts wrote down.
#
#   bash scripts/bench_trajectory.sh
set -euo pipefail
cd "$(dirname "$0")/.."

# Pulls one scalar field out of a (possibly multi-line) JSON file; the
# zero-dep sed idiom shared with scripts/bench_stream.sh.
field() {
    sed -n "s/.*\"$2\":[[:space:]]*\"\{0,1\}\([0-9a-zA-Z._-]*\)\"\{0,1\}[,}].*/\1/p" "$1" \
        | head -n 1
}

shopt -s nullglob
files=(BENCH_*.json)
if [ "${#files[@]}" -eq 0 ]; then
    echo "no BENCH_*.json files recorded yet"
    exit 0
fi

printf '%-20s %-12s %-30s %s\n' file date metric value
for f in "${files[@]}"; do
    when="$(field "$f" date)"
    for metric in speedup_encrypt_block speedup_line_pad speedup_run_trace \
        aes_backend_detected line_pad_ns_detected speedup_line_pad_vs_ttable \
        resident_ratio writes_per_sec_materialised writes_per_sec_streaming \
        store_resident_ratio writes_per_sec_paged_store \
        requests_per_sec_serve serve_parallel_speedup; do
        value="$(field "$f" "$metric")"
        if [ -n "$value" ]; then
            printf '%-20s %-12s %-30s %s\n' "$f" "$when" "$metric" "$value"
        fi
    done
done

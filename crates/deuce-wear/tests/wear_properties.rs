//! Property tests for the wear-leveling substrate.

use deuce_wear::{HorizontalWearLeveler, HwlMode, PerLineRotation, StartGap};
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    /// Start-Gap's remapping stays a bijection into the frame space at
    /// every point of any write sequence.
    #[test]
    fn start_gap_remains_bijective(
        lines in 2usize..64,
        gap_interval in 1u32..8,
        steps in 0usize..500,
    ) {
        let mut sg = StartGap::new(lines, gap_interval);
        for _ in 0..steps {
            let _ = sg.record_write();
        }
        let mapped: HashSet<usize> = (0..lines).map(|la| sg.remap(la)).collect();
        prop_assert_eq!(mapped.len(), lines);
        prop_assert!(mapped.iter().all(|&pa| pa < lines + 1));
        prop_assert!(!mapped.contains(&sg.gap()));
    }

    /// Sweeps advance exactly once per (lines + 1) gap moves.
    #[test]
    fn sweep_rate(lines in 2usize..32, moves in 1usize..200) {
        let mut sg = StartGap::new(lines, 1);
        for _ in 0..moves {
            let _ = sg.record_write();
        }
        prop_assert_eq!(sg.sweeps(), (moves / (lines + 1)) as u64);
    }

    /// HWL rotations are always within the ring, in both modes.
    #[test]
    fn rotations_in_range(
        lines in 2usize..32,
        steps in 0usize..300,
        ring in 1u32..1024,
        addr in any::<u64>(),
    ) {
        let mut sg = StartGap::new(lines, 1);
        for _ in 0..steps {
            let _ = sg.record_write();
        }
        for mode in [HwlMode::Algebraic, HwlMode::Hashed] {
            let hwl = HorizontalWearLeveler::new(mode, ring);
            for la in 0..lines {
                prop_assert!(hwl.rotation(&sg, la, addr) < ring);
            }
        }
    }

    /// The algebraic rotation advances by exactly one per sweep for a
    /// line the gap has not yet passed.
    #[test]
    fn algebraic_rotation_tracks_sweeps(lines in 2usize..16) {
        let mut sg = StartGap::new(lines, 1);
        let hwl = HorizontalWearLeveler::new(HwlMode::Algebraic, 544);
        for expected_sweep in 0..5u64 {
            // At the start of a sweep the gap is at the top: nothing
            // passed yet.
            for la in 0..lines {
                if !sg.gap_passed(la) {
                    prop_assert_eq!(hwl.rotation(&sg, la, 0), (expected_sweep % 544) as u32);
                }
            }
            while sg.sweeps() == expected_sweep {
                let _ = sg.record_write();
            }
        }
    }

    /// Per-line rotation: counts writes independently and wraps.
    #[test]
    fn per_line_rotation_wraps(ring in 2u32..32, interval in 1u32..5, writes in 1u32..200) {
        let mut plr = PerLineRotation::new(2, ring, interval);
        for _ in 0..writes {
            let _ = plr.record_write(0);
        }
        prop_assert_eq!(plr.rotation(0), (writes / interval) % ring);
        prop_assert_eq!(plr.rotation(1), 0);
    }
}

/// The §5.3 invariant as a long-run test: after the gap passes a line,
/// the line's rotation equals the next sweep's value — so when Start
/// increments, all passed lines are already rotated correctly.
#[test]
fn gap_passage_pre_rotates_consistently() {
    let lines = 12;
    let mut sg = StartGap::new(lines, 1);
    let hwl = HorizontalWearLeveler::new(HwlMode::Algebraic, 97);
    for _ in 0..1000 {
        let sweeps = sg.sweeps();
        for la in 0..lines {
            let expected = if sg.gap_passed(la) { sweeps + 1 } else { sweeps };
            assert_eq!(hwl.rotation(&sg, la, 0), (expected % 97) as u32);
        }
        let _ = sg.record_write();
    }
}

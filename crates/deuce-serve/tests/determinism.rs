//! The serve layer's headline promise: a tenant's results are a pure
//! function of its request stream — not of shard count, queue depth,
//! batch boundaries, or worker interleaving.
//!
//! Each test replays the same per-tenant streams through a
//! single-threaded `Simulator::run_source` and demands bit-identical
//! summaries and memory-image fingerprints from the service.

use deuce_serve::{request_event, Request, ServiceBuilder, SubmitError};
use deuce_sim::{SchemeKind, SimConfig, SimResult, Simulator};
use deuce_trace::{LineAddr, TraceEvent, WriteSource};

/// Deterministic per-tenant request stream: a mix of writes and reads
/// over a small working set, with tenant-specific data patterns.
fn stream(tenant: u64, requests: u64) -> Vec<Request> {
    let mut out = Vec::with_capacity(requests as usize);
    let mut z = tenant.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    for i in 0..requests {
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        let addr = LineAddr::new(z % 96);
        if z.is_multiple_of(5) {
            out.push(Request::read(addr));
        } else {
            let mut data = [0u8; 64];
            for (j, byte) in data.iter_mut().enumerate() {
                *byte = (z as u8).wrapping_add(j as u8).wrapping_mul(i as u8 | 1);
            }
            out.push(Request::write(addr, data));
        }
    }
    out
}

fn tenant_config(tenant: u64) -> SimConfig {
    SimConfig::new(SchemeKind::Deuce).key_seed(0xD00D + tenant)
}

/// Pull source replaying a request stream exactly as the service maps
/// it: seq = submission order, core 0.
struct RequestStream<'a> {
    requests: &'a [Request],
    pos: usize,
}

impl WriteSource for RequestStream<'_> {
    fn next_event(&mut self) -> Result<Option<TraceEvent>, deuce_trace::TraceIoError> {
        let Some(request) = self.requests.get(self.pos) else {
            return Ok(None);
        };
        let event = request_event(self.pos as u64, request);
        self.pos += 1;
        Ok(Some(event))
    }

    fn cores(&self) -> usize {
        1
    }
}

/// Single-threaded ground truth for one tenant: summary + fingerprint.
fn replay(tenant: u64, requests: &[Request]) -> (SimResult, u64) {
    let simulator = Simulator::new(tenant_config(tenant));
    let mut session = simulator.session(1).expect("arena backend");
    for (seq, request) in requests.iter().enumerate() {
        session.step(&request_event(seq as u64, request));
    }
    let fingerprint = session.content_fingerprint();
    let result = session.finish().expect("arena replay cannot fail");
    (result, fingerprint)
}

/// Runs `tenants` streams through a service at `shards`, one submitter
/// thread per tenant, honouring backpressure by retrying.
fn serve(
    tenants: &[(u64, Vec<Request>)],
    shards: usize,
    queue_depth: usize,
    batch: usize,
) -> deuce_serve::ServeReport {
    let mut builder = ServiceBuilder::new().shards(shards).queue_depth(queue_depth);
    for (tenant, _) in tenants {
        builder = builder.tenant(format!("t{tenant}"), tenant_config(*tenant));
    }
    let handle = builder.start().expect("service starts");
    std::thread::scope(|scope| {
        for (tenant, requests) in tenants {
            let id = handle.tenant(&format!("t{tenant}")).expect("registered");
            let handle = &handle;
            scope.spawn(move || {
                for chunk in requests.chunks(batch) {
                    loop {
                        match handle.submit(id, chunk) {
                            Ok(()) => break,
                            Err(SubmitError::QueueFull { retry_after, .. }) => {
                                std::thread::sleep(retry_after);
                            }
                            Err(e) => panic!("unexpected submit error: {e}"),
                        }
                    }
                }
            });
        }
    });
    handle.shutdown()
}

fn assert_results_identical(a: &SimResult, b: &SimResult, what: &str) {
    assert_eq!(a.writes, b.writes, "{what}: writes");
    assert_eq!(a.reads, b.reads, "{what}: reads");
    assert_eq!(a.data_flips, b.data_flips, "{what}: data_flips");
    assert_eq!(a.meta_flips, b.meta_flips, "{what}: meta_flips");
    assert_eq!(a.counter_flips, b.counter_flips, "{what}: counter_flips");
    assert_eq!(a.total_slots, b.total_slots, "{what}: total_slots");
    assert_eq!(a.epoch_starts, b.epoch_starts, "{what}: epoch_starts");
    assert_eq!(
        a.exec_time_ns.to_bits(),
        b.exec_time_ns.to_bits(),
        "{what}: exec_time_ns must be bit-identical"
    );
    assert_eq!(a.metadata_bits, b.metadata_bits, "{what}: metadata_bits");
    assert_eq!(a.line_store_bytes, b.line_store_bytes, "{what}: line_store_bytes");
}

#[test]
fn per_tenant_results_are_shard_count_invariant() {
    let tenants: Vec<(u64, Vec<Request>)> =
        (0..3).map(|t| (t, stream(t, 900))).collect();
    let truth: Vec<(SimResult, u64)> = tenants
        .iter()
        .map(|(t, requests)| replay(*t, requests))
        .collect();

    for shards in [1usize, 2, 8] {
        let report = serve(&tenants, shards, 64, 7);
        assert!(report.clean(), "clean run at {shards} shards");
        assert_eq!(report.applied, 3 * 900);
        for (i, tenant) in report.tenants.iter().enumerate() {
            let (expected, fingerprint) = &truth[i];
            assert_eq!(
                tenant.fingerprint, *fingerprint,
                "tenant {i} memory image at {shards} shards"
            );
            let got = tenant.result.as_ref().expect("tenant finished clean");
            assert_results_identical(
                got,
                expected,
                &format!("tenant {i} at {shards} shards"),
            );
        }
    }
}

#[test]
fn batch_boundaries_do_not_change_results() {
    let requests = stream(9, 600);
    let (expected, fingerprint) = replay(9, &requests);
    for batch in [1usize, 13, 600] {
        // Queue depth must admit the largest batch: a chunk whose
        // per-shard share exceeds the capacity can never be accepted.
        let report = serve(&[(9, requests.clone())], 4, 1024, batch);
        assert!(report.clean());
        assert_eq!(report.tenants[0].fingerprint, fingerprint, "batch {batch}");
        assert_results_identical(
            report.tenants[0].result.as_ref().unwrap(),
            &expected,
            &format!("batch size {batch}"),
        );
    }
}

#[test]
fn replay_source_matches_run_source_driver() {
    // The RequestStream adapter used as ground truth above is itself
    // pinned against the simulator's own streaming driver, closing the
    // loop: service == session replay == run_source.
    let requests = stream(2, 500);
    let (expected, _) = replay(2, &requests);
    let via_driver = Simulator::new(tenant_config(2))
        .run_source(&mut RequestStream { requests: &requests, pos: 0 })
        .expect("streaming run");
    assert_results_identical(&via_driver, &expected, "run_source vs session replay");
}

#[test]
fn rejected_batches_never_partially_apply() {
    // Paused service, tiny queue: accepted and rejected batches are
    // known exactly, and the final state must equal a replay of only
    // the accepted ones.
    let handle = ServiceBuilder::new()
        .start_paused()
        .shards(2)
        .queue_depth(4)
        .tenant("t", tenant_config(0))
        .start()
        .unwrap();
    let id = handle.tenant("t").unwrap();

    let all = stream(0, 40);
    let mut accepted: Vec<Request> = Vec::new();
    for chunk in all.chunks(3) {
        match handle.submit(id, chunk) {
            Ok(()) => accepted.extend_from_slice(chunk),
            Err(SubmitError::QueueFull { .. }) => {}
            Err(e) => panic!("unexpected submit error: {e}"),
        }
    }
    assert!(accepted.len() < all.len(), "backpressure must have fired");
    assert!(!accepted.is_empty(), "some batches must fit");

    handle.resume();
    let report = handle.shutdown();
    assert_eq!(report.applied as usize, accepted.len());

    let (expected, fingerprint) = replay(0, &accepted);
    assert_eq!(report.tenants[0].fingerprint, fingerprint);
    assert_results_identical(
        report.tenants[0].result.as_ref().unwrap(),
        &expected,
        "accepted-only replay",
    );
}

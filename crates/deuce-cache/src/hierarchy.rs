//! A multi-level hierarchy driving accesses down to memory-level
//! events.

use deuce_crypto::LineAddr;
use deuce_trace::{Trace, TraceEvent};

use crate::access::{AccessKind, MemAccess};
use crate::cache::{Cache, CacheConfig, CacheStats, MemoryEvent};

/// Hierarchy geometry (sizes per level, inclusive-of-nothing simple
/// exclusive stack: evictions trickle down level by level).
#[derive(Debug, Clone)]
pub struct HierarchyConfig {
    /// Per-level configs, L1 first. The last level's evictions and
    /// misses are the PCM traffic.
    pub levels: Vec<CacheConfig>,
}

impl HierarchyConfig {
    /// A scaled-down analogue of Table 1's 32KB/256KB/1MB/8MB-per-core
    /// stack, sized for simulator-scale working sets (divide by 64).
    #[must_use]
    pub fn scaled_paper() -> Self {
        Self {
            levels: vec![
                CacheConfig::new(512, 8),      // "L1"
                CacheConfig::new(4 * 1024, 8), // "L2"
                CacheConfig::new(16 * 1024, 8),// "L3"
                CacheConfig::new(128 * 1024, 8), // "L4"
            ],
        }
    }
}

/// The cache stack for one core.
#[derive(Debug)]
pub struct Hierarchy {
    levels: Vec<Cache>,
    core: u8,
}

impl Hierarchy {
    /// Builds the stack.
    ///
    /// # Panics
    ///
    /// Panics if no levels are configured.
    #[must_use]
    pub fn new(config: &HierarchyConfig, core: u8) -> Self {
        assert!(!config.levels.is_empty(), "need at least one cache level");
        Self {
            levels: config.levels.iter().map(|&c| Cache::new(c)).collect(),
            core,
        }
    }

    /// Per-level statistics, L1 first.
    #[must_use]
    pub fn stats(&self) -> Vec<CacheStats> {
        self.levels.iter().map(Cache::stats).collect()
    }

    /// Applies one access; memory-level events (last-level misses and
    /// writebacks) are appended to `trace`.
    pub fn access(&mut self, access: &MemAccess, trace: &mut Trace) {
        let events = match access.kind {
            AccessKind::Load => self.levels[0].load_with(access.addr, || [0u8; 64]),
            AccessKind::Store => self.levels[0].store(
                access.addr,
                (access.addr % 64) as usize,
                &access.store_bytes,
            ),
        };
        self.propagate(events, 1, access.instr, trace);
    }

    fn propagate(&mut self, events: Vec<MemoryEvent>, level: usize, instr: u64, trace: &mut Trace) {
        for event in events {
            if level == self.levels.len() {
                // Last level: this is PCM traffic.
                match event {
                    MemoryEvent::Fill { line } => {
                        trace.push(TraceEvent::read(self.core, instr, LineAddr::new(line)));
                    }
                    MemoryEvent::Writeback { line, data } => {
                        trace.push(TraceEvent::write(self.core, instr, LineAddr::new(line), data));
                    }
                }
                continue;
            }
            let next = match event {
                MemoryEvent::Fill { line } => self.levels[level].load_with(line * 64, || [0u8; 64]),
                MemoryEvent::Writeback { line, data } => {
                    self.levels[level].install_dirty(line, data)
                }
            };
            self.propagate(next, level + 1, instr, trace);
        }
    }

    /// Flushes every level (power-down), pushing residual writebacks to
    /// the trace at `instr`.
    pub fn flush(&mut self, instr: u64, trace: &mut Trace) {
        for level in 0..self.levels.len() {
            let events = self.levels[level].flush();
            self.propagate(events, level + 1, instr, trace);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AccessStream;
    use deuce_trace::{Op, TraceStats};

    fn run_stream(accesses: usize, working_set: u64) -> (Trace, Vec<CacheStats>) {
        let mut hierarchy = Hierarchy::new(&HierarchyConfig::scaled_paper(), 0);
        let mut stream = AccessStream::new(working_set, 0.4, 4, 3);
        let mut trace = Trace::default();
        for _ in 0..accesses {
            let access = stream.next_access();
            hierarchy.access(&access, &mut trace);
        }
        hierarchy.flush(u64::MAX / 2, &mut trace);
        (trace, hierarchy.stats())
    }

    #[test]
    fn small_working_set_never_reaches_memory() {
        // 4 lines fit in "L1": after compulsory misses, zero traffic.
        let (trace, stats) = run_stream(5_000, 4);
        assert!(trace.read_count() <= 4, "reads: {}", trace.read_count());
        assert!(stats[0].hits > 4_900);
    }

    #[test]
    fn large_working_set_produces_memory_traffic() {
        // 16k lines = 1 MiB >> 128 KiB last level.
        let (trace, _) = run_stream(30_000, 16_384);
        assert!(trace.read_count() > 1_000, "reads: {}", trace.read_count());
        assert!(trace.write_count() > 200, "writes: {}", trace.write_count());
    }

    #[test]
    fn writebacks_coalesce_stores() {
        // With moderate cache pressure (4k-line working set over a
        // 2k-line hierarchy), stores coalesce heavily before eviction.
        let (trace, stats) = run_stream(30_000, 4_096);
        let stores_est = 30_000.0 * 0.4;
        assert!(
            (trace.write_count() as f64) < stores_est * 0.5,
            "writebacks {} should be far fewer than ~{stores_est} stores",
            trace.write_count()
        );
        // The stack as a whole absorbs most traffic: last-level misses
        // are a small fraction of total accesses.
        assert!(stats[3].miss_ratio() < 0.8, "L4 miss ratio {}", stats[3].miss_ratio());
    }

    #[test]
    fn memory_writebacks_are_sparse_like_the_paper_says() {
        // The crux: stores coalesce in the hierarchy, so an evicted line
        // has only a fraction of its bits modified relative to its last
        // eviction — the ~12% Fig. 5 reports. At our scale we just check
        // it is far below the avalanche level.
        let (trace, _) = run_stream(60_000, 16_384);
        let stats = TraceStats::compute(&trace);
        assert!(stats.compared_writes > 50, "need revisited lines");
        assert!(
            stats.dirty_bit_fraction < 0.35,
            "dirty fraction {}",
            stats.dirty_bit_fraction
        );
        assert!(stats.dirty_bit_fraction > 0.001);
    }

    #[test]
    fn flush_emits_remaining_dirty_lines() {
        let mut hierarchy = Hierarchy::new(&HierarchyConfig::scaled_paper(), 2);
        let mut trace = Trace::default();
        hierarchy.access(
            &MemAccess {
                addr: 0,
                kind: AccessKind::Store,
                store_bytes: vec![1, 2, 3],
                instr: 10,
            },
            &mut trace,
        );
        assert_eq!(trace.write_count(), 0, "store is cached");
        hierarchy.flush(99, &mut trace);
        assert_eq!(trace.write_count(), 1);
        let wb = trace.writes().next().unwrap();
        assert_eq!(wb.core, 2);
        assert_eq!(&wb.data.unwrap()[..3], &[1, 2, 3]);
    }

    #[test]
    fn trace_events_carry_core_and_instr() {
        let (trace, _) = run_stream(10_000, 16_384);
        for e in trace.events() {
            assert_eq!(e.core, 0);
            match e.op {
                Op::Write => assert!(e.data.is_some()),
                Op::Read => assert!(e.data.is_none()),
            }
        }
    }
}

//! The memory-controller secret key.

/// The 128-bit secret key held inside the memory controller.
///
/// The paper assumes "the key is well protected" (§2.4): it never leaves the
/// processor package, so the plaintext line counters stored in the PCM DIMM
/// are useless to an attacker. The `Debug` implementation redacts the key
/// bytes so accidental logging cannot leak it.
///
/// # Examples
///
/// ```
/// use deuce_crypto::SecretKey;
///
/// let key = SecretKey::from_bytes([0x5a; 16]);
/// assert_eq!(format!("{key:?}"), "SecretKey(<redacted>)");
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct SecretKey {
    bytes: [u8; 16],
}

impl SecretKey {
    /// Creates a key from raw bytes.
    #[must_use]
    pub fn from_bytes(bytes: [u8; 16]) -> Self {
        Self { bytes }
    }

    /// Derives a deterministic test key from a seed (for simulations).
    ///
    /// Expands the seed by encrypting it under a fixed key, so distinct
    /// seeds give well-mixed distinct keys.
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        let fixed = deuce_aes::Aes128::new(&[0x9e; 16]);
        let mut block = [0u8; 16];
        block[..8].copy_from_slice(&seed.to_le_bytes());
        Self {
            bytes: fixed.encrypt_block(&block),
        }
    }

    /// Exposes the raw key bytes (needed to key the AES engine).
    #[must_use]
    pub fn as_bytes(&self) -> &[u8; 16] {
        &self.bytes
    }
}

impl From<[u8; 16]> for SecretKey {
    fn from(bytes: [u8; 16]) -> Self {
        Self::from_bytes(bytes)
    }
}

impl core::fmt::Debug for SecretKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str("SecretKey(<redacted>)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn debug_redacts() {
        let key = SecretKey::from_bytes([0xaa; 16]);
        assert!(!format!("{key:?}").contains("aa"));
    }

    #[test]
    fn seeded_keys_differ() {
        assert_ne!(SecretKey::from_seed(0), SecretKey::from_seed(1));
        assert_eq!(SecretKey::from_seed(7), SecretKey::from_seed(7));
    }

    #[test]
    fn from_array_conversion() {
        let key: SecretKey = [1u8; 16].into();
        assert_eq!(key.as_bytes(), &[1u8; 16]);
    }
}

//! Error-Correcting Pointers (ECP) and the endurance-failure model.
//!
//! PCM cells fail permanently (stuck-at) after their write endurance is
//! exhausted; the paper's reference \[4\] (Schechter et al., "Use ECP, not
//! ECC...") provisions each line with `n` correction entries — a pointer
//! to a dead cell plus a replacement bit — so a line survives its first
//! `n` cell deaths. This module models per-cell endurance variation and
//! computes how ECP stretches lifetime under a given per-cell write-rate
//! profile, composing with the wear statistics the simulator collects.

/// Lognormal-ish per-cell endurance variation, deterministic per cell
/// (so results are reproducible without storing a sample per cell).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailureModel {
    /// Mean cell endurance in writes (10^8 is typical of PCM).
    pub mean_endurance: f64,
    /// Coefficient of variation of endurance across cells (~0.2 in
    /// measured devices).
    pub cv: f64,
    /// Seed decorrelating different devices.
    pub seed: u64,
}

impl FailureModel {
    /// Typical PCM parameters.
    pub const PAPER: Self = Self {
        mean_endurance: 1e8,
        cv: 0.2,
        seed: 0,
    };

    /// Endurance (writes-to-failure) of one cell, deterministic in
    /// `(seed, cell)`.
    #[must_use]
    pub fn endurance_of(&self, cell: u64) -> f64 {
        // Deterministic standard normal via Box–Muller over two mixed
        // uniforms.
        let u1 = mix_to_unit(self.seed ^ cell.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let u2 = mix_to_unit(self.seed ^ cell.wrapping_mul(0xc2b2_ae3d_27d4_eb4f).wrapping_add(1));
        let z = (-2.0 * u1.max(1e-12).ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        (self.mean_endurance * (1.0 + self.cv * z)).max(self.mean_endurance * 0.01)
    }
}

impl Default for FailureModel {
    fn default() -> Self {
        Self::PAPER
    }
}

fn mix_to_unit(mut z: u64) -> f64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// Time (in line writes) until a line with the given per-cell write
/// rates dies, surviving its first `ecp_entries` cell failures.
///
/// `rates[i]` is the average writes cell `i` receives per line write
/// (the per-position profile the simulator measures, e.g. 0.5 for every
/// cell under counter-mode encryption). A cell with rate `r` fails
/// after `endurance / r` line writes; with ECP-n, the line dies at the
/// `(n+1)`-th cell failure.
///
/// # Panics
///
/// Panics if `rates` is empty or `ecp_entries >= rates.len()`.
#[must_use]
pub fn line_lifetime_writes(rates: &[f64], model: &FailureModel, ecp_entries: usize) -> f64 {
    assert!(!rates.is_empty(), "need at least one cell");
    assert!(
        ecp_entries < rates.len(),
        "cannot correct every cell in the line"
    );
    let mut failure_times: Vec<f64> = rates
        .iter()
        .enumerate()
        .map(|(cell, &rate)| {
            if rate <= 0.0 {
                f64::INFINITY
            } else {
                model.endurance_of(cell as u64) / rate
            }
        })
        .collect();
    failure_times.sort_by(f64::total_cmp);
    failure_times[ecp_entries]
}

/// Storage cost of ECP-n for a 512-bit line: n × (pointer + replacement
/// bit) + 1 full bit, per \[4\] (9-bit pointers for 512 cells).
#[must_use]
pub fn ecp_storage_bits(entries: usize, line_bits: u32) -> u32 {
    let pointer_bits = 32 - (line_bits - 1).leading_zeros();
    entries as u32 * (pointer_bits + 1) + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endurance_distribution_is_sane() {
        let model = FailureModel::PAPER;
        let samples: Vec<f64> = (0..4000).map(|c| model.endurance_of(c)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean / 1e8 - 1.0).abs() < 0.02, "mean {mean}");
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / samples.len() as f64;
        let cv = var.sqrt() / mean;
        assert!((cv - 0.2).abs() < 0.03, "cv {cv}");
        // Deterministic.
        assert_eq!(model.endurance_of(7), model.endurance_of(7));
    }

    #[test]
    fn ecp_extends_lifetime() {
        let model = FailureModel::PAPER;
        let rates = vec![0.5f64; 512]; // encrypted memory: uniform 50%
        let bare = line_lifetime_writes(&rates, &model, 0);
        let ecp6 = line_lifetime_writes(&rates, &model, 6);
        assert!(ecp6 > bare * 1.1, "ECP-6 {ecp6} vs bare {bare}");
    }

    #[test]
    fn skew_beyond_ecp_capacity_kills_lines_early() {
        // ECP-6 absorbs up to 6 early deaths; a footprint with *10* hot
        // cells (a DEUCE hot word + neighbors without HWL) dies at hot-
        // cell pace, while uniform wear at the same peak rate lives on.
        let model = FailureModel::PAPER;
        let uniform = vec![0.25f64; 512];
        let mut skewed = vec![0.01f64; 512];
        for r in skewed.iter_mut().take(10) {
            *r = 0.9;
        }
        let lt_uniform = line_lifetime_writes(&uniform, &model, 6);
        let lt_skewed = line_lifetime_writes(&skewed, &model, 6);
        assert!(lt_uniform > lt_skewed * 1.5, "{lt_uniform} vs {lt_skewed}");
    }

    #[test]
    fn ecp_absorbs_isolated_hot_cells() {
        // ECP's signature win: a few outlier cells die early, the
        // pointers absorb them, and lifetime is set by the healthy bulk.
        let model = FailureModel::PAPER;
        let mut rates = vec![0.1f64; 512];
        for r in rates.iter_mut().take(4) {
            *r = 0.9;
        }
        let bare = line_lifetime_writes(&rates, &model, 0);
        let ecp6 = line_lifetime_writes(&rates, &model, 6);
        assert!(
            ecp6 > bare * 5.0,
            "ECP should ride out the 4 hot cells: {ecp6} vs {bare}"
        );
    }

    #[test]
    fn unwritten_cells_never_fail() {
        let model = FailureModel::PAPER;
        let rates = vec![0.0f64; 16];
        assert!(line_lifetime_writes(&rates, &model, 0).is_infinite());
    }

    #[test]
    fn storage_accounting_matches_ecp_paper() {
        // ECP-6 on a 512-bit line: 6 x (9 + 1) + 1 = 61 bits (~12%).
        assert_eq!(ecp_storage_bits(6, 512), 61);
        assert_eq!(ecp_storage_bits(1, 512), 11);
        // 544 cells (with DEUCE metadata in the ring) need 10-bit pointers.
        assert_eq!(ecp_storage_bits(6, 544), 67);
    }

    #[test]
    #[should_panic(expected = "cannot correct")]
    fn over_provisioned_ecp_rejected() {
        let _ = line_lifetime_writes(&[0.5; 4], &FailureModel::PAPER, 4);
    }
}

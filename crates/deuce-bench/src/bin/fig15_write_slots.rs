//! Figure 15: average write slots consumed per write request.
//!
//! Paper: encrypted memory ~4 slots, encrypted+FNW barely better
//! (fragmentation), DEUCE 2.64, unencrypted 1.92 — DEUCE bridges
//! two-thirds of the gap.

use deuce_bench::{mean, per_benchmark, run_scheme, tsv_header, tsv_row, ExperimentArgs};
use deuce_schemes::{SchemeConfig, SchemeKind};

fn main() {
    let args = ExperimentArgs::parse();
    let schemes = [
        SchemeKind::EncryptedDcw,
        SchemeKind::EncryptedFnw,
        SchemeKind::Deuce,
        SchemeKind::UnencryptedDcw,
    ];

    let rows = per_benchmark(&args.benchmarks, |benchmark| {
        let trace = args.trace(benchmark);
        schemes.map(|kind| run_scheme(SchemeConfig::new(kind), &trace).avg_slots_per_write())
    });

    tsv_header(&["benchmark", "Encrypted", "Encr-FNW", "DEUCE", "Unencrypted"]);
    let mut columns = vec![Vec::new(); schemes.len()];
    for (benchmark, slots) in &rows {
        let mut cells = vec![benchmark.name().to_string()];
        for (i, s) in slots.iter().enumerate() {
            columns[i].push(*s);
            cells.push(format!("{s:.2}"));
        }
        tsv_row(&cells);
    }
    let mut avg = vec!["AVERAGE".to_string()];
    for column in &columns {
        avg.push(format!("{:.2}", mean(column)));
    }
    tsv_row(&avg);
}

//! End-to-end tests of the compiled `deuce` binary.

use std::process::Command;

fn deuce() -> Command {
    Command::new(env!("CARGO_BIN_EXE_deuce"))
}

#[test]
fn help_prints_usage() {
    let output = deuce().arg("help").output().expect("binary runs");
    assert!(output.status.success());
    let text = String::from_utf8(output.stdout).unwrap();
    assert!(text.contains("USAGE"));
    assert!(text.contains("deuce run"));
}

#[test]
fn no_args_prints_usage_and_succeeds() {
    let output = deuce().output().expect("binary runs");
    assert!(output.status.success());
    assert!(String::from_utf8(output.stdout).unwrap().contains("USAGE"));
}

#[test]
fn bad_flag_fails_with_message() {
    let output = deuce().args(["run", "--bogus"]).output().expect("binary runs");
    assert!(!output.status.success());
    let err = String::from_utf8(output.stderr).unwrap();
    assert!(err.contains("bogus"));
}

#[test]
fn full_pipeline_through_the_binary() {
    let dir = std::env::temp_dir().join("deuce-bin-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("pipeline.trace");
    let trace_str = trace.to_str().unwrap();

    let output = deuce()
        .args([
            "gen", "--benchmark", "libq", "--writes", "400", "--lines", "32", "-o", trace_str,
        ])
        .output()
        .expect("gen runs");
    assert!(output.status.success(), "{:?}", output);

    let output = deuce().args(["stats", trace_str]).output().expect("stats runs");
    assert!(output.status.success());
    assert!(String::from_utf8(output.stdout).unwrap().contains("writes\t400"));

    let output = deuce()
        .args(["run", "--trace", trace_str, "--scheme", "deuce"])
        .output()
        .expect("run runs");
    assert!(output.status.success());
    let text = String::from_utf8(output.stdout).unwrap();
    assert!(text.contains("scheme\tDEUCE"), "{text}");

    let output = deuce()
        .args(["sweep", "--trace", trace_str])
        .output()
        .expect("sweep runs");
    assert!(output.status.success());
    assert_eq!(String::from_utf8(output.stdout).unwrap().lines().count(), 17);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn telemetry_run_and_report_through_the_binary() {
    let dir = std::env::temp_dir().join("deuce-bin-telemetry-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let jsonl = dir.join("run.jsonl");
    let jsonl_str = jsonl.to_str().unwrap();

    let output = deuce()
        .args([
            "run",
            "--benchmark",
            "libq",
            "--writes",
            "500",
            "--lines",
            "32",
            "--scheme",
            "deuce",
            "--telemetry",
            jsonl_str,
            "--sample-every",
            "64",
        ])
        .output()
        .expect("run runs");
    assert!(output.status.success(), "{output:?}");
    assert!(String::from_utf8(output.stdout).unwrap().contains("telemetry\t"));
    assert!(jsonl.exists());
    assert!(dir.join("run.csv").exists());

    let output = deuce().args(["report", jsonl_str]).output().expect("report runs");
    assert!(output.status.success(), "{output:?}");
    let text = String::from_utf8(output.stdout).unwrap();
    assert!(text.contains("== run DEUCE"), "{text}");
    assert!(text.contains("flips/write histogram:"));
    assert!(text.contains("time series (one row per 64 writes"));

    std::fs::remove_dir_all(&dir).ok();
}

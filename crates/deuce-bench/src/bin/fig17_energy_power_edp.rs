//! Figure 17: speedup, memory energy, memory power, and energy-delay
//! product, normalized to the encrypted-memory baseline.
//!
//! Paper: FNW energy −11% / EDP −4%; DEUCE energy −43%, power −28%,
//! EDP −43%; unencrypted FNW EDP −56%.

use deuce_bench::{geomean, per_benchmark, run_scheme, tsv_header, tsv_row, ExperimentArgs};
use deuce_schemes::{SchemeConfig, SchemeKind};

fn main() {
    let mut args = ExperimentArgs::parse();
    if args.cores == 1 {
        args.cores = 8;
    }
    let schemes = [
        SchemeKind::EncryptedFnw,
        SchemeKind::Deuce,
        SchemeKind::UnencryptedFnw,
    ];

    // Fraction of total system energy the memory consumes at the
    // encrypted baseline. The paper's "EDP" is a *system* energy-delay
    // product; it does not state the CPU's power, so we model the rest
    // of the system as a constant-power consumer sized so memory is 30%
    // of baseline system energy (typical for a PCM main memory).
    const MEMORY_ENERGY_SHARE: f64 = 0.30;

    // Per benchmark: [speedup, energy, power, mem-EDP, system-EDP] per scheme.
    let rows = per_benchmark(&args.benchmarks, |benchmark| {
        let trace = args.trace(benchmark);
        let baseline = run_scheme(SchemeConfig::new(SchemeKind::EncryptedDcw), &trace);
        let cpu_mw =
            baseline.power_mw() * (1.0 - MEMORY_ENERGY_SHARE) / MEMORY_ENERGY_SHARE;
        let system_edp = |r: &deuce_sim::SimResult| {
            (r.energy_pj() + cpu_mw * r.exec_time_ns) * r.exec_time_ns
        };
        let baseline_system_edp = system_edp(&baseline);
        schemes.map(|kind| {
            let r = run_scheme(SchemeConfig::new(kind), &trace);
            [
                r.speedup_over(&baseline),
                r.energy_pj() / baseline.energy_pj(),
                r.power_mw() / baseline.power_mw(),
                r.edp() / baseline.edp(),
                system_edp(&r) / baseline_system_edp,
            ]
        })
    });

    tsv_header(&["scheme", "metric", "geomean_vs_encrypted"]);
    for (metric_idx, metric) in ["speedup", "energy", "power", "mem-EDP", "system-EDP"]
        .iter()
        .enumerate()
    {
        for (scheme_idx, kind) in schemes.iter().enumerate() {
            let values: Vec<f64> = rows
                .iter()
                .map(|(_, per_scheme)| per_scheme[scheme_idx][metric_idx])
                .collect();
            tsv_row(&[
                kind.label().to_string(),
                (*metric).to_string(),
                format!("{:.2}", geomean(&values)),
            ]);
        }
    }

    println!();
    println!("# per-benchmark system-EDP ratios");
    tsv_header(&["benchmark", "Encr-FNW", "DEUCE", "NoEncr-FNW"]);
    for (benchmark, per_scheme) in &rows {
        tsv_row(&[
            benchmark.name().to_string(),
            format!("{:.2}", per_scheme[0][4]),
            format!("{:.2}", per_scheme[1][4]),
            format!("{:.2}", per_scheme[2][4]),
        ]);
    }
}

//! Quickstart: how much does encrypting PCM cost in bit flips, and how
//! much of that does DEUCE win back?
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use deuce::schemes::SchemeKind;
use deuce::sim::{SimConfig, Simulator};
use deuce::trace::{Benchmark, TraceConfig};

fn main() {
    // A libquantum-like workload: sparse writes that keep hitting the
    // same few words of each line — the common case for writebacks.
    let trace = TraceConfig::new(Benchmark::Libquantum)
        .lines(128)
        .writes(10_000)
        .seed(1)
        .generate();

    println!("scheme            flips/write   % of line   write slots");
    println!("---------------------------------------------------------");
    for kind in [
        SchemeKind::UnencryptedDcw,
        SchemeKind::EncryptedDcw,
        SchemeKind::EncryptedFnw,
        SchemeKind::Deuce,
        SchemeKind::DynDeuce,
    ] {
        let result = Simulator::new(SimConfig::new(kind)).run_trace(&trace);
        println!(
            "{:<17} {:>9.1} {:>11.1}% {:>11.2}",
            kind.label(),
            result.avg_flips_per_write(),
            result.flip_rate() * 100.0,
            result.avg_slots_per_write(),
        );
    }

    println!();
    println!("Counter-mode encryption makes every write flip ~50% of the");
    println!("line (the avalanche effect); DEUCE re-encrypts only the");
    println!("words that changed since the epoch began, recovering most");
    println!("of the unencrypted write efficiency while staying secure.");
}

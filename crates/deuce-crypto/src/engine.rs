//! The OTP generation engine (the "AES engine" box in Figs. 2–4).

use deuce_aes::Aes128;

use crate::pad::{BlockPad, Pad};
use crate::{SecretKey, LINE_BYTES};

/// A line address in the PCM address space.
///
/// Feeding the address into pad generation gives every line its own key
/// stream (Fig. 2b), defeating dictionary attacks across lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(u64);

impl LineAddr {
    /// Creates a line address.
    #[must_use]
    pub fn new(addr: u64) -> Self {
        Self(addr)
    }

    /// The raw address value.
    #[must_use]
    pub fn value(self) -> u64 {
        self.0
    }
}

impl From<u64> for LineAddr {
    fn from(addr: u64) -> Self {
        Self(addr)
    }
}

impl core::fmt::Display for LineAddr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// Domain-separation tags for pad inputs, guaranteeing that line-granularity
/// pads and BLE block pads can never collide even for equal counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PadDomain {
    Line = 0,
    Block = 1,
}

/// Generates one-time pads from `(key, line address, counter)` via AES-128,
/// as in counter-mode encryption (§2.3–2.4 of the paper).
///
/// A 64-byte line pad is the concatenation of four AES blocks, each over a
/// distinct input `(address, counter, sub-block index, domain tag)`; pad
/// uniqueness therefore reduces to uniqueness of `(address, counter)`
/// pairs, which the line counter guarantees.
///
/// # Examples
///
/// ```
/// use deuce_crypto::{LineAddr, OtpEngine, SecretKey};
///
/// let engine = OtpEngine::new(&SecretKey::from_seed(1));
/// let pad_a = engine.line_pad(LineAddr::new(1), 5);
/// let pad_b = engine.line_pad(LineAddr::new(2), 5);
/// assert_ne!(pad_a, pad_b); // distinct lines, distinct pads
/// ```
#[derive(Debug, Clone)]
pub struct OtpEngine {
    cipher: Aes128,
}

impl OtpEngine {
    /// Creates an engine keyed with the controller's secret key.
    #[must_use]
    pub fn new(key: &SecretKey) -> Self {
        Self {
            cipher: Aes128::new(key.as_bytes()),
        }
    }

    fn pad_block(&self, addr: LineAddr, counter: u64, sub_block: u8, domain: PadDomain) -> [u8; 16] {
        let mut input = [0u8; 16];
        input[..8].copy_from_slice(&addr.value().to_le_bytes());
        // 48-bit counter field (LineCounter enforces width <= 48).
        input[8..14].copy_from_slice(&counter.to_le_bytes()[..6]);
        input[14] = sub_block;
        input[15] = domain as u8;
        self.cipher.encrypt_block(&input)
    }

    /// Generates the 512-bit pad for a whole line at a given counter value.
    #[must_use]
    pub fn line_pad(&self, addr: LineAddr, counter: u64) -> Pad {
        let mut bytes = [0u8; LINE_BYTES];
        for sub in 0..4u8 {
            let block = self.pad_block(addr, counter, sub, PadDomain::Line);
            bytes[usize::from(sub) * 16..usize::from(sub) * 16 + 16].copy_from_slice(&block);
        }
        Pad::from_bytes(bytes)
    }

    /// Generates the 128-bit pad for one 16-byte AES block of a line
    /// (Block-Level Encryption, §7.1), at that block's own counter value.
    ///
    /// # Panics
    ///
    /// Panics if `block_index >= 4`.
    #[must_use]
    pub fn block_pad(&self, addr: LineAddr, block_index: usize, counter: u64) -> BlockPad {
        assert!(block_index < 4, "block index {block_index} out of range 0..4");
        BlockPad::from_bytes(self.pad_block(
            addr,
            counter,
            u8::try_from(block_index).expect("checked above"),
            PadDomain::Block,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> OtpEngine {
        OtpEngine::new(&SecretKey::from_seed(42))
    }

    #[test]
    fn pads_are_deterministic() {
        let e = engine();
        let a = e.line_pad(LineAddr::new(3), 9);
        let b = e.line_pad(LineAddr::new(3), 9);
        assert_eq!(a, b);
    }

    #[test]
    fn pads_differ_across_counters() {
        let e = engine();
        assert_ne!(e.line_pad(LineAddr::new(3), 9), e.line_pad(LineAddr::new(3), 10));
    }

    #[test]
    fn pads_differ_across_lines() {
        let e = engine();
        assert_ne!(e.line_pad(LineAddr::new(3), 9), e.line_pad(LineAddr::new(4), 9));
    }

    #[test]
    fn pads_differ_across_keys() {
        let a = OtpEngine::new(&SecretKey::from_seed(1));
        let b = OtpEngine::new(&SecretKey::from_seed(2));
        assert_ne!(a.line_pad(LineAddr::new(3), 9), b.line_pad(LineAddr::new(3), 9));
    }

    #[test]
    fn line_and_block_domains_are_separated() {
        let e = engine();
        let line = e.line_pad(LineAddr::new(7), 5);
        for block in 0..4 {
            let block_pad = e.block_pad(LineAddr::new(7), block, 5);
            assert_ne!(
                &line.as_bytes()[block * 16..block * 16 + 16],
                block_pad.as_bytes().as_slice(),
                "block {block} pad collided with line pad slice"
            );
        }
    }

    #[test]
    fn sub_blocks_of_a_line_pad_differ() {
        let e = engine();
        let pad = e.line_pad(LineAddr::new(1), 1);
        let b = pad.as_bytes();
        assert_ne!(&b[0..16], &b[16..32]);
        assert_ne!(&b[16..32], &b[32..48]);
        assert_ne!(&b[32..48], &b[48..64]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn block_index_bound() {
        let _ = engine().block_pad(LineAddr::new(0), 4, 0);
    }

    #[test]
    fn pad_bits_look_balanced() {
        // Across many pads, the ones-density should be ~50% — this is what
        // makes naive re-encryption flip half the bits of the line.
        let e = engine();
        let mut ones = 0u64;
        let mut total = 0u64;
        for ctr in 0..256u64 {
            let pad = e.line_pad(LineAddr::new(0xdead), ctr);
            ones += pad.as_bytes().iter().map(|b| u64::from(b.count_ones())).sum::<u64>();
            total += 512;
        }
        let density = ones as f64 / total as f64;
        assert!((density - 0.5).abs() < 0.01, "pad density {density}");
    }
}

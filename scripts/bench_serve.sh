#!/usr/bin/env bash
# Serve-layer saturation benchmark: requests/sec vs worker shard count.
#
# Runs the same fixed multi-tenant workload (tenants x writes-per-tenant
# libquantum-profile streams, each tenant its own key domain) through
# the deuce-serve front end at each shard count. Every run verifies its
# per-tenant memory fingerprints against a single-threaded replay
# inside the binary (replay_match), and this script additionally
# asserts the fingerprint set is identical across ALL shard counts —
# the throughput curve only gets recorded if the results never moved.
# Writes BENCH_serve.json.
#
#   bash scripts/bench_serve.sh [tenants] [writes] [shard_counts...]
#   # defaults: 4 tenants, 20000 writes per tenant, shards 1 2 4 8
set -euo pipefail
cd "$(dirname "$0")/.."

TENANTS="${1:-4}"
WRITES="${2:-20000}"
shift $(( $# > 2 ? 2 : $# )) || true
SHARD_COUNTS=("${@:-}")
if [ -z "${SHARD_COUNTS[0]:-}" ]; then
    SHARD_COUNTS=(1 2 4 8)
fi

echo "==> cargo build --release --offline --example serve_bench"
cargo build --release --offline --example serve_bench
BIN=target/release/examples/serve_bench

field() { sed -n "s/.*\"$2\":\"\{0,1\}\([0-9a-fx.-]*\)\"\{0,1\}[,}].*/\1/p" <<<"$1"; }

RUNS=""
BASE_FPS=""
BASE_RPS=""
BEST_RPS=""
BEST_SHARDS=""
for shards in "${SHARD_COUNTS[@]}"; do
    echo "==> $shards shard(s): $TENANTS tenants x $WRITES writes"
    RUN="$("$BIN" "$shards" "$TENANTS" "$WRITES")"
    echo "$RUN"
    if [ "$(field "$RUN" replay_match)" != "1" ]; then
        echo "DETERMINISM FAILURE: replay mismatch at $shards shards" >&2
        exit 1
    fi
    FPS="$(field "$RUN" fingerprints)"
    if [ -z "$BASE_FPS" ]; then
        BASE_FPS="$FPS"
        BASE_RPS="$(field "$RUN" requests_per_sec)"
    elif [ "$FPS" != "$BASE_FPS" ]; then
        echo "DETERMINISM FAILURE: fingerprints moved between shard counts" >&2
        echo "  at 1st count: $BASE_FPS" >&2
        echo "  at $shards shards: $FPS" >&2
        exit 1
    fi
    RPS="$(field "$RUN" requests_per_sec)"
    if [ -z "$BEST_RPS" ] || awk -v a="$RPS" -v b="$BEST_RPS" 'BEGIN{exit !(a>b)}'; then
        BEST_RPS="$RPS"
        BEST_SHARDS="$shards"
    fi
    RUNS="${RUNS:+$RUNS,
    }$RUN"
done
echo "==> determinism OK (per-tenant fingerprints identical at every shard count)"

SPEEDUP="$(awk -v a="$BEST_RPS" -v b="$BASE_RPS" 'BEGIN{printf "%.2f", a/b}')"

DATE="$(date +%F)"
cat > BENCH_serve.json <<EOF
{
  "description": "Saturation curve of the deuce-serve sharded multi-tenant front end: $TENANTS tenants, each a libquantum-profile request stream of $WRITES writes (plus interleaved reads) in its own key domain, submitted by one thread per tenant in batches of 32 with QueueFull retry, at shard counts ${SHARD_COUNTS[*]}. Every run verified its per-tenant memory fingerprints bit-identical to a single-threaded replay (replay_match), and the fingerprint set was verified identical across all shard counts by scripts/bench_serve.sh before this file was written — the curve only records runs whose results were provably shard-count-invariant.",
  "date": "$DATE",
  "tenants": $TENANTS,
  "writes_per_tenant": $WRITES,
  "shard_counts": [$(IFS=,; echo "${SHARD_COUNTS[*]}")],
  "runs": [
    $RUNS
  ],
  "summary": {
    "requests_per_sec_serve": $BEST_RPS,
    "best_shard_count": $BEST_SHARDS,
    "serve_parallel_speedup": $SPEEDUP,
    "note": "requests_per_sec_serve is the best throughput across the swept shard counts; serve_parallel_speedup is that best divided by the single-shard throughput of the same workload. Per-tenant results are bit-identical at every point on the curve."
  }
}
EOF
echo "==> wrote BENCH_serve.json (best ${BEST_RPS} req/s at ${BEST_SHARDS} shards, ${SPEEDUP}x over 1 shard)"

//! Per-block counters for Block-Level Encryption (BLE, §7.1).

/// Bytes per AES block (the minimum AES granularity the paper cites when
/// motivating word-level DEUCE over block-level BLE).
pub const BLOCK_BYTES: usize = 16;

/// AES blocks per 64-byte line.
pub const BLOCKS_PER_LINE: usize = crate::LINE_BYTES / BLOCK_BYTES;

/// The four per-block write counters a BLE line carries.
///
/// BLE re-encrypts only the 16-byte blocks whose plaintext changed,
/// incrementing just those blocks' counters — the remaining blocks keep
/// their stored ciphertext. DEUCE is orthogonal and can run *inside* each
/// block (BLE+DEUCE, Fig. 18).
///
/// # Examples
///
/// ```
/// use deuce_crypto::BlockCounters;
///
/// let mut counters = BlockCounters::new(28);
/// counters.increment(2);
/// assert_eq!(counters.value(2), 1);
/// assert_eq!(counters.value(0), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockCounters {
    values: [u64; BLOCKS_PER_LINE],
    width_bits: u32,
}

impl BlockCounters {
    /// Creates zeroed block counters of the given width.
    ///
    /// # Panics
    ///
    /// Panics if `width_bits` is 0 or greater than 48.
    #[must_use]
    pub fn new(width_bits: u32) -> Self {
        assert!(
            (1..=48).contains(&width_bits),
            "counter width {width_bits} out of range 1..=48"
        );
        Self {
            values: [0; BLOCKS_PER_LINE],
            width_bits,
        }
    }

    /// Reconstructs block counters from raw per-block values (used by
    /// arena-backed line stores that keep the values inline and the width
    /// in the shared scheme parameters).
    ///
    /// # Panics
    ///
    /// Panics if `width_bits` is 0 or greater than 48, or any value
    /// doesn't fit in `width_bits`.
    #[must_use]
    pub fn from_values(values: [u64; BLOCKS_PER_LINE], width_bits: u32) -> Self {
        assert!(
            (1..=48).contains(&width_bits),
            "counter width {width_bits} out of range 1..=48"
        );
        let mask = (1u64 << width_bits) - 1;
        assert!(
            values.iter().all(|&v| v <= mask),
            "counter value exceeds {width_bits}-bit width"
        );
        Self { values, width_bits }
    }

    /// Counter value for a block.
    ///
    /// # Panics
    ///
    /// Panics if `block >= BLOCKS_PER_LINE`.
    #[must_use]
    pub fn value(&self, block: usize) -> u64 {
        self.values[block]
    }

    /// Increments the counter of one block, returning `true` on wrap.
    ///
    /// # Panics
    ///
    /// Panics if `block >= BLOCKS_PER_LINE`.
    pub fn increment(&mut self, block: usize) -> bool {
        let mask = (1u64 << self.width_bits) - 1;
        self.values[block] = (self.values[block] + 1) & mask;
        self.values[block] == 0
    }

    /// Total storage bits for the per-block counters.
    #[must_use]
    pub fn storage_bits(&self) -> u32 {
        self.width_bits * BLOCKS_PER_LINE as u32
    }

    /// Iterates over the counter values in block order.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.values.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_are_independent() {
        let mut c = BlockCounters::new(28);
        c.increment(1);
        c.increment(1);
        c.increment(3);
        assert_eq!(c.value(0), 0);
        assert_eq!(c.value(1), 2);
        assert_eq!(c.value(2), 0);
        assert_eq!(c.value(3), 1);
    }

    #[test]
    fn storage_is_four_counters() {
        assert_eq!(BlockCounters::new(28).storage_bits(), 112);
    }

    #[test]
    fn iter_yields_in_order() {
        let mut c = BlockCounters::new(8);
        c.increment(0);
        c.increment(2);
        assert_eq!(c.iter().collect::<Vec<_>>(), vec![1, 0, 1, 0]);
    }

    #[test]
    #[should_panic]
    fn out_of_range_block_panics() {
        let c = BlockCounters::new(8);
        let _ = c.value(4);
    }

    #[test]
    fn wrap_reports() {
        let mut c = BlockCounters::new(1);
        assert!(!c.increment(0));
        assert!(c.increment(0));
        assert_eq!(c.value(0), 0);
    }
}

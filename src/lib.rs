//! # DEUCE: Write-Efficient Encryption for Non-Volatile Memories
//!
//! A complete, from-scratch Rust reproduction of the system described in
//! *Young, Nair, Qureshi — "DEUCE: Write-Efficient Encryption for
//! Non-Volatile Memories", ASPLOS 2015*.
//!
//! Phase Change Memory (PCM) retains data after power-off, so PCM DIMMs must
//! be encrypted to resist stolen-DIMM and bus-snooping attacks. Counter-mode
//! encryption, however, flips ~50% of the bits in a cache line on every
//! write (the avalanche effect), even though a typical writeback modifies
//! only ~12% of the bits. DEUCE re-encrypts only the 16-bit words that have
//! changed since the start of a periodic *epoch*, using two virtual counters
//! (leading/trailing) derived from the single per-line write counter. This
//! cuts bit flips per write from 50% to ~24%, and combined with Horizontal
//! Wear Leveling doubles the memory's lifetime.
//!
//! This crate is a facade that re-exports the subsystem crates:
//!
//! - [`aes`] — FIPS-197 AES block cipher (the OTP generator).
//! - [`crypto`] — counter-mode one-time-pad engine and per-line counters.
//! - [`nvm`] — bit-level PCM device model: cells, banks, write slots,
//!   energy and endurance.
//! - [`schemes`] — the encryption/write-reduction schemes: DCW, FNW,
//!   counter-mode encryption, BLE, DEUCE, DynDEUCE and their combinations.
//! - [`wear`] — Start-Gap vertical wear leveling and Horizontal Wear
//!   Leveling (HWL).
//! - [`trace`] — synthetic SPEC2006-calibrated writeback trace generators.
//! - [`sim`] — the trace-driven system simulator and metrics.
//! - [`integrity`] — Merkle-tree counter authentication and line MACs
//!   against bus-tampering (pad-reuse) attacks.
//! - [`memctl`] — a byte-addressable [`memctl::SecureMemory`] facade
//!   combining encryption, write reduction, and integrity.
//! - [`cache`] — the L1–L4 write-back cache hierarchy that turns
//!   load/store streams into the writeback traffic PCM actually sees.
//! - [`telemetry`] — zero-dependency structured instrumentation:
//!   recorders, streaming histograms, time series, and JSONL/CSV export
//!   (a no-op unless a [`telemetry::TelemetryRecorder`] is attached).
//! - [`serve`] — a sharded multi-tenant request service over the
//!   simulator: isolated per-tenant key domains, bounded queues with
//!   explicit backpressure, and shard-count-invariant results.
//!
//! ## Quickstart
//!
//! Measure the bit flips per writeback of encrypted memory with and without
//! DEUCE on a libquantum-like workload:
//!
//! ```
//! use deuce::schemes::{SchemeKind, SchemeConfig};
//! use deuce::sim::{Simulator, SimConfig};
//! use deuce::trace::{Benchmark, TraceConfig};
//!
//! let trace = TraceConfig::new(Benchmark::Libquantum)
//!     .lines(256)
//!     .writes(20_000)
//!     .seed(42);
//!
//! let encrypted = Simulator::new(SimConfig::new(SchemeKind::EncryptedDcw)).run_trace(&trace.generate());
//! let deuce = Simulator::new(SimConfig::new(SchemeKind::Deuce)).run_trace(&trace.generate());
//!
//! assert!(encrypted.flip_rate() > 0.45); // avalanche: ~50% of bits flip
//! assert!(deuce.flip_rate() < 0.30);     // DEUCE: ~24%
//! ```

pub use deuce_aes as aes;
pub use deuce_cache as cache;
pub use deuce_crypto as crypto;
pub use deuce_integrity as integrity;
pub use deuce_memctl as memctl;
pub use deuce_nvm as nvm;
pub use deuce_rng as rng;
pub use deuce_schemes as schemes;
pub use deuce_serve as serve;
pub use deuce_sim as sim;
pub use deuce_telemetry as telemetry;
pub use deuce_trace as trace;
pub use deuce_wear as wear;

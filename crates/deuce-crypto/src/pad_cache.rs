//! Direct-mapped cache of generated line pads.
//!
//! A pad is a *pure function* of `(address, counter)` under a fixed
//! secret key, so a cached pad can never go stale — there is no
//! invalidation, only replacement when another `(address, counter)`
//! pair hashes to the same slot. Re-reads of a line between writes hit
//! the cache and skip the four AES invocations entirely; any write
//! bumps the line counter, which changes the key and naturally misses.

use crate::{LineBytes, Pad};

/// Hit/miss totals accumulated by a pad cache over its lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PadCacheStats {
    /// Lookups answered from the cache (pad generation skipped).
    pub hits: u64,
    /// Lookups that fell through to AES pad generation.
    pub misses: u64,
    /// Pads inserted speculatively (next-epoch precompute), before any
    /// lookup asked for them. A prefill is not a miss — the demand
    /// lookup that later finds it counts as an ordinary hit.
    pub prefills: u64,
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    addr: u64,
    counter: u64,
    pad: LineBytes,
}

/// A direct-mapped pad cache: each `(addr, counter)` pair maps to
/// exactly one slot, and a conflicting insert simply replaces the
/// previous occupant.
#[derive(Debug, Clone)]
pub(crate) struct PadCache {
    slots: Vec<Option<Slot>>,
    hits: u64,
    misses: u64,
    prefills: u64,
}

impl PadCache {
    /// Creates a cache with at least `entries` slots (rounded up to a
    /// power of two so indexing is a mask).
    pub(crate) fn new(entries: usize) -> Self {
        let capacity = entries.next_power_of_two().max(1);
        Self {
            slots: vec![None; capacity],
            hits: 0,
            misses: 0,
            prefills: 0,
        }
    }

    fn index(&self, addr: u64, counter: u64) -> usize {
        // Fibonacci-style multiplicative mix; the high half of the
        // product spreads low-entropy addresses across the slots.
        let mixed = (addr ^ counter.rotate_left(21)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (mixed >> 32) as usize & (self.slots.len() - 1)
    }

    /// Returns the cached pad for `(addr, counter)` and counts a hit,
    /// or counts a miss and returns `None`.
    pub(crate) fn lookup(&mut self, addr: u64, counter: u64) -> Option<Pad> {
        let idx = self.index(addr, counter);
        match &self.slots[idx] {
            Some(slot) if slot.addr == addr && slot.counter == counter => {
                self.hits += 1;
                Some(Pad::from_bytes(slot.pad))
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    /// Whether `(addr, counter)` is resident, without touching the
    /// hit/miss totals — the probe the speculative prefill path uses to
    /// avoid regenerating a pad that is already cached.
    pub(crate) fn contains(&self, addr: u64, counter: u64) -> bool {
        let idx = self.index(addr, counter);
        matches!(&self.slots[idx], Some(slot) if slot.addr == addr && slot.counter == counter)
    }

    /// Stores `pad` in the slot for `(addr, counter)`, replacing any
    /// previous occupant of that slot.
    pub(crate) fn insert(&mut self, addr: u64, counter: u64, pad: &Pad) {
        let idx = self.index(addr, counter);
        self.slots[idx] = Some(Slot {
            addr,
            counter,
            pad: *pad.as_bytes(),
        });
    }

    /// [`Self::insert`] for a speculatively generated pad, counted in
    /// [`PadCacheStats::prefills`] instead of the demand totals.
    pub(crate) fn insert_prefilled(&mut self, addr: u64, counter: u64, pad: &Pad) {
        self.prefills += 1;
        self.insert(addr, counter, pad);
    }

    /// Lifetime hit/miss/prefill totals.
    pub(crate) fn stats(&self) -> PadCacheStats {
        PadCacheStats {
            hits: self.hits,
            misses: self.misses,
            prefills: self.prefills,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LINE_BYTES;

    fn pad(fill: u8) -> Pad {
        Pad::from_bytes([fill; LINE_BYTES])
    }

    #[test]
    fn miss_then_hit() {
        let mut cache = PadCache::new(16);
        assert!(cache.lookup(0x40, 3).is_none());
        cache.insert(0x40, 3, &pad(0xAB));
        assert_eq!(cache.lookup(0x40, 3), Some(pad(0xAB)));
        assert_eq!(cache.stats(), PadCacheStats { hits: 1, misses: 1, prefills: 0 });
    }

    #[test]
    fn contains_probe_counts_nothing() {
        let mut cache = PadCache::new(16);
        assert!(!cache.contains(0x40, 3));
        cache.insert(0x40, 3, &pad(0xAB));
        assert!(cache.contains(0x40, 3));
        assert!(!cache.contains(0x40, 4));
        assert_eq!(cache.stats(), PadCacheStats::default(), "probes must not count");
    }

    #[test]
    fn prefilled_insert_counts_prefill_then_hits() {
        let mut cache = PadCache::new(16);
        cache.insert_prefilled(0x80, 32, &pad(0xCD));
        assert_eq!(cache.stats(), PadCacheStats { hits: 0, misses: 0, prefills: 1 });
        assert_eq!(cache.lookup(0x80, 32), Some(pad(0xCD)));
        assert_eq!(cache.stats(), PadCacheStats { hits: 1, misses: 0, prefills: 1 });
    }

    #[test]
    fn counter_bump_misses() {
        let mut cache = PadCache::new(16);
        cache.insert(0x40, 3, &pad(0xAB));
        assert!(cache.lookup(0x40, 4).is_none(), "new counter must miss");
        assert!(cache.lookup(0x41, 3).is_none(), "new address must miss");
    }

    #[test]
    fn conflicting_insert_replaces() {
        // A 1-slot cache makes every pair conflict.
        let mut cache = PadCache::new(1);
        cache.insert(1, 1, &pad(0x11));
        cache.insert(2, 2, &pad(0x22));
        assert!(cache.lookup(1, 1).is_none(), "evicted entry must miss");
        assert_eq!(cache.lookup(2, 2), Some(pad(0x22)));
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        assert_eq!(PadCache::new(0).slots.len(), 1);
        assert_eq!(PadCache::new(5).slots.len(), 8);
        assert_eq!(PadCache::new(64).slots.len(), 64);
    }
}

//! The OTP generation engine (the "AES engine" box in Figs. 2–4).
//!
//! The hot path assembles all four counter-mode inputs of a line pad
//! once — the `(address, counter, domain)` prefix is shared and only
//! the sub-block byte varies — and encrypts them in one call to the
//! batched T-table path ([`deuce_aes::Aes128::encrypt_blocks4`]). A
//! byte-oriented reference mode ([`OtpEngine::new_reference`]) drives
//! the same inputs through the FIPS-197 reference cipher serially; the
//! two modes are differentially tested to emit bit-identical pads. An
//! optional direct-mapped pad cache ([`OtpEngine::with_pad_cache`])
//! short-circuits repeated `(address, counter)` line-pad requests.

use std::sync::Mutex;
use std::time::Instant;

use deuce_aes::Aes128;

use crate::pad::{BlockPad, Pad};
use crate::pad_cache::{PadCache, PadCacheStats};
use crate::{SecretKey, LINE_BYTES};

/// A line address in the PCM address space.
///
/// Feeding the address into pad generation gives every line its own key
/// stream (Fig. 2b), defeating dictionary attacks across lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(u64);

impl LineAddr {
    /// Creates a line address.
    #[must_use]
    pub fn new(addr: u64) -> Self {
        Self(addr)
    }

    /// The raw address value.
    #[must_use]
    pub fn value(self) -> u64 {
        self.0
    }
}

impl From<u64> for LineAddr {
    fn from(addr: u64) -> Self {
        Self(addr)
    }
}

impl core::fmt::Display for LineAddr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// Domain-separation tags for pad inputs, guaranteeing that line-granularity
/// pads and BLE block pads can never collide even for equal counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PadDomain {
    Line = 0,
    Block = 1,
}

/// Generates one-time pads from `(key, line address, counter)` via AES-128,
/// as in counter-mode encryption (§2.3–2.4 of the paper).
///
/// A 64-byte line pad is the concatenation of four AES blocks, each over a
/// distinct input `(address, counter, sub-block index, domain tag)`; pad
/// uniqueness therefore reduces to uniqueness of `(address, counter)`
/// pairs, which the line counter guarantees.
///
/// # Examples
///
/// ```
/// use deuce_crypto::{LineAddr, OtpEngine, SecretKey};
///
/// let engine = OtpEngine::new(&SecretKey::from_seed(1));
/// let pad_a = engine.line_pad(LineAddr::new(1), 5);
/// let pad_b = engine.line_pad(LineAddr::new(2), 5);
/// assert_ne!(pad_a, pad_b); // distinct lines, distinct pads
/// ```
#[derive(Debug)]
pub struct OtpEngine {
    cipher: Aes128,
    /// When set, pads come from the serial byte-oriented reference
    /// cipher instead of the batched T-table path. Output is
    /// bit-identical either way; the flag exists for differential
    /// testing and benchmark baselines.
    reference: bool,
    /// Direct-mapped line-pad cache, present only when opted in via
    /// [`Self::with_pad_cache`]. A `Mutex` (never contended: each
    /// simulator owns its engine) keeps the engine `Sync` for shared
    /// `static` use.
    cache: Option<Mutex<PadCache>>,
    /// Wall-clock accounting of from-scratch pad generation, present
    /// only when opted in via [`Self::with_pad_timing`]. Cache hits are
    /// not timed — the stats measure AES work, the span tracer's
    /// `pad_generation` leaf.
    timing: Option<Mutex<PadTimingStats>>,
}

/// Wall-clock totals for from-scratch pad generation.
///
/// Nondeterministic (wall time); never feeds simulated results, only
/// span traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PadTimingStats {
    /// From-scratch generations (cache hits excluded).
    pub calls: u64,
    /// Total wall-clock nanoseconds spent generating.
    pub wall_ns: u64,
}

impl Clone for OtpEngine {
    fn clone(&self) -> Self {
        Self {
            cipher: self.cipher.clone(),
            reference: self.reference,
            cache: self
                .cache
                .as_ref()
                .map(|c| Mutex::new(c.lock().expect("pad cache lock poisoned").clone())),
            timing: self
                .timing
                .as_ref()
                .map(|t| Mutex::new(*t.lock().expect("pad timing lock poisoned"))),
        }
    }
}

impl OtpEngine {
    /// Creates an engine keyed with the controller's secret key, using
    /// the batched T-table fast path.
    #[must_use]
    pub fn new(key: &SecretKey) -> Self {
        Self {
            cipher: Aes128::new(key.as_bytes()),
            reference: false,
            cache: None,
            timing: None,
        }
    }

    /// Creates an engine that generates pads through the byte-oriented
    /// FIPS-197 reference cipher, one block at a time.
    ///
    /// Pads are bit-identical to [`Self::new`]'s; this constructor
    /// exists so differential tests and benchmarks can compare the two
    /// paths end to end.
    #[must_use]
    pub fn new_reference(key: &SecretKey) -> Self {
        Self {
            cipher: Aes128::new(key.as_bytes()),
            reference: true,
            cache: None,
            timing: None,
        }
    }

    /// Attaches a direct-mapped line-pad cache with at least `entries`
    /// slots (rounded up to a power of two).
    ///
    /// Cached pads are keyed `(address, counter)` — a pure function of
    /// the key stream — so entries never go stale and need no
    /// invalidation; conflicting pairs simply replace each other.
    /// Caching changes only *when* AES runs, never pad bytes.
    #[must_use]
    pub fn with_pad_cache(mut self, entries: usize) -> Self {
        self.cache = Some(Mutex::new(PadCache::new(entries)));
        self
    }

    /// Lifetime hit/miss totals of the pad cache, or `None` when no
    /// cache is attached.
    #[must_use]
    pub fn pad_cache_stats(&self) -> Option<PadCacheStats> {
        self.cache
            .as_ref()
            .map(|c| c.lock().expect("pad cache lock poisoned").stats())
    }

    /// Starts wall-clock timing of from-scratch line-pad generation,
    /// for span tracing. Adds one `Instant::now` pair per cache-missed
    /// [`Self::line_pad`] call; pad bytes are unaffected.
    #[must_use]
    pub fn with_pad_timing(mut self) -> Self {
        self.timing = Some(Mutex::new(PadTimingStats::default()));
        self
    }

    /// Lifetime generation-call/wall-time totals, or `None` when timing
    /// was not enabled.
    #[must_use]
    pub fn pad_timing_stats(&self) -> Option<PadTimingStats> {
        self.timing
            .as_ref()
            .map(|t| *t.lock().expect("pad timing lock poisoned"))
    }

    /// Builds the 16-byte counter-mode input shared by all sub-blocks
    /// of a pad: address, 48-bit counter, and domain tag. Byte 14 (the
    /// sub-block index) is left zero for the caller to vary.
    #[inline]
    fn pad_input(addr: LineAddr, counter: u64, domain: PadDomain) -> [u8; 16] {
        let mut input = [0u8; 16];
        input[..8].copy_from_slice(&addr.value().to_le_bytes());
        // 48-bit counter field (LineCounter enforces width <= 48).
        input[8..14].copy_from_slice(&counter.to_le_bytes()[..6]);
        input[15] = domain as u8;
        input
    }

    /// Generates a line pad from scratch (no cache involvement).
    fn generate_line_pad(&self, addr: LineAddr, counter: u64) -> Pad {
        let input = Self::pad_input(addr, counter, PadDomain::Line);
        let mut bytes = [0u8; LINE_BYTES];
        if self.reference {
            let mut block_in = input;
            for sub in 0..4u8 {
                block_in[14] = sub;
                let ct = self.cipher.encrypt_block_reference(&block_in);
                bytes[usize::from(sub) * 16..usize::from(sub) * 16 + 16].copy_from_slice(&ct);
            }
        } else {
            let mut blocks = [input; 4];
            for (sub, block) in blocks.iter_mut().enumerate() {
                block[14] = sub as u8;
            }
            let cts = self.cipher.encrypt_blocks4(&blocks);
            for (sub, ct) in cts.iter().enumerate() {
                bytes[sub * 16..sub * 16 + 16].copy_from_slice(ct);
            }
        }
        Pad::from_bytes(bytes)
    }

    /// [`Self::generate_line_pad`], timed when timing is enabled.
    fn timed_generate_line_pad(&self, addr: LineAddr, counter: u64) -> Pad {
        let Some(timing) = &self.timing else {
            return self.generate_line_pad(addr, counter);
        };
        let started = Instant::now();
        let pad = self.generate_line_pad(addr, counter);
        let elapsed = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let mut stats = timing.lock().expect("pad timing lock poisoned");
        stats.calls += 1;
        stats.wall_ns = stats.wall_ns.saturating_add(elapsed);
        pad
    }

    /// Generates the 512-bit pad for a whole line at a given counter value.
    #[must_use]
    pub fn line_pad(&self, addr: LineAddr, counter: u64) -> Pad {
        let Some(cache) = &self.cache else {
            return self.timed_generate_line_pad(addr, counter);
        };
        let mut guard = cache.lock().expect("pad cache lock poisoned");
        if let Some(pad) = guard.lookup(addr.value(), counter) {
            return pad;
        }
        let pad = self.timed_generate_line_pad(addr, counter);
        guard.insert(addr.value(), counter, &pad);
        pad
    }

    /// Generates the 128-bit pad for one 16-byte AES block of a line
    /// (Block-Level Encryption, §7.1), at that block's own counter value.
    ///
    /// # Panics
    ///
    /// Panics if `block_index >= 4`.
    #[must_use]
    pub fn block_pad(&self, addr: LineAddr, block_index: usize, counter: u64) -> BlockPad {
        assert!(block_index < 4, "block index {block_index} out of range 0..4");
        let mut input = Self::pad_input(addr, counter, PadDomain::Block);
        input[14] = u8::try_from(block_index).expect("checked above");
        let ct = if self.reference {
            self.cipher.encrypt_block_reference(&input)
        } else {
            self.cipher.encrypt_block(&input)
        };
        BlockPad::from_bytes(ct)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> OtpEngine {
        OtpEngine::new(&SecretKey::from_seed(42))
    }

    #[test]
    fn pads_are_deterministic() {
        let e = engine();
        let a = e.line_pad(LineAddr::new(3), 9);
        let b = e.line_pad(LineAddr::new(3), 9);
        assert_eq!(a, b);
    }

    #[test]
    fn pads_differ_across_counters() {
        let e = engine();
        assert_ne!(e.line_pad(LineAddr::new(3), 9), e.line_pad(LineAddr::new(3), 10));
    }

    #[test]
    fn pads_differ_across_lines() {
        let e = engine();
        assert_ne!(e.line_pad(LineAddr::new(3), 9), e.line_pad(LineAddr::new(4), 9));
    }

    #[test]
    fn pads_differ_across_keys() {
        let a = OtpEngine::new(&SecretKey::from_seed(1));
        let b = OtpEngine::new(&SecretKey::from_seed(2));
        assert_ne!(a.line_pad(LineAddr::new(3), 9), b.line_pad(LineAddr::new(3), 9));
    }

    #[test]
    fn line_and_block_domains_are_separated() {
        let e = engine();
        let line = e.line_pad(LineAddr::new(7), 5);
        for block in 0..4 {
            let block_pad = e.block_pad(LineAddr::new(7), block, 5);
            assert_ne!(
                &line.as_bytes()[block * 16..block * 16 + 16],
                block_pad.as_bytes().as_slice(),
                "block {block} pad collided with line pad slice"
            );
        }
    }

    #[test]
    fn sub_blocks_of_a_line_pad_differ() {
        let e = engine();
        let pad = e.line_pad(LineAddr::new(1), 1);
        let b = pad.as_bytes();
        assert_ne!(&b[0..16], &b[16..32]);
        assert_ne!(&b[16..32], &b[32..48]);
        assert_ne!(&b[32..48], &b[48..64]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn block_index_bound() {
        let _ = engine().block_pad(LineAddr::new(0), 4, 0);
    }

    #[test]
    fn pad_bits_look_balanced() {
        // Across many pads, the ones-density should be ~50% — this is what
        // makes naive re-encryption flip half the bits of the line.
        let e = engine();
        let mut ones = 0u64;
        let mut total = 0u64;
        for ctr in 0..256u64 {
            let pad = e.line_pad(LineAddr::new(0xdead), ctr);
            ones += pad.as_bytes().iter().map(|b| u64::from(b.count_ones())).sum::<u64>();
            total += 512;
        }
        let density = ones as f64 / total as f64;
        assert!((density - 0.5).abs() < 0.01, "pad density {density}");
    }

    #[test]
    fn cached_engine_returns_identical_pads() {
        let plain = engine();
        let cached = engine().with_pad_cache(64);
        for addr in [0u64, 0x40, 0xdead, u64::MAX] {
            for ctr in [0u64, 1, 7, (1 << 48) - 1] {
                let expected = plain.line_pad(LineAddr::new(addr), ctr);
                // Twice: once to fill the cache, once to hit it.
                assert_eq!(cached.line_pad(LineAddr::new(addr), ctr), expected);
                assert_eq!(cached.line_pad(LineAddr::new(addr), ctr), expected);
            }
        }
        let stats = cached.pad_cache_stats().expect("cache attached");
        assert_eq!(stats.hits, 16, "second round of lookups must all hit");
        assert_eq!(stats.misses, 16);
        assert_eq!(plain.pad_cache_stats(), None);
    }

    #[test]
    fn pad_timing_counts_only_generations() {
        let timed = engine().with_pad_cache(8).with_pad_timing();
        let plain = engine();
        let pad = timed.line_pad(LineAddr::new(9), 2); // miss: timed
        let again = timed.line_pad(LineAddr::new(9), 2); // hit: untimed
        assert_eq!(pad, again);
        assert_eq!(pad, plain.line_pad(LineAddr::new(9), 2), "timing never changes bytes");
        let stats = timed.pad_timing_stats().expect("timing attached");
        assert_eq!(stats.calls, 1, "cache hit must not count");
        assert_eq!(plain.pad_timing_stats(), None);
    }

    #[test]
    fn clone_carries_cache_contents() {
        let cached = engine().with_pad_cache(8);
        let pad = cached.line_pad(LineAddr::new(5), 5); // miss, fills slot
        let cloned = cached.clone();
        assert_eq!(cloned.line_pad(LineAddr::new(5), 5), pad);
        let stats = cloned.pad_cache_stats().expect("cache attached");
        assert_eq!((stats.hits, stats.misses), (1, 1), "clone starts from parent's slots");
    }
}

//! Bit-level Phase Change Memory (PCM) device model.
//!
//! PCM writes are expensive: they are slower than reads, consume
//! significant power, and wear cells out (§1 of the DEUCE paper). PCM
//! systems therefore write only the bits that actually changed — *Data
//! Comparison Write* (DCW) — and schedule writes through narrow,
//! power-limited *write slots*. This crate models those device mechanisms
//! bit-exactly:
//!
//! - [`LineImage`] / [`MetaBits`] — the exact stored state of a line (512
//!   data bits plus scheme metadata bits), with XOR/popcount flip
//!   accounting ([`FlipCount`]).
//! - [`CellArray`] — per-bit-position write counters for endurance studies
//!   (Figs. 12 and 14), with support for the rotated writes of Horizontal
//!   Wear Leveling, and optional online stuck-at fault injection
//!   ([`StuckAtFaults`]) where cells die mid-run once their sampled
//!   endurance is exhausted.
//! - [`SlotConfig`] / [`write_slots`] — the §6.1 write-throughput model:
//!   128-bit write width, 150 ns per slot, at most 64 bit flips per slot
//!   (via the device's internal Flip-N-Write), and slot fragmentation.
//! - [`TimingParams`], [`EnergyParams`] — Table 1 latencies and a per-bit
//!   write-energy model for the Fig. 17 energy/power/EDP studies.
//! - [`FailureModel`] / [`line_lifetime_writes`] — per-cell endurance
//!   variation and Error-Correcting-Pointer (ECP \[4\]) lifetime
//!   extension.
//! - [`Geometry`] — ranks/banks address mapping for the memory controller.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cells;
mod ecp;
mod energy;
mod geometry;
mod line_image;
mod slots;
mod timing;

pub use cells::{CellArray, DeadCell, StuckAtFaults, WearSummary};
pub use ecp::{ecp_storage_bits, line_lifetime_writes, FailureModel};
pub use energy::EnergyParams;
pub use geometry::{BankId, Geometry};
pub use line_image::{FlipCount, LineImage, MetaBits};
pub use slots::{region_flips, write_slots, SlotConfig};
pub use timing::TimingParams;

pub use deuce_crypto::{LineBytes, LINE_BITS, LINE_BYTES};

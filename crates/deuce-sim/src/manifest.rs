//! Sweep manifests: deterministic cell enumeration with per-cell
//! completion tracking, so one grid splits across processes (or
//! machines sharing a filesystem) and merges deterministically.
//!
//! A manifest is a JSONL file. Line 1 is a [`ManifestHeader`]
//! describing the grid — cell count, a human-readable grid string, a
//! fingerprint of the generating arguments, and the output column
//! header. Every subsequent line is one completed [`CellRecord`],
//! appended (and flushed) the moment its simulation finishes, so a
//! killed shard loses at most the cell it was working on.
//!
//! Crash safety is torn-line based: a record line is only trusted if it
//! parses completely. [`ManifestWriter::resume`] truncates a torn tail
//! before appending, and the merge step verifies full 0..cells
//! coverage, so partial lines can never masquerade as results.
//!
//! Sharding is deterministic: [`ShardSpec`] `i/n` owns cells
//! `{c : c mod n = i}`, and merged output is ordered by cell index —
//! byte-identical to an unsharded run of the same grid.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::Mutex;

use deuce_telemetry::export::json_escape;
use deuce_telemetry::parse::parse_jsonl;

/// `i/n` process sharding: which slice of the grid this process owns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// This process's shard index, `0 <= index < count`.
    pub index: u64,
    /// Total shard count.
    pub count: u64,
}

impl ShardSpec {
    /// The unsharded spec: one process owns every cell.
    pub const WHOLE: ShardSpec = ShardSpec { index: 0, count: 1 };

    /// Parses `"i/n"` (e.g. `"0/2"`).
    ///
    /// # Errors
    ///
    /// Returns a description of the problem on malformed input,
    /// `n == 0`, or `i >= n`.
    pub fn parse(text: &str) -> Result<Self, String> {
        let (i, n) = text
            .split_once('/')
            .ok_or_else(|| format!("shard spec {text:?} is not of the form i/n"))?;
        let index: u64 = i.trim().parse().map_err(|_| format!("bad shard index {i:?}"))?;
        let count: u64 = n.trim().parse().map_err(|_| format!("bad shard count {n:?}"))?;
        if count == 0 {
            return Err("shard count must be at least 1".into());
        }
        if index >= count {
            return Err(format!("shard index {index} out of range 0..{count}"));
        }
        Ok(Self { index, count })
    }

    /// Whether this shard owns grid cell `cell`.
    #[must_use]
    pub fn owns(&self, cell: u64) -> bool {
        cell % self.count == self.index
    }
}

impl fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

/// FNV-1a over a canonical argument string — the manifest's cheap
/// grid-identity check, so `--resume` and `merge` refuse to mix cells
/// generated under different sweep parameters.
#[must_use]
pub fn grid_fingerprint(canonical_args: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in canonical_args.as_bytes() {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Line 1 of a manifest: what grid the cells belong to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestHeader {
    /// Human-readable grid description (benchmark, writes, seed…).
    pub grid: String,
    /// Total cells in the grid (records must cover `0..cells`).
    pub cells: u64,
    /// [`grid_fingerprint`] of the canonical generating arguments.
    pub fingerprint: u64,
    /// The tab-separated column header of the merged output rows.
    pub columns: String,
}

impl ManifestHeader {
    fn to_jsonl(&self) -> String {
        format!(
            "{{\"manifest\":\"deuce-sweep\",\"version\":1,\"grid\":\"{}\",\"cells\":{},\
             \"fingerprint\":\"{:016x}\",\"columns\":\"{}\"}}\n",
            json_escape(&self.grid),
            self.cells,
            self.fingerprint,
            json_escape(&self.columns),
        )
    }
}

/// One completed grid cell: its index, label, simulated write count,
/// and the finished tab-separated output row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellRecord {
    /// Grid cell index, `0 <= cell < header.cells`.
    pub cell: u64,
    /// Human-readable cell label.
    pub label: String,
    /// Counted simulated writes the cell executed (throughput
    /// accounting).
    pub writes: u64,
    /// The cell's finished output row (tab-separated, no newline).
    pub row: String,
}

impl CellRecord {
    fn to_jsonl(&self) -> String {
        format!(
            "{{\"cell\":{},\"label\":\"{}\",\"writes\":{},\"row\":\"{}\"}}\n",
            self.cell,
            json_escape(&self.label),
            self.writes,
            json_escape(&self.row),
        )
    }
}

/// Errors from manifest reading, resuming, or merging.
#[derive(Debug)]
pub enum ManifestError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file's header line is missing or malformed.
    BadHeader(String),
    /// A resume or merge found a header that does not match the grid
    /// being run.
    HeaderMismatch {
        /// What the current invocation expected.
        expected: String,
        /// What the file contains.
        found: String,
    },
    /// Two manifests disagree about the same cell's result.
    Conflict {
        /// The contested cell index.
        cell: u64,
    },
    /// The merged manifests do not cover the whole grid.
    MissingCells(Vec<u64>),
}

impl fmt::Display for ManifestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ManifestError::Io(e) => write!(f, "manifest i/o failed: {e}"),
            ManifestError::BadHeader(why) => write!(f, "bad manifest header: {why}"),
            ManifestError::HeaderMismatch { expected, found } => write!(
                f,
                "manifest belongs to a different grid (expected {expected}, found {found})"
            ),
            ManifestError::Conflict { cell } => {
                write!(f, "conflicting results for cell {cell} across manifests")
            }
            ManifestError::MissingCells(cells) => {
                write!(f, "grid incomplete: missing cells {cells:?}")
            }
        }
    }
}

impl std::error::Error for ManifestError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ManifestError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ManifestError {
    fn from(e: io::Error) -> Self {
        ManifestError::Io(e)
    }
}

fn parse_header(line: &str) -> Result<ManifestHeader, ManifestError> {
    let events = parse_jsonl(line)
        .map_err(|e| ManifestError::BadHeader(e.to_string()))?;
    let event = events
        .first()
        .ok_or_else(|| ManifestError::BadHeader("empty file".into()))?;
    if event.str("manifest") != Some("deuce-sweep") {
        return Err(ManifestError::BadHeader("not a deuce-sweep manifest".into()));
    }
    if event.u64("version") != Some(1) {
        return Err(ManifestError::BadHeader("unsupported manifest version".into()));
    }
    let fingerprint = event
        .str("fingerprint")
        .and_then(|s| u64::from_str_radix(s, 16).ok())
        .ok_or_else(|| ManifestError::BadHeader("missing fingerprint".into()))?;
    Ok(ManifestHeader {
        grid: event
            .str("grid")
            .ok_or_else(|| ManifestError::BadHeader("missing grid".into()))?
            .to_string(),
        cells: event
            .u64("cells")
            .ok_or_else(|| ManifestError::BadHeader("missing cells".into()))?,
        fingerprint,
        columns: event
            .str("columns")
            .ok_or_else(|| ManifestError::BadHeader("missing columns".into()))?
            .to_string(),
    })
}

/// Parses one record line; `None` for torn/unparseable lines (tolerated
/// — coverage is enforced at merge time, so a torn tail can only ever
/// *lose* a cell, never corrupt one).
fn parse_record(line: &str) -> Option<CellRecord> {
    let events = parse_jsonl(line).ok()?;
    let event = events.first()?;
    Some(CellRecord {
        cell: event.u64("cell")?,
        label: event.str("label")?.to_string(),
        writes: event.u64("writes")?,
        row: event.str("row")?.to_string(),
    })
}

/// Reads a manifest leniently: the header must parse; record lines that
/// do not parse (torn tails from a killed shard) are skipped.
///
/// # Errors
///
/// Returns [`ManifestError`] on I/O failure or a bad header.
pub fn read_manifest<P: AsRef<Path>>(
    path: P,
) -> Result<(ManifestHeader, Vec<CellRecord>), ManifestError> {
    let mut text = String::new();
    File::open(path.as_ref())?.read_to_string(&mut text)?;
    let mut lines = text.lines();
    let header = parse_header(lines.next().unwrap_or(""))?;
    let records = lines.filter_map(parse_record).collect();
    Ok((header, records))
}

/// An append-only, flush-per-record manifest file shared across sweep
/// workers.
#[derive(Debug)]
pub struct ManifestWriter {
    file: Mutex<File>,
}

impl ManifestWriter {
    /// Creates (truncating) a manifest with the given header.
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O error.
    pub fn create<P: AsRef<Path>>(path: P, header: &ManifestHeader) -> Result<Self, ManifestError> {
        let mut file = File::create(path.as_ref())?;
        file.write_all(header.to_jsonl().as_bytes())?;
        file.flush()?;
        Ok(Self { file: Mutex::new(file) })
    }

    /// Opens an existing manifest for resumption: validates the header
    /// against `expected`, truncates any torn trailing line, and
    /// returns the writer plus the set of cells already completed. If
    /// the file does not exist it is created fresh (an empty completed
    /// set) — `--resume` on a first run is a no-op.
    ///
    /// # Errors
    ///
    /// Returns [`ManifestError::HeaderMismatch`] when the file belongs
    /// to a different grid, and I/O or header errors otherwise.
    pub fn resume<P: AsRef<Path>>(
        path: P,
        expected: &ManifestHeader,
    ) -> Result<(Self, BTreeSet<u64>), ManifestError> {
        let path = path.as_ref();
        if !path.exists() {
            return Ok((Self::create(path, expected)?, BTreeSet::new()));
        }
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        let mut text = String::new();
        file.read_to_string(&mut text)?;
        let header_line = text.lines().next().unwrap_or("");
        let header = parse_header(header_line)?;
        if header != *expected {
            return Err(ManifestError::HeaderMismatch {
                expected: format!("{expected:?}"),
                found: format!("{header:?}"),
            });
        }
        // Keep only whole, parseable lines; truncate the rest (a torn
        // tail from a killed shard).
        let mut keep = header_line.len() + 1;
        let mut completed = BTreeSet::new();
        for line in text[keep.min(text.len())..].split_inclusive('\n') {
            let whole = line.ends_with('\n');
            match (whole, parse_record(line.trim_end())) {
                (true, Some(record)) => {
                    completed.insert(record.cell);
                    keep += line.len();
                }
                _ => break,
            }
        }
        file.set_len(keep.min(text.len()) as u64)?;
        file.seek(SeekFrom::End(0))?;
        Ok((Self { file: Mutex::new(file) }, completed))
    }

    /// Appends one completed cell and flushes, so the record survives
    /// the process being killed right after.
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O error.
    ///
    /// # Panics
    ///
    /// Panics if another worker panicked while appending.
    pub fn append(&self, record: &CellRecord) -> io::Result<()> {
        let mut file = self.file.lock().expect("manifest writer poisoned");
        file.write_all(record.to_jsonl().as_bytes())?;
        file.flush()
    }
}

/// Merges shard manifests into the complete grid, ordered by cell
/// index. Headers must agree, every cell of `0..cells` must appear
/// exactly once (identical duplicates are tolerated, conflicting ones
/// are an error), so the merged rows are byte-identical to an unsharded
/// run.
///
/// # Errors
///
/// Returns [`ManifestError`] on header mismatch, conflicting
/// duplicates, or missing cells.
pub fn merge_manifests(
    manifests: &[(ManifestHeader, Vec<CellRecord>)],
) -> Result<(ManifestHeader, Vec<CellRecord>), ManifestError> {
    let (first_header, _) = manifests
        .first()
        .ok_or_else(|| ManifestError::BadHeader("no manifests to merge".into()))?;
    let mut cells: BTreeMap<u64, CellRecord> = BTreeMap::new();
    for (header, records) in manifests {
        if header != first_header {
            return Err(ManifestError::HeaderMismatch {
                expected: format!("{first_header:?}"),
                found: format!("{header:?}"),
            });
        }
        for record in records {
            match cells.get(&record.cell) {
                None => {
                    cells.insert(record.cell, record.clone());
                }
                Some(existing) if existing == record => {}
                Some(_) => return Err(ManifestError::Conflict { cell: record.cell }),
            }
        }
    }
    let missing: Vec<u64> =
        (0..first_header.cells).filter(|c| !cells.contains_key(c)).collect();
    if !missing.is_empty() {
        return Err(ManifestError::MissingCells(missing));
    }
    Ok((first_header.clone(), cells.into_values().collect()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> ManifestHeader {
        ManifestHeader {
            grid: "mcf w600 s9".into(),
            cells: 4,
            fingerprint: grid_fingerprint("mcf\t600\t9"),
            columns: "word\tepoch\tflip_rate".into(),
        }
    }

    fn record(cell: u64) -> CellRecord {
        CellRecord {
            cell,
            label: format!("cell{cell}"),
            writes: 100 + cell,
            row: format!("8\t{cell}\t0.25"),
        }
    }

    #[test]
    fn shard_spec_parses_and_partitions() {
        let s = ShardSpec::parse("1/3").unwrap();
        assert_eq!(s, ShardSpec { index: 1, count: 3 });
        assert_eq!(s.to_string(), "1/3");
        let owned: Vec<u64> = (0..9).filter(|&c| s.owns(c)).collect();
        assert_eq!(owned, vec![1, 4, 7]);
        // Every cell owned by exactly one shard.
        for cell in 0..20u64 {
            let owners = (0..3)
                .filter(|&i| ShardSpec { index: i, count: 3 }.owns(cell))
                .count();
            assert_eq!(owners, 1);
        }
        assert!(ShardSpec::parse("3/3").is_err());
        assert!(ShardSpec::parse("0/0").is_err());
        assert!(ShardSpec::parse("nope").is_err());
        assert!(ShardSpec::WHOLE.owns(17));
    }

    #[test]
    fn fingerprint_is_stable_and_discriminating() {
        assert_eq!(grid_fingerprint("abc"), grid_fingerprint("abc"));
        assert_ne!(grid_fingerprint("abc"), grid_fingerprint("abd"));
    }

    #[test]
    fn write_read_roundtrip() {
        let dir = std::env::temp_dir().join(format!("deuce-manifest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.jsonl");
        let writer = ManifestWriter::create(&path, &header()).unwrap();
        for cell in [2u64, 0, 3, 1] {
            writer.append(&record(cell)).unwrap();
        }
        let (h, records) = read_manifest(&path).unwrap();
        assert_eq!(h, header());
        assert_eq!(records.len(), 4);
        assert_eq!(records[0], record(2), "file order is completion order");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn resume_reports_completed_cells_and_truncates_torn_tail() {
        let dir = std::env::temp_dir().join(format!("deuce-manifest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("resume.jsonl");
        {
            let writer = ManifestWriter::create(&path, &header()).unwrap();
            writer.append(&record(0)).unwrap();
            writer.append(&record(2)).unwrap();
        }
        // Simulate a shard killed mid-append: a torn half-record tail.
        let mut torn = std::fs::read_to_string(&path).unwrap();
        torn.push_str("{\"cell\":3,\"label\":\"ce");
        std::fs::write(&path, &torn).unwrap();

        let (writer, completed) = ManifestWriter::resume(&path, &header()).unwrap();
        assert_eq!(completed.into_iter().collect::<Vec<_>>(), vec![0, 2]);
        writer.append(&record(3)).unwrap();
        writer.append(&record(1)).unwrap();
        let (_, records) = read_manifest(&path).unwrap();
        let mut cells: Vec<u64> = records.iter().map(|r| r.cell).collect();
        cells.sort_unstable();
        assert_eq!(cells, vec![0, 1, 2, 3], "torn tail replaced by the real record");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn resume_rejects_a_different_grid() {
        let dir = std::env::temp_dir().join(format!("deuce-manifest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mismatch.jsonl");
        let _ = ManifestWriter::create(&path, &header()).unwrap();
        let mut other = header();
        other.fingerprint ^= 1;
        assert!(matches!(
            ManifestWriter::resume(&path, &other),
            Err(ManifestError::HeaderMismatch { .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn merge_orders_dedupes_and_validates() {
        let shard0 = (header(), vec![record(0), record(2)]);
        let shard1 = (header(), vec![record(1), record(3)]);
        let (h, merged) = merge_manifests(&[shard0.clone(), shard1.clone()]).unwrap();
        assert_eq!(h, header());
        let cells: Vec<u64> = merged.iter().map(|r| r.cell).collect();
        assert_eq!(cells, vec![0, 1, 2, 3], "merged output is cell-ordered");

        // Identical duplicates are fine.
        let dup = (header(), vec![record(1)]);
        assert!(merge_manifests(&[shard0.clone(), shard1.clone(), dup]).is_ok());

        // Conflicting duplicates are not.
        let mut conflicting = record(1);
        conflicting.row = "different".into();
        let bad = (header(), vec![conflicting]);
        assert!(matches!(
            merge_manifests(&[shard0.clone(), shard1, bad]),
            Err(ManifestError::Conflict { cell: 1 })
        ));

        // Missing coverage is detected.
        assert!(matches!(
            merge_manifests(&[shard0]),
            Err(ManifestError::MissingCells(missing)) if missing == vec![1, 3]
        ));
    }
}

//! A secure-memory controller facade over the DEUCE stack.
//!
//! The other crates expose the *mechanisms* (pads, schemes, wear
//! leveling, integrity). This crate packages them the way a memory
//! controller — or a downstream system wanting an encrypted NVM
//! region — consumes them: a byte-addressable [`SecureMemory`] with
//! transparent encryption, write-reduction, optional integrity
//! checking, and cumulative device statistics. The [`pipeline`] module
//! exposes the controller's internal structure — counter, scheme, wear,
//! and timing stages behind traits — so trace-driven drivers (the
//! simulator, the figure binaries, the CLI) share one core. The
//! [`repair`] module adds the graceful-degradation layer: per-line ECP
//! correction entries, retirement to a spare pool, and the
//! [`UncorrectableError`] end-of-life signal.
//!
//! ```
//! use deuce_memctl::{MemoryBuilder, MemoryError};
//!
//! let mut memory = MemoryBuilder::new(4096).key_seed(7).build();
//! memory.write(100, b"hello secure world")?;
//! let mut buf = [0u8; 18];
//! memory.read(100, &mut buf)?;
//! assert_eq!(&buf, b"hello secure world");
//! // Bits flipped so far in the PCM cells:
//! assert!(memory.stats().bit_flips > 0);
//! # Ok::<(), MemoryError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod memory;
pub mod pipeline;
pub mod repair;

pub use builder::MemoryBuilder;
pub use memory::{MemoryError, MemoryStats, SecureMemory};
pub use pipeline::{
    counter_line_addr, CounterOutcome, CounterStage, FaultEvents, MemoryPipeline, SchemeStage,
    StepOutcome, TimingStage, WearStage, WriteEffect, COUNTER_REGION,
};
pub use repair::{EcpConfig, EcpRepair, RepairAction, UncorrectableError};

pub use deuce_schemes::{SchemeConfig, SchemeKind, WordSize};
pub use deuce_telemetry as telemetry;

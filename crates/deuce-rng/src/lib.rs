//! Tiny, dependency-free deterministic RNG for the DEUCE workspace.
//!
//! The simulator's reproducibility story rests on a simple contract:
//! **every random stream is a pure function of a `u64` seed**, and the
//! generators never change behind the workspace's back (no external
//! crate upgrades can silently reshuffle every trace). This crate
//! provides exactly two small, well-studied generators:
//!
//! * [`SplitMix64`] — a 64-bit mixer used for seeding and for deriving
//!   independent per-shard seeds ([`derive_seed`]);
//! * [`Xoshiro256StarStar`] (aliased [`DeuceRng`]) — the workhorse
//!   generator behind trace generation, randomized tests, and the
//!   benchmark harness.
//!
//! # Determinism contract
//!
//! * `DeuceRng::seed_from_u64(s)` yields the same stream on every
//!   platform, architecture, and build profile, forever.
//! * [`derive_seed`]`(base, index)` gives statistically independent seeds
//!   for sharded parallel work: shard *i* of a sweep seeded with
//!   `derive_seed(base, i)` produces the same results whether shards run
//!   sequentially, in any thread interleaving, or on different machines.
//! * All sampling helpers ([`Rng::gen_range`], [`Rng::gen_bool`],
//!   [`Rng::fill`], …) consume exactly the documented number of raw
//!   `next_u64` draws, so adding a new helper can never perturb existing
//!   streams.
//!
//! # Examples
//!
//! ```
//! use deuce_rng::{DeuceRng, Rng};
//!
//! let mut rng = DeuceRng::seed_from_u64(42);
//! let byte: u8 = rng.gen();
//! let roll = rng.gen_range(1u32..=6);
//! assert!((1..=6).contains(&roll));
//! let mut buf = [0u8; 16];
//! rng.fill(&mut buf);
//! let _ = byte;
//! ```

#![cfg_attr(not(test), no_std)]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// Produces the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// SplitMix64: Steele, Lea & Flood's 64-bit mixing generator.
///
/// Used to expand a single `u64` seed into the larger state of
/// [`Xoshiro256StarStar`] and to derive independent shard seeds. It is a
/// fixed-increment Weyl sequence through a finalizer, so *any* seed —
/// including 0 — is valid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates the generator from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }
}

impl RngCore for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Derives the `index`-th independent child seed from `base`.
///
/// This is the determinism anchor for sharded parallel sweeps: each
/// (benchmark × configuration) cell gets `derive_seed(base, cell_index)`,
/// making results independent of shard count and thread schedule.
#[must_use]
pub fn derive_seed(base: u64, index: u64) -> u64 {
    let mut mix = SplitMix64::new(base ^ index.wrapping_mul(0xa076_1d64_78bd_642f));
    // Two rounds decorrelate (base, index) pairs that differ in few bits.
    let first = mix.next_u64();
    SplitMix64::new(first).next_u64()
}

/// Blackman & Vigna's xoshiro256\*\* generator: 256-bit state, period
/// 2^256 − 1, passes BigCrush. The workspace's general-purpose RNG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

/// The workspace's default RNG (an alias so call sites stay stable if
/// the underlying generator is ever swapped — which the determinism
/// contract forbids without a major-version note).
pub type DeuceRng = Xoshiro256StarStar;

impl Xoshiro256StarStar {
    /// Seeds the 256-bit state from a single `u64` via [`SplitMix64`],
    /// the seeding procedure the xoshiro authors recommend.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut mix = SplitMix64::new(seed);
        Self {
            s: [mix.next_u64(), mix.next_u64(), mix.next_u64(), mix.next_u64()],
        }
    }

    /// Creates a generator from raw state words.
    ///
    /// # Panics
    ///
    /// Panics if all four words are zero (the one fixed point of the
    /// transition function).
    #[must_use]
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(s.iter().any(|&w| w != 0), "xoshiro256** state must be non-zero");
        Self { s }
    }

    /// Splits off a statistically independent child generator, consuming
    /// one draw from `self`. Handy for giving each substream (core,
    /// shard, line) its own RNG without manual seed bookkeeping.
    #[must_use]
    pub fn split(&mut self) -> Self {
        let child_seed = self.next_u64();
        Self::seed_from_u64(child_seed)
    }
}

impl RngCore for Xoshiro256StarStar {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly from an RNG (the `rng.gen()` protocol).
pub trait Sample: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_sample_uint {
    ($($t:ty),*) => {$(
        impl Sample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                // Truncation keeps the high-quality low bits of the
                // starstar scrambler; one draw per value.
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_sample_uint!(u8, u16, u32, u64, usize);

impl Sample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Sample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<T: Sample, const N: usize> Sample for [T; N] {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        core::array::from_fn(|_| T::sample(rng))
    }
}

/// Ranges samplable uniformly (the `rng.gen_range(..)` protocol).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Multiply-shift bounded sampling (Lemire's method without the
/// rejection step; the bias is < 2⁻⁶⁴ · span, far below anything the
/// simulator can observe, and keeps draws-per-value constant at one).
fn bounded(rng: &mut (impl RngCore + ?Sized), span: u64) -> u64 {
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range called with an empty range");
                let span = (self.end - self.start) as u64;
                self.start + bounded(rng, span) as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range called with an empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + bounded(rng, span + 1) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

/// Convenience sampling methods, blanket-implemented for every
/// [`RngCore`]. Mirrors the subset of the `rand` crate API the
/// workspace actually uses, so the two are drop-in interchangeable.
pub trait Rng: RngCore {
    /// Draws one uniformly distributed value of an inferred type.
    fn gen<T: Sample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from a (half-open or inclusive) range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} out of range");
        <f64 as Sample>::sample(self) < p
    }

    /// Fills `dest` with uniformly random bytes (8 bytes per draw).
    fn fill(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let tail = chunks.into_remainder();
        if !tail.is_empty() {
            let word = self.next_u64().to_le_bytes();
            tail.copy_from_slice(&word[..tail.len()]);
        }
    }

    /// Fisher–Yates shuffle.
    fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(0..=i);
            slice.swap(i, j);
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // First outputs for seed 0, per the reference implementation
        // (Vigna, https://prng.di.unimi.it/splitmix64.c).
        let mut mix = SplitMix64::new(0);
        assert_eq!(mix.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(mix.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(mix.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn xoshiro_streams_are_seed_deterministic() {
        let mut a = DeuceRng::seed_from_u64(7);
        let mut b = DeuceRng::seed_from_u64(7);
        let mut c = DeuceRng::seed_from_u64(8);
        let same: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        assert_eq!(same, (0..64).map(|_| b.next_u64()).collect::<Vec<_>>());
        assert_ne!(same, (0..64).map(|_| c.next_u64()).collect::<Vec<_>>());
    }

    #[test]
    fn from_state_rejects_zero() {
        let ok = Xoshiro256StarStar::from_state([1, 0, 0, 0]);
        let _ = ok;
        let res = std::panic::catch_unwind(|| Xoshiro256StarStar::from_state([0; 4]));
        assert!(res.is_err());
    }

    #[test]
    fn derived_seeds_differ_and_are_stable() {
        let a = derive_seed(42, 0);
        let b = derive_seed(42, 1);
        let c = derive_seed(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, derive_seed(42, 0), "derivation must be pure");
    }

    #[test]
    fn split_children_are_independent() {
        let mut parent = DeuceRng::seed_from_u64(1);
        let mut child_a = parent.split();
        let mut child_b = parent.split();
        let a: Vec<u64> = (0..32).map(|_| child_a.next_u64()).collect();
        let b: Vec<u64> = (0..32).map(|_| child_b.next_u64()).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = DeuceRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(5u8..=7);
            assert!((5..=7).contains(&w));
            let u = rng.gen_range(0usize..1);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn gen_range_covers_every_value() {
        let mut rng = DeuceRng::seed_from_u64(4);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all bucket values reached");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = DeuceRng::seed_from_u64(5);
        let _ = rng.gen_range(3u32..3);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = DeuceRng::seed_from_u64(6);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
        let mut rng = DeuceRng::seed_from_u64(7);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn f64_samples_are_unit_interval() {
        let mut rng = DeuceRng::seed_from_u64(8);
        let mut sum = 0.0;
        for _ in 0..100_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 100_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn fill_covers_partial_words() {
        let mut rng = DeuceRng::seed_from_u64(9);
        for len in [0usize, 1, 7, 8, 9, 63, 64] {
            let mut buf = vec![0u8; len];
            rng.fill(&mut buf);
            if len >= 8 {
                assert!(buf.iter().any(|&b| b != 0), "len {len} all zero");
            }
        }
    }

    #[test]
    fn fill_is_prefix_stable() {
        // Same seed, different buffer sizes: the shared prefix of whole
        // words must agree (each word is one draw).
        let mut a = DeuceRng::seed_from_u64(10);
        let mut b = DeuceRng::seed_from_u64(10);
        let mut buf_a = [0u8; 16];
        let mut buf_b = [0u8; 24];
        a.fill(&mut buf_a);
        b.fill(&mut buf_b);
        assert_eq!(buf_a, buf_b[..16]);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = DeuceRng::seed_from_u64(11);
        let mut data: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut data);
        let mut sorted = data.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(data, sorted, "shuffle left the identity (astronomically unlikely)");
    }

    #[test]
    fn uniformity_chi_square_sanity() {
        // 16 buckets over 160k draws: each bucket within 5% of expected.
        let mut rng = DeuceRng::seed_from_u64(12);
        let mut buckets = [0u32; 16];
        for _ in 0..160_000 {
            buckets[rng.gen_range(0usize..16)] += 1;
        }
        for (i, &count) in buckets.iter().enumerate() {
            assert!(
                (f64::from(count) - 10_000.0).abs() < 500.0,
                "bucket {i}: {count}"
            );
        }
    }
}

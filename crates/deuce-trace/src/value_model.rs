//! How the value inside a 16-bit word changes when a writeback touches
//! it.
//!
//! The role determines how many — and crucially *which* — bits flip,
//! which drives both the DCW/FNW flip rates (Fig. 5) and the per-bit-
//! position write skew (Fig. 12: libquantum's hottest bit sees 27× the
//! average because its inner loop increments counters whose low bits sit
//! at fixed positions in the line).

use deuce_rng::Rng;

/// The update behaviour of one word of a line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WordRole {
    /// Loop counter / accumulator: small increments, so low-order bits
    /// flip almost every write (bit 0 ~every write, bit 1 ~half, ...).
    Counter,
    /// Pointer / index: jumps within a region, flipping a band of
    /// middle bits.
    Pointer,
    /// Floating-point mantissa fragment: low mantissa bits churn, high
    /// bits are stable.
    Float,
    /// Fully random replacement (dense value churn).
    Random,
}

impl WordRole {
    /// Produces the word's next value after a modification.
    ///
    /// Guaranteed to differ from `old` (a "modified word" that happens to
    /// keep its value would silently vanish from DCW statistics).
    pub fn next_value<R: Rng + ?Sized>(self, old: u16, rng: &mut R) -> u16 {
        let new = match self {
            WordRole::Counter => {
                if rng.gen_bool(0.05) {
                    // Sign change / zero crossing: two's complement flips
                    // nearly every bit of a small value — the dense-flip
                    // events Flip-N-Write profits from.
                    (old as i16).wrapping_neg() as u16
                } else {
                    old.wrapping_add(rng.gen_range(1..=3))
                }
            }
            WordRole::Pointer => {
                // Jump by a geometric-ish stride within a 4K-entry region:
                // flips a band of bits around positions 2..10.
                let stride = 1u16 << rng.gen_range(2u32..7);
                let delta = stride.wrapping_mul(rng.gen_range(1..=7));
                if rng.gen_bool(0.5) {
                    old.wrapping_add(delta)
                } else {
                    old.wrapping_sub(delta)
                }
            }
            WordRole::Float => {
                if rng.gen_bool(0.08) {
                    // Sign/exponent flip: most mantissa bits invert.
                    old ^ (0xFFE0 | rng.gen_range(0u16..32))
                } else {
                    // Churn the low 8 mantissa bits; occasionally disturb
                    // bits 8..13 (exponent drift).
                    let low = rng.gen_range(1u16..1024);
                    let high = if rng.gen_bool(0.15) {
                        (rng.gen_range(1u16..64)) << 10
                    } else {
                        0
                    };
                    old ^ (low | high)
                }
            }
            WordRole::Random => rng.gen(),
        };
        if new == old {
            new.wrapping_add(1)
        } else {
            new
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deuce_rng::DeuceRng;

    fn mean_flips(role: WordRole, trials: u32) -> f64 {
        let mut rng = DeuceRng::seed_from_u64(1);
        let mut value: u16 = 0x1234;
        let mut flips = 0u64;
        for _ in 0..trials {
            let next = role.next_value(value, &mut rng);
            flips += u64::from((value ^ next).count_ones());
            value = next;
        }
        f64::from(flips as u32) / f64::from(trials)
    }

    #[test]
    fn next_value_always_differs() {
        let mut rng = DeuceRng::seed_from_u64(2);
        for role in [WordRole::Counter, WordRole::Pointer, WordRole::Float, WordRole::Random] {
            let mut v = 0u16;
            for _ in 0..500 {
                let next = role.next_value(v, &mut rng);
                assert_ne!(next, v, "{role:?}");
                v = next;
            }
        }
    }

    #[test]
    fn counter_is_sparse_and_low_biased() {
        let m = mean_flips(WordRole::Counter, 4000);
        assert!(m > 1.0 && m < 4.0, "counter mean flips {m}");
        // Bit 0 flips far more often than bit 8.
        let mut rng = DeuceRng::seed_from_u64(3);
        let mut v: u16 = 0;
        let mut bit0 = 0u32;
        let mut bit8 = 0u32;
        for _ in 0..4000 {
            let next = WordRole::Counter.next_value(v, &mut rng);
            let diff = v ^ next;
            bit0 += u32::from(diff & 1);
            bit8 += u32::from(diff >> 8 & 1);
            v = next;
        }
        assert!(bit0 > bit8 * 10, "bit0 {bit0} vs bit8 {bit8}");
    }

    #[test]
    fn random_is_dense() {
        let m = mean_flips(WordRole::Random, 4000);
        assert!((m - 8.0).abs() < 0.5, "random mean flips {m}");
    }

    #[test]
    fn float_is_moderate() {
        let m = mean_flips(WordRole::Float, 4000);
        assert!(m > 3.0 && m < 8.0, "float mean flips {m}");
    }

    #[test]
    fn pointer_flips_middle_band() {
        let mut rng = DeuceRng::seed_from_u64(4);
        let mut v: u16 = 0x4000;
        let mut low = 0u32; // bits 0..2
        let mut mid = 0u32; // bits 2..11
        for _ in 0..4000 {
            let next = WordRole::Pointer.next_value(v, &mut rng);
            let diff = v ^ next;
            low += (diff & 0b11).count_ones();
            mid += (diff & 0x07FC).count_ones();
            v = next;
        }
        assert!(mid > low * 4, "mid {mid} vs low {low}");
    }
}

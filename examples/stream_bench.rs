//! Peak-memory and throughput probe: materialised vs streaming runs.
//!
//! Usage: `stream_bench <materialised|streaming> <writes>`
//!
//! Runs one DEUCE simulation over a synthetic Mcf workload of the given
//! size and prints a single JSON object on stdout. The materialised mode
//! generates the whole trace in RAM first and calls `run_trace`; the
//! streaming mode drives `run_source` straight from the generator so the
//! trace is never resident. Run each mode in its own process: peak
//! resident memory is read from `VmHWM` in `/proc/self/status`, which is
//! a per-process high-water mark.
//!
//! The JSON includes the flip counters and the simulated-time bit
//! pattern so the caller can assert the two modes are bit-identical
//! (see `scripts/bench_stream.sh`).

use deuce::schemes::SchemeKind;
use deuce::sim::{SimConfig, SimResult, Simulator};
use deuce::trace::{Benchmark, TraceConfig};
use std::time::Instant;

/// Per-process peak resident set in bytes (`VmHWM`), or 0 off-Linux.
fn peak_resident_bytes() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

fn workload(writes: u64) -> TraceConfig {
    TraceConfig::new(Benchmark::Mcf).lines(65_536).writes(writes as usize).cores(4).seed(7)
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mode = args.next().unwrap_or_default();
    let writes: u64 = args.next().and_then(|w| w.parse().ok()).unwrap_or(0);
    if writes == 0 || !matches!(mode.as_str(), "materialised" | "streaming") {
        eprintln!("usage: stream_bench <materialised|streaming> <writes>");
        std::process::exit(2);
    }

    let simulator = Simulator::new(SimConfig::new(SchemeKind::Deuce));
    let start = Instant::now();
    let result: SimResult = match mode.as_str() {
        "materialised" => {
            let trace = workload(writes).generate();
            simulator.run_trace(&trace)
        }
        _ => simulator
            .run_source(&mut workload(writes).stream())
            .expect("generator streams cannot fail"),
    };
    let elapsed = start.elapsed().as_secs_f64();

    println!(
        "{{\"mode\":\"{}\",\"writes_requested\":{},\"writes_counted\":{},\"reads\":{},\
         \"data_flips\":{},\"meta_flips\":{},\"exec_time_ns_bits\":\"{:016x}\",\
         \"elapsed_s\":{:.3},\"writes_per_sec\":{:.0},\"peak_resident_bytes\":{}}}",
        mode,
        writes,
        result.writes,
        result.reads,
        result.data_flips,
        result.meta_flips,
        result.exec_time_ns.to_bits(),
        elapsed,
        result.writes as f64 / elapsed,
        peak_resident_bytes(),
    );
}

//! Uniform dispatch over all schemes, so the simulator can run any
//! [`SchemeKind`] chosen at runtime.
//!
//! [`AnyScheme`] implements [`crate::LineScheme`] by matching on a
//! (scheme, state) pair, and [`SchemeLine`] is just
//! `SchemeCell<AnyScheme>` — the generic machinery with dispatch folded
//! into one `match` per operation. Code that knows its scheme at compile
//! time should use the concrete parameter structs ([`crate::DeuceScheme`]
//! …) instead and let monomorphisation remove the dispatch.

use deuce_crypto::{LineAddr, LineBytes, OtpEngine};
use deuce_nvm::LineImage;

use crate::addr_pad::AddrPadScheme;
use crate::ble::{BleDeuceScheme, BleDeuceState, BleScheme, BleState};
use crate::config::SchemeConfig;
use crate::dcw::{EncryptedDcwScheme, UnencryptedDcwScheme};
use crate::core::CtrState;
use crate::deuce::{DeuceScheme, DeuceState};
use crate::deuce_fnw::{DeuceFnwScheme, DeuceFnwState};
use crate::dyn_deuce::{DynDeuceScheme, DynDeuceState};
use crate::fnw::{EncryptedFnwScheme, EncryptedFnwState, FnwState, UnencryptedFnwScheme};
use crate::scheme::{LineMut, LineRef, LineScheme, SchemeCell};
use crate::{SchemeKind, WriteOutcome};

/// Any of the ten schemes, selected at runtime from a [`SchemeConfig`].
///
/// Carries the config-reported metadata bits separately from the scheme
/// because the two can legitimately differ: `SchemeConfig` accounts
/// DynDEUCE / DEUCE+FNW metadata at the configured word size, while their
/// line formats fix the word size at 2 bytes (33 / 64 stored bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnyScheme {
    kind: AnySchemeKind,
    metadata_bits: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AnySchemeKind {
    UnencryptedDcw(UnencryptedDcwScheme),
    UnencryptedFnw(UnencryptedFnwScheme),
    EncryptedDcw(EncryptedDcwScheme),
    EncryptedFnw(EncryptedFnwScheme),
    Ble(BleScheme),
    Deuce(DeuceScheme),
    DynDeuce(DynDeuceScheme),
    DeuceFnw(DeuceFnwScheme),
    BleDeuce(BleDeuceScheme),
    AddrPad(AddrPadScheme),
}

/// The per-line state of an [`AnyScheme`] line: the concrete scheme's
/// compact state behind one tag.
#[derive(Debug, Clone, Copy)]
pub enum AnyState {
    /// Plaintext DCW carries no state.
    UnencryptedDcw,
    /// Plaintext FNW flip bits.
    UnencryptedFnw(FnwState),
    /// Encrypted DCW counter.
    EncryptedDcw(CtrState),
    /// Encrypted FNW counter + flip bits.
    EncryptedFnw(EncryptedFnwState),
    /// BLE per-block counters.
    Ble(BleState),
    /// DEUCE counter + modified bits.
    Deuce(DeuceState),
    /// DynDEUCE counter + mode/tracking bits.
    DynDeuce(DynDeuceState),
    /// DEUCE+FNW counter + modified/flip bits.
    DeuceFnw(DeuceFnwState),
    /// BLE+DEUCE per-block counters + modified bits.
    BleDeuce(BleDeuceState),
    /// Address-pad encryption carries no state.
    AddrPad,
}

impl AnyScheme {
    /// Builds the runtime-dispatched scheme a [`SchemeConfig`] describes.
    #[must_use]
    pub fn from_config(config: &SchemeConfig) -> Self {
        let kind = match config.kind {
            SchemeKind::UnencryptedDcw => AnySchemeKind::UnencryptedDcw(UnencryptedDcwScheme),
            SchemeKind::UnencryptedFnw => {
                AnySchemeKind::UnencryptedFnw(UnencryptedFnwScheme::new(config.fnw_segment_bits))
            }
            SchemeKind::EncryptedDcw => {
                AnySchemeKind::EncryptedDcw(EncryptedDcwScheme::new(config.counter_bits))
            }
            SchemeKind::EncryptedFnw => AnySchemeKind::EncryptedFnw(EncryptedFnwScheme::new(
                config.fnw_segment_bits,
                config.counter_bits,
            )),
            SchemeKind::Ble => AnySchemeKind::Ble(BleScheme::new(config.counter_bits)),
            SchemeKind::Deuce => AnySchemeKind::Deuce(DeuceScheme::new(
                config.word_size,
                config.epoch,
                config.counter_bits,
            )),
            SchemeKind::DynDeuce => {
                AnySchemeKind::DynDeuce(DynDeuceScheme::new(config.epoch, config.counter_bits))
            }
            SchemeKind::DeuceFnw => {
                AnySchemeKind::DeuceFnw(DeuceFnwScheme::new(config.epoch, config.counter_bits))
            }
            SchemeKind::BleDeuce => AnySchemeKind::BleDeuce(BleDeuceScheme::new(
                config.word_size,
                config.epoch,
                config.counter_bits,
            )),
            SchemeKind::AddrPad => AnySchemeKind::AddrPad(AddrPadScheme),
        };
        Self {
            kind,
            metadata_bits: config.metadata_bits(),
        }
    }
}

impl LineScheme for AnyScheme {
    type State = AnyState;

    fn needs_shadow(&self) -> bool {
        match &self.kind {
            AnySchemeKind::UnencryptedDcw(s) => s.needs_shadow(),
            AnySchemeKind::UnencryptedFnw(s) => s.needs_shadow(),
            AnySchemeKind::EncryptedDcw(s) => s.needs_shadow(),
            AnySchemeKind::EncryptedFnw(s) => s.needs_shadow(),
            AnySchemeKind::Ble(s) => s.needs_shadow(),
            AnySchemeKind::Deuce(s) => s.needs_shadow(),
            AnySchemeKind::DynDeuce(s) => s.needs_shadow(),
            AnySchemeKind::DeuceFnw(s) => s.needs_shadow(),
            AnySchemeKind::BleDeuce(s) => s.needs_shadow(),
            AnySchemeKind::AddrPad(s) => s.needs_shadow(),
        }
    }

    fn metadata_bits(&self) -> u32 {
        self.metadata_bits
    }

    fn init(&self, engine: &OtpEngine, addr: LineAddr, initial: &LineBytes) -> (LineBytes, AnyState) {
        match &self.kind {
            AnySchemeKind::UnencryptedDcw(s) => {
                let (stored, ()) = s.init(engine, addr, initial);
                (stored, AnyState::UnencryptedDcw)
            }
            AnySchemeKind::UnencryptedFnw(s) => {
                let (stored, st) = s.init(engine, addr, initial);
                (stored, AnyState::UnencryptedFnw(st))
            }
            AnySchemeKind::EncryptedDcw(s) => {
                let (stored, st) = s.init(engine, addr, initial);
                (stored, AnyState::EncryptedDcw(st))
            }
            AnySchemeKind::EncryptedFnw(s) => {
                let (stored, st) = s.init(engine, addr, initial);
                (stored, AnyState::EncryptedFnw(st))
            }
            AnySchemeKind::Ble(s) => {
                let (stored, st) = s.init(engine, addr, initial);
                (stored, AnyState::Ble(st))
            }
            AnySchemeKind::Deuce(s) => {
                let (stored, st) = s.init(engine, addr, initial);
                (stored, AnyState::Deuce(st))
            }
            AnySchemeKind::DynDeuce(s) => {
                let (stored, st) = s.init(engine, addr, initial);
                (stored, AnyState::DynDeuce(st))
            }
            AnySchemeKind::DeuceFnw(s) => {
                let (stored, st) = s.init(engine, addr, initial);
                (stored, AnyState::DeuceFnw(st))
            }
            AnySchemeKind::BleDeuce(s) => {
                let (stored, st) = s.init(engine, addr, initial);
                (stored, AnyState::BleDeuce(st))
            }
            AnySchemeKind::AddrPad(s) => {
                let (stored, ()) = s.init(engine, addr, initial);
                (stored, AnyState::AddrPad)
            }
        }
    }

    fn write(
        &self,
        engine: &OtpEngine,
        addr: LineAddr,
        line: LineMut<'_, AnyState>,
        data: &LineBytes,
    ) -> WriteOutcome {
        let LineMut { stored, shadow, state } = line;
        match (&self.kind, state) {
            (AnySchemeKind::UnencryptedDcw(s), AnyState::UnencryptedDcw) => {
                s.write(engine, addr, LineMut { stored, shadow, state: &mut () }, data)
            }
            (AnySchemeKind::UnencryptedFnw(s), AnyState::UnencryptedFnw(st)) => {
                s.write(engine, addr, LineMut { stored, shadow, state: st }, data)
            }
            (AnySchemeKind::EncryptedDcw(s), AnyState::EncryptedDcw(st)) => {
                s.write(engine, addr, LineMut { stored, shadow, state: st }, data)
            }
            (AnySchemeKind::EncryptedFnw(s), AnyState::EncryptedFnw(st)) => {
                s.write(engine, addr, LineMut { stored, shadow, state: st }, data)
            }
            (AnySchemeKind::Ble(s), AnyState::Ble(st)) => {
                s.write(engine, addr, LineMut { stored, shadow, state: st }, data)
            }
            (AnySchemeKind::Deuce(s), AnyState::Deuce(st)) => {
                s.write(engine, addr, LineMut { stored, shadow, state: st }, data)
            }
            (AnySchemeKind::DynDeuce(s), AnyState::DynDeuce(st)) => {
                s.write(engine, addr, LineMut { stored, shadow, state: st }, data)
            }
            (AnySchemeKind::DeuceFnw(s), AnyState::DeuceFnw(st)) => {
                s.write(engine, addr, LineMut { stored, shadow, state: st }, data)
            }
            (AnySchemeKind::BleDeuce(s), AnyState::BleDeuce(st)) => {
                s.write(engine, addr, LineMut { stored, shadow, state: st }, data)
            }
            (AnySchemeKind::AddrPad(s), AnyState::AddrPad) => {
                s.write(engine, addr, LineMut { stored, shadow, state: &mut () }, data)
            }
            _ => unreachable!("scheme/state mismatch"),
        }
    }

    fn read(&self, engine: &OtpEngine, addr: LineAddr, line: LineRef<'_, AnyState>) -> LineBytes {
        let LineRef { stored, state } = line;
        match (&self.kind, state) {
            (AnySchemeKind::UnencryptedDcw(s), AnyState::UnencryptedDcw) => {
                s.read(engine, addr, LineRef { stored, state: &() })
            }
            (AnySchemeKind::UnencryptedFnw(s), AnyState::UnencryptedFnw(st)) => {
                s.read(engine, addr, LineRef { stored, state: st })
            }
            (AnySchemeKind::EncryptedDcw(s), AnyState::EncryptedDcw(st)) => {
                s.read(engine, addr, LineRef { stored, state: st })
            }
            (AnySchemeKind::EncryptedFnw(s), AnyState::EncryptedFnw(st)) => {
                s.read(engine, addr, LineRef { stored, state: st })
            }
            (AnySchemeKind::Ble(s), AnyState::Ble(st)) => {
                s.read(engine, addr, LineRef { stored, state: st })
            }
            (AnySchemeKind::Deuce(s), AnyState::Deuce(st)) => {
                s.read(engine, addr, LineRef { stored, state: st })
            }
            (AnySchemeKind::DynDeuce(s), AnyState::DynDeuce(st)) => {
                s.read(engine, addr, LineRef { stored, state: st })
            }
            (AnySchemeKind::DeuceFnw(s), AnyState::DeuceFnw(st)) => {
                s.read(engine, addr, LineRef { stored, state: st })
            }
            (AnySchemeKind::BleDeuce(s), AnyState::BleDeuce(st)) => {
                s.read(engine, addr, LineRef { stored, state: st })
            }
            (AnySchemeKind::AddrPad(s), AnyState::AddrPad) => {
                s.read(engine, addr, LineRef { stored, state: &() })
            }
            _ => unreachable!("scheme/state mismatch"),
        }
    }

    fn image(&self, line: LineRef<'_, AnyState>) -> LineImage {
        let LineRef { stored, state } = line;
        match (&self.kind, state) {
            (AnySchemeKind::UnencryptedDcw(s), AnyState::UnencryptedDcw) => {
                s.image(LineRef { stored, state: &() })
            }
            (AnySchemeKind::UnencryptedFnw(s), AnyState::UnencryptedFnw(st)) => {
                s.image(LineRef { stored, state: st })
            }
            (AnySchemeKind::EncryptedDcw(s), AnyState::EncryptedDcw(st)) => {
                s.image(LineRef { stored, state: st })
            }
            (AnySchemeKind::EncryptedFnw(s), AnyState::EncryptedFnw(st)) => {
                s.image(LineRef { stored, state: st })
            }
            (AnySchemeKind::Ble(s), AnyState::Ble(st)) => s.image(LineRef { stored, state: st }),
            (AnySchemeKind::Deuce(s), AnyState::Deuce(st)) => s.image(LineRef { stored, state: st }),
            (AnySchemeKind::DynDeuce(s), AnyState::DynDeuce(st)) => {
                s.image(LineRef { stored, state: st })
            }
            (AnySchemeKind::DeuceFnw(s), AnyState::DeuceFnw(st)) => {
                s.image(LineRef { stored, state: st })
            }
            (AnySchemeKind::BleDeuce(s), AnyState::BleDeuce(st)) => {
                s.image(LineRef { stored, state: st })
            }
            (AnySchemeKind::AddrPad(s), AnyState::AddrPad) => s.image(LineRef { stored, state: &() }),
            _ => unreachable!("scheme/state mismatch"),
        }
    }
}

/// One memory line under any scheme, selected at runtime.
///
/// This is the type the trace-driven simulator instantiates per line when
/// the scheme is chosen at runtime; it forwards `write`/`read`/`image`
/// through [`AnyScheme`] to the concrete scheme.
///
/// # Examples
///
/// ```
/// use deuce_crypto::{LineAddr, OtpEngine, SecretKey};
/// use deuce_schemes::{SchemeConfig, SchemeKind, SchemeLine};
///
/// let engine = OtpEngine::new(&SecretKey::from_seed(0));
/// for kind in SchemeKind::ALL {
///     let config = SchemeConfig::new(kind);
///     let mut line = SchemeLine::new(&config, &engine, LineAddr::new(1), &[0u8; 64]);
///     let data = [0x42u8; 64];
///     let _ = line.write(&engine, &data);
///     assert_eq!(line.read(&engine), data, "{kind}");
/// }
/// ```
pub type SchemeLine = SchemeCell<AnyScheme>;

impl SchemeLine {
    /// Creates a line holding `initial` under the configured scheme.
    #[must_use]
    pub fn new(
        config: &SchemeConfig,
        engine: &OtpEngine,
        addr: LineAddr,
        initial: &LineBytes,
    ) -> Self {
        Self::with_scheme(AnyScheme::from_config(config), engine, addr, initial)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deuce_crypto::SecretKey;
    use deuce_rng::{DeuceRng, Rng};

    /// Differential test: every scheme must return exactly what was last
    /// written, across hundreds of random writes.
    #[test]
    fn all_schemes_roundtrip_random_writes() {
        let engine = OtpEngine::new(&SecretKey::from_seed(1234));
        let mut rng = DeuceRng::seed_from_u64(99);
        for kind in SchemeKind::ALL {
            let config = SchemeConfig::new(kind);
            let mut initial = [0u8; 64];
            rng.fill(&mut initial);
            let mut line = SchemeLine::new(&config, &engine, LineAddr::new(7), &initial);
            assert_eq!(line.read(&engine), initial, "{kind}: initial readback");
            let mut data = initial;
            for i in 0..200 {
                // Mix sparse and dense updates.
                if rng.gen_bool(0.7) {
                    let idx = rng.gen_range(0usize..64);
                    data[idx] = rng.gen();
                } else {
                    rng.fill(&mut data);
                }
                let outcome = line.write(&engine, &data);
                assert_eq!(line.read(&engine), data, "{kind}: write {i}");
                assert_eq!(
                    outcome.flips,
                    outcome.old_image.flips_to(&outcome.new_image),
                    "{kind}: flip accounting is image-derived"
                );
            }
        }
    }

    /// Encrypted schemes must never store the plaintext verbatim.
    #[test]
    fn encrypted_schemes_hide_plaintext() {
        let engine = OtpEngine::new(&SecretKey::from_seed(5));
        let pattern = b"TOP SECRET DATA!";
        let secret: [u8; 64] = std::array::from_fn(|i| pattern[i % pattern.len()]);
        for kind in SchemeKind::ALL {
            let config = SchemeConfig::new(kind);
            let line = SchemeLine::new(&config, &engine, LineAddr::new(9), &secret);
            let at_rest = line.image();
            if kind.is_encrypted() {
                assert_ne!(at_rest.data(), &secret, "{kind} stores plaintext at rest");
            } else {
                assert_eq!(at_rest.data(), &secret, "{kind} should store plaintext");
            }
        }
    }

    /// Metadata accounting survives dispatch.
    #[test]
    fn metadata_bits_forwarded() {
        let engine = OtpEngine::new(&SecretKey::from_seed(5));
        let line = SchemeLine::new(
            &SchemeConfig::new(SchemeKind::DynDeuce),
            &engine,
            LineAddr::new(0),
            &[0u8; 64],
        );
        assert_eq!(line.metadata_bits(), 33);
    }
}

//! The OTP generation engine (the "AES engine" box in Figs. 2–4).
//!
//! The hot path assembles the counter-mode inputs of a line pad once —
//! the `(address, counter, domain)` prefix is shared and only the
//! sub-block byte varies — and encrypts them in one batched cipher
//! call: [`deuce_aes::Aes128::encrypt_blocks4`] for a single pad,
//! [`deuce_aes::Aes128::encrypt_blocks8`] when a dual-pad read wants
//! both the leading- and trailing-counter pads of a line at once
//! ([`OtpEngine::line_pad_pair`]). Which cipher tier runs those batches
//! (hardware AES, T-tables, or the byte-oriented reference oracle) is
//! resolved by `deuce-aes`'s runtime dispatch — see
//! [`OtpEngine::aes_backend`]; all tiers emit bit-identical pads and
//! are differentially tested to. An optional direct-mapped pad cache
//! ([`OtpEngine::with_pad_cache`]) short-circuits repeated `(address,
//! counter)` line-pad requests, and the scheme layer can warm it
//! speculatively ahead of epoch rollovers via
//! [`OtpEngine::prefill_line_pad`].

use std::sync::Mutex;
use std::time::Instant;

use deuce_aes::{Aes128, AesBackend};

use crate::pad::{BlockPad, Pad};
use crate::pad_cache::{PadCache, PadCacheStats};
use crate::{SecretKey, LINE_BYTES};

/// A line address in the PCM address space.
///
/// Feeding the address into pad generation gives every line its own key
/// stream (Fig. 2b), defeating dictionary attacks across lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(u64);

impl LineAddr {
    /// Creates a line address.
    #[must_use]
    pub fn new(addr: u64) -> Self {
        Self(addr)
    }

    /// The raw address value.
    #[must_use]
    pub fn value(self) -> u64 {
        self.0
    }
}

impl From<u64> for LineAddr {
    fn from(addr: u64) -> Self {
        Self(addr)
    }
}

impl core::fmt::Display for LineAddr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// Domain-separation tags for pad inputs, guaranteeing that line-granularity
/// pads and BLE block pads can never collide even for equal counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PadDomain {
    Line = 0,
    Block = 1,
}

/// Generates one-time pads from `(key, line address, counter)` via AES-128,
/// as in counter-mode encryption (§2.3–2.4 of the paper).
///
/// A 64-byte line pad is the concatenation of four AES blocks, each over a
/// distinct input `(address, counter, sub-block index, domain tag)`; pad
/// uniqueness therefore reduces to uniqueness of `(address, counter)`
/// pairs, which the line counter guarantees.
///
/// # Examples
///
/// ```
/// use deuce_crypto::{LineAddr, OtpEngine, SecretKey};
///
/// let engine = OtpEngine::new(&SecretKey::from_seed(1));
/// let pad_a = engine.line_pad(LineAddr::new(1), 5);
/// let pad_b = engine.line_pad(LineAddr::new(2), 5);
/// assert_ne!(pad_a, pad_b); // distinct lines, distinct pads
/// ```
#[derive(Debug)]
pub struct OtpEngine {
    cipher: Aes128,
    /// Direct-mapped line-pad cache, present only when opted in via
    /// [`Self::with_pad_cache`]. A `Mutex` (never contended: each
    /// simulator owns its engine) keeps the engine `Sync` for shared
    /// `static` use.
    cache: Option<Mutex<PadCache>>,
    /// Wall-clock accounting of from-scratch pad generation, present
    /// only when opted in via [`Self::with_pad_timing`]. Cache hits are
    /// not timed — the stats measure AES work, the span tracer's
    /// `pad_generation` leaf.
    timing: Option<Mutex<PadTimingStats>>,
}

/// Wall-clock totals for from-scratch pad generation.
///
/// Nondeterministic (wall time); never feeds simulated results, only
/// span traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PadTimingStats {
    /// From-scratch generations (cache hits excluded).
    pub calls: u64,
    /// Total wall-clock nanoseconds spent generating.
    pub wall_ns: u64,
}

impl Clone for OtpEngine {
    fn clone(&self) -> Self {
        Self {
            cipher: self.cipher.clone(),
            cache: self
                .cache
                .as_ref()
                .map(|c| Mutex::new(c.lock().expect("pad cache lock poisoned").clone())),
            timing: self
                .timing
                .as_ref()
                .map(|t| Mutex::new(*t.lock().expect("pad timing lock poisoned"))),
        }
    }
}

impl OtpEngine {
    /// Creates an engine keyed with the controller's secret key, on the
    /// process-wide default cipher tier (the fastest the CPU supports,
    /// or the `DEUCE_AES_FORCE` override).
    #[must_use]
    pub fn new(key: &SecretKey) -> Self {
        Self {
            cipher: Aes128::new(key.as_bytes()),
            cache: None,
            timing: None,
        }
    }

    /// Creates an engine that generates pads through the byte-oriented
    /// FIPS-197 reference cipher, one block at a time.
    ///
    /// Pads are bit-identical to [`Self::new`]'s; this constructor
    /// exists so differential tests and benchmarks can compare the
    /// tiers end to end.
    #[must_use]
    pub fn new_reference(key: &SecretKey) -> Self {
        Self::new(key).with_aes_backend(AesBackend::Reference)
    }

    /// Pins the engine's cipher to a specific tier, overriding the
    /// process default — pad bytes are identical on every tier.
    ///
    /// # Panics
    ///
    /// Panics if `backend` is unavailable on this host (hw on a CPU
    /// without AES support).
    #[must_use]
    pub fn with_aes_backend(mut self, backend: AesBackend) -> Self {
        self.cipher = self.cipher.with_backend(backend);
        self
    }

    /// The cipher tier this engine's pads are generated on.
    #[must_use]
    pub fn aes_backend(&self) -> AesBackend {
        self.cipher.backend()
    }

    /// Attaches a direct-mapped line-pad cache with at least `entries`
    /// slots (rounded up to a power of two).
    ///
    /// Cached pads are keyed `(address, counter)` — a pure function of
    /// the key stream — so entries never go stale and need no
    /// invalidation; conflicting pairs simply replace each other.
    /// Caching changes only *when* AES runs, never pad bytes.
    #[must_use]
    pub fn with_pad_cache(mut self, entries: usize) -> Self {
        self.cache = Some(Mutex::new(PadCache::new(entries)));
        self
    }

    /// Lifetime hit/miss totals of the pad cache, or `None` when no
    /// cache is attached.
    #[must_use]
    pub fn pad_cache_stats(&self) -> Option<PadCacheStats> {
        self.cache
            .as_ref()
            .map(|c| c.lock().expect("pad cache lock poisoned").stats())
    }

    /// Starts wall-clock timing of from-scratch line-pad generation,
    /// for span tracing. Adds one `Instant::now` pair per cache-missed
    /// [`Self::line_pad`] call; pad bytes are unaffected.
    #[must_use]
    pub fn with_pad_timing(mut self) -> Self {
        self.timing = Some(Mutex::new(PadTimingStats::default()));
        self
    }

    /// Lifetime generation-call/wall-time totals, or `None` when timing
    /// was not enabled.
    #[must_use]
    pub fn pad_timing_stats(&self) -> Option<PadTimingStats> {
        self.timing
            .as_ref()
            .map(|t| *t.lock().expect("pad timing lock poisoned"))
    }

    /// Builds the 16-byte counter-mode input shared by all sub-blocks
    /// of a pad: address, 48-bit counter, and domain tag. Byte 14 (the
    /// sub-block index) is left zero for the caller to vary.
    #[inline]
    fn pad_input(addr: LineAddr, counter: u64, domain: PadDomain) -> [u8; 16] {
        let mut input = [0u8; 16];
        input[..8].copy_from_slice(&addr.value().to_le_bytes());
        // 48-bit counter field (LineCounter enforces width <= 48).
        input[8..14].copy_from_slice(&counter.to_le_bytes()[..6]);
        input[15] = domain as u8;
        input
    }

    /// Generates a line pad from scratch (no cache involvement): four
    /// counter blocks through one batched cipher call, on whatever tier
    /// the cipher dispatched to.
    fn generate_line_pad(&self, addr: LineAddr, counter: u64) -> Pad {
        let input = Self::pad_input(addr, counter, PadDomain::Line);
        let mut blocks = [input; 4];
        for (sub, block) in blocks.iter_mut().enumerate() {
            block[14] = sub as u8;
        }
        let cts = self.cipher.encrypt_blocks4(&blocks);
        let mut bytes = [0u8; LINE_BYTES];
        for (sub, ct) in cts.iter().enumerate() {
            bytes[sub * 16..sub * 16 + 16].copy_from_slice(ct);
        }
        Pad::from_bytes(bytes)
    }

    /// Generates two line pads of the same address from scratch in one
    /// 8-block batched cipher call — the dual-pad read's AES work,
    /// issued wide enough to keep the hardware pipeline full.
    fn generate_line_pad_pair(&self, addr: LineAddr, ctr_a: u64, ctr_b: u64) -> (Pad, Pad) {
        let input_a = Self::pad_input(addr, ctr_a, PadDomain::Line);
        let input_b = Self::pad_input(addr, ctr_b, PadDomain::Line);
        let mut blocks = [input_a, input_a, input_a, input_a, input_b, input_b, input_b, input_b];
        for (i, block) in blocks.iter_mut().enumerate() {
            block[14] = (i % 4) as u8;
        }
        let cts = self.cipher.encrypt_blocks8(&blocks);
        let mut bytes_a = [0u8; LINE_BYTES];
        let mut bytes_b = [0u8; LINE_BYTES];
        for sub in 0..4 {
            bytes_a[sub * 16..sub * 16 + 16].copy_from_slice(&cts[sub]);
            bytes_b[sub * 16..sub * 16 + 16].copy_from_slice(&cts[4 + sub]);
        }
        (Pad::from_bytes(bytes_a), Pad::from_bytes(bytes_b))
    }

    /// [`Self::generate_line_pad`], timed when timing is enabled.
    fn timed_generate_line_pad(&self, addr: LineAddr, counter: u64) -> Pad {
        let Some(timing) = &self.timing else {
            return self.generate_line_pad(addr, counter);
        };
        let started = Instant::now();
        let pad = self.generate_line_pad(addr, counter);
        let elapsed = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let mut stats = timing.lock().expect("pad timing lock poisoned");
        stats.calls += 1;
        stats.wall_ns = stats.wall_ns.saturating_add(elapsed);
        pad
    }

    /// [`Self::generate_line_pad_pair`], timed when timing is enabled.
    /// A pair counts as two generation calls sharing one wall-clock
    /// span — the stats stay comparable with the serial path.
    fn timed_generate_line_pad_pair(&self, addr: LineAddr, ctr_a: u64, ctr_b: u64) -> (Pad, Pad) {
        let Some(timing) = &self.timing else {
            return self.generate_line_pad_pair(addr, ctr_a, ctr_b);
        };
        let started = Instant::now();
        let pads = self.generate_line_pad_pair(addr, ctr_a, ctr_b);
        let elapsed = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let mut stats = timing.lock().expect("pad timing lock poisoned");
        stats.calls += 2;
        stats.wall_ns = stats.wall_ns.saturating_add(elapsed);
        pads
    }

    /// Generates the 512-bit pad for a whole line at a given counter value.
    #[must_use]
    pub fn line_pad(&self, addr: LineAddr, counter: u64) -> Pad {
        let Some(cache) = &self.cache else {
            return self.timed_generate_line_pad(addr, counter);
        };
        let mut guard = cache.lock().expect("pad cache lock poisoned");
        if let Some(pad) = guard.lookup(addr.value(), counter) {
            return pad;
        }
        let pad = self.timed_generate_line_pad(addr, counter);
        guard.insert(addr.value(), counter, &pad);
        pad
    }

    /// Generates the pads of one line at two counter values — a
    /// dual-pad DEUCE read's leading and trailing pads — in a single
    /// 8-block batched cipher call when both must be computed.
    ///
    /// Bytes are exactly `(self.line_pad(addr, ctr_a),
    /// self.line_pad(addr, ctr_b))`. Cache accounting: one lookup per
    /// *distinct* counter (equal counters — a line at its epoch start —
    /// collapse to a single [`Self::line_pad`] call), and a lookup that
    /// misses while the other hits falls back to a 4-block generation
    /// for just the missing pad.
    #[must_use]
    pub fn line_pad_pair(&self, addr: LineAddr, ctr_a: u64, ctr_b: u64) -> (Pad, Pad) {
        if ctr_a == ctr_b {
            let pad = self.line_pad(addr, ctr_a);
            return (pad, pad);
        }
        let Some(cache) = &self.cache else {
            return self.timed_generate_line_pad_pair(addr, ctr_a, ctr_b);
        };
        let mut guard = cache.lock().expect("pad cache lock poisoned");
        let found_a = guard.lookup(addr.value(), ctr_a);
        let found_b = guard.lookup(addr.value(), ctr_b);
        match (found_a, found_b) {
            (Some(a), Some(b)) => (a, b),
            (Some(a), None) => {
                let b = self.timed_generate_line_pad(addr, ctr_b);
                guard.insert(addr.value(), ctr_b, &b);
                (a, b)
            }
            (None, Some(b)) => {
                let a = self.timed_generate_line_pad(addr, ctr_a);
                guard.insert(addr.value(), ctr_a, &a);
                (a, b)
            }
            (None, None) => {
                let (a, b) = self.timed_generate_line_pad_pair(addr, ctr_a, ctr_b);
                guard.insert(addr.value(), ctr_a, &a);
                guard.insert(addr.value(), ctr_b, &b);
                (a, b)
            }
        }
    }

    /// Speculatively generates and caches the line pad for `(addr,
    /// counter)` — the scheme layer calls this one write ahead of an
    /// epoch rollover so the full-line re-encryption finds its pad
    /// warm. A no-op without an attached cache, and when the pad is
    /// already resident.
    ///
    /// Prefilling can only change *when* AES runs, never pad bytes, so
    /// simulated results are unaffected; the speculative generation is
    /// counted in [`PadCacheStats::prefills`], not as a miss.
    pub fn prefill_line_pad(&self, addr: LineAddr, counter: u64) {
        let Some(cache) = &self.cache else { return };
        let mut guard = cache.lock().expect("pad cache lock poisoned");
        if guard.contains(addr.value(), counter) {
            return;
        }
        let pad = self.timed_generate_line_pad(addr, counter);
        guard.insert_prefilled(addr.value(), counter, &pad);
    }

    /// Generates the 128-bit pad for one 16-byte AES block of a line
    /// (Block-Level Encryption, §7.1), at that block's own counter value.
    ///
    /// # Panics
    ///
    /// Panics if `block_index >= 4`.
    #[must_use]
    pub fn block_pad(&self, addr: LineAddr, block_index: usize, counter: u64) -> BlockPad {
        assert!(block_index < 4, "block index {block_index} out of range 0..4");
        let mut input = Self::pad_input(addr, counter, PadDomain::Block);
        input[14] = u8::try_from(block_index).expect("checked above");
        BlockPad::from_bytes(self.cipher.encrypt_block(&input))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> OtpEngine {
        OtpEngine::new(&SecretKey::from_seed(42))
    }

    #[test]
    fn pads_are_deterministic() {
        let e = engine();
        let a = e.line_pad(LineAddr::new(3), 9);
        let b = e.line_pad(LineAddr::new(3), 9);
        assert_eq!(a, b);
    }

    #[test]
    fn pads_differ_across_counters() {
        let e = engine();
        assert_ne!(e.line_pad(LineAddr::new(3), 9), e.line_pad(LineAddr::new(3), 10));
    }

    #[test]
    fn pads_differ_across_lines() {
        let e = engine();
        assert_ne!(e.line_pad(LineAddr::new(3), 9), e.line_pad(LineAddr::new(4), 9));
    }

    #[test]
    fn pads_differ_across_keys() {
        let a = OtpEngine::new(&SecretKey::from_seed(1));
        let b = OtpEngine::new(&SecretKey::from_seed(2));
        assert_ne!(a.line_pad(LineAddr::new(3), 9), b.line_pad(LineAddr::new(3), 9));
    }

    #[test]
    fn line_and_block_domains_are_separated() {
        let e = engine();
        let line = e.line_pad(LineAddr::new(7), 5);
        for block in 0..4 {
            let block_pad = e.block_pad(LineAddr::new(7), block, 5);
            assert_ne!(
                &line.as_bytes()[block * 16..block * 16 + 16],
                block_pad.as_bytes().as_slice(),
                "block {block} pad collided with line pad slice"
            );
        }
    }

    #[test]
    fn sub_blocks_of_a_line_pad_differ() {
        let e = engine();
        let pad = e.line_pad(LineAddr::new(1), 1);
        let b = pad.as_bytes();
        assert_ne!(&b[0..16], &b[16..32]);
        assert_ne!(&b[16..32], &b[32..48]);
        assert_ne!(&b[32..48], &b[48..64]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn block_index_bound() {
        let _ = engine().block_pad(LineAddr::new(0), 4, 0);
    }

    #[test]
    fn pad_bits_look_balanced() {
        // Across many pads, the ones-density should be ~50% — this is what
        // makes naive re-encryption flip half the bits of the line.
        let e = engine();
        let mut ones = 0u64;
        let mut total = 0u64;
        for ctr in 0..256u64 {
            let pad = e.line_pad(LineAddr::new(0xdead), ctr);
            ones += pad.as_bytes().iter().map(|b| u64::from(b.count_ones())).sum::<u64>();
            total += 512;
        }
        let density = ones as f64 / total as f64;
        assert!((density - 0.5).abs() < 0.01, "pad density {density}");
    }

    #[test]
    fn cached_engine_returns_identical_pads() {
        let plain = engine();
        let cached = engine().with_pad_cache(64);
        for addr in [0u64, 0x40, 0xdead, u64::MAX] {
            for ctr in [0u64, 1, 7, (1 << 48) - 1] {
                let expected = plain.line_pad(LineAddr::new(addr), ctr);
                // Twice: once to fill the cache, once to hit it.
                assert_eq!(cached.line_pad(LineAddr::new(addr), ctr), expected);
                assert_eq!(cached.line_pad(LineAddr::new(addr), ctr), expected);
            }
        }
        let stats = cached.pad_cache_stats().expect("cache attached");
        assert_eq!(stats.hits, 16, "second round of lookups must all hit");
        assert_eq!(stats.misses, 16);
        assert_eq!(plain.pad_cache_stats(), None);
    }

    #[test]
    fn pad_timing_counts_only_generations() {
        let timed = engine().with_pad_cache(8).with_pad_timing();
        let plain = engine();
        let pad = timed.line_pad(LineAddr::new(9), 2); // miss: timed
        let again = timed.line_pad(LineAddr::new(9), 2); // hit: untimed
        assert_eq!(pad, again);
        assert_eq!(pad, plain.line_pad(LineAddr::new(9), 2), "timing never changes bytes");
        let stats = timed.pad_timing_stats().expect("timing attached");
        assert_eq!(stats.calls, 1, "cache hit must not count");
        assert_eq!(plain.pad_timing_stats(), None);
    }

    #[test]
    fn line_pad_pair_matches_serial_calls() {
        let e = engine();
        let addr = LineAddr::new(0x1234);
        for (a, b) in [(0u64, 1u64), (5, 37), (32, 32), ((1 << 48) - 1, 0)] {
            let (pad_a, pad_b) = e.line_pad_pair(addr, a, b);
            assert_eq!(pad_a, e.line_pad(addr, a), "ctr {a}");
            assert_eq!(pad_b, e.line_pad(addr, b), "ctr {b}");
        }
    }

    #[test]
    fn line_pad_pair_cache_accounting() {
        let cached = engine().with_pad_cache(64);
        let addr = LineAddr::new(0x40);
        // Cold: both lookups miss, one 8-block generation fills both.
        let (a, b) = cached.line_pad_pair(addr, 3, 7);
        let stats = cached.pad_cache_stats().expect("cache attached");
        assert_eq!((stats.hits, stats.misses), (0, 2));
        // Warm: both hit.
        assert_eq!(cached.line_pad_pair(addr, 3, 7), (a, b));
        let stats = cached.pad_cache_stats().expect("cache attached");
        assert_eq!((stats.hits, stats.misses), (2, 2));
        // Mixed: one hit, one miss generated on the 4-block fallback.
        let (a2, c) = cached.line_pad_pair(addr, 3, 9);
        assert_eq!(a2, a);
        assert_eq!(c, engine().line_pad(addr, 9));
        let stats = cached.pad_cache_stats().expect("cache attached");
        assert_eq!((stats.hits, stats.misses), (3, 3));
        // Equal counters collapse to one lookup.
        let _ = cached.line_pad_pair(addr, 11, 11);
        let stats = cached.pad_cache_stats().expect("cache attached");
        assert_eq!((stats.hits, stats.misses), (3, 4));
    }

    #[test]
    fn prefill_is_a_noop_without_a_cache() {
        let e = engine();
        e.prefill_line_pad(LineAddr::new(1), 1);
        assert_eq!(e.pad_cache_stats(), None);
    }

    #[test]
    fn prefilled_pad_is_identical_and_hits() {
        let plain = engine();
        let cached = engine().with_pad_cache(64);
        let addr = LineAddr::new(0xbeef);
        cached.prefill_line_pad(addr, 32);
        cached.prefill_line_pad(addr, 32); // already resident: no-op
        let stats = cached.pad_cache_stats().expect("cache attached");
        assert_eq!((stats.hits, stats.misses, stats.prefills), (0, 0, 1));
        assert_eq!(cached.line_pad(addr, 32), plain.line_pad(addr, 32));
        let stats = cached.pad_cache_stats().expect("cache attached");
        assert_eq!((stats.hits, stats.misses, stats.prefills), (1, 0, 1));
    }

    #[test]
    fn prefill_timing_counts_a_generation() {
        let timed = engine().with_pad_cache(8).with_pad_timing();
        timed.prefill_line_pad(LineAddr::new(2), 64);
        let stats = timed.pad_timing_stats().expect("timing attached");
        assert_eq!(stats.calls, 1, "a prefill is real AES work");
        let _ = timed.line_pad(LineAddr::new(2), 64); // hit: untimed
        let stats = timed.pad_timing_stats().expect("timing attached");
        assert_eq!(stats.calls, 1);
    }

    #[test]
    fn backend_override_never_changes_pads() {
        let default_engine = engine();
        for backend in deuce_aes::available_backends() {
            let pinned = engine().with_aes_backend(*backend);
            assert_eq!(pinned.aes_backend(), *backend);
            for ctr in [0u64, 1, 31, 32, 1000] {
                assert_eq!(
                    pinned.line_pad(LineAddr::new(0x77), ctr),
                    default_engine.line_pad(LineAddr::new(0x77), ctr),
                    "{backend} ctr {ctr}"
                );
                assert_eq!(
                    pinned.block_pad(LineAddr::new(0x77), 2, ctr),
                    default_engine.block_pad(LineAddr::new(0x77), 2, ctr),
                    "{backend} ctr {ctr}"
                );
            }
        }
    }

    #[test]
    fn clone_carries_cache_contents() {
        let cached = engine().with_pad_cache(8);
        let pad = cached.line_pad(LineAddr::new(5), 5); // miss, fills slot
        let cloned = cached.clone();
        assert_eq!(cloned.line_pad(LineAddr::new(5), 5), pad);
        let stats = cloned.pad_cache_stats().expect("cache attached");
        assert_eq!((stats.hits, stats.misses), (1, 1), "clone starts from parent's slots");
    }
}

//! Online detection of malicious write streams (§7.3, after \[23\]).
//!
//! Wear leveling slows an endurance attack but cannot stop a determined
//! one; the practical defense is to *detect* abnormal write
//! concentration online and throttle the offender. This detector keeps
//! aging per-line write counters over a sliding window and raises an
//! alarm when any line's share of recent writes exceeds a threshold —
//! benign workloads (even Zipf-skewed ones) stay far below it, while
//! hammering attacks cross it within one window.

use std::collections::HashMap;

/// Verdict for one observed write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteVerdict {
    /// Nothing suspicious.
    Benign,
    /// This line's recent write share crossed the threshold.
    Suspicious {
        /// Writes to the line within the current window.
        line_writes: u32,
    },
}

/// Sliding-window write-rate detector.
///
/// # Examples
///
/// ```
/// use deuce_wear::{AttackDetector, WriteVerdict};
///
/// let mut detector = AttackDetector::new(1000, 0.10);
/// let mut alarmed = false;
/// for _ in 0..500 {
///     alarmed |= detector.observe(42) != WriteVerdict::Benign;
/// }
/// assert!(alarmed, "hammering one line must trip the detector");
/// ```
#[derive(Debug, Clone)]
pub struct AttackDetector {
    window: u32,
    threshold: f64,
    counts: HashMap<u64, u32>,
    writes_in_window: u32,
    alarms: u64,
}

impl AttackDetector {
    /// Creates a detector: within any aging window of `window` writes, a
    /// line taking more than `threshold` of the traffic is flagged.
    ///
    /// # Panics
    ///
    /// Panics unless `window > 0` and `threshold` is in `(0, 1]`.
    #[must_use]
    pub fn new(window: u32, threshold: f64) -> Self {
        assert!(window > 0, "window must be positive");
        assert!(threshold > 0.0 && threshold <= 1.0, "threshold in (0, 1]");
        Self {
            window,
            threshold,
            counts: HashMap::new(),
            writes_in_window: 0,
            alarms: 0,
        }
    }

    /// Total alarms raised.
    #[must_use]
    pub fn alarms(&self) -> u64 {
        self.alarms
    }

    /// Observes one line write and classifies it.
    pub fn observe(&mut self, line: u64) -> WriteVerdict {
        self.writes_in_window += 1;
        let count = self.counts.entry(line).or_insert(0);
        *count += 1;
        // Halving at each window boundary lets a steady writer
        // accumulate up to 2x its per-window count (geometric
        // carryover), so the alarm bound includes that factor: a line
        // sustains `threshold` of the traffic before tripping.
        let verdict = if f64::from(*count) > self.threshold * 2.0 * f64::from(self.window) {
            self.alarms += 1;
            WriteVerdict::Suspicious { line_writes: *count }
        } else {
            WriteVerdict::Benign
        };
        if self.writes_in_window >= self.window {
            // Age: halve everything (cheap approximation of a sliding
            // window; keeps hot lines visible across window boundaries).
            self.writes_in_window = 0;
            self.counts.retain(|_, c| {
                *c /= 2;
                *c > 0
            });
        }
        verdict
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hammering_trips_quickly() {
        let mut d = AttackDetector::new(1000, 0.1);
        let mut first_alarm = None;
        for i in 0..1000u32 {
            if d.observe(7) != WriteVerdict::Benign && first_alarm.is_none() {
                first_alarm = Some(i);
            }
        }
        assert_eq!(first_alarm, Some(200), "alarm at the threshold crossing");
        assert!(d.alarms() > 700);
    }

    #[test]
    fn uniform_traffic_never_trips() {
        let mut d = AttackDetector::new(1000, 0.1);
        for i in 0..10_000u64 {
            assert_eq!(d.observe(i % 64), WriteVerdict::Benign, "write {i}");
        }
    }

    #[test]
    fn small_set_attack_still_trips() {
        // 4 lines at 25% each > 10% threshold.
        let mut d = AttackDetector::new(1000, 0.1);
        let mut alarmed = false;
        for i in 0..2000u64 {
            alarmed |= d.observe(i % 4) != WriteVerdict::Benign;
        }
        assert!(alarmed);
    }

    #[test]
    fn aging_forgets_old_hotness() {
        let mut d = AttackDetector::new(100, 0.5);
        // 40 writes to line 1 (below 50-threshold), then cold traffic.
        for _ in 0..40 {
            assert_eq!(d.observe(1), WriteVerdict::Benign);
        }
        for i in 0..600u64 {
            let v = d.observe(100 + i % 60);
            assert_eq!(v, WriteVerdict::Benign, "background write {i}");
        }
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn bad_threshold_rejected() {
        let _ = AttackDetector::new(10, 1.5);
    }
}

//! DynDEUCE: morphing from DEUCE to FNW mid-epoch (§4.6).
//!
//! DEUCE loses to plain FNW when a workload rewrites most words of a line
//! every write (Gems, soplex). DynDEUCE keeps DEUCE's 32 tracking bits
//! plus a single *mode bit*: every epoch starts in DEUCE mode, and on each
//! in-epoch write the controller computes the exact bit flips both
//! encodings would cost (Fig. 11); if FNW is cheaper the line switches to
//! FNW mode — repurposing the 32 modified bits as FNW flip bits — until
//! the next epoch resets it to DEUCE.

use deuce_crypto::{EpochInterval, LineAddr, LineBytes, OtpEngine, Pad, VirtualCounterPair};
use deuce_nvm::{LineImage, MetaBits};

use crate::config::WordSize;
use crate::core::{assert_counter_width, prefill_next_epoch_pad, CtrState};
use crate::fnw::{fnw_decode, fnw_encode};
use crate::scheme::{LineMut, LineRef, LineScheme, SchemeCell};
use crate::WriteOutcome;

/// Index of the mode bit within the 33-bit metadata (bits `0..32` are the
/// modified/flip bits).
const MODE_BIT: u32 = 32;

/// Per-line DynDEUCE state: the counter plus the raw 33-bit metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DynDeuceState {
    /// The line counter.
    pub ctr: CtrState,
    /// Bits 0..32: modified bits (DEUCE mode) or flip bits (FNW mode).
    /// Bit 32: mode (0 = DEUCE, 1 = FNW).
    pub meta: u64,
}

/// The DynDEUCE scheme parameters shared by every line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DynDeuceScheme {
    /// Epoch interval (full re-encryption period; resets mode to DEUCE).
    pub epoch: EpochInterval,
    /// Line-counter width in bits.
    pub counter_bits: u32,
}

impl DynDeuceScheme {
    /// Word size is fixed at 2 bytes: the tracking bits must be
    /// repurposable as 16-bit-segment FNW flip bits, so the granularities
    /// must match (§4.6).
    const WORD: WordSize = WordSize::Bytes2;

    /// Creates the scheme.
    ///
    /// # Panics
    ///
    /// Panics if `counter_bits` is 0 or greater than 48.
    #[must_use]
    pub fn new(epoch: EpochInterval, counter_bits: u32) -> Self {
        assert_counter_width(counter_bits);
        Self { epoch, counter_bits }
    }

    fn meta_bits(state: &DynDeuceState) -> MetaBits {
        MetaBits::from_raw(state.meta, 33)
    }

    fn tracking_bits(state: &DynDeuceState) -> MetaBits {
        MetaBits::from_raw(state.meta & 0xFFFF_FFFF, 32)
    }

    fn in_fnw_mode(state: &DynDeuceState) -> bool {
        Self::meta_bits(state).get(MODE_BIT)
    }

    /// The stored line and metadata a DEUCE-mode encoding would produce.
    /// `pad` is the line pad for the current leading counter.
    fn deuce_candidate(
        self,
        pad: &Pad,
        stored: &LineBytes,
        shadow: &LineBytes,
        state: &DynDeuceState,
        data: &LineBytes,
    ) -> (LineBytes, MetaBits) {
        let w = Self::WORD.bytes();
        let mut modified = Self::tracking_bits(state);
        for word in 0..Self::WORD.words_per_line() {
            let range = word * w..(word + 1) * w;
            if data[range.clone()] != shadow[range] {
                modified.set(word as u32, true);
            }
        }
        let mut candidate = *stored;
        for word in 0..Self::WORD.words_per_line() {
            if modified.get(word as u32) {
                for (offset, i) in (word * w..(word + 1) * w).enumerate() {
                    candidate[i] = data[i] ^ pad.word(word, w)[offset];
                }
            }
        }
        (candidate, MetaBits::from_raw(modified.raw(), 33)) // mode bit stays 0
    }

    /// The stored line and metadata an FNW-mode encoding would produce:
    /// full re-encryption with the leading pad, flip bits repurposed from
    /// the current tracking bits, mode bit set.
    fn fnw_candidate(
        self,
        pad: &Pad,
        stored: &LineBytes,
        state: &DynDeuceState,
        data: &LineBytes,
    ) -> (LineBytes, MetaBits) {
        let ciphertext = pad.xor(data);
        let enc = fnw_encode(&ciphertext, stored, &Self::tracking_bits(state), 16);
        (
            enc.stored,
            MetaBits::from_raw(enc.flip_bits.raw() | 1 << MODE_BIT, 33),
        )
    }
}

impl LineScheme for DynDeuceScheme {
    type State = DynDeuceState;

    fn needs_shadow(&self) -> bool {
        true
    }

    fn metadata_bits(&self) -> u32 {
        33
    }

    fn init(
        &self,
        engine: &OtpEngine,
        addr: LineAddr,
        initial: &LineBytes,
    ) -> (LineBytes, DynDeuceState) {
        (engine.line_pad(addr, 0).xor(initial), DynDeuceState::default())
    }

    fn write(
        &self,
        engine: &OtpEngine,
        addr: LineAddr,
        line: LineMut<'_, DynDeuceState>,
        data: &LineBytes,
    ) -> WriteOutcome {
        let old_image = LineImage::new(*line.stored, Self::meta_bits(line.state));
        let counter_flips = line.state.ctr.bump(self.counter_bits);
        let v = VirtualCounterPair::derive(line.state.ctr.value(), self.epoch);

        let epoch_started = v.is_epoch_start();
        if epoch_started {
            // Mode returns to DEUCE at every epoch start (§4.6).
            *line.stored = engine.line_pad(addr, v.lctr()).xor(data);
            line.state.meta = 0;
        } else if Self::in_fnw_mode(line.state) {
            // Committed to FNW until the next epoch: full re-encryption
            // with the fresh pad, FNW-encoded against the stored bits.
            let ciphertext = engine.line_pad(addr, v.lctr()).xor(data);
            let enc = fnw_encode(&ciphertext, line.stored, &Self::tracking_bits(line.state), 16);
            *line.stored = enc.stored;
            line.state.meta = enc.flip_bits.raw() | 1 << MODE_BIT;
        } else {
            // DEUCE mode: evaluate both encodings exactly (Fig. 11).
            let pad = engine.line_pad(addr, v.lctr());
            let (deuce_stored, deuce_meta) =
                self.deuce_candidate(&pad, line.stored, line.shadow, line.state, data);
            let (fnw_stored, fnw_meta) = self.fnw_candidate(&pad, line.stored, line.state, data);

            let deuce_img = LineImage::new(deuce_stored, deuce_meta);
            let fnw_img = LineImage::new(fnw_stored, fnw_meta);
            let deuce_flips = old_image.flips_to(&deuce_img).total();
            let fnw_flips = old_image.flips_to(&fnw_img).total();

            if fnw_flips < deuce_flips {
                *line.stored = fnw_stored;
                line.state.meta = fnw_meta.raw();
            } else {
                *line.stored = deuce_stored;
                line.state.meta = deuce_meta.raw();
            }
        }
        *line.shadow = *data;
        // Warm the next epoch's full-line pad while this write drains.
        prefill_next_epoch_pad(engine, addr, line.state.ctr.value(), self.counter_bits, self.epoch);
        WriteOutcome::from_images(
            old_image,
            LineImage::new(*line.stored, Self::meta_bits(line.state)),
            counter_flips,
            epoch_started,
        )
    }

    fn read(&self, engine: &OtpEngine, addr: LineAddr, line: LineRef<'_, DynDeuceState>) -> LineBytes {
        let v = VirtualCounterPair::derive(line.state.ctr.value(), self.epoch);
        if Self::in_fnw_mode(line.state) {
            let ciphertext = fnw_decode(line.stored, &Self::tracking_bits(line.state), 16);
            engine.line_pad(addr, v.lctr()).xor(&ciphertext)
        } else {
            let (pad_lctr, pad_tctr) = engine.line_pad_pair(addr, v.lctr(), v.tctr());
            let w = Self::WORD.bytes();
            let tracking = Self::tracking_bits(line.state);
            let mut out = [0u8; deuce_crypto::LINE_BYTES];
            for word in 0..Self::WORD.words_per_line() {
                let pad = if tracking.get(word as u32) {
                    pad_lctr.word(word, w)
                } else {
                    pad_tctr.word(word, w)
                };
                for (offset, i) in (word * w..(word + 1) * w).enumerate() {
                    out[i] = line.stored[i] ^ pad[offset];
                }
            }
            out
        }
    }

    fn image(&self, line: LineRef<'_, DynDeuceState>) -> LineImage {
        LineImage::new(*line.stored, Self::meta_bits(line.state))
    }
}

/// One memory line under DynDEUCE.
///
/// # Examples
///
/// ```
/// use deuce_crypto::{EpochInterval, LineAddr, OtpEngine, SecretKey};
/// use deuce_schemes::DynDeuceLine;
///
/// let engine = OtpEngine::new(&SecretKey::from_seed(0));
/// let mut line = DynDeuceLine::new(&engine, LineAddr::new(0), &[0u8; 64], EpochInterval::DEFAULT, 28);
/// let data = [0x5Au8; 64]; // dense write: every word changes
/// let _ = line.write(&engine, &data);
/// assert_eq!(line.read(&engine), data);
/// ```
pub type DynDeuceLine = SchemeCell<DynDeuceScheme>;

impl DynDeuceLine {
    /// Initializes the line (encrypted in full at counter 0, DEUCE mode).
    #[must_use]
    pub fn new(
        engine: &OtpEngine,
        addr: LineAddr,
        initial: &LineBytes,
        epoch: EpochInterval,
        counter_bits: u32,
    ) -> Self {
        Self::with_scheme(DynDeuceScheme::new(epoch, counter_bits), engine, addr, initial)
    }

    /// Whether the line is currently in FNW mode.
    #[must_use]
    pub fn is_fnw_mode(&self) -> bool {
        DynDeuceScheme::in_fnw_mode(self.state())
    }

    /// Current counter value.
    #[must_use]
    pub fn counter(&self) -> u64 {
        self.state().ctr.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deuce_crypto::SecretKey;

    fn engine() -> OtpEngine {
        OtpEngine::new(&SecretKey::from_seed(21))
    }

    fn new_line(e: &OtpEngine, epoch: u64) -> DynDeuceLine {
        DynDeuceLine::new(
            e,
            LineAddr::new(5),
            &[0u8; 64],
            EpochInterval::new(epoch).unwrap(),
            28,
        )
    }

    #[test]
    fn sparse_writes_stay_in_deuce_mode() {
        let e = engine();
        let mut l = new_line(&e, 32);
        for i in 1..20u8 {
            let mut data = [0u8; 64];
            data[0] = i;
            let _ = l.write(&e, &data);
            assert!(!l.is_fnw_mode(), "write {i} should stay DEUCE");
            assert_eq!(l.read(&e), data);
        }
    }

    #[test]
    fn dense_writes_switch_to_fnw_mode() {
        let e = engine();
        let mut l = new_line(&e, 32);
        let mut switched = false;
        for i in 1..20u64 {
            let mut data = [0u8; 64];
            for (j, b) in data.iter_mut().enumerate() {
                *b = (i as u8).wrapping_mul(31).wrapping_add(j as u8);
            }
            let _ = l.write(&e, &data);
            assert_eq!(l.read(&e), data, "write {i}");
            switched |= l.is_fnw_mode();
        }
        assert!(switched, "dense writes should have triggered FNW mode");
    }

    #[test]
    fn mode_resets_at_epoch_start() {
        let e = engine();
        let mut l = new_line(&e, 4);
        // Force FNW mode with dense writes.
        for i in 1..4u64 {
            let mut data = [0u8; 64];
            for (j, b) in data.iter_mut().enumerate() {
                *b = (i as u8).wrapping_add(j as u8).wrapping_mul(13);
            }
            let _ = l.write(&e, &data);
        }
        assert!(l.is_fnw_mode());
        let data = [7u8; 64];
        let o = l.write(&e, &data); // 4th write: epoch start
        assert!(o.epoch_started);
        assert!(!l.is_fnw_mode(), "epoch start returns to DEUCE mode");
        assert_eq!(l.read(&e), data);
    }

    #[test]
    fn chooses_whichever_flips_less() {
        // DynDEUCE's write never flips more bits than the better of a
        // freshly-evaluated DEUCE or FNW candidate would.
        let e = engine();
        let mut l = new_line(&e, 32);
        let mut data = [0u8; 64];
        for round in 1..30u8 {
            for b in data.iter_mut().take(usize::from(round % 64) + 1) {
                *b = b.wrapping_add(round);
            }
            let before_read = l.read(&e);
            assert_eq!(before_read.len(), 64);
            let o = l.write(&e, &data);
            assert_eq!(l.read(&e), data, "round {round}");
            // Regression bound: never exceed full avalanche + all metadata.
            assert!(o.flips.total() <= 512 / 2 + 60);
        }
    }

    #[test]
    fn fnw_mode_persists_until_epoch() {
        let e = engine();
        let mut l = new_line(&e, 32);
        // Dense write to force FNW.
        let mut data = [0u8; 64];
        for (j, b) in data.iter_mut().enumerate() {
            *b = j as u8 ^ 0xA5;
        }
        let _ = l.write(&e, &data);
        if !l.is_fnw_mode() {
            // One more dense write to be sure.
            for b in data.iter_mut() {
                *b = b.wrapping_add(0x33);
            }
            let _ = l.write(&e, &data);
        }
        assert!(l.is_fnw_mode());
        // A sparse write now does NOT switch back (until epoch).
        data[0] ^= 1;
        let _ = l.write(&e, &data);
        assert!(l.is_fnw_mode(), "mode switch back mid-epoch is impossible");
        assert_eq!(l.read(&e), data);
    }
}

#!/usr/bin/env bash
# Tier-1 verification: hermetic build, full test suite, lint.
#
# The workspace has zero external dependencies, so everything runs with
# --offline on a bare toolchain. Run from the repository root:
#
#   bash scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline --workspace"
cargo build --release --offline --workspace
DEUCE=target/release/deuce

echo "==> cargo test -q --offline --workspace"
cargo test -q --offline --workspace

echo "==> AES differential suites, once per dispatch tier (FIPS-197 + randomized)"
TIERS="$("$DEUCE" aes-backend | awk -F'\t' '$1 == "available" {print $2}')"
DETECTED="$("$DEUCE" aes-backend | awk -F'\t' '$1 == "detected" {print $2}')"
echo "    detected: $DETECTED; exercising: $TIERS"
# Cross-check dispatch against the kernel's own CPU flags: if this host
# has hardware AES, the hw tier must be in the exercised set — a silent
# fall-back to ttable here would leave the fast path untested.
if grep -q '^flags.* aes' /proc/cpuinfo 2>/dev/null; then
    case " $TIERS " in
        *" hw "*) ;;
        *)
            echo "FAIL: /proc/cpuinfo advertises AES but the hw tier is not available" >&2
            exit 1
            ;;
    esac
fi
case " $TIERS " in
    *" $DETECTED "*) ;;
    *)
        echo "FAIL: detected tier '$DETECTED' missing from available set '$TIERS'" >&2
        exit 1
        ;;
esac
for tier in $TIERS; do
    echo "    DEUCE_AES_FORCE=$tier"
    DEUCE_AES_FORCE=$tier cargo test -q --offline -p deuce-aes --test differential
    DEUCE_AES_FORCE=$tier cargo test -q --offline -p deuce-crypto --test engine_differential
done

echo "==> cargo clippy -q --offline --workspace --all-targets -- -D warnings"
cargo clippy -q --offline --workspace --all-targets -- -D warnings

echo "==> cargo doc --offline --no-deps (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc -q --offline --no-deps --workspace

echo "==> hot_paths bench smoke (one untimed iteration per benchmark)"
DEUCE_BENCH_SMOKE=1 cargo bench -q --offline -p deuce-bench --bench hot_paths > /dev/null

echo "==> telemetry smoke test (deterministic report vs golden)"
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
"$DEUCE" gen --benchmark libq --writes 2000 --lines 64 --seed 42 \
    -o "$SMOKE_DIR/smoke.trace" > /dev/null
"$DEUCE" run --trace "$SMOKE_DIR/smoke.trace" --scheme deuce \
    --telemetry "$SMOKE_DIR/smoke.jsonl" --sample-every 256 > /dev/null
"$DEUCE" report "$SMOKE_DIR/smoke.jsonl" > "$SMOKE_DIR/smoke.report"
# Everything above the profiling section is deterministic; wall-clock
# stage timings below it are not.
awk '/^== profiling/{exit} {print}' "$SMOKE_DIR/smoke.report" \
    > "$SMOKE_DIR/smoke.report.stable"
diff -u results/telemetry/golden_smoke_report.txt "$SMOKE_DIR/smoke.report.stable"

echo "==> fault-injection smoke test (deterministic report vs golden)"
"$DEUCE" run --trace "$SMOKE_DIR/smoke.trace" --scheme encdcw \
    --faults --endurance-scale 2e-8 --ecp-entries 2 --spare-lines 4 \
    --telemetry "$SMOKE_DIR/faults.jsonl" --sample-every 256 > /dev/null
"$DEUCE" report "$SMOKE_DIR/faults.jsonl" > "$SMOKE_DIR/faults.report"
awk '/^== profiling/{exit} {print}' "$SMOKE_DIR/faults.report" \
    > "$SMOKE_DIR/faults.report.stable"
diff -u results/telemetry/golden_faults_report.txt "$SMOKE_DIR/faults.report.stable"

echo "==> sharded-sweep smoke test (shard + merge == unsharded, byte-identical)"
"$DEUCE" sweep --trace "$SMOKE_DIR/smoke.trace" > "$SMOKE_DIR/sweep.unsharded"
"$DEUCE" sweep --trace "$SMOKE_DIR/smoke.trace" \
    --shard 0/2 --manifest "$SMOKE_DIR/shard0.jsonl" > /dev/null
"$DEUCE" sweep --trace "$SMOKE_DIR/smoke.trace" \
    --shard 1/2 --manifest "$SMOKE_DIR/shard1.jsonl" > /dev/null
"$DEUCE" merge "$SMOKE_DIR/shard0.jsonl" "$SMOKE_DIR/shard1.jsonl" \
    > "$SMOKE_DIR/sweep.merged"
diff -u "$SMOKE_DIR/sweep.unsharded" "$SMOKE_DIR/sweep.merged"

echo "==> streaming-run smoke test (run --stream == materialised run)"
"$DEUCE" run --trace "$SMOKE_DIR/smoke.trace" --scheme deuce > "$SMOKE_DIR/run.materialised"
"$DEUCE" run --trace "$SMOKE_DIR/smoke.trace" --scheme deuce --stream > "$SMOKE_DIR/run.streamed"
diff -u "$SMOKE_DIR/run.materialised" "$SMOKE_DIR/run.streamed"

echo "==> forced-tier smoke test (every tier end-to-end byte-identical)"
# Every tier must produce the identical run summary; only the
# aes_backend row — which names the tier and exists to differ — is
# stripped before the diff.
for tier in $TIERS; do
    DEUCE_AES_FORCE=$tier "$DEUCE" run --trace "$SMOKE_DIR/smoke.trace" --scheme deuce \
        > "$SMOKE_DIR/run.$tier"
    grep -q "^aes_backend	$tier\$" "$SMOKE_DIR/run.$tier"
    grep -v '^aes_backend' "$SMOKE_DIR/run.$tier" \
        | diff -u <(grep -v '^aes_backend' "$SMOKE_DIR/run.materialised") -
done

echo "==> paged-store smoke test (page-file run == arena run, byte-identical)"
"$DEUCE" gen --benchmark mcf --writes 1000 --lines 192 --seed 9 \
    -o "$SMOKE_DIR/paged.trace" > /dev/null
"$DEUCE" run --trace "$SMOKE_DIR/paged.trace" --scheme deuce > "$SMOKE_DIR/paged.arena"
# A 3-page budget holds all 192 lines: nothing evicts, so the summary —
# including the line_store_bytes residency gauge — must match the arena
# run byte for byte once the store_* rows are stripped.
"$DEUCE" run --trace "$SMOKE_DIR/paged.trace" --scheme deuce \
    --store-file "$SMOKE_DIR/smoke.pages" --resident-pages 3 > "$SMOKE_DIR/paged.full"
grep -v '^store_' "$SMOKE_DIR/paged.full" | diff -u "$SMOKE_DIR/paged.arena" -
# A 1-page budget faults and evicts throughout; every simulated result
# still matches, only the residency gauge may differ (evicted slots are
# no longer resident at end of run).
"$DEUCE" run --trace "$SMOKE_DIR/paged.trace" --scheme deuce \
    --store-file "$SMOKE_DIR/smoke.pages" --resident-pages 1 > "$SMOKE_DIR/paged.tiny"
grep -v '^store_\|^line_store_bytes' "$SMOKE_DIR/paged.tiny" \
    | diff -u <(grep -v '^line_store_bytes' "$SMOKE_DIR/paged.arena") -
evictions="$(awk -F'\t' '$1 == "store_page_evictions" {print $2}' "$SMOKE_DIR/paged.tiny")"
[ -n "$evictions" ] && [ "$evictions" -gt 0 ]

echo "==> observability smoke test (span trace, watch --once, flight dump vs golden)"
# Span tracing: the exported file is Chrome trace-event JSON
# (Perfetto-loadable); timings are wall-clock so only shape is checked.
"$DEUCE" run --trace "$SMOKE_DIR/smoke.trace" --scheme deuce \
    --trace-out "$SMOKE_DIR/spans.json" > /dev/null
grep -q '"traceEvents"' "$SMOKE_DIR/spans.json"
grep -q 'stage:scheme' "$SMOKE_DIR/spans.json"
# watch --once over a finished sweep manifest: one deterministic
# snapshot showing the full grid complete.
"$DEUCE" sweep --trace "$SMOKE_DIR/smoke.trace" \
    --manifest "$SMOKE_DIR/watch-manifest.jsonl" > /dev/null
"$DEUCE" watch --once "$SMOKE_DIR/watch-manifest.jsonl" > "$SMOKE_DIR/watch.out"
grep -q '16/16 cells' "$SMOKE_DIR/watch.out"
grep -q "$(printf '\tdone')" "$SMOKE_DIR/watch.out"
# Flight recorder: the forced-UE fault run dumps its ring; every field
# is a simulated quantity, so the dump diffs against a golden.
"$DEUCE" run --trace "$SMOKE_DIR/smoke.trace" --scheme encdcw \
    --faults --endurance-scale 2e-8 --ecp-entries 2 --spare-lines 4 \
    --flight-recorder 32 --telemetry "$SMOKE_DIR/flight.jsonl" --sample-every 256 > /dev/null
diff -u results/telemetry/golden_flight_dump.jsonl "$SMOKE_DIR/flight.jsonl.flight.jsonl"

echo "==> serve smoke test (sharded service == single-threaded replay, byte-identical)"
# Two tenants through four worker shards; stdout carries only the
# deterministic per-tenant blocks, so it must diff clean against the
# single-threaded --replay of the same flags.
"$DEUCE" serve --tenants 2 --shards 4 --requests 800 --queue-depth 128 \
    --telemetry "$SMOKE_DIR/serve.jsonl" --progress "$SMOKE_DIR/serve-progress.jsonl" \
    > "$SMOKE_DIR/serve.out" 2> /dev/null
"$DEUCE" serve --tenants 2 --requests 800 --replay > "$SMOKE_DIR/serve.replay"
diff -u "$SMOKE_DIR/serve.replay" "$SMOKE_DIR/serve.out"
# The serve layer's spans ride the standard telemetry pipeline: the
# report's span table names the serve stages.
"$DEUCE" report "$SMOKE_DIR/serve.jsonl" > "$SMOKE_DIR/serve.report"
grep -q '^== spans' "$SMOKE_DIR/serve.report"
grep -q 'shard:drain' "$SMOKE_DIR/serve.report"
grep -q 'serve:apply' "$SMOKE_DIR/serve.report"
# watch understands the progress stream and shows the run complete.
"$DEUCE" watch --once "$SMOKE_DIR/serve-progress.jsonl" > "$SMOKE_DIR/serve-watch.out"
grep -q 'requests applied' "$SMOKE_DIR/serve-watch.out"
grep -q "$(printf '\tdone')" "$SMOKE_DIR/serve-watch.out"
# The replay contract holds for per-tenant page files too, store_*
# paging counters included: fingerprinting visits lines in sorted
# address order, so the fault/eviction sequence is pinned even at a
# thrash-inducing 2-page resident budget. (Fresh directories per run —
# reusing a warm page file legitimately changes the paging counters.)
mkdir -p "$SMOKE_DIR/serve-pages-a" "$SMOKE_DIR/serve-pages-b"
"$DEUCE" serve --tenants 2 --shards 4 --requests 800 \
    --store-dir "$SMOKE_DIR/serve-pages-a" --resident-pages 2 \
    > "$SMOKE_DIR/serve-paged.out" 2> /dev/null
"$DEUCE" serve --tenants 2 --requests 800 \
    --store-dir "$SMOKE_DIR/serve-pages-b" --resident-pages 2 --replay \
    > "$SMOKE_DIR/serve-paged.replay"
diff -u "$SMOKE_DIR/serve-paged.replay" "$SMOKE_DIR/serve-paged.out"
grep -q 'store_page_evictions' "$SMOKE_DIR/serve-paged.out"

echo "==> recorded benchmark trajectory"
bash scripts/bench_trajectory.sh

echo "==> tier-1 OK"

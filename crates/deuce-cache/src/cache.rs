//! One level of set-associative, write-back, write-allocate cache.

use deuce_crypto::{LineBytes, LINE_BYTES};

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity.
    pub ways: usize,
}

impl CacheConfig {
    /// Creates a config.
    ///
    /// # Panics
    ///
    /// Panics unless capacity is a positive multiple of
    /// `ways * LINE_BYTES` and the resulting set count is a power of
    /// two.
    #[must_use]
    pub fn new(size_bytes: usize, ways: usize) -> Self {
        assert!(ways > 0, "need at least one way");
        assert!(
            size_bytes > 0 && size_bytes.is_multiple_of(ways * LINE_BYTES),
            "capacity must be a multiple of ways * line size"
        );
        let sets = size_bytes / (ways * LINE_BYTES);
        assert!(sets.is_power_of_two(), "set count {sets} must be a power of two");
        Self { size_bytes, ways }
    }

    /// Number of sets.
    #[must_use]
    pub fn sets(&self) -> usize {
        self.size_bytes / (self.ways * LINE_BYTES)
    }
}

/// Traffic a cache level emits toward the next level on an access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemoryEvent {
    /// A miss: the line must be fetched from below.
    Fill {
        /// Line address (byte address / 64).
        line: u64,
    },
    /// A dirty eviction: the line's current contents go down.
    Writeback {
        /// Line address.
        line: u64,
        /// Full line contents at eviction.
        data: LineBytes,
    },
}

/// Hit/miss accounting for one level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Dirty evictions emitted.
    pub writebacks: u64,
}

impl CacheStats {
    /// Miss ratio in `[0, 1]`.
    #[must_use]
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone)]
struct Way {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// LRU stamp: larger = more recent.
    stamp: u64,
    data: LineBytes,
}

/// One cache level. Lines carry their data so dirty evictions emit the
/// exact bytes, which is what the secure-memory schemes operate on.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    ways: Vec<Way>,
    clock: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new(config: CacheConfig) -> Self {
        Self {
            config,
            ways: vec![
                Way {
                    tag: 0,
                    valid: false,
                    dirty: false,
                    stamp: 0,
                    data: [0u8; LINE_BYTES],
                };
                config.sets() * config.ways
            ],
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// The configured geometry.
    #[must_use]
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Statistics so far.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn set_range(&self, line: u64) -> std::ops::Range<usize> {
        let set = (line as usize) & (self.config.sets() - 1);
        set * self.config.ways..(set + 1) * self.config.ways
    }

    fn lookup(&mut self, line: u64) -> Option<usize> {
        let range = self.set_range(line);
        self.ways[range]
            .iter()
            .position(|w| w.valid && w.tag == line)
            .map(|offset| self.set_range(line).start + offset)
    }

    /// Handles an access to `line`; returns the victim way index and
    /// any traffic generated below. `fill_data` provides the line
    /// contents on a miss (from the level below).
    fn access(
        &mut self,
        line: u64,
        fill_data: impl FnOnce() -> LineBytes,
        events: &mut Vec<MemoryEvent>,
    ) -> usize {
        self.clock += 1;
        if let Some(index) = self.lookup(line) {
            self.stats.hits += 1;
            self.ways[index].stamp = self.clock;
            return index;
        }
        self.stats.misses += 1;
        // Victim: invalid way if any, else LRU.
        let range = self.set_range(line);
        let victim_offset = self.ways[range.clone()]
            .iter()
            .position(|w| !w.valid)
            .unwrap_or_else(|| {
                let (offset, _) = self.ways[range.clone()]
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, w)| w.stamp)
                    .expect("non-empty set");
                offset
            });
        let index = range.start + victim_offset;
        if self.ways[index].valid && self.ways[index].dirty {
            self.stats.writebacks += 1;
            events.push(MemoryEvent::Writeback {
                line: self.ways[index].tag,
                data: self.ways[index].data,
            });
        }
        events.push(MemoryEvent::Fill { line });
        self.ways[index] = Way {
            tag: line,
            valid: true,
            dirty: false,
            stamp: self.clock,
            data: fill_data(),
        };
        index
    }

    /// Performs a load of the line containing `addr`; returns generated
    /// traffic. `fill` supplies line data on a miss.
    pub fn load_with(&mut self, addr: u64, fill: impl FnOnce() -> LineBytes) -> Vec<MemoryEvent> {
        let mut events = Vec::new();
        let _ = self.access(addr / LINE_BYTES as u64, fill, &mut events);
        events
    }

    /// Performs a store of `bytes` at `addr` (write-allocate), marking
    /// the line dirty. Zero-filled on miss.
    pub fn store(&mut self, addr: u64, offset_in_line: usize, bytes: &[u8]) -> Vec<MemoryEvent> {
        assert!(
            offset_in_line + bytes.len() <= LINE_BYTES,
            "store must not cross a line boundary"
        );
        let mut events = Vec::new();
        let index = self.access(addr / LINE_BYTES as u64, || [0u8; LINE_BYTES], &mut events);
        self.ways[index].dirty = true;
        self.ways[index].data[offset_in_line..offset_in_line + bytes.len()].copy_from_slice(bytes);
        events
    }

    /// Stores a full line image (used when a higher level evicts into
    /// this one).
    pub fn install_dirty(&mut self, line: u64, data: LineBytes) -> Vec<MemoryEvent> {
        let mut events = Vec::new();
        let index = self.access(line, || data, &mut events);
        self.ways[index].dirty = true;
        self.ways[index].data = data;
        events
    }

    /// Flushes every dirty line (power-down / end of simulation).
    pub fn flush(&mut self) -> Vec<MemoryEvent> {
        let mut events = Vec::new();
        for way in &mut self.ways {
            if way.valid && way.dirty {
                self.stats.writebacks += 1;
                events.push(MemoryEvent::Writeback {
                    line: way.tag,
                    data: way.data,
                });
                way.dirty = false;
            }
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        Cache::new(CacheConfig::new(4 * LINE_BYTES, 2)) // 2 sets x 2 ways
    }

    #[test]
    fn config_validation() {
        assert_eq!(CacheConfig::new(64 * 1024, 8).sets(), 128);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_rejected() {
        let _ = CacheConfig::new(3 * 64 * 8, 8);
    }

    #[test]
    fn hit_after_fill() {
        let mut c = tiny();
        let events = c.load_with(0, || [1u8; 64]);
        assert_eq!(events, vec![MemoryEvent::Fill { line: 0 }]);
        let events = c.load_with(32, || unreachable!("hit must not fill"));
        assert!(events.is_empty());
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn dirty_eviction_carries_stored_bytes() {
        let mut c = tiny();
        // Lines 0, 2, 4 all map to set 0 (2 sets). Fill ways with 0, 2.
        let _ = c.store(0, 0, &[0xAA]);
        let _ = c.load_with(2 * 64, || [2u8; 64]);
        // Touch line 0 so line 2 becomes LRU... line 0 is older; re-touch:
        let _ = c.load_with(0, || unreachable!());
        // Miss on line 4 evicts line 2 (clean: no writeback).
        let events = c.load_with(4 * 64, || [4u8; 64]);
        assert_eq!(events, vec![MemoryEvent::Fill { line: 4 }]);
        // Now line 0 is dirty; force its eviction: touch 4, miss on 2.
        let _ = c.load_with(4 * 64, || unreachable!());
        let events = c.load_with(2 * 64, || [2u8; 64]);
        let mut expected_line0 = [0u8; 64];
        expected_line0[0] = 0xAA;
        assert_eq!(
            events,
            vec![
                MemoryEvent::Writeback { line: 0, data: expected_line0 },
                MemoryEvent::Fill { line: 2 },
            ]
        );
    }

    #[test]
    fn stores_coalesce_in_the_line() {
        let mut c = tiny();
        for i in 0..8usize {
            let _ = c.store(0, i, &[i as u8]);
        }
        assert_eq!(c.stats().misses, 1, "one allocate, seven hits");
        let events = c.flush();
        match &events[0] {
            MemoryEvent::Writeback { data, .. } => {
                assert_eq!(&data[..8], &[0, 1, 2, 3, 4, 5, 6, 7]);
            }
            other => panic!("expected writeback, got {other:?}"),
        }
    }

    #[test]
    fn flush_clears_dirty_state() {
        let mut c = tiny();
        let _ = c.store(0, 0, &[1]);
        assert_eq!(c.flush().len(), 1);
        assert!(c.flush().is_empty(), "second flush has nothing to do");
    }

    #[test]
    fn lru_prefers_least_recent() {
        let mut c = tiny();
        let _ = c.load_with(0, || [0u8; 64]); // set 0, way A
        let _ = c.load_with(2 * 64, || [2u8; 64]); // set 0, way B
        let _ = c.load_with(0, || unreachable!()); // touch line 0
        let _ = c.load_with(4 * 64, || [4u8; 64]); // evicts line 2 (LRU)
        assert!(c.load_with(0, || unreachable!()).is_empty(), "line 0 kept");
    }

    #[test]
    #[should_panic(expected = "line boundary")]
    fn cross_line_store_rejected() {
        let mut c = tiny();
        let _ = c.store(0, 60, &[0u8; 8]);
    }
}

//! The slot-storage interface behind [`crate::LineStore`]: fixed-size
//! pages of line slots, plus the state codec that lets per-line states
//! cross the RAM/disk boundary without `unsafe`.
//!
//! A backend owns the three SoA segments of every materialised slot —
//! 64-byte stored images, optional plaintext shadows, and compact
//! per-line states — grouped into fixed-size pages of
//! [`SLOTS_PER_PAGE`] slots with a presence bitmap per page. Slot ids
//! are dense and assigned in materialisation order, so backends agree
//! on slot placement by construction and the scheme hot loop stays
//! borrow-based: access happens inside a closure while the slot's page
//! is pinned.

use deuce_crypto::{LineBytes, BLOCKS_PER_LINE};

use crate::ble::{BleDeuceState, BleState};
use crate::core::CtrState;
use crate::deuce::DeuceState;
use crate::deuce_fnw::DeuceFnwState;
use crate::dyn_deuce::DynDeuceState;
use crate::fnw::{EncryptedFnwState, FnwState};
use crate::line::AnyState;
use crate::scheme::{LineMut, LineRef, LineScheme};

/// Line slots per page. Exactly one `u64` of presence bits.
pub const SLOTS_PER_PAGE: usize = 64;

/// Paging statistics of a cache-managed backend (all zero until the
/// first fault; fully-resident backends report `None` upstream).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StorePageStats {
    /// Cache misses that materialised a page (fresh or reloaded).
    pub page_faults: u64,
    /// Pages evicted from the resident cache.
    pub page_evictions: u64,
    /// Dirty pages written back to the page file (evictions plus the
    /// end-of-run flush).
    pub pages_flushed: u64,
    /// Bytes of line storage currently resident in RAM.
    pub resident_bytes: u64,
    /// Highest resident-byte watermark observed.
    pub peak_resident_bytes: u64,
}

/// Slot storage for a [`crate::LineStore`]: an append-only dense slot
/// space whose segments are reachable only through pin-scoped closures.
///
/// The two shipped implementations are [`crate::ArenaBackend`] (every
/// page permanently resident) and [`crate::FilePageBackend`] (an LRU
/// cache of resident pages over a page file). The contract between
/// them: identical slot ids for identical call sequences, and
/// bit-identical slot contents observed through
/// [`with_slot`](Self::with_slot) / [`with_slot_mut`](Self::with_slot_mut).
pub trait PageBackend<S: LineScheme> {
    /// Appends a slot holding `stored` / `shadow` / `state`, returning
    /// its dense id. `shadow` is `None` for shadowless schemes.
    ///
    /// # Panics
    ///
    /// Panics if more than `u32::MAX` slots are materialised.
    fn push(&mut self, stored: &LineBytes, shadow: Option<&LineBytes>, state: S::State) -> u32;

    /// Materialised slots.
    fn len(&self) -> usize;

    /// Whether no slot has been materialised yet.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pins `slot`'s page and lends its segments mutably for the
    /// duration of `f`. Shadowless schemes receive a scratch shadow
    /// they must ignore (same contract as [`LineMut`]).
    fn with_slot_mut<T>(&mut self, slot: u32, f: impl FnOnce(LineMut<'_, S::State>) -> T) -> T;

    /// Pins `slot`'s page and lends its stored image and state for the
    /// duration of `f`.
    fn with_slot<T>(&self, slot: u32, f: impl FnOnce(LineRef<'_, S::State>) -> T) -> T;

    /// Bytes of line storage one materialised slot occupies in RAM
    /// (stored image + shadow if kept + in-memory state). Must agree
    /// with [`crate::LineStore::per_line_bytes`].
    fn per_line_bytes(&self) -> u64;

    /// Bytes of line storage currently resident in RAM (materialised
    /// slots of resident pages only).
    fn resident_bytes(&self) -> u64;

    /// Paging statistics; `None` for fully-resident backends.
    fn paging_stats(&self) -> Option<StorePageStats> {
        None
    }

    /// Writes all dirty resident pages back to stable storage (no-op
    /// for fully-resident backends).
    fn flush(&mut self) {}

    /// Deterministic flush progress: `(pages flushed so far, running
    /// FNV-1a fingerprint over flushed page bytes in flush order)`.
    /// `(0, 0)` for backends that never flush.
    fn flush_state(&self) -> (u64, u64) {
        (0, 0)
    }

    /// The first I/O error the backend swallowed, if any. Backends keep
    /// simulating deterministically past an I/O failure (the hot loop
    /// is infallible); drivers check this once at end of run.
    fn io_error(&self) -> Option<String> {
        None
    }
}

/// Fixed-width byte encoding for compact per-line states, so a page
/// file can persist them without `unsafe` byte-casting.
///
/// Every shipped state is a sequence of raw `u64` fields and encodes as
/// little-endian words; [`crate::AnyState`] adds one leading tag byte.
/// Decoding all-zero bytes must yield a valid placeholder state (used
/// for never-materialised slots of a loaded page).
pub trait StateCodec: Sized {
    /// Encoded size in bytes. Fixed per type, pinned by
    /// `tests/state_sizes.rs`.
    const ENCODED_BYTES: usize;

    /// Writes exactly [`ENCODED_BYTES`](Self::ENCODED_BYTES) bytes into
    /// `out`.
    fn encode(&self, out: &mut [u8]);

    /// Reads a state back from exactly
    /// [`ENCODED_BYTES`](Self::ENCODED_BYTES) bytes.
    fn decode(bytes: &[u8]) -> Self;
}

/// Little-endian `u64` store at `offset`.
pub(crate) fn put_u64(out: &mut [u8], offset: usize, value: u64) {
    out[offset..offset + 8].copy_from_slice(&value.to_le_bytes());
}

/// Little-endian `u64` load at `offset`.
pub(crate) fn get_u64(bytes: &[u8], offset: usize) -> u64 {
    let mut word = [0u8; 8];
    word.copy_from_slice(&bytes[offset..offset + 8]);
    u64::from_le_bytes(word)
}

impl StateCodec for () {
    const ENCODED_BYTES: usize = 0;

    fn encode(&self, _out: &mut [u8]) {}

    fn decode(_bytes: &[u8]) -> Self {}
}

impl StateCodec for CtrState {
    const ENCODED_BYTES: usize = 8;

    fn encode(&self, out: &mut [u8]) {
        put_u64(out, 0, self.value());
    }

    fn decode(bytes: &[u8]) -> Self {
        CtrState::from_raw(get_u64(bytes, 0))
    }
}

impl StateCodec for FnwState {
    const ENCODED_BYTES: usize = 8;

    fn encode(&self, out: &mut [u8]) {
        put_u64(out, 0, self.flip_bits);
    }

    fn decode(bytes: &[u8]) -> Self {
        Self { flip_bits: get_u64(bytes, 0) }
    }
}

impl StateCodec for EncryptedFnwState {
    const ENCODED_BYTES: usize = 16;

    fn encode(&self, out: &mut [u8]) {
        put_u64(out, 0, self.ctr.value());
        put_u64(out, 8, self.flip_bits);
    }

    fn decode(bytes: &[u8]) -> Self {
        Self {
            ctr: CtrState::from_raw(get_u64(bytes, 0)),
            flip_bits: get_u64(bytes, 8),
        }
    }
}

impl StateCodec for DeuceState {
    const ENCODED_BYTES: usize = 16;

    fn encode(&self, out: &mut [u8]) {
        put_u64(out, 0, self.ctr.value());
        put_u64(out, 8, self.modified);
    }

    fn decode(bytes: &[u8]) -> Self {
        Self {
            ctr: CtrState::from_raw(get_u64(bytes, 0)),
            modified: get_u64(bytes, 8),
        }
    }
}

impl StateCodec for DynDeuceState {
    const ENCODED_BYTES: usize = 16;

    fn encode(&self, out: &mut [u8]) {
        put_u64(out, 0, self.ctr.value());
        put_u64(out, 8, self.meta);
    }

    fn decode(bytes: &[u8]) -> Self {
        Self {
            ctr: CtrState::from_raw(get_u64(bytes, 0)),
            meta: get_u64(bytes, 8),
        }
    }
}

impl StateCodec for DeuceFnwState {
    const ENCODED_BYTES: usize = 16;

    fn encode(&self, out: &mut [u8]) {
        put_u64(out, 0, self.ctr.value());
        put_u64(out, 8, self.meta);
    }

    fn decode(bytes: &[u8]) -> Self {
        Self {
            ctr: CtrState::from_raw(get_u64(bytes, 0)),
            meta: get_u64(bytes, 8),
        }
    }
}

impl StateCodec for BleState {
    const ENCODED_BYTES: usize = 8 * BLOCKS_PER_LINE;

    fn encode(&self, out: &mut [u8]) {
        for (block, &ctr) in self.ctrs.iter().enumerate() {
            put_u64(out, block * 8, ctr);
        }
    }

    fn decode(bytes: &[u8]) -> Self {
        Self {
            ctrs: core::array::from_fn(|block| get_u64(bytes, block * 8)),
        }
    }
}

impl StateCodec for BleDeuceState {
    const ENCODED_BYTES: usize = 8 * BLOCKS_PER_LINE + 8;

    fn encode(&self, out: &mut [u8]) {
        for (block, &ctr) in self.ctrs.iter().enumerate() {
            put_u64(out, block * 8, ctr);
        }
        put_u64(out, 8 * BLOCKS_PER_LINE, self.modified);
    }

    fn decode(bytes: &[u8]) -> Self {
        Self {
            ctrs: core::array::from_fn(|block| get_u64(bytes, block * 8)),
            modified: get_u64(bytes, 8 * BLOCKS_PER_LINE),
        }
    }
}

/// [`AnyState`] payload bytes: the largest concrete state
/// ([`BleDeuceState`]).
const ANY_PAYLOAD_BYTES: usize = BleDeuceState::ENCODED_BYTES;

impl StateCodec for AnyState {
    /// One tag byte plus a fixed-size payload slot, so every
    /// [`AnyState`] occupies the same page-file footprint regardless of
    /// variant.
    const ENCODED_BYTES: usize = 1 + ANY_PAYLOAD_BYTES;

    fn encode(&self, out: &mut [u8]) {
        out[..Self::ENCODED_BYTES].fill(0);
        let (tag, payload) = out[..Self::ENCODED_BYTES]
            .split_first_mut()
            .expect("encoded AnyState is at least one byte");
        match self {
            AnyState::UnencryptedDcw => *tag = 0,
            AnyState::UnencryptedFnw(st) => {
                *tag = 1;
                st.encode(payload);
            }
            AnyState::EncryptedDcw(st) => {
                *tag = 2;
                st.encode(payload);
            }
            AnyState::EncryptedFnw(st) => {
                *tag = 3;
                st.encode(payload);
            }
            AnyState::Ble(st) => {
                *tag = 4;
                st.encode(payload);
            }
            AnyState::Deuce(st) => {
                *tag = 5;
                st.encode(payload);
            }
            AnyState::DynDeuce(st) => {
                *tag = 6;
                st.encode(payload);
            }
            AnyState::DeuceFnw(st) => {
                *tag = 7;
                st.encode(payload);
            }
            AnyState::BleDeuce(st) => {
                *tag = 8;
                st.encode(payload);
            }
            AnyState::AddrPad => *tag = 9,
        }
    }

    fn decode(bytes: &[u8]) -> Self {
        let payload = &bytes[1..Self::ENCODED_BYTES];
        match bytes[0] {
            0 => AnyState::UnencryptedDcw,
            1 => AnyState::UnencryptedFnw(FnwState::decode(payload)),
            2 => AnyState::EncryptedDcw(CtrState::decode(payload)),
            3 => AnyState::EncryptedFnw(EncryptedFnwState::decode(payload)),
            4 => AnyState::Ble(BleState::decode(payload)),
            5 => AnyState::Deuce(DeuceState::decode(payload)),
            6 => AnyState::DynDeuce(DynDeuceState::decode(payload)),
            7 => AnyState::DeuceFnw(DeuceFnwState::decode(payload)),
            8 => AnyState::BleDeuce(BleDeuceState::decode(payload)),
            9 => AnyState::AddrPad,
            tag => panic!("corrupt page file: unknown AnyState tag {tag}"),
        }
    }
}

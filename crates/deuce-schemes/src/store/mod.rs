//! Layered storage for many lines under one scheme.
//!
//! [`LineStore`] replaces per-line fat-enum allocations with dense SoA
//! slot storage — 64-byte stored images, optional plaintext shadows,
//! and compact per-line states — plus an address→slot index. Lines are
//! materialised lazily on first touch, so constructing a store is O(1)
//! regardless of the address space it will cover.
//!
//! Slot storage lives behind the [`PageBackend`] trait: the default
//! [`ArenaBackend`] keeps every page resident in RAM (the historical
//! layout), while [`FilePageBackend`] caches a configurable number of
//! resident pages over a page file, enabling billion-line address
//! spaces within a fixed resident budget. Both backends observe the
//! same call sequence, so runs are bit-identical across them.

mod arena;
mod backend;
mod paged;

pub use arena::ArenaBackend;
pub use backend::{PageBackend, StateCodec, StorePageStats, SLOTS_PER_PAGE};
pub use paged::{FilePageBackend, PageHeader};

use std::collections::HashMap;

use deuce_crypto::{LineAddr, LineBytes, OtpEngine, LINE_BYTES};
use deuce_nvm::LineImage;

use crate::scheme::LineScheme;
use crate::WriteOutcome;

/// Dense, lazily-populated storage for every touched line of a memory
/// under a single scheme `S`, over a pluggable slot backend `B`
/// (in-RAM [`ArenaBackend`] by default).
///
/// # Examples
///
/// ```
/// use deuce_crypto::{LineAddr, OtpEngine, SecretKey};
/// use deuce_schemes::{EncryptedDcwScheme, LineStore};
///
/// let engine = OtpEngine::new(&SecretKey::from_seed(1));
/// let mut store = LineStore::new(EncryptedDcwScheme::new(28));
/// assert_eq!(store.len(), 0); // nothing materialised yet
///
/// let addr = LineAddr::new(42);
/// let outcome = store.write(&engine, addr, &[7u8; 64]);
/// assert!(outcome.flips.total() > 0);
/// assert_eq!(store.read(&engine, addr), Some([7u8; 64]));
/// assert_eq!(store.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct LineStore<S: LineScheme, B: PageBackend<S> = ArenaBackend<S>> {
    scheme: S,
    /// Address value → dense slot id in the backend.
    index: HashMap<u64, u32>,
    backend: B,
}

impl<S: LineScheme> LineStore<S> {
    /// Creates an empty arena-backed store; no line storage is
    /// allocated until a line is first touched.
    #[must_use]
    pub fn new(scheme: S) -> Self {
        let backend = ArenaBackend::new(scheme.needs_shadow());
        Self::with_backend(scheme, backend)
    }
}

impl<S: LineScheme, B: PageBackend<S>> LineStore<S, B> {
    /// Creates an empty store over an explicit backend (e.g. a
    /// [`FilePageBackend`] for out-of-core operation).
    #[must_use]
    pub fn with_backend(scheme: S, backend: B) -> Self {
        Self {
            scheme,
            index: HashMap::new(),
            backend,
        }
    }

    /// The scheme every line in this store runs under.
    #[must_use]
    pub fn scheme(&self) -> &S {
        &self.scheme
    }

    /// Number of materialised (touched) lines.
    #[must_use]
    pub fn len(&self) -> usize {
        self.backend.len()
    }

    /// Whether no line has been touched yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.backend.is_empty()
    }

    /// Whether `addr` has been materialised.
    #[must_use]
    pub fn contains(&self, addr: LineAddr) -> bool {
        self.index.contains_key(&addr.value())
    }

    /// Materialises `addr` holding `initial` (encrypted/encoded by the
    /// scheme) and returns its slot. A no-op returning the existing slot
    /// if the line is already present.
    pub fn materialize(&mut self, engine: &OtpEngine, addr: LineAddr, initial: &LineBytes) -> u32 {
        if let Some(&slot) = self.index.get(&addr.value()) {
            return slot;
        }
        let (stored, state) = self.scheme.init(engine, addr, initial);
        let shadow = self.scheme.needs_shadow().then_some(initial);
        let slot = self.backend.push(&stored, shadow, state);
        self.index.insert(addr.value(), slot);
        slot
    }

    fn write_slot(
        &mut self,
        engine: &OtpEngine,
        addr: LineAddr,
        slot: u32,
        data: &LineBytes,
    ) -> WriteOutcome {
        let Self { scheme, backend, .. } = self;
        backend.with_slot_mut(slot, |line| scheme.write(engine, addr, line, data))
    }

    /// Simulator semantics: the first write to a line initialises it with
    /// the written data and is *not* counted (returns `None`); later
    /// writes run the scheme state machine.
    pub fn write_first_touch(
        &mut self,
        engine: &OtpEngine,
        addr: LineAddr,
        data: &LineBytes,
    ) -> Option<WriteOutcome> {
        if let Some(&slot) = self.index.get(&addr.value()) {
            Some(self.write_slot(engine, addr, slot, data))
        } else {
            let _ = self.materialize(engine, addr, data);
            None
        }
    }

    /// Memory semantics: an untouched line materialises zeroed, then
    /// every write — including the first — runs the scheme state machine
    /// and is counted.
    pub fn write(&mut self, engine: &OtpEngine, addr: LineAddr, data: &LineBytes) -> WriteOutcome {
        let slot = self.materialize(engine, addr, &[0u8; LINE_BYTES]);
        self.write_slot(engine, addr, slot, data)
    }

    /// Reads a line's logical value, or `None` if it was never touched.
    #[must_use]
    pub fn read(&self, engine: &OtpEngine, addr: LineAddr) -> Option<LineBytes> {
        let &slot = self.index.get(&addr.value())?;
        Some(
            self.backend
                .with_slot(slot, |line| self.scheme.read(engine, addr, line)),
        )
    }

    /// A line's stored image, or `None` if it was never touched.
    #[must_use]
    pub fn image(&self, addr: LineAddr) -> Option<LineImage> {
        let &slot = self.index.get(&addr.value())?;
        Some(self.backend.with_slot(slot, |line| self.scheme.image(line)))
    }

    /// Bytes of line storage one materialised line occupies in RAM: the
    /// stored image, the shadow (if the scheme keeps one), and the
    /// compact state. Index overhead is excluded, so the figure is
    /// deterministic.
    #[must_use]
    pub fn per_line_bytes(&self) -> u64 {
        let shadow = if self.scheme.needs_shadow() { LINE_BYTES } else { 0 };
        (LINE_BYTES + shadow + core::mem::size_of::<S::State>()) as u64
    }

    /// Bytes of line storage currently resident in RAM. For the arena
    /// backend this is every materialised line; for a paged backend,
    /// only materialised slots of resident pages — so the two agree
    /// exactly until the first eviction, and the paged figure stays
    /// bounded by the resident budget thereafter.
    #[must_use]
    pub fn resident_bytes(&self) -> u64 {
        self.backend.resident_bytes()
    }

    /// Paging statistics, or `None` for fully-resident backends.
    #[must_use]
    pub fn paging_stats(&self) -> Option<StorePageStats> {
        self.backend.paging_stats()
    }

    /// Writes all dirty resident pages back to stable storage (no-op
    /// for fully-resident backends).
    pub fn flush(&mut self) {
        self.backend.flush();
    }

    /// Deterministic flush progress: `(pages flushed, running FNV-1a
    /// fingerprint over flushed page bytes)`; `(0, 0)` for backends
    /// that never flush.
    #[must_use]
    pub fn flush_state(&self) -> (u64, u64) {
        self.backend.flush_state()
    }

    /// The first I/O error the backend swallowed, if any.
    #[must_use]
    pub fn io_error(&self) -> Option<String> {
        self.backend.io_error()
    }

    /// An order-independent fingerprint of the store's entire contents:
    /// a per-line FNV-1a hash over the address, the stored (encrypted)
    /// image bytes, and the metadata bits, combined with a commutative
    /// wrapping sum, so the value never depends on visitation order.
    /// Two stores hold bit-identical memory images iff their
    /// fingerprints match, regardless of backend (arena or paged) or
    /// materialisation order. Hashing the stored image (not the
    /// plaintext) keeps this pad-generation-free and O(lines).
    ///
    /// Lines are visited in ascending address order. The sum would make
    /// any order produce the same value, but on a paged backend each
    /// visit can fault a page in: the address index is a `HashMap`
    /// whose iteration order varies per process, and walking it raw
    /// makes `store_page_faults` / eviction counters — and which pages
    /// end up resident — nondeterministic in every run that
    /// fingerprints (checkpointed runs, the serve layer's replay
    /// contract). Sorted order pins the paging side effects and is
    /// page-sequential, the cheapest faulting pattern.
    #[must_use]
    pub fn content_fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0100_0000_01b3;
        let mut entries: Vec<(u64, u32)> =
            self.index.iter().map(|(&addr, &slot)| (addr, slot)).collect();
        entries.sort_unstable_by_key(|&(addr, _)| addr);
        let mut combined: u64 = 0;
        for (addr, slot) in entries {
            let image = self.backend.with_slot(slot, |line| self.scheme.image(line));
            let mut h = OFFSET;
            for byte in addr.to_le_bytes() {
                h = (h ^ u64::from(byte)).wrapping_mul(PRIME);
            }
            for &byte in image.data() {
                h = (h ^ u64::from(byte)).wrapping_mul(PRIME);
            }
            for byte in image.meta().raw().to_le_bytes() {
                h = (h ^ u64::from(byte)).wrapping_mul(PRIME);
            }
            combined = combined.wrapping_add(h);
        }
        combined
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{SchemeConfig, SchemeKind};
    use crate::deuce::DeuceScheme;
    use crate::line::AnyScheme;
    use crate::SchemeLine;
    use deuce_crypto::{EpochInterval, SecretKey};
    use std::path::PathBuf;

    fn engine() -> OtpEngine {
        OtpEngine::new(&SecretKey::from_seed(0xFEED))
    }

    /// A unique-enough scratch page-file path for one test.
    fn page_file(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("deuce-store-test-{}-{tag}.pages", std::process::id()));
        p
    }

    fn paged_store(
        config: &SchemeConfig,
        tag: &str,
        resident_pages: usize,
    ) -> (LineStore<AnyScheme, FilePageBackend<AnyScheme>>, PathBuf) {
        let scheme = AnyScheme::from_config(config);
        let path = page_file(tag);
        let backend = FilePageBackend::create(&path, resident_pages, scheme.needs_shadow())
            .expect("create page file");
        (LineStore::with_backend(scheme, backend), path)
    }

    /// The arena path must be bit-identical to a standalone `SchemeCell`
    /// driving the same writes, for every runtime-selected scheme.
    #[test]
    fn arena_matches_scheme_cell_for_all_kinds() {
        let e = engine();
        for kind in SchemeKind::ALL {
            let config = SchemeConfig::new(kind);
            let addr = LineAddr::new(19);
            let initial = [3u8; LINE_BYTES];
            let mut cell = SchemeLine::new(&config, &e, addr, &initial);
            let mut store = LineStore::new(AnyScheme::from_config(&config));
            let _ = store.materialize(&e, addr, &initial);
            for i in 0..40u8 {
                let mut data = [i; LINE_BYTES];
                data[5] = i.wrapping_mul(7);
                let from_cell = cell.write(&e, &data);
                let from_store = store.write(&e, addr, &data);
                assert_eq!(from_cell.flips, from_store.flips, "{kind} write {i}");
                assert_eq!(from_cell.counter_flips, from_store.counter_flips, "{kind} write {i}");
                assert_eq!(cell.image().data(), store.image(addr).unwrap().data(), "{kind}");
                assert_eq!(store.read(&e, addr), Some(cell.read(&e)), "{kind} write {i}");
            }
        }
    }

    #[test]
    fn first_touch_is_uncounted_then_counted() {
        let e = engine();
        let scheme = DeuceScheme::new(
            crate::WordSize::Bytes2,
            EpochInterval::DEFAULT,
            28,
        );
        let mut store = LineStore::new(scheme);
        let addr = LineAddr::new(4);
        assert!(store.write_first_touch(&e, addr, &[9u8; 64]).is_none());
        assert!(store.write_first_touch(&e, addr, &[10u8; 64]).is_some());
        assert_eq!(store.read(&e, addr), Some([10u8; 64]));
    }

    #[test]
    fn untouched_lines_cost_nothing() {
        let e = engine();
        let mut store = LineStore::new(DeuceScheme::new(
            crate::WordSize::Bytes2,
            EpochInterval::DEFAULT,
            28,
        ));
        assert_eq!(store.resident_bytes(), 0);
        assert!(store.read(&e, LineAddr::new(1)).is_none());
        assert!(store.image(LineAddr::new(1)).is_none());
        let _ = store.write(&e, LineAddr::new(1), &[1u8; 64]);
        // 64 stored + 64 shadow + 16 state (counter + modified bits).
        assert_eq!(store.resident_bytes(), store.per_line_bytes());
        assert!(store.contains(LineAddr::new(1)));
        assert!(!store.contains(LineAddr::new(2)));
    }

    #[test]
    fn shadowless_schemes_skip_the_shadow_array() {
        let e = engine();
        let mut with_shadow = LineStore::new(AnyScheme::from_config(&SchemeConfig::new(SchemeKind::Deuce)));
        let mut without = LineStore::new(AnyScheme::from_config(&SchemeConfig::new(SchemeKind::EncryptedDcw)));
        let _ = with_shadow.write(&e, LineAddr::new(0), &[1u8; 64]);
        let _ = without.write(&e, LineAddr::new(0), &[1u8; 64]);
        assert_eq!(
            with_shadow.per_line_bytes() - without.per_line_bytes(),
            LINE_BYTES as u64,
            "shadow accounts for exactly one line of bytes"
        );
    }

    /// Under constant eviction pressure (one resident page), the paged
    /// backend must produce bit-identical writes, reads, and images to
    /// the arena — for every runtime-selected scheme.
    #[test]
    fn paged_matches_arena_under_eviction_for_all_kinds() {
        let e = engine();
        // 3 pages' worth of lines, strided so revisits interleave pages.
        let lines = 3 * SLOTS_PER_PAGE as u64;
        for kind in SchemeKind::ALL {
            let config = SchemeConfig::new(kind);
            let mut arena = LineStore::new(AnyScheme::from_config(&config));
            let (mut paged, path) = paged_store(&config, &format!("parity-{kind}"), 1);
            for round in 0..3u8 {
                for line in 0..lines {
                    let addr = LineAddr::new(line * 17 + 3);
                    let mut data = [round.wrapping_mul(31).wrapping_add(line as u8); LINE_BYTES];
                    data[(line % 64) as usize] ^= 0x5A;
                    let a = arena.write_first_touch(&e, addr, &data);
                    let p = paged.write_first_touch(&e, addr, &data);
                    assert_eq!(a.is_some(), p.is_some(), "{kind} r{round} l{line}");
                    if let (Some(a), Some(p)) = (a, p) {
                        assert_eq!(a.flips, p.flips, "{kind} r{round} l{line}");
                        assert_eq!(a.counter_flips, p.counter_flips, "{kind} r{round} l{line}");
                    }
                }
            }
            for line in 0..lines {
                let addr = LineAddr::new(line * 17 + 3);
                assert_eq!(arena.read(&e, addr), paged.read(&e, addr), "{kind} read l{line}");
                assert_eq!(
                    arena.image(addr).map(|i| *i.data()),
                    paged.image(addr).map(|i| *i.data()),
                    "{kind} image l{line}"
                );
            }
            let stats = paged.paging_stats().expect("paged backend reports stats");
            assert!(stats.page_evictions > 0, "{kind}: expected eviction pressure");
            assert!(paged.io_error().is_none(), "{kind}: {:?}", paged.io_error());
            let _ = std::fs::remove_file(path);
        }
    }

    /// Residency accounting: identical to the arena before any
    /// eviction, bounded by the resident budget afterwards, with flush
    /// progressing the deterministic fingerprint.
    #[test]
    fn paged_residency_is_exact_and_bounded() {
        let e = engine();
        let config = SchemeConfig::new(SchemeKind::Deuce);
        let mut arena = LineStore::new(AnyScheme::from_config(&config));
        let budget_pages = 2;
        let (mut paged, path) = paged_store(&config, "residency", budget_pages);
        // Fill exactly the budget: no eviction, byte-identical residency.
        for line in 0..(budget_pages * SLOTS_PER_PAGE) as u64 {
            let _ = arena.write(&e, LineAddr::new(line), &[7u8; LINE_BYTES]);
            let _ = paged.write(&e, LineAddr::new(line), &[7u8; LINE_BYTES]);
        }
        assert_eq!(arena.resident_bytes(), paged.resident_bytes());
        assert_eq!(paged.paging_stats().unwrap().page_evictions, 0);
        // Overflow the budget: arena grows, paged stays within it.
        let cap = budget_pages as u64 * SLOTS_PER_PAGE as u64 * paged.per_line_bytes();
        for line in 0..(8 * SLOTS_PER_PAGE) as u64 {
            let _ = paged.write(&e, LineAddr::new(1_000_000 + line), &[9u8; LINE_BYTES]);
            assert!(paged.resident_bytes() <= cap);
        }
        let stats = paged.paging_stats().unwrap();
        assert!(stats.page_evictions > 0);
        assert!(stats.peak_resident_bytes <= cap);
        assert_eq!(stats.resident_bytes, paged.resident_bytes());
        // Flushing writes the dirty resident pages and moves the
        // fingerprint off its initial value.
        let before = paged.flush_state();
        paged.flush();
        let after = paged.flush_state();
        assert!(after.0 > before.0, "flush wrote dirty pages");
        assert_ne!(after.1, before.1, "fingerprint advanced");
        assert!(paged.io_error().is_none());
        let _ = std::fs::remove_file(path);
    }

    /// The content fingerprint matches across backends under eviction
    /// pressure, is insensitive to materialisation order, and moves
    /// when any stored line changes.
    #[test]
    fn content_fingerprint_matches_across_backends_and_orders() {
        let e = engine();
        let config = SchemeConfig::new(SchemeKind::Deuce);
        let mut arena = LineStore::new(AnyScheme::from_config(&config));
        let mut reversed = LineStore::new(AnyScheme::from_config(&config));
        let (mut paged, path) = paged_store(&config, "content-fp", 1);
        let lines = 3 * SLOTS_PER_PAGE as u64;
        let addrs: Vec<u64> = (0..lines).map(|l| l * 13 + 5).collect();
        for &a in &addrs {
            let _ = arena.write(&e, LineAddr::new(a), &[a as u8; LINE_BYTES]);
            let _ = paged.write(&e, LineAddr::new(a), &[a as u8; LINE_BYTES]);
        }
        for &a in addrs.iter().rev() {
            let _ = reversed.write(&e, LineAddr::new(a), &[a as u8; LINE_BYTES]);
        }
        assert_eq!(arena.content_fingerprint(), paged.content_fingerprint());
        assert_eq!(arena.content_fingerprint(), reversed.content_fingerprint());
        let before = arena.content_fingerprint();
        let _ = arena.write(&e, LineAddr::new(addrs[0]), &[0xA5; LINE_BYTES]);
        assert_ne!(before, arena.content_fingerprint(), "a changed line moves the fingerprint");
        let _ = std::fs::remove_file(path);
    }

    /// Identical call sequences on identical budgets reach identical
    /// flush fingerprints — the property run checkpoints rely on.
    #[test]
    fn flush_fingerprint_is_deterministic() {
        let e = engine();
        let config = SchemeConfig::new(SchemeKind::BleDeuce);
        let mut fps = Vec::new();
        for attempt in 0..2 {
            let (mut store, path) = paged_store(&config, &format!("fp-{attempt}"), 1);
            for line in 0..(3 * SLOTS_PER_PAGE) as u64 {
                let _ = store.write(&e, LineAddr::new(line * 5), &[line as u8; LINE_BYTES]);
            }
            store.flush();
            fps.push(store.flush_state());
            let _ = std::fs::remove_file(path);
        }
        assert_eq!(fps[0], fps[1]);
        assert!(fps[0].0 > 0);
    }
}

//! Model-based testing: `SecureMemory` must behave exactly like a plain
//! byte array, for every scheme, under arbitrary access sequences.

use deuce_memctl::{MemoryBuilder, SchemeKind};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Access {
    Write { offset: usize, data: Vec<u8> },
    Read { offset: usize, len: usize },
}

fn access_strategy(size: usize) -> impl Strategy<Value = Access> {
    prop_oneof![
        (0..size, prop::collection::vec(any::<u8>(), 1..200)).prop_map(|(offset, data)| {
            Access::Write { offset, data }
        }),
        (0..size, 1usize..200).prop_map(|(offset, len)| Access::Read { offset, len }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Differential test against a plain `Vec<u8>` shadow model.
    #[test]
    fn behaves_like_a_byte_array(
        kind in prop::sample::select(vec![
            SchemeKind::UnencryptedDcw,
            SchemeKind::EncryptedDcw,
            SchemeKind::Deuce,
            SchemeKind::DynDeuce,
            SchemeKind::BleDeuce,
        ]),
        seed in any::<u64>(),
        accesses in prop::collection::vec(access_strategy(1024), 1..40),
    ) {
        let size = 1024usize;
        let mut builder = MemoryBuilder::new(size);
        builder.scheme(kind).key_seed(seed);
        let mut memory = builder.build();
        let mut model = vec![0u8; size];

        for access in accesses {
            match access {
                Access::Write { offset, data } => {
                    let len = data.len().min(size - offset);
                    let data = &data[..len];
                    memory.write(offset, data).unwrap();
                    model[offset..offset + len].copy_from_slice(data);
                }
                Access::Read { offset, len } => {
                    let len = len.min(size - offset);
                    let mut buf = vec![0u8; len];
                    memory.read(offset, &mut buf).unwrap();
                    prop_assert_eq!(&buf, &model[offset..offset + len], "{}", kind);
                }
            }
        }
        // Final full readback.
        let mut full = vec![0u8; size];
        memory.read(0, &mut full).unwrap();
        prop_assert_eq!(full, model);
    }

    /// Integrity mode changes nothing functionally (until tampering).
    #[test]
    fn integrity_is_transparent(
        seed in any::<u64>(),
        writes in prop::collection::vec((0usize..512, any::<u8>()), 1..30),
    ) {
        let mut with = {
            let mut b = MemoryBuilder::new(512);
            b.integrity(true).key_seed(seed);
            b.build()
        };
        let mut without = {
            let mut b = MemoryBuilder::new(512);
            b.key_seed(seed);
            b.build()
        };
        for (offset, byte) in writes {
            with.write(offset, &[byte]).unwrap();
            without.write(offset, &[byte]).unwrap();
        }
        let mut a = vec![0u8; 512];
        let mut b = vec![0u8; 512];
        with.read(0, &mut a).unwrap();
        without.read(0, &mut b).unwrap();
        prop_assert_eq!(a, b);
        prop_assert_eq!(with.stats().bit_flips, without.stats().bit_flips);
        prop_assert!(with.stats().integrity_checks > 0);
        prop_assert_eq!(without.stats().integrity_checks, 0);
    }
}

/// Tampering with any line's counter is caught on the next access to
/// that line (and only that line).
#[test]
fn tampering_is_localized() {
    let mut builder = MemoryBuilder::new(64 * 8);
    builder.integrity(true).key_seed(7);
    let mut memory = builder.build();
    for line in 0..8usize {
        memory.write(line * 64, &[line as u8; 64]).unwrap();
    }
    memory.tamper_counter(3, 999);
    for line in 0..8usize {
        let mut buf = [0u8; 64];
        let result = memory.read(line * 64, &mut buf);
        if line == 3 {
            assert!(result.is_err(), "tampered line must fail");
        } else {
            assert!(result.is_ok(), "line {line} should be unaffected");
            assert_eq!(buf, [line as u8; 64]);
        }
    }
}

//! T-table encryption: the four classic 256×`u32` round tables that fuse
//! `SubBytes`, `ShiftRows`, and `MixColumns` into table lookups.
//!
//! Each table entry packs one S-box output multiplied through the
//! MixColumns polynomial: `TE0[x] = [2·S(x), S(x), S(x), 3·S(x)]` (bytes
//! listed most-significant first), and `TE1..TE3` are byte rotations of
//! `TE0`, so a full round of the cipher over one column is four lookups
//! and four XORs. The tables are derived at `const`-init time from the
//! same S-box and GF(2^8) code the byte-oriented reference path uses —
//! nothing is transcribed, and the two paths are differentially tested
//! to be bit-identical.
//!
//! The state is held as four big-endian `u32` column words (`w[c] =
//! bytes[4c..4c+4]` interpreted big-endian), matching the FIPS-197
//! column-major state: byte `r` of word `c` is `state[r][c]`.

use crate::gf;
use crate::sbox;
use crate::Block;

const fn build_te0() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let s = sbox::SBOX[i];
        table[i] = ((gf::mul(s, 2) as u32) << 24)
            | ((s as u32) << 16)
            | ((s as u32) << 8)
            | (gf::mul(s, 3) as u32);
        i += 1;
    }
    table
}

const fn rotate_right_8(src: &[u32; 256]) -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        table[i] = src[i].rotate_right(8);
        i += 1;
    }
    table
}

/// `TE0[x] = [2·S(x), S(x), S(x), 3·S(x)]`, applied to state row 0.
static TE0: [u32; 256] = build_te0();
/// `TE1 = TE0 ⋙ 8`, applied to state row 1.
static TE1: [u32; 256] = rotate_right_8(&TE0);
/// `TE2 = TE0 ⋙ 16`, applied to state row 2.
static TE2: [u32; 256] = rotate_right_8(&TE1);
/// `TE3 = TE0 ⋙ 24`, applied to state row 3.
static TE3: [u32; 256] = rotate_right_8(&TE2);

/// Loads a 16-byte block as four big-endian column words and XORs the
/// initial round key.
#[inline]
fn load(block: &Block, rk: &[u32]) -> [u32; 4] {
    [
        u32::from_be_bytes([block[0], block[1], block[2], block[3]]) ^ rk[0],
        u32::from_be_bytes([block[4], block[5], block[6], block[7]]) ^ rk[1],
        u32::from_be_bytes([block[8], block[9], block[10], block[11]]) ^ rk[2],
        u32::from_be_bytes([block[12], block[13], block[14], block[15]]) ^ rk[3],
    ]
}

/// One full round over the whole state: 16 table lookups.
#[inline]
fn round(w: &[u32; 4], rk: &[u32]) -> [u32; 4] {
    let mut out = [0u32; 4];
    let mut c = 0;
    while c < 4 {
        out[c] = TE0[(w[c] >> 24) as usize & 0xff]
            ^ TE1[(w[(c + 1) % 4] >> 16) as usize & 0xff]
            ^ TE2[(w[(c + 2) % 4] >> 8) as usize & 0xff]
            ^ TE3[w[(c + 3) % 4] as usize & 0xff]
            ^ rk[c];
        c += 1;
    }
    out
}

/// The final round (no MixColumns): plain S-box bytes recombined with
/// the ShiftRows offsets.
#[inline]
fn last_round(w: &[u32; 4], rk: &[u32]) -> [u32; 4] {
    let mut out = [0u32; 4];
    let mut c = 0;
    while c < 4 {
        let b0 = sbox::SBOX[(w[c] >> 24) as usize & 0xff];
        let b1 = sbox::SBOX[(w[(c + 1) % 4] >> 16) as usize & 0xff];
        let b2 = sbox::SBOX[(w[(c + 2) % 4] >> 8) as usize & 0xff];
        let b3 = sbox::SBOX[w[(c + 3) % 4] as usize & 0xff];
        out[c] = u32::from_be_bytes([b0, b1, b2, b3]) ^ rk[c];
        c += 1;
    }
    out
}

#[inline]
fn store(w: &[u32; 4]) -> Block {
    let mut out = [0u8; 16];
    out[0..4].copy_from_slice(&w[0].to_be_bytes());
    out[4..8].copy_from_slice(&w[1].to_be_bytes());
    out[8..12].copy_from_slice(&w[2].to_be_bytes());
    out[12..16].copy_from_slice(&w[3].to_be_bytes());
    out
}

/// Encrypts one block with the T-table path. `rk` holds `4 * (rounds +
/// 1)` big-endian round-key words.
#[must_use]
pub(crate) fn encrypt_block(rk: &[u32], rounds: usize, plaintext: &Block) -> Block {
    let mut w = load(plaintext, &rk[0..4]);
    for r in 1..rounds {
        w = round(&w, &rk[4 * r..4 * r + 4]);
    }
    store(&last_round(&w, &rk[4 * rounds..4 * rounds + 4]))
}

/// Encrypts four independent blocks in one pass over the key schedule.
///
/// The four states advance round-by-round together, so each set of
/// round-key words is fetched once and the sixteen-lookup rounds of the
/// four blocks interleave — the instruction-level parallelism the
/// serial path leaves on the table. Output block `i` equals
/// `encrypt_block(rk, rounds, &blocks[i])` exactly.
#[must_use]
pub(crate) fn encrypt_blocks4(rk: &[u32], rounds: usize, blocks: &[Block; 4]) -> [Block; 4] {
    let mut w = [
        load(&blocks[0], &rk[0..4]),
        load(&blocks[1], &rk[0..4]),
        load(&blocks[2], &rk[0..4]),
        load(&blocks[3], &rk[0..4]),
    ];
    for r in 1..rounds {
        let key = &rk[4 * r..4 * r + 4];
        w = [round(&w[0], key), round(&w[1], key), round(&w[2], key), round(&w[3], key)];
    }
    let key = &rk[4 * rounds..4 * rounds + 4];
    [
        store(&last_round(&w[0], key)),
        store(&last_round(&w[1], key)),
        store(&last_round(&w[2], key)),
        store(&last_round(&w[3], key)),
    ]
}

/// Encrypts eight independent blocks as two interleaved 4-block
/// streams.
///
/// Eight `u32x4` states exceed the logical registers of either target
/// ISA, so the round loop advances two four-state streams back to back:
/// each stream's states stay register-resident through its half of the
/// round while the other stream's loads/stores overlap the table-lookup
/// latency. Output block `i` equals `encrypt_block(rk, rounds,
/// &blocks[i])` exactly.
#[must_use]
pub(crate) fn encrypt_blocks8(rk: &[u32], rounds: usize, blocks: &[Block; 8]) -> [Block; 8] {
    let key = &rk[0..4];
    let mut lo = [
        load(&blocks[0], key),
        load(&blocks[1], key),
        load(&blocks[2], key),
        load(&blocks[3], key),
    ];
    let mut hi = [
        load(&blocks[4], key),
        load(&blocks[5], key),
        load(&blocks[6], key),
        load(&blocks[7], key),
    ];
    for r in 1..rounds {
        let key = &rk[4 * r..4 * r + 4];
        lo = [round(&lo[0], key), round(&lo[1], key), round(&lo[2], key), round(&lo[3], key)];
        hi = [round(&hi[0], key), round(&hi[1], key), round(&hi[2], key), round(&hi[3], key)];
    }
    let key = &rk[4 * rounds..4 * rounds + 4];
    [
        store(&last_round(&lo[0], key)),
        store(&last_round(&lo[1], key)),
        store(&last_round(&lo[2], key)),
        store(&last_round(&lo[3], key)),
        store(&last_round(&hi[0], key)),
        store(&last_round(&hi[1], key)),
        store(&last_round(&hi[2], key)),
        store(&last_round(&hi[3], key)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every table entry must be the MixColumns image of one S-box
    /// output, rebuilt here from first principles.
    #[test]
    fn tables_encode_sbox_times_mix_column() {
        for x in 0..256usize {
            let s = sbox::SBOX[x];
            let expected = ((gf::mul(s, 2) as u32) << 24)
                | ((s as u32) << 16)
                | ((s as u32) << 8)
                | (gf::mul(s, 3) as u32);
            assert_eq!(TE0[x], expected, "TE0[{x:#04x}]");
            assert_eq!(TE1[x], expected.rotate_right(8), "TE1[{x:#04x}]");
            assert_eq!(TE2[x], expected.rotate_right(16), "TE2[{x:#04x}]");
            assert_eq!(TE3[x], expected.rotate_right(24), "TE3[{x:#04x}]");
        }
    }

    #[test]
    fn load_store_round_trip() {
        let block: Block = core::array::from_fn(|i| i as u8);
        let zero_rk = [0u32; 4];
        assert_eq!(store(&load(&block, &zero_rk)), block);
    }
}

//! Extension study: how the global write-power budget (§6.1's current
//! capacity, \[22\]) interacts with bit-flip reduction.
//!
//! The paper's evaluation assumes banks are the concurrency limit; this
//! ablation sweeps a global budget of concurrently drivable write slots
//! and shows DEUCE's advantage *grows* as power tightens — fewer flips
//! per write means less current per write, so more writes fit in the
//! budget.

use deuce_bench::{geomean, per_benchmark, run_config, tsv_header, tsv_row, ExperimentArgs};
use deuce_schemes::SchemeKind;
use deuce_sim::SimConfig;

fn main() {
    let mut args = ExperimentArgs::parse();
    if args.cores == 1 {
        args.cores = 8;
    }
    // Budgets in concurrent write slots; `None` = unlimited (the
    // paper's setup, where only banks limit writes).
    let budgets: [Option<usize>; 4] = [Some(4), Some(8), Some(16), None];

    tsv_header(&["power_budget_slots", "DEUCE_speedup", "NoEncrFNW_speedup"]);
    for budget in budgets {
        let rows = per_benchmark(&args.benchmarks, |benchmark| {
            let trace = args.trace(benchmark);
            let config = |kind: SchemeKind| {
                let mut c = SimConfig::new(kind);
                c.power_channels = budget;
                c
            };
            let baseline = run_config(config(SchemeKind::EncryptedDcw), &trace);
            [
                run_config(config(SchemeKind::Deuce), &trace).speedup_over(&baseline),
                run_config(config(SchemeKind::UnencryptedFnw), &trace).speedup_over(&baseline),
            ]
        });
        let deuce: Vec<f64> = rows.iter().map(|(_, s)| s[0]).collect();
        let plain: Vec<f64> = rows.iter().map(|(_, s)| s[1]).collect();
        tsv_row(&[
            budget.map_or("unlimited".to_string(), |b| b.to_string()),
            format!("{:.2}", geomean(&deuce)),
            format!("{:.2}", geomean(&plain)),
        ]);
    }
}

//! The trace generator: turns a [`BenchmarkProfile`] into a concrete
//! request stream.

use std::collections::VecDeque;

use deuce_rng::{DeuceRng, Rng};

use deuce_crypto::{LineAddr, LineBytes, LINE_BYTES};

use crate::io::TraceIoError;
use crate::profiles::{Benchmark, BenchmarkProfile};
use crate::source::WriteSource;
use crate::trace::{Trace, TraceEvent};
use crate::value_model::WordRole;

/// 16-bit words per line (the value model's update granularity).
const WORDS: usize = LINE_BYTES / 2;

/// Builder-style configuration for trace generation.
///
/// # Examples
///
/// ```
/// use deuce_trace::{Benchmark, TraceConfig};
///
/// let trace = TraceConfig::new(Benchmark::Mcf)
///     .lines(128)
///     .writes(5_000)
///     .cores(8)
///     .seed(1)
///     .generate();
/// assert_eq!(trace.write_count(), 5_000);
/// assert!(trace.read_count() > 0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TraceConfig {
    benchmark: Benchmark,
    lines: usize,
    writes: usize,
    cores: u8,
    seed: u64,
    include_reads: bool,
}

impl TraceConfig {
    /// Creates a config with defaults: 256 lines/core working set,
    /// 10 000 writes, 1 core, reads included, seed 0.
    #[must_use]
    pub fn new(benchmark: Benchmark) -> Self {
        Self {
            benchmark,
            lines: 256,
            writes: 10_000,
            cores: 1,
            seed: 0,
            include_reads: true,
        }
    }

    /// Working-set size in lines per core.
    ///
    /// # Panics
    ///
    /// Panics if `lines == 0`.
    #[must_use]
    pub fn lines(mut self, lines: usize) -> Self {
        assert!(lines > 0, "working set must be non-empty");
        self.lines = lines;
        self
    }

    /// Total writeback count across all cores.
    #[must_use]
    pub fn writes(mut self, writes: usize) -> Self {
        self.writes = writes;
        self
    }

    /// Number of cores in rate mode (each runs its own copy).
    ///
    /// # Panics
    ///
    /// Panics if `cores == 0`.
    #[must_use]
    pub fn cores(mut self, cores: u8) -> Self {
        assert!(cores > 0, "need at least one core");
        self.cores = cores;
        self
    }

    /// RNG seed (traces are deterministic given the seed).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Disables read-event generation (flip-rate studies only need
    /// writes).
    #[must_use]
    pub fn without_reads(mut self) -> Self {
        self.include_reads = false;
        self
    }

    /// The benchmark being generated.
    #[must_use]
    pub fn benchmark(&self) -> Benchmark {
        self.benchmark
    }

    /// Generates the trace by materialising the whole stream
    /// ([`TraceConfig::stream`] yields the identical event sequence
    /// without holding it in RAM).
    #[must_use]
    pub fn generate(&self) -> Trace {
        let mut source = self.stream();
        Trace::from_source(&mut source).expect("generator sources are infallible")
    }

    /// Creates a streaming generator over this config: the same event
    /// sequence as [`TraceConfig::generate`], produced on demand in
    /// O(working set) memory instead of O(trace length).
    ///
    /// # Examples
    ///
    /// ```
    /// use deuce_trace::{Benchmark, Trace, TraceConfig};
    ///
    /// let config = TraceConfig::new(Benchmark::Mcf).writes(1_000).seed(2);
    /// let streamed = Trace::from_source(&mut config.stream()).unwrap();
    /// assert_eq!(streamed, config.generate());
    /// ```
    #[must_use]
    pub fn stream(&self) -> GeneratorSource {
        let profile = self.benchmark.profile();
        let cores: Vec<CoreGenerator> = (0..self.cores)
            .map(|core| {
                CoreGenerator::new(
                    core,
                    &profile,
                    self.lines,
                    self.seed
                        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                        .wrapping_add(u64::from(core)),
                    self.include_reads,
                )
            })
            .collect();
        GeneratorSource {
            profile,
            cores,
            pending: VecDeque::new(),
            writes_emitted: 0,
            writes_total: self.writes,
        }
    }
}

/// A seeded benchmark generator as a [`WriteSource`]: yields the exact
/// event sequence of [`TraceConfig::generate`] without materialising
/// it. Created by [`TraceConfig::stream`].
#[derive(Debug)]
pub struct GeneratorSource {
    profile: BenchmarkProfile,
    cores: Vec<CoreGenerator>,
    pending: VecDeque<TraceEvent>,
    writes_emitted: usize,
    writes_total: usize,
}

impl WriteSource for GeneratorSource {
    fn cores(&self) -> usize {
        // Writebacks round-robin over cores starting at 0, so a stream
        // with fewer writes than cores only ever touches the leading
        // cores; reads are issued by the same core as their writeback.
        if self.writes_total == 0 {
            1
        } else {
            self.cores.len().min(self.writes_total)
        }
    }

    fn next_event(&mut self) -> Result<Option<TraceEvent>, TraceIoError> {
        while self.pending.is_empty() && self.writes_emitted < self.writes_total {
            let core = self.writes_emitted % self.cores.len();
            self.cores[core].emit_writeback(&self.profile, &mut self.pending);
            self.writes_emitted += 1;
        }
        Ok(self.pending.pop_front())
    }
}

/// Per-line generator state.
#[derive(Debug, Clone)]
struct LineState {
    data: LineBytes,
    roles: [WordRole; WORDS],
    hot: Vec<u8>,
    writes: u64,
}

/// One core's generator (rate mode: every core runs the same profile on
/// its own address range).
#[derive(Debug)]
struct CoreGenerator {
    core: u8,
    rng: DeuceRng,
    lines: Vec<LineState>,
    zipf_cdf: Vec<f64>,
    instr: u64,
    instr_per_write: f64,
    reads_per_write: f64,
    read_debt: f64,
    include_reads: bool,
}

impl CoreGenerator {
    fn new(
        core: u8,
        profile: &BenchmarkProfile,
        lines: usize,
        seed: u64,
        include_reads: bool,
    ) -> Self {
        let mut rng = DeuceRng::seed_from_u64(seed);
        // Layout template: programs lay the same structs out in every
        // line of an array, so hot-word positions and roles repeat across
        // lines (with some jitter). This cross-line correlation is what
        // concentrates writes on fixed bit positions (Fig. 12's 6–27×
        // skew) and limits DEUCE's un-leveled lifetime gain (Fig. 14).
        let template_hot = sample_hot_words(&mut rng, profile.hot_words.min(WORDS));
        let template_roles: [WordRole; WORDS] =
            core::array::from_fn(|_| profile.roles.pick(rng.gen()));
        const LAYOUT_JITTER: f64 = 0.2;

        let line_states = (0..lines)
            .map(|_| {
                let mut data = [0u8; LINE_BYTES];
                rng.fill(&mut data);
                let roles = template_roles;
                let mut hot = template_hot.clone();
                for w in &mut hot {
                    if rng.gen_bool(LAYOUT_JITTER) {
                        // Jitter within the same 16-byte block.
                        let candidate = (*w / 8) * 8 + rng.gen_range(0..8u8);
                        if !template_hot.contains(&candidate) {
                            *w = candidate;
                        }
                    }
                }
                hot.sort_unstable();
                hot.dedup();
                LineState {
                    data,
                    roles,
                    hot,
                    writes: 0,
                }
            })
            .collect();

        // Zipf CDF over line ranks.
        let mut weights: Vec<f64> = (0..lines)
            .map(|r| 1.0 / ((r + 1) as f64).powf(profile.line_zipf))
            .collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        for w in &mut weights {
            acc += *w / total;
            *w = acc;
        }

        Self {
            core,
            rng,
            lines: line_states,
            zipf_cdf: weights,
            instr: 0,
            instr_per_write: 1000.0 / profile.wbpki,
            reads_per_write: profile.mpki / profile.wbpki,
            read_debt: 0.0,
            include_reads,
        }
    }

    fn pick_line(&mut self) -> usize {
        let u: f64 = self.rng.gen();
        self.zipf_cdf.partition_point(|&c| c < u).min(self.lines.len() - 1)
    }

    fn addr(&self, line: usize) -> LineAddr {
        LineAddr::new(u64::from(self.core) << 32 | line as u64)
    }

    /// Emits one writeback (preceded by its share of reads) into `out`.
    fn emit_writeback(&mut self, profile: &BenchmarkProfile, out: &mut VecDeque<TraceEvent>) {
        self.instr += self.instr_per_write as u64;

        if self.include_reads {
            self.read_debt += self.reads_per_write;
            while self.read_debt >= 1.0 {
                self.read_debt -= 1.0;
                let line = self.pick_line();
                let addr = self.addr(line);
                out.push_back(TraceEvent::read(self.core, self.instr, addr));
            }
        }

        let line_idx = self.pick_line();
        let addr = self.addr(line_idx);

        // Split borrows: mutate the line state with a local RNG handle.
        let line = &mut self.lines[line_idx];
        line.writes += 1;

        // Footprint drift: re-sample part of the hot set periodically.
        if let Some(period) = profile.drift.period {
            if period > 0 && line.writes.is_multiple_of(period) {
                let replace = ((line.hot.len() as f64) * profile.drift.fraction).round() as usize;
                for _ in 0..replace {
                    if line.hot.is_empty() {
                        break;
                    }
                    let victim = self.rng.gen_range(0..line.hot.len());
                    line.hot.remove(victim);
                }
                // Drifted-in words keep the spatial clustering: prefer
                // words from blocks the footprint already occupies.
                let blocks: Vec<u8> = {
                    let mut b: Vec<u8> = line.hot.iter().map(|w| w / 8).collect();
                    b.sort_unstable();
                    b.dedup();
                    b
                };
                while line.hot.len() < profile.hot_words.min(WORDS) {
                    let candidate = if !blocks.is_empty() && self.rng.gen_bool(0.7) {
                        blocks[self.rng.gen_range(0..blocks.len())] * 8
                            + self.rng.gen_range(0..8u8)
                    } else {
                        self.rng.gen_range(0..WORDS) as u8
                    };
                    if !line.hot.contains(&candidate) {
                        line.hot.push(candidate);
                    }
                }
            }
        }

        // Decide which hot blocks this write touches: writebacks update
        // one field group at a time, so each hot block participates with
        // `block_activity` probability (at least one participates).
        let mut hot_blocks: Vec<u8> = line.hot.iter().map(|w| w / 8).collect();
        hot_blocks.sort_unstable();
        hot_blocks.dedup();
        let mut active = [false; 4];
        for &b in &hot_blocks {
            active[usize::from(b)] = self.rng.gen_bool(profile.block_activity);
        }
        if !active.iter().any(|&a| a) {
            active[usize::from(hot_blocks[self.rng.gen_range(0..hot_blocks.len())])] = true;
        }

        // Touch hot words in the active blocks.
        let mut touched_any = false;
        for i in 0..line.hot.len() {
            let word = usize::from(line.hot[i]);
            if !active[word / 8] {
                continue;
            }
            if self.rng.gen_bool(profile.touch_probability) {
                let old = u16::from_le_bytes([line.data[word * 2], line.data[word * 2 + 1]]);
                let new = line.roles[word].next_value(old, &mut self.rng);
                line.data[word * 2..word * 2 + 2].copy_from_slice(&new.to_le_bytes());
                touched_any = true;
            }
        }
        if !touched_any {
            // A writeback with zero modified bits would be dropped by the
            // cache; force at least one word change.
            let word = usize::from(line.hot[self.rng.gen_range(0..line.hot.len())]);
            let old = u16::from_le_bytes([line.data[word * 2], line.data[word * 2 + 1]]);
            let new = line.roles[word].next_value(old, &mut self.rng);
            line.data[word * 2..word * 2 + 2].copy_from_slice(&new.to_le_bytes());
        }

        let data = line.data;
        out.push_back(TraceEvent::write(self.core, self.instr, addr, data));
    }
}

/// Samples a spatially-clustered hot-word footprint: real writebacks
/// exhibit block-level locality (structs and array slices), so hot words
/// concentrate in a few 16-byte blocks rather than scattering across the
/// line. This is what gives Block-Level Encryption its ~33% average
/// (Fig. 18) instead of degenerating to 50%.
fn sample_hot_words(rng: &mut DeuceRng, count: usize) -> Vec<u8> {
    const WORDS_PER_BLOCK: usize = 8;
    const BLOCKS: usize = 4;
    let blocks_needed = count.div_ceil(5).clamp(1, BLOCKS);
    let hot_blocks = sample_distinct(rng, blocks_needed, BLOCKS);
    // Candidate words: all words of the hot blocks.
    let mut candidates: Vec<u8> = hot_blocks
        .iter()
        .flat_map(|&b| (0..WORDS_PER_BLOCK as u8).map(move |w| b * WORDS_PER_BLOCK as u8 + w))
        .collect();
    // Partial shuffle, take `count`.
    for i in 0..count.min(candidates.len()) {
        let j = rng.gen_range(i..candidates.len());
        candidates.swap(i, j);
    }
    candidates.truncate(count.min(WORDS_PER_BLOCK * BLOCKS));
    candidates
}

fn sample_distinct(rng: &mut DeuceRng, count: usize, range: usize) -> Vec<u8> {
    let mut positions: Vec<u8> = (0..range as u8).collect();
    for i in 0..count.min(range) {
        let j = rng.gen_range(i..range);
        positions.swap(i, j);
    }
    positions.truncate(count.min(range));
    positions
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Op;

    #[test]
    fn deterministic_given_seed() {
        let a = TraceConfig::new(Benchmark::Mcf).writes(500).seed(9).generate();
        let b = TraceConfig::new(Benchmark::Mcf).writes(500).seed(9).generate();
        assert_eq!(a, b);
        let c = TraceConfig::new(Benchmark::Mcf).writes(500).seed(10).generate();
        assert_ne!(a, c);
    }

    #[test]
    fn read_write_ratio_tracks_table2() {
        let trace = TraceConfig::new(Benchmark::Libquantum)
            .writes(4000)
            .seed(1)
            .generate();
        let ratio = trace.read_count() as f64 / trace.write_count() as f64;
        let expected = 22.9 / 9.78;
        assert!(
            (ratio - expected).abs() / expected < 0.05,
            "read/write ratio {ratio}, expected {expected}"
        );
    }

    #[test]
    fn writes_carry_data_reads_do_not() {
        let trace = TraceConfig::new(Benchmark::Astar).writes(200).generate();
        for e in trace.events() {
            match e.op {
                Op::Read => assert!(e.data.is_none()),
                Op::Write => assert!(e.data.is_some()),
            }
        }
    }

    #[test]
    fn every_write_changes_the_line() {
        use std::collections::HashMap;
        let trace = TraceConfig::new(Benchmark::Wrf).writes(2000).seed(3).generate();
        let mut last: HashMap<u64, LineBytes> = HashMap::new();
        let mut checked = 0;
        for e in trace.writes() {
            let data = e.data.unwrap();
            if let Some(prev) = last.get(&e.line.value()) {
                assert_ne!(prev, &data, "writeback with no modified bits");
                checked += 1;
            }
            last.insert(e.line.value(), data);
        }
        assert!(checked > 1000);
    }

    #[test]
    fn cores_use_disjoint_address_ranges() {
        let trace = TraceConfig::new(Benchmark::Gems)
            .writes(800)
            .cores(4)
            .generate();
        for e in trace.events() {
            assert_eq!(e.line.value() >> 32, u64::from(e.core));
        }
    }

    #[test]
    fn instruction_counts_advance_per_core() {
        let trace = TraceConfig::new(Benchmark::Milc).writes(400).cores(2).generate();
        for core in 0..2u8 {
            let instrs: Vec<u64> = trace
                .events()
                .iter()
                .filter(|e| e.core == core)
                .map(|e| e.instr)
                .collect();
            assert!(instrs.windows(2).all(|w| w[0] <= w[1]), "core {core} non-monotonic");
            assert!(*instrs.last().unwrap() > 0);
        }
    }

    #[test]
    fn working_set_is_respected() {
        let trace = TraceConfig::new(Benchmark::Soplex)
            .lines(32)
            .writes(1000)
            .generate();
        for e in trace.events() {
            assert!((e.line.value() & 0xFFFF_FFFF) < 32);
        }
    }

    #[test]
    fn sample_distinct_is_distinct() {
        let mut rng = DeuceRng::seed_from_u64(5);
        for _ in 0..100 {
            let s = sample_distinct(&mut rng, 10, 32);
            let set: std::collections::HashSet<_> = s.iter().collect();
            assert_eq!(set.len(), 10);
        }
    }
}

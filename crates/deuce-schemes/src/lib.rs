//! Write-efficient encryption schemes for secure non-volatile memory.
//!
//! This crate is the heart of the DEUCE reproduction: it implements, as
//! bit-exact per-line state machines, every memory encoding the paper
//! evaluates:
//!
//! | Scheme | Paper section | Metadata bits/line | Avg flips/write (paper) |
//! |---|---|---|---|
//! | Unencrypted + DCW | §1 | 0 | 12.4% |
//! | Unencrypted + FNW | §1, \[8\] | 32 | 10.5% |
//! | Encrypted (counter mode) + DCW | §2.4 | 0 | 50% |
//! | Encrypted + FNW | §2.5 | 32 | 42.7% |
//! | BLE (per-16B-block counters) | §7.1, \[18\] | 0 (+4 counters) | 33% |
//! | **DEUCE** | §4 | 32 | **23.7%** |
//! | **DynDEUCE** | §4.6 | 33 | **22.0%** |
//! | DEUCE+FNW | §4.6 | 64 | 20.3% |
//! | BLE+DEUCE | §7.1 | 32 (+4 counters) | 19.9% |
//!
//! Every scheme is driven through the same interface: a small `Copy`
//! parameter struct implementing [`LineScheme`] plus a compact per-line
//! state. Single lines live in a [`SchemeCell`] (of which [`SchemeLine`]
//! is the runtime-dispatched flavour); whole memories live in an
//! arena-backed [`LineStore`]. Writes return a [`WriteOutcome`] carrying
//! the exact old/new stored images — from which bit flips, write slots,
//! energy, and wear all derive.
//!
//! # Examples
//!
//! ```
//! use deuce_crypto::{LineAddr, OtpEngine, SecretKey};
//! use deuce_schemes::{SchemeConfig, SchemeKind, SchemeLine};
//!
//! let engine = OtpEngine::new(&SecretKey::from_seed(1));
//! let config = SchemeConfig::new(SchemeKind::Deuce);
//! let mut line = SchemeLine::new(&config, &engine, LineAddr::new(0), &[0u8; 64]);
//!
//! // Modify a single 16-bit word of the line.
//! let mut data = [0u8; 64];
//! data[10] = 0xFF;
//! let outcome = line.write(&engine, &data);
//!
//! // DEUCE re-encrypts only the modified word: ~8 bit flips + 1 metadata
//! // bit, instead of the ~256 a fully re-encrypted line would see.
//! assert!(outcome.flips.total() < 40);
//! assert_eq!(line.read(&engine), data); // decryption is exact
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr_pad;
mod ble;
mod config;
mod core;
mod dcw;
mod deuce;
mod deuce_fnw;
mod dyn_deuce;
mod fnw;
mod line;
mod outcome;
mod scheme;
mod store;

pub use addr_pad::{AddrPadLine, AddrPadScheme};
pub use ble::{BleDeuceLine, BleDeuceScheme, BleDeuceState, BleLine, BleScheme, BleState};
pub use config::{SchemeConfig, SchemeKind, WordSize};
pub use self::core::CtrState;
pub use dcw::{EncryptedDcwLine, EncryptedDcwScheme, UnencryptedDcwLine, UnencryptedDcwScheme};
pub use deuce::{DeuceLine, DeuceScheme, DeuceState};
pub use deuce_fnw::{DeuceFnwLine, DeuceFnwScheme, DeuceFnwState};
pub use dyn_deuce::{DynDeuceLine, DynDeuceScheme, DynDeuceState};
pub use fnw::{
    fnw_decode_segment, fnw_encode, EncryptedFnwLine, EncryptedFnwScheme, EncryptedFnwState,
    FnwEncoding, FnwState, UnencryptedFnwLine, UnencryptedFnwScheme,
};
pub use line::{AnyScheme, AnyState, SchemeLine};
pub use outcome::WriteOutcome;
pub use scheme::{LineMut, LineRef, LineScheme, SchemeCell};
pub use store::{
    ArenaBackend, FilePageBackend, LineStore, PageBackend, PageHeader, StateCodec, StorePageStats,
    SLOTS_PER_PAGE,
};

pub use deuce_crypto::{EpochInterval, LineAddr, LineBytes, OtpEngine, SecretKey, LINE_BYTES};
pub use deuce_nvm::{FlipCount, LineImage, MetaBits};

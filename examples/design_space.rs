//! Design-space exploration: sweep DEUCE's two parameters — tracking
//! word size and epoch interval — across contrasting workloads, the way
//! an architect sizing a memory controller would (§4.2 of the paper).
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use deuce::crypto::EpochInterval;
use deuce::schemes::{SchemeConfig, SchemeKind, WordSize};
use deuce::sim::{SimConfig, Simulator};
use deuce::trace::{Benchmark, TraceConfig};

fn main() {
    let word_sizes = [
        WordSize::Bytes1,
        WordSize::Bytes2,
        WordSize::Bytes4,
        WordSize::Bytes8,
    ];
    let epochs = [8u64, 16, 32, 64];

    // A sparse, DEUCE-friendly workload; a dense adversarial one; and
    // one whose write footprint drifts (epoch-sensitive).
    for benchmark in [Benchmark::Libquantum, Benchmark::Gems, Benchmark::Wrf] {
        let trace = TraceConfig::new(benchmark)
            .lines(128)
            .writes(8_000)
            .seed(3)
            .generate();

        println!("=== {benchmark}: flip rate (% of line) and metadata cost ===");
        print!("{:>14}", "word \\ epoch");
        for epoch in epochs {
            print!("{epoch:>9}");
        }
        println!("{:>12}", "meta bits");

        for word_size in word_sizes {
            print!("{:>14}", format!("{}B", word_size.bytes()));
            for epoch in epochs {
                let config = SchemeConfig::new(SchemeKind::Deuce)
                    .with_word_size(word_size)
                    .with_epoch(EpochInterval::new(epoch).expect("power of two"));
                let result = Simulator::new(SimConfig::with_scheme(config)).run_trace(&trace);
                print!("{:>8.1}%", result.flip_rate() * 100.0);
            }
            println!("{:>12}", word_size.tracking_bits());
        }
        println!();
    }

    println!("Reading the grids:");
    println!("- finer words always flip fewer bits, at linear metadata cost");
    println!("  (the paper picks 2-byte words: 32 bits/line, §4.4);");
    println!("- longer epochs help stable footprints (libq) but hurt");
    println!("  drifting ones (wrf rises past epoch 8–16, Fig. 9);");
    println!("- on dense writers (Gems) no setting helps much — that is");
    println!("  what DynDEUCE's FNW fallback is for (§4.6).");
}

//! Load/store access streams feeding the hierarchy.

use deuce_rng::{DeuceRng, Rng};

/// Load or store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// A read of the line.
    Load,
    /// A write of `len` bytes at `offset` within the line.
    Store,
}

/// One memory access as issued by a core.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemAccess {
    /// Byte address.
    pub addr: u64,
    /// Load or store.
    pub kind: AccessKind,
    /// For stores: the bytes written (at `addr`, within one line).
    pub store_bytes: Vec<u8>,
    /// Issuing core's instruction count.
    pub instr: u64,
}

/// A simple synthetic load/store generator with pointer-chasing-style
/// locality: hot lines are revisited Zipf-style, stores update a few
/// bytes at stable offsets — enough structure for the hierarchy to
/// produce realistic coalesced writebacks.
#[derive(Debug)]
pub struct AccessStream {
    rng: DeuceRng,
    working_set_lines: u64,
    store_fraction: f64,
    instr_per_access: u64,
    instr: u64,
    zipf: Vec<f64>,
}

impl AccessStream {
    /// Creates a stream over `working_set_lines` lines with the given
    /// store fraction and mean instructions between accesses.
    ///
    /// # Panics
    ///
    /// Panics if `working_set_lines == 0` or `store_fraction` is not in
    /// `[0, 1]`.
    #[must_use]
    pub fn new(
        working_set_lines: u64,
        store_fraction: f64,
        instr_per_access: u64,
        seed: u64,
    ) -> Self {
        assert!(working_set_lines > 0);
        assert!((0.0..=1.0).contains(&store_fraction));
        let mut weights: Vec<f64> = (0..working_set_lines.min(1 << 16))
            .map(|r| 1.0 / ((r + 1) as f64).powf(0.7))
            .collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        for w in &mut weights {
            acc += *w / total;
            *w = acc;
        }
        Self {
            rng: DeuceRng::seed_from_u64(seed),
            working_set_lines,
            store_fraction,
            instr_per_access,
            instr: 0,
            zipf: weights,
        }
    }

    fn pick_line(&mut self) -> u64 {
        let u: f64 = self.rng.gen();
        let rank = self.zipf.partition_point(|&c| c < u) as u64;
        rank.min(self.working_set_lines - 1)
    }

    /// Generates the next access.
    pub fn next_access(&mut self) -> MemAccess {
        self.instr += self.instr_per_access;
        let line = self.pick_line();
        let offset = u64::from(self.rng.gen_range(0u8..32)) * 2;
        let addr = line * 64 + offset;
        if self.rng.gen_bool(self.store_fraction) {
            let len = *[1usize, 2, 4, 8]
                .get(self.rng.gen_range(0usize..4))
                .expect("fixed table");
            let len = len.min(64 - offset as usize);
            let bytes = (0..len).map(|_| self.rng.gen()).collect();
            MemAccess {
                addr,
                kind: AccessKind::Store,
                store_bytes: bytes,
                instr: self.instr,
            }
        } else {
            MemAccess {
                addr,
                kind: AccessKind::Load,
                store_bytes: Vec::new(),
                instr: self.instr,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_respects_working_set_and_rate() {
        let mut stream = AccessStream::new(100, 0.3, 4, 1);
        let mut stores = 0u32;
        for i in 1..=2000u64 {
            let access = stream.next_access();
            assert!(access.addr / 64 < 100);
            assert_eq!(access.instr, i * 4);
            if access.kind == AccessKind::Store {
                stores += 1;
                assert!(!access.store_bytes.is_empty());
                assert!(access.addr % 64 + access.store_bytes.len() as u64 <= 64);
            } else {
                assert!(access.store_bytes.is_empty());
            }
        }
        let fraction = f64::from(stores) / 2000.0;
        assert!((fraction - 0.3).abs() < 0.05, "store fraction {fraction}");
    }

    #[test]
    fn zipf_concentrates_on_hot_lines() {
        let mut stream = AccessStream::new(1000, 0.0, 1, 2);
        let mut hot = 0u32;
        for _ in 0..2000 {
            if stream.next_access().addr / 64 < 10 {
                hot += 1;
            }
        }
        assert!(hot > 200, "top-1% lines got {hot}/2000 accesses");
    }
}

//! File-level round-trip and corrupt-input coverage for trace I/O.
//!
//! The unit tests in `io.rs` exercise the codecs against in-memory
//! buffers; these tests go through real files and the public
//! `open_source` sniffing entry point, and confirm that damaged inputs
//! fail loudly instead of yielding a silently short trace.

use deuce_trace::{
    open_source, read_trace, write_source_jsonl, write_source_to_file, write_trace, Benchmark,
    Trace, TraceConfig, TraceIoError,
};
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::PathBuf;

fn dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("deuce-io-roundtrip-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn workload() -> TraceConfig {
    TraceConfig::new(Benchmark::Soplex).lines(32).writes(250).cores(2).seed(3)
}

#[test]
fn binary_file_round_trips_by_both_writers() {
    let dir = dir();
    let trace = workload().generate();

    // Materialised writer.
    let whole = dir.join("whole.trace");
    write_trace(BufWriter::new(File::create(&whole).unwrap()), &trace).unwrap();
    assert_eq!(read_trace(BufReader::new(File::open(&whole).unwrap())).unwrap(), trace);

    // Streaming writer produces an equivalent trace (same events, same
    // cores) and the sniffing opener reads it back.
    let streamed = dir.join("streamed.trace");
    let events = write_source_to_file(&streamed, &mut workload().stream()).unwrap();
    assert_eq!(events, trace.len() as u64);
    let mut source = open_source(&streamed).unwrap();
    assert_eq!(Trace::from_source(&mut *source).unwrap(), trace);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn jsonl_file_round_trips_through_open_source() {
    let dir = dir();
    let trace = workload().generate();
    let path = dir.join("t.jsonl");
    write_source_jsonl(BufWriter::new(File::create(&path).unwrap()), &mut workload().stream())
        .unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    assert!(text.starts_with("{\"trace\":\"deuce\""), "sniffable header line");
    let mut source = open_source(&path).unwrap();
    assert_eq!(Trace::from_source(&mut *source).unwrap(), trace);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncated_binary_file_errors_instead_of_shortening() {
    let dir = dir();
    let path = dir.join("truncated.trace");
    write_source_to_file(&path, &mut workload().stream()).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    // Cut inside an event record (not on a record boundary).
    std::fs::write(&path, &bytes[..bytes.len() - 37]).unwrap();
    let mut source = open_source(&path).unwrap();
    let err = Trace::from_source(&mut *source).unwrap_err();
    assert!(matches!(err, TraceIoError::Io(_)), "{err:?}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncated_jsonl_file_errors_instead_of_shortening() {
    let dir = dir();
    let path = dir.join("truncated.jsonl");
    write_source_jsonl(BufWriter::new(File::create(&path).unwrap()), &mut workload().stream())
        .unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::write(&path, &text[..text.len() - 20]).unwrap();
    let mut source = open_source(&path).unwrap();
    let err = Trace::from_source(&mut *source).unwrap_err();
    assert!(matches!(err, TraceIoError::BadRecord(_)), "{err:?}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_headers_are_rejected() {
    let dir = dir();

    let not_a_trace = dir.join("bogus.trace");
    std::fs::write(&not_a_trace, b"MAGICMAG\x01\x00\x00\x00").unwrap();
    assert!(open_source(&not_a_trace).is_err());

    let bad_jsonl = dir.join("bogus.jsonl");
    std::fs::write(&bad_jsonl, "{\"trace\":\"other\",\"version\":1,\"cores\":1}\n").unwrap();
    assert!(open_source(&bad_jsonl).is_err());

    let empty = dir.join("empty.trace");
    std::fs::write(&empty, b"").unwrap();
    assert!(open_source(&empty).is_err());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn event_count_mismatch_is_detected() {
    let dir = dir();
    let path = dir.join("overcount.trace");
    write_source_to_file(&path, &mut workload().stream()).unwrap();
    // Inflate the header's event count: the stream now ends early.
    let mut bytes = std::fs::read(&path).unwrap();
    let count = u64::from_le_bytes(bytes[12..20].try_into().unwrap());
    bytes[12..20].copy_from_slice(&(count + 5).to_le_bytes());
    std::fs::write(&path, &bytes).unwrap();
    let mut source = open_source(&path).unwrap();
    assert!(Trace::from_source(&mut *source).is_err());
    std::fs::remove_dir_all(&dir).ok();
}

//! DEUCE's virtual leading/trailing counters (§4.1 of the paper).

/// The epoch interval: a full-line re-encryption happens every `interval`
/// writes. Must be a power of two so the trailing counter can be derived by
/// masking the leading counter's least-significant bits.
///
/// The paper evaluates intervals of 8, 16 and 32 (Fig. 9) and defaults
/// to 32.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EpochInterval {
    interval: u64,
}

impl EpochInterval {
    /// The paper's default epoch interval of 32 writes.
    pub const DEFAULT: Self = Self { interval: 32 };

    /// Creates an epoch interval.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidEpochInterval`] unless `interval` is a power of two
    /// and at least 2.
    pub fn new(interval: u64) -> Result<Self, InvalidEpochInterval> {
        if interval >= 2 && interval.is_power_of_two() {
            Ok(Self { interval })
        } else {
            Err(InvalidEpochInterval(interval))
        }
    }

    /// The interval in writes.
    #[must_use]
    pub fn writes(self) -> u64 {
        self.interval
    }

    /// Mask that clears the in-epoch LSBs of a counter.
    #[must_use]
    pub fn tctr_mask(self) -> u64 {
        !(self.interval - 1)
    }

    /// Number of LSBs masked off the leading counter.
    #[must_use]
    pub fn masked_bits(self) -> u32 {
        self.interval.trailing_zeros()
    }
}

impl Default for EpochInterval {
    fn default() -> Self {
        Self::DEFAULT
    }
}

/// Error returned by [`EpochInterval::new`] for non-power-of-two intervals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidEpochInterval(pub u64);

impl core::fmt::Display for InvalidEpochInterval {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "invalid epoch interval {} (must be a power of two >= 2)",
            self.0
        )
    }
}

impl std::error::Error for InvalidEpochInterval {}

/// The pair of *virtual* counters DEUCE derives from the stored line
/// counter: the Leading Counter (LCTR, identical to the line counter) and
/// the Trailing Counter (TCTR, the LCTR with its in-epoch LSBs masked).
///
/// Words modified since the start of the epoch are encrypted with the LCTR
/// pad; unmodified words remain encrypted with the TCTR pad. Neither
/// counter is stored — "except for the existing line counter, DEUCE does
/// not require separate counters" (§4.1).
///
/// # Examples
///
/// ```
/// use deuce_crypto::{EpochInterval, VirtualCounterPair};
///
/// let epoch = EpochInterval::new(4)?;
/// let v = VirtualCounterPair::derive(6, epoch);
/// assert_eq!(v.lctr(), 6);
/// assert_eq!(v.tctr(), 4); // 2 LSBs masked
/// assert!(!v.is_epoch_start());
/// assert!(VirtualCounterPair::derive(8, epoch).is_epoch_start());
/// # Ok::<(), deuce_crypto::InvalidEpochInterval>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VirtualCounterPair {
    lctr: u64,
    tctr: u64,
}

impl VirtualCounterPair {
    /// Derives both virtual counters from the stored line counter.
    #[must_use]
    pub fn derive(line_counter: u64, epoch: EpochInterval) -> Self {
        Self {
            lctr: line_counter,
            tctr: line_counter & epoch.tctr_mask(),
        }
    }

    /// The leading counter (equals the line counter).
    #[must_use]
    pub fn lctr(self) -> u64 {
        self.lctr
    }

    /// The trailing counter (LCTR with in-epoch LSBs masked).
    #[must_use]
    pub fn tctr(self) -> u64 {
        self.tctr
    }

    /// True when LCTR == TCTR, i.e. this write starts a new epoch: the
    /// whole line is re-encrypted and all modified bits reset.
    #[must_use]
    pub fn is_epoch_start(self) -> bool {
        self.lctr == self.tctr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_interval_is_32() {
        assert_eq!(EpochInterval::default().writes(), 32);
        assert_eq!(EpochInterval::DEFAULT.masked_bits(), 5);
    }

    #[test]
    fn rejects_invalid_intervals() {
        for bad in [0u64, 1, 3, 6, 12, 33] {
            assert_eq!(EpochInterval::new(bad), Err(InvalidEpochInterval(bad)));
        }
        for good in [2u64, 4, 8, 16, 32, 64] {
            assert!(EpochInterval::new(good).is_ok());
        }
    }

    #[test]
    fn paper_example_epoch_of_4() {
        // Figure 6: epoch interval 4; at counters 0, 4, 8 the epoch starts.
        let epoch = EpochInterval::new(4).unwrap();
        for ctr in 0..12u64 {
            let v = VirtualCounterPair::derive(ctr, epoch);
            assert_eq!(v.lctr(), ctr);
            assert_eq!(v.tctr(), ctr / 4 * 4);
            assert_eq!(v.is_epoch_start(), ctr % 4 == 0);
        }
    }

    #[test]
    fn tctr_never_exceeds_lctr() {
        let epoch = EpochInterval::new(32).unwrap();
        for ctr in 0..1000u64 {
            let v = VirtualCounterPair::derive(ctr, epoch);
            assert!(v.tctr() <= v.lctr());
            assert!(v.lctr() - v.tctr() < 32);
        }
    }

    #[test]
    fn error_display() {
        assert!(InvalidEpochInterval(3).to_string().contains('3'));
    }
}

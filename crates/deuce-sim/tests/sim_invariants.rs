//! Invariant tests over whole simulation runs.

use deuce_rng::{DeuceRng, Rng};
use deuce_schemes::{SchemeConfig, SchemeKind};
use deuce_sim::{SimConfig, Simulator, WearConfig};
use deuce_trace::{Benchmark, TraceConfig};

/// Aggregate invariants that must hold for any scheme and workload:
/// bounded flip rate, slot bounds, time/energy positivity.
#[test]
fn run_invariants() {
    let mut rng = DeuceRng::seed_from_u64(0x51A1_0001);
    for _ in 0..12 {
        let kind = SchemeKind::ALL[rng.gen_range(0..SchemeKind::ALL.len())];
        let benchmark = Benchmark::ALL[rng.gen_range(0..Benchmark::ALL.len())];
        let seed: u64 = rng.gen();
        let trace = TraceConfig::new(benchmark).lines(32).writes(800).seed(seed).generate();
        let result = Simulator::new(SimConfig::new(kind)).run_trace(&trace);
        assert!(result.writes > 0);
        assert!(result.flip_rate() >= 0.0);
        assert!(result.flip_rate() <= (512.0 + 64.0) / 512.0);
        assert!(result.avg_slots_per_write() >= 1.0);
        assert!(result.avg_slots_per_write() <= 4.0);
        assert!(result.exec_time_ns > 0.0);
        assert!(result.energy_pj() > 0.0);
        assert!(result.edp() > 0.0);
    }
}

/// More writes can only increase total time, flips and energy.
#[test]
fn metrics_grow_with_trace_length() {
    let short = TraceConfig::new(Benchmark::Lbm).lines(32).writes(500).seed(3).generate();
    let long = TraceConfig::new(Benchmark::Lbm).lines(32).writes(2_000).seed(3).generate();
    let sim = Simulator::new(SimConfig::new(SchemeKind::Deuce));
    let a = sim.run_trace(&short);
    let b = sim.run_trace(&long);
    assert!(b.writes > a.writes);
    assert!(b.data_flips > a.data_flips);
    assert!(b.exec_time_ns > a.exec_time_ns);
    assert!(b.energy_pj() > a.energy_pj());
}

/// Epoch starts occur at the expected aggregate rate (writes / 32,
/// scattered across lines, minus truncation per line).
#[test]
fn epoch_start_rate_is_plausible() {
    let trace = TraceConfig::new(Benchmark::Libquantum)
        .lines(16)
        .writes(4_000)
        .seed(6)
        .generate();
    let result = Simulator::new(SimConfig::new(SchemeKind::Deuce)).run_trace(&trace);
    let expected = result.writes as f64 / 32.0;
    let observed = result.epoch_starts as f64;
    assert!(
        (observed - expected).abs() / expected < 0.15,
        "epoch starts {observed} vs expected {expected}"
    );
}

/// The scheme changes write-side metrics but never the read count or
/// arrival structure.
#[test]
fn reads_are_scheme_independent() {
    let trace = TraceConfig::new(Benchmark::Mcf).lines(32).writes(1_000).seed(2).generate();
    let results: Vec<_> = [SchemeKind::EncryptedDcw, SchemeKind::Deuce, SchemeKind::UnencryptedFnw]
        .into_iter()
        .map(|kind| Simulator::new(SimConfig::new(kind)).run_trace(&trace))
        .collect();
    assert!(results.windows(2).all(|w| w[0].reads == w[1].reads));
    assert!(results.windows(2).all(|w| w[0].writes == w[1].writes));
}

/// The counter-flip channel reports only for counter-bearing schemes.
#[test]
fn counter_flips_only_where_counters_exist() {
    let trace = TraceConfig::new(Benchmark::Astar).lines(32).writes(800).seed(1).generate();
    for kind in SchemeKind::ALL {
        let result = Simulator::new(SimConfig::new(kind)).run_trace(&trace);
        let has_counters = SchemeConfig::new(kind).counter_storage_bits() > 0;
        assert_eq!(
            result.counter_flips > 0,
            has_counters,
            "{kind}: counter_flips = {}",
            result.counter_flips
        );
    }
}

/// Including counter bits in the metric strictly increases it for
/// counter-mode schemes and is a no-op for unencrypted ones.
#[test]
fn metric_config_counter_accounting() {
    let trace = TraceConfig::new(Benchmark::Milc).lines(32).writes(800).seed(4).generate();
    for (kind, should_grow) in [
        (SchemeKind::EncryptedDcw, true),
        (SchemeKind::UnencryptedDcw, false),
    ] {
        let mut with = SimConfig::new(kind);
        with.metric.count_counter_bits = true;
        let base = Simulator::new(SimConfig::new(kind)).run_trace(&trace);
        let counted = Simulator::new(with).run_trace(&trace);
        assert_eq!(
            counted.flip_rate() > base.flip_rate(),
            should_grow,
            "{kind}"
        );
    }
}

/// Wear tracking does not perturb the functional metrics.
#[test]
fn wear_tracking_is_observation_only() {
    let trace = TraceConfig::new(Benchmark::Wrf).lines(32).writes(800).seed(5).generate();
    let plain = Simulator::new(SimConfig::new(SchemeKind::Deuce)).run_trace(&trace);
    let tracked = Simulator::new(
        SimConfig::new(SchemeKind::Deuce).with_wear(WearConfig::vertical_only(32)),
    )
    .run_trace(&trace);
    assert_eq!(plain.data_flips, tracked.data_flips);
    assert_eq!(plain.total_slots, tracked.total_slots);
    assert!((plain.exec_time_ns - tracked.exec_time_ns).abs() < 1e-9);
}

/// Security Refresh as the vertical substrate levels just like
/// Start-Gap (the `ablation_hwl_substrate` study, as a regression test).
#[test]
fn security_refresh_substrate_levels_wear() {
    use deuce_sim::{HwlMode, LifetimePolicy, VerticalWl};
    let trace = TraceConfig::new(Benchmark::Libquantum)
        .lines(32)
        .writes(6_000)
        .seed(9)
        .generate();
    let lifetime = |hwl: Option<HwlMode>| {
        let mut wear = match hwl {
            Some(mode) => WearConfig::with_hwl(32, mode).gap_interval(2),
            None => WearConfig::vertical_only(32).gap_interval(2),
        };
        wear = wear.vertical_leveler(VerticalWl::SecurityRefresh);
        Simulator::new(SimConfig::new(SchemeKind::Deuce).with_wear(wear))
            .run_trace(&trace)
            .lifetime(LifetimePolicy::VerticalLeveled)
            .expect("wear on")
    };
    let plain = lifetime(None);
    let hashed = lifetime(Some(HwlMode::Hashed));
    assert!(hashed > plain * 1.5, "SR+HWL {hashed} vs SR {plain}");
}

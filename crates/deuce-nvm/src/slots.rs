//! The §6.1 write-throughput model: write slots and fragmentation.
//!
//! PCM write power is limited: the 8Gb prototype the paper references has
//! a 128-bit write width, so a 64-byte line takes up to 4 sequential write
//! slots of 150 ns each. Each 128-bit slot is provisioned (via internal
//! Flip-N-Write) to flip at most 64 cells. Fewer bit flips can let several
//! 128-bit regions share a slot — but fragmentation means the reduction in
//! flips does not always reduce slots (a 70-flip write still takes 2
//! slots).

use crate::line_image::LineImage;

/// Write-slot configuration (defaults follow §6.1 / Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotConfig {
    /// Bits written per slot region (the device write width).
    pub region_bits: u32,
    /// Maximum cell flips a single slot's current budget can drive.
    pub flips_per_slot: u32,
}

impl SlotConfig {
    /// The paper's configuration: 128-bit regions, 64 flips per slot.
    pub const PAPER: Self = Self {
        region_bits: 128,
        flips_per_slot: 64,
    };

    /// Number of regions a line (data + metadata) divides into, rounding
    /// up so metadata bits occupy the tail region.
    #[must_use]
    pub fn regions_for(&self, total_bits: u32) -> u32 {
        total_bits.div_ceil(self.region_bits)
    }
}

impl Default for SlotConfig {
    fn default() -> Self {
        Self::PAPER
    }
}

/// Flip counts per 128-bit region for a write of `new` over `old`.
///
/// Metadata bits are physically co-located with the data they describe
/// (a flip/modified bit sits next to its word), so metadata bit `i` of a
/// width-`m` field is charged to data region `i * regions / m` rather
/// than occupying a region of its own.
///
/// # Panics
///
/// Panics if the images disagree on total bits.
#[must_use]
pub fn region_flips(old: &LineImage, new: &LineImage, cfg: SlotConfig) -> Vec<u32> {
    assert_eq!(old.total_bits(), new.total_bits(), "image size mismatch");
    let data_bits = deuce_crypto::LINE_BITS as u32;
    let regions = cfg.regions_for(data_bits);
    let meta_bits = old.total_bits() - data_bits;
    let mut flips = vec![0u32; regions as usize];
    for (word_base, mut word) in old.changed_words(new) {
        let last_bit = word_base + 63;
        if last_bit < data_bits && word_base / cfg.region_bits == last_bit / cfg.region_bits {
            // The whole XOR word falls inside one data region: a single
            // popcount covers all 64 bits.
            flips[(word_base / cfg.region_bits) as usize] += word.count_ones();
        } else {
            // Word straddles a region boundary, or holds metadata bits
            // (each charged to the region of the word it describes).
            while word != 0 {
                let bit = word_base + word.trailing_zeros();
                word &= word - 1;
                let region = if bit < data_bits {
                    bit / cfg.region_bits
                } else {
                    (bit - data_bits) * regions / meta_bits.max(1)
                };
                flips[region.min(regions - 1) as usize] += 1;
            }
        }
    }
    flips
}

/// Number of write slots a write consumes: first-fit-decreasing packing of
/// the per-region flip counts into slots with a `flips_per_slot` budget.
///
/// Internal FNW guarantees each region needs at most `flips_per_slot`
/// flips, so every region fits in some slot. A write that flips nothing
/// still consumes one slot (the device must still drive the write
/// command).
#[must_use]
pub fn write_slots(old: &LineImage, new: &LineImage, cfg: SlotConfig) -> u32 {
    let mut flips = region_flips(old, new, cfg);
    // Internal FNW bounds each region's flips at half the region bits.
    for f in &mut flips {
        *f = (*f).min(cfg.flips_per_slot);
    }
    flips.retain(|&f| f > 0);
    if flips.is_empty() {
        return 1;
    }
    flips.sort_unstable_by(|a, b| b.cmp(a));
    let mut bins: Vec<u32> = Vec::new();
    for f in flips {
        match bins.iter_mut().find(|remaining| **remaining >= f) {
            Some(remaining) => *remaining -= f,
            None => bins.push(cfg.flips_per_slot - f),
        }
    }
    bins.len() as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::line_image::{LineImage, MetaBits};

    fn image_with_region_flips(per_region: &[u32]) -> (LineImage, LineImage) {
        let old = LineImage::new([0u8; 64], MetaBits::new(32));
        let mut new = old;
        for (region, &n) in per_region.iter().enumerate() {
            for i in 0..n {
                let bit = region as u32 * 128 + i;
                assert!(bit < 512, "test helper only sets data bits");
                new.data_mut()[(bit / 8) as usize] |= 1 << (bit % 8);
            }
        }
        (old, new)
    }

    #[test]
    fn zero_flip_write_takes_one_slot() {
        let (old, _) = image_with_region_flips(&[0, 0, 0, 0]);
        assert_eq!(write_slots(&old, &old, SlotConfig::PAPER), 1);
    }

    #[test]
    fn dense_write_takes_four_slots() {
        // ~64 flips in each of 4 regions: no two regions can share a slot.
        let (old, new) = image_with_region_flips(&[64, 64, 64, 64]);
        assert_eq!(write_slots(&old, &new, SlotConfig::PAPER), 4);
    }

    #[test]
    fn paper_fragmentation_example() {
        // §6.1: "if the given write causes 70 flips, and one slot can only
        // handle 64 flips, then this write will take two slots."
        let (old, new) = image_with_region_flips(&[35, 35, 0, 0]);
        // 35+35=70 > 64: cannot share.
        assert_eq!(write_slots(&old, &new, SlotConfig::PAPER), 2);
    }

    #[test]
    fn sparse_regions_pack_into_one_slot() {
        let (old, new) = image_with_region_flips(&[16, 16, 16, 16]);
        assert_eq!(write_slots(&old, &new, SlotConfig::PAPER), 1);
    }

    #[test]
    fn two_pairs_pack_into_two_slots() {
        let (old, new) = image_with_region_flips(&[40, 30, 24, 30]);
        // FFD: 40+24=64 in slot 1, 30+30=60 in slot 2.
        assert_eq!(write_slots(&old, &new, SlotConfig::PAPER), 2);
    }

    #[test]
    fn region_flips_colocate_metadata_with_its_words() {
        let old = LineImage::new([0u8; 64], MetaBits::new(32));
        let mut new = old;
        new.meta_mut().set(0, true); // word 0's bit -> region 0
        new.meta_mut().set(31, true); // word 31's bit -> region 3
        let flips = region_flips(&old, &new, SlotConfig::PAPER);
        assert_eq!(flips.len(), 4);
        assert_eq!(flips[0], 1);
        assert_eq!(flips[3], 1);
    }

    /// Differential check: region flips from the word-level path must
    /// equal a bit-at-a-time reference — including for a region width
    /// that does not align to 64-bit word boundaries.
    #[test]
    fn region_flips_match_bit_loop_reference() {
        let mut lcg = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            lcg = lcg
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            lcg
        };
        let configs = [
            SlotConfig::PAPER,
            SlotConfig { region_bits: 96, flips_per_slot: 48 }, // straddles words
        ];
        for cfg in configs {
            let data_bits = deuce_crypto::LINE_BITS as u32;
            let regions = cfg.regions_for(data_bits);
            for _ in 0..20 {
                let mut old = LineImage::new([0u8; 64], MetaBits::new(32));
                let mut new = old;
                for b in old.data_mut().iter_mut() {
                    *b = next() as u8;
                }
                for b in new.data_mut().iter_mut() {
                    *b = next() as u8;
                }
                *old.meta_mut() = MetaBits::from_raw(next() & 0xFFFF_FFFF, 32);
                *new.meta_mut() = MetaBits::from_raw(next() & 0xFFFF_FFFF, 32);

                let mut want = vec![0u32; regions as usize];
                for bit in old.changed_bits(&new) {
                    let region = if bit < data_bits {
                        bit / cfg.region_bits
                    } else {
                        (bit - data_bits) * regions / 32
                    };
                    want[region.min(regions - 1) as usize] += 1;
                }
                assert_eq!(region_flips(&old, &new, cfg), want, "region_bits {}", cfg.region_bits);
            }
        }
    }

    #[test]
    fn regions_for_rounds_up() {
        assert_eq!(SlotConfig::PAPER.regions_for(512), 4);
        assert_eq!(SlotConfig::PAPER.regions_for(544), 5);
        assert_eq!(SlotConfig::PAPER.regions_for(128), 1);
        assert_eq!(SlotConfig::PAPER.regions_for(129), 2);
    }
}

//! Figure 9: DEUCE's sensitivity to the epoch interval (word size 2B).
//!
//! Paper's averages: epoch 8 → 24.8%, epoch 16 → 24.0%, epoch 32 →
//! 23.7%; wrf rises from epoch 8 to 16 and milc from 16 to 32 (their
//! modified-word footprints drift, so long epochs keep re-encrypting
//! words that stopped being written).

use deuce_bench::{mean, pct, per_benchmark, run_scheme, tsv_header, tsv_row, ExperimentArgs};
use deuce_crypto::EpochInterval;
use deuce_schemes::{SchemeConfig, SchemeKind};

fn main() {
    let args = ExperimentArgs::parse();
    let epochs = [8u64, 16, 32];

    let rows = per_benchmark(&args.benchmarks, |benchmark| {
        let trace = args.trace(benchmark);
        epochs.map(|e| {
            run_scheme(
                SchemeConfig::new(SchemeKind::Deuce)
                    .with_epoch(EpochInterval::new(e).expect("power of two")),
                &trace,
            )
            .flip_rate()
        })
    });

    tsv_header(&["benchmark", "epoch8", "epoch16", "epoch32"]);
    let mut columns = vec![Vec::new(); epochs.len()];
    for (benchmark, rates) in &rows {
        let mut cells = vec![benchmark.name().to_string()];
        for (i, rate) in rates.iter().enumerate() {
            columns[i].push(*rate);
            cells.push(pct(*rate));
        }
        tsv_row(&cells);
    }
    let mut avg = vec!["AVERAGE".to_string()];
    for column in &columns {
        avg.push(pct(mean(column)));
    }
    tsv_row(&avg);
}

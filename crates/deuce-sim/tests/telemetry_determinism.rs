//! Telemetry must be observation-only: a run with any recorder
//! attached produces a bit-identical [`SimResult`] to the plain
//! uninstrumented run, sequentially and under sharded sweeps.

use deuce_schemes::{SchemeConfig, SchemeKind, WordSize};
use deuce_sim::telemetry::{Counter, SweepProgress, TelemetryRecorder};
use deuce_sim::{
    CounterCacheConfig, ParallelSweep, SimConfig, SimResult, Simulator, SweepCell,
};
use deuce_trace::{Benchmark, TraceConfig};

/// Every field that feeds a figure, bit-exact (floats by bit pattern).
fn fingerprint(r: &SimResult) -> (u64, u64, u64, u64, u64, u64, u64, u64, u64, u64) {
    (
        r.writes,
        r.reads,
        r.data_flips,
        r.meta_flips,
        r.counter_flips,
        r.total_slots,
        r.epoch_starts,
        r.exec_time_ns.to_bits(),
        r.counter_cache_misses,
        r.counter_cache_hit_ratio.to_bits(),
    )
}

fn config() -> SimConfig {
    let scheme = SchemeConfig::new(SchemeKind::Deuce).with_word_size(WordSize::Bytes2);
    SimConfig::with_scheme(scheme).with_counter_cache(CounterCacheConfig::DEFAULT)
}

fn trace() -> deuce_trace::Trace {
    TraceConfig::new(Benchmark::Mcf).lines(96).writes(2_500).seed(42).generate()
}

#[test]
fn recorded_sequential_run_is_bit_identical() {
    let trace = trace();
    let plain = Simulator::new(config()).run_trace(&trace);
    let mut rec = TelemetryRecorder::default();
    let recorded = Simulator::new(config()).run_trace_recorded(&trace, &mut rec);
    assert_eq!(fingerprint(&plain), fingerprint(&recorded));
    // And the recorder really observed the run.
    assert_eq!(rec.counter(Counter::Writes), plain.writes);
    assert_eq!(rec.counter(Counter::Reads), plain.reads);
    assert_eq!(
        rec.counter(Counter::DataFlips) + rec.counter(Counter::MetaFlips),
        plain.data_flips + plain.meta_flips
    );
    assert_eq!(rec.counter(Counter::SlotsTotal), plain.total_slots);
    assert_eq!(rec.flips_hist().count(), plain.writes);
    assert!(!rec.samples().is_empty(), "2500 writes crosses the sample window");
}

#[test]
fn recorded_sharded_sweep_is_bit_identical() {
    let cells: Vec<SweepCell> = [Benchmark::Mcf, Benchmark::Libquantum, Benchmark::Astar]
        .into_iter()
        .map(|b| {
            SweepCell::new(
                b.to_string(),
                TraceConfig::new(b).lines(64).writes(800).seed(7),
                config(),
            )
        })
        .collect();
    let plain: Vec<_> =
        ParallelSweep::with_shards(1).run(&cells).iter().map(fingerprint).collect();
    for shards in [2, 4] {
        let progress = SweepProgress::new("determinism", cells.len(), shards);
        let recorded: Vec<_> = ParallelSweep::with_shards(shards)
            .map_observed(
                &cells,
                |_, cell| {
                    let mut rec = TelemetryRecorder::default();
                    let trace = cell.trace.generate();
                    let result =
                        Simulator::new(cell.config.clone()).run_trace_recorded(&trace, &mut rec);
                    (result, rec)
                },
                Some(&progress),
            )
            .iter()
            .map(|(result, _)| fingerprint(result))
            .collect();
        assert_eq!(recorded, plain, "{shards} shards");
        assert_eq!(progress.done(), cells.len());
    }
}

#[test]
fn per_cell_recorders_are_deterministic_across_shardings() {
    let cells: Vec<SweepCell> = (0..5)
        .map(|i| {
            SweepCell::new(
                format!("cell{i}"),
                TraceConfig::new(Benchmark::Omnetpp).lines(64).writes(600).seed(i),
                config(),
            )
        })
        .collect();
    let observe = |shards: usize| -> Vec<(u64, u64, usize)> {
        ParallelSweep::with_shards(shards)
            .map_observed(
                &cells,
                |_, cell| {
                    let mut rec = TelemetryRecorder::default();
                    let trace = cell.trace.generate();
                    let _ = Simulator::new(cell.config.clone()).run_trace_recorded(&trace, &mut rec);
                    (
                        rec.counter(Counter::DataFlips),
                        rec.counter(Counter::CounterAccesses),
                        rec.samples().len(),
                    )
                },
                None,
            )
            .into_iter()
            .collect()
    };
    let sequential = observe(1);
    assert_eq!(observe(3), sequential);
    assert_eq!(observe(8), sequential);
}

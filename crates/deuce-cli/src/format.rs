//! Shared result-summary formatting.
//!
//! `run`, `compare`, `sweep`, and `report` all print the same headline
//! metrics; [`RunSummary`] is the one place their rows and labels are
//! defined, whether the numbers come from a live [`SimResult`] or from
//! a parsed telemetry file.

use std::io::{self, Write};

use deuce_crypto::PadCacheStats;
use deuce_sim::{FaultReport, SimResult, StorePageStats};

/// Tab-separated header matching [`RunSummary::metric_cells`], shared
/// by the `compare` and `sweep` tables.
pub const METRIC_HEADER: &str = "flip_rate\tslots_per_write\texec_time_us";

/// The headline metrics of one simulated run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    /// Counted writes (excludes first touches).
    pub writes: u64,
    /// Reads serviced.
    pub reads: u64,
    /// Mean figure-of-merit flips per write.
    pub flips_per_write: f64,
    /// Flips per write as a fraction of the line's data bits.
    pub flip_rate: f64,
    /// Mean write slots per write.
    pub slots_per_write: f64,
    /// Execution time in microseconds.
    pub exec_time_us: f64,
    /// Total memory energy in microjoules.
    pub energy_uj: f64,
    /// Mean memory power in milliwatts.
    pub power_mw: f64,
    /// Metadata bits per line, when known.
    pub metadata_bits: Option<u64>,
    /// Resident bytes of the line-store arena at end of run, when known.
    pub line_store_bytes: Option<u64>,
}

impl From<&SimResult> for RunSummary {
    fn from(result: &SimResult) -> Self {
        Self {
            writes: result.writes,
            reads: result.reads,
            flips_per_write: result.avg_flips_per_write(),
            flip_rate: result.flip_rate(),
            slots_per_write: result.avg_slots_per_write(),
            exec_time_us: result.exec_time_ns / 1000.0,
            energy_uj: result.energy_pj() / 1e6,
            power_mw: result.power_mw(),
            metadata_bits: Some(u64::from(result.metadata_bits)),
            line_store_bytes: Some(result.line_store_bytes),
        }
    }
}

impl RunSummary {
    /// Writes the `key\tvalue` summary block (the `deuce run` /
    /// `deuce report` body).
    ///
    /// # Errors
    ///
    /// Returns I/O errors from the writer.
    pub fn write_to<W: Write>(&self, out: &mut W) -> io::Result<()> {
        writeln!(out, "writes\t{}", self.writes)?;
        writeln!(out, "reads\t{}", self.reads)?;
        writeln!(out, "flips_per_write\t{:.1}", self.flips_per_write)?;
        writeln!(out, "flip_rate\t{:.1}%", self.flip_rate * 100.0)?;
        writeln!(out, "slots_per_write\t{:.2}", self.slots_per_write)?;
        writeln!(out, "exec_time_us\t{:.1}", self.exec_time_us)?;
        writeln!(out, "energy_uj\t{:.2}", self.energy_uj)?;
        writeln!(out, "power_mw\t{:.1}", self.power_mw)?;
        if let Some(bits) = self.metadata_bits {
            writeln!(out, "metadata_bits_per_line\t{bits}")?;
        }
        if let Some(bytes) = self.line_store_bytes {
            writeln!(out, "line_store_bytes\t{bytes}")?;
        }
        Ok(())
    }

    /// The table cells under [`METRIC_HEADER`].
    #[must_use]
    pub fn metric_cells(&self) -> String {
        format!(
            "{:.1}%\t{:.2}\t{:.1}",
            self.flip_rate * 100.0,
            self.slots_per_write,
            self.exec_time_us
        )
    }
}

/// The degradation headline of one fault-injecting run, printed as
/// `fault_*` rows after the [`RunSummary`] block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSummary {
    /// Cells that permanently failed during the run.
    pub cell_deaths: u64,
    /// ECP correction entries consumed.
    pub ecp_entries_consumed: u64,
    /// Lines retired to the spare pool.
    pub lines_retired: u64,
    /// Writes that found no correction resources left.
    pub uncorrectable_writes: u64,
    /// Write index of the first retirement, if any.
    pub first_retirement_write: Option<u64>,
    /// Write index of the first uncorrectable write, if any.
    pub first_uncorrectable_write: Option<u64>,
    /// Spare lines still unused at end of run.
    pub spare_lines_left: u32,
}

impl From<&FaultReport> for FaultSummary {
    fn from(report: &FaultReport) -> Self {
        Self {
            cell_deaths: report.cell_deaths,
            ecp_entries_consumed: report.ecp_entries_consumed,
            lines_retired: report.lines_retired,
            uncorrectable_writes: report.uncorrectable_writes,
            first_retirement_write: report.first_retirement_write,
            first_uncorrectable_write: report.first_uncorrectable_write,
            spare_lines_left: report.spare_lines_left,
        }
    }
}

impl FaultSummary {
    /// Writes the `fault_*` rows of the `deuce run` summary block.
    ///
    /// # Errors
    ///
    /// Returns I/O errors from the writer.
    pub fn write_to<W: Write>(&self, out: &mut W) -> io::Result<()> {
        let opt = |v: Option<u64>| v.map_or_else(|| "-".to_string(), |w| w.to_string());
        writeln!(out, "fault_cell_deaths\t{}", self.cell_deaths)?;
        writeln!(out, "fault_ecp_entries_consumed\t{}", self.ecp_entries_consumed)?;
        writeln!(out, "fault_lines_retired\t{}", self.lines_retired)?;
        writeln!(out, "fault_uncorrectable_writes\t{}", self.uncorrectable_writes)?;
        writeln!(out, "fault_first_retirement_write\t{}", opt(self.first_retirement_write))?;
        writeln!(
            out,
            "fault_first_uncorrectable_write\t{}",
            opt(self.first_uncorrectable_write)
        )?;
        writeln!(out, "fault_spare_lines_left\t{}", self.spare_lines_left)?;
        Ok(())
    }
}

/// The AES-work headline of a pad-cached run, printed as `pad_cache_*`
/// rows after the [`RunSummary`] block (only when `--pad-cache` is on,
/// so cache-free output is unchanged).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PadCacheSummary {
    /// Line-pad lookups answered from the cache.
    pub hits: u64,
    /// Line-pad lookups that fell through to AES.
    pub misses: u64,
    /// Next-epoch pads generated speculatively ahead of demand.
    pub prefills: u64,
}

impl From<PadCacheStats> for PadCacheSummary {
    fn from(stats: PadCacheStats) -> Self {
        Self { hits: stats.hits, misses: stats.misses, prefills: stats.prefills }
    }
}

impl PadCacheSummary {
    /// Writes the `pad_cache_*` rows of the `deuce run` summary block.
    ///
    /// # Errors
    ///
    /// Returns I/O errors from the writer.
    pub fn write_to<W: Write>(&self, out: &mut W) -> io::Result<()> {
        writeln!(out, "pad_cache_hits\t{}", self.hits)?;
        writeln!(out, "pad_cache_misses\t{}", self.misses)?;
        writeln!(out, "pad_cache_prefills\t{}", self.prefills)?;
        let total = self.hits + self.misses;
        let ratio = if total == 0 { 0.0 } else { self.hits as f64 / total as f64 };
        writeln!(out, "pad_cache_hit_ratio\t{:.3}", ratio)?;
        Ok(())
    }
}

/// The residency headline of a page-file-backed run, printed as
/// `store_*` rows after the [`RunSummary`] block (only when
/// `--store-file` is on, so in-RAM output is unchanged).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreSummary {
    /// Page loads that missed the resident cache.
    pub page_faults: u64,
    /// Resident pages displaced by the LRU budget.
    pub page_evictions: u64,
    /// Dirty pages written back to the page file.
    pub pages_flushed: u64,
    /// Resident line-store bytes at end of run.
    pub resident_bytes: u64,
    /// Peak resident line-store bytes over the run.
    pub peak_resident_bytes: u64,
}

impl From<StorePageStats> for StoreSummary {
    fn from(stats: StorePageStats) -> Self {
        Self {
            page_faults: stats.page_faults,
            page_evictions: stats.page_evictions,
            pages_flushed: stats.pages_flushed,
            resident_bytes: stats.resident_bytes,
            peak_resident_bytes: stats.peak_resident_bytes,
        }
    }
}

impl StoreSummary {
    /// Writes the `store_*` rows of the `deuce run` summary block.
    ///
    /// # Errors
    ///
    /// Returns I/O errors from the writer.
    pub fn write_to<W: Write>(&self, out: &mut W) -> io::Result<()> {
        writeln!(out, "store_page_faults\t{}", self.page_faults)?;
        writeln!(out, "store_page_evictions\t{}", self.page_evictions)?;
        writeln!(out, "store_pages_flushed\t{}", self.pages_flushed)?;
        writeln!(out, "store_resident_bytes\t{}", self.resident_bytes)?;
        writeln!(out, "store_peak_resident_bytes\t{}", self.peak_resident_bytes)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunSummary {
        RunSummary {
            writes: 100,
            reads: 50,
            flips_per_write: 130.0,
            flip_rate: 130.0 / 512.0,
            slots_per_write: 2.64,
            exec_time_us: 10.0,
            energy_uj: 0.33,
            power_mw: 33.0,
            metadata_bits: Some(32),
            line_store_bytes: Some(9216),
        }
    }

    #[test]
    fn summary_block_lists_every_metric() {
        let mut out = Vec::new();
        sample().write_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("writes\t100"));
        assert!(text.contains("flip_rate\t25.4%"));
        assert!(text.contains("slots_per_write\t2.64"));
        assert!(text.contains("metadata_bits_per_line\t32"));
        assert!(text.contains("line_store_bytes\t9216"));
        let mut without = sample();
        without.metadata_bits = None;
        without.line_store_bytes = None;
        let mut out = Vec::new();
        without.write_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(!text.contains("metadata_bits"));
        assert!(!text.contains("line_store_bytes"));
    }

    #[test]
    fn metric_cells_line_up_with_the_header() {
        assert_eq!(METRIC_HEADER.split('\t').count(), sample().metric_cells().split('\t').count());
        assert_eq!(sample().metric_cells(), "25.4%\t2.64\t10.0");
    }

    #[test]
    fn fault_summary_renders_every_row() {
        let report = FaultReport {
            cell_deaths: 12,
            ecp_entries_consumed: 9,
            lines_retired: 1,
            uncorrectable_writes: 2,
            first_retirement_write: Some(400),
            first_uncorrectable_write: None,
            spare_lines_left: 7,
            ecp_entries_used: vec![1, 0, 6],
        };
        let mut out = Vec::new();
        FaultSummary::from(&report).write_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("fault_cell_deaths\t12"));
        assert!(text.contains("fault_first_retirement_write\t400"));
        assert!(text.contains("fault_first_uncorrectable_write\t-"));
        assert!(text.contains("fault_spare_lines_left\t7"));
    }

    #[test]
    fn pad_cache_summary_renders_every_row() {
        let mut out = Vec::new();
        PadCacheSummary::from(PadCacheStats { hits: 30, misses: 10, prefills: 4 })
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("pad_cache_hits\t30"));
        assert!(text.contains("pad_cache_misses\t10"));
        assert!(text.contains("pad_cache_prefills\t4"));
        // Prefills are speculative work, not demand lookups: they stay
        // out of the hit ratio.
        assert!(text.contains("pad_cache_hit_ratio\t0.750"));
        // An empty cache divides safely.
        let mut out = Vec::new();
        PadCacheSummary::from(PadCacheStats::default()).write_to(&mut out).unwrap();
        assert!(String::from_utf8(out).unwrap().contains("pad_cache_hit_ratio\t0.000"));
    }

    #[test]
    fn store_summary_renders_every_row() {
        let stats = StorePageStats {
            page_faults: 40,
            page_evictions: 36,
            pages_flushed: 30,
            resident_bytes: 4_608,
            peak_resident_bytes: 9_216,
        };
        let mut out = Vec::new();
        StoreSummary::from(stats).write_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("store_page_faults\t40"));
        assert!(text.contains("store_page_evictions\t36"));
        assert!(text.contains("store_pages_flushed\t30"));
        assert!(text.contains("store_resident_bytes\t4608"));
        assert!(text.contains("store_peak_resident_bytes\t9216"));
    }

    #[test]
    fn sim_result_conversion_uses_derived_metrics() {
        let result = SimResult {
            writes: 10,
            reads: 4,
            data_flips: 500,
            meta_flips: 12,
            total_slots: 25,
            exec_time_ns: 2_000.0,
            metadata_bits: 12,
            ..SimResult::default()
        };
        let summary = RunSummary::from(&result);
        assert_eq!(summary.writes, 10);
        assert!((summary.flips_per_write - 51.2).abs() < 1e-12);
        assert!((summary.slots_per_write - 2.5).abs() < 1e-12);
        assert!((summary.exec_time_us - 2.0).abs() < 1e-12);
        assert_eq!(summary.metadata_bits, Some(12));
    }
}

//! Flight recorder: a fixed-capacity ring of recent write events.
//!
//! Long streaming runs (100M+ writes) can die deep into the stream —
//! an uncorrectable error from the fault engine, a checkpoint
//! mismatch, a corrupt trace file. The flight recorder keeps the last
//! `N` structured write events in a ring so a post-mortem replays what
//! the simulator was doing *just before* the failure, instead of
//! rerunning the whole stream.
//!
//! Every field of a [`FlightEvent`] is a simulated quantity (write
//! index, line address, flip/slot counts, simulated nanoseconds, fault
//! outcomes) — no wall-clock anywhere — so a dump is a deterministic
//! function of the run and can be diffed against a golden.

use std::collections::VecDeque;
use std::io::{self, Write};

use crate::export::json_num;

/// One recorded write event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlightEvent {
    /// 1-based counted write index (0 for a first touch, which is not
    /// counted).
    pub write_index: u64,
    /// Line address written.
    pub addr: u64,
    /// What the scheme did: `"write"` or `"first_touch"`.
    pub action: &'static str,
    /// Figure-of-merit bit flips this write caused.
    pub flips: u64,
    /// Write slots consumed.
    pub slots: u32,
    /// Whether this write started a new epoch (full re-encryption).
    pub epoch_started: bool,
    /// Simulated time (ns) after this event.
    pub sim_ns: f64,
    /// Cells that died on this write.
    pub cell_deaths: u32,
    /// ECP entries consumed repairing them.
    pub ecp_consumed: u32,
    /// Whether this write retired the line to a spare.
    pub retired: bool,
    /// Whether this write was uncorrectable (device end of life).
    pub uncorrectable: bool,
}

/// The ring buffer of the most recent [`FlightEvent`]s.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    capacity: usize,
    ring: VecDeque<FlightEvent>,
    recorded: u64,
}

impl FlightRecorder {
    /// A recorder keeping the last `capacity` events (`capacity` is
    /// clamped to at least 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self { capacity, ring: VecDeque::with_capacity(capacity), recorded: 0 }
    }

    /// Records one event, evicting the oldest when full.
    pub fn record(&mut self, event: FlightEvent) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(event);
        self.recorded += 1;
    }

    /// The ring's capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total events ever recorded (≥ the retained count).
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Events evicted to make room.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.recorded - self.ring.len() as u64
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &FlightEvent> {
        self.ring.iter()
    }

    /// Dumps the ring as JSONL: a `flight_header` line (capacity /
    /// recorded / dropped accounting) followed by one `flight` line per
    /// retained event, oldest first. Byte-deterministic for a given
    /// simulation.
    ///
    /// # Errors
    ///
    /// Returns I/O errors from the writer.
    pub fn write_jsonl<W: Write>(&self, out: &mut W) -> io::Result<()> {
        writeln!(
            out,
            "{{\"type\":\"flight_header\",\"version\":1,\"capacity\":{},\
             \"recorded\":{},\"dropped\":{}}}",
            self.capacity,
            self.recorded,
            self.dropped(),
        )?;
        for e in &self.ring {
            writeln!(
                out,
                "{{\"type\":\"flight\",\"write\":{},\"addr\":{},\"action\":\"{}\",\
                 \"flips\":{},\"slots\":{},\"epoch_started\":{},\"sim_ns\":{},\
                 \"cell_deaths\":{},\"ecp_consumed\":{},\"retired\":{},\
                 \"uncorrectable\":{}}}",
                e.write_index,
                e.addr,
                e.action,
                e.flips,
                e.slots,
                u8::from(e.epoch_started),
                json_num(e.sim_ns),
                e.cell_deaths,
                e.ecp_consumed,
                u8::from(e.retired),
                u8::from(e.uncorrectable),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(i: u64) -> FlightEvent {
        FlightEvent {
            write_index: i,
            addr: 0x1000 + i,
            action: "write",
            flips: 60 + i,
            slots: 2,
            epoch_started: i.is_multiple_of(16),
            sim_ns: 150.0 * i as f64,
            cell_deaths: 0,
            ecp_consumed: 0,
            retired: false,
            uncorrectable: false,
        }
    }

    #[test]
    fn ring_keeps_the_last_n_and_counts_drops() {
        let mut r = FlightRecorder::new(4);
        for i in 1..=10 {
            r.record(event(i));
        }
        assert_eq!(r.recorded(), 10);
        assert_eq!(r.dropped(), 6);
        let kept: Vec<u64> = r.events().map(|e| e.write_index).collect();
        assert_eq!(kept, vec![7, 8, 9, 10], "oldest first");
    }

    #[test]
    fn dump_round_trips_through_the_parser() {
        let mut r = FlightRecorder::new(8);
        let mut ue = event(3);
        ue.cell_deaths = 2;
        ue.uncorrectable = true;
        r.record(event(1));
        r.record(event(2));
        r.record(ue);
        let mut out = Vec::new();
        r.write_jsonl(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let events = crate::parse::parse_jsonl(&text).unwrap();
        assert_eq!(events.len(), 4, "header + 3 events");
        assert_eq!(events[0].kind(), "flight_header");
        assert_eq!(events[0].u64("capacity"), Some(8));
        assert_eq!(events[0].u64("dropped"), Some(0));
        assert_eq!(events[3].kind(), "flight");
        assert_eq!(events[3].u64("uncorrectable"), Some(1));
        assert_eq!(events[3].u64("addr"), Some(0x1000 + 3));
        assert_eq!(events[3].num("sim_ns"), Some(450.0));
    }

    #[test]
    fn capacity_zero_is_clamped() {
        let mut r = FlightRecorder::new(0);
        r.record(event(1));
        r.record(event(2));
        assert_eq!(r.events().count(), 1);
        assert_eq!(r.dropped(), 1);
    }
}

//! Figure 12: writes per bit position of a line, normalized to the
//! average, for unencrypted memory (DCW).
//!
//! Paper: the most-written bit receives ~6× (mcf) to ~27× (libquantum)
//! the average bit's writes — the non-uniformity Horizontal Wear
//! Leveling exists to fix.

use deuce_bench::{per_benchmark, run_config, tsv_header, tsv_row, ExperimentArgs};
use deuce_sim::{SimConfig, WearConfig};
use deuce_schemes::SchemeKind;

fn main() {
    let mut args = ExperimentArgs::parse();
    if args.benchmarks.len() == 12 {
        // The paper plots mcf and libquantum; default to those.
        args.benchmarks = vec![
            deuce_trace::Benchmark::Mcf,
            deuce_trace::Benchmark::Libquantum,
        ];
    }

    let rows = per_benchmark(&args.benchmarks, |benchmark| {
        let trace = args.trace(benchmark);
        let config = SimConfig::new(SchemeKind::UnencryptedDcw)
            .with_wear(WearConfig::vertical_only(args.lines * usize::from(args.cores)));
        let result = run_config(config, &trace);
        let cells = result.cells.expect("wear tracking enabled");
        let totals = cells.position_totals();
        let avg = totals.iter().sum::<u64>() as f64 / totals.len() as f64;
        let normalized: Vec<f64> = totals.iter().map(|&t| t as f64 / avg).collect();
        normalized
    });

    tsv_header(&["benchmark", "bit_position", "writes_normalized_to_avg"]);
    for (benchmark, normalized) in &rows {
        for (pos, value) in normalized.iter().enumerate() {
            tsv_row(&[
                benchmark.name().to_string(),
                pos.to_string(),
                format!("{value:.3}"),
            ]);
        }
    }

    println!();
    println!("# summary: max/avg per benchmark (paper: mcf ~6x, libq ~27x)");
    for (benchmark, normalized) in &rows {
        let max = normalized.iter().copied().fold(0.0, f64::max);
        println!("# {}\tmax/avg = {max:.1}x", benchmark.name());
    }
}

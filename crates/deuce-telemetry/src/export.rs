//! Hand-rolled JSONL event and CSV summary exporters.
//!
//! No serde: the event model is flat (one JSON object per line, string
//! and number values only), so the writers are a few format strings and
//! the escaping rules of RFC 8259 §7. Everything exported here is
//! derived from simulated quantities except the `profile` events, which
//! carry wall-clock stage times and are explicitly nondeterministic
//! (consumers that diff runs should skip them).

use std::io::{self, Write};

use crate::hist::Histogram;
use crate::recorder::{Counter, Gauge, Stage, TelemetryRecorder};

/// Escapes a string for inclusion in a JSON document.
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number (shortest round-trip form; never
/// `NaN`/`inf`, which JSON cannot carry — those become 0).
#[must_use]
pub fn json_num(value: f64) -> String {
    if value.is_finite() {
        format!("{value:?}")
    } else {
        "0".to_string()
    }
}

fn write_hist<W: Write>(out: &mut W, run: &str, name: &str, hist: &Histogram) -> io::Result<()> {
    writeln!(
        out,
        "{{\"type\":\"hist\",\"run\":\"{run}\",\"name\":\"{name}\",\"count\":{},\"sum\":{},\
         \"min\":{},\"max\":{},\"mean\":{}}}",
        hist.count(),
        hist.sum(),
        hist.min().unwrap_or(0),
        hist.max().unwrap_or(0),
        json_num(hist.mean()),
    )?;
    for (lo, hi, count) in hist.rows() {
        writeln!(
            out,
            "{{\"type\":\"hist_bucket\",\"run\":\"{run}\",\"name\":\"{name}\",\
             \"lo\":{lo},\"hi\":{hi},\"count\":{count}}}",
        )?;
    }
    Ok(())
}

/// Writes one run's telemetry as JSONL events. Multiple runs (a
/// `compare` or `sweep` grid) concatenate into one file, distinguished
/// by the `run` field on every event. Deterministic except for the
/// trailing `profile` events (wall-clock).
///
/// # Errors
///
/// Returns I/O errors from the writer.
pub fn write_jsonl<W: Write>(
    out: &mut W,
    run: &str,
    recorder: &TelemetryRecorder,
) -> io::Result<()> {
    let run = json_escape(run);
    writeln!(
        out,
        "{{\"type\":\"meta\",\"run\":\"{run}\",\"version\":1,\"sample_every\":{},\
         \"energy_pj_per_flip\":{}}}",
        recorder.config().sample_every,
        json_num(recorder.config().energy_pj_per_flip),
    )?;
    for counter in Counter::ALL {
        writeln!(
            out,
            "{{\"type\":\"counter\",\"run\":\"{run}\",\"name\":\"{}\",\"value\":{}}}",
            counter.name(),
            recorder.counter(counter),
        )?;
    }
    for gauge in Gauge::ALL {
        writeln!(
            out,
            "{{\"type\":\"gauge\",\"run\":\"{run}\",\"name\":\"{}\",\"value\":{}}}",
            gauge.name(),
            json_num(recorder.gauge_value(gauge)),
        )?;
    }
    write_hist(out, &run, "flips_per_write", recorder.flips_hist())?;
    write_hist(out, &run, "slots_per_write", recorder.slots_hist())?;
    write_hist(out, &run, "counter_residency", recorder.residency_hist())?;
    // Fault events exist only for fault-injecting runs, so fault-free
    // exports are byte-identical to pre-fault builds.
    if let Some(faults) = recorder.faults() {
        for (name, value) in [
            ("fault_cell_deaths", faults.cell_deaths),
            ("fault_ecp_consumed", faults.ecp_consumed),
            ("fault_lines_retired", faults.lines_retired),
            ("fault_uncorrectable_writes", faults.uncorrectable_writes),
        ] {
            writeln!(
                out,
                "{{\"type\":\"counter\",\"run\":\"{run}\",\"name\":\"{name}\",\"value\":{value}}}",
            )?;
        }
        write_hist(out, &run, "ecp_entries_used", &faults.ecp_used_hist)?;
        for &(write, sim_ns) in &faults.retirements {
            writeln!(
                out,
                "{{\"type\":\"retirement\",\"run\":\"{run}\",\"write\":{write},\"sim_ns\":{}}}",
                json_num(sim_ns),
            )?;
        }
        if let Some((write, sim_ns)) = faults.first_uncorrectable {
            writeln!(
                out,
                "{{\"type\":\"uncorrectable\",\"run\":\"{run}\",\"write\":{write},\
                 \"sim_ns\":{}}}",
                json_num(sim_ns),
            )?;
        }
    }
    // Pad-cache counters exist only for runs that attach the pad cache,
    // so cache-free exports are byte-identical to pre-cache builds.
    if let Some(pad_cache) = recorder.pad_cache() {
        for (name, value) in [
            ("pad_cache_hits", pad_cache.hits),
            ("pad_cache_misses", pad_cache.misses),
            ("pad_cache_prefills", pad_cache.prefills),
        ] {
            writeln!(
                out,
                "{{\"type\":\"counter\",\"run\":\"{run}\",\"name\":\"{name}\",\"value\":{value}}}",
            )?;
        }
    }
    // The AES dispatch record exists only for runs that reported a
    // tier, so exports fed by pre-dispatch drivers are byte-identical.
    if let Some(backend) = recorder.aes_backend_name() {
        writeln!(
            out,
            "{{\"type\":\"aes_backend\",\"run\":\"{run}\",\"backend\":\"{backend}\"}}",
        )?;
    }
    // Store-paging counters exist only for runs that page the line
    // store, so arena-backed exports are byte-identical to pre-paging
    // builds.
    if let Some(store) = recorder.store() {
        for (name, value) in [
            ("store_page_faults", store.page_faults),
            ("store_page_evictions", store.page_evictions),
            ("store_pages_flushed", store.pages_flushed),
            ("store_resident_bytes", store.resident_bytes),
            ("store_peak_resident_bytes", store.peak_resident_bytes),
        ] {
            writeln!(
                out,
                "{{\"type\":\"counter\",\"run\":\"{run}\",\"name\":\"{name}\",\"value\":{value}}}",
            )?;
        }
    }
    for sample in recorder.samples() {
        writeln!(
            out,
            "{{\"type\":\"sample\",\"run\":\"{run}\",\"writes\":{},\"sim_ns\":{},\
             \"flips_per_write\":{},\"slots_per_write\":{},\"hit_ratio\":{},\"power_mw\":{}}}",
            sample.writes,
            json_num(sample.sim_ns),
            json_num(sample.flips_per_write),
            json_num(sample.slots_per_write),
            json_num(sample.hit_ratio),
            json_num(sample.power_mw),
        )?;
    }
    for stage in Stage::ALL {
        let hist = recorder.stage_hist(stage);
        if hist.count() == 0 {
            continue;
        }
        writeln!(
            out,
            "{{\"type\":\"profile\",\"run\":\"{run}\",\"stage\":\"{}\",\"events\":{},\
             \"total_ns\":{},\"mean_ns\":{},\"p50_ns\":{},\"p99_ns\":{}}}",
            stage.name(),
            hist.count(),
            hist.sum(),
            json_num(hist.mean()),
            hist.quantile(0.5).unwrap_or(0),
            hist.quantile(0.99).unwrap_or(0),
        )?;
    }
    // Span records exist only for runs that enable span tracing, so
    // span-free exports are byte-identical to pre-span builds. They
    // carry wall-clock times and are nondeterministic, like `profile`.
    if let Some(spans) = recorder.spans() {
        for span in spans.self_times() {
            let range = span.write_range.map_or_else(String::new, |(first, last)| {
                format!(",\"write_first\":{first},\"write_last\":{last}")
            });
            writeln!(
                out,
                "{{\"type\":\"span\",\"run\":\"{run}\",\"name\":\"{}\",\"parent\":\"{}\",\
                 \"count\":{},\"total_ns\":{},\"self_ns\":{}{range}}}",
                span.name, span.parent, span.count, span.total_ns, span.self_ns,
            )?;
        }
    }
    Ok(())
}

fn csv_escape(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Writes the CSV summary header (`run,metric,value`).
///
/// # Errors
///
/// Returns I/O errors from the writer.
pub fn write_csv_header<W: Write>(out: &mut W) -> io::Result<()> {
    writeln!(out, "run,metric,value")
}

/// Writes one run's summary rows: every counter, every gauge, and the
/// histogram means. Deterministic (wall-clock profiling is not
/// summarized here).
///
/// # Errors
///
/// Returns I/O errors from the writer.
pub fn write_csv<W: Write>(
    out: &mut W,
    run: &str,
    recorder: &TelemetryRecorder,
) -> io::Result<()> {
    let run = csv_escape(run);
    for counter in Counter::ALL {
        writeln!(out, "{run},{},{}", counter.name(), recorder.counter(counter))?;
    }
    for gauge in Gauge::ALL {
        writeln!(out, "{run},{},{}", gauge.name(), json_num(recorder.gauge_value(gauge)))?;
    }
    for (name, hist) in [
        ("flips_per_write_mean", recorder.flips_hist()),
        ("slots_per_write_mean", recorder.slots_hist()),
        ("counter_residency_mean", recorder.residency_hist()),
    ] {
        writeln!(out, "{run},{name},{}", json_num(hist.mean()))?;
    }
    if let Some(faults) = recorder.faults() {
        for (name, value) in [
            ("fault_cell_deaths", faults.cell_deaths),
            ("fault_ecp_consumed", faults.ecp_consumed),
            ("fault_lines_retired", faults.lines_retired),
            ("fault_uncorrectable_writes", faults.uncorrectable_writes),
        ] {
            writeln!(out, "{run},{name},{value}")?;
        }
        writeln!(out, "{run},ecp_entries_used_mean,{}", json_num(faults.ecp_used_hist.mean()))?;
    }
    if let Some(pad_cache) = recorder.pad_cache() {
        writeln!(out, "{run},pad_cache_hits,{}", pad_cache.hits)?;
        writeln!(out, "{run},pad_cache_misses,{}", pad_cache.misses)?;
        writeln!(out, "{run},pad_cache_prefills,{}", pad_cache.prefills)?;
    }
    if let Some(store) = recorder.store() {
        writeln!(out, "{run},store_page_faults,{}", store.page_faults)?;
        writeln!(out, "{run},store_page_evictions,{}", store.page_evictions)?;
        writeln!(out, "{run},store_pages_flushed,{}", store.pages_flushed)?;
        writeln!(out, "{run},store_resident_bytes,{}", store.resident_bytes)?;
        writeln!(out, "{run},store_peak_resident_bytes,{}", store.peak_resident_bytes)?;
    }
    writeln!(out, "{run},series_samples,{}", recorder.samples().len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{Recorder, TelemetryConfig, WriteObservation};

    fn sample_recorder() -> TelemetryRecorder {
        let mut r = TelemetryRecorder::new(TelemetryConfig {
            sample_every: 2,
            energy_pj_per_flip: 13.5,
        });
        r.add(Counter::Writes, 4);
        r.gauge(Gauge::ExecTimeNs, 1234.5);
        r.stage_ns(Stage::Scheme, 90);
        r.residency(8);
        for i in 1..=4u64 {
            r.write_observed(&WriteObservation {
                sim_ns: 250.0 * i as f64,
                flips: 60 + i,
                slots: 2,
                cache_hits: 3 * i,
                cache_misses: i,
            });
        }
        r
    }

    #[test]
    fn escaping_covers_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("plain"), "plain");
    }

    #[test]
    fn numbers_round_trip() {
        assert_eq!(json_num(0.5), "0.5");
        assert_eq!(json_num(500.0), "500.0");
        assert_eq!(json_num(f64::NAN), "0");
    }

    #[test]
    fn jsonl_is_one_object_per_line() {
        let mut buf = Vec::new();
        write_jsonl(&mut buf, "deuce", &sample_recorder()).unwrap();
        let text = String::from_utf8(buf).unwrap();
        for line in text.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(line.contains("\"run\":\"deuce\""), "{line}");
        }
        assert!(text.contains("\"type\":\"meta\""));
        assert!(text.contains("\"name\":\"writes\",\"value\":4"));
        assert!(text.contains("\"type\":\"sample\""));
        assert!(text.contains("\"type\":\"profile\""));
    }

    #[test]
    fn fault_section_appears_only_for_fault_runs() {
        use crate::recorder::FaultObservation;
        // Fault-free: no fault events anywhere.
        let mut buf = Vec::new();
        write_jsonl(&mut buf, "plain", &sample_recorder()).unwrap();
        let plain = String::from_utf8(buf).unwrap();
        assert!(!plain.contains("fault_"), "fault-free export must be unchanged");
        assert!(!plain.contains("\"type\":\"retirement\""));

        // Fault-injecting run: counters, hist, retirement and
        // uncorrectable events all flow.
        let mut r = sample_recorder();
        r.fault_injection_active();
        r.fault_observed(&FaultObservation {
            sim_ns: 500.0,
            write_index: 3,
            cell_deaths: 2,
            ecp_consumed: 1,
            retired: true,
            uncorrectable: false,
        });
        r.fault_observed(&FaultObservation {
            sim_ns: 750.0,
            write_index: 4,
            cell_deaths: 1,
            ecp_consumed: 0,
            retired: false,
            uncorrectable: true,
        });
        r.ecp_entries_used(1);
        let mut buf = Vec::new();
        write_jsonl(&mut buf, "faulty", &r).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("\"name\":\"fault_cell_deaths\",\"value\":3"));
        assert!(text.contains("\"name\":\"fault_lines_retired\",\"value\":1"));
        assert!(text.contains("\"name\":\"ecp_entries_used\""));
        assert!(text.contains("\"type\":\"retirement\",\"run\":\"faulty\",\"write\":3"));
        assert!(text.contains("\"type\":\"uncorrectable\",\"run\":\"faulty\",\"write\":4"));
        // And it still parses back.
        let events = crate::parse::parse_jsonl(&text).unwrap();
        assert!(events.iter().any(|e| e.kind() == "retirement"));

        // CSV summary mirrors the gating.
        let mut buf = Vec::new();
        write_csv(&mut buf, "faulty", &r).unwrap();
        let csv = String::from_utf8(buf).unwrap();
        assert!(csv.contains("faulty,fault_cell_deaths,3"));
        assert!(csv.contains("faulty,ecp_entries_used_mean,1.0"));
    }

    #[test]
    fn pad_cache_section_appears_only_for_cached_runs() {
        // Cache-free: no pad-cache counters anywhere.
        let mut buf = Vec::new();
        write_jsonl(&mut buf, "plain", &sample_recorder()).unwrap();
        let plain = String::from_utf8(buf).unwrap();
        assert!(!plain.contains("pad_cache_"), "cache-free export must be unchanged");

        let mut r = sample_recorder();
        r.pad_cache_active();
        r.pad_cache_totals(40, 8, 6);
        let mut buf = Vec::new();
        write_jsonl(&mut buf, "cached", &r).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("\"name\":\"pad_cache_hits\",\"value\":40"));
        assert!(text.contains("\"name\":\"pad_cache_misses\",\"value\":8"));
        assert!(text.contains("\"name\":\"pad_cache_prefills\",\"value\":6"));
        assert!(crate::parse::parse_jsonl(&text).is_ok());

        let mut buf = Vec::new();
        write_csv(&mut buf, "cached", &r).unwrap();
        let csv = String::from_utf8(buf).unwrap();
        assert!(csv.contains("cached,pad_cache_hits,40"));
        assert!(csv.contains("cached,pad_cache_misses,8"));
        assert!(csv.contains("cached,pad_cache_prefills,6"));
    }

    #[test]
    fn aes_backend_record_appears_only_when_reported() {
        // Pre-dispatch drivers never call the hook: no record anywhere.
        let mut buf = Vec::new();
        write_jsonl(&mut buf, "plain", &sample_recorder()).unwrap();
        let plain = String::from_utf8(buf).unwrap();
        assert!(
            !plain.contains("aes_backend"),
            "dispatch-free export must be unchanged"
        );

        let mut r = sample_recorder();
        r.aes_backend("hw");
        let mut buf = Vec::new();
        write_jsonl(&mut buf, "dispatched", &r).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains(
            "{\"type\":\"aes_backend\",\"run\":\"dispatched\",\"backend\":\"hw\"}"
        ));
        let events = crate::parse::parse_jsonl(&text).unwrap();
        let rec = events.iter().find(|e| e.kind() == "aes_backend").unwrap();
        assert_eq!(rec.str("backend"), Some("hw"));
    }

    #[test]
    fn store_section_appears_only_for_paged_runs() {
        use crate::recorder::StoreTelemetry;
        // Arena-backed: no store counters anywhere.
        let mut buf = Vec::new();
        write_jsonl(&mut buf, "plain", &sample_recorder()).unwrap();
        let plain = String::from_utf8(buf).unwrap();
        assert!(
            !plain.contains("store_page") && !plain.contains("store_resident"),
            "arena-backed export must be unchanged"
        );

        let mut r = sample_recorder();
        r.store_paging_active();
        r.store_totals(&StoreTelemetry {
            page_faults: 20,
            page_evictions: 11,
            pages_flushed: 13,
            resident_bytes: 9216,
            peak_resident_bytes: 18_432,
        });
        let mut buf = Vec::new();
        write_jsonl(&mut buf, "paged", &r).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("\"name\":\"store_page_faults\",\"value\":20"));
        assert!(text.contains("\"name\":\"store_page_evictions\",\"value\":11"));
        assert!(text.contains("\"name\":\"store_pages_flushed\",\"value\":13"));
        assert!(text.contains("\"name\":\"store_peak_resident_bytes\",\"value\":18432"));
        assert!(crate::parse::parse_jsonl(&text).is_ok());

        let mut buf = Vec::new();
        write_csv(&mut buf, "paged", &r).unwrap();
        let csv = String::from_utf8(buf).unwrap();
        assert!(csv.contains("paged,store_page_faults,20"));
        assert!(csv.contains("paged,store_resident_bytes,9216"));
    }

    #[test]
    fn span_section_appears_only_for_span_traced_runs() {
        // Span-free: no span records anywhere.
        let mut buf = Vec::new();
        write_jsonl(&mut buf, "plain", &sample_recorder()).unwrap();
        let plain = String::from_utf8(buf).unwrap();
        assert!(!plain.contains("\"type\":\"span\""), "span-free export must be unchanged");

        let mut r = sample_recorder().with_spans();
        r.span_begin("run");
        r.stage_ns(Stage::Scheme, 400);
        r.span_attach(Some("stage:scheme"), "pad_generation", 150, 3);
        r.span_end();
        let mut buf = Vec::new();
        write_jsonl(&mut buf, "traced", &r).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("\"type\":\"span\",\"run\":\"traced\",\"name\":\"run\""));
        assert!(text.contains(
            "\"name\":\"pad_generation\",\"parent\":\"stage:scheme\",\"count\":3,\
             \"total_ns\":150,\"self_ns\":150"
        ));
        assert!(crate::parse::parse_jsonl(&text).is_ok());
    }

    /// Satellite coverage: a seeded export exercising *every* event
    /// kind — including the gated fault, pad-cache, and span records —
    /// round-trips through the parser with values intact.
    #[test]
    fn every_event_kind_round_trips_through_the_parser() {
        use crate::recorder::FaultObservation;
        let mut r = sample_recorder().with_spans();
        r.fault_injection_active();
        r.fault_observed(&FaultObservation {
            sim_ns: 500.0,
            write_index: 3,
            cell_deaths: 2,
            ecp_consumed: 1,
            retired: true,
            uncorrectable: false,
        });
        r.fault_observed(&FaultObservation {
            sim_ns: 750.0,
            write_index: 4,
            cell_deaths: 1,
            ecp_consumed: 0,
            retired: false,
            uncorrectable: true,
        });
        r.ecp_entries_used(1);
        r.pad_cache_active();
        r.pad_cache_totals(40, 8, 6);
        r.aes_backend("ttable");
        r.span_begin("run");
        r.stage_ns(Stage::Counter, 90);
        r.span_end();

        let mut buf = Vec::new();
        write_jsonl(&mut buf, "full", &r).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let events = crate::parse::parse_jsonl(&text).unwrap();
        let kinds: std::collections::BTreeSet<&str> =
            events.iter().map(|e| e.kind()).collect();
        for kind in [
            "meta",
            "counter",
            "gauge",
            "hist",
            "hist_bucket",
            "retirement",
            "uncorrectable",
            "aes_backend",
            "sample",
            "profile",
            "span",
        ] {
            assert!(kinds.contains(kind), "missing kind {kind} in {kinds:?}");
        }
        // Spot-check values through the parse layer.
        let counter = |name: &str| {
            events
                .iter()
                .find(|e| e.kind() == "counter" && e.str("name") == Some(name))
                .and_then(|e| e.u64("value"))
        };
        assert_eq!(counter("writes"), Some(4));
        assert_eq!(counter("fault_cell_deaths"), Some(3));
        assert_eq!(counter("pad_cache_hits"), Some(40));
        let ue = events.iter().find(|e| e.kind() == "uncorrectable").unwrap();
        assert_eq!(ue.u64("write"), Some(4));
        assert_eq!(ue.num("sim_ns"), Some(750.0));
        let span = events
            .iter()
            .find(|e| e.kind() == "span" && e.str("name") == Some("stage:counter"))
            .unwrap();
        assert_eq!(span.u64("total_ns"), Some(90));
        assert_eq!(span.str("parent"), Some("run"));
    }

    #[test]
    fn csv_summary_has_counters_and_means() {
        let mut buf = Vec::new();
        write_csv_header(&mut buf).unwrap();
        write_csv(&mut buf, "deuce", &sample_recorder()).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("run,metric,value\n"));
        assert!(text.contains("deuce,writes,4"));
        assert!(text.contains("deuce,flips_per_write_mean,"));
        assert!(text.contains("deuce,series_samples,2"));
    }
}

//! Periodic checkpoints for long streaming runs.
//!
//! Simulator state (scheme lines, cell arrays, repair maps, timing
//! queues) is deliberately *not* serialised — it spans ten scheme state
//! types and several crates, and any drift between a snapshot format
//! and the live structs would silently corrupt results. Instead a
//! [`RunCheckpoint`] is a **deterministic progress fingerprint**: the
//! aggregate counters of the run at a known stream position. Because
//! every run is a pure function of (config, stream), resuming means
//! *replaying* the stream and verifying the fingerprint still matches
//! at the checkpointed position — divergence (a changed config, a
//! different trace file, a code change) is detected and reported
//! instead of producing subtly wrong numbers.
//!
//! Checkpoints are cheap (a JSONL line every N writes), so the real
//! compute-saving resume granularity lives one level up: the sweep
//! manifest layer skips whole completed cells (see
//! [`crate::manifest`]).

use deuce_telemetry::parse::{parse_jsonl, ParseError};

use crate::result::SimResult;

/// The aggregate counters of a streaming run at one stream position —
/// enough to verify bit-identical replay, written as one JSONL line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunCheckpoint {
    /// Trace events consumed when the checkpoint was taken.
    pub events_consumed: u64,
    /// Reads processed.
    pub reads: u64,
    /// Counted writes (first touches excluded).
    pub writes: u64,
    /// Data-bit flips so far.
    pub data_flips: u64,
    /// Metadata-bit flips so far.
    pub meta_flips: u64,
    /// Counter-bit flips so far.
    pub counter_flips: u64,
    /// DEUCE epochs started so far.
    pub epoch_starts: u64,
    /// Write slots consumed so far.
    pub total_slots: u64,
    /// Simulated time at the checkpoint, as raw `f64` bits so the
    /// comparison is exact (stored in hex — JSON numbers cannot carry
    /// all 64 bits).
    pub exec_time_ns_bits: u64,
    /// Pages the line-store backend had written back when the
    /// checkpoint was taken (0 for the in-RAM arena, which never
    /// flushes).
    pub flushed_pages: u64,
    /// Running FNV-1a fingerprint over every flushed page's bytes, in
    /// flush order (0 for the arena). Replay reproduces evictions at
    /// identical points, so a resume against an existing page file
    /// verifies the flushed-page state, not just the run counters.
    pub flush_fp: u64,
}

impl RunCheckpoint {
    /// Captures the current run counters at `events_consumed`.
    /// `flush_state` is the store backend's `(flushed_pages, flush_fp)`
    /// pair at this point in the stream.
    pub(crate) fn capture(
        events_consumed: u64,
        result: &SimResult,
        exec_time_ns: f64,
        flush_state: (u64, u64),
    ) -> Self {
        Self {
            events_consumed,
            reads: result.reads,
            writes: result.writes,
            data_flips: result.data_flips,
            meta_flips: result.meta_flips,
            counter_flips: result.counter_flips,
            epoch_starts: result.epoch_starts,
            total_slots: result.total_slots,
            exec_time_ns_bits: exec_time_ns.to_bits(),
            flushed_pages: flush_state.0,
            flush_fp: flush_state.1,
        }
    }

    /// Simulated time at the checkpoint.
    #[must_use]
    pub fn exec_time_ns(&self) -> f64 {
        f64::from_bits(self.exec_time_ns_bits)
    }

    /// Serialises the checkpoint as one JSONL line (with trailing
    /// newline). Counters are JSON numbers; `exec_time_ns_bits` is a
    /// hex string because JSON numbers lose integer precision past
    /// 2^53.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        format!(
            "{{\"type\":\"run_checkpoint\",\"version\":1,\"events\":{},\"reads\":{},\
             \"writes\":{},\"data_flips\":{},\"meta_flips\":{},\"counter_flips\":{},\
             \"epoch_starts\":{},\"total_slots\":{},\"exec_ns_bits\":\"{:016x}\",\
             \"flushed_pages\":{},\"flush_fp\":\"{:016x}\"}}\n",
            self.events_consumed,
            self.reads,
            self.writes,
            self.data_flips,
            self.meta_flips,
            self.counter_flips,
            self.epoch_starts,
            self.total_slots,
            self.exec_time_ns_bits,
            self.flushed_pages,
            self.flush_fp,
        )
    }

    /// Parses the *last* checkpoint from JSONL text (a checkpoint file
    /// accumulates periodic lines; resume wants the furthest one).
    ///
    /// # Errors
    ///
    /// Returns [`ParseError`] on malformed JSONL, a missing checkpoint
    /// line, or missing fields.
    pub fn from_jsonl(text: &str) -> Result<Self, ParseError> {
        let events = parse_jsonl(text)?;
        let last = events
            .iter()
            .rev()
            .find(|e| e.kind() == "run_checkpoint")
            .ok_or_else(|| ParseError {
                line: 0,
                message: "no run_checkpoint line found".into(),
            })?;
        let field = |key: &str| {
            last.u64(key).ok_or_else(|| ParseError {
                line: 0,
                message: format!("checkpoint missing numeric field \"{key}\""),
            })
        };
        let exec_bits = last
            .str("exec_ns_bits")
            .and_then(|s| u64::from_str_radix(s, 16).ok())
            .ok_or_else(|| ParseError {
                line: 0,
                message: "checkpoint missing hex field \"exec_ns_bits\"".into(),
            })?;
        Ok(Self {
            events_consumed: field("events")?,
            reads: field("reads")?,
            writes: field("writes")?,
            data_flips: field("data_flips")?,
            meta_flips: field("meta_flips")?,
            counter_flips: field("counter_flips")?,
            epoch_starts: field("epoch_starts")?,
            total_slots: field("total_slots")?,
            exec_time_ns_bits: exec_bits,
            // Lenient: checkpoints written before out-of-core stores
            // carry no flush state, which matches the arena's (0, 0).
            flushed_pages: last.u64("flushed_pages").unwrap_or(0),
            flush_fp: last
                .str("flush_fp")
                .and_then(|s| u64::from_str_radix(s, 16).ok())
                .unwrap_or(0),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunCheckpoint {
        RunCheckpoint {
            events_consumed: 12_345,
            reads: 9_000,
            writes: 3_000,
            data_flips: 81_234,
            meta_flips: 777,
            counter_flips: 42,
            epoch_starts: 12,
            total_slots: 6_100,
            exec_time_ns_bits: 1.25e9_f64.to_bits(),
            flushed_pages: 5,
            flush_fp: 0xdead_beef_cafe_f00d,
        }
    }

    #[test]
    fn jsonl_roundtrip_is_exact() {
        let cp = sample();
        let text = cp.to_jsonl();
        assert!(text.ends_with('\n'));
        let back = RunCheckpoint::from_jsonl(&text).unwrap();
        assert_eq!(back, cp);
        assert_eq!(back.exec_time_ns(), 1.25e9);
    }

    #[test]
    fn resume_takes_the_last_checkpoint() {
        let mut text = String::new();
        let mut early = sample();
        early.events_consumed = 10;
        text.push_str(&early.to_jsonl());
        text.push_str(&sample().to_jsonl());
        let back = RunCheckpoint::from_jsonl(&text).unwrap();
        assert_eq!(back.events_consumed, 12_345);
    }

    #[test]
    fn pre_paging_checkpoints_parse_with_zero_flush_state() {
        let old = "{\"type\":\"run_checkpoint\",\"version\":1,\"events\":10,\"reads\":1,\
                   \"writes\":2,\"data_flips\":3,\"meta_flips\":4,\"counter_flips\":5,\
                   \"epoch_starts\":6,\"total_slots\":7,\
                   \"exec_ns_bits\":\"3fb999999999999a\"}\n";
        let cp = RunCheckpoint::from_jsonl(old).unwrap();
        assert_eq!(cp.flushed_pages, 0);
        assert_eq!(cp.flush_fp, 0);
        assert_eq!(cp.events_consumed, 10);
    }

    #[test]
    fn missing_or_malformed_input_errors() {
        assert!(RunCheckpoint::from_jsonl("").is_err());
        assert!(RunCheckpoint::from_jsonl("{\"type\":\"other\"}\n").is_err());
        let mut truncated = sample().to_jsonl();
        truncated.truncate(truncated.len() / 2);
        assert!(RunCheckpoint::from_jsonl(&truncated).is_err());
    }
}

//! Streaming runs must be bit-identical to materialised runs.
//!
//! `Simulator::run_source` is the bounded-memory entry point: a
//! generator or trace file is consumed one event at a time. Any
//! divergence from `run_trace` on the materialised equivalent would
//! make large-trace results silently untrustworthy, so every scheme,
//! every source kind, and the faulted configuration are checked here —
//! as is the checkpoint layer (emit, replay-verify, divergence
//! detection).

use deuce_sim::{
    FaultConfig, RunCheckpoint, RunError, SimConfig, SimResult, Simulator, WearConfig,
};
use deuce_schemes::SchemeKind;
use deuce_trace::{open_source, write_source_jsonl, write_source_to_file, Trace, TraceConfig};
use deuce_trace::{Benchmark, WriteSource};
use std::fs::File;
use std::io::BufWriter;

fn workload() -> TraceConfig {
    TraceConfig::new(Benchmark::Mcf).lines(48).writes(700).cores(3).seed(11)
}

/// Every counter that feeds a paper figure, plus exact simulated time.
fn fingerprint(r: &SimResult) -> (u64, u64, u64, u64, u64, u64, u64, u64) {
    (
        r.reads,
        r.writes,
        r.data_flips,
        r.meta_flips,
        r.counter_flips,
        r.epoch_starts,
        r.total_slots,
        r.exec_time_ns.to_bits(),
    )
}

fn faulted_config(trace: &Trace, kind: SchemeKind) -> SimConfig {
    let lines = trace
        .writes()
        .map(|e| e.line.value())
        .collect::<std::collections::HashSet<_>>()
        .len();
    SimConfig::new(kind)
        .with_wear(WearConfig::vertical_only(lines.max(1)))
        .with_faults(FaultConfig::accelerated(2e-8).ecp_entries(1).spare_lines(1))
}

#[test]
fn generator_source_matches_materialised_trace_across_schemes() {
    let config = workload();
    let trace = config.generate();
    for kind in [
        SchemeKind::Deuce,
        SchemeKind::DynDeuce,
        SchemeKind::EncryptedDcw,
        SchemeKind::Ble,
    ] {
        let simulator = Simulator::new(SimConfig::new(kind));
        let materialised = simulator.run_trace(&trace);
        let streamed = simulator.run_source(&mut config.stream()).unwrap();
        assert_eq!(
            fingerprint(&streamed),
            fingerprint(&materialised),
            "{kind}: generator stream must replay the materialised run exactly"
        );
    }
}

#[test]
fn faulted_streaming_run_is_bit_identical() {
    let config = workload();
    let trace = config.generate();
    let simulator = Simulator::new(faulted_config(&trace, SchemeKind::Deuce));
    let materialised = simulator.run_trace(&trace);
    let streamed = simulator.run_source(&mut config.stream()).unwrap();
    assert_eq!(fingerprint(&streamed), fingerprint(&materialised));
    let faults = |r: &SimResult| {
        let f = r.faults.as_ref().expect("faulted run reports");
        (f.cell_deaths, f.lines_retired, f.first_uncorrectable_write)
    };
    assert_eq!(faults(&streamed), faults(&materialised), "degradation timeline agrees");
}

#[test]
fn file_sources_match_in_both_formats() {
    let dir = std::env::temp_dir().join(format!("deuce-stream-parity-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let config = workload();
    let trace = config.generate();
    let reference = fingerprint(&Simulator::new(SimConfig::new(SchemeKind::Deuce)).run_trace(&trace));

    let bin = dir.join("t.trace");
    write_source_to_file(&bin, &mut config.stream()).unwrap();
    let jsonl = dir.join("t.jsonl");
    write_source_jsonl(BufWriter::new(File::create(&jsonl).unwrap()), &mut config.stream())
        .unwrap();

    for path in [&bin, &jsonl] {
        let mut source = open_source(path).unwrap();
        let result =
            Simulator::new(SimConfig::new(SchemeKind::Deuce)).run_source(&mut *source).unwrap();
        assert_eq!(fingerprint(&result), reference, "{}", path.display());
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpoints_emit_verify_and_detect_divergence() {
    let config = workload();
    let simulator = Simulator::new(SimConfig::new(SchemeKind::Deuce));

    // Emit: one checkpoint per 200 counted writes plus the final one.
    let mut checkpoints: Vec<RunCheckpoint> = Vec::new();
    let reference = simulator
        .run_source_checkpointed(
            &mut config.stream(),
            &mut deuce_telemetry::NullRecorder,
            200,
            &mut |cp| checkpoints.push(*cp),
        )
        .unwrap();
    // Counted writes exclude first touches, so ~556 of the 700
    // writebacks count: two periodic checkpoints plus the final one.
    let expected = reference.writes / 200 + 1;
    assert_eq!(checkpoints.len() as u64, expected, "{} counted writes", reference.writes);
    let last = checkpoints.last().unwrap();
    assert_eq!(last.writes, reference.writes);
    assert_eq!(last.exec_time_ns(), reference.exec_time_ns);
    assert!(checkpoints.windows(2).all(|w| w[0].events_consumed < w[1].events_consumed));

    // Checkpointing is observation only.
    let plain = simulator.run_source(&mut config.stream()).unwrap();
    assert_eq!(fingerprint(&plain), fingerprint(&reference));

    // Replay-verify from an intermediate checkpoint reproduces the run.
    let mid = checkpoints[1];
    let resumed = simulator
        .resume_source(&mut config.stream(), &mut deuce_telemetry::NullRecorder, &mid)
        .unwrap();
    assert_eq!(fingerprint(&resumed), fingerprint(&reference));

    // A different stream (changed seed) diverges and is reported.
    let other = workload().seed(12);
    let err = simulator
        .resume_source(&mut other.stream(), &mut deuce_telemetry::NullRecorder, &mid)
        .unwrap_err();
    assert!(matches!(err, RunError::CheckpointMismatch { .. }), "{err:?}");

    // A stream shorter than the checkpoint position is also a mismatch.
    let short = workload().writes(50);
    let err = simulator
        .resume_source(&mut short.stream(), &mut deuce_telemetry::NullRecorder, &mid)
        .unwrap_err();
    assert!(matches!(err, RunError::CheckpointMismatch { .. }), "{err:?}");
}

#[test]
fn checkpoint_jsonl_round_trip_feeds_resume() {
    let config = workload();
    let simulator = Simulator::new(SimConfig::new(SchemeKind::Deuce));
    let mut file_text = String::new();
    let reference = simulator
        .run_source_checkpointed(
            &mut config.stream(),
            &mut deuce_telemetry::NullRecorder,
            250,
            &mut |cp| file_text.push_str(&cp.to_jsonl()),
        )
        .unwrap();
    let last = RunCheckpoint::from_jsonl(&file_text).unwrap();
    let resumed = simulator
        .resume_source(&mut config.stream(), &mut deuce_telemetry::NullRecorder, &last)
        .unwrap();
    assert_eq!(fingerprint(&resumed), fingerprint(&reference));
}

#[test]
fn trace_source_round_trip_preserves_cores() {
    // A 3-core trace must time against 3 cores in both paths; a
    // generator with more cores than writes clamps identically.
    let tiny = TraceConfig::new(Benchmark::Libquantum).cores(8).writes(3).lines(4).seed(1);
    let streamed = tiny.stream();
    assert_eq!(streamed.cores(), 3, "cores clamp to the write count");
    let trace = Trace::from_source(&mut tiny.stream()).unwrap();
    assert_eq!(trace, tiny.generate());
}

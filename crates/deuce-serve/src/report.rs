//! End-of-run and in-flight reporting types, plus the telemetry
//! recorder the service hands back for JSONL export.

use std::time::Duration;

use deuce_sim::SimResult;
use deuce_telemetry::{
    Counter, FlightRecorder, Histogram, Recorder, TelemetryConfig, TelemetryRecorder,
};

/// Point-in-time progress snapshot from [`ServeHandle::stats`].
///
/// [`ServeHandle::stats`]: crate::ServeHandle::stats
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests accepted so far.
    pub submitted: u64,
    /// Requests rejected with `QueueFull` so far.
    pub rejected: u64,
    /// Requests applied to tenant sessions so far.
    pub applied: u64,
    /// Wall time since the service started.
    pub elapsed: Duration,
    /// Per-shard occupancy (queued plus reserved slots).
    pub shard_depths: Vec<usize>,
}

impl ServeStats {
    /// Applied requests per wall-clock second since start.
    #[must_use]
    pub fn requests_per_sec(&self) -> f64 {
        self.applied as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

/// One tenant's final outcome.
#[derive(Debug, Clone)]
pub struct TenantReport {
    /// The tenant's registration name.
    pub name: String,
    /// Requests applied to the tenant's session.
    pub requests_applied: u64,
    /// Order-independent FNV fingerprint of the tenant's final memory
    /// image (stored line bytes + per-line metadata). Bit-identical to
    /// the fingerprint of a single-threaded replay of the same request
    /// stream, whatever the shard count.
    pub fingerprint: u64,
    /// The tenant's simulation summary, or the store error that
    /// latched during the run (paged backends).
    pub result: Result<SimResult, String>,
    /// Whether the tenant hit an uncorrectable write. The session kept
    /// stepping (replay bit-identity survives), but the device is past
    /// end of life and the tenant's data is no longer trustworthy.
    pub degraded: bool,
    /// Flight ring for post-mortems, when the service was built with
    /// [`ServiceBuilder::with_flight_recorder`]: the ring as of the
    /// first uncorrectable write, or the end-of-run ring otherwise.
    ///
    /// [`ServiceBuilder::with_flight_recorder`]: crate::ServiceBuilder::with_flight_recorder
    pub flight: Option<FlightRecorder>,
}

/// One worker shard's lifetime accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardReport {
    /// Requests this shard applied.
    pub drained: u64,
    /// Batches this shard popped.
    pub batches: u64,
    /// Deepest queue observed at a pop (high-water mark; occupancy may
    /// briefly exceed it between reservation and enqueue).
    pub max_depth: usize,
    /// Wall nanoseconds spent popping batches (queue lock held).
    pub drain_wall_ns: u64,
    /// Wall nanoseconds spent stepping tenant sessions.
    pub apply_wall_ns: u64,
}

/// Everything [`ServeHandle::shutdown`] hands back.
///
/// [`ServeHandle::shutdown`]: crate::ServeHandle::shutdown
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Per-tenant outcomes, in registration order.
    pub tenants: Vec<TenantReport>,
    /// Per-shard accounting, in shard order.
    pub shards: Vec<ShardReport>,
    /// Requests accepted over the service's lifetime.
    pub submitted: u64,
    /// Requests rejected with `QueueFull` over the service's lifetime.
    pub rejected: u64,
    /// Requests applied (equals `submitted` after a clean drain).
    pub applied: u64,
    /// Wall time from start to the end of shutdown's drain.
    pub elapsed: Duration,
    /// Distribution of batch sizes workers popped (log2 buckets).
    pub batch_sizes: Histogram,
    /// Shards whose worker thread panicked (empty on a clean run);
    /// their queued work may be only partially applied, but every
    /// other tenant's results are still collected.
    pub panicked_shards: Vec<usize>,
    /// Aggregate telemetry over all tenants — summed structured
    /// counters plus `serve` / `shard:drain` / `serve:apply` wall-time
    /// spans — ready for `deuce_telemetry::export::write_jsonl`.
    pub recorder: TelemetryRecorder,
}

impl ServeReport {
    /// Applied requests per wall-clock second over the whole run.
    #[must_use]
    pub fn requests_per_sec(&self) -> f64 {
        self.applied as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Whether every tenant finished with an `Ok` summary, no tenant
    /// degraded, and no shard panicked.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.panicked_shards.is_empty()
            && self
                .tenants
                .iter()
                .all(|t| t.result.is_ok() && !t.degraded)
    }
}

/// Builds the aggregate recorder: tenant-summed counters, and the
/// serve layer's wall-time spans in the same span table the simulator
/// uses (so `deuce report` shows `serve` next to `run`).
pub(crate) fn build_recorder(
    tenants: &[TenantReport],
    shards: &[ShardReport],
) -> TelemetryRecorder {
    let mut recorder = TelemetryRecorder::new(TelemetryConfig::default()).with_spans();
    for tenant in tenants {
        let Ok(result) = &tenant.result else { continue };
        let first_touches = tenant
            .requests_applied
            .saturating_sub(result.reads + result.writes);
        recorder.add(Counter::Reads, result.reads);
        recorder.add(Counter::Writes, result.writes);
        recorder.add(Counter::FirstTouches, first_touches);
        recorder.add(Counter::DataFlips, result.data_flips);
        recorder.add(Counter::MetaFlips, result.meta_flips);
        recorder.add(Counter::CounterFlips, result.counter_flips);
        recorder.add(Counter::EpochStarts, result.epoch_starts);
        recorder.add(Counter::SlotsTotal, result.total_slots);
    }
    let drained: u64 = shards.iter().map(|s| s.drained).sum();
    let batches: u64 = shards.iter().map(|s| s.batches).sum();
    let drain_ns: u64 = shards.iter().map(|s| s.drain_wall_ns).sum();
    let apply_ns: u64 = shards.iter().map(|s| s.apply_wall_ns).sum();
    recorder.span_begin("serve");
    recorder.span_attach(Some("serve"), "shard:drain", drain_ns, batches);
    recorder.span_attach(Some("serve"), "serve:apply", apply_ns, drained);
    recorder.span_end();
    recorder
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_sums_counters_and_exposes_serve_spans() {
        let tenants = vec![
            TenantReport {
                name: "a".into(),
                requests_applied: 12,
                fingerprint: 1,
                result: Ok(SimResult {
                    reads: 4,
                    writes: 6,
                    data_flips: 40,
                    ..SimResult::default()
                }),
                degraded: false,
                flight: None,
            },
            TenantReport {
                name: "b".into(),
                requests_applied: 3,
                fingerprint: 2,
                result: Err("disk gone".into()),
                degraded: false,
                flight: None,
            },
        ];
        let shards = vec![ShardReport {
            drained: 15,
            batches: 4,
            max_depth: 7,
            drain_wall_ns: 100,
            apply_wall_ns: 900,
        }];
        let recorder = build_recorder(&tenants, &shards);
        assert_eq!(recorder.counter(Counter::Reads), 4);
        assert_eq!(recorder.counter(Counter::Writes), 6);
        assert_eq!(recorder.counter(Counter::FirstTouches), 2);
        assert_eq!(recorder.counter(Counter::DataFlips), 40);
        let spans = recorder.spans().expect("built with spans");
        let names: Vec<&str> = spans.self_times().iter().map(|s| s.name).collect();
        assert!(names.contains(&"serve"), "span table: {names:?}");
        assert!(names.contains(&"shard:drain"), "span table: {names:?}");
        assert!(names.contains(&"serve:apply"), "span table: {names:?}");
    }
}

//! Randomized tests for pad uniqueness and the counter-mode invariants that
//! the paper's security argument (§4.3.5) rests on, driven by seeded
//! [`deuce_rng`] streams.

use deuce_crypto::{
    BlockCounters, EpochInterval, LineAddr, LineCounter, OtpEngine, SecretKey, VirtualCounterPair,
};
use deuce_rng::{DeuceRng, Rng};
use std::collections::HashSet;

/// Encryption followed by decryption with the same (addr, counter) is
/// the identity.
#[test]
fn otp_roundtrip() {
    let mut rng = DeuceRng::seed_from_u64(0xC0DE_0001);
    for _ in 0..128 {
        let seed: u64 = rng.gen();
        let addr = LineAddr::new(rng.gen());
        let ctr = rng.gen_range(0u64..(1 << 28));
        let data: [u8; 64] = rng.gen();
        let engine = OtpEngine::new(&SecretKey::from_seed(seed));
        let ct = engine.line_pad(addr, ctr).xor(&data);
        assert_eq!(engine.line_pad(addr, ctr).xor(&ct), data);
    }
}

/// The trailing counter equals the leading counter with the epoch LSBs
/// masked, for every legal epoch interval.
#[test]
fn tctr_is_masked_lctr() {
    let mut rng = DeuceRng::seed_from_u64(0xC0DE_0002);
    for _ in 0..512 {
        let ctr: u64 = rng.gen();
        let log2 = rng.gen_range(1u32..6);
        let epoch = EpochInterval::new(1 << log2).unwrap();
        let v = VirtualCounterPair::derive(ctr, epoch);
        assert_eq!(v.tctr(), ctr & !((1u64 << log2) - 1));
        assert_eq!(v.is_epoch_start(), ctr.is_multiple_of(1 << log2));
    }
}

/// Counter monotonicity: value sequence is 0,1,2,... until the width
/// wraps. Exhaustive over every width the original randomized test drew.
#[test]
fn counter_sequence() {
    for width in 2u32..20 {
        let mut ctr = LineCounter::new(width);
        let limit = 1u64 << width.min(12);
        for expected in 1..limit {
            let wrapped = ctr.increment();
            assert_eq!(ctr.value(), expected % (1 << width));
            assert_eq!(wrapped, expected % (1 << width) == 0);
        }
    }
}

/// Exhaustive pad-uniqueness sweep: across lines, counters, and BLE block
/// indices, no two pad blocks collide. This is the "OTP is never reused"
/// invariant.
#[test]
fn pads_never_collide_across_domain() {
    let engine = OtpEngine::new(&SecretKey::from_seed(99));
    let mut seen: HashSet<Vec<u8>> = HashSet::new();
    for line in 0..8u64 {
        let addr = LineAddr::new(line);
        for ctr in 0..32u64 {
            let pad = engine.line_pad(addr, ctr);
            for sub in 0..4 {
                assert!(
                    seen.insert(pad.word(sub, 16).to_vec()),
                    "line pad collision at line {line}, ctr {ctr}, sub {sub}"
                );
            }
            for block in 0..4 {
                let bp = engine.block_pad(addr, block, ctr);
                assert!(
                    seen.insert(bp.as_bytes().to_vec()),
                    "block pad collision at line {line}, ctr {ctr}, block {block}"
                );
            }
        }
    }
    assert_eq!(seen.len(), 8 * 32 * 8);
}

/// DEUCE's word-level pad reuse argument: within an epoch, a word that is
/// modified at write c1 and again at write c2 uses pad(c1) then pad(c2) —
/// never the same pad twice, because the line counter increments on every
/// write. We verify the underlying fact: the (counter, word) pad slices
/// across a whole epoch are all distinct.
#[test]
fn word_pads_unique_within_epoch() {
    let engine = OtpEngine::new(&SecretKey::from_seed(7));
    let addr = LineAddr::new(0x42);
    let epoch = EpochInterval::DEFAULT;
    let mut seen: HashSet<(usize, Vec<u8>)> = HashSet::new();
    for ctr in 0..epoch.writes() {
        let pad = engine.line_pad(addr, ctr);
        for word in 0..32 {
            assert!(
                seen.insert((word, pad.word(word, 2).to_vec())),
                "pad slice reuse for word {word} at counter {ctr}"
            );
        }
    }
}

/// BLE block counters advance independently and storage accounting holds.
#[test]
fn block_counter_independence() {
    let mut counters = BlockCounters::new(28);
    for i in 0..100 {
        counters.increment(i % 4);
    }
    assert_eq!(counters.iter().sum::<u64>(), 100);
    assert_eq!(counters.value(0), 25);
}

//! Model-based testing: `SecureMemory` must behave exactly like a plain
//! byte array, for every scheme, under arbitrary access sequences.
//! Driven by seeded [`deuce_rng`] streams.

use deuce_memctl::{MemoryBuilder, SchemeKind};
use deuce_rng::{DeuceRng, Rng, RngCore};

#[derive(Debug, Clone)]
enum Access {
    Write { offset: usize, data: Vec<u8> },
    Read { offset: usize, len: usize },
}

fn random_access<R: RngCore>(rng: &mut R, size: usize) -> Access {
    let offset = rng.gen_range(0..size);
    if rng.gen_bool(0.5) {
        let len = rng.gen_range(1usize..200);
        let mut data = vec![0u8; len];
        rng.fill(&mut data);
        Access::Write { offset, data }
    } else {
        Access::Read { offset, len: rng.gen_range(1usize..200) }
    }
}

/// Differential test against a plain `Vec<u8>` shadow model.
#[test]
fn behaves_like_a_byte_array() {
    let kinds = [
        SchemeKind::UnencryptedDcw,
        SchemeKind::EncryptedDcw,
        SchemeKind::Deuce,
        SchemeKind::DynDeuce,
        SchemeKind::BleDeuce,
    ];
    let mut rng = DeuceRng::seed_from_u64(0x3E3C_0001);
    for case in 0..32 {
        let kind = kinds[case % kinds.len()];
        let seed: u64 = rng.gen();
        let size = 1024usize;
        let mut builder = MemoryBuilder::new(size);
        builder.scheme(kind).key_seed(seed);
        let mut memory = builder.build();
        let mut model = vec![0u8; size];

        let accesses = rng.gen_range(1usize..40);
        for _ in 0..accesses {
            match random_access(&mut rng, size) {
                Access::Write { offset, data } => {
                    let len = data.len().min(size - offset);
                    let data = &data[..len];
                    memory.write(offset, data).unwrap();
                    model[offset..offset + len].copy_from_slice(data);
                }
                Access::Read { offset, len } => {
                    let len = len.min(size - offset);
                    let mut buf = vec![0u8; len];
                    memory.read(offset, &mut buf).unwrap();
                    assert_eq!(&buf, &model[offset..offset + len], "{kind}");
                }
            }
        }
        // Final full readback.
        let mut full = vec![0u8; size];
        memory.read(0, &mut full).unwrap();
        assert_eq!(full, model);
    }
}

/// Integrity mode changes nothing functionally (until tampering).
#[test]
fn integrity_is_transparent() {
    let mut rng = DeuceRng::seed_from_u64(0x3E3C_0002);
    for _ in 0..32 {
        let seed: u64 = rng.gen();
        let mut with = {
            let mut b = MemoryBuilder::new(512);
            b.integrity(true).key_seed(seed);
            b.build()
        };
        let mut without = {
            let mut b = MemoryBuilder::new(512);
            b.key_seed(seed);
            b.build()
        };
        let writes = rng.gen_range(1usize..30);
        for _ in 0..writes {
            let offset = rng.gen_range(0usize..512);
            let byte: u8 = rng.gen();
            with.write(offset, &[byte]).unwrap();
            without.write(offset, &[byte]).unwrap();
        }
        let mut a = vec![0u8; 512];
        let mut b = vec![0u8; 512];
        with.read(0, &mut a).unwrap();
        without.read(0, &mut b).unwrap();
        assert_eq!(a, b);
        assert_eq!(with.stats().bit_flips, without.stats().bit_flips);
        assert!(with.stats().integrity_checks > 0);
        assert_eq!(without.stats().integrity_checks, 0);
    }
}

/// Tampering with any line's counter is caught on the next access to
/// that line (and only that line).
#[test]
fn tampering_is_localized() {
    let mut builder = MemoryBuilder::new(64 * 8);
    builder.integrity(true).key_seed(7);
    let mut memory = builder.build();
    for line in 0..8usize {
        memory.write(line * 64, &[line as u8; 64]).unwrap();
    }
    memory.tamper_counter(3, 999);
    for line in 0..8usize {
        let mut buf = [0u8; 64];
        let result = memory.read(line * 64, &mut buf);
        if line == 3 {
            assert!(result.is_err(), "tampered line must fail");
        } else {
            assert!(result.is_ok(), "line {line} should be unaffected");
            assert_eq!(buf, [line as u8; 64]);
        }
    }
}

//! Randomized tests: the integrity layer catches every single-point
//! forgery. Driven by seeded [`deuce_rng`] streams.

use deuce_crypto::LineAddr;
use deuce_integrity::{AesHash, CounterTree, LineMac};
use deuce_rng::{DeuceRng, Rng};

/// Any forged counter value is detected, and the genuine one always
/// verifies, after an arbitrary update history.
#[test]
fn forged_counters_always_detected() {
    let mut rng = DeuceRng::seed_from_u64(0x16E6_0001);
    for _ in 0..48 {
        let lines = rng.gen_range(1usize..200);
        let mut tree = CounterTree::new(lines, [1u8; 16]);
        let mut truth = vec![0u64; lines];
        let updates = rng.gen_range(0usize..50);
        for _ in 0..updates {
            let line = usize::from(rng.gen::<u16>()) % lines;
            let value = u64::from(rng.gen::<u32>());
            tree.update(line, value);
            truth[line] = value;
        }
        let probe = usize::from(rng.gen::<u16>()) % lines;
        let forged: u64 = rng.gen();
        assert!(tree.verify(probe, truth[probe]).is_ok());
        if forged != truth[probe] {
            assert!(tree.verify(probe, forged).is_err());
        }
    }
}

/// A MAC never validates data with any single byte corrupted, a
/// shifted counter, or a relocated address.
#[test]
fn macs_catch_single_point_forgeries() {
    let mut rng = DeuceRng::seed_from_u64(0x16E6_0002);
    for _ in 0..48 {
        let addr: u64 = rng.gen();
        let counter: u64 = rng.gen();
        let data: [u8; 64] = rng.gen();
        let corrupt_at = rng.gen_range(0usize..64);
        let corrupt_with = rng.gen_range(1u8..=255);
        let mac = LineMac::new([9u8; 16]);
        let tag = mac.tag(LineAddr::new(addr), counter, &data);
        assert!(mac.check(LineAddr::new(addr), counter, &data, &tag));

        let mut corrupted = data;
        corrupted[corrupt_at] ^= corrupt_with;
        assert!(!mac.check(LineAddr::new(addr), counter, &corrupted, &tag));
        assert!(!mac.check(LineAddr::new(addr), counter.wrapping_add(1), &data, &tag));
        assert!(!mac.check(LineAddr::new(addr.wrapping_add(1)), counter, &data, &tag));
    }
}

/// Hash collisions do not appear across structurally different
/// inputs (prefix-freeness from length strengthening).
#[test]
fn hash_distinguishes_prefixes() {
    let mut rng = DeuceRng::seed_from_u64(0x16E6_0003);
    for _ in 0..48 {
        let len = rng.gen_range(0usize..64);
        let mut data = vec![0u8; len];
        rng.fill(&mut data);
        let h = AesHash::new();
        let base = h.hash(&data);
        let mut extended = data.clone();
        extended.push(0);
        assert_ne!(base, h.hash(&extended));
        if !data.is_empty() {
            assert_ne!(base, h.hash(&data[..data.len() - 1]));
        }
    }
}

/// Sequential counter advance (the actual memory-controller pattern):
/// each write's update keeps the whole tree consistent.
#[test]
fn write_path_keeps_tree_consistent() {
    let mut tree = CounterTree::new(64, [4u8; 16]);
    let mut counters = vec![0u64; 64];
    for i in 0..500usize {
        let line = (i * 7) % 64;
        counters[line] += 1;
        tree.update(line, counters[line]);
    }
    for (line, &value) in counters.iter().enumerate() {
        assert!(tree.verify(line, value).is_ok(), "line {line}");
        assert!(tree.verify(line, value + 1).is_err(), "line {line} forgery");
    }
}

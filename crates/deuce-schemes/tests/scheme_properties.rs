//! Randomized tests over all scheme state machines, driven by seeded
//! [`deuce_rng`] streams.

use deuce_crypto::{EpochInterval, LineAddr, OtpEngine, SecretKey};
use deuce_rng::{DeuceRng, Rng, RngCore};
use deuce_schemes::{DeuceLine, SchemeConfig, SchemeKind, SchemeLine, WordSize};

fn pick_scheme<R: RngCore>(rng: &mut R) -> SchemeKind {
    SchemeKind::ALL[rng.gen_range(0..SchemeKind::ALL.len())]
}

/// Writes modeled as (byte index, new value) patches so that sequences
/// mix sparse and dense updates.
fn patch<R: RngCore>(rng: &mut R) -> Vec<(usize, u8)> {
    let len = rng.gen_range(1usize..120);
    (0..len).map(|_| (rng.gen_range(0usize..64), rng.gen())).collect()
}

/// The fundamental contract: read always returns the latest write,
/// for every scheme, any write sequence.
#[test]
fn read_returns_latest_write() {
    let mut rng = DeuceRng::seed_from_u64(0x5C4E_0001);
    for _ in 0..64 {
        let kind = pick_scheme(&mut rng);
        let seed: u64 = rng.gen();
        let initial: [u8; 64] = rng.gen();
        let engine = OtpEngine::new(&SecretKey::from_seed(seed));
        let config = SchemeConfig::new(kind);
        let mut line = SchemeLine::new(&config, &engine, LineAddr::new(seed % 1024), &initial);
        let mut data = initial;
        let writes = rng.gen_range(1usize..40);
        for _ in 0..writes {
            for (idx, value) in patch(&mut rng) {
                data[idx] = value;
            }
            let _ = line.write(&engine, &data);
            assert_eq!(line.read(&engine), data, "{kind}");
        }
    }
}

/// Flip accounting is always consistent with the stored images, and
/// never exceeds the total stored bits.
#[test]
fn flips_are_image_consistent_and_bounded() {
    let mut rng = DeuceRng::seed_from_u64(0x5C4E_0002);
    for _ in 0..64 {
        let kind = pick_scheme(&mut rng);
        let initial: [u8; 64] = rng.gen();
        let engine = OtpEngine::new(&SecretKey::from_seed(1));
        let config = SchemeConfig::new(kind);
        let mut line = SchemeLine::new(&config, &engine, LineAddr::new(3), &initial);
        let mut data = initial;
        for (idx, value) in patch(&mut rng) {
            data[idx] = value;
        }
        let outcome = line.write(&engine, &data);
        assert_eq!(outcome.flips, outcome.old_image.flips_to(&outcome.new_image));
        assert!(outcome.flips.total() <= 512 + config.metadata_bits());
        assert_eq!(outcome.old_image.meta().width(), config.metadata_bits());
        assert_eq!(outcome.new_image.meta().width(), config.metadata_bits());
    }
}

/// A write that does not change the plaintext never flips stored
/// bits under the write-efficient schemes (DCW semantics) — while
/// counter-mode always pays the avalanche.
#[test]
fn identity_writes() {
    let mut rng = DeuceRng::seed_from_u64(0x5C4E_0003);
    for _ in 0..64 {
        let initial: [u8; 64] = rng.gen();
        let engine = OtpEngine::new(&SecretKey::from_seed(2));
        for kind in [
            SchemeKind::UnencryptedDcw,
            SchemeKind::UnencryptedFnw,
            SchemeKind::Ble,
            SchemeKind::AddrPad,
        ] {
            let mut line =
                SchemeLine::new(&SchemeConfig::new(kind), &engine, LineAddr::new(1), &initial);
            let outcome = line.write(&engine, &initial);
            assert_eq!(outcome.flips.total(), 0, "{kind}");
        }
        // Encrypted DCW re-encrypts regardless: ~50% of bits flip.
        let mut enc = SchemeLine::new(
            &SchemeConfig::new(SchemeKind::EncryptedDcw),
            &engine,
            LineAddr::new(1),
            &initial,
        );
        let outcome = enc.write(&engine, &initial);
        assert!(outcome.flips.total() > 150);
    }
}

/// DEUCE invariant: between epoch starts, stored bits outside the
/// modified footprint (words + their tracking bits) never change.
#[test]
fn deuce_untouched_words_are_frozen() {
    let mut rng = DeuceRng::seed_from_u64(0x5C4E_0004);
    for _ in 0..64 {
        let seed: u64 = rng.gen();
        let engine = OtpEngine::new(&SecretKey::from_seed(seed));
        let mut line = DeuceLine::new(
            &engine,
            LineAddr::new(9),
            &[0u8; 64],
            WordSize::Bytes2,
            EpochInterval::new(64).unwrap(),
            28,
        );
        // Confine updates to words 0..8; words 8..32 must stay frozen
        // until the first epoch boundary (write 64, beyond this run).
        let mut data = [0u8; 64];
        let baseline = *line.image().data();
        let updates = rng.gen_range(1usize..60);
        for _ in 0..updates {
            let word = rng.gen_range(0usize..8);
            let value: u16 = rng.gen();
            data[word * 2..word * 2 + 2].copy_from_slice(&value.to_le_bytes());
            let _ = line.write(&engine, &data);
        }
        let now = *line.image().data();
        assert_eq!(&now[16..], &baseline[16..], "cold words changed");
    }
}

/// Epoch counting: exactly floor(writes / epoch) epoch starts occur
/// in a run of consecutive writes to one line.
#[test]
fn epoch_start_frequency() {
    let mut rng = DeuceRng::seed_from_u64(0x5C4E_0005);
    for _ in 0..64 {
        let writes = rng.gen_range(1usize..100);
        let epoch_log2 = rng.gen_range(2u32..6);
        let engine = OtpEngine::new(&SecretKey::from_seed(5));
        let epoch = 1u64 << epoch_log2;
        let mut line = DeuceLine::new(
            &engine,
            LineAddr::new(2),
            &[0u8; 64],
            WordSize::Bytes2,
            EpochInterval::new(epoch).unwrap(),
            28,
        );
        let mut observed = 0u64;
        let mut data = [0u8; 64];
        for i in 1..=writes {
            data[0] = i as u8;
            data[1] = (i >> 8) as u8;
            if line.write(&engine, &data).epoch_started {
                observed += 1;
            }
        }
        assert_eq!(observed, writes as u64 / epoch);
    }
}

/// Differential: DEUCE with word size w and epoch e decrypts identically
/// whether reads happen after every write or only at the end (no hidden
/// read-side state).
#[test]
fn reads_have_no_side_effects() {
    let engine = OtpEngine::new(&SecretKey::from_seed(8));
    for kind in SchemeKind::ALL {
        let config = SchemeConfig::new(kind);
        let mut with_reads = SchemeLine::new(&config, &engine, LineAddr::new(4), &[0u8; 64]);
        let mut without = SchemeLine::new(&config, &engine, LineAddr::new(4), &[0u8; 64]);
        let mut data = [0u8; 64];
        for i in 0..50u8 {
            data[usize::from(i % 32)] = i;
            let a = with_reads.write(&engine, &data);
            let _ = with_reads.read(&engine);
            let b = without.write(&engine, &data);
            assert_eq!(a.flips, b.flips, "{kind}: read perturbed the state at write {i}");
        }
        assert_eq!(with_reads.image(), without.image(), "{kind}");
    }
}

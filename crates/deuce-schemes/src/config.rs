//! Scheme selection and parameters.

use deuce_crypto::EpochInterval;
use deuce_crypto::LINE_BYTES;

/// DEUCE's modified-word tracking granularity (§4.2). One metadata bit is
/// stored per word, so smaller words cost more storage but save more
/// flips (Fig. 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[derive(Default)]
pub enum WordSize {
    /// 1-byte words: 64 tracking bits per line, 21.4% flips.
    Bytes1,
    /// 2-byte words (the paper's default): 32 bits, 23.7% flips.
    #[default]
    Bytes2,
    /// 4-byte words: 16 bits, 26.8% flips.
    Bytes4,
    /// 8-byte words: 8 bits, 32.2% flips.
    Bytes8,
}

impl WordSize {
    /// Word size in bytes.
    #[must_use]
    pub fn bytes(self) -> usize {
        match self {
            WordSize::Bytes1 => 1,
            WordSize::Bytes2 => 2,
            WordSize::Bytes4 => 4,
            WordSize::Bytes8 => 8,
        }
    }

    /// Words per 64-byte line.
    #[must_use]
    pub fn words_per_line(self) -> usize {
        LINE_BYTES / self.bytes()
    }

    /// Tracking metadata bits per line (one per word).
    #[must_use]
    pub fn tracking_bits(self) -> u32 {
        self.words_per_line() as u32
    }

    /// Creates a word size from a byte count.
    ///
    /// # Errors
    ///
    /// Returns an error message for sizes other than 1, 2, 4 or 8.
    pub fn from_bytes(bytes: usize) -> Result<Self, InvalidWordSize> {
        match bytes {
            1 => Ok(WordSize::Bytes1),
            2 => Ok(WordSize::Bytes2),
            4 => Ok(WordSize::Bytes4),
            8 => Ok(WordSize::Bytes8),
            other => Err(InvalidWordSize(other)),
        }
    }
}


/// Error for unsupported DEUCE word sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidWordSize(pub usize);

impl core::fmt::Display for InvalidWordSize {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "invalid DEUCE word size {} (expected 1, 2, 4 or 8)", self.0)
    }
}

impl std::error::Error for InvalidWordSize {}

/// Which memory encoding to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchemeKind {
    /// Plaintext memory with Data Comparison Write.
    UnencryptedDcw,
    /// Plaintext memory with Flip-N-Write at 2-byte granularity.
    UnencryptedFnw,
    /// Counter-mode encrypted memory (the secure baseline): the whole
    /// line re-encrypts on every write.
    EncryptedDcw,
    /// Counter-mode encryption with FNW applied to the ciphertext.
    EncryptedFnw,
    /// Block-Level Encryption: four 16-byte blocks with private counters.
    Ble,
    /// Dual Counter Encryption (the paper's contribution).
    Deuce,
    /// DEUCE that morphs into FNW mid-epoch when FNW would flip fewer
    /// bits (§4.6).
    DynDeuce,
    /// DEUCE with dedicated FNW flip bits on top (64 metadata bits).
    DeuceFnw,
    /// DEUCE running inside each BLE block (§7.1, Fig. 18).
    BleDeuce,
    /// Address-only pad encryption (§7.2): counterless, protects against
    /// stolen-DIMM attacks only, with unencrypted-level bit flips.
    AddrPad,
}

impl SchemeKind {
    /// All schemes, in the order the paper's figures present them.
    pub const ALL: [SchemeKind; 10] = [
        SchemeKind::UnencryptedDcw,
        SchemeKind::UnencryptedFnw,
        SchemeKind::EncryptedDcw,
        SchemeKind::EncryptedFnw,
        SchemeKind::Ble,
        SchemeKind::Deuce,
        SchemeKind::DynDeuce,
        SchemeKind::DeuceFnw,
        SchemeKind::BleDeuce,
        SchemeKind::AddrPad,
    ];

    /// Short label used in experiment output.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SchemeKind::UnencryptedDcw => "NoEncr-DCW",
            SchemeKind::UnencryptedFnw => "NoEncr-FNW",
            SchemeKind::EncryptedDcw => "Encr-DCW",
            SchemeKind::EncryptedFnw => "Encr-FNW",
            SchemeKind::Ble => "BLE",
            SchemeKind::Deuce => "DEUCE",
            SchemeKind::DynDeuce => "DynDEUCE",
            SchemeKind::DeuceFnw => "DEUCE+FNW",
            SchemeKind::BleDeuce => "BLE+DEUCE",
            SchemeKind::AddrPad => "AddrPad",
        }
    }

    /// Whether the scheme encrypts memory contents.
    #[must_use]
    pub fn is_encrypted(self) -> bool {
        !matches!(self, SchemeKind::UnencryptedDcw | SchemeKind::UnencryptedFnw)
    }
}

impl core::fmt::Display for SchemeKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

/// Full scheme configuration: kind plus the DEUCE/FNW parameters.
///
/// # Examples
///
/// ```
/// use deuce_schemes::{SchemeConfig, SchemeKind, WordSize};
/// use deuce_crypto::EpochInterval;
///
/// let config = SchemeConfig::new(SchemeKind::Deuce)
///     .with_word_size(WordSize::Bytes4)
///     .with_epoch(EpochInterval::new(16)?);
/// assert_eq!(config.metadata_bits(), 16);
/// # Ok::<(), deuce_crypto::InvalidEpochInterval>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchemeConfig {
    /// Which scheme to run.
    pub kind: SchemeKind,
    /// DEUCE tracking granularity (default: 2 bytes).
    pub word_size: WordSize,
    /// DEUCE epoch interval (default: 32 writes).
    pub epoch: EpochInterval,
    /// FNW segment width in bits (default: 16, i.e. 2-byte granularity
    /// with one flip bit per 16 data bits).
    pub fnw_segment_bits: u32,
    /// Line-counter width in bits (default: 28; BLE uses this per block).
    pub counter_bits: u32,
}

impl SchemeConfig {
    /// Creates the default (paper Table 1 / §3.1) configuration for a
    /// scheme: 2-byte words, epoch 32, 16-bit FNW segments, 28-bit
    /// counters.
    #[must_use]
    pub fn new(kind: SchemeKind) -> Self {
        Self {
            kind,
            word_size: WordSize::default(),
            epoch: EpochInterval::DEFAULT,
            fnw_segment_bits: 16,
            counter_bits: 28,
        }
    }

    /// Sets the DEUCE word size.
    #[must_use]
    pub fn with_word_size(mut self, word_size: WordSize) -> Self {
        self.word_size = word_size;
        self
    }

    /// Sets the DEUCE epoch interval.
    #[must_use]
    pub fn with_epoch(mut self, epoch: EpochInterval) -> Self {
        self.epoch = epoch;
        self
    }

    /// Per-line metadata bits the scheme stores (Table 3), excluding
    /// counters.
    #[must_use]
    pub fn metadata_bits(&self) -> u32 {
        let fnw_bits = (deuce_crypto::LINE_BITS as u32) / self.fnw_segment_bits;
        match self.kind {
            SchemeKind::UnencryptedDcw
            | SchemeKind::EncryptedDcw
            | SchemeKind::Ble
            | SchemeKind::AddrPad => 0,
            SchemeKind::UnencryptedFnw | SchemeKind::EncryptedFnw => fnw_bits,
            SchemeKind::Deuce | SchemeKind::BleDeuce => self.word_size.tracking_bits(),
            SchemeKind::DynDeuce => self.word_size.tracking_bits() + 1,
            SchemeKind::DeuceFnw => self.word_size.tracking_bits() + fnw_bits,
        }
    }

    /// Per-line counter storage bits (28 for line-counter schemes, 4×28
    /// for BLE variants, 0 for unencrypted memory).
    #[must_use]
    pub fn counter_storage_bits(&self) -> u32 {
        match self.kind {
            SchemeKind::UnencryptedDcw | SchemeKind::UnencryptedFnw | SchemeKind::AddrPad => 0,
            SchemeKind::Ble | SchemeKind::BleDeuce => self.counter_bits * 4,
            _ => self.counter_bits,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_sizes() {
        assert_eq!(WordSize::Bytes1.tracking_bits(), 64);
        assert_eq!(WordSize::Bytes2.tracking_bits(), 32);
        assert_eq!(WordSize::Bytes4.tracking_bits(), 16);
        assert_eq!(WordSize::Bytes8.tracking_bits(), 8);
        assert_eq!(WordSize::from_bytes(2), Ok(WordSize::Bytes2));
        assert_eq!(WordSize::from_bytes(3), Err(InvalidWordSize(3)));
    }

    #[test]
    fn table3_metadata_overheads() {
        // Table 3: FNW 32, DEUCE 32, DynDEUCE 33, DEUCE+FNW 64 bits/line.
        assert_eq!(SchemeConfig::new(SchemeKind::EncryptedFnw).metadata_bits(), 32);
        assert_eq!(SchemeConfig::new(SchemeKind::Deuce).metadata_bits(), 32);
        assert_eq!(SchemeConfig::new(SchemeKind::DynDeuce).metadata_bits(), 33);
        assert_eq!(SchemeConfig::new(SchemeKind::DeuceFnw).metadata_bits(), 64);
        assert_eq!(SchemeConfig::new(SchemeKind::EncryptedDcw).metadata_bits(), 0);
    }

    #[test]
    fn counter_storage() {
        assert_eq!(SchemeConfig::new(SchemeKind::UnencryptedDcw).counter_storage_bits(), 0);
        assert_eq!(SchemeConfig::new(SchemeKind::Deuce).counter_storage_bits(), 28);
        assert_eq!(SchemeConfig::new(SchemeKind::Ble).counter_storage_bits(), 112);
    }

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::HashSet<_> =
            SchemeKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), SchemeKind::ALL.len());
    }

    #[test]
    fn encryption_flags() {
        assert!(!SchemeKind::UnencryptedDcw.is_encrypted());
        assert!(!SchemeKind::UnencryptedFnw.is_encrypted());
        assert!(SchemeKind::Deuce.is_encrypted());
        assert!(SchemeKind::Ble.is_encrypted());
    }
}

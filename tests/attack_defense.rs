//! End-to-end endurance-attack scenarios (§7.3): malicious write
//! streams against the wear-leveling and detection defenses.

use deuce::schemes::SchemeKind;
use deuce::sim::{HwlMode, LifetimePolicy, SimConfig, Simulator, WearConfig};
use deuce::trace::{AttackKind, AttackTrace, Benchmark, TraceConfig};
use deuce::wear::{AttackDetector, WriteVerdict};

/// A single-bit hammering attack devastates un-leveled intra-line wear;
/// HWL restores most of the lifetime.
#[test]
fn hwl_defeats_single_bit_hammering() {
    let trace = AttackTrace::new(AttackKind::SingleBit).writes(20_000).generate();

    let lifetime = |hwl: Option<HwlMode>| {
        let wear = match hwl {
            Some(mode) => WearConfig::with_hwl(4, mode).gap_interval(2),
            None => WearConfig::vertical_only(4),
        };
        Simulator::new(SimConfig::new(SchemeKind::UnencryptedDcw).with_wear(wear))
            .run_trace(&trace)
            .lifetime(LifetimePolicy::Raw)
            .expect("wear on")
    };

    let unleveled = lifetime(None);
    let leveled = lifetime(Some(HwlMode::Hashed));
    // Unleveled: every write hits the same cell -> lifetime metric ~1.
    assert!(unleveled < 1.5, "unleveled {unleveled}");
    // HWL spreads the bit across the 512-cell ring.
    assert!(
        leveled > unleveled * 50.0,
        "HWL should spread hammering: {leveled} vs {unleveled}"
    );
}

/// The detector flags hammering attacks within one window, including
/// the small-set evasion, while staying quiet on every benign SPEC
/// profile.
#[test]
fn detector_separates_attacks_from_benchmarks() {
    let run = |trace: &deuce::trace::Trace| {
        let mut detector = AttackDetector::new(2_000, 0.15);
        let mut alarms = 0u64;
        for event in trace.writes() {
            if detector.observe(event.line.value()) != WriteVerdict::Benign {
                alarms += 1;
            }
        }
        alarms
    };

    for kind in [
        AttackKind::SingleLine,
        AttackKind::SmallSet { lines: 4 },
        AttackKind::SingleBit,
    ] {
        let trace = AttackTrace::new(kind).writes(5_000).generate();
        assert!(run(&trace) > 0, "{kind:?} must be detected");
    }

    // Camouflaged attack: 4 benign writes per attack write still leaves
    // the target at ~20% of traffic — above the threshold, while every
    // benign benchmark's hottest line stays below it.
    let camo = AttackTrace::new(AttackKind::SingleLine)
        .writes(3_000)
        .camouflage(4)
        .seed(1)
        .generate();
    assert!(run(&camo) > 0, "camouflaged attack still crosses the threshold");

    for benchmark in Benchmark::ALL {
        let trace = TraceConfig::new(benchmark)
            .lines(256)
            .writes(6_000)
            .seed(11)
            .generate();
        assert_eq!(run(&trace), 0, "{benchmark} must not trip the detector");
    }
}

/// Footnote 2's point: a pattern that *chases the algebraic rotation*
/// (shifting its hot bit in lockstep with Start') keeps hammering the
/// same physical cell; the hashed rotation decorrelates and defeats it.
#[test]
fn hashed_rotation_resists_rotation_chasing() {
    use deuce::nvm::{CellArray, LineImage, MetaBits};
    use deuce::wear::{HorizontalWearLeveler, StartGap};

    let bits = 512u32;
    let writes = 6_000usize;

    let attack_run = |mode: HwlMode| {
        let mut sg = StartGap::new(4, 1);
        let hwl = HorizontalWearLeveler::new(mode, bits);
        // The adversary knows the algorithm and the public Start-Gap
        // registers, so it can compute the *algebraic* rotation exactly;
        // the hashed variant's per-line mixing is what it cannot know.
        let oracle = HorizontalWearLeveler::new(HwlMode::Algebraic, bits);
        let mut cells = CellArray::new(1, bits);
        let mut previous = LineImage::new([0u8; 64], MetaBits::new(0));
        for _ in 0..writes {
            // Place the flipped bit so that (bit + predicted) % bits == 0.
            let predicted = oracle.rotation(&sg, 0, 0);
            let target_bit = (bits - predicted) % bits;
            let mut data = [0u8; 64];
            // Toggle relative to previous image so exactly one cell flips.
            data.copy_from_slice(previous.data());
            data[(target_bit / 8) as usize] ^= 1 << (target_bit % 8);
            let next = LineImage::new(data, MetaBits::new(0));
            let rotation = hwl.rotation(&sg, 0, 0);
            cells.record_write(0, &previous, &next, rotation);
            previous = next;
            let _ = sg.record_write();
        }
        cells.wear_summary().max_cell_writes
    };

    let algebraic_max = attack_run(HwlMode::Algebraic);
    let hashed_max = attack_run(HwlMode::Hashed);
    // Against the algebraic rotation the prediction is perfect: every
    // write lands in physical cell 0.
    assert_eq!(algebraic_max, writes as u64, "algebraic rotation is chaseable");
    // The hash breaks the prediction; wear spreads by orders of magnitude.
    assert!(
        hashed_max < writes as u64 / 10,
        "hashed rotation should spread the attack: max {hashed_max}"
    );
}

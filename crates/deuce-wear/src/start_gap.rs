//! Start-Gap vertical wear leveling \[20\].

/// A gap movement: the contents of physical frame `from` must be copied
/// to physical frame `to` (the old gap), and `from` becomes the new gap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GapMove {
    /// Frame whose contents move.
    pub from: usize,
    /// Frame that receives them (the previous gap position).
    pub to: usize,
    /// True when this move completed a full sweep (Start incremented).
    pub sweep_completed: bool,
}

/// The Start-Gap wear leveler: two global registers and one spare frame.
///
/// A memory of `n` logical lines uses `n + 1` physical frames; the extra
/// frame is the *gap*. Every `gap_interval` line writes, the gap moves by
/// one (copying its neighbour), slowly rotating the whole memory through
/// the physical frames. After the gap traverses all frames, `start`
/// advances: every line has shifted by one frame.
///
/// Mapping (from the Start-Gap paper): `pa = (la + start) mod n`, then
/// `pa += 1` if `pa >= gap`.
///
/// # Examples
///
/// ```
/// use deuce_wear::StartGap;
///
/// let mut sg = StartGap::new(8, 100);
/// let pa = sg.remap(3);
/// assert!(pa < 9); // 8 lines live in 9 frames
/// ```
#[derive(Debug, Clone)]
pub struct StartGap {
    lines: usize,
    start: usize,
    gap: usize,
    gap_interval: u32,
    writes_since_move: u32,
    /// Completed sweeps (equals the unwrapped Start value; HWL's rotation
    /// is derived from this).
    sweeps: u64,
}

impl StartGap {
    /// Creates a leveler for `lines` logical lines, moving the gap every
    /// `gap_interval` writes (ψ = 100 in the Start-Gap paper; smaller
    /// values level faster at higher overhead).
    ///
    /// # Panics
    ///
    /// Panics if `lines < 2` or `gap_interval == 0`.
    #[must_use]
    pub fn new(lines: usize, gap_interval: u32) -> Self {
        assert!(lines >= 2, "Start-Gap needs at least 2 lines");
        assert!(gap_interval > 0, "gap interval must be positive");
        Self {
            lines,
            start: 0,
            gap: lines, // gap starts at the spare frame past the end
            gap_interval,
            writes_since_move: 0,
            sweeps: 0,
        }
    }

    /// Number of logical lines.
    #[must_use]
    pub fn lines(&self) -> usize {
        self.lines
    }

    /// Physical frames (lines + 1 spare).
    #[must_use]
    pub fn frames(&self) -> usize {
        self.lines + 1
    }

    /// Current Start register (wraps at `lines`).
    #[must_use]
    pub fn start(&self) -> usize {
        self.start
    }

    /// Current gap frame.
    #[must_use]
    pub fn gap(&self) -> usize {
        self.gap
    }

    /// Total completed sweeps (unwrapped Start).
    #[must_use]
    pub fn sweeps(&self) -> u64 {
        self.sweeps
    }

    /// Maps a logical line to its physical frame.
    ///
    /// # Panics
    ///
    /// Panics if `logical >= lines`.
    #[must_use]
    pub fn remap(&self, logical: usize) -> usize {
        assert!(logical < self.lines, "logical line {logical} out of range");
        let pa = (logical + self.start) % self.lines;
        if pa >= self.gap {
            pa + 1
        } else {
            pa
        }
    }

    /// Whether the gap has already swept past this logical line in the
    /// current rotation — such lines have effectively shifted by
    /// `start + 1`, which is what HWL's `Start'` captures (§5.3).
    #[must_use]
    pub fn gap_passed(&self, logical: usize) -> bool {
        let pa = (logical + self.start) % self.lines;
        pa >= self.gap
    }

    /// Records one line write; every `gap_interval` writes the gap moves.
    /// Returns the resulting move, if any, so the caller can copy frame
    /// contents (and apply the HWL re-rotation).
    pub fn record_write(&mut self) -> Option<GapMove> {
        self.writes_since_move += 1;
        if self.writes_since_move < self.gap_interval {
            return None;
        }
        self.writes_since_move = 0;
        Some(self.move_gap())
    }

    fn move_gap(&mut self) -> GapMove {
        if self.gap == 0 {
            // Wrap: the gap returns to the top and Start advances.
            self.gap = self.lines;
            self.start = (self.start + 1) % self.lines;
            self.sweeps += 1;
            GapMove {
                from: self.lines,
                to: 0,
                sweep_completed: true,
            }
        } else {
            let mv = GapMove {
                from: self.gap - 1,
                to: self.gap,
                sweep_completed: false,
            };
            self.gap -= 1;
            mv
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn mapping_is_a_bijection_at_all_times() {
        let mut sg = StartGap::new(8, 1);
        for step in 0..200 {
            let mapped: HashSet<usize> = (0..8).map(|la| sg.remap(la)).collect();
            assert_eq!(mapped.len(), 8, "collision at step {step}");
            assert!(mapped.iter().all(|&pa| pa < 9));
            assert!(
                !mapped.contains(&sg.gap()),
                "line mapped onto the gap at step {step}"
            );
            let _ = sg.record_write();
        }
    }

    #[test]
    fn gap_moves_every_interval() {
        let mut sg = StartGap::new(4, 3);
        assert!(sg.record_write().is_none());
        assert!(sg.record_write().is_none());
        let mv = sg.record_write().expect("3rd write moves the gap");
        assert_eq!(mv, GapMove { from: 3, to: 4, sweep_completed: false });
        assert_eq!(sg.gap(), 3);
    }

    #[test]
    fn full_sweep_increments_start() {
        let lines = 4;
        let mut sg = StartGap::new(lines, 1);
        let mut sweeps = 0;
        for _ in 0..(lines + 1) * 3 {
            if let Some(mv) = sg.record_write() {
                if mv.sweep_completed {
                    sweeps += 1;
                }
            }
        }
        assert_eq!(sg.sweeps(), sweeps);
        assert_eq!(sweeps, 3);
        assert_eq!(sg.start(), 3);
    }

    #[test]
    fn lines_rotate_through_all_frames() {
        // After enough sweeps, a given logical line must have visited
        // every physical frame (that is the point of vertical WL).
        let lines = 6;
        let mut sg = StartGap::new(lines, 1);
        let mut visited: HashSet<usize> = HashSet::new();
        for _ in 0..(lines + 1) * lines * 2 {
            visited.insert(sg.remap(2));
            let _ = sg.record_write();
        }
        assert_eq!(visited.len(), sg.frames());
    }

    #[test]
    fn gap_passed_matches_mapping_shift() {
        let mut sg = StartGap::new(8, 1);
        for _ in 0..30 {
            for la in 0..8 {
                let pa = sg.remap(la);
                // If the gap passed, the line sits one frame further on.
                let base = (la + sg.start()) % 8;
                assert_eq!(sg.gap_passed(la), pa == base + 1);
            }
            let _ = sg.record_write();
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn remap_bounds_checked() {
        let sg = StartGap::new(4, 1);
        let _ = sg.remap(4);
    }
}

//! Out-of-core store probe: arena vs page-file resident footprint.
//!
//! Usage: `store_bench <arena|paged> <space> <touched> <writes> [resident_pages] [page_file]`
//!
//! Streams a synthetic sparse workload — `touched` distinct lines
//! scattered uniformly across a `space`-line address space (a billion
//! lines and beyond) — into one DEUCE simulation and prints a single
//! JSON object on stdout. The `arena` mode keeps every touched line
//! resident in RAM; the `paged` mode routes the store through
//! `FilePageBackend` with a fixed `resident_pages` budget, so the
//! store's resident bytes stay flat no matter how many lines the
//! stream touches. Run each mode in its own process: peak resident
//! memory is read from `VmHWM` in `/proc/self/status`.
//!
//! The JSON includes the flip counters and the simulated-time bit
//! pattern so the caller can assert the two modes are bit-identical
//! (see `scripts/bench_store.sh`).

use deuce::rng::{DeuceRng, Rng};
use deuce::schemes::{AnyScheme, LineStore, SchemeConfig, SchemeKind};
use deuce::sim::{FileStoreConfig, SimConfig, SimResult, Simulator, StoreBackend};
use deuce::trace::{LineAddr, TraceEvent, TraceIoError, WriteSource, LINE_BYTES};
use std::time::Instant;

/// Per-process peak resident set in bytes (`VmHWM`), or 0 off-Linux.
fn peak_resident_bytes() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

/// A sparse synthetic workload: `writes` writebacks over `touched`
/// distinct lines scattered across a `space`-line address space.
///
/// The touched set is a fixed-odd-multiplier bijection of the ranks
/// `0..touched` into `0..space` (`space` must be a power of two), so
/// the addresses are spread over the whole space — consecutive ranks
/// land pages apart — while the set itself stays exactly `touched`
/// lines. Line data is re-rolled per write from a seeded RNG, so the
/// stream is deterministic end to end.
struct SparseSource {
    rng: DeuceRng,
    space: u64,
    touched: u64,
    writes: u64,
    emitted: u64,
}

impl SparseSource {
    /// Golden-ratio odd constant: multiplication mod 2^k is bijective.
    const SCATTER: u64 = 0x9e37_79b9_7f4a_7c15;

    fn new(space: u64, touched: u64, writes: u64, seed: u64) -> Self {
        assert!(space.is_power_of_two(), "space must be a power of two");
        assert!(touched <= space, "cannot touch more lines than the space holds");
        Self {
            rng: DeuceRng::seed_from_u64(seed),
            space,
            touched,
            writes,
            emitted: 0,
        }
    }

    fn address(&self, rank: u64) -> LineAddr {
        LineAddr::new(rank.wrapping_mul(Self::SCATTER) & (self.space - 1))
    }
}

impl WriteSource for SparseSource {
    fn cores(&self) -> usize {
        1
    }

    fn next_event(&mut self) -> Result<Option<TraceEvent>, TraceIoError> {
        if self.emitted == self.writes {
            return Ok(None);
        }
        self.emitted += 1;
        let rank = self.rng.gen_range(0..self.touched);
        let mut data = [0u8; LINE_BYTES];
        self.rng.fill(&mut data);
        Ok(Some(TraceEvent::write(0, self.emitted * 1000, self.address(rank), data)))
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.writes)
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mode = args.next().unwrap_or_default();
    let space: u64 = args.next().and_then(|v| v.parse().ok()).unwrap_or(0);
    let touched: u64 = args.next().and_then(|v| v.parse().ok()).unwrap_or(0);
    let writes: u64 = args.next().and_then(|v| v.parse().ok()).unwrap_or(0);
    let resident_pages: usize = args.next().and_then(|v| v.parse().ok()).unwrap_or(4096);
    let page_file = args.next().unwrap_or_else(|| "store_bench.pages".into());
    if space == 0 || touched == 0 || writes == 0 || !matches!(mode.as_str(), "arena" | "paged") {
        eprintln!(
            "usage: store_bench <arena|paged> <space> <touched> <writes> \
             [resident_pages] [page_file]"
        );
        std::process::exit(2);
    }

    let kind = SchemeKind::Deuce;
    let per_line = LineStore::new(AnyScheme::from_config(&SchemeConfig::new(kind))).per_line_bytes();
    let budget_bytes = resident_pages as u64 * 64 * per_line;
    let config = match mode.as_str() {
        "paged" => SimConfig::new(kind).with_store_backend(StoreBackend::File(
            FileStoreConfig::new(&page_file, resident_pages),
        )),
        _ => SimConfig::new(kind),
    };

    let simulator = Simulator::new(config);
    let start = Instant::now();
    let mut source = SparseSource::new(space, touched, writes, 11);
    let result: SimResult = match simulator.run_source(&mut source) {
        Ok(result) => result,
        Err(e) => {
            eprintln!("store_bench: {e}");
            std::process::exit(1);
        }
    };
    let elapsed = start.elapsed().as_secs_f64();
    let store = result.store.unwrap_or_default();

    println!(
        "{{\"mode\":\"{}\",\"space_lines\":{},\"touched_lines\":{},\"writes_requested\":{},\
         \"writes_counted\":{},\"reads\":{},\"data_flips\":{},\"meta_flips\":{},\
         \"exec_time_ns_bits\":\"{:016x}\",\"line_store_bytes\":{},\
         \"store_page_faults\":{},\"store_page_evictions\":{},\"store_pages_flushed\":{},\
         \"store_resident_bytes\":{},\"store_peak_resident_bytes\":{},\
         \"resident_budget_bytes\":{},\"elapsed_s\":{:.3},\"writes_per_sec\":{:.0},\
         \"peak_resident_bytes\":{}}}",
        mode,
        space,
        touched,
        writes,
        result.writes,
        result.reads,
        result.data_flips,
        result.meta_flips,
        result.exec_time_ns.to_bits(),
        result.line_store_bytes,
        store.page_faults,
        store.page_evictions,
        store.pages_flushed,
        store.resident_bytes,
        store.peak_resident_bytes,
        budget_bytes,
        elapsed,
        result.writes as f64 / elapsed,
        peak_resident_bytes(),
    );
}

//! Per-bit-position write counting for endurance and wear studies, plus
//! online stuck-at fault injection.

use crate::ecp::FailureModel;
use crate::line_image::LineImage;

/// Configuration for online stuck-at fault injection in a [`CellArray`].
///
/// Each physical cell gets a deterministic endurance threshold sampled
/// from [`FailureModel`] (lognormal-ish variation, seeded), multiplied by
/// `endurance_scale`. The write that reaches a cell's threshold fails:
/// the cell becomes permanently stuck at the value it held *before* that
/// write (the failed flip does not take), matching PCM write-verify
/// behavior where a worn-out cell no longer switches.
///
/// `endurance_scale` exists because real endurance (~10^8 writes) makes
/// online wear-out intractable to simulate; scaling it down to e.g.
/// `1e-6` produces deaths within thousands of writes while preserving
/// the *relative* endurance variation across cells.
///
/// # Examples
///
/// ```
/// use deuce_nvm::{FailureModel, StuckAtFaults};
///
/// // Mean endurance scaled from 1e8 down to ~100 writes per cell.
/// let faults = StuckAtFaults::new(FailureModel::PAPER, 1e-6);
/// let t = faults.threshold(0);
/// assert!(t >= 1);
/// // Deterministic in the cell id.
/// assert_eq!(t, faults.threshold(0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StuckAtFaults {
    /// Per-cell endurance distribution, deterministic in `(seed, cell)`.
    pub model: FailureModel,
    /// Multiplier applied to every sampled endurance (use `1.0` for
    /// realistic endurance, tiny values for accelerated-wear runs).
    pub endurance_scale: f64,
}

impl StuckAtFaults {
    /// Creates a fault configuration.
    ///
    /// # Panics
    ///
    /// Panics if `endurance_scale` is not finite and positive.
    #[must_use]
    pub fn new(model: FailureModel, endurance_scale: f64) -> Self {
        assert!(
            endurance_scale.is_finite() && endurance_scale > 0.0,
            "endurance scale must be finite and positive"
        );
        Self {
            model,
            endurance_scale,
        }
    }

    /// The write count at which global cell `cell` dies (its write
    /// numbered `threshold(cell)` is the one that fails), always ≥ 1.
    #[must_use]
    pub fn threshold(&self, cell: u64) -> u64 {
        let scaled = (self.model.endurance_of(cell) * self.endurance_scale).ceil();
        (scaled as u64).max(1)
    }
}

/// One permanently failed cell: its physical bit position within the
/// line and the value it is stuck at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeadCell {
    /// Physical cell position within the line (after HWL rotation).
    pub physical_bit: u32,
    /// The value the cell is frozen at (its last successfully stored
    /// value).
    pub stuck_value: bool,
}

/// Per-line fault bookkeeping, present only when injection is enabled.
#[derive(Debug, Clone)]
struct FaultState {
    config: StuckAtFaults,
    /// Dead cells per line, in death order.
    dead: Vec<Vec<DeadCell>>,
}

/// Per-cell write counters for a region of PCM lines.
///
/// Every line has `bits_per_line` cells (512 data bits plus metadata).
/// [`CellArray::record_write`] applies Data Comparison Write semantics:
/// only the bits that differ between the old and new image are counted as
/// written. A rotation offset (from Horizontal Wear Leveling) maps logical
/// bit positions to physical cells.
///
/// This feeds Fig. 12 (per-bit-position write skew) and Fig. 14
/// (lifetime).
///
/// # Examples
///
/// ```
/// use deuce_nvm::{CellArray, LineImage, MetaBits};
///
/// let mut cells = CellArray::new(4, 544);
/// let old = LineImage::zeroed(32);
/// let mut new = old;
/// new.data_mut()[0] = 1;
/// cells.record_write(0, &old, &new, 0);
/// assert_eq!(cells.writes_recorded(), 1);
/// assert_eq!(cells.count(0, 0), 1);
/// ```
#[derive(Debug, Clone)]
pub struct CellArray {
    counts: Vec<u64>,
    lines: usize,
    bits_per_line: u32,
    writes: u64,
    faults: Option<FaultState>,
}

impl CellArray {
    /// Creates a zeroed cell array for `lines` lines of `bits_per_line`
    /// cells each, with fault injection disabled.
    ///
    /// # Panics
    ///
    /// Panics if `lines` or `bits_per_line` is zero.
    #[must_use]
    pub fn new(lines: usize, bits_per_line: u32) -> Self {
        assert!(lines > 0, "cell array needs at least one line");
        assert!(bits_per_line > 0, "cell array needs at least one bit per line");
        Self {
            counts: vec![0; lines * bits_per_line as usize],
            lines,
            bits_per_line,
            writes: 0,
            faults: None,
        }
    }

    /// Creates a cell array with online stuck-at fault injection: every
    /// cell carries a deterministic endurance threshold and
    /// [`record_write`](Self::record_write) reports the cells each write
    /// kills.
    ///
    /// # Panics
    ///
    /// Panics if `lines` or `bits_per_line` is zero.
    ///
    /// # Examples
    ///
    /// ```
    /// use deuce_nvm::{CellArray, FailureModel, LineImage, StuckAtFaults};
    ///
    /// // Scale endurance down so every cell dies on its first write.
    /// let faults = StuckAtFaults::new(FailureModel::PAPER, 1e-10);
    /// let mut cells = CellArray::with_faults(1, 544, faults);
    /// let old = LineImage::zeroed(32);
    /// let mut new = old;
    /// new.data_mut()[0] = 1; // flip bit 0
    /// let deaths = cells.record_write(0, &old, &new, 0);
    /// assert_eq!(deaths, vec![0]);
    /// // The cell is stuck at its pre-write value, so the intended
    /// // image reads back with bit 0 still clear.
    /// assert!(!cells.faulted_image(0, &new, 0).bit(0));
    /// ```
    #[must_use]
    pub fn with_faults(lines: usize, bits_per_line: u32, faults: StuckAtFaults) -> Self {
        let mut array = Self::new(lines, bits_per_line);
        array.faults = Some(FaultState {
            config: faults,
            dead: vec![Vec::new(); lines],
        });
        array
    }

    /// Number of lines tracked.
    #[must_use]
    pub fn lines(&self) -> usize {
        self.lines
    }

    /// Cells per line.
    #[must_use]
    pub fn bits_per_line(&self) -> u32 {
        self.bits_per_line
    }

    /// Total line writes recorded.
    #[must_use]
    pub fn writes_recorded(&self) -> u64 {
        self.writes
    }

    /// Records a DCW write of `new` over `old` to `line`, with the bits
    /// rotated left by `rotation` positions (HWL): logical bit `i` lands in
    /// physical cell `(i + rotation) % bits_per_line`.
    ///
    /// Returns the physical cells this write killed (in increasing
    /// linear order), which is always empty unless the array was built
    /// with [`with_faults`](Self::with_faults). A cell dies on the write
    /// that reaches its endurance threshold; the failed flip does not
    /// take, so the cell stays stuck at the value `old` held there. Write
    /// counts keep accumulating past death so wear statistics are
    /// identical with and without fault injection.
    ///
    /// # Panics
    ///
    /// Panics if `line` is out of range or the images' total bits don't
    /// match `bits_per_line`.
    pub fn record_write(
        &mut self,
        line: usize,
        old: &LineImage,
        new: &LineImage,
        rotation: u32,
    ) -> Vec<u32> {
        assert!(line < self.lines, "line {line} out of range");
        assert_eq!(
            old.total_bits(),
            self.bits_per_line,
            "image size does not match cell array"
        );
        let base = line * self.bits_per_line as usize;
        let mut deaths = Vec::new();
        // Word-level XOR: untouched 64-bit words are skipped entirely;
        // only set bits of changed words are walked.
        for (word_base, mut word) in old.changed_words(new) {
            while word != 0 {
                let bit = word_base + word.trailing_zeros();
                word &= word - 1;
                let physical = (bit + rotation) % self.bits_per_line;
                let cell = base + physical as usize;
                self.counts[cell] += 1;
                if let Some(faults) = &mut self.faults {
                    // Counts only ever increase, so the threshold is
                    // crossed exactly once per cell.
                    if self.counts[cell] == faults.config.threshold(cell as u64) {
                        faults.dead[line].push(DeadCell {
                            physical_bit: physical,
                            stuck_value: old.bit(bit),
                        });
                        deaths.push(physical);
                    }
                }
            }
        }
        self.writes += 1;
        deaths
    }

    /// Whether this array was built with online fault injection.
    #[must_use]
    pub fn faults_enabled(&self) -> bool {
        self.faults.is_some()
    }

    /// The cells of `line` that have failed so far, in death order.
    /// Empty when fault injection is disabled.
    ///
    /// # Panics
    ///
    /// Panics if `line` is out of range.
    #[must_use]
    pub fn dead_cells(&self, line: usize) -> &[DeadCell] {
        assert!(line < self.lines, "line {line} out of range");
        self.faults.as_ref().map_or(&[], |f| &f.dead[line])
    }

    /// Total dead cells across all lines.
    #[must_use]
    pub fn dead_cell_count(&self) -> u64 {
        self.faults
            .as_ref()
            .map_or(0, |f| f.dead.iter().map(|d| d.len() as u64).sum())
    }

    /// What a read of `line` actually returns: `intended` with every
    /// dead cell overridden by its stuck value. `rotation` must be the
    /// line's current HWL rotation, so stuck *physical* cells land on
    /// the right *logical* positions.
    ///
    /// # Panics
    ///
    /// Panics if `line` is out of range or `intended` doesn't match the
    /// array's bits-per-line.
    #[must_use]
    pub fn faulted_image(&self, line: usize, intended: &LineImage, rotation: u32) -> LineImage {
        assert!(line < self.lines, "line {line} out of range");
        assert_eq!(
            intended.total_bits(),
            self.bits_per_line,
            "image size does not match cell array"
        );
        let mut image = *intended;
        for dead in self.dead_cells(line) {
            let logical = (dead.physical_bit + self.bits_per_line - rotation % self.bits_per_line)
                % self.bits_per_line;
            image.set_bit(logical, dead.stuck_value);
        }
        image
    }

    /// Write count of one physical cell.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[must_use]
    pub fn count(&self, line: usize, bit: u32) -> u64 {
        assert!(line < self.lines && bit < self.bits_per_line);
        self.counts[line * self.bits_per_line as usize + bit as usize]
    }

    /// Per-bit-position totals summed across all lines (the Fig. 12
    /// series).
    #[must_use]
    pub fn position_totals(&self) -> Vec<u64> {
        let mut totals = vec![0u64; self.bits_per_line as usize];
        for line in 0..self.lines {
            let base = line * self.bits_per_line as usize;
            for (pos, total) in totals.iter_mut().enumerate() {
                *total += self.counts[base + pos];
            }
        }
        totals
    }

    /// Summary statistics used by the lifetime model.
    #[must_use]
    pub fn wear_summary(&self) -> WearSummary {
        let max = self.counts.iter().copied().max().unwrap_or(0);
        let total: u64 = self.counts.iter().sum();
        let avg = total as f64 / self.counts.len() as f64;
        WearSummary {
            max_cell_writes: max,
            total_bit_writes: total,
            avg_cell_writes: avg,
            line_writes: self.writes,
            cells: self.counts.len() as u64,
        }
    }
}

/// Aggregate wear statistics over a [`CellArray`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WearSummary {
    /// Writes to the most-written cell (determines lifetime: the first
    /// cell to reach the endurance limit kills the line).
    pub max_cell_writes: u64,
    /// Total bit writes across all cells.
    pub total_bit_writes: u64,
    /// Mean writes per cell.
    pub avg_cell_writes: f64,
    /// Line-level writes recorded.
    pub line_writes: u64,
    /// Number of cells tracked.
    pub cells: u64,
}

impl WearSummary {
    /// Ratio of the most-written cell to the average (Fig. 12's metric;
    /// 1.0 = perfectly uniform).
    #[must_use]
    pub fn max_over_avg(&self) -> f64 {
        if self.avg_cell_writes == 0.0 {
            0.0
        } else {
            self.max_cell_writes as f64 / self.avg_cell_writes
        }
    }

    /// Relative lifetime under an endurance limit: proportional to
    /// `1 / max_cell_writes` per line write. Normalizing two summaries'
    /// values against each other reproduces Fig. 14.
    #[must_use]
    pub fn lifetime_metric(&self) -> f64 {
        if self.max_cell_writes == 0 {
            f64::INFINITY
        } else {
            self.line_writes as f64 / self.max_cell_writes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LineImage;

    fn image_with_bits(bits: &[u32]) -> LineImage {
        let mut img = LineImage::zeroed(32);
        for &b in bits {
            if b < 512 {
                img.data_mut()[(b / 8) as usize] |= 1 << (b % 8);
            } else {
                img.meta_mut().set(b - 512, true);
            }
        }
        img
    }

    #[test]
    fn records_only_changed_bits() {
        let mut cells = CellArray::new(2, 544);
        let old = LineImage::zeroed(32);
        let new = image_with_bits(&[0, 100, 512]);
        cells.record_write(1, &old, &new, 0);
        assert_eq!(cells.count(1, 0), 1);
        assert_eq!(cells.count(1, 100), 1);
        assert_eq!(cells.count(1, 512), 1);
        assert_eq!(cells.count(1, 1), 0);
        assert_eq!(cells.count(0, 0), 0, "other lines untouched");
    }

    #[test]
    fn rotation_remaps_positions() {
        let mut cells = CellArray::new(1, 544);
        let old = LineImage::zeroed(32);
        let new = image_with_bits(&[540]);
        cells.record_write(0, &old, &new, 10); // 540 + 10 = 550 % 544 = 6
        assert_eq!(cells.count(0, 6), 1);
        assert_eq!(cells.count(0, 540), 0);
    }

    #[test]
    fn position_totals_sum_lines() {
        let mut cells = CellArray::new(3, 544);
        let old = LineImage::zeroed(32);
        let new = image_with_bits(&[7]);
        for line in 0..3 {
            cells.record_write(line, &old, &new, 0);
        }
        let totals = cells.position_totals();
        assert_eq!(totals[7], 3);
        assert_eq!(totals.iter().sum::<u64>(), 3);
    }

    #[test]
    fn wear_summary_statistics() {
        let mut cells = CellArray::new(1, 544);
        let old = LineImage::zeroed(32);
        let new = image_with_bits(&[0, 1]);
        cells.record_write(0, &old, &new, 0);
        cells.record_write(0, &new, &image_with_bits(&[1]), 0); // flips bit 0 back
        let s = cells.wear_summary();
        assert_eq!(s.max_cell_writes, 2); // bit 0 written twice
        assert_eq!(s.total_bit_writes, 3);
        assert_eq!(s.line_writes, 2);
        assert!(s.max_over_avg() > 1.0);
        assert!((s.lifetime_metric() - 1.0).abs() < f64::EPSILON);
    }

    /// Differential check: the word-level XOR path must count exactly
    /// the cells the bit-at-a-time `changed_bits` loop would, under
    /// every rotation.
    #[test]
    fn word_level_path_matches_bit_loop() {
        let mut lcg = 0x0dd_b1a5_ed00_d5eeu64;
        let mut next = move || {
            lcg = lcg
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            lcg
        };
        for rotation in [0u32, 1, 13, 543] {
            let mut cells = CellArray::new(1, 544);
            let mut reference = vec![0u64; 544];
            let mut old = LineImage::zeroed(32);
            for _ in 0..10 {
                let mut new = LineImage::zeroed(32);
                for b in new.data_mut().iter_mut() {
                    *b = next() as u8;
                }
                *new.meta_mut() = crate::MetaBits::from_raw(next() & 0xFFFF_FFFF, 32);
                for bit in old.changed_bits(&new) {
                    reference[((bit + rotation) % 544) as usize] += 1;
                }
                cells.record_write(0, &old, &new, rotation);
                old = new;
            }
            for (bit, &want) in reference.iter().enumerate() {
                assert_eq!(cells.count(0, bit as u32), want, "rotation {rotation} bit {bit}");
            }
        }
    }

    #[test]
    fn empty_summary_is_sane() {
        let cells = CellArray::new(1, 10);
        let s = cells.wear_summary();
        assert_eq!(s.max_over_avg(), 0.0);
        assert!(s.lifetime_metric().is_infinite());
    }

    /// A fixed-threshold model: cv = 0 makes every cell's endurance
    /// exactly `mean`, so scale 1.0 gives a threshold of `mean` writes.
    fn fixed_threshold(mean: f64) -> StuckAtFaults {
        StuckAtFaults::new(
            crate::FailureModel {
                mean_endurance: mean,
                cv: 0.0,
                seed: 0,
            },
            1.0,
        )
    }

    #[test]
    fn fault_free_array_reports_nothing() {
        let mut cells = CellArray::new(1, 544);
        assert!(!cells.faults_enabled());
        let deaths = cells.record_write(0, &LineImage::zeroed(32), &image_with_bits(&[0]), 0);
        assert!(deaths.is_empty());
        assert!(cells.dead_cells(0).is_empty());
        assert_eq!(cells.dead_cell_count(), 0);
    }

    #[test]
    fn cell_dies_at_threshold_and_sticks_at_old_value() {
        let mut cells = CellArray::with_faults(1, 544, fixed_threshold(3.0));
        let zero = LineImage::zeroed(32);
        let one = image_with_bits(&[0]);
        // Bit 0 toggles every write: writes 1 and 2 survive...
        assert!(cells.record_write(0, &zero, &one, 0).is_empty());
        assert!(cells.record_write(0, &one, &zero, 0).is_empty());
        // ...write 3 (0 -> 1) reaches the threshold and fails.
        assert_eq!(cells.record_write(0, &zero, &one, 0), vec![0]);
        let dead = cells.dead_cells(0);
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].physical_bit, 0);
        assert!(!dead[0].stuck_value, "stuck at the pre-write value 0");
        // The intended image has bit 0 set; the device returns it clear.
        let seen = cells.faulted_image(0, &one, 0);
        assert!(!seen.bit(0));
        assert_eq!(zero.flips_to(&seen).total(), 0);
        // Further writes keep counting but never re-report the death.
        assert!(cells.record_write(0, &one, &zero, 0).is_empty());
        assert_eq!(cells.count(0, 0), 4);
        assert_eq!(cells.dead_cell_count(), 1);
    }

    #[test]
    fn faulted_image_maps_physical_cells_through_rotation() {
        let mut cells = CellArray::with_faults(1, 544, fixed_threshold(1.0));
        let zero = LineImage::zeroed(32);
        let new = image_with_bits(&[540]);
        // Logical 540 under rotation 10 wears physical cell 6.
        let deaths = cells.record_write(0, &zero, &new, 10);
        assert_eq!(deaths, vec![6]);
        assert_eq!(cells.dead_cells(0)[0].physical_bit, 6);
        // Read back under the same rotation: logical 540 is stuck at 0.
        assert!(!cells.faulted_image(0, &new, 10).bit(540));
        // After the rotation advances, the same physical cell shadows a
        // different logical position: (6 + 544 - 11) % 544 = 539.
        let probe = image_with_bits(&[539]);
        assert!(!cells.faulted_image(0, &probe, 11).bit(539));
    }

    #[test]
    fn wear_statistics_identical_with_and_without_faults() {
        let mut plain = CellArray::new(2, 544);
        let mut faulty = CellArray::with_faults(2, 544, fixed_threshold(2.0));
        let mut lcg = 0x5eed_f00d_u64;
        let mut old = [LineImage::zeroed(32), LineImage::zeroed(32)];
        for step in 0..200 {
            lcg = lcg
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            let line = (step % 2) as usize;
            let mut new = old[line];
            new.data_mut()[(lcg % 64) as usize] ^= (lcg >> 8) as u8;
            plain.record_write(line, &old[line], &new, step % 5);
            faulty.record_write(line, &old[line], &new, step % 5);
            old[line] = new;
        }
        for line in 0..2 {
            for bit in 0..544 {
                assert_eq!(plain.count(line, bit), faulty.count(line, bit));
            }
        }
        assert_eq!(plain.wear_summary(), faulty.wear_summary());
        assert!(faulty.dead_cell_count() > 0, "threshold 2 should kill cells");
    }
}

//! Randomized property tests for the AES implementation, driven by the
//! workspace's seeded [`deuce_rng`] generator (hundreds of cases per
//! property, fully reproducible from the fixed seeds).

use deuce_aes::{Aes, Aes128, Block};
use deuce_rng::{DeuceRng, Rng};

fn popcount_diff(a: &Block, b: &Block) -> u32 {
    a.iter().zip(b).map(|(x, y)| (x ^ y).count_ones()).sum()
}

/// Decryption inverts encryption for every key size and random data.
#[test]
fn roundtrip_all_key_sizes() {
    let mut rng = DeuceRng::seed_from_u64(0xAE5_0001);
    for case in 0..256 {
        let key_bytes: [u8; 32] = rng.gen();
        let pt: [u8; 16] = rng.gen();
        let len = [16usize, 24, 32][case % 3];
        let cipher = Aes::new(&key_bytes[..len]).unwrap();
        let ct = cipher.encrypt_block(&pt);
        assert_eq!(cipher.decrypt_block(&ct), pt, "key len {len}");
    }
}

/// Encryption is injective: distinct plaintexts map to distinct
/// ciphertexts under the same key.
#[test]
fn injective() {
    let mut rng = DeuceRng::seed_from_u64(0xAE5_0002);
    for _ in 0..256 {
        let key: [u8; 16] = rng.gen();
        let a: [u8; 16] = rng.gen();
        let b: [u8; 16] = rng.gen();
        if a == b {
            continue;
        }
        let cipher = Aes128::new(&key);
        assert_ne!(cipher.encrypt_block(&a), cipher.encrypt_block(&b));
    }
}

/// Avalanche effect: flipping one plaintext bit changes a substantial
/// fraction of ciphertext bits. This is the property that makes naive
/// encrypted PCM writes flip ~50% of the bits (DEUCE's motivation), so
/// we pin it down: a single-bit change must flip at least 30 of 128
/// ciphertext bits (the expected value is 64).
#[test]
fn avalanche() {
    let mut rng = DeuceRng::seed_from_u64(0xAE5_0003);
    for _ in 0..256 {
        let key: [u8; 16] = rng.gen();
        let pt: [u8; 16] = rng.gen();
        let bit = rng.gen_range(0usize..128);
        let cipher = Aes128::new(&key);
        let ct = cipher.encrypt_block(&pt);
        let mut flipped = pt;
        flipped[bit / 8] ^= 1 << (bit % 8);
        let ct2 = cipher.encrypt_block(&flipped);
        let diff = popcount_diff(&ct, &ct2);
        assert!(diff >= 30, "only {diff} bits differed");
        assert!(diff <= 98, "{diff} bits differed (suspiciously many)");
    }
}

/// Key avalanche: flipping one key bit changes the ciphertext.
#[test]
fn key_sensitivity() {
    let mut rng = DeuceRng::seed_from_u64(0xAE5_0004);
    for _ in 0..256 {
        let key: [u8; 16] = rng.gen();
        let pt: [u8; 16] = rng.gen();
        let bit = rng.gen_range(0usize..128);
        let cipher = Aes128::new(&key);
        let mut key2 = key;
        key2[bit / 8] ^= 1 << (bit % 8);
        let cipher2 = Aes128::new(&key2);
        let diff = popcount_diff(&cipher.encrypt_block(&pt), &cipher2.encrypt_block(&pt));
        assert!(diff >= 30, "only {diff} bits differed");
    }
}

/// Statistical check across many blocks: mean avalanche is close to 64 bits.
#[test]
fn mean_avalanche_is_near_half() {
    let cipher = Aes128::new(&[0x13u8; 16]);
    let mut total = 0u64;
    let trials = 2000u64;
    for i in 0..trials {
        let mut pt = [0u8; 16];
        pt[..8].copy_from_slice(&i.to_le_bytes());
        let ct = cipher.encrypt_block(&pt);
        let mut pt2 = pt;
        pt2[15] ^= 0x80;
        let ct2 = cipher.encrypt_block(&pt2);
        total += u64::from(popcount_diff(&ct, &ct2));
    }
    let mean = total as f64 / trials as f64;
    assert!((mean - 64.0).abs() < 2.0, "mean avalanche {mean}");
}

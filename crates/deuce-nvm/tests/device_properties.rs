//! Property tests over the PCM device model.

use deuce_nvm::{region_flips, write_slots, CellArray, LineImage, MetaBits, SlotConfig};
use proptest::prelude::*;

fn image(data: [u8; 64], meta_raw: u32) -> LineImage {
    LineImage::new(data, MetaBits::from_raw(u64::from(meta_raw), 32))
}

proptest! {
    /// Region flips partition the changed bits: their sum equals the
    /// total flip count, whatever the images.
    #[test]
    fn region_flips_partition_changes(
        a in any::<[u8; 64]>(),
        b in any::<[u8; 64]>(),
        meta_a in any::<u32>(),
        meta_b in any::<u32>(),
    ) {
        let old = image(a, meta_a);
        let new = image(b, meta_b);
        let regions = region_flips(&old, &new, SlotConfig::PAPER);
        prop_assert_eq!(regions.len(), 4);
        prop_assert_eq!(regions.iter().sum::<u32>(), old.flips_to(&new).total());
    }

    /// Slot count bounds: at least 1, at most the region count, and
    /// monotone under the flips-per-slot budget.
    #[test]
    fn slot_count_bounds(a in any::<[u8; 64]>(), b in any::<[u8; 64]>()) {
        let old = image(a, 0);
        let new = image(b, 0);
        let slots = write_slots(&old, &new, SlotConfig::PAPER);
        prop_assert!(slots >= 1);
        prop_assert!(slots <= 4);
        // A roomier budget can never need more slots.
        let roomy = SlotConfig { region_bits: 128, flips_per_slot: 128 };
        prop_assert!(write_slots(&old, &new, roomy) <= slots);
    }

    /// Flip counting is a metric: symmetric, zero on identity, triangle
    /// inequality.
    #[test]
    fn flip_count_is_a_metric(
        a in any::<[u8; 64]>(),
        b in any::<[u8; 64]>(),
        c in any::<[u8; 64]>(),
    ) {
        let ia = image(a, 0);
        let ib = image(b, 0);
        let ic = image(c, 0);
        prop_assert_eq!(ia.flips_to(&ia).total(), 0);
        prop_assert_eq!(ia.flips_to(&ib).total(), ib.flips_to(&ia).total());
        prop_assert!(
            ia.flips_to(&ic).total() <= ia.flips_to(&ib).total() + ib.flips_to(&ic).total()
        );
    }

    /// Cell-array conservation: recorded bit writes equal the flips of
    /// the writes recorded, under any rotation.
    #[test]
    fn cell_array_conserves_flips(
        writes in prop::collection::vec((any::<[u8; 64]>(), 0u32..544), 1..20),
    ) {
        let mut cells = CellArray::new(1, 544);
        let mut current = image([0u8; 64], 0);
        let mut expected = 0u64;
        for (data, rotation) in writes {
            let next = image(data, 0);
            expected += u64::from(current.flips_to(&next).total());
            cells.record_write(0, &current, &next, rotation);
            current = next;
        }
        prop_assert_eq!(cells.wear_summary().total_bit_writes, expected);
    }

    /// Rotation is a bijection on cells: totals per line are invariant,
    /// only positions move.
    #[test]
    fn rotation_preserves_totals(data in any::<[u8; 64]>(), rotation in 0u32..544) {
        let old = image([0u8; 64], 0);
        let new = image(data, 0);
        let mut rotated = CellArray::new(1, 544);
        rotated.record_write(0, &old, &new, rotation);
        let mut straight = CellArray::new(1, 544);
        straight.record_write(0, &old, &new, 0);
        prop_assert_eq!(
            rotated.wear_summary().total_bit_writes,
            straight.wear_summary().total_bit_writes
        );
        // The rotated histogram is the straight histogram shifted.
        let r = rotated.position_totals();
        let s = straight.position_totals();
        for pos in 0..544usize {
            prop_assert_eq!(r[(pos + rotation as usize) % 544], s[pos]);
        }
    }
}

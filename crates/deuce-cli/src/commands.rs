//! Command implementations.

use std::fs::File;
use std::io::{BufReader, BufWriter, Write};

use deuce_schemes::{SchemeConfig, SchemeKind};
use deuce_sim::{ParallelSweep, SimConfig, SimResult, Simulator};
use deuce_trace::{read_trace, write_trace, Trace, TraceConfig, TraceStats};

use crate::args::{CliError, GenArgs, RunArgs, StatsArgs};

fn generate(gen: &GenArgs) -> Trace {
    TraceConfig::new(gen.benchmark)
        .lines(gen.lines)
        .writes(gen.writes)
        .cores(gen.cores)
        .seed(gen.seed)
        .generate()
}

fn load_or_generate(args: &RunArgs) -> Result<Trace, CliError> {
    match &args.trace_path {
        Some(path) => Ok(read_trace(BufReader::new(File::open(path)?))?),
        None => Ok(generate(&args.gen)),
    }
}

/// `deuce gen`: generate a trace and write it to disk.
///
/// # Errors
///
/// Returns I/O errors from writing the file.
pub fn gen<W: Write>(args: &GenArgs, out: &mut W) -> Result<(), CliError> {
    let trace = generate(args);
    let path = args.output.as_deref().expect("parser enforces -o");
    write_trace(BufWriter::new(File::create(path)?), &trace)?;
    writeln!(
        out,
        "wrote {} events ({} writes, {} reads) to {path}",
        trace.len(),
        trace.write_count(),
        trace.read_count(),
    )?;
    Ok(())
}

/// `deuce stats`: summarize a saved trace.
///
/// # Errors
///
/// Returns I/O or trace-format errors.
pub fn stats<W: Write>(args: &StatsArgs, out: &mut W) -> Result<(), CliError> {
    let trace = read_trace(BufReader::new(File::open(&args.trace_path)?))?;
    let stats = TraceStats::compute(&trace);
    writeln!(out, "events\t{}", trace.len())?;
    writeln!(out, "writes\t{}", trace.write_count())?;
    writeln!(out, "reads\t{}", trace.read_count())?;
    writeln!(out, "mpki\t{:.2}", stats.mpki)?;
    writeln!(out, "wbpki\t{:.2}", stats.wbpki)?;
    writeln!(out, "avg_words_modified\t{:.2}", stats.avg_words_modified)?;
    writeln!(out, "avg_bits_modified\t{:.1}", stats.avg_bits_modified)?;
    writeln!(
        out,
        "dirty_bit_fraction\t{:.1}%",
        stats.dirty_bit_fraction * 100.0
    )?;
    writeln!(out, "unique_lines\t{}", stats.unique_lines)?;
    Ok(())
}

fn report<W: Write>(result: &SimResult, out: &mut W) -> Result<(), CliError> {
    writeln!(out, "writes\t{}", result.writes)?;
    writeln!(out, "reads\t{}", result.reads)?;
    writeln!(out, "flips_per_write\t{:.1}", result.avg_flips_per_write())?;
    writeln!(out, "flip_rate\t{:.1}%", result.flip_rate() * 100.0)?;
    writeln!(out, "slots_per_write\t{:.2}", result.avg_slots_per_write())?;
    writeln!(out, "exec_time_us\t{:.1}", result.exec_time_ns / 1000.0)?;
    writeln!(out, "energy_uj\t{:.2}", result.energy_pj() / 1e6)?;
    writeln!(out, "power_mw\t{:.1}", result.power_mw())?;
    writeln!(out, "metadata_bits_per_line\t{}", result.metadata_bits)?;
    Ok(())
}

/// `deuce run`: simulate one scheme over the trace.
///
/// # Errors
///
/// Returns I/O or trace-format errors.
pub fn run<W: Write>(args: &RunArgs, out: &mut W) -> Result<(), CliError> {
    let trace = load_or_generate(args)?;
    let scheme = args.scheme.expect("parser enforces --scheme for run");
    let result = Simulator::new(SimConfig::with_scheme(scheme)).run_trace(&trace);
    writeln!(out, "scheme\t{}", scheme.kind)?;
    report(&result, out)?;
    Ok(())
}

/// `deuce compare`: simulate every scheme over the same trace and
/// tabulate the headline metrics.
///
/// # Errors
///
/// Returns I/O or trace-format errors.
pub fn compare<W: Write>(args: &RunArgs, out: &mut W) -> Result<(), CliError> {
    let trace = load_or_generate(args)?;
    writeln!(out, "scheme\tflip_rate\tslots/write\texec_time_us\tmeta_bits")?;
    let results: Vec<(SchemeKind, SimResult)> = ParallelSweep::new()
        .map(&SchemeKind::ALL, |_, &kind| {
            let result =
                Simulator::new(SimConfig::with_scheme(SchemeConfig::new(kind))).run_trace(&trace);
            (kind, result)
        });
    for (kind, result) in &results {
        writeln!(
            out,
            "{kind}\t{:.1}%\t{:.2}\t{:.1}\t{}",
            result.flip_rate() * 100.0,
            result.avg_slots_per_write(),
            result.exec_time_ns / 1000.0,
            result.metadata_bits,
        )?;
    }
    Ok(())
}

/// `deuce sweep`: the §4.2 design-space sweep (word size × epoch) over
/// one trace.
///
/// # Errors
///
/// Returns I/O or trace-format errors.
pub fn sweep<W: Write>(args: &RunArgs, out: &mut W) -> Result<(), CliError> {
    use deuce_crypto::EpochInterval;
    use deuce_schemes::WordSize;

    let trace = load_or_generate(args)?;
    writeln!(out, "word_bytes\tepoch\tflip_rate\tslots_per_write\tmeta_bits")?;
    let mut grid = Vec::new();
    for word_size in [WordSize::Bytes1, WordSize::Bytes2, WordSize::Bytes4, WordSize::Bytes8] {
        for epoch in [8u64, 16, 32, 64] {
            grid.push((word_size, epoch));
        }
    }
    // One shard per grid cell; rows come back in grid order.
    let rows = ParallelSweep::new().map(&grid, |_, &(word_size, epoch)| {
        let scheme = SchemeConfig::new(SchemeKind::Deuce)
            .with_word_size(word_size)
            .with_epoch(EpochInterval::new(epoch).expect("power of two"));
        let result = Simulator::new(SimConfig::with_scheme(scheme)).run_trace(&trace);
        (scheme, result)
    });
    for ((word_size, epoch), (scheme, result)) in grid.iter().zip(&rows) {
        writeln!(
            out,
            "{}\t{}\t{:.1}%\t{:.2}\t{}",
            word_size.bytes(),
            epoch,
            result.flip_rate() * 100.0,
            result.avg_slots_per_write(),
            scheme.metadata_bits(),
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use deuce_trace::Benchmark;

    #[test]
    fn sweep_covers_the_grid() {
        let args = RunArgs {
            trace_path: None,
            gen: small_gen(),
            scheme: None,
        };
        let mut out = Vec::new();
        sweep(&args, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert_eq!(text.lines().count(), 17, "header + 16 grid rows");
        assert!(text.contains("8\t64\t"));
    }

    fn small_gen() -> GenArgs {
        GenArgs {
            benchmark: Benchmark::Mcf,
            writes: 300,
            lines: 32,
            cores: 1,
            seed: 5,
            output: None,
        }
    }

    #[test]
    fn run_reports_metrics() {
        let args = RunArgs {
            trace_path: None,
            gen: small_gen(),
            scheme: Some(SchemeConfig::new(SchemeKind::Deuce)),
        };
        let mut out = Vec::new();
        run(&args, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("scheme\tDEUCE"));
        assert!(text.contains("flip_rate"));
    }

    #[test]
    fn compare_lists_all_schemes() {
        let args = RunArgs {
            trace_path: None,
            gen: small_gen(),
            scheme: None,
        };
        let mut out = Vec::new();
        compare(&args, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        for kind in SchemeKind::ALL {
            assert!(text.contains(kind.label()), "missing {kind}");
        }
    }

    #[test]
    fn gen_stats_roundtrip_through_disk() {
        let dir = std::env::temp_dir().join("deuce-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.trace");
        let path_str = path.to_str().unwrap().to_string();

        let mut gen_args = small_gen();
        gen_args.output = Some(path_str.clone());
        let mut out = Vec::new();
        gen(&gen_args, &mut out).unwrap();
        assert!(String::from_utf8(out).unwrap().contains("300 writes"));

        let mut out = Vec::new();
        stats(&StatsArgs { trace_path: path_str.clone() }, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("writes\t300"));

        // And a run over the saved trace.
        let args = RunArgs {
            trace_path: Some(path_str),
            gen: small_gen(),
            scheme: Some(SchemeConfig::new(SchemeKind::EncryptedDcw)),
        };
        let mut out = Vec::new();
        run(&args, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let rate: f64 = text
            .lines()
            .find_map(|l| l.strip_prefix("flip_rate\t"))
            .expect("flip_rate row")
            .trim_end_matches('%')
            .parse()
            .expect("percentage");
        assert!((rate - 50.0).abs() < 1.5, "encrypted DCW flip rate {rate}%");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_reported() {
        let err = stats(
            &StatsArgs { trace_path: "/nonexistent/definitely.trace".into() },
            &mut Vec::new(),
        )
        .unwrap_err();
        assert!(matches!(err, CliError::Io(_)));
    }
}

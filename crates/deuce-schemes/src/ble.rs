//! Block-Level Encryption (BLE) and its DEUCE combination (§7.1).
//!
//! BLE provisions each 64-byte line with four counters, one per 16-byte
//! AES block, and re-encrypts only the blocks whose plaintext changed.
//! This cuts the avalanche from the whole line to the touched blocks
//! (50% → 33% average flips), but still rewrites 128 bits when a single
//! bit changes. DEUCE can run *inside* each block, decoupling the
//! re-encryption granularity (2-byte words) from the AES granularity —
//! the BLE+DEUCE combination reaches 19.9% (Fig. 18).

use deuce_crypto::{
    BlockCounters, EpochInterval, LineAddr, LineBytes, OtpEngine, VirtualCounterPair,
    BLOCKS_PER_LINE, BLOCK_BYTES,
};
use deuce_nvm::{LineImage, MetaBits};

use crate::config::WordSize;
use crate::WriteOutcome;

fn block_range(block: usize) -> core::ops::Range<usize> {
    block * BLOCK_BYTES..(block + 1) * BLOCK_BYTES
}

/// One memory line under Block-Level Encryption.
#[derive(Debug, Clone)]
pub struct BleLine {
    stored: LineBytes,
    shadow: LineBytes,
    counters: BlockCounters,
    addr: LineAddr,
}

impl BleLine {
    /// Initializes the line: each block encrypted at its counter 0.
    #[must_use]
    pub fn new(engine: &OtpEngine, addr: LineAddr, initial: &LineBytes, counter_bits: u32) -> Self {
        let counters = BlockCounters::new(counter_bits);
        let mut stored = [0u8; deuce_crypto::LINE_BYTES];
        for block in 0..BLOCKS_PER_LINE {
            let pad = engine.block_pad(addr, block, counters.value(block));
            let mut pt = [0u8; BLOCK_BYTES];
            pt.copy_from_slice(&initial[block_range(block)]);
            stored[block_range(block)].copy_from_slice(&pad.xor(&pt));
        }
        Self {
            stored,
            shadow: *initial,
            counters,
            addr,
        }
    }

    /// Writes new data: only blocks whose plaintext changed re-encrypt
    /// (their counters increment).
    #[must_use]
    pub fn write(&mut self, engine: &OtpEngine, data: &LineBytes) -> WriteOutcome {
        let old_image = self.image();
        let mut counter_flips = 0u32;
        for block in 0..BLOCKS_PER_LINE {
            let range = block_range(block);
            if data[range.clone()] == self.shadow[range.clone()] {
                continue;
            }
            let old = self.counters.value(block);
            self.counters.increment(block);
            counter_flips += (old ^ self.counters.value(block)).count_ones();
            let pad = engine.block_pad(self.addr, block, self.counters.value(block));
            let mut pt = [0u8; BLOCK_BYTES];
            pt.copy_from_slice(&data[range.clone()]);
            self.stored[range].copy_from_slice(&pad.xor(&pt));
        }
        self.shadow = *data;
        WriteOutcome::from_images(old_image, self.image(), counter_flips, false)
    }

    /// Reads the line: each block decrypts with its own counter.
    #[must_use]
    pub fn read(&self, engine: &OtpEngine) -> LineBytes {
        let mut out = [0u8; deuce_crypto::LINE_BYTES];
        for block in 0..BLOCKS_PER_LINE {
            let pad = engine.block_pad(self.addr, block, self.counters.value(block));
            let mut ct = [0u8; BLOCK_BYTES];
            ct.copy_from_slice(&self.stored[block_range(block)]);
            out[block_range(block)].copy_from_slice(&pad.xor(&ct));
        }
        out
    }

    /// The per-block counter values.
    #[must_use]
    pub fn counters(&self) -> &BlockCounters {
        &self.counters
    }

    /// The current stored image (no metadata bits — counters are stored
    /// separately).
    #[must_use]
    pub fn image(&self) -> LineImage {
        LineImage::new(self.stored, MetaBits::new(0))
    }
}

/// One memory line under BLE with DEUCE running inside each block.
///
/// Each block keeps its own counter with DEUCE epoch semantics; each word
/// keeps a modified bit. A block whose plaintext is untouched by a write
/// is skipped entirely (its counter does not advance), so words in cold
/// blocks never suffer epoch re-encryption — which is why the combination
/// beats standalone DEUCE (19.9% vs 23.7%).
#[derive(Debug, Clone)]
pub struct BleDeuceLine {
    stored: LineBytes,
    shadow: LineBytes,
    counters: BlockCounters,
    /// One modified bit per word across the whole line.
    modified: MetaBits,
    addr: LineAddr,
    epoch: EpochInterval,
    word_size: WordSize,
}

impl BleDeuceLine {
    /// Initializes the line.
    #[must_use]
    pub fn new(
        engine: &OtpEngine,
        addr: LineAddr,
        initial: &LineBytes,
        word_size: WordSize,
        epoch: EpochInterval,
        counter_bits: u32,
    ) -> Self {
        assert!(
            word_size.bytes() <= BLOCK_BYTES,
            "word size must fit within an AES block"
        );
        let counters = BlockCounters::new(counter_bits);
        let mut stored = [0u8; deuce_crypto::LINE_BYTES];
        for block in 0..BLOCKS_PER_LINE {
            let pad = engine.block_pad(addr, block, counters.value(block));
            let mut pt = [0u8; BLOCK_BYTES];
            pt.copy_from_slice(&initial[block_range(block)]);
            stored[block_range(block)].copy_from_slice(&pad.xor(&pt));
        }
        Self {
            stored,
            shadow: *initial,
            counters,
            modified: MetaBits::new(word_size.tracking_bits()),
            addr,
            epoch,
            word_size,
        }
    }

    fn words_per_block(&self) -> usize {
        BLOCK_BYTES / self.word_size.bytes()
    }

    /// Writes new data.
    #[must_use]
    pub fn write(&mut self, engine: &OtpEngine, data: &LineBytes) -> WriteOutcome {
        let old_image = self.image();
        let w = self.word_size.bytes();
        let wpb = self.words_per_block();
        let mut counter_flips = 0u32;
        let mut any_epoch = false;

        for block in 0..BLOCKS_PER_LINE {
            let brange = block_range(block);
            if data[brange.clone()] == self.shadow[brange] {
                continue; // cold block: counter frozen, nothing rewritten
            }
            let old_ctr = self.counters.value(block);
            self.counters.increment(block);
            counter_flips += (old_ctr ^ self.counters.value(block)).count_ones();
            let v = VirtualCounterPair::derive(self.counters.value(block), self.epoch);

            let lead_pad = engine.block_pad(self.addr, block, v.lctr());
            if v.is_epoch_start() {
                any_epoch = true;
                // Whole block re-encrypts; its modified bits reset.
                for word_in_block in 0..wpb {
                    let word = block * wpb + word_in_block;
                    self.modified.set(word as u32, false);
                    for (offset, i) in (word * w..(word + 1) * w).enumerate() {
                        self.stored[i] =
                            data[i] ^ lead_pad.as_bytes()[word_in_block * w + offset];
                    }
                }
            } else {
                for word_in_block in 0..wpb {
                    let word = block * wpb + word_in_block;
                    let range = word * w..(word + 1) * w;
                    if data[range.clone()] != self.shadow[range] {
                        self.modified.set(word as u32, true);
                    }
                }
                for word_in_block in 0..wpb {
                    let word = block * wpb + word_in_block;
                    if self.modified.get(word as u32) {
                        for (offset, i) in (word * w..(word + 1) * w).enumerate() {
                            self.stored[i] =
                                data[i] ^ lead_pad.as_bytes()[word_in_block * w + offset];
                        }
                    }
                }
            }
        }
        self.shadow = *data;
        WriteOutcome::from_images(old_image, self.image(), counter_flips, any_epoch)
    }

    /// Reads the line: per block, per word, the modified bit selects the
    /// leading or trailing block pad.
    #[must_use]
    pub fn read(&self, engine: &OtpEngine) -> LineBytes {
        let w = self.word_size.bytes();
        let wpb = self.words_per_block();
        let mut out = [0u8; deuce_crypto::LINE_BYTES];
        for block in 0..BLOCKS_PER_LINE {
            let v = VirtualCounterPair::derive(self.counters.value(block), self.epoch);
            let lead = engine.block_pad(self.addr, block, v.lctr());
            let trail = engine.block_pad(self.addr, block, v.tctr());
            for word_in_block in 0..wpb {
                let word = block * wpb + word_in_block;
                let pad = if self.modified.get(word as u32) {
                    lead.as_bytes()
                } else {
                    trail.as_bytes()
                };
                for (offset, i) in (word * w..(word + 1) * w).enumerate() {
                    out[i] = self.stored[i] ^ pad[word_in_block * w + offset];
                }
            }
        }
        out
    }

    /// The current stored image (ciphertext + per-word modified bits).
    #[must_use]
    pub fn image(&self) -> LineImage {
        LineImage::new(self.stored, self.modified)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deuce_crypto::SecretKey;

    fn engine() -> OtpEngine {
        OtpEngine::new(&SecretKey::from_seed(41))
    }

    #[test]
    fn ble_roundtrip() {
        let e = engine();
        let mut l = BleLine::new(&e, LineAddr::new(1), &[0u8; 64], 28);
        for i in 0..30u8 {
            let mut data = [0u8; 64];
            data[usize::from(i % 64)] = i + 1;
            let _ = l.write(&e, &data);
            assert_eq!(l.read(&e), data, "write {i}");
        }
    }

    #[test]
    fn ble_touches_only_changed_blocks() {
        let e = engine();
        let mut l = BleLine::new(&e, LineAddr::new(2), &[0u8; 64], 28);
        let mut data = [0u8; 64];
        data[0] = 1; // block 0 only
        let o = l.write(&e, &data);
        for bit in o.old_image.changed_bits(&o.new_image) {
            assert!(bit < 128, "bit {bit} outside block 0 flipped");
        }
        // Block 0's counter advanced; others untouched.
        assert_eq!(l.counters().value(0), 1);
        assert_eq!(l.counters().value(1), 0);
        // A single-block change re-encrypts ~64 of its 128 bits.
        assert!(o.flips.total() >= 40 && o.flips.total() <= 90);
    }

    #[test]
    fn ble_unchanged_write_flips_nothing() {
        let e = engine();
        let data = [5u8; 64];
        let mut l = BleLine::new(&e, LineAddr::new(3), &data, 28);
        let o = l.write(&e, &data);
        assert_eq!(o.flips.total(), 0);
        assert_eq!(o.counter_flips, 0);
    }

    #[test]
    fn ble_deuce_roundtrip_across_block_epochs() {
        let e = engine();
        let mut l = BleDeuceLine::new(
            &e,
            LineAddr::new(4),
            &[0u8; 64],
            WordSize::Bytes2,
            EpochInterval::new(4).unwrap(),
            28,
        );
        for i in 0..40u8 {
            let mut data = [0u8; 64];
            data[0] = i; // block 0
            data[40] = i.wrapping_mul(2); // block 2
            let _ = l.write(&e, &data);
            assert_eq!(l.read(&e), data, "write {i}");
        }
    }

    #[test]
    fn ble_deuce_sparse_write_is_cheaper_than_ble() {
        let e = engine();
        let mut ble = BleLine::new(&e, LineAddr::new(5), &[0u8; 64], 28);
        let mut combo = BleDeuceLine::new(
            &e,
            LineAddr::new(5),
            &[0u8; 64],
            WordSize::Bytes2,
            EpochInterval::DEFAULT,
            28,
        );
        let mut ble_total = 0u64;
        let mut combo_total = 0u64;
        for i in 0..320u64 {
            let mut data = [0u8; 64];
            data[0] = i as u8;
            data[1] = (i >> 8) as u8;
            ble_total += u64::from(ble.write(&e, &data).flips.total());
            combo_total += u64::from(combo.write(&e, &data).flips.total());
        }
        assert!(
            combo_total < ble_total,
            "BLE+DEUCE ({combo_total}) should beat BLE ({ble_total}) on sparse writes"
        );
    }

    #[test]
    fn ble_deuce_cold_blocks_never_reencrypt() {
        let e = engine();
        let mut l = BleDeuceLine::new(
            &e,
            LineAddr::new(6),
            &[0u8; 64],
            WordSize::Bytes2,
            EpochInterval::new(4).unwrap(),
            28,
        );
        // 20 writes (5 block epochs) confined to block 0.
        for i in 0..20u8 {
            let mut data = [0u8; 64];
            data[0] = i + 1;
            let o = l.write(&e, &data);
            for bit in o.old_image.changed_bits(&o.new_image) {
                let in_block0 = bit < 128;
                let block0_meta = (512..512 + 8).contains(&bit);
                assert!(in_block0 || block0_meta, "cold-block bit {bit} flipped");
            }
        }
    }
}

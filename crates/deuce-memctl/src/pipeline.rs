//! The memory-controller write pipeline, as composable stages.
//!
//! A secure-NVM controller processes every request through the same
//! four stations, in order:
//!
//! 1. **Counter stage** — make the line's encryption counter available
//!    (on-chip counter cache; a miss costs a blocking counter-line read,
//!    a dirty eviction a counter-line writeback).
//! 2. **Scheme stage** — produce the new stored image (DEUCE, DCW, FNW,
//!    …), yielding the bit-flip accounting for the write.
//! 3. **Wear stage** — record cell-level wear for the flipped bits
//!    under the active wear-leveling rotation.
//! 4. **Timing stage** — charge the request's latency and bank
//!    occupancy to the timing model.
//!
//! [`MemoryPipeline`] wires the stages together and is the single
//! driver abstraction the simulator, the CLI, the figure binaries, and
//! the examples all sit on. Each station is a trait, so alternative
//! models (a different counter cache, a trace-only timing stub, a
//! no-op wear model) slot in without touching the driver loop.
//!
//! ```
//! use deuce_memctl::pipeline::{MemoryPipeline, SchemeStage, TimingStage};
//! use deuce_crypto::LineAddr;
//! use deuce_nvm::SlotConfig;
//! use deuce_schemes::WriteOutcome;
//!
//! /// A trivial scheme stage: every write is a first touch.
//! struct NullSchemes;
//! impl SchemeStage for NullSchemes {
//!     fn write(&mut self, _: LineAddr, _: &[u8; 64]) -> Option<WriteOutcome> {
//!         None
//!     }
//! }
//!
//! /// A timing stage that only counts requests.
//! #[derive(Default)]
//! struct CountingTiming {
//!     reads: u64,
//!     writes: u64,
//! }
//! impl TimingStage for CountingTiming {
//!     fn read(&mut self, _: usize, _: u64, _: LineAddr) {
//!         self.reads += 1;
//!     }
//!     fn write(&mut self, _: usize, _: u64, _: LineAddr, _: u32) {
//!         self.writes += 1;
//!     }
//! }
//!
//! let mut pipeline = MemoryPipeline::new(NullSchemes, CountingTiming::default(), SlotConfig::PAPER);
//! pipeline.read(0, 0, LineAddr::new(3));
//! assert!(pipeline.write(0, 1, LineAddr::new(3), &[0u8; 64]).is_none());
//! assert_eq!(pipeline.timing.reads, 1);
//! ```

use std::time::Instant;

use deuce_crypto::LineAddr;
use deuce_nvm::{write_slots, SlotConfig};
use deuce_schemes::WriteOutcome;
use deuce_telemetry::{Counter, NullRecorder, Recorder, Stage};
use deuce_trace::{Op, TraceEvent};

/// Counter lines live in a dedicated address region so bank mapping
/// keeps them apart from data lines.
pub const COUNTER_REGION: u64 = 1 << 40;

/// The address of the counter line holding `line`'s encryption counter,
/// with `counters_per_line` counters packed per 64-byte counter line.
#[must_use]
pub fn counter_line_addr(line: LineAddr, counters_per_line: usize) -> LineAddr {
    LineAddr::new(COUNTER_REGION | (line.value() / counters_per_line as u64))
}

/// Memory traffic triggered by one counter-stage access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CounterOutcome {
    /// The counter line must be fetched from memory before the request
    /// can proceed (a blocking read).
    pub fill: bool,
    /// A dirty counter line was evicted and must be written back.
    pub writeback: bool,
}

/// Stage 1: makes the per-line encryption counter available.
pub trait CounterStage {
    /// Accesses the counter for data line `line`; `dirtying` is true on
    /// the write path (the counter increments, dirtying its line).
    fn access(&mut self, line: LineAddr, dirtying: bool) -> CounterOutcome;

    /// Counter lines currently resident on chip (telemetry only;
    /// stages without a cache report 0).
    fn occupancy(&self) -> u64 {
        0
    }
}

/// Stage 2: transforms plaintext writes into stored-image updates.
pub trait SchemeStage {
    /// Writes `data` to `line`.
    ///
    /// Returns `None` on first touch (initial placement encrypts the
    /// line as it enters memory, §3.1, and is not counted), and the
    /// write outcome — images and flip accounting — afterwards.
    fn write(&mut self, line: LineAddr, data: &[u8; 64]) -> Option<WriteOutcome>;

    /// Resident bytes of the stage's line storage (telemetry only;
    /// stages without an arena report 0).
    fn resident_bytes(&self) -> u64 {
        0
    }
}

/// Cell-death and repair activity triggered by one write, reported by
/// the wear stage. All-zero (the default) unless the wear model injects
/// faults and this write killed at least one cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultEvents {
    /// Cells that reached their endurance threshold on this write.
    pub cell_deaths: u32,
    /// ECP correction entries consumed repairing those deaths.
    pub ecp_consumed: u32,
    /// The write exhausted the line's ECP entries and retired it to a
    /// spare line.
    pub retired: bool,
    /// A death could not be repaired: entries exhausted and no spare
    /// left. The line has failed.
    pub uncorrectable: bool,
}

impl FaultEvents {
    /// Whether anything fault-related happened on this write.
    #[must_use]
    pub fn any(&self) -> bool {
        *self != Self::default()
    }
}

/// Stage 3: records cell-level wear for a completed write.
pub trait WearStage {
    /// Records the bit flips of `outcome` against `line`'s cells and
    /// reports any cell deaths and repair activity the write triggered
    /// (always [`FaultEvents::default`] for wear models without fault
    /// injection).
    fn record(&mut self, line: LineAddr, outcome: &WriteOutcome) -> FaultEvents;
}

/// Stage 4: charges latency and occupancy for issued requests.
pub trait TimingStage {
    /// Charges one line read issued by `core` at instruction `instr`.
    fn read(&mut self, core: usize, instr: u64, line: LineAddr);
    /// Charges one line write occupying `slots` write slots.
    fn write(&mut self, core: usize, instr: u64, line: LineAddr, slots: u32);
}

/// Stage 1 placeholder: a controller whose counters are all on chip —
/// no access ever generates memory traffic.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoCounterStage;

impl CounterStage for NoCounterStage {
    fn access(&mut self, _line: LineAddr, _dirtying: bool) -> CounterOutcome {
        CounterOutcome::default()
    }
}

/// Stage 3 placeholder: a controller without wear tracking.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoWearStage;

impl WearStage for NoWearStage {
    fn record(&mut self, _line: LineAddr, _outcome: &WriteOutcome) -> FaultEvents {
        FaultEvents::default()
    }
}

/// The pipeline-level outcome of one trace event, as reported by
/// [`MemoryPipeline::step`].
#[derive(Debug)]
pub enum StepOutcome {
    /// The event was a read; latency was charged, nothing else changed.
    Read,
    /// The write was an initial placement — the line entered memory
    /// encrypted (§3.1) and is not counted.
    FirstTouch,
    /// A counted write, with its full effect.
    Write(WriteEffect),
}

/// The result of pushing one write through the scheme stage.
#[derive(Debug, Clone)]
pub struct WriteEffect {
    /// The scheme's write outcome (images, flips, epoch bookkeeping).
    pub outcome: WriteOutcome,
    /// Write slots the stored-image update occupied.
    pub slots: u32,
    /// Cell deaths and repairs the wear stage reported for this write.
    pub faults: FaultEvents,
}

/// The staged controller core: counter → scheme → wear → timing.
///
/// The counter and wear stations are optional (`None` models a
/// controller without a counter cache, or without wear tracking); the
/// scheme and timing stations are always present. Stage state is
/// public so the driver can read statistics back out after a run.
#[derive(Debug)]
pub struct MemoryPipeline<C, S, W, T> {
    /// Optional stage 1: counter availability.
    pub counters: Option<C>,
    /// Stage 2: scheme engine.
    pub schemes: S,
    /// Optional stage 3: wear recording.
    pub wear: Option<W>,
    /// Stage 4: timing model.
    pub timing: T,
    slot: SlotConfig,
    counters_per_line: usize,
}

impl<S, T> MemoryPipeline<NoCounterStage, S, NoWearStage, T>
where
    S: SchemeStage,
    T: TimingStage,
{
    /// Builds a pipeline with the two mandatory stages; the counter and
    /// wear stations start as no-ops and can be swapped in with
    /// [`MemoryPipeline::with_counter_stage`] /
    /// [`MemoryPipeline::with_wear_stage`].
    #[must_use]
    pub fn new(schemes: S, timing: T, slot: SlotConfig) -> Self {
        Self {
            counters: None,
            schemes,
            wear: None,
            timing,
            slot,
            counters_per_line: 16,
        }
    }
}

impl<C, S, W, T> MemoryPipeline<C, S, W, T>
where
    C: CounterStage,
    S: SchemeStage,
    W: WearStage,
    T: TimingStage,
{
    /// Attaches (or, with `None`, removes) the counter stage;
    /// `counters_per_line` sets the counter-line address mapping.
    #[must_use]
    pub fn with_counter_stage<C2: CounterStage>(
        self,
        counters: Option<C2>,
        counters_per_line: usize,
    ) -> MemoryPipeline<C2, S, W, T> {
        MemoryPipeline {
            counters,
            schemes: self.schemes,
            wear: self.wear,
            timing: self.timing,
            slot: self.slot,
            counters_per_line,
        }
    }

    /// Attaches (or, with `None`, removes) the wear stage.
    #[must_use]
    pub fn with_wear_stage<W2: WearStage>(self, wear: Option<W2>) -> MemoryPipeline<C, S, W2, T> {
        MemoryPipeline {
            counters: self.counters,
            schemes: self.schemes,
            wear,
            timing: self.timing,
            slot: self.slot,
            counters_per_line: self.counters_per_line,
        }
    }

    /// Routes counter-stage traffic into the timing stage. The counter
    /// must be available before the pad can be generated, so a fill is
    /// a blocking read; a dirty eviction is an extra 1-slot write.
    fn stage_counter<R: Recorder>(
        &mut self,
        core: usize,
        instr: u64,
        line: LineAddr,
        dirtying: bool,
        rec: &mut R,
    ) {
        let Some(counters) = &mut self.counters else {
            return;
        };
        let outcome = counters.access(line, dirtying);
        if R::ENABLED {
            rec.add(Counter::CounterAccesses, 1);
            if outcome.fill {
                rec.add(Counter::CounterFills, 1);
            }
            if outcome.writeback {
                rec.add(Counter::CounterWritebacks, 1);
            }
            rec.residency(counters.occupancy());
        }
        let counter_line = counter_line_addr(line, self.counters_per_line);
        if outcome.fill {
            self.timing.read(core, instr, counter_line);
        }
        if outcome.writeback {
            self.timing.write(core, instr, counter_line, 1);
        }
    }

    /// Drives one read through the pipeline.
    pub fn read(&mut self, core: usize, instr: u64, line: LineAddr) {
        self.read_recorded(core, instr, line, &mut NullRecorder);
    }

    /// [`read`](Self::read) with instrumentation: stage wall time and
    /// counter-traffic events flow into `rec`. With [`NullRecorder`]
    /// this monomorphises to the bare read path.
    pub fn read_recorded<R: Recorder>(
        &mut self,
        core: usize,
        instr: u64,
        line: LineAddr,
        rec: &mut R,
    ) {
        let clock = stage_clock::<R>();
        self.stage_counter(core, instr, line, false, rec);
        let clock = charge::<R>(rec, Stage::Counter, clock);
        self.timing.read(core, instr, line);
        charge::<R>(rec, Stage::Timing, clock);
        if R::ENABLED {
            rec.add(Counter::Reads, 1);
        }
    }

    /// Drives one write through all four stages.
    ///
    /// Returns `None` for an initial placement (stage 2 installed the
    /// line; nothing is counted) and the write's effect otherwise.
    pub fn write(
        &mut self,
        core: usize,
        instr: u64,
        line: LineAddr,
        data: &[u8; 64],
    ) -> Option<WriteEffect> {
        self.write_recorded(core, instr, line, data, &mut NullRecorder)
    }

    /// [`write`](Self::write) with instrumentation: per-stage wall
    /// time, flip/slot counters, and counter-stage traffic flow into
    /// `rec`. With [`NullRecorder`] this monomorphises to the bare
    /// write path — recording never changes the simulated outcome.
    pub fn write_recorded<R: Recorder>(
        &mut self,
        core: usize,
        instr: u64,
        line: LineAddr,
        data: &[u8; 64],
        rec: &mut R,
    ) -> Option<WriteEffect> {
        let clock = stage_clock::<R>();
        self.stage_counter(core, instr, line, true, rec);
        let clock = charge::<R>(rec, Stage::Counter, clock);
        let outcome = self.schemes.write(line, data);
        let Some(outcome) = outcome else {
            charge::<R>(rec, Stage::Scheme, clock);
            if R::ENABLED {
                rec.add(Counter::FirstTouches, 1);
            }
            return None;
        };
        let slots = write_slots(&outcome.old_image, &outcome.new_image, self.slot);
        let clock = charge::<R>(rec, Stage::Scheme, clock);
        self.timing.write(core, instr, line, slots);
        let clock = charge::<R>(rec, Stage::Timing, clock);
        let faults = match &mut self.wear {
            Some(wear) => wear.record(line, &outcome),
            None => FaultEvents::default(),
        };
        charge::<R>(rec, Stage::Wear, clock);
        if R::ENABLED {
            rec.add(Counter::Writes, 1);
            rec.add(Counter::DataFlips, u64::from(outcome.flips.data));
            rec.add(Counter::MetaFlips, u64::from(outcome.flips.meta));
            rec.add(Counter::CounterFlips, u64::from(outcome.counter_flips));
            rec.add(Counter::EpochStarts, u64::from(outcome.epoch_started));
            rec.add(Counter::SlotsTotal, u64::from(slots));
        }
        Some(WriteEffect {
            outcome,
            slots,
            faults,
        })
    }

    /// Drives one trace event through the pipeline — the streaming
    /// entry point that `WriteSource` consumers loop over.
    ///
    /// # Panics
    ///
    /// Panics if a write event carries no data.
    pub fn step(&mut self, event: &TraceEvent) -> StepOutcome {
        self.step_recorded(event, &mut NullRecorder)
    }

    /// [`step`](Self::step) with instrumentation (see
    /// [`write_recorded`](Self::write_recorded)).
    ///
    /// # Panics
    ///
    /// Panics if a write event carries no data.
    pub fn step_recorded<R: Recorder>(&mut self, event: &TraceEvent, rec: &mut R) -> StepOutcome {
        let core = usize::from(event.core);
        match event.op {
            Op::Read => {
                self.read_recorded(core, event.instr, event.line, rec);
                StepOutcome::Read
            }
            Op::Write => {
                let data = event.data.as_ref().expect("write events carry data");
                match self.write_recorded(core, event.instr, event.line, data, rec) {
                    Some(effect) => StepOutcome::Write(effect),
                    None => StepOutcome::FirstTouch,
                }
            }
        }
    }
}

/// Starts the per-stage wall clock when `R` records anything.
fn stage_clock<R: Recorder>() -> Option<Instant> {
    R::ENABLED.then(Instant::now)
}

/// Charges the elapsed wall time to `stage` and restarts the clock for
/// the next stage.
///
/// `stage_ns` is also the span tracer's landing spot: a recorder with
/// span tracing on folds each charge into a `stage:*` span under the
/// current `run` span, so the pipeline needs no span plumbing of its
/// own.
fn charge<R: Recorder>(rec: &mut R, stage: Stage, clock: Option<Instant>) -> Option<Instant> {
    let start = clock?;
    let now = Instant::now();
    rec.stage_ns(stage, u64::try_from((now - start).as_nanos()).unwrap_or(u64::MAX));
    Some(now)
}

#[cfg(test)]
mod tests {
    use super::*;
    use deuce_crypto::{OtpEngine, SecretKey};
    use deuce_schemes::{SchemeConfig, SchemeKind, SchemeLine};
    use std::collections::HashMap;

    /// A real scheme stage over lazily instantiated lines, mirroring
    /// what the simulator does.
    struct Store {
        engine: OtpEngine,
        config: SchemeConfig,
        lines: HashMap<u64, SchemeLine>,
    }

    impl Store {
        fn new(kind: SchemeKind) -> Self {
            Self {
                engine: OtpEngine::new(&SecretKey::from_seed(1)),
                config: SchemeConfig::new(kind),
                lines: HashMap::new(),
            }
        }
    }

    impl SchemeStage for Store {
        fn write(&mut self, line: LineAddr, data: &[u8; 64]) -> Option<WriteOutcome> {
            match self.lines.entry(line.value()) {
                std::collections::hash_map::Entry::Vacant(slot) => {
                    slot.insert(SchemeLine::new(&self.config, &self.engine, line, data));
                    None
                }
                std::collections::hash_map::Entry::Occupied(mut slot) => {
                    Some(slot.get_mut().write(&self.engine, data))
                }
            }
        }
    }

    /// Counter stage that misses every other access.
    struct AlternatingCounters {
        toggle: bool,
    }

    impl CounterStage for AlternatingCounters {
        fn access(&mut self, _line: LineAddr, dirtying: bool) -> CounterOutcome {
            self.toggle = !self.toggle;
            CounterOutcome { fill: self.toggle, writeback: self.toggle && dirtying }
        }
    }

    #[derive(Default)]
    struct TimingLog {
        reads: Vec<u64>,
        writes: Vec<(u64, u32)>,
    }

    impl TimingStage for TimingLog {
        fn read(&mut self, _core: usize, _instr: u64, line: LineAddr) {
            self.reads.push(line.value());
        }
        fn write(&mut self, _core: usize, _instr: u64, line: LineAddr, slots: u32) {
            self.writes.push((line.value(), slots));
        }
    }

    #[derive(Default)]
    struct WearLog(Vec<u64>);

    impl WearStage for WearLog {
        fn record(&mut self, line: LineAddr, _outcome: &WriteOutcome) -> FaultEvents {
            self.0.push(line.value());
            FaultEvents::default()
        }
    }

    fn pipeline(
        kind: SchemeKind,
    ) -> MemoryPipeline<NoCounterStage, Store, NoWearStage, TimingLog> {
        MemoryPipeline::new(Store::new(kind), TimingLog::default(), SlotConfig::PAPER)
    }

    #[test]
    fn first_touch_is_uncounted_then_writes_flow() {
        let mut p = pipeline(SchemeKind::Deuce);
        let line = LineAddr::new(5);
        assert!(p.write(0, 0, line, &[1u8; 64]).is_none(), "initial placement");
        let effect = p.write(0, 1, line, &[2u8; 64]).expect("second write counts");
        assert!(effect.outcome.flips.total() > 0);
        assert!(effect.slots >= 1 && effect.slots <= 4);
        assert_eq!(p.timing.writes.len(), 1, "only the counted write reached timing");
    }

    #[test]
    fn counter_stage_traffic_reaches_timing() {
        let mut p = pipeline(SchemeKind::Deuce)
            .with_counter_stage(Some(AlternatingCounters { toggle: false }), 16);
        let line = LineAddr::new(3);
        // First access: toggle -> fill + (dirtying) writeback.
        let _ = p.write(0, 0, line, &[0u8; 64]);
        let counter_line = counter_line_addr(line, 16).value();
        assert_eq!(p.timing.reads, vec![counter_line], "blocking counter fill");
        assert_eq!(
            p.timing.writes,
            vec![(counter_line, 1)],
            "dirty counter eviction is a 1-slot write"
        );
        // Second access hits: a data read charges only the data line.
        p.read(0, 1, line);
        assert_eq!(p.timing.reads, vec![counter_line, line.value()]);
    }

    #[test]
    fn wear_stage_sees_only_counted_writes() {
        let mut p =
            pipeline(SchemeKind::UnencryptedDcw).with_wear_stage(Some(WearLog::default()));
        let line = LineAddr::new(9);
        let _ = p.write(0, 0, line, &[0u8; 64]);
        let _ = p.write(0, 1, line, &[7u8; 64]);
        let _ = p.write(0, 2, line, &[7u8; 64]);
        assert_eq!(p.wear.as_ref().unwrap().0, vec![line.value(), line.value()]);
    }

    #[test]
    fn counter_region_is_disjoint_from_data() {
        let addr = counter_line_addr(LineAddr::new(12345), 16);
        assert_eq!(addr.value() & COUNTER_REGION, COUNTER_REGION);
        assert_eq!(addr.value() & !COUNTER_REGION, 12345 / 16);
    }

    #[test]
    fn recorded_writes_match_unrecorded_and_count_events() {
        use deuce_telemetry::TelemetryRecorder;
        let mut plain = pipeline(SchemeKind::Deuce)
            .with_counter_stage(Some(AlternatingCounters { toggle: false }), 16);
        let mut recorded = pipeline(SchemeKind::Deuce)
            .with_counter_stage(Some(AlternatingCounters { toggle: false }), 16);
        let mut rec = TelemetryRecorder::default();
        let line = LineAddr::new(5);
        recorded.read_recorded(0, 0, line, &mut rec);
        plain.read(0, 0, line);
        for instr in 0..4u64 {
            let data = [instr as u8 * 3 + 1; 64];
            let a = plain.write(0, instr, line, &data);
            let b = recorded.write_recorded(0, instr, line, &data, &mut rec);
            match (a, b) {
                (None, None) => {}
                (Some(x), Some(y)) => {
                    assert_eq!(x.slots, y.slots);
                    assert_eq!(x.outcome.flips, y.outcome.flips);
                }
                _ => panic!("recorded and plain paths diverged"),
            }
        }
        assert_eq!(rec.counter(Counter::Reads), 1);
        assert_eq!(rec.counter(Counter::FirstTouches), 1);
        assert_eq!(rec.counter(Counter::Writes), 3);
        assert!(rec.counter(Counter::DataFlips) > 0);
        assert!(rec.counter(Counter::SlotsTotal) >= 3);
        assert_eq!(rec.counter(Counter::CounterAccesses), 5, "1 read + 4 writes");
        assert_eq!(rec.stage_hist(Stage::Scheme).count(), 4);
        assert_eq!(rec.stage_hist(Stage::Timing).count(), 4, "reads and counted writes");
    }
}

//! Sharded multi-tenant encrypted-memory service over the DEUCE simulator.
//!
//! [`deuce_sim::Simulator`] answers "what does this trace cost?"; this
//! crate answers "what does this *service* sustain?". A
//! [`ServiceBuilder`] stands up one isolated key domain per tenant —
//! its own [`deuce_sim::SimConfig`] (key seed, scheme, store backend)
//! behind its own [`deuce_sim::StepSession`] — and a pool of per-bank
//! worker shards, each a thread draining a bounded queue of batched
//! read/write submissions.
//!
//! The layer makes three promises:
//!
//! - **Isolation.** Tenants never share a key, a line store, or a
//!   counter cache. A request is routed by `hash(tenant, addr)` to a
//!   shard, but the shard only ever touches the owning tenant's
//!   session, under that tenant's lock.
//! - **Backpressure, not blocking.** [`ServeHandle::submit`] reserves
//!   queue slots on every shard a batch touches before enqueueing
//!   anything. If any shard is full the whole batch is rejected with
//!   [`SubmitError::QueueFull`] — carrying a `retry_after` hint — and
//!   *no request from the batch is ever applied*. Accepted batches are
//!   applied exactly once.
//! - **Determinism.** Each accepted request gets a per-tenant sequence
//!   number in submission order; shards may apply out of order but a
//!   per-tenant reorder buffer commits strictly in sequence. A tenant's
//!   final memory image ([`TenantReport::fingerprint`]) and summary
//!   ([`TenantReport::result`]) are bit-identical to a single-threaded
//!   replay of its request stream through
//!   [`request_event`] + [`deuce_sim::Simulator::run_source`],
//!   regardless of shard count or interleaving.
//!
//! Failure semantics: an uncorrectable write (device end of life) does
//! **not** stop the tenant — the session keeps stepping, exactly as the
//! single-threaded replay would, so bit-identity survives the failure.
//! The tenant is flagged [`TenantReport::degraded`] and, when the
//! service was built [`ServiceBuilder::with_flight_recorder`], the
//! flight ring is snapshotted at the first uncorrectable write for a
//! post-mortem. Store I/O errors (paged backends) latch inside the
//! session and surface as `Err` in [`TenantReport::result`] at
//! shutdown.
//!
//! # Examples
//!
//! ```
//! use deuce_serve::{Request, ServiceBuilder};
//! use deuce_sim::{SchemeKind, SimConfig};
//! use deuce_trace::LineAddr;
//!
//! let handle = ServiceBuilder::new()
//!     .shards(2)
//!     .tenant("alpha", SimConfig::new(SchemeKind::Deuce))
//!     .tenant("beta", SimConfig::new(SchemeKind::Deuce).key_seed(7))
//!     .start()
//!     .expect("service starts");
//!
//! let alpha = handle.tenant("alpha").expect("registered");
//! handle
//!     .submit(alpha, &[
//!         Request::write(LineAddr::new(3), [0xAB; 64]),
//!         Request::read(LineAddr::new(3)),
//!     ])
//!     .expect("queues have room");
//!
//! let report = handle.shutdown();
//! assert_eq!(report.applied, 2);
//! assert!(report.tenants.iter().all(|t| t.result.is_ok()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod report;
mod request;
mod service;

pub use report::{ServeReport, ServeStats, ShardReport, TenantReport};
pub use request::{request_event, Request};
pub use service::{ServeError, ServeHandle, ServiceBuilder, SubmitError, TenantId};

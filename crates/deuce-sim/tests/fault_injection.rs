//! End-to-end fault-injection scenarios: the online analogue of the
//! paper's Fig. 14 lifetime comparison. Under accelerated wear, DEUCE's
//! write reduction must translate into strictly more sustained line
//! writes before the first uncorrectable error than full-line
//! re-encryption — sequentially and under sharded parallel execution
//! with bit-identical results.

use deuce_sim::{FaultConfig, ParallelSweep, SimConfig, SimResult, Simulator, WearConfig};
use deuce_schemes::SchemeKind;
use deuce_trace::{LineAddr, Trace, TraceEvent};

const LINES: u64 = 2;
const WRITES_PER_LINE: usize = 4000;

/// A hot-word workload: every write changes the first 8 bytes of each
/// line pseudo-randomly and leaves the remaining 56 bytes untouched.
/// DEUCE re-encrypts only the hot words; full-line re-encryption flips
/// ~half of all 512 bits every write, wearing every cell in the line.
fn hot_word_trace() -> Trace {
    let mut events = Vec::new();
    let mut state = 0x9e37_79b9_7f4a_7c15_u64;
    let mut instr = 0;
    for _ in 0..=WRITES_PER_LINE {
        for line in 0..LINES {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            let mut data = [0u8; 64];
            data[..8].copy_from_slice(&state.to_le_bytes());
            for (i, byte) in data[8..].iter_mut().enumerate() {
                *byte = (line as u8).wrapping_add(i as u8);
            }
            instr += 50;
            events.push(TraceEvent::write(0, instr, LineAddr::new(line), data));
        }
    }
    Trace::from_events(events)
}

/// Accelerated wear: ~200-write mean cell endurance (paper endurance
/// 1e8 × 2e-6), ECP-2, one spare line shared by the pool.
fn faulty_config(kind: SchemeKind) -> SimConfig {
    SimConfig::new(kind)
        .with_wear(WearConfig::vertical_only(LINES as usize))
        .with_faults(FaultConfig::accelerated(2e-6).ecp_entries(2).spare_lines(1))
}

fn first_ue(result: &SimResult) -> Option<u64> {
    result.faults.as_ref().expect("faults enabled").first_uncorrectable_write
}

#[test]
fn deuce_outlives_full_line_reencryption() {
    let trace = hot_word_trace();
    let enc = Simulator::new(faulty_config(SchemeKind::EncryptedDcw)).run_trace(&trace);
    let deuce = Simulator::new(faulty_config(SchemeKind::Deuce)).run_trace(&trace);

    let enc_faults = enc.faults.as_ref().expect("faults enabled");
    let deuce_faults = deuce.faults.as_ref().expect("faults enabled");
    assert!(enc_faults.cell_deaths > 0, "accelerated wear must kill cells");
    assert!(deuce_faults.cell_deaths > 0, "DEUCE's hot words must wear out too");

    let enc_ue = first_ue(&enc).expect("full-line re-encryption must wear out within the trace");
    // DEUCE either dies strictly later or survives the whole trace.
    if let Some(deuce_ue) = first_ue(&deuce) {
        assert!(
            deuce_ue > enc_ue,
            "DEUCE must sustain more writes: DEUCE died at {deuce_ue}, encrypted at {enc_ue}"
        );
    }
    // Degradation went through the full ladder before dying: ECP
    // entries were consumed and the spare pool was used.
    assert!(enc_faults.ecp_entries_consumed > 0);
    assert!(enc_faults.lines_retired > 0);
    assert_eq!(enc_faults.spare_lines_left, 0);
    assert!(enc_faults.first_retirement_write.unwrap() < enc_ue);
}

#[test]
fn fault_reports_are_identical_under_parallel_sweep() {
    let trace = hot_word_trace();
    let configs = [
        faulty_config(SchemeKind::EncryptedDcw),
        faulty_config(SchemeKind::Deuce),
        faulty_config(SchemeKind::UnencryptedDcw),
    ];
    let run = |sweep: ParallelSweep| {
        sweep.map(&configs, |_, cfg| Simulator::new(cfg.clone()).run_trace(&trace))
    };
    let sequential = run(ParallelSweep::with_shards(1));
    for shards in [2, 4] {
        let parallel = run(ParallelSweep::with_shards(shards));
        for (seq, par) in sequential.iter().zip(&parallel) {
            assert_eq!(seq.writes, par.writes);
            assert_eq!(seq.data_flips, par.data_flips);
            assert_eq!(seq.faults, par.faults, "{shards} shards");
        }
    }
}

#[test]
fn faults_default_off_and_reports_absent() {
    let trace = hot_word_trace();
    let cfg = SimConfig::new(SchemeKind::Deuce).with_wear(WearConfig::vertical_only(LINES as usize));
    let r = Simulator::new(cfg).run_trace(&trace);
    assert!(r.faults.is_none(), "no fault report without fault injection");
    assert!(r.cells.is_some(), "wear tracking still on");
}

#[test]
#[should_panic(expected = "fault injection requires wear tracking")]
fn faults_without_wear_is_rejected() {
    let cfg = SimConfig::new(SchemeKind::Deuce).with_faults(FaultConfig::accelerated(1e-6));
    let _ = Simulator::new(cfg).run_trace(&hot_word_trace());
}

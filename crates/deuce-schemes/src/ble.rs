//! Block-Level Encryption (BLE) and its DEUCE combination (§7.1).
//!
//! BLE provisions each 64-byte line with four counters, one per 16-byte
//! AES block, and re-encrypts only the blocks whose plaintext changed.
//! This cuts the avalanche from the whole line to the touched blocks
//! (50% → 33% average flips), but still rewrites 128 bits when a single
//! bit changes. DEUCE can run *inside* each block, decoupling the
//! re-encryption granularity (2-byte words) from the AES granularity —
//! the BLE+DEUCE combination reaches 19.9% (Fig. 18).

use deuce_crypto::{
    BlockCounters, EpochInterval, LineAddr, LineBytes, OtpEngine, VirtualCounterPair,
    BLOCKS_PER_LINE, BLOCK_BYTES,
};
use deuce_nvm::{LineImage, MetaBits};

use crate::config::WordSize;
use crate::core::assert_counter_width;
use crate::scheme::{LineMut, LineRef, LineScheme, SchemeCell};
use crate::WriteOutcome;

fn block_range(block: usize) -> core::ops::Range<usize> {
    block * BLOCK_BYTES..(block + 1) * BLOCK_BYTES
}

/// Per-line BLE state: the four raw per-block counter values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BleState {
    /// Raw counter value per 16-byte block.
    pub ctrs: [u64; BLOCKS_PER_LINE],
}

/// Increments one raw block counter, returning the stored-bit flips.
fn bump_block(ctrs: &mut [u64; BLOCKS_PER_LINE], block: usize, width_bits: u32) -> u32 {
    let mask = (1u64 << width_bits) - 1;
    let old = ctrs[block];
    ctrs[block] = (old + 1) & mask;
    (old ^ ctrs[block]).count_ones()
}

/// Encrypts `initial` block-by-block at counter 0 (shared by BLE and
/// BLE+DEUCE, whose initial images are identical).
fn ble_init(engine: &OtpEngine, addr: LineAddr, initial: &LineBytes) -> LineBytes {
    let mut stored = [0u8; deuce_crypto::LINE_BYTES];
    for block in 0..BLOCKS_PER_LINE {
        let pad = engine.block_pad(addr, block, 0);
        let mut pt = [0u8; BLOCK_BYTES];
        pt.copy_from_slice(&initial[block_range(block)]);
        stored[block_range(block)].copy_from_slice(&pad.xor(&pt));
    }
    stored
}

/// Block-Level Encryption: one counter per 16-byte AES block, blocks with
/// unchanged plaintext keep their ciphertext.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BleScheme {
    /// Per-block counter width in bits.
    pub counter_bits: u32,
}

impl BleScheme {
    /// Creates the scheme.
    ///
    /// # Panics
    ///
    /// Panics if `counter_bits` is 0 or greater than 48.
    #[must_use]
    pub fn new(counter_bits: u32) -> Self {
        assert_counter_width(counter_bits);
        Self { counter_bits }
    }
}

impl LineScheme for BleScheme {
    type State = BleState;

    fn needs_shadow(&self) -> bool {
        true
    }

    fn metadata_bits(&self) -> u32 {
        0
    }

    fn init(&self, engine: &OtpEngine, addr: LineAddr, initial: &LineBytes) -> (LineBytes, BleState) {
        (ble_init(engine, addr, initial), BleState::default())
    }

    fn write(
        &self,
        engine: &OtpEngine,
        addr: LineAddr,
        line: LineMut<'_, BleState>,
        data: &LineBytes,
    ) -> WriteOutcome {
        let old_image = LineImage::new(*line.stored, MetaBits::new(0));
        let mut counter_flips = 0u32;
        for block in 0..BLOCKS_PER_LINE {
            let range = block_range(block);
            if data[range.clone()] == line.shadow[range.clone()] {
                continue;
            }
            counter_flips += bump_block(&mut line.state.ctrs, block, self.counter_bits);
            let pad = engine.block_pad(addr, block, line.state.ctrs[block]);
            let mut pt = [0u8; BLOCK_BYTES];
            pt.copy_from_slice(&data[range.clone()]);
            line.stored[range].copy_from_slice(&pad.xor(&pt));
        }
        *line.shadow = *data;
        WriteOutcome::from_images(
            old_image,
            LineImage::new(*line.stored, MetaBits::new(0)),
            counter_flips,
            false,
        )
    }

    fn read(&self, engine: &OtpEngine, addr: LineAddr, line: LineRef<'_, BleState>) -> LineBytes {
        let mut out = [0u8; deuce_crypto::LINE_BYTES];
        for block in 0..BLOCKS_PER_LINE {
            let pad = engine.block_pad(addr, block, line.state.ctrs[block]);
            let mut ct = [0u8; BLOCK_BYTES];
            ct.copy_from_slice(&line.stored[block_range(block)]);
            out[block_range(block)].copy_from_slice(&pad.xor(&ct));
        }
        out
    }

    fn image(&self, line: LineRef<'_, BleState>) -> LineImage {
        LineImage::new(*line.stored, MetaBits::new(0))
    }
}

/// One memory line under Block-Level Encryption.
pub type BleLine = SchemeCell<BleScheme>;

impl BleLine {
    /// Initializes the line: each block encrypted at its counter 0.
    #[must_use]
    pub fn new(engine: &OtpEngine, addr: LineAddr, initial: &LineBytes, counter_bits: u32) -> Self {
        Self::with_scheme(BleScheme::new(counter_bits), engine, addr, initial)
    }

    /// The per-block counter values.
    #[must_use]
    pub fn counters(&self) -> BlockCounters {
        BlockCounters::from_values(self.state().ctrs, self.scheme().counter_bits)
    }
}

/// Per-line BLE+DEUCE state: the four raw per-block counter values plus
/// the raw per-word modified bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BleDeuceState {
    /// Raw counter value per 16-byte block.
    pub ctrs: [u64; BLOCKS_PER_LINE],
    /// Raw per-word modified bits across the whole line.
    pub modified: u64,
}

/// BLE with DEUCE running inside each block.
///
/// Each block keeps its own counter with DEUCE epoch semantics; each word
/// keeps a modified bit. A block whose plaintext is untouched by a write
/// is skipped entirely (its counter does not advance), so words in cold
/// blocks never suffer epoch re-encryption — which is why the combination
/// beats standalone DEUCE (19.9% vs 23.7%).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BleDeuceScheme {
    /// DEUCE word granularity.
    pub word_size: WordSize,
    /// Per-block DEUCE epoch interval.
    pub epoch: EpochInterval,
    /// Per-block counter width in bits.
    pub counter_bits: u32,
}

impl BleDeuceScheme {
    /// Creates the scheme.
    ///
    /// # Panics
    ///
    /// Panics if the word size exceeds an AES block or `counter_bits` is
    /// 0 or greater than 48.
    #[must_use]
    pub fn new(word_size: WordSize, epoch: EpochInterval, counter_bits: u32) -> Self {
        assert!(
            word_size.bytes() <= BLOCK_BYTES,
            "word size must fit within an AES block"
        );
        assert_counter_width(counter_bits);
        Self {
            word_size,
            epoch,
            counter_bits,
        }
    }

    fn words_per_block(self) -> usize {
        BLOCK_BYTES / self.word_size.bytes()
    }

    fn modified_bits(self, state: &BleDeuceState) -> MetaBits {
        MetaBits::from_raw(state.modified, self.word_size.tracking_bits())
    }
}

impl LineScheme for BleDeuceScheme {
    type State = BleDeuceState;

    fn needs_shadow(&self) -> bool {
        true
    }

    fn metadata_bits(&self) -> u32 {
        self.word_size.tracking_bits()
    }

    fn init(
        &self,
        engine: &OtpEngine,
        addr: LineAddr,
        initial: &LineBytes,
    ) -> (LineBytes, BleDeuceState) {
        (ble_init(engine, addr, initial), BleDeuceState::default())
    }

    fn write(
        &self,
        engine: &OtpEngine,
        addr: LineAddr,
        line: LineMut<'_, BleDeuceState>,
        data: &LineBytes,
    ) -> WriteOutcome {
        let mut modified = self.modified_bits(line.state);
        let old_image = LineImage::new(*line.stored, modified);
        let w = self.word_size.bytes();
        let wpb = self.words_per_block();
        let mut counter_flips = 0u32;
        let mut any_epoch = false;

        for block in 0..BLOCKS_PER_LINE {
            let brange = block_range(block);
            if data[brange.clone()] == line.shadow[brange] {
                continue; // cold block: counter frozen, nothing rewritten
            }
            counter_flips += bump_block(&mut line.state.ctrs, block, self.counter_bits);
            let v = VirtualCounterPair::derive(line.state.ctrs[block], self.epoch);

            let lead_pad = engine.block_pad(addr, block, v.lctr());
            if v.is_epoch_start() {
                any_epoch = true;
                // Whole block re-encrypts; its modified bits reset.
                for word_in_block in 0..wpb {
                    let word = block * wpb + word_in_block;
                    modified.set(word as u32, false);
                    for (offset, i) in (word * w..(word + 1) * w).enumerate() {
                        line.stored[i] = data[i] ^ lead_pad.as_bytes()[word_in_block * w + offset];
                    }
                }
            } else {
                for word_in_block in 0..wpb {
                    let word = block * wpb + word_in_block;
                    let range = word * w..(word + 1) * w;
                    if data[range.clone()] != line.shadow[range] {
                        modified.set(word as u32, true);
                    }
                }
                for word_in_block in 0..wpb {
                    let word = block * wpb + word_in_block;
                    if modified.get(word as u32) {
                        for (offset, i) in (word * w..(word + 1) * w).enumerate() {
                            line.stored[i] =
                                data[i] ^ lead_pad.as_bytes()[word_in_block * w + offset];
                        }
                    }
                }
            }
        }
        line.state.modified = modified.raw();
        *line.shadow = *data;
        WriteOutcome::from_images(
            old_image,
            LineImage::new(*line.stored, modified),
            counter_flips,
            any_epoch,
        )
    }

    fn read(&self, engine: &OtpEngine, addr: LineAddr, line: LineRef<'_, BleDeuceState>) -> LineBytes {
        let modified = self.modified_bits(line.state);
        let w = self.word_size.bytes();
        let wpb = self.words_per_block();
        let mut out = [0u8; deuce_crypto::LINE_BYTES];
        for block in 0..BLOCKS_PER_LINE {
            let v = VirtualCounterPair::derive(line.state.ctrs[block], self.epoch);
            let lead = engine.block_pad(addr, block, v.lctr());
            let trail = engine.block_pad(addr, block, v.tctr());
            for word_in_block in 0..wpb {
                let word = block * wpb + word_in_block;
                let pad = if modified.get(word as u32) {
                    lead.as_bytes()
                } else {
                    trail.as_bytes()
                };
                for (offset, i) in (word * w..(word + 1) * w).enumerate() {
                    out[i] = line.stored[i] ^ pad[word_in_block * w + offset];
                }
            }
        }
        out
    }

    fn image(&self, line: LineRef<'_, BleDeuceState>) -> LineImage {
        LineImage::new(*line.stored, self.modified_bits(line.state))
    }
}

/// One memory line under BLE with DEUCE running inside each block.
pub type BleDeuceLine = SchemeCell<BleDeuceScheme>;

impl BleDeuceLine {
    /// Initializes the line.
    #[must_use]
    pub fn new(
        engine: &OtpEngine,
        addr: LineAddr,
        initial: &LineBytes,
        word_size: WordSize,
        epoch: EpochInterval,
        counter_bits: u32,
    ) -> Self {
        Self::with_scheme(
            BleDeuceScheme::new(word_size, epoch, counter_bits),
            engine,
            addr,
            initial,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deuce_crypto::SecretKey;

    fn engine() -> OtpEngine {
        OtpEngine::new(&SecretKey::from_seed(41))
    }

    #[test]
    fn ble_roundtrip() {
        let e = engine();
        let mut l = BleLine::new(&e, LineAddr::new(1), &[0u8; 64], 28);
        for i in 0..30u8 {
            let mut data = [0u8; 64];
            data[usize::from(i % 64)] = i + 1;
            let _ = l.write(&e, &data);
            assert_eq!(l.read(&e), data, "write {i}");
        }
    }

    #[test]
    fn ble_touches_only_changed_blocks() {
        let e = engine();
        let mut l = BleLine::new(&e, LineAddr::new(2), &[0u8; 64], 28);
        let mut data = [0u8; 64];
        data[0] = 1; // block 0 only
        let o = l.write(&e, &data);
        for bit in o.old_image.changed_bits(&o.new_image) {
            assert!(bit < 128, "bit {bit} outside block 0 flipped");
        }
        // Block 0's counter advanced; others untouched.
        assert_eq!(l.counters().value(0), 1);
        assert_eq!(l.counters().value(1), 0);
        // A single-block change re-encrypts ~64 of its 128 bits.
        assert!(o.flips.total() >= 40 && o.flips.total() <= 90);
    }

    #[test]
    fn ble_unchanged_write_flips_nothing() {
        let e = engine();
        let data = [5u8; 64];
        let mut l = BleLine::new(&e, LineAddr::new(3), &data, 28);
        let o = l.write(&e, &data);
        assert_eq!(o.flips.total(), 0);
        assert_eq!(o.counter_flips, 0);
    }

    #[test]
    fn ble_deuce_roundtrip_across_block_epochs() {
        let e = engine();
        let mut l = BleDeuceLine::new(
            &e,
            LineAddr::new(4),
            &[0u8; 64],
            WordSize::Bytes2,
            EpochInterval::new(4).unwrap(),
            28,
        );
        for i in 0..40u8 {
            let mut data = [0u8; 64];
            data[0] = i; // block 0
            data[40] = i.wrapping_mul(2); // block 2
            let _ = l.write(&e, &data);
            assert_eq!(l.read(&e), data, "write {i}");
        }
    }

    #[test]
    fn ble_deuce_sparse_write_is_cheaper_than_ble() {
        let e = engine();
        let mut ble = BleLine::new(&e, LineAddr::new(5), &[0u8; 64], 28);
        let mut combo = BleDeuceLine::new(
            &e,
            LineAddr::new(5),
            &[0u8; 64],
            WordSize::Bytes2,
            EpochInterval::DEFAULT,
            28,
        );
        let mut ble_total = 0u64;
        let mut combo_total = 0u64;
        for i in 0..320u64 {
            let mut data = [0u8; 64];
            data[0] = i as u8;
            data[1] = (i >> 8) as u8;
            ble_total += u64::from(ble.write(&e, &data).flips.total());
            combo_total += u64::from(combo.write(&e, &data).flips.total());
        }
        assert!(
            combo_total < ble_total,
            "BLE+DEUCE ({combo_total}) should beat BLE ({ble_total}) on sparse writes"
        );
    }

    #[test]
    fn ble_deuce_cold_blocks_never_reencrypt() {
        let e = engine();
        let mut l = BleDeuceLine::new(
            &e,
            LineAddr::new(6),
            &[0u8; 64],
            WordSize::Bytes2,
            EpochInterval::new(4).unwrap(),
            28,
        );
        // 20 writes (5 block epochs) confined to block 0.
        for i in 0..20u8 {
            let mut data = [0u8; 64];
            data[0] = i + 1;
            let o = l.write(&e, &data);
            for bit in o.old_image.changed_bits(&o.new_image) {
                let in_block0 = bit < 128;
                let block0_meta = (512..512 + 8).contains(&bit);
                assert!(in_block0 || block0_meta, "cold-block bit {bit} flipped");
            }
        }
    }
}

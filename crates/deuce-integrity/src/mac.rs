//! Per-line MACs binding (address, counter, ciphertext).
//!
//! The counter tree stops counter rollback; a MAC over the stored
//! ciphertext stops the complementary attack of splicing old *data* back
//! into memory. Together they give the integrity layer the paper's
//! footnote 1 sketches via \[14, 16\].

use deuce_crypto::{LineAddr, LineBytes};

use crate::hash::{AesHash, Digest};

/// Computes and checks per-line MACs.
///
/// # Examples
///
/// ```
/// use deuce_integrity::LineMac;
/// use deuce_crypto::LineAddr;
///
/// let mac = LineMac::new([1u8; 16]);
/// let tag = mac.tag(LineAddr::new(7), 3, &[0xAB; 64]);
/// assert!(mac.check(LineAddr::new(7), 3, &[0xAB; 64], &tag));
/// assert!(!mac.check(LineAddr::new(7), 4, &[0xAB; 64], &tag)); // wrong counter
/// ```
#[derive(Debug, Clone)]
pub struct LineMac {
    hasher: AesHash,
}

impl LineMac {
    /// Creates a MAC engine keyed (domain-separated) by `key_iv`.
    #[must_use]
    pub fn new(key_iv: [u8; 16]) -> Self {
        Self {
            hasher: AesHash::with_iv(key_iv),
        }
    }

    /// Computes the tag for a stored line.
    #[must_use]
    pub fn tag(&self, addr: LineAddr, counter: u64, ciphertext: &LineBytes) -> Digest {
        self.hasher.hash_parts(&[
            &addr.value().to_le_bytes(),
            &counter.to_le_bytes(),
            ciphertext,
        ])
    }

    /// Checks a tag fetched from untrusted memory.
    #[must_use]
    pub fn check(
        &self,
        addr: LineAddr,
        counter: u64,
        ciphertext: &LineBytes,
        tag: &Digest,
    ) -> bool {
        // Constant-time-ish comparison (simulation; documents intent).
        let computed = self.tag(addr, counter, ciphertext);
        computed
            .iter()
            .zip(tag)
            .fold(0u8, |acc, (a, b)| acc | (a ^ b))
            == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mac() -> LineMac {
        LineMac::new([0x5Au8; 16])
    }

    #[test]
    fn tag_roundtrip() {
        let m = mac();
        let data = [7u8; 64];
        let tag = m.tag(LineAddr::new(1), 9, &data);
        assert!(m.check(LineAddr::new(1), 9, &data, &tag));
    }

    #[test]
    fn detects_data_splicing() {
        let m = mac();
        let old = [7u8; 64];
        let new = [8u8; 64];
        let old_tag = m.tag(LineAddr::new(1), 9, &old);
        // Attacker replays old data (with its old tag) at a new counter.
        assert!(!m.check(LineAddr::new(1), 10, &old, &old_tag));
        // Or forges data under the current counter.
        assert!(!m.check(LineAddr::new(1), 9, &new, &old_tag));
    }

    #[test]
    fn detects_cross_line_relocation() {
        let m = mac();
        let data = [7u8; 64];
        let tag = m.tag(LineAddr::new(1), 9, &data);
        assert!(!m.check(LineAddr::new(2), 9, &data, &tag));
    }

    #[test]
    fn keys_separate_tags() {
        let a = LineMac::new([1u8; 16]);
        let b = LineMac::new([2u8; 16]);
        let data = [0u8; 64];
        assert_ne!(
            a.tag(LineAddr::new(0), 0, &data),
            b.tag(LineAddr::new(0), 0, &data)
        );
    }
}

//! The simulator driving traces through the staged memory-controller
//! pipeline: counter cache → scheme engine → wear recording → timing.
//!
//! The pipeline structure itself lives in
//! [`deuce_memctl::pipeline`]; the concrete stages (lazy scheme-line
//! store, counter cache, wear state, timing model) and the per-event
//! fold into a [`SimResult`] live in [`crate::session`] as
//! [`StepSession`] — this module supplies the streaming drivers over
//! it.
//!
//! The driver is streaming: [`Simulator::run_source`] pulls events
//! from any [`WriteSource`] — a seeded generator, a trace file reader,
//! or an in-RAM [`Trace`] — so memory use is independent of stream
//! length. [`Simulator::run_trace`] is the trivial in-RAM delegation
//! and is bit-identical by construction. For callers that need to feed
//! events one at a time (the `deuce-serve` front end), the same loop
//! is exposed inside-out via [`Simulator::session`] and
//! [`Simulator::owned_session`].

use std::fmt;
use std::time::Instant;

use deuce_crypto::{OtpEngine, SecretKey};
use deuce_schemes::{
    AnyScheme, ArenaBackend, FilePageBackend, LineScheme, PageBackend, StateCodec,
};
use deuce_telemetry::{NullRecorder, Recorder};
use deuce_trace::{Trace, TraceIoError, TraceSource, WriteSource};

use crate::checkpoint::RunCheckpoint;
use crate::config::{SimConfig, StoreBackend};
use crate::result::SimResult;
use crate::session::{elapsed_ns, SessionBackend, SessionStep, StepSession};

/// Errors from a streaming run.
#[derive(Debug)]
pub enum RunError {
    /// The write source failed (I/O failure or malformed trace input).
    Trace(TraceIoError),
    /// Replay verification against a [`RunCheckpoint`] failed: the
    /// stream or configuration differs from the one that produced the
    /// checkpoint.
    CheckpointMismatch {
        /// Which counter diverged.
        field: &'static str,
        /// The checkpoint's value.
        expected: u64,
        /// The replayed run's value.
        found: u64,
    },
    /// The out-of-core line-store backend failed: the page file could
    /// not be created, or an I/O error was latched during the run (the
    /// scheme hot loop is infallible, so backends swallow I/O errors
    /// and surface the first one here at end of run).
    Store(String),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Trace(e) => write!(f, "write source failed: {e}"),
            RunError::CheckpointMismatch { field, expected, found } => write!(
                f,
                "checkpoint mismatch on {field}: checkpoint has {expected}, replay produced \
                 {found} (different stream or configuration)"
            ),
            RunError::Store(msg) => write!(f, "line-store backend failed: {msg}"),
        }
    }
}

impl std::error::Error for RunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RunError::Trace(e) => Some(e),
            RunError::CheckpointMismatch { .. } | RunError::Store(_) => None,
        }
    }
}

impl From<TraceIoError> for RunError {
    fn from(e: TraceIoError) -> Self {
        RunError::Trace(e)
    }
}

/// How [`Simulator`] treats checkpoints during one streaming run.
struct CheckpointPlan<'a> {
    /// Emit a checkpoint every this many counted writes (and one at
    /// stream end). 0 disables periodic emission.
    every_writes: u64,
    /// Receives each emitted checkpoint.
    sink: Option<&'a mut dyn FnMut(&RunCheckpoint)>,
    /// Verify the replay against this checkpoint when the stream
    /// reaches its position.
    verify: Option<&'a RunCheckpoint>,
}

impl CheckpointPlan<'_> {
    fn none() -> Self {
        CheckpointPlan { every_writes: 0, sink: None, verify: None }
    }
}

/// Runs traces under one configuration.
///
/// Lines are instantiated lazily: the first write to an address is
/// treated as the initial placement (encrypted as it enters memory, per
/// §3.1) and is *not* counted in the flip statistics — matching how
/// [`deuce_trace::TraceStats`] skips each line's first write.
///
/// The scheme parameter `S` defaults to the runtime-dispatched
/// [`AnyScheme`], which [`new`](Simulator::new) selects from
/// `config.scheme` — the path the CLI and sweeps use. Pinning a concrete
/// scheme type with [`with_line_scheme`](Simulator::with_line_scheme)
/// monomorphises the whole hot loop for that scheme; both paths are
/// bit-identical (asserted by the `scheme_parity` golden-fixture test).
#[derive(Debug)]
pub struct Simulator<S: LineScheme = AnyScheme> {
    pub(crate) config: SimConfig,
    pub(crate) engine: OtpEngine,
    pub(crate) scheme: S,
}

impl Simulator {
    /// Creates a simulator dispatching on `config.scheme` at runtime.
    #[must_use]
    pub fn new(config: SimConfig) -> Self {
        let scheme = AnyScheme::from_config(&config.scheme);
        Self::with_line_scheme(config, scheme)
    }
}

impl<S: LineScheme + Copy> Simulator<S>
where
    S::State: StateCodec,
{
    /// Creates a simulator whose hot loop is monomorphised for `scheme`.
    ///
    /// `config.scheme` still governs everything *around* the line scheme
    /// (counter cache, wear, timing); `scheme` governs how each line is
    /// encoded. [`new`](Simulator::new) keeps them consistent
    /// automatically; callers pinning a concrete scheme are responsible
    /// for passing one matching `config.scheme`.
    #[must_use]
    pub fn with_line_scheme(config: SimConfig, scheme: S) -> Self {
        let mut engine = OtpEngine::new(&SecretKey::from_seed(config.key_seed));
        if let Some(pad_cache) = config.pad_cache {
            engine = engine.with_pad_cache(pad_cache.entries);
        }
        if config.pad_timing {
            engine = engine.with_pad_timing();
        }
        Self { config, engine, scheme }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Drives a trace through the full stack and aggregates every metric.
    ///
    /// # Panics
    ///
    /// Panics if wear tracking is enabled and the trace touches more
    /// distinct lines than [`crate::WearConfig::lines`], or if a
    /// configured page-file store backend fails on I/O (use
    /// [`run_source`](Self::run_source) to handle store errors as a
    /// [`RunError`] instead).
    #[must_use]
    pub fn run_trace(&self, trace: &Trace) -> SimResult {
        self.run_trace_recorded(trace, &mut NullRecorder)
    }

    /// Like [`run_trace`](Self::run_trace), but streams structured
    /// telemetry into `rec` as the trace plays: per-write observations
    /// (figure-of-merit flips, slots, simulated time, counter-cache
    /// traffic) plus end-of-run gauges. Recording never changes the
    /// result — a run with any recorder is bit-identical to one with
    /// [`NullRecorder`], which monomorphises this back into the plain
    /// uninstrumented loop.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`run_trace`](Self::run_trace).
    #[must_use]
    pub fn run_trace_recorded<R: Recorder>(&self, trace: &Trace, rec: &mut R) -> SimResult {
        let mut source = TraceSource::new(trace);
        match self.drive(&mut source, rec, CheckpointPlan::none()) {
            Ok(result) => result,
            // In-RAM sources cannot fail, so the only error left is the
            // page-file store backend.
            Err(e) => panic!("trace run failed: {e}"),
        }
    }

    /// Drives any [`WriteSource`] through the full stack — the
    /// bounded-memory entry point: a 100M-write generator or file
    /// stream runs in O(working set), not O(stream length), and is
    /// bit-identical to [`run_trace`](Self::run_trace) on the
    /// materialised equivalent.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Trace`] when the source fails (I/O failure
    /// or malformed trace input).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`run_trace`](Self::run_trace).
    pub fn run_source<Src: WriteSource + ?Sized>(
        &self,
        source: &mut Src,
    ) -> Result<SimResult, RunError> {
        self.drive(source, &mut NullRecorder, CheckpointPlan::none())
    }

    /// [`run_source`](Self::run_source) with telemetry recording (see
    /// [`run_trace_recorded`](Self::run_trace_recorded)).
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Trace`] when the source fails.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`run_trace`](Self::run_trace).
    pub fn run_source_recorded<Src: WriteSource + ?Sized, R: Recorder>(
        &self,
        source: &mut Src,
        rec: &mut R,
    ) -> Result<SimResult, RunError> {
        self.drive(source, rec, CheckpointPlan::none())
    }

    /// [`run_source`](Self::run_source) emitting a [`RunCheckpoint`]
    /// into `sink` every `every_writes` counted writes, plus one at
    /// stream end. Checkpoints are observation only — the result is
    /// bit-identical with and without them.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Trace`] when the source fails.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`run_trace`](Self::run_trace).
    pub fn run_source_checkpointed<Src: WriteSource + ?Sized, R: Recorder>(
        &self,
        source: &mut Src,
        rec: &mut R,
        every_writes: u64,
        sink: &mut dyn FnMut(&RunCheckpoint),
    ) -> Result<SimResult, RunError> {
        self.drive(
            source,
            rec,
            CheckpointPlan { every_writes, sink: Some(sink), verify: None },
        )
    }

    /// Resumes a run from a checkpoint by deterministic replay: drives
    /// `source` from the beginning and, when the stream reaches the
    /// checkpoint's position, verifies every counter matches before
    /// continuing to the end. This trades replay compute for guaranteed
    /// correctness — a changed config, trace file, or binary is
    /// *detected*, never silently folded into wrong results. (Skipping
    /// completed work wholesale is the manifest layer's job, which
    /// resumes at whole-cell granularity.)
    ///
    /// # Errors
    ///
    /// Returns [`RunError::CheckpointMismatch`] when the replay
    /// diverges from `from` (including a stream shorter than the
    /// checkpoint position), and [`RunError::Trace`] when the source
    /// fails.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`run_trace`](Self::run_trace).
    pub fn resume_source<Src: WriteSource + ?Sized, R: Recorder>(
        &self,
        source: &mut Src,
        rec: &mut R,
        from: &RunCheckpoint,
    ) -> Result<SimResult, RunError> {
        self.drive(
            source,
            rec,
            CheckpointPlan { every_writes: 0, sink: None, verify: Some(from) },
        )
    }

    /// The store backend the configuration picks, behind the runtime
    /// [`SessionBackend`] dispatch (sessions trade the monomorphised
    /// backend for a uniform type).
    fn session_backend(&self) -> Result<SessionBackend<S>, RunError> {
        match &self.config.store {
            StoreBackend::Arena => {
                Ok(SessionBackend::Arena(ArenaBackend::new(self.scheme.needs_shadow())))
            }
            StoreBackend::File(file) => {
                FilePageBackend::create(&file.path, file.resident_pages, self.scheme.needs_shadow())
                    .map(SessionBackend::File)
                    .map_err(|e| {
                        RunError::Store(format!("create page file {}: {e}", file.path.display()))
                    })
            }
        }
    }

    /// Opens a step-at-a-time session borrowing this simulator's
    /// engine: feed it [`deuce_trace::TraceEvent`]s in stream order and
    /// [`finish`](StepSession::finish) it for the [`SimResult`]. The
    /// stepped run is bit-identical to
    /// [`run_source`](Self::run_source) over the same event sequence.
    /// `cores` is the stream's core count (what
    /// [`WriteSource::cores`] would report).
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Store`] when a configured page-file store
    /// backend cannot be created.
    pub fn session(&self, cores: usize) -> Result<StepSession<S, &OtpEngine>, RunError> {
        Ok(StepSession::build(
            &self.config,
            self.scheme,
            &self.engine,
            self.session_backend()?,
            cores,
            false,
        ))
    }

    /// Like [`session`](Self::session), but the session owns a clone of
    /// the engine, so it can outlive the simulator and move across
    /// threads — the shape `deuce-serve` uses, one owned session per
    /// tenant. Cloning the engine never changes results: pad generation
    /// is a pure function of the key, and the cache is a transparent
    /// memo of it.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Store`] when a configured page-file store
    /// backend cannot be created.
    pub fn owned_session(&self, cores: usize) -> Result<StepSession<S, OtpEngine>, RunError> {
        Ok(StepSession::build(
            &self.config,
            self.scheme,
            self.engine.clone(),
            self.session_backend()?,
            cores,
            false,
        ))
    }

    /// Dispatches on the configured store backend, so the streaming
    /// loop below monomorphises per backend and the arena path stays
    /// exactly the historical code.
    fn drive<Src: WriteSource + ?Sized, R: Recorder>(
        &self,
        source: &mut Src,
        rec: &mut R,
        plan: CheckpointPlan<'_>,
    ) -> Result<SimResult, RunError> {
        match &self.config.store {
            StoreBackend::Arena => {
                self.drive_with(source, rec, plan, ArenaBackend::new(self.scheme.needs_shadow()))
            }
            StoreBackend::File(file) => {
                let backend = FilePageBackend::create(
                    &file.path,
                    file.resident_pages,
                    self.scheme.needs_shadow(),
                )
                .map_err(|e| {
                    RunError::Store(format!("create page file {}: {e}", file.path.display()))
                })?;
                self.drive_with(source, rec, plan, backend)
            }
        }
    }

    /// The one streaming drive loop all public run entry points share:
    /// a [`StepSession`] fed from `source` until it runs dry, with
    /// checkpoint emission/verification interleaved per the plan.
    fn drive_with<Src: WriteSource + ?Sized, R: Recorder, B: PageBackend<S>>(
        &self,
        source: &mut Src,
        rec: &mut R,
        mut plan: CheckpointPlan<'_>,
        backend: B,
    ) -> Result<SimResult, RunError> {
        // Span tracing is double-gated: the `R::ENABLED` half vanishes
        // under `NullRecorder`, the dynamic half keeps a telemetry-only
        // run free of `Instant::now` pairs.
        let wants_spans = R::ENABLED && rec.wants_spans();
        if wants_spans {
            rec.span_begin("run");
        }

        let mut session = StepSession::build(
            &self.config,
            self.scheme,
            &self.engine,
            backend,
            source.cores(),
            wants_spans,
        );
        if R::ENABLED {
            if session.result().faults.is_some() {
                rec.fault_injection_active();
            }
            if session.pad_cache_attached() {
                rec.pad_cache_active();
            }
            if matches!(self.config.store, StoreBackend::File(_)) {
                rec.store_paging_active();
            }
        }

        let mut last_emitted: Option<u64> = None;
        loop {
            let pull_started = wants_spans.then(Instant::now);
            let next = source.next_event()?;
            if let Some(started) = pull_started {
                rec.span_attach(Some("run"), "source", elapsed_ns(started), 1);
            }
            let Some(event) = next else { break };
            let step = session.step_recorded(&event, rec);
            if matches!(step, SessionStep::Write { .. })
                && plan.every_writes > 0
                && session.result().writes.is_multiple_of(plan.every_writes)
            {
                if let Some(sink) = plan.sink.as_mut() {
                    let cp_started = wants_spans.then(Instant::now);
                    sink(&session.checkpoint());
                    if let Some(started) = cp_started {
                        rec.span_attach(Some("run"), "checkpoint", elapsed_ns(started), 1);
                    }
                    last_emitted = Some(session.events_consumed());
                }
            }
            if let Some(expected) = plan.verify {
                if session.events_consumed() == expected.events_consumed {
                    verify_checkpoint(expected, &session.checkpoint())?;
                    plan.verify = None;
                }
            }
        }
        if let Some(expected) = plan.verify {
            // The stream ended before reaching the checkpoint position.
            return Err(RunError::CheckpointMismatch {
                field: "events_consumed",
                expected: expected.events_consumed,
                found: session.events_consumed(),
            });
        }
        if let Some(sink) = plan.sink {
            if last_emitted != Some(session.events_consumed()) {
                let cp_started = wants_spans.then(Instant::now);
                sink(&session.checkpoint());
                if let Some(started) = cp_started {
                    rec.span_attach(Some("run"), "checkpoint", elapsed_ns(started), 1);
                }
            }
        }

        let result = session.finish_recorded(rec)?;
        if wants_spans {
            rec.span_end();
        }
        Ok(result)
    }
}

/// Compares a replayed fingerprint against the checkpoint, field by
/// field, naming the first divergence.
fn verify_checkpoint(expected: &RunCheckpoint, found: &RunCheckpoint) -> Result<(), RunError> {
    let fields: [(&'static str, u64, u64); 10] = [
        ("reads", expected.reads, found.reads),
        ("writes", expected.writes, found.writes),
        ("data_flips", expected.data_flips, found.data_flips),
        ("meta_flips", expected.meta_flips, found.meta_flips),
        ("counter_flips", expected.counter_flips, found.counter_flips),
        ("epoch_starts", expected.epoch_starts, found.epoch_starts),
        ("total_slots", expected.total_slots, found.total_slots),
        ("exec_time_ns_bits", expected.exec_time_ns_bits, found.exec_time_ns_bits),
        ("flushed_pages", expected.flushed_pages, found.flushed_pages),
        ("flush_fp", expected.flush_fp, found.flush_fp),
    ];
    for (field, want, got) in fields {
        if want != got {
            return Err(RunError::CheckpointMismatch { field, expected: want, found: got });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WearConfig;
    use deuce_schemes::SchemeKind;
    use deuce_trace::{Benchmark, TraceConfig};
    use deuce_wear::HwlMode;

    fn trace(benchmark: Benchmark, writes: usize) -> Trace {
        TraceConfig::new(benchmark).lines(64).writes(writes).seed(11).generate()
    }

    #[test]
    fn encrypted_baseline_flips_half() {
        let t = trace(Benchmark::Mcf, 3000);
        let r = Simulator::new(SimConfig::new(SchemeKind::EncryptedDcw)).run_trace(&t);
        assert!((r.flip_rate() - 0.5).abs() < 0.01, "rate {}", r.flip_rate());
        assert!(r.avg_slots_per_write() > 3.9, "slots {}", r.avg_slots_per_write());
    }

    #[test]
    fn deuce_beats_encrypted_on_sparse_workload() {
        let t = trace(Benchmark::Libquantum, 3000);
        let enc = Simulator::new(SimConfig::new(SchemeKind::EncryptedDcw)).run_trace(&t);
        let deuce = Simulator::new(SimConfig::new(SchemeKind::Deuce)).run_trace(&t);
        assert!(deuce.flip_rate() < enc.flip_rate() / 2.0);
        assert!(deuce.avg_slots_per_write() < enc.avg_slots_per_write());
        assert!(deuce.exec_time_ns < enc.exec_time_ns);
    }

    #[test]
    fn unencrypted_is_cheapest() {
        let t = trace(Benchmark::Omnetpp, 2000);
        let plain = Simulator::new(SimConfig::new(SchemeKind::UnencryptedDcw)).run_trace(&t);
        let deuce = Simulator::new(SimConfig::new(SchemeKind::Deuce)).run_trace(&t);
        assert!(plain.flip_rate() < deuce.flip_rate());
        assert_eq!(plain.counter_flips, 0);
    }

    #[test]
    fn first_write_per_line_is_not_counted() {
        let t = trace(Benchmark::Astar, 500);
        let r = Simulator::new(SimConfig::new(SchemeKind::Deuce)).run_trace(&t);
        let distinct = t
            .writes()
            .map(|e| e.line.value())
            .collect::<std::collections::HashSet<_>>()
            .len() as u64;
        assert_eq!(r.writes, t.write_count() as u64 - distinct);
    }

    #[test]
    fn wear_tracking_populates_cells() {
        let t = trace(Benchmark::Libquantum, 2000);
        let cfg = SimConfig::new(SchemeKind::Deuce)
            .with_wear(WearConfig::with_hwl(64, HwlMode::Hashed).gap_interval(5));
        let r = Simulator::new(cfg).run_trace(&t);
        let cells = r.cells.as_ref().expect("wear enabled");
        assert_eq!(cells.writes_recorded(), r.writes);
        assert!(r.wear_summary().unwrap().total_bit_writes > 0);
        assert!(r.lifetime(crate::LifetimePolicy::VerticalLeveled).unwrap() > 0.0);
    }

    #[test]
    fn hwl_levels_bit_positions() {
        let t = trace(Benchmark::Libquantum, 6000);
        let no_hwl = Simulator::new(
            SimConfig::new(SchemeKind::Deuce).with_wear(WearConfig::vertical_only(64)),
        )
        .run_trace(&t);
        let hwl = Simulator::new(
            SimConfig::new(SchemeKind::Deuce)
                .with_wear(WearConfig::with_hwl(64, HwlMode::Hashed).gap_interval(2)),
        )
        .run_trace(&t);
        let skew_without = no_hwl.cells.as_ref().unwrap().wear_summary().max_over_avg();
        let life_no = no_hwl.lifetime(crate::LifetimePolicy::VerticalLeveled).unwrap();
        let life_hwl = hwl.lifetime(crate::LifetimePolicy::VerticalLeveled).unwrap();
        assert!(skew_without > 3.0, "libq should be skewed, got {skew_without}");
        assert!(
            life_hwl > life_no * 1.5,
            "HWL lifetime {life_hwl} vs {life_no}"
        );
    }

    #[test]
    fn reads_contribute_to_time_and_energy() {
        let t = TraceConfig::new(Benchmark::Mcf).lines(64).writes(1000).seed(1).generate();
        let r = Simulator::new(SimConfig::new(SchemeKind::Deuce)).run_trace(&t);
        assert!(r.reads > 0);
        assert!(r.exec_time_ns > 0.0);
        assert!(r.energy_pj() > 0.0);
        assert!(r.power_mw() > 0.0);
    }

    #[test]
    fn pad_cache_never_changes_results() {
        use crate::config::PadCacheConfig;
        let t = trace(Benchmark::Mcf, 2000);
        let plain = Simulator::new(SimConfig::new(SchemeKind::Deuce)).run_trace(&t);
        let cached = Simulator::new(
            SimConfig::new(SchemeKind::Deuce).with_pad_cache(PadCacheConfig::DEFAULT),
        )
        .run_trace(&t);
        assert!(plain.pad_cache.is_none());
        let stats = cached.pad_cache.expect("pad cache enabled");
        assert!(stats.hits + stats.misses > 0, "pads were requested");
        // Everything simulated is bit-identical; only the AES-work
        // accounting differs.
        assert_eq!(plain.writes, cached.writes);
        assert_eq!(plain.data_flips, cached.data_flips);
        assert_eq!(plain.meta_flips, cached.meta_flips);
        assert_eq!(plain.counter_flips, cached.counter_flips);
        assert_eq!(plain.total_slots, cached.total_slots);
        assert_eq!(plain.exec_time_ns, cached.exec_time_ns);
        // Both runs report the same dispatch tier: the simulator always
        // builds its engine through the default dispatch.
        assert_eq!(plain.aes_backend, cached.aes_backend);
    }

    /// A short epoch forces rollovers, so the end-of-write speculative
    /// prefill fires; warming next-epoch pads must change only the
    /// hit/miss/prefill accounting, never the simulated results.
    #[test]
    fn epoch_rollover_prefill_never_changes_results() {
        use crate::config::PadCacheConfig;
        use deuce_crypto::EpochInterval;
        use deuce_schemes::SchemeConfig;
        let t = trace(Benchmark::Mcf, 3000);
        let scheme = SchemeConfig::new(SchemeKind::Deuce)
            .with_epoch(EpochInterval::new(4).unwrap());
        let plain = Simulator::new(SimConfig::with_scheme(scheme)).run_trace(&t);
        let cached = Simulator::new(
            SimConfig::with_scheme(scheme).with_pad_cache(PadCacheConfig::DEFAULT),
        )
        .run_trace(&t);
        assert!(plain.epoch_starts > 0, "short epoch must roll over");
        let stats = cached.pad_cache.expect("pad cache enabled");
        assert!(stats.prefills > 0, "rollovers must trigger prefills");
        // Every epoch start past each line's first was prefilled one
        // write earlier, so the demand lookups land on warmed entries.
        assert!(stats.hits > 0, "prefilled pads must be claimed as hits");
        assert_eq!(plain.writes, cached.writes);
        assert_eq!(plain.data_flips, cached.data_flips);
        assert_eq!(plain.meta_flips, cached.meta_flips);
        assert_eq!(plain.counter_flips, cached.counter_flips);
        assert_eq!(plain.total_slots, cached.total_slots);
        assert_eq!(plain.epoch_starts, cached.epoch_starts);
        assert_eq!(plain.exec_time_ns, cached.exec_time_ns);
    }

    /// DEUCE+FNW feeds the cache from the 8-wide batched pad path
    /// (writes generate full-line pads, rollovers prefill the next
    /// epoch's); accounting must cover every pad request and the run
    /// must stay bit-identical to the uncached one. (Read-side pair
    /// accounting is covered at the engine layer — the simulator's
    /// read stage charges timing without decrypting.)
    #[test]
    fn pad_cache_accounting_under_batched_pads() {
        use crate::config::PadCacheConfig;
        let t = trace(Benchmark::Libquantum, 2500);
        let plain = Simulator::new(SimConfig::new(SchemeKind::DeuceFnw)).run_trace(&t);
        let cached = Simulator::new(
            SimConfig::new(SchemeKind::DeuceFnw).with_pad_cache(PadCacheConfig::DEFAULT),
        )
        .run_trace(&t);
        let stats = cached.pad_cache.expect("pad cache enabled");
        // One demand lookup per counted write plus one per initial
        // placement, all through the batched whole-line path.
        assert!(
            stats.hits + stats.misses >= cached.writes,
            "batched writes must be accounted: {stats:?} vs {} writes",
            cached.writes,
        );
        assert!(stats.prefills > 0, "epoch rollovers must warm next-epoch pads");
        assert!(stats.hits > 0, "warmed pads must be claimed as hits");
        assert_eq!(plain.writes, cached.writes);
        assert_eq!(plain.reads, cached.reads);
        assert_eq!(plain.data_flips, cached.data_flips);
        assert_eq!(plain.meta_flips, cached.meta_flips);
        assert_eq!(plain.total_slots, cached.total_slots);
        assert_eq!(plain.exec_time_ns, cached.exec_time_ns);
    }

    #[test]
    #[should_panic(expected = "wear-tracked lines")]
    fn wear_overflow_is_detected() {
        let t = trace(Benchmark::Mcf, 2000);
        let cfg = SimConfig::new(SchemeKind::Deuce).with_wear(WearConfig::vertical_only(2));
        let _ = Simulator::new(cfg).run_trace(&t);
    }

    /// Stepping a session by hand must be bit-identical to the
    /// streamed run over the same events, and the checkpoint captured
    /// mid-session must match the streamed emission.
    #[test]
    fn stepped_session_matches_streamed_run() {
        let t = trace(Benchmark::Libquantum, 1500);
        let simulator = Simulator::new(SimConfig::new(SchemeKind::Deuce));
        let streamed = simulator.run_trace(&t);
        let cores = TraceSource::new(&t).cores();
        let mut session = simulator.session(cores).expect("arena session");
        for event in t.events() {
            let _ = session.step(event);
        }
        let cp = session.checkpoint();
        let stepped = session.finish().expect("arena session cannot fail");
        assert_eq!(stepped.writes, streamed.writes);
        assert_eq!(stepped.reads, streamed.reads);
        assert_eq!(stepped.data_flips, streamed.data_flips);
        assert_eq!(stepped.meta_flips, streamed.meta_flips);
        assert_eq!(stepped.counter_flips, streamed.counter_flips);
        assert_eq!(stepped.total_slots, streamed.total_slots);
        assert_eq!(stepped.epoch_starts, streamed.epoch_starts);
        assert_eq!(stepped.exec_time_ns.to_bits(), streamed.exec_time_ns.to_bits());
        assert_eq!(stepped.line_store_bytes, streamed.line_store_bytes);
        assert_eq!(cp.exec_time_ns().to_bits(), streamed.exec_time_ns.to_bits());
    }

    /// An owned session (cloned engine) produces the same results and
    /// the same content fingerprint as a borrowed one.
    #[test]
    fn owned_session_matches_borrowed() {
        let t = trace(Benchmark::Mcf, 1200);
        let simulator = Simulator::new(SimConfig::new(SchemeKind::Deuce));
        let cores = TraceSource::new(&t).cores();
        let mut borrowed = simulator.session(cores).unwrap();
        let mut owned = simulator.owned_session(cores).unwrap();
        for event in t.events() {
            assert_eq!(borrowed.step(event), owned.step(event));
        }
        assert_eq!(borrowed.content_fingerprint(), owned.content_fingerprint());
        let b = borrowed.finish().unwrap();
        let o = owned.finish().unwrap();
        assert_eq!(b.writes, o.writes);
        assert_eq!(b.exec_time_ns.to_bits(), o.exec_time_ns.to_bits());
    }
}

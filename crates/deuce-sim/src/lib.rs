//! Trace-driven system simulator for secure PCM memory.
//!
//! Ties the whole stack together: a [`deuce_trace::Trace`] is driven
//! through a [`deuce_schemes::SchemeLine`] per memory line, the resulting
//! bit-exact write outcomes feed the [`deuce_nvm`] device model (flips,
//! write slots, energy, cell wear), an optional [`deuce_wear`] Start-Gap +
//! HWL layer rotates the wear, and a memory-controller timing model with
//! per-bank queues and blocking reads produces execution time — from which
//! the paper's speedup / energy / power / EDP figures derive. Grids of
//! independent runs shard across threads with [`ParallelSweep`],
//! bit-identical to a sequential loop.
//!
//! With [`FaultConfig`] the run also injects online stuck-at cell
//! faults: cells die once their sampled endurance is exhausted, ECP
//! entries and line retirement absorb the deaths, and
//! [`SimResult::faults`] reports the degradation timeline — when the
//! device first retired a line and when it first hit an uncorrectable
//! write (the online version of the paper's Fig. 14 lifetime question).
//!
//! # Examples
//!
//! ```
//! use deuce_sim::{SimConfig, Simulator};
//! use deuce_schemes::SchemeKind;
//! use deuce_trace::{Benchmark, TraceConfig};
//!
//! let trace = TraceConfig::new(Benchmark::Mcf).writes(2_000).generate();
//! let result = Simulator::new(SimConfig::new(SchemeKind::Deuce)).run_trace(&trace);
//! assert!(result.flip_rate() > 0.0 && result.flip_rate() < 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checkpoint;
mod config;
mod counter_cache;
mod latency;
mod manifest;
mod result;
mod session;
mod simulator;
mod sweep;
mod timing;

pub use checkpoint::RunCheckpoint;
pub use config::{
    CpuParams, FaultConfig, FileStoreConfig, MetricConfig, PadCacheConfig, SimConfig, StoreBackend,
    VerticalWl, WearConfig,
};
pub use counter_cache::{CounterCache, CounterCacheConfig, CounterTraffic};
pub use latency::{pad_latency_report, PadEngineOption, PadLatencyReport};
pub use manifest::{
    grid_fingerprint, merge_manifests, read_manifest, CellRecord, ManifestError, ManifestHeader,
    ManifestWriter, ShardSpec,
};
pub use result::{FaultReport, SimResult};
pub use session::{SessionBackend, SessionStep, StepSession};
pub use simulator::{RunError, Simulator};
pub use sweep::{ParallelSweep, SweepCell};
pub use timing::MemoryTimingModel;

pub use deuce_schemes::{SchemeConfig, SchemeKind, StorePageStats};
pub use deuce_telemetry as telemetry;
pub use deuce_wear::{HwlMode, LifetimePolicy};

//! The out-of-core backend: a page file plus an LRU cache of resident
//! pages.
//!
//! # Page layout
//!
//! The file opens with a 32-byte [`PageHeader`] describing the slot
//! layout, followed by fixed-size page records at
//! `HEADER + index * page_disk_bytes`:
//!
//! ```text
//! [present: u64 LE][stored: 64 x 64B][shadow: 64 x 64B]?[state: 64 x ENCODED_BYTES]
//! ```
//!
//! The shadow segment exists only for schemes that keep one. Slots of a
//! page that were never materialised encode as zero bytes and decode to
//! placeholder states guarded by the presence bitmap.
//!
//! # Pin/unpin discipline
//!
//! Slot access goes through [`PageBackend::with_slot`] /
//! [`PageBackend::with_slot_mut`]: the slot's page is pinned (faulted
//! in if absent, its LRU tick refreshed) for exactly the closure's
//! duration, so at most one page is pinned at a time and eviction can
//! never invalidate a borrow. Faulting a page beyond the resident
//! budget first evicts the least-recently-used page, writing it back
//! iff dirty.
//!
//! # Determinism
//!
//! Given the same call sequence and resident budget, faults, evictions
//! and write-backs happen at identical points: ticks are a simple
//! counter, the LRU order is exact, and the end-of-run
//! [`flush`](PageBackend::flush) walks pages in index order. The
//! running FNV-1a fingerprint over flushed page bytes (in flush order)
//! is therefore reproducible under replay, which is what lets run
//! checkpoints incorporate flush progress.
//!
//! # I/O failures
//!
//! The scheme hot loop is infallible, so the backend latches the first
//! I/O error and keeps simulating on fresh pages; drivers surface the
//! latched error at end of run. A page is only ever *read* from disk if
//! this backend instance flushed it earlier, so stale content from a
//! previous process can never leak into results — resuming against an
//! existing page file is a pure replay that rebuilds the file.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use deuce_crypto::{LineBytes, LINE_BYTES};

use crate::scheme::{LineMut, LineRef, LineScheme};
use crate::store::backend::{
    get_u64, put_u64, PageBackend, StateCodec, StorePageStats, SLOTS_PER_PAGE,
};

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// The page file's leading descriptor. Fixed 32-byte encoding, pinned
/// by `tests/state_sizes.rs`; a layout change must bump `VERSION`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageHeader {
    /// File magic, [`PageHeader::MAGIC`].
    pub magic: u32,
    /// Layout version, [`PageHeader::VERSION`].
    pub version: u16,
    /// Slots per page ([`SLOTS_PER_PAGE`]).
    pub slots_per_page: u16,
    /// Stored-image bytes per slot ([`LINE_BYTES`]).
    pub line_bytes: u32,
    /// Encoded state bytes per slot.
    pub state_bytes: u32,
    /// 1 if pages carry a shadow segment, 0 otherwise.
    pub shadow: u32,
}

impl PageHeader {
    /// `"DEUC"` little-endian.
    pub const MAGIC: u32 = u32::from_le_bytes(*b"DEUC");
    /// Current on-disk layout version.
    pub const VERSION: u16 = 1;
    /// Encoded header size in bytes (trailing bytes reserved as zero).
    pub const BYTES: usize = 32;

    /// Encodes the header into its fixed 32-byte form.
    #[must_use]
    pub fn encode(&self) -> [u8; Self::BYTES] {
        let mut out = [0u8; Self::BYTES];
        out[0..4].copy_from_slice(&self.magic.to_le_bytes());
        out[4..6].copy_from_slice(&self.version.to_le_bytes());
        out[6..8].copy_from_slice(&self.slots_per_page.to_le_bytes());
        out[8..12].copy_from_slice(&self.line_bytes.to_le_bytes());
        out[12..16].copy_from_slice(&self.state_bytes.to_le_bytes());
        out[16..20].copy_from_slice(&self.shadow.to_le_bytes());
        out
    }

    /// Decodes a header from its fixed 32-byte form.
    #[must_use]
    pub fn decode(bytes: &[u8; Self::BYTES]) -> Self {
        let word = |r: core::ops::Range<usize>| {
            let mut w = [0u8; 4];
            w.copy_from_slice(&bytes[r]);
            u32::from_le_bytes(w)
        };
        let half = |r: core::ops::Range<usize>| {
            let mut h = [0u8; 2];
            h.copy_from_slice(&bytes[r]);
            u16::from_le_bytes(h)
        };
        Self {
            magic: word(0..4),
            version: half(4..6),
            slots_per_page: half(6..8),
            line_bytes: word(8..12),
            state_bytes: word(12..16),
            shadow: word(16..20),
        }
    }
}

/// Slot-layout constants shared by the cache and the disk format.
#[derive(Debug, Clone, Copy)]
struct PageLayout {
    needs_shadow: bool,
    /// Encoded state bytes per slot.
    state_bytes: usize,
    /// In-RAM state bytes per slot (`size_of::<S::State>()`).
    state_ram_bytes: usize,
}

impl PageLayout {
    /// On-disk bytes of one page record.
    fn page_disk_bytes(&self) -> usize {
        let shadow = if self.needs_shadow { LINE_BYTES } else { 0 };
        8 + SLOTS_PER_PAGE * (LINE_BYTES + shadow + self.state_bytes)
    }

    /// RAM bytes one materialised slot occupies.
    fn per_line_ram_bytes(&self) -> u64 {
        let shadow = if self.needs_shadow { LINE_BYTES } else { 0 };
        (LINE_BYTES + shadow + self.state_ram_bytes) as u64
    }

    /// Byte offset of page `index` in the file.
    fn page_offset(&self, index: u32) -> u64 {
        PageHeader::BYTES as u64 + u64::from(index) * self.page_disk_bytes() as u64
    }
}

/// One resident page: the SoA segments of [`SLOTS_PER_PAGE`] slots plus
/// the presence bitmap.
#[derive(Debug)]
struct ResidentPage<S: LineScheme> {
    /// Bit `i` set iff slot `i` of this page has been materialised.
    present: u64,
    stored: Vec<LineBytes>,
    /// Empty when the scheme keeps no shadow.
    shadow: Vec<LineBytes>,
    state: Vec<S::State>,
    dirty: bool,
    /// LRU tick of the most recent pin.
    tick: u64,
}

#[derive(Debug)]
struct PagedInner<S: LineScheme> {
    file: File,
    layout: PageLayout,
    /// Resident pages by page index.
    resident: HashMap<u32, ResidentPage<S>>,
    /// Exact LRU order: tick -> page index (ticks are unique).
    lru: BTreeMap<u64, u32>,
    tick: u64,
    /// Resident-page capacity (>= 1).
    capacity: usize,
    /// Total slots pushed (dense; the next slot id).
    len: usize,
    /// Materialised slots currently resident.
    resident_slots: u64,
    peak_resident_slots: u64,
    /// Pages THIS instance wrote to disk — the only pages ever read
    /// back (stale content from older processes is never trusted).
    flushed: HashSet<u32>,
    flushed_pages: u64,
    /// Running FNV-1a over flushed page bytes, in flush order.
    flush_fp: u64,
    page_faults: u64,
    page_evictions: u64,
    /// Reusable encode/decode buffer, one page record long.
    buf: Vec<u8>,
    error: Option<String>,
}

/// Page index and intra-page offset of a dense slot id.
fn locate(slot: u32) -> (u32, usize) {
    (
        slot / SLOTS_PER_PAGE as u32,
        (slot as usize) % SLOTS_PER_PAGE,
    )
}

impl<S: LineScheme> PagedInner<S>
where
    S::State: StateCodec,
{
    fn fresh_page(layout: &PageLayout) -> ResidentPage<S> {
        let zeros = vec![0u8; S::State::ENCODED_BYTES.max(1)];
        ResidentPage {
            present: 0,
            stored: vec![[0u8; LINE_BYTES]; SLOTS_PER_PAGE],
            shadow: if layout.needs_shadow {
                vec![[0u8; LINE_BYTES]; SLOTS_PER_PAGE]
            } else {
                Vec::new()
            },
            state: (0..SLOTS_PER_PAGE)
                .map(|_| S::State::decode(&zeros[..S::State::ENCODED_BYTES]))
                .collect(),
            dirty: false,
            tick: 0,
        }
    }

    fn note_error(&mut self, context: &str, err: &std::io::Error) {
        if self.error.is_none() {
            self.error = Some(format!("{context}: {err}"));
        }
    }

    /// Ensures `page` is resident and refreshes its LRU tick.
    fn pin(&mut self, page: u32) {
        self.tick += 1;
        let tick = self.tick;
        if let Some(r) = self.resident.get_mut(&page) {
            self.lru.remove(&r.tick);
            r.tick = tick;
            self.lru.insert(tick, page);
            return;
        }
        self.page_faults += 1;
        while self.resident.len() >= self.capacity {
            self.evict_lru();
        }
        let mut r = if self.flushed.contains(&page) {
            self.load(page)
        } else {
            Self::fresh_page(&self.layout)
        };
        r.tick = tick;
        self.resident_slots += u64::from(r.present.count_ones());
        self.peak_resident_slots = self.peak_resident_slots.max(self.resident_slots);
        self.lru.insert(tick, page);
        self.resident.insert(page, r);
    }

    fn evict_lru(&mut self) {
        let Some((_, page)) = self.lru.pop_first() else {
            return;
        };
        let r = self.resident.remove(&page).expect("LRU entries are resident");
        self.resident_slots -= u64::from(r.present.count_ones());
        self.page_evictions += 1;
        if r.dirty {
            self.write_back(page, &r);
        }
    }

    /// Encodes `r` into the scratch buffer.
    fn encode_page(&mut self, r: &ResidentPage<S>) {
        let disk = self.layout.page_disk_bytes();
        self.buf.resize(disk, 0);
        self.buf.fill(0);
        put_u64(&mut self.buf, 0, r.present);
        let mut at = 8;
        for stored in &r.stored {
            self.buf[at..at + LINE_BYTES].copy_from_slice(stored);
            at += LINE_BYTES;
        }
        if self.layout.needs_shadow {
            for shadow in &r.shadow {
                self.buf[at..at + LINE_BYTES].copy_from_slice(shadow);
                at += LINE_BYTES;
            }
        }
        let sb = S::State::ENCODED_BYTES;
        for (i, state) in r.state.iter().enumerate() {
            if r.present & (1u64 << i) != 0 {
                state.encode(&mut self.buf[at..at + sb]);
            }
            at += sb;
        }
    }

    fn write_back(&mut self, page: u32, r: &ResidentPage<S>) {
        self.encode_page(r);
        let mut fp = self.flush_fp;
        for &b in &self.buf {
            fp = (fp ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
        let offset = self.layout.page_offset(page);
        let outcome = self
            .file
            .seek(SeekFrom::Start(offset))
            .and_then(|_| self.file.write_all(&self.buf));
        if let Err(err) = outcome {
            self.note_error("page write-back failed", &err);
            return;
        }
        self.flush_fp = fp;
        self.flushed.insert(page);
        self.flushed_pages += 1;
    }

    fn load(&mut self, page: u32) -> ResidentPage<S> {
        let disk = self.layout.page_disk_bytes();
        self.buf.resize(disk, 0);
        let offset = self.layout.page_offset(page);
        let outcome = self
            .file
            .seek(SeekFrom::Start(offset))
            .and_then(|_| self.file.read_exact(&mut self.buf));
        if let Err(err) = outcome {
            self.note_error("page load failed", &err);
            return Self::fresh_page(&self.layout);
        }
        let present = get_u64(&self.buf, 0);
        let mut r = Self::fresh_page(&self.layout);
        r.present = present;
        let mut at = 8;
        for stored in &mut r.stored {
            stored.copy_from_slice(&self.buf[at..at + LINE_BYTES]);
            at += LINE_BYTES;
        }
        if self.layout.needs_shadow {
            for shadow in &mut r.shadow {
                shadow.copy_from_slice(&self.buf[at..at + LINE_BYTES]);
                at += LINE_BYTES;
            }
        }
        let sb = S::State::ENCODED_BYTES;
        for state in &mut r.state {
            *state = S::State::decode(&self.buf[at..at + sb]);
            at += sb;
        }
        r
    }

    /// Writes every dirty resident page back, in page-index order.
    fn flush_dirty(&mut self) {
        let mut dirty: Vec<u32> = self
            .resident
            .iter()
            .filter(|(_, r)| r.dirty)
            .map(|(&page, _)| page)
            .collect();
        dirty.sort_unstable();
        for page in dirty {
            let mut r = self.resident.remove(&page).expect("collected above");
            self.write_back(page, &r);
            r.dirty = false;
            self.resident.insert(page, r);
        }
    }
}

/// An out-of-core [`PageBackend`]: a configurable-capacity LRU cache of
/// resident pages over a page file, with write-back eviction of dirty
/// pages. Observably bit-identical to [`crate::ArenaBackend`] for the
/// same call sequence — only residency accounting and paging statistics
/// differ.
#[derive(Debug)]
pub struct FilePageBackend<S: LineScheme> {
    /// Scratch shadow for shadowless schemes (outside the cell so the
    /// mutable pin can lend it alongside page segments).
    scratch: LineBytes,
    /// Interior mutability so the shared-access path (`read`/`image`,
    /// which take `&self`) can still fault pages in.
    inner: RefCell<PagedInner<S>>,
}

impl<S: LineScheme> FilePageBackend<S>
where
    S::State: StateCodec,
{
    /// Creates (truncating) the page file at `path` with room for
    /// `resident_pages` resident pages (clamped to at least 1).
    /// `needs_shadow` is the scheme's shadow flag
    /// ([`LineScheme::needs_shadow`]) and fixes the page layout.
    ///
    /// An existing file is truncated: correctness never depends on
    /// prior content because only pages flushed by this instance are
    /// ever read back. Resuming a run against an existing page file
    /// therefore replays from the start and rebuilds it.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the file cannot be created
    /// or the header cannot be written.
    pub fn create(
        path: &Path,
        resident_pages: usize,
        needs_shadow: bool,
    ) -> std::io::Result<Self> {
        let layout = PageLayout {
            needs_shadow,
            state_bytes: S::State::ENCODED_BYTES,
            state_ram_bytes: core::mem::size_of::<S::State>(),
        };
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        let header = PageHeader {
            magic: PageHeader::MAGIC,
            version: PageHeader::VERSION,
            slots_per_page: SLOTS_PER_PAGE as u16,
            line_bytes: LINE_BYTES as u32,
            state_bytes: layout.state_bytes as u32,
            shadow: u32::from(needs_shadow),
        };
        file.write_all(&header.encode())?;
        Ok(Self {
            scratch: [0u8; LINE_BYTES],
            inner: RefCell::new(PagedInner {
                file,
                layout,
                resident: HashMap::new(),
                lru: BTreeMap::new(),
                tick: 0,
                capacity: resident_pages.max(1),
                len: 0,
                resident_slots: 0,
                peak_resident_slots: 0,
                flushed: HashSet::new(),
                flushed_pages: 0,
                flush_fp: FNV_OFFSET,
                page_faults: 0,
                page_evictions: 0,
                buf: Vec::new(),
                error: None,
            }),
        })
    }
}

impl<S: LineScheme> PageBackend<S> for FilePageBackend<S>
where
    S::State: StateCodec,
{
    fn push(&mut self, stored: &LineBytes, shadow: Option<&LineBytes>, state: S::State) -> u32 {
        let inner = self.inner.get_mut();
        let slot = u32::try_from(inner.len).expect("more than u32::MAX lines");
        let (page, off) = locate(slot);
        inner.pin(page);
        let r = inner.resident.get_mut(&page).expect("just pinned");
        r.stored[off] = *stored;
        if let Some(shadow) = shadow {
            r.shadow[off] = *shadow;
        }
        r.state[off] = state;
        r.present |= 1u64 << off;
        r.dirty = true;
        inner.len += 1;
        inner.resident_slots += 1;
        inner.peak_resident_slots = inner.peak_resident_slots.max(inner.resident_slots);
        slot
    }

    fn len(&self) -> usize {
        self.inner.borrow().len
    }

    fn with_slot_mut<T>(&mut self, slot: u32, f: impl FnOnce(LineMut<'_, S::State>) -> T) -> T {
        let Self { scratch, inner } = self;
        let inner = inner.get_mut();
        let (page, off) = locate(slot);
        inner.pin(page);
        let needs_shadow = inner.layout.needs_shadow;
        let r = inner.resident.get_mut(&page).expect("just pinned");
        r.dirty = true;
        let shadow = if needs_shadow {
            &mut r.shadow[off]
        } else {
            scratch
        };
        f(LineMut {
            stored: &mut r.stored[off],
            shadow,
            state: &mut r.state[off],
        })
    }

    fn with_slot<T>(&self, slot: u32, f: impl FnOnce(LineRef<'_, S::State>) -> T) -> T {
        let mut inner = self.inner.borrow_mut();
        let (page, off) = locate(slot);
        inner.pin(page);
        let r = &inner.resident[&page];
        f(LineRef {
            stored: &r.stored[off],
            state: &r.state[off],
        })
    }

    fn per_line_bytes(&self) -> u64 {
        self.inner.borrow().layout.per_line_ram_bytes()
    }

    fn resident_bytes(&self) -> u64 {
        let inner = self.inner.borrow();
        inner.resident_slots * inner.layout.per_line_ram_bytes()
    }

    fn paging_stats(&self) -> Option<StorePageStats> {
        let inner = self.inner.borrow();
        let per_line = inner.layout.per_line_ram_bytes();
        Some(StorePageStats {
            page_faults: inner.page_faults,
            page_evictions: inner.page_evictions,
            pages_flushed: inner.flushed_pages,
            resident_bytes: inner.resident_slots * per_line,
            peak_resident_bytes: inner.peak_resident_slots * per_line,
        })
    }

    fn flush(&mut self) {
        self.inner.get_mut().flush_dirty();
    }

    fn flush_state(&self) -> (u64, u64) {
        let inner = self.inner.borrow();
        (inner.flushed_pages, inner.flush_fp)
    }

    fn io_error(&self) -> Option<String> {
        self.inner.borrow().error.clone()
    }
}

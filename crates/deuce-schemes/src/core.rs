//! The shared cipher core every scheme builds on: counter state,
//! modified-word tracking, pad application, and dual-pad reads.
//!
//! Each of the paper's schemes is a small state machine over the same
//! counter-mode substrate — bump a counter, fetch a one-time pad, XOR,
//! count flips (§2.4, §4.3). These helpers implement that substrate
//! once, bit-identically to the historical per-scheme copies, so a
//! scheme file only contributes its policy (what to re-encrypt, when).

use std::sync::OnceLock;

use deuce_crypto::{
    xor_into, EpochInterval, LineAddr, LineBytes, OtpEngine, Pad, SecretKey, VirtualCounterPair,
};
use deuce_nvm::MetaBits;

use crate::config::WordSize;

/// Compact per-line counter state: the raw value of a fixed-width
/// wrapping write counter.
///
/// This is [`deuce_crypto::LineCounter`] shrunk to its observable core —
/// the width lives in the scheme parameters (shared by every line) and
/// the wrap generation is dropped because no scheme output depends on it.
///
/// # Examples
///
/// ```
/// use deuce_schemes::CtrState;
///
/// let mut ctr = CtrState::ZERO;
/// assert_eq!(ctr.bump(28), 1); // 0 -> 1 flips one stored bit
/// assert_eq!(ctr.bump(28), 2); // 1 -> 2 flips two
/// assert_eq!(ctr.value(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct CtrState(u64);

impl CtrState {
    /// A counter at zero (every line starts here).
    pub const ZERO: Self = Self(0);

    /// Reconstructs a counter from its raw stored value (the inverse of
    /// [`value`](Self::value); used when decoding persisted line state).
    #[must_use]
    pub fn from_raw(value: u64) -> Self {
        Self(value)
    }

    /// Current counter value.
    #[must_use]
    pub fn value(self) -> u64 {
        self.0
    }

    /// Increments the counter modulo `width_bits`, returning the number
    /// of stored counter bits the transition flipped (the paper reports
    /// counter flips separately from the figure of merit).
    pub fn bump(&mut self, width_bits: u32) -> u32 {
        let mask = width_mask(width_bits);
        let old = self.0;
        self.0 = (self.0 + 1) & mask;
        ((self.0 ^ old) & mask).count_ones()
    }
}

/// The all-ones mask of a `width_bits`-wide counter.
#[must_use]
pub(crate) fn width_mask(width_bits: u32) -> u64 {
    if width_bits == 64 {
        u64::MAX
    } else {
        (1u64 << width_bits) - 1
    }
}

/// Validates a counter width exactly as [`deuce_crypto::LineCounter`]
/// does (the pad input reserves 48 bits for the counter).
pub(crate) fn assert_counter_width(width_bits: u32) {
    assert!(
        (1..=48).contains(&width_bits),
        "counter width {width_bits} out of range 1..=48"
    );
}

/// Marks the tracking bit of every word whose plaintext differs between
/// `shadow` (the previous write's data) and `data` (§4.3.2: modified
/// bits are sticky within an epoch, so bits already set stay set).
pub(crate) fn mark_modified_words(
    modified: &mut MetaBits,
    word_size: WordSize,
    shadow: &LineBytes,
    data: &LineBytes,
) {
    let w = word_size.bytes();
    for word in 0..word_size.words_per_line() {
        let range = word * w..(word + 1) * w;
        if data[range.clone()] != shadow[range] {
            modified.set(word as u32, true);
        }
    }
}

/// Re-encrypts every marked word with the (leading) pad, leaving
/// unmarked words' stored ciphertext untouched (Fig. 6).
pub(crate) fn reencrypt_marked_words(
    stored: &mut LineBytes,
    data: &LineBytes,
    pad: &Pad,
    modified: &MetaBits,
    word_size: WordSize,
) {
    let w = word_size.bytes();
    for word in 0..word_size.words_per_line() {
        if modified.get(word as u32) {
            let range = word * w..(word + 1) * w;
            stored[range.clone()].copy_from_slice(&data[range]);
            xor_into(&mut stored[word * w..(word + 1) * w], pad.word(word, w));
        }
    }
}

/// Decrypts a stored line where each word's tracking bit selects the
/// leading or trailing pad (Fig. 7).
pub(crate) fn dual_pad_read(
    stored: &LineBytes,
    modified: &MetaBits,
    pad_lctr: &Pad,
    pad_tctr: &Pad,
    word_size: WordSize,
) -> LineBytes {
    let w = word_size.bytes();
    let mut out = *stored;
    for word in 0..word_size.words_per_line() {
        let pad = if modified.get(word as u32) {
            pad_lctr.word(word, w)
        } else {
            pad_tctr.word(word, w)
        };
        xor_into(&mut out[word * w..(word + 1) * w], pad);
    }
    out
}

/// Speculative next-epoch pad precompute (the epoch-rollover prefill
/// hook). Called at the end of every epoch-based write: when the line's
/// *next* bump lands on an epoch start — i.e. the next write will
/// re-encrypt the whole line with the pad at `(addr, ctr + 1)` — the
/// pad is generated now and parked in the engine's pad cache, so the
/// rollover's full-line re-encryption finds it warm.
///
/// A no-op when the engine has no pad cache (prefilling into nothing
/// would be pure waste), and always a no-op on *results*: caching only
/// moves AES work earlier, never changes pad bytes.
pub(crate) fn prefill_next_epoch_pad(
    engine: &OtpEngine,
    addr: LineAddr,
    ctr: u64,
    counter_bits: u32,
    epoch: EpochInterval,
) {
    let next = (ctr + 1) & width_mask(counter_bits);
    if VirtualCounterPair::derive(next, epoch).is_epoch_start() {
        engine.prefill_line_pad(addr, next);
    }
}

/// A process-wide engine for schemes that never consult one (plaintext
/// DCW/FNW), letting their engine-less legacy APIs delegate to the
/// shared [`crate::LineScheme`] machinery.
pub(crate) fn null_engine() -> &'static OtpEngine {
    static NULL: OnceLock<OtpEngine> = OnceLock::new();
    NULL.get_or_init(|| OtpEngine::new(&SecretKey::from_seed(0)))
}

/// `addr` placeholder for engine-less wrappers (plaintext schemes never
/// feed the address into any pad).
pub(crate) fn null_addr() -> LineAddr {
    LineAddr::new(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use deuce_crypto::LineCounter;

    /// `CtrState::bump` must replicate `LineCounter::increment` +
    /// `flips_from` exactly, including wrap behaviour.
    #[test]
    fn ctr_state_matches_line_counter() {
        for width in [1u32, 3, 28, 48] {
            let mut reference = LineCounter::new(width);
            let mut compact = CtrState::ZERO;
            for step in 0..40u64 {
                let old = reference.value();
                reference.increment();
                let expected = reference.flips_from(old);
                assert_eq!(compact.bump(width), expected, "width {width} step {step}");
                assert_eq!(compact.value(), reference.value(), "width {width} step {step}");
            }
        }
    }

    #[test]
    fn modified_word_marking_is_sticky() {
        let mut modified = MetaBits::new(32);
        let shadow = [0u8; 64];
        let mut data = [0u8; 64];
        data[0] = 1;
        mark_modified_words(&mut modified, WordSize::Bytes2, &shadow, &data);
        assert_eq!(modified.count_ones(), 1);
        // A later write that reverts word 0 must not clear its bit.
        mark_modified_words(&mut modified, WordSize::Bytes2, &data, &shadow);
        assert_eq!(modified.count_ones(), 1);
    }

    #[test]
    fn next_epoch_prefill_fires_only_at_the_boundary() {
        let engine = OtpEngine::new(&SecretKey::from_seed(1)).with_pad_cache(16);
        let epoch = EpochInterval::new(4).unwrap();
        for ctr in 0..8u64 {
            prefill_next_epoch_pad(&engine, LineAddr::new(5), ctr, 28, epoch);
        }
        // Only ctr 3 and 7 sit one bump short of an epoch start (4, 8).
        let stats = engine.pad_cache_stats().expect("cache attached");
        assert_eq!((stats.prefills, stats.hits, stats.misses), (2, 0, 0));
    }

    #[test]
    fn next_epoch_prefill_respects_counter_wrap() {
        let engine = OtpEngine::new(&SecretKey::from_seed(2)).with_pad_cache(16);
        let epoch = EpochInterval::new(4).unwrap();
        // A 3-bit counter at 7 wraps to 0, which is an epoch start.
        prefill_next_epoch_pad(&engine, LineAddr::new(9), 7, 3, epoch);
        assert_eq!(engine.pad_cache_stats().expect("cache attached").prefills, 1);
        // The wrapped pad is the counter-0 pad, now warm.
        let _ = engine.line_pad(LineAddr::new(9), 0);
        assert_eq!(engine.pad_cache_stats().expect("cache attached").hits, 1);
    }

    #[test]
    fn dual_pad_read_selects_per_word() {
        let lead = Pad::from_bytes([0xAA; 64]);
        let trail = Pad::from_bytes([0x55; 64]);
        let stored = [0u8; 64];
        let mut modified = MetaBits::new(32);
        modified.set(3, true);
        let out = dual_pad_read(&stored, &modified, &lead, &trail, WordSize::Bytes2);
        for (i, b) in out.iter().enumerate() {
            let expected = if (6..8).contains(&i) { 0xAA } else { 0x55 };
            assert_eq!(*b, expected, "byte {i}");
        }
    }
}

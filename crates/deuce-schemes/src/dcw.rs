//! Data Comparison Write baselines: plaintext DCW and counter-mode
//! encrypted DCW (the paper's secure baseline).

use deuce_crypto::{LineAddr, LineBytes, OtpEngine};
use deuce_nvm::{LineImage, MetaBits};

use crate::core::{assert_counter_width, null_addr, null_engine, CtrState};
use crate::scheme::{LineMut, LineRef, LineScheme, SchemeCell};
use crate::WriteOutcome;

/// Plaintext Data Comparison Write \[7\]: store the data verbatim, flip
/// only the bits that changed. This is the unencrypted reference (12.4%
/// average flips in Fig. 5). Per-line state: none.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct UnencryptedDcwScheme;

impl LineScheme for UnencryptedDcwScheme {
    type State = ();

    fn needs_shadow(&self) -> bool {
        false
    }

    fn metadata_bits(&self) -> u32 {
        0
    }

    fn init(&self, _engine: &OtpEngine, _addr: LineAddr, initial: &LineBytes) -> (LineBytes, ()) {
        (*initial, ())
    }

    fn write(
        &self,
        _engine: &OtpEngine,
        _addr: LineAddr,
        line: LineMut<'_, ()>,
        data: &LineBytes,
    ) -> WriteOutcome {
        let old_image = LineImage::new(*line.stored, MetaBits::new(0));
        *line.stored = *data;
        WriteOutcome::from_images(old_image, LineImage::new(*line.stored, MetaBits::new(0)), 0, false)
    }

    fn read(&self, _engine: &OtpEngine, _addr: LineAddr, line: LineRef<'_, ()>) -> LineBytes {
        *line.stored
    }

    fn image(&self, line: LineRef<'_, ()>) -> LineImage {
        LineImage::new(*line.stored, MetaBits::new(0))
    }
}

/// Plaintext memory with Data Comparison Write \[7\]: only the bits that
/// changed are written.
///
/// This wrapper keeps the historical engine-less `write`/`read` API over
/// the shared [`UnencryptedDcwScheme`] core.
#[derive(Debug, Clone)]
pub struct UnencryptedDcwLine {
    cell: SchemeCell<UnencryptedDcwScheme>,
}

impl UnencryptedDcwLine {
    /// Initializes the line with `initial`.
    #[must_use]
    pub fn new(initial: &LineBytes) -> Self {
        Self {
            cell: SchemeCell::with_scheme(UnencryptedDcwScheme, null_engine(), null_addr(), initial),
        }
    }

    /// Writes new data.
    #[must_use]
    pub fn write(&mut self, data: &LineBytes) -> WriteOutcome {
        self.cell.write(null_engine(), data)
    }

    /// Reads the line.
    #[must_use]
    pub fn read(&self) -> LineBytes {
        self.cell.read(null_engine())
    }

    /// The current stored image (no metadata).
    #[must_use]
    pub fn image(&self) -> LineImage {
        self.cell.image()
    }
}

/// Counter-mode encrypted memory (Fig. 2c / §2.4): each write increments
/// the per-line counter and re-encrypts the entire line with a fresh
/// one-time pad. The avalanche effect makes ~50% of the stored bits flip
/// on every write regardless of how little the plaintext changed — the
/// problem DEUCE exists to fix. Per-line state: the counter value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncryptedDcwScheme {
    /// Line-counter width in bits.
    pub counter_bits: u32,
}

impl EncryptedDcwScheme {
    /// Creates the scheme with the given counter width.
    ///
    /// # Panics
    ///
    /// Panics if `counter_bits` is 0 or greater than 48.
    #[must_use]
    pub fn new(counter_bits: u32) -> Self {
        assert_counter_width(counter_bits);
        Self { counter_bits }
    }
}

impl LineScheme for EncryptedDcwScheme {
    type State = CtrState;

    fn needs_shadow(&self) -> bool {
        false
    }

    fn metadata_bits(&self) -> u32 {
        0
    }

    fn init(&self, engine: &OtpEngine, addr: LineAddr, initial: &LineBytes) -> (LineBytes, CtrState) {
        (engine.line_pad(addr, 0).xor(initial), CtrState::ZERO)
    }

    fn write(
        &self,
        engine: &OtpEngine,
        addr: LineAddr,
        line: LineMut<'_, CtrState>,
        data: &LineBytes,
    ) -> WriteOutcome {
        let old_image = LineImage::new(*line.stored, MetaBits::new(0));
        let counter_flips = line.state.bump(self.counter_bits);
        *line.stored = engine.line_pad(addr, line.state.value()).xor(data);
        WriteOutcome::from_images(
            old_image,
            LineImage::new(*line.stored, MetaBits::new(0)),
            counter_flips,
            false,
        )
    }

    fn read(&self, engine: &OtpEngine, addr: LineAddr, line: LineRef<'_, CtrState>) -> LineBytes {
        engine.line_pad(addr, line.state.value()).xor(line.stored)
    }

    fn image(&self, line: LineRef<'_, CtrState>) -> LineImage {
        LineImage::new(*line.stored, MetaBits::new(0))
    }
}

/// One memory line under counter-mode encrypted DCW.
pub type EncryptedDcwLine = SchemeCell<EncryptedDcwScheme>;

impl EncryptedDcwLine {
    /// Initializes the line: `initial` is encrypted at counter 0.
    #[must_use]
    pub fn new(engine: &OtpEngine, addr: LineAddr, initial: &LineBytes, counter_bits: u32) -> Self {
        Self::with_scheme(EncryptedDcwScheme::new(counter_bits), engine, addr, initial)
    }

    /// The current line-counter value.
    #[must_use]
    pub fn counter(&self) -> u64 {
        self.state().value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deuce_crypto::SecretKey;

    #[test]
    fn unencrypted_dcw_counts_exact_flips() {
        let mut line = UnencryptedDcwLine::new(&[0u8; 64]);
        let mut data = [0u8; 64];
        data[0] = 0b111;
        let outcome = line.write(&data);
        assert_eq!(outcome.flips.total(), 3);
        assert_eq!(line.read(), data);
        // Writing identical data flips nothing.
        assert_eq!(line.write(&data).flips.total(), 0);
    }

    #[test]
    fn encrypted_dcw_roundtrip() {
        let engine = OtpEngine::new(&SecretKey::from_seed(5));
        let mut line = EncryptedDcwLine::new(&engine, LineAddr::new(77), &[9u8; 64], 28);
        assert_eq!(line.read(&engine), [9u8; 64]);
        let data = [3u8; 64];
        let _ = line.write(&engine, &data);
        assert_eq!(line.read(&engine), data);
        assert_eq!(line.counter(), 1);
    }

    #[test]
    fn encrypted_dcw_avalanche_near_half() {
        let engine = OtpEngine::new(&SecretKey::from_seed(6));
        let mut line = EncryptedDcwLine::new(&engine, LineAddr::new(1), &[0u8; 64], 28);
        let mut total = 0u64;
        let writes = 2000u64;
        for i in 0..writes {
            let mut data = [0u8; 64];
            data[0] = i as u8; // one byte of logical change
            total += u64::from(line.write(&engine, &data).flips.total());
        }
        let rate = total as f64 / writes as f64 / 512.0;
        assert!((rate - 0.5).abs() < 0.01, "encrypted DCW flip rate {rate}");
    }

    #[test]
    fn encrypted_stored_bits_differ_from_plaintext() {
        let engine = OtpEngine::new(&SecretKey::from_seed(8));
        let line = EncryptedDcwLine::new(&engine, LineAddr::new(2), &[0u8; 64], 28);
        assert_ne!(line.image().data(), &[0u8; 64], "data at rest is encrypted");
    }

    #[test]
    fn counter_flip_accounting() {
        let engine = OtpEngine::new(&SecretKey::from_seed(9));
        let mut line = EncryptedDcwLine::new(&engine, LineAddr::new(3), &[0u8; 64], 28);
        let o1 = line.write(&engine, &[1u8; 64]);
        assert_eq!(o1.counter_flips, 1); // 0 -> 1
        let o2 = line.write(&engine, &[2u8; 64]);
        assert_eq!(o2.counter_flips, 2); // 1 -> 2 (0b01 -> 0b10)
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_counter_width_rejected() {
        let _ = EncryptedDcwScheme::new(0);
    }
}

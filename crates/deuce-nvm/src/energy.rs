//! PCM energy model for the Fig. 17 energy/power/EDP studies.

/// Energy parameters. PCM write energy is dominated by the RESET/SET
/// current per programmed cell, so write energy scales with the number of
/// bit flips; reads sense the whole line at much lower energy.
///
/// Absolute joule values are not reproducible from the paper (it reports
/// only normalized results), so these are representative per-event costs
/// from the PCM literature; every figure we reproduce is a *ratio* between
/// two configurations, which depends only on the write/read energy ratio.
///
/// # Examples
///
/// ```
/// use deuce_nvm::EnergyParams;
///
/// let e = EnergyParams::default();
/// let energy = e.write_energy_pj(128) + e.read_energy_pj();
/// assert!(energy > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyParams {
    /// Energy per bit flip (picojoules). ~13.5 pJ/set-bit is typical of
    /// PCM prototypes.
    pub write_pj_per_bit: f64,
    /// Energy per line read (picojoules), covering sensing and I/O.
    pub read_pj_per_line: f64,
    /// Static/background power of the PCM subsystem (milliwatts),
    /// accumulated over execution time.
    pub background_mw: f64,
}

impl EnergyParams {
    /// Representative PCM energy configuration.
    pub const PAPER: Self = Self {
        write_pj_per_bit: 13.5,
        read_pj_per_line: 180.0,
        background_mw: 15.0,
    };

    /// Energy for a write that flips `bits` cells.
    #[must_use]
    pub fn write_energy_pj(&self, bits: u32) -> f64 {
        self.write_pj_per_bit * f64::from(bits)
    }

    /// Energy for one line read.
    #[must_use]
    pub fn read_energy_pj(&self) -> f64 {
        self.read_pj_per_line
    }

    /// Background energy over an interval.
    #[must_use]
    pub fn background_energy_pj(&self, duration_ns: u64) -> f64 {
        // mW * ns = pJ
        self.background_mw * duration_ns as f64
    }
}

impl Default for EnergyParams {
    fn default() -> Self {
        Self::PAPER
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_energy_scales_with_flips() {
        let e = EnergyParams::default();
        assert!(e.write_energy_pj(256) > e.write_energy_pj(64));
        assert_eq!(e.write_energy_pj(0), 0.0);
    }

    #[test]
    fn background_units() {
        let e = EnergyParams { background_mw: 1.0, ..EnergyParams::default() };
        // 1 mW for 1000 ns = 1000 pJ
        assert!((e.background_energy_pj(1000) - 1000.0).abs() < 1e-9);
    }
}

//! Runtime backend selection for the block cipher.
//!
//! Three tiers implement the same cipher, bit-identically:
//!
//! - [`AesBackend::Reference`] — the byte-oriented FIPS-197 path, the
//!   auditable oracle.
//! - [`AesBackend::Ttable`] — the const-built T-table path, portable to
//!   every architecture.
//! - [`AesBackend::Hw`] — hardware AES rounds (AES-NI on x86_64,
//!   NEON/AES on aarch64), available only where the CPU advertises the
//!   feature.
//!
//! Selection happens once per process: [`default_backend`] probes the
//! CPU via `std::arch` feature detection (no external crates) and picks
//! the fastest available tier, unless the `DEUCE_AES_FORCE` environment
//! variable pins one of `reference`, `ttable` or `hw` — the hook the
//! differential CI tiers and the forced-reference end-to-end check use.
//! Individual cipher instances can still override the process default
//! through [`crate::Aes::with_backend`].

use std::sync::OnceLock;

/// Environment variable pinning the process-wide default backend.
pub const FORCE_ENV: &str = "DEUCE_AES_FORCE";

/// One implementation tier of the block cipher.
///
/// Every tier produces bit-identical ciphertext; they differ only in
/// throughput and availability.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AesBackend {
    /// Byte-oriented FIPS-197 reference path (the correctness oracle).
    Reference,
    /// Const-built T-table path: portable fallback, always available.
    #[default]
    Ttable,
    /// Hardware AES rounds via `std::arch` intrinsics; requires CPU
    /// support (AES-NI / NEON-AES) detected at runtime.
    Hw,
}

impl AesBackend {
    /// Every tier, fastest last (the order [`default_backend`] prefers).
    pub const ALL: [AesBackend; 3] = [AesBackend::Reference, AesBackend::Ttable, AesBackend::Hw];

    /// Stable lowercase name, matching the `DEUCE_AES_FORCE` tokens.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            AesBackend::Reference => "reference",
            AesBackend::Ttable => "ttable",
            AesBackend::Hw => "hw",
        }
    }

    /// Parses a `DEUCE_AES_FORCE` token.
    #[must_use]
    pub fn parse(token: &str) -> Option<Self> {
        match token {
            "reference" => Some(AesBackend::Reference),
            "ttable" => Some(AesBackend::Ttable),
            "hw" => Some(AesBackend::Hw),
            _ => None,
        }
    }

    /// Whether this tier can run on the current host. The software
    /// tiers always can; [`AesBackend::Hw`] needs CPU support.
    #[must_use]
    pub fn is_available(self) -> bool {
        match self {
            AesBackend::Reference | AesBackend::Ttable => true,
            AesBackend::Hw => hw_available(),
        }
    }
}

impl core::fmt::Display for AesBackend {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// Whether the CPU exposes hardware AES rounds (AES-NI on x86_64,
/// NEON/AES on aarch64). Always `false` on other architectures.
#[must_use]
pub fn hw_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("aes")
    }
    #[cfg(target_arch = "aarch64")]
    {
        std::arch::is_aarch64_feature_detected!("aes")
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        false
    }
}

/// The tiers runnable on this host, slowest first.
#[must_use]
pub fn available_backends() -> &'static [AesBackend] {
    if hw_available() {
        &AesBackend::ALL
    } else {
        &[AesBackend::Reference, AesBackend::Ttable]
    }
}

/// The process-wide default backend: the `DEUCE_AES_FORCE` override if
/// set, otherwise the fastest tier the CPU supports. Resolved once and
/// cached — every [`crate::Aes::new`] after the first sees the same
/// answer.
///
/// # Panics
///
/// Panics if `DEUCE_AES_FORCE` names an unknown tier, or forces `hw` on
/// a host without hardware AES. A forced tier that silently fell back
/// would invalidate what the differential CI runs claim to cover.
#[must_use]
pub fn default_backend() -> AesBackend {
    static CHOICE: OnceLock<AesBackend> = OnceLock::new();
    *CHOICE.get_or_init(|| match std::env::var(FORCE_ENV) {
        Ok(token) => {
            let backend = AesBackend::parse(&token).unwrap_or_else(|| {
                panic!("{FORCE_ENV}={token}: unknown tier (expected reference, ttable or hw)")
            });
            assert!(
                backend.is_available(),
                "{FORCE_ENV}={token}: hardware AES is not available on this host"
            );
            backend
        }
        Err(_) => {
            if hw_available() {
                AesBackend::Hw
            } else {
                AesBackend::Ttable
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip_through_parse() {
        for backend in AesBackend::ALL {
            assert_eq!(AesBackend::parse(backend.name()), Some(backend));
            assert_eq!(backend.to_string(), backend.name());
        }
        assert_eq!(AesBackend::parse("neon"), None);
        assert_eq!(AesBackend::parse(""), None);
    }

    #[test]
    fn software_tiers_are_always_available() {
        assert!(AesBackend::Reference.is_available());
        assert!(AesBackend::Ttable.is_available());
        assert_eq!(AesBackend::Hw.is_available(), hw_available());
    }

    #[test]
    fn available_backends_track_hw_detection() {
        let tiers = available_backends();
        assert!(tiers.starts_with(&[AesBackend::Reference, AesBackend::Ttable]));
        assert_eq!(tiers.contains(&AesBackend::Hw), hw_available());
    }

    #[test]
    fn default_backend_is_available_and_stable() {
        let first = default_backend();
        assert!(first.is_available());
        assert_eq!(default_backend(), first, "resolution must be cached");
    }
}

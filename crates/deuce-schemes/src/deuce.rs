//! Dual Counter Encryption (DEUCE) — the paper's contribution (§4).
//!
//! DEUCE keeps one stored line counter but derives two *virtual* counters
//! from it: the Leading Counter (LCTR, the counter itself) and the
//! Trailing Counter (TCTR, the counter with its in-epoch LSBs masked).
//! One *modified bit* per word records whether the word has changed since
//! the start of the current epoch:
//!
//! - At an **epoch start** (counter divisible by the epoch interval) the
//!   whole line re-encrypts with the LCTR pad and all modified bits reset.
//! - On every other write, all words modified at least once this epoch
//!   re-encrypt with the fresh LCTR pad; unmodified words keep their
//!   stored ciphertext (still decryptable with the TCTR pad).
//!
//! Since a typical writeback modifies only a few words, most of the line
//! is left untouched, cutting bit flips from 50% to ~24% at a cost of 32
//! metadata bits per line.

use deuce_crypto::{EpochInterval, LineAddr, LineBytes, OtpEngine, VirtualCounterPair};
use deuce_nvm::{LineImage, MetaBits};

use crate::config::WordSize;
use crate::core::{
    assert_counter_width, dual_pad_read, mark_modified_words, prefill_next_epoch_pad,
    reencrypt_marked_words, CtrState,
};
use crate::scheme::{LineMut, LineRef, LineScheme, SchemeCell};
use crate::WriteOutcome;

/// Per-line DEUCE state: the raw line counter plus the raw per-word
/// modified bits (reset at each epoch start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DeuceState {
    /// The line counter.
    pub ctr: CtrState,
    /// Raw per-word modified bits.
    pub modified: u64,
}

/// The DEUCE scheme parameters shared by every line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeuceScheme {
    /// Re-encryption word granularity.
    pub word_size: WordSize,
    /// Epoch interval (full re-encryption period).
    pub epoch: EpochInterval,
    /// Line-counter width in bits.
    pub counter_bits: u32,
}

impl DeuceScheme {
    /// Creates the scheme.
    ///
    /// # Panics
    ///
    /// Panics if `counter_bits` is 0 or greater than 48.
    #[must_use]
    pub fn new(word_size: WordSize, epoch: EpochInterval, counter_bits: u32) -> Self {
        assert_counter_width(counter_bits);
        Self {
            word_size,
            epoch,
            counter_bits,
        }
    }

    fn modified_bits(self, state: &DeuceState) -> MetaBits {
        MetaBits::from_raw(state.modified, self.word_size.tracking_bits())
    }
}

impl LineScheme for DeuceScheme {
    type State = DeuceState;

    fn needs_shadow(&self) -> bool {
        true
    }

    fn metadata_bits(&self) -> u32 {
        self.word_size.tracking_bits()
    }

    fn init(&self, engine: &OtpEngine, addr: LineAddr, initial: &LineBytes) -> (LineBytes, DeuceState) {
        (engine.line_pad(addr, 0).xor(initial), DeuceState::default())
    }

    fn write(
        &self,
        engine: &OtpEngine,
        addr: LineAddr,
        line: LineMut<'_, DeuceState>,
        data: &LineBytes,
    ) -> WriteOutcome {
        let mut modified = self.modified_bits(line.state);
        let old_image = LineImage::new(*line.stored, modified);
        let counter_flips = line.state.ctr.bump(self.counter_bits);
        let v = VirtualCounterPair::derive(line.state.ctr.value(), self.epoch);

        let epoch_started = v.is_epoch_start();
        if epoch_started {
            // Full-line re-encryption; modified bits reset.
            *line.stored = engine.line_pad(addr, v.lctr()).xor(data);
            modified.clear();
        } else {
            // Mark words changed by *this* write, then re-encrypt every
            // word modified at any point this epoch with the fresh
            // leading pad (Fig. 6: previously modified words re-encrypt
            // on every write).
            mark_modified_words(&mut modified, self.word_size, line.shadow, data);
            let pad = engine.line_pad(addr, v.lctr());
            reencrypt_marked_words(line.stored, data, &pad, &modified, self.word_size);
        }
        line.state.modified = modified.raw();
        *line.shadow = *data;
        // Overlap pad generation with scheduling: if the next write to
        // this line will roll the epoch, park its full-line pad in the
        // cache now.
        prefill_next_epoch_pad(engine, addr, line.state.ctr.value(), self.counter_bits, self.epoch);
        WriteOutcome::from_images(
            old_image,
            LineImage::new(*line.stored, modified),
            counter_flips,
            epoch_started,
        )
    }

    fn read(&self, engine: &OtpEngine, addr: LineAddr, line: LineRef<'_, DeuceState>) -> LineBytes {
        let v = VirtualCounterPair::derive(line.state.ctr.value(), self.epoch);
        let (pad_lctr, pad_tctr) = engine.line_pad_pair(addr, v.lctr(), v.tctr());
        dual_pad_read(
            line.stored,
            &self.modified_bits(line.state),
            &pad_lctr,
            &pad_tctr,
            self.word_size,
        )
    }

    fn image(&self, line: LineRef<'_, DeuceState>) -> LineImage {
        LineImage::new(*line.stored, self.modified_bits(line.state))
    }
}

/// One memory line under DEUCE.
///
/// # Examples
///
/// ```
/// use deuce_crypto::{EpochInterval, LineAddr, OtpEngine, SecretKey};
/// use deuce_schemes::{DeuceLine, WordSize};
///
/// let engine = OtpEngine::new(&SecretKey::from_seed(0));
/// let mut line = DeuceLine::new(
///     &engine,
///     LineAddr::new(4),
///     &[0u8; 64],
///     WordSize::Bytes2,
///     EpochInterval::DEFAULT,
///     28,
/// );
/// let mut data = [0u8; 64];
/// data[0] = 1;
/// let outcome = line.write(&engine, &data);
/// assert_eq!(line.read(&engine), data);
/// assert_eq!(line.modified_words(), 1);
/// ```
pub type DeuceLine = SchemeCell<DeuceScheme>;

impl DeuceLine {
    /// Initializes the line: `initial` is encrypted in full at counter 0
    /// (which is an epoch start, so all modified bits are clear).
    #[must_use]
    pub fn new(
        engine: &OtpEngine,
        addr: LineAddr,
        initial: &LineBytes,
        word_size: WordSize,
        epoch: EpochInterval,
        counter_bits: u32,
    ) -> Self {
        Self::with_scheme(
            DeuceScheme::new(word_size, epoch, counter_bits),
            engine,
            addr,
            initial,
        )
    }

    /// Number of words currently marked modified this epoch.
    #[must_use]
    pub fn modified_words(&self) -> u32 {
        self.scheme().modified_bits(self.state()).count_ones()
    }

    /// Current line-counter value.
    #[must_use]
    pub fn counter(&self) -> u64 {
        self.state().ctr.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deuce_crypto::SecretKey;

    fn line(engine: &OtpEngine, epoch: u64) -> DeuceLine {
        DeuceLine::new(
            engine,
            LineAddr::new(12),
            &[0u8; 64],
            WordSize::Bytes2,
            EpochInterval::new(epoch).unwrap(),
            28,
        )
    }

    #[test]
    fn read_returns_latest_write_always() {
        let engine = OtpEngine::new(&SecretKey::from_seed(1));
        let mut l = line(&engine, 4);
        for i in 0..20u8 {
            let mut data = [0u8; 64];
            data[usize::from(i % 8) * 2] = i + 1;
            data[33] = i.wrapping_mul(7);
            let _ = l.write(&engine, &data);
            assert_eq!(l.read(&engine), data, "after write {i}");
        }
    }

    #[test]
    fn single_word_write_flips_few_bits() {
        let engine = OtpEngine::new(&SecretKey::from_seed(2));
        let mut l = line(&engine, 32);
        let mut data = [0u8; 64];
        data[0] = 0xFF;
        let outcome = l.write(&engine, &data);
        // One 16-bit word re-encrypted (expected ~8 flips) + 1 modified
        // bit. Bound generously: 16 data + 1 meta.
        assert!(outcome.flips.total() <= 17, "flips = {}", outcome.flips.total());
        assert!(outcome.flips.meta == 1);
        assert!(!outcome.epoch_started);
    }

    #[test]
    fn unmodified_words_do_not_flip_between_epochs() {
        let engine = OtpEngine::new(&SecretKey::from_seed(3));
        let mut l = line(&engine, 32);
        let mut data = [0u8; 64];
        for i in 1..31u8 {
            data[0] = i;
            let outcome = l.write(&engine, &data);
            // Only word 0 is ever modified; its 16 stored bits plus the
            // single metadata bit are the only candidates.
            assert!(outcome.flips.total() <= 17, "write {i}: {}", outcome.flips.total());
            let region: Vec<u32> = outcome
                .old_image
                .changed_bits(&outcome.new_image)
                .collect();
            assert!(
                region.iter().all(|&b| b < 16 || b == 512),
                "write {i} touched bits outside word 0: {region:?}"
            );
        }
    }

    #[test]
    fn epoch_start_reencrypts_everything_and_clears_bits() {
        let engine = OtpEngine::new(&SecretKey::from_seed(4));
        let mut l = line(&engine, 4);
        let mut data = [0u8; 64];
        for i in 1..4u8 {
            data[0] = i;
            let o = l.write(&engine, &data);
            assert!(!o.epoch_started);
        }
        assert_eq!(l.modified_words(), 1);
        data[0] = 42;
        let o = l.write(&engine, &data); // counter reaches 4: epoch start
        assert!(o.epoch_started);
        assert_eq!(l.modified_words(), 0);
        // Full re-encryption flips ~half the bits.
        assert!(o.flips.data > 180, "epoch flips = {}", o.flips.data);
        assert_eq!(l.read(&engine), data);
    }

    #[test]
    fn previously_modified_words_reencrypt_every_write() {
        // Figure 6: W1 modified at ctr 1 keeps re-encrypting at ctr 2, 3.
        let engine = OtpEngine::new(&SecretKey::from_seed(5));
        let mut l = line(&engine, 32);
        let mut data = [0u8; 64];
        data[0] = 1; // word 0
        let _ = l.write(&engine, &data);
        let stored_word0_after_w1 = l.image().data()[..2].to_vec();
        data[2] = 2; // word 1; word 0 unchanged logically
        let o = l.write(&engine, &data);
        let stored_word0_after_w2 = l.image().data()[..2].to_vec();
        assert_ne!(
            stored_word0_after_w1, stored_word0_after_w2,
            "modified word 0 must re-encrypt with the new LCTR"
        );
        assert_eq!(l.modified_words(), 2);
        assert_eq!(l.read(&engine), data);
        assert!(o.flips.total() <= 34);
    }

    #[test]
    fn word_that_reverts_stays_modified() {
        let engine = OtpEngine::new(&SecretKey::from_seed(6));
        let mut l = line(&engine, 32);
        let mut data = [0u8; 64];
        data[0] = 9;
        let _ = l.write(&engine, &data);
        data[0] = 0; // revert to the epoch-start value
        let _ = l.write(&engine, &data);
        assert_eq!(l.modified_words(), 1, "modified bit is sticky within the epoch");
        assert_eq!(l.read(&engine), data);
    }

    #[test]
    fn dense_writes_behave_like_full_reencryption() {
        let engine = OtpEngine::new(&SecretKey::from_seed(7));
        let mut l = line(&engine, 32);
        let mut total = 0u64;
        let writes = 400u64;
        for i in 0..writes {
            let mut data = [0u8; 64];
            for (j, b) in data.iter_mut().enumerate() {
                *b = (i as u8).wrapping_mul(j as u8).wrapping_add(i as u8);
            }
            total += u64::from(l.write(&engine, &data).flips.total());
            assert_eq!(l.read(&engine), data);
        }
        let rate = total as f64 / writes as f64 / 512.0;
        assert!(rate > 0.45, "dense writes should approach 50%, got {rate}");
    }

    #[test]
    fn sparse_stable_footprint_is_cheap() {
        // The libquantum-like case: the same word written over and over.
        let engine = OtpEngine::new(&SecretKey::from_seed(8));
        let mut l = line(&engine, 32);
        let mut total = 0u64;
        let writes = 320u64;
        for i in 0..writes {
            let mut data = [0u8; 64];
            data[0] = (i + 1) as u8;
            total += u64::from(l.write(&engine, &data).flips.total());
        }
        let rate = total as f64 / writes as f64 / 512.0;
        // 31 of 32 writes touch ~8 bits (1 word), 1 of 32 writes ~256.
        // Expected ~ (31*8 + 256)/32 / 512 ≈ 3.1%.
        assert!(rate < 0.06, "sparse stable footprint rate {rate}");
    }

    #[test]
    fn word_size_granularity_respected() {
        let engine = OtpEngine::new(&SecretKey::from_seed(9));
        for ws in [WordSize::Bytes1, WordSize::Bytes2, WordSize::Bytes4, WordSize::Bytes8] {
            let mut l = DeuceLine::new(
                &engine,
                LineAddr::new(1),
                &[0u8; 64],
                ws,
                EpochInterval::DEFAULT,
                28,
            );
            let mut data = [0u8; 64];
            data[0] = 1; // first word only
            let o = l.write(&engine, &data);
            let max_bits = ws.bytes() as u32 * 8 + 1;
            assert!(
                o.flips.total() <= max_bits,
                "{ws:?}: {} > {max_bits}",
                o.flips.total()
            );
            assert_eq!(l.read(&engine), data);
        }
    }
}

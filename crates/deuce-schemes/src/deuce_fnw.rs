//! DEUCE+FNW: dedicated storage for both schemes (§4.6, Table 3).
//!
//! This configuration spends 64 metadata bits per line — 32 DEUCE
//! modified bits *and* 32 FNW flip bits — so each re-encrypted word can
//! additionally be stored inverted when that saves flips. It is the
//! upper bound DynDEUCE approximates with half the storage (Fig. 10:
//! 20.3% vs 22.0%).

use deuce_crypto::{EpochInterval, LineAddr, LineBytes, OtpEngine, VirtualCounterPair};
use deuce_nvm::{LineImage, MetaBits};

use crate::config::WordSize;
use crate::core::{assert_counter_width, prefill_next_epoch_pad, CtrState};
use crate::scheme::{LineMut, LineRef, LineScheme, SchemeCell};
use crate::WriteOutcome;

/// Per-line DEUCE+FNW state: the counter plus the raw 64-bit metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DeuceFnwState {
    /// The line counter.
    pub ctr: CtrState,
    /// Bits `0..32`: DEUCE modified bits; bits `32..64`: FNW flip bits.
    pub meta: u64,
}

/// The DEUCE+FNW scheme parameters shared by every line.
///
/// Metadata layout: bits `0..32` are DEUCE modified bits, bits `32..64`
/// are FNW flip bits (one per 16-bit word; word size is fixed at 2 bytes
/// so the granularities coincide).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeuceFnwScheme {
    /// Epoch interval (full re-encryption period).
    pub epoch: EpochInterval,
    /// Line-counter width in bits.
    pub counter_bits: u32,
}

impl DeuceFnwScheme {
    const WORD: WordSize = WordSize::Bytes2;
    const FLIP_BASE: u32 = 32;

    /// Creates the scheme.
    ///
    /// # Panics
    ///
    /// Panics if `counter_bits` is 0 or greater than 48.
    #[must_use]
    pub fn new(epoch: EpochInterval, counter_bits: u32) -> Self {
        assert_counter_width(counter_bits);
        Self { epoch, counter_bits }
    }

    /// Stores ciphertext word `word`, choosing inversion FNW-style.
    fn store_word_fnw(stored: &mut LineBytes, meta: &mut MetaBits, word: usize, cipher: &[u8]) {
        let w = Self::WORD.bytes();
        let range = word * w..(word + 1) * w;
        let flip_idx = Self::FLIP_BASE + word as u32;
        let old_flip = meta.get(flip_idx);

        let mut normal = u32::from(old_flip);
        let mut inverted = u32::from(!old_flip);
        for (c, o) in cipher.iter().zip(&stored[range.clone()]) {
            normal += (c ^ o).count_ones();
            inverted += (!c ^ o).count_ones();
        }
        let invert = if inverted != normal { inverted < normal } else { old_flip };
        for (dst, src) in stored[range].iter_mut().zip(cipher) {
            *dst = if invert { !src } else { *src };
        }
        meta.set(flip_idx, invert);
    }
}

impl LineScheme for DeuceFnwScheme {
    type State = DeuceFnwState;

    fn needs_shadow(&self) -> bool {
        true
    }

    fn metadata_bits(&self) -> u32 {
        64
    }

    fn init(
        &self,
        engine: &OtpEngine,
        addr: LineAddr,
        initial: &LineBytes,
    ) -> (LineBytes, DeuceFnwState) {
        (engine.line_pad(addr, 0).xor(initial), DeuceFnwState::default())
    }

    fn write(
        &self,
        engine: &OtpEngine,
        addr: LineAddr,
        line: LineMut<'_, DeuceFnwState>,
        data: &LineBytes,
    ) -> WriteOutcome {
        let mut meta = MetaBits::from_raw(line.state.meta, 64);
        let old_image = LineImage::new(*line.stored, meta);
        let counter_flips = line.state.ctr.bump(self.counter_bits);
        let v = VirtualCounterPair::derive(line.state.ctr.value(), self.epoch);
        let w = Self::WORD.bytes();

        let epoch_started = v.is_epoch_start();
        if epoch_started {
            // Clear modified bits, re-encrypt every word (FNW choice per
            // word keeps the flip bits useful even at epoch starts).
            let pad = engine.line_pad(addr, v.lctr());
            for word in 0..Self::WORD.words_per_line() {
                meta.set(word as u32, false);
                let mut cipher = [0u8; 8];
                for (offset, i) in (word * w..(word + 1) * w).enumerate() {
                    cipher[offset] = data[i] ^ pad.word(word, w)[offset];
                }
                Self::store_word_fnw(line.stored, &mut meta, word, &cipher[..w]);
            }
        } else {
            for word in 0..Self::WORD.words_per_line() {
                let range = word * w..(word + 1) * w;
                if data[range.clone()] != line.shadow[range] {
                    meta.set(word as u32, true);
                }
            }
            let pad = engine.line_pad(addr, v.lctr());
            for word in 0..Self::WORD.words_per_line() {
                if meta.get(word as u32) {
                    let mut cipher = [0u8; 8];
                    for (offset, i) in (word * w..(word + 1) * w).enumerate() {
                        cipher[offset] = data[i] ^ pad.word(word, w)[offset];
                    }
                    Self::store_word_fnw(line.stored, &mut meta, word, &cipher[..w]);
                }
            }
        }
        line.state.meta = meta.raw();
        *line.shadow = *data;
        // Warm the next epoch's full-line pad while this write drains.
        prefill_next_epoch_pad(engine, addr, line.state.ctr.value(), self.counter_bits, self.epoch);
        WriteOutcome::from_images(
            old_image,
            LineImage::new(*line.stored, meta),
            counter_flips,
            epoch_started,
        )
    }

    fn read(&self, engine: &OtpEngine, addr: LineAddr, line: LineRef<'_, DeuceFnwState>) -> LineBytes {
        let meta = MetaBits::from_raw(line.state.meta, 64);
        let v = VirtualCounterPair::derive(line.state.ctr.value(), self.epoch);
        let (pad_lctr, pad_tctr) = engine.line_pad_pair(addr, v.lctr(), v.tctr());
        let w = Self::WORD.bytes();
        let mut out = [0u8; deuce_crypto::LINE_BYTES];
        for word in 0..Self::WORD.words_per_line() {
            let inverted = meta.get(Self::FLIP_BASE + word as u32);
            let pad = if meta.get(word as u32) {
                pad_lctr.word(word, w)
            } else {
                pad_tctr.word(word, w)
            };
            for (offset, i) in (word * w..(word + 1) * w).enumerate() {
                let stored = if inverted { !line.stored[i] } else { line.stored[i] };
                out[i] = stored ^ pad[offset];
            }
        }
        out
    }

    fn image(&self, line: LineRef<'_, DeuceFnwState>) -> LineImage {
        LineImage::new(*line.stored, MetaBits::from_raw(line.state.meta, 64))
    }
}

/// One memory line under DEUCE with dedicated FNW flip bits.
pub type DeuceFnwLine = SchemeCell<DeuceFnwScheme>;

impl DeuceFnwLine {
    /// Initializes the line (full encryption at counter 0, nothing
    /// inverted).
    #[must_use]
    pub fn new(
        engine: &OtpEngine,
        addr: LineAddr,
        initial: &LineBytes,
        epoch: EpochInterval,
        counter_bits: u32,
    ) -> Self {
        Self::with_scheme(DeuceFnwScheme::new(epoch, counter_bits), engine, addr, initial)
    }

    /// Current counter value.
    #[must_use]
    pub fn counter(&self) -> u64 {
        self.state().ctr.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deuce_crypto::SecretKey;

    fn engine() -> OtpEngine {
        OtpEngine::new(&SecretKey::from_seed(31))
    }

    #[test]
    fn roundtrip_across_epochs() {
        let e = engine();
        let mut l = DeuceFnwLine::new(&e, LineAddr::new(2), &[0u8; 64], EpochInterval::new(8).unwrap(), 28);
        for i in 0..40u8 {
            let mut data = [0u8; 64];
            data[usize::from(i % 16)] = i;
            data[50] = i.wrapping_mul(3);
            let _ = l.write(&e, &data);
            assert_eq!(l.read(&e), data, "write {i}");
        }
    }

    #[test]
    fn never_worse_than_plain_deuce_on_average() {
        let e = engine();
        let epoch = EpochInterval::DEFAULT;
        let mut plain = crate::DeuceLine::new(&e, LineAddr::new(3), &[0u8; 64], WordSize::Bytes2, epoch, 28);
        let mut combo = DeuceFnwLine::new(&e, LineAddr::new(3), &[0u8; 64], epoch, 28);
        let mut plain_total = 0u64;
        let mut combo_total = 0u64;
        for i in 0..640u64 {
            let mut data = [0u8; 64];
            data[0] = i as u8;
            data[1] = (i >> 8) as u8;
            data[20] = (i % 5) as u8;
            plain_total += u64::from(plain.write(&e, &data).flips.total());
            combo_total += u64::from(combo.write(&e, &data).flips.total());
        }
        assert!(
            combo_total <= plain_total,
            "DEUCE+FNW ({combo_total}) should not exceed DEUCE ({plain_total})"
        );
    }

    #[test]
    fn sparse_write_touches_only_its_word() {
        let e = engine();
        let mut l = DeuceFnwLine::new(&e, LineAddr::new(4), &[0u8; 64], EpochInterval::DEFAULT, 28);
        let mut data = [0u8; 64];
        data[10] = 0x80;
        let o = l.write(&e, &data);
        for bit in o.old_image.changed_bits(&o.new_image) {
            let word5_data = (80..96).contains(&bit);
            let word5_meta = bit == 512 + 5 || bit == 512 + 32 + 5;
            assert!(word5_data || word5_meta, "unexpected bit {bit} flipped");
        }
    }
}

//! Figure 16: system speedup relative to the encrypted-memory baseline,
//! from the 8-core timing model.
//!
//! Paper: FNW-on-encrypted ~1.00 (slot fragmentation), DEUCE 1.27,
//! FNW-without-encryption 1.40 — DEUCE bridges two-thirds of the gap.

use deuce_bench::{geomean, per_benchmark, run_scheme, tsv_header, tsv_row, ExperimentArgs};
use deuce_schemes::{SchemeConfig, SchemeKind};

fn main() {
    let mut args = ExperimentArgs::parse();
    if args.cores == 1 {
        args.cores = 8; // Table 1: 8 cores in rate mode.
    }
    let schemes = [
        SchemeKind::EncryptedFnw,
        SchemeKind::Deuce,
        SchemeKind::UnencryptedFnw,
    ];

    let rows = per_benchmark(&args.benchmarks, |benchmark| {
        let trace = args.trace(benchmark);
        let baseline = run_scheme(SchemeConfig::new(SchemeKind::EncryptedDcw), &trace);
        schemes.map(|kind| {
            run_scheme(SchemeConfig::new(kind), &trace).speedup_over(&baseline)
        })
    });

    tsv_header(&["benchmark", "Encr-FNW", "DEUCE", "NoEncr-FNW"]);
    let mut columns = vec![Vec::new(); schemes.len()];
    for (benchmark, speedups) in &rows {
        let mut cells = vec![benchmark.name().to_string()];
        for (i, s) in speedups.iter().enumerate() {
            columns[i].push(*s);
            cells.push(format!("{s:.2}"));
        }
        tsv_row(&cells);
    }
    let mut avg = vec!["GEOMEAN".to_string()];
    for column in &columns {
        avg.push(format!("{:.2}", geomean(column)));
    }
    tsv_row(&avg);
}

//! One-shot reproduction of the paper's headline numbers, printed side
//! by side with the published values. Runs in under a minute in release
//! mode; the full per-figure studies live in `crates/deuce-bench`.
//!
//! ```text
//! cargo run --release --example reproduce_paper
//! ```

use deuce::schemes::{SchemeConfig, SchemeKind};
use deuce::sim::{HwlMode, LifetimePolicy, SimConfig, Simulator, WearConfig};
use deuce::trace::{Benchmark, TraceConfig};

fn main() {
    let writes = 8_000;
    let lines = 64;

    // Flip rates averaged over all 12 workloads.
    let schemes = [
        (SchemeKind::UnencryptedDcw, 12.4),
        (SchemeKind::UnencryptedFnw, 10.5),
        (SchemeKind::EncryptedDcw, 50.0),
        (SchemeKind::EncryptedFnw, 42.7),
        (SchemeKind::Ble, 33.0),
        (SchemeKind::Deuce, 23.7),
        (SchemeKind::DynDeuce, 22.0),
        (SchemeKind::DeuceFnw, 20.3),
        (SchemeKind::BleDeuce, 19.9),
    ];

    println!("== modified bits per write (Figs. 5/10/18, Table 3) ==\n");
    println!("{:<12} {:>8} {:>10}", "scheme", "paper", "measured");
    for (kind, paper) in schemes {
        let mut total = 0.0;
        for benchmark in Benchmark::ALL {
            let trace = TraceConfig::new(benchmark)
                .lines(lines)
                .writes(writes)
                .seed(42)
                .generate();
            total += Simulator::new(SimConfig::with_scheme(SchemeConfig::new(kind)))
                .run_trace(&trace)
                .flip_rate();
        }
        let measured = total / 12.0 * 100.0;
        println!("{:<12} {paper:>7.1}% {measured:>9.1}%", kind.label());
    }

    // Performance and lifetime, on a representative pair of workloads.
    println!("\n== system effects ==\n");
    let trace = TraceConfig::new(Benchmark::Mcf)
        .lines(lines)
        .writes(writes * 2)
        .cores(8)
        .seed(42)
        .generate();
    let enc = Simulator::new(SimConfig::new(SchemeKind::EncryptedDcw)).run_trace(&trace);
    let deuce = Simulator::new(SimConfig::new(SchemeKind::Deuce)).run_trace(&trace);
    println!(
        "write slots/write    paper 4.00 -> 2.64   measured {:.2} -> {:.2}",
        enc.avg_slots_per_write(),
        deuce.avg_slots_per_write()
    );
    println!(
        "speedup vs encrypted paper 1.27x (avg)    measured {:.2}x (mcf)",
        deuce.speedup_over(&enc)
    );

    let wear_trace = TraceConfig::new(Benchmark::Libquantum)
        .lines(lines)
        .writes(30_000)
        .seed(42)
        .generate();
    let lifetime = |kind: SchemeKind, hwl: Option<HwlMode>| {
        let wear = match hwl {
            Some(mode) => WearConfig::with_hwl(lines, mode).gap_interval(2),
            None => WearConfig::vertical_only(lines),
        };
        Simulator::new(SimConfig::new(kind).with_wear(wear))
            .run_trace(&wear_trace)
            .lifetime(LifetimePolicy::VerticalLeveled)
            .expect("wear on")
    };
    let baseline = lifetime(SchemeKind::EncryptedDcw, None);
    println!(
        "lifetime vs encrypted: DEUCE paper 1.11x  measured {:.2}x; \
         DEUCE+HWL paper ~2x  measured {:.2}x (libq)",
        lifetime(SchemeKind::Deuce, None) / baseline,
        lifetime(SchemeKind::Deuce, Some(HwlMode::Hashed)) / baseline,
    );
    println!("\nFull per-figure tables: cargo run -p deuce-bench --bin fig10_scheme_comparison ...");
}

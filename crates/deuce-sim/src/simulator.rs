//! The simulator driving traces through the staged memory-controller
//! pipeline: counter cache → scheme engine → wear recording → timing.
//!
//! The pipeline structure itself lives in
//! [`deuce_memctl::pipeline`]; this module supplies the concrete
//! stages (lazy scheme-line store, counter cache, wear state, timing
//! model) and folds each write's [`WriteEffect`] into a [`SimResult`].
//!
//! The driver is streaming: [`Simulator::run_source`] pulls events
//! from any [`WriteSource`] — a seeded generator, a trace file reader,
//! or an in-RAM [`Trace`] — so memory use is independent of stream
//! length. [`Simulator::run_trace`] is the trivial in-RAM delegation
//! and is bit-identical by construction.

use std::collections::HashMap;
use std::fmt;
use std::time::Instant;

use deuce_crypto::{LineAddr, OtpEngine, SecretKey};
use deuce_memctl::{
    EcpConfig, EcpRepair, FaultEvents, MemoryPipeline, RepairAction, SchemeStage, StepOutcome,
    WearStage, WriteEffect,
};
use deuce_nvm::{CellArray, StuckAtFaults};
use deuce_schemes::{
    AnyScheme, ArenaBackend, FilePageBackend, LineScheme, LineStore, PageBackend, StateCodec,
    WriteOutcome,
};
use deuce_telemetry::{
    FaultObservation, FlightEvent, Gauge, NullRecorder, Recorder, StoreTelemetry, WriteObservation,
};
use deuce_trace::{Trace, TraceIoError, TraceSource, WriteSource};
use deuce_wear::{HorizontalWearLeveler, HwlMode, SecurityRefresh, StartGap};

use crate::checkpoint::RunCheckpoint;
use crate::config::{SimConfig, StoreBackend, VerticalWl};
use crate::counter_cache::CounterCache;
use crate::result::{FaultReport, SimResult};
use crate::timing::MemoryTimingModel;

/// Errors from a streaming run.
#[derive(Debug)]
pub enum RunError {
    /// The write source failed (I/O failure or malformed trace input).
    Trace(TraceIoError),
    /// Replay verification against a [`RunCheckpoint`] failed: the
    /// stream or configuration differs from the one that produced the
    /// checkpoint.
    CheckpointMismatch {
        /// Which counter diverged.
        field: &'static str,
        /// The checkpoint's value.
        expected: u64,
        /// The replayed run's value.
        found: u64,
    },
    /// The out-of-core line-store backend failed: the page file could
    /// not be created, or an I/O error was latched during the run (the
    /// scheme hot loop is infallible, so backends swallow I/O errors
    /// and surface the first one here at end of run).
    Store(String),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Trace(e) => write!(f, "write source failed: {e}"),
            RunError::CheckpointMismatch { field, expected, found } => write!(
                f,
                "checkpoint mismatch on {field}: checkpoint has {expected}, replay produced \
                 {found} (different stream or configuration)"
            ),
            RunError::Store(msg) => write!(f, "line-store backend failed: {msg}"),
        }
    }
}

impl std::error::Error for RunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RunError::Trace(e) => Some(e),
            RunError::CheckpointMismatch { .. } | RunError::Store(_) => None,
        }
    }
}

impl From<TraceIoError> for RunError {
    fn from(e: TraceIoError) -> Self {
        RunError::Trace(e)
    }
}

/// How [`Simulator`] treats checkpoints during one streaming run.
struct CheckpointPlan<'a> {
    /// Emit a checkpoint every this many counted writes (and one at
    /// stream end). 0 disables periodic emission.
    every_writes: u64,
    /// Receives each emitted checkpoint.
    sink: Option<&'a mut dyn FnMut(&RunCheckpoint)>,
    /// Verify the replay against this checkpoint when the stream
    /// reaches its position.
    verify: Option<&'a RunCheckpoint>,
}

impl CheckpointPlan<'_> {
    fn none() -> Self {
        CheckpointPlan { every_writes: 0, sink: None, verify: None }
    }
}

/// Runs traces under one configuration.
///
/// Lines are instantiated lazily: the first write to an address is
/// treated as the initial placement (encrypted as it enters memory, per
/// §3.1) and is *not* counted in the flip statistics — matching how
/// [`deuce_trace::TraceStats`] skips each line's first write.
///
/// The scheme parameter `S` defaults to the runtime-dispatched
/// [`AnyScheme`], which [`new`](Simulator::new) selects from
/// `config.scheme` — the path the CLI and sweeps use. Pinning a concrete
/// scheme type with [`with_line_scheme`](Simulator::with_line_scheme)
/// monomorphises the whole hot loop for that scheme; both paths are
/// bit-identical (asserted by the `scheme_parity` golden-fixture test).
#[derive(Debug)]
pub struct Simulator<S: LineScheme = AnyScheme> {
    config: SimConfig,
    engine: OtpEngine,
    scheme: S,
}

impl Simulator {
    /// Creates a simulator dispatching on `config.scheme` at runtime.
    #[must_use]
    pub fn new(config: SimConfig) -> Self {
        let scheme = AnyScheme::from_config(&config.scheme);
        Self::with_line_scheme(config, scheme)
    }
}

impl<S: LineScheme + Copy> Simulator<S>
where
    S::State: StateCodec,
{
    /// Creates a simulator whose hot loop is monomorphised for `scheme`.
    ///
    /// `config.scheme` still governs everything *around* the line scheme
    /// (counter cache, wear, timing); `scheme` governs how each line is
    /// encoded. [`new`](Simulator::new) keeps them consistent
    /// automatically; callers pinning a concrete scheme are responsible
    /// for passing one matching `config.scheme`.
    #[must_use]
    pub fn with_line_scheme(config: SimConfig, scheme: S) -> Self {
        let mut engine = OtpEngine::new(&SecretKey::from_seed(config.key_seed));
        if let Some(pad_cache) = config.pad_cache {
            engine = engine.with_pad_cache(pad_cache.entries);
        }
        if config.pad_timing {
            engine = engine.with_pad_timing();
        }
        Self { config, engine, scheme }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Drives a trace through the full stack and aggregates every metric.
    ///
    /// # Panics
    ///
    /// Panics if wear tracking is enabled and the trace touches more
    /// distinct lines than [`crate::WearConfig::lines`], or if a
    /// configured page-file store backend fails on I/O (use
    /// [`run_source`](Self::run_source) to handle store errors as a
    /// [`RunError`] instead).
    #[must_use]
    pub fn run_trace(&self, trace: &Trace) -> SimResult {
        self.run_trace_recorded(trace, &mut NullRecorder)
    }

    /// Like [`run_trace`](Self::run_trace), but streams structured
    /// telemetry into `rec` as the trace plays: per-write observations
    /// (figure-of-merit flips, slots, simulated time, counter-cache
    /// traffic) plus end-of-run gauges. Recording never changes the
    /// result — a run with any recorder is bit-identical to one with
    /// [`NullRecorder`], which monomorphises this back into the plain
    /// uninstrumented loop.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`run_trace`](Self::run_trace).
    #[must_use]
    pub fn run_trace_recorded<R: Recorder>(&self, trace: &Trace, rec: &mut R) -> SimResult {
        let mut source = TraceSource::new(trace);
        match self.drive(&mut source, rec, CheckpointPlan::none()) {
            Ok(result) => result,
            // In-RAM sources cannot fail, so the only error left is the
            // page-file store backend.
            Err(e) => panic!("trace run failed: {e}"),
        }
    }

    /// Drives any [`WriteSource`] through the full stack — the
    /// bounded-memory entry point: a 100M-write generator or file
    /// stream runs in O(working set), not O(stream length), and is
    /// bit-identical to [`run_trace`](Self::run_trace) on the
    /// materialised equivalent.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Trace`] when the source fails (I/O failure
    /// or malformed trace input).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`run_trace`](Self::run_trace).
    pub fn run_source<Src: WriteSource + ?Sized>(
        &self,
        source: &mut Src,
    ) -> Result<SimResult, RunError> {
        self.drive(source, &mut NullRecorder, CheckpointPlan::none())
    }

    /// [`run_source`](Self::run_source) with telemetry recording (see
    /// [`run_trace_recorded`](Self::run_trace_recorded)).
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Trace`] when the source fails.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`run_trace`](Self::run_trace).
    pub fn run_source_recorded<Src: WriteSource + ?Sized, R: Recorder>(
        &self,
        source: &mut Src,
        rec: &mut R,
    ) -> Result<SimResult, RunError> {
        self.drive(source, rec, CheckpointPlan::none())
    }

    /// [`run_source`](Self::run_source) emitting a [`RunCheckpoint`]
    /// into `sink` every `every_writes` counted writes, plus one at
    /// stream end. Checkpoints are observation only — the result is
    /// bit-identical with and without them.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Trace`] when the source fails.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`run_trace`](Self::run_trace).
    pub fn run_source_checkpointed<Src: WriteSource + ?Sized, R: Recorder>(
        &self,
        source: &mut Src,
        rec: &mut R,
        every_writes: u64,
        sink: &mut dyn FnMut(&RunCheckpoint),
    ) -> Result<SimResult, RunError> {
        self.drive(
            source,
            rec,
            CheckpointPlan { every_writes, sink: Some(sink), verify: None },
        )
    }

    /// Resumes a run from a checkpoint by deterministic replay: drives
    /// `source` from the beginning and, when the stream reaches the
    /// checkpoint's position, verifies every counter matches before
    /// continuing to the end. This trades replay compute for guaranteed
    /// correctness — a changed config, trace file, or binary is
    /// *detected*, never silently folded into wrong results. (Skipping
    /// completed work wholesale is the manifest layer's job, which
    /// resumes at whole-cell granularity.)
    ///
    /// # Errors
    ///
    /// Returns [`RunError::CheckpointMismatch`] when the replay
    /// diverges from `from` (including a stream shorter than the
    /// checkpoint position), and [`RunError::Trace`] when the source
    /// fails.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`run_trace`](Self::run_trace).
    pub fn resume_source<Src: WriteSource + ?Sized, R: Recorder>(
        &self,
        source: &mut Src,
        rec: &mut R,
        from: &RunCheckpoint,
    ) -> Result<SimResult, RunError> {
        self.drive(
            source,
            rec,
            CheckpointPlan { every_writes: 0, sink: None, verify: Some(from) },
        )
    }

    /// Dispatches on the configured store backend, so the streaming
    /// loop below monomorphises per backend and the arena path stays
    /// exactly the historical code.
    fn drive<Src: WriteSource + ?Sized, R: Recorder>(
        &self,
        source: &mut Src,
        rec: &mut R,
        plan: CheckpointPlan<'_>,
    ) -> Result<SimResult, RunError> {
        match &self.config.store {
            StoreBackend::Arena => {
                self.drive_with(source, rec, plan, ArenaBackend::new(self.scheme.needs_shadow()))
            }
            StoreBackend::File(file) => {
                let backend = FilePageBackend::create(
                    &file.path,
                    file.resident_pages,
                    self.scheme.needs_shadow(),
                )
                .map_err(|e| {
                    RunError::Store(format!("create page file {}: {e}", file.path.display()))
                })?;
                self.drive_with(source, rec, plan, backend)
            }
        }
    }

    /// The one streaming drive loop all public run entry points share.
    fn drive_with<Src: WriteSource + ?Sized, R: Recorder, B: PageBackend<S>>(
        &self,
        source: &mut Src,
        rec: &mut R,
        mut plan: CheckpointPlan<'_>,
        backend: B,
    ) -> Result<SimResult, RunError> {
        // Span tracing and the flight recorder are double-gated: the
        // `R::ENABLED` half vanishes under `NullRecorder`, the dynamic
        // half keeps a telemetry-only run free of `Instant::now` pairs.
        let wants_spans = R::ENABLED && rec.wants_spans();
        let wants_flight = R::ENABLED && rec.wants_flight();
        if wants_spans {
            rec.span_begin("run");
        }

        let cores = source.cores();
        let timing = MemoryTimingModel::with_power_channels(
            self.config.timing,
            self.config.cpu,
            self.config.geometry,
            cores,
            self.config.power_channels,
        );

        let meta_bits = self.scheme.metadata_bits();
        let bits_per_line = deuce_crypto::LINE_BITS as u32 + meta_bits;
        assert!(
            self.config.faults.is_none() || self.config.wear.is_some(),
            "fault injection requires wear tracking: combine SimConfig::with_faults \
             with SimConfig::with_wear"
        );
        let wear_state = self.config.wear.map(|w| {
            let faults = self.config.faults;
            WearState {
                // With faults on, the cell array also covers the spare
                // pool — retirement moves a line's traffic there and the
                // spares wear out like any other line.
                cells: match faults {
                    Some(f) => CellArray::with_faults(
                        w.lines + f.spare_lines as usize,
                        bits_per_line,
                        StuckAtFaults::new(f.endurance, f.endurance_scale),
                    ),
                    None => CellArray::new(w.lines, bits_per_line),
                },
                repair: faults.map(|f| {
                    EcpRepair::new(
                        w.lines,
                        EcpConfig {
                            entries_per_line: f.ecp_entries,
                            spare_lines: f.spare_lines,
                        },
                    )
                }),
                lines: w.lines,
                vwl: match w.vwl {
                    VerticalWl::StartGap => {
                        Leveler::StartGap(StartGap::new(w.lines.max(2), w.gap_interval))
                    }
                    VerticalWl::SecurityRefresh => Leveler::SecurityRefresh(SecurityRefresh::new(
                        w.lines.max(2).next_power_of_two(),
                        w.gap_interval,
                        self.config.key_seed,
                    )),
                },
                hwl: w.hwl,
                bits_per_line,
                index_of: HashMap::new(),
                time_repairs: wants_spans,
                repair_wall_ns: 0,
                repair_calls: 0,
            }
        });

        let store = StoreStage {
            store: LineStore::with_backend(self.scheme, backend),
            engine: &self.engine,
        };
        let counters_per_line = self
            .config
            .counter_cache
            .map_or(16, |cache| cache.counters_per_line);
        let mut pipeline = MemoryPipeline::new(store, timing, self.config.slot)
            .with_counter_stage(
                self.config.counter_cache.map(CounterCache::new),
                counters_per_line,
            )
            .with_wear_stage(wear_state);

        let mut result = SimResult {
            counters_in_metric: self.config.metric.count_counter_bits,
            energy_params: self.config.energy,
            metadata_bits: meta_bits,
            faults: self.config.faults.map(|_| FaultReport::default()),
            ..SimResult::default()
        };
        if R::ENABLED && result.faults.is_some() {
            rec.fault_injection_active();
        }
        // The engine (and its cache) outlives the run, so per-run
        // hit/miss totals are the delta over this trace.
        let pad_cache_start = self.engine.pad_cache_stats();
        if R::ENABLED && pad_cache_start.is_some() {
            rec.pad_cache_active();
        }
        if R::ENABLED && matches!(self.config.store, StoreBackend::File(_)) {
            rec.store_paging_active();
        }
        let pad_timing_start = self.engine.pad_timing_stats();

        let mut events_consumed: u64 = 0;
        let mut last_emitted: Option<u64> = None;
        loop {
            let pull_started = wants_spans.then(Instant::now);
            let next = source.next_event()?;
            if let Some(started) = pull_started {
                rec.span_attach(Some("run"), "source", elapsed_ns(started), 1);
            }
            let Some(event) = next else { break };
            events_consumed += 1;
            match pipeline.step_recorded(&event, rec) {
                StepOutcome::Read => result.reads += 1,
                StepOutcome::FirstTouch => {
                    // Not a counted write, but a post-mortem wants to
                    // see initial placements too.
                    if wants_flight {
                        rec.flight_observed(FlightEvent {
                            write_index: 0,
                            addr: event.line.value(),
                            action: "first_touch",
                            flips: 0,
                            slots: 0,
                            epoch_started: false,
                            sim_ns: pipeline.timing.exec_time_ns(),
                            cell_deaths: 0,
                            ecp_consumed: 0,
                            retired: false,
                            uncorrectable: false,
                        });
                    }
                }
                StepOutcome::Write(effect) => {
                    fold_effect(&mut result, &effect);
                    if effect.faults.any() {
                        fold_faults(&mut result, &effect.faults);
                        if R::ENABLED {
                            rec.fault_observed(&FaultObservation {
                                sim_ns: pipeline.timing.exec_time_ns(),
                                write_index: result.writes,
                                cell_deaths: effect.faults.cell_deaths,
                                ecp_consumed: effect.faults.ecp_consumed,
                                retired: effect.faults.retired,
                                uncorrectable: effect.faults.uncorrectable,
                            });
                        }
                    }
                    if R::ENABLED {
                        let mut flips = u64::from(effect.outcome.flips.data)
                            + u64::from(effect.outcome.flips.meta);
                        if result.counters_in_metric {
                            flips += u64::from(effect.outcome.counter_flips);
                        }
                        let (hits, misses) = pipeline
                            .counters
                            .as_ref()
                            .map_or((0, 0), |c| (c.hits(), c.misses()));
                        rec.write_observed(&WriteObservation {
                            sim_ns: pipeline.timing.exec_time_ns(),
                            flips,
                            slots: effect.slots,
                            cache_hits: hits,
                            cache_misses: misses,
                        });
                        if wants_flight {
                            rec.flight_observed(FlightEvent {
                                write_index: result.writes,
                                addr: event.line.value(),
                                action: "write",
                                flips,
                                slots: effect.slots,
                                epoch_started: effect.outcome.epoch_started,
                                sim_ns: pipeline.timing.exec_time_ns(),
                                cell_deaths: effect.faults.cell_deaths,
                                ecp_consumed: effect.faults.ecp_consumed,
                                retired: effect.faults.retired,
                                uncorrectable: effect.faults.uncorrectable,
                            });
                        }
                    }
                    if plan.every_writes > 0 && result.writes.is_multiple_of(plan.every_writes) {
                        if let Some(sink) = plan.sink.as_mut() {
                            let cp_started = wants_spans.then(Instant::now);
                            sink(&RunCheckpoint::capture(
                                events_consumed,
                                &result,
                                pipeline.timing.exec_time_ns(),
                                pipeline.schemes.store.flush_state(),
                            ));
                            if let Some(started) = cp_started {
                                rec.span_attach(Some("run"), "checkpoint", elapsed_ns(started), 1);
                            }
                            last_emitted = Some(events_consumed);
                        }
                    }
                }
            }
            if let Some(expected) = plan.verify {
                if events_consumed == expected.events_consumed {
                    let found = RunCheckpoint::capture(
                        events_consumed,
                        &result,
                        pipeline.timing.exec_time_ns(),
                        pipeline.schemes.store.flush_state(),
                    );
                    verify_checkpoint(expected, &found)?;
                    plan.verify = None;
                }
            }
        }
        if let Some(expected) = plan.verify {
            // The stream ended before reaching the checkpoint position.
            return Err(RunError::CheckpointMismatch {
                field: "events_consumed",
                expected: expected.events_consumed,
                found: events_consumed,
            });
        }
        if let Some(sink) = plan.sink {
            if last_emitted != Some(events_consumed) {
                let cp_started = wants_spans.then(Instant::now);
                sink(&RunCheckpoint::capture(
                    events_consumed,
                    &result,
                    pipeline.timing.exec_time_ns(),
                    pipeline.schemes.store.flush_state(),
                ));
                if let Some(started) = cp_started {
                    rec.span_attach(Some("run"), "checkpoint", elapsed_ns(started), 1);
                }
            }
        }

        result.exec_time_ns = pipeline.timing.exec_time_ns();
        result.line_store_bytes = pipeline.schemes.resident_bytes();
        // End-of-run flush of dirty resident pages (no-op for the
        // arena), then collect paging statistics and surface any I/O
        // error the backend latched mid-run.
        pipeline.schemes.store.flush();
        if let Some(error) = pipeline.schemes.store.io_error() {
            return Err(RunError::Store(error));
        }
        result.store = pipeline.schemes.store.paging_stats();
        if R::ENABLED {
            if let Some(stats) = &result.store {
                rec.store_totals(&StoreTelemetry {
                    page_faults: stats.page_faults,
                    page_evictions: stats.page_evictions,
                    pages_flushed: stats.pages_flushed,
                    resident_bytes: stats.resident_bytes,
                    peak_resident_bytes: stats.peak_resident_bytes,
                });
            }
        }
        if let Some(wear) = pipeline.wear {
            // Fold the repair ladder's self-measured wall time in as a
            // child of the wear stage before the state is consumed.
            if wants_spans && wear.repair_calls > 0 {
                rec.span_attach(
                    Some("stage:wear"),
                    "ecp_repair",
                    wear.repair_wall_ns,
                    wear.repair_calls,
                );
            }
            if let (Some(report), Some(repair)) = (result.faults.as_mut(), wear.repair.as_ref()) {
                report.spare_lines_left = repair.spares_left();
                report.ecp_entries_used =
                    (0..repair.lines()).map(|l| repair.entries_used(l)).collect();
                if R::ENABLED {
                    for &entries in &report.ecp_entries_used {
                        rec.ecp_entries_used(u64::from(entries));
                    }
                }
            }
            result.cells = Some(wear.cells);
        }
        if let Some(cache) = &pipeline.counters {
            result.counter_cache_misses = cache.misses();
            result.counter_cache_writebacks = cache.writebacks();
            result.counter_cache_hit_ratio = cache.hit_ratio();
        }
        if let Some(start) = pad_cache_start {
            let end = self.engine.pad_cache_stats().expect("cache attached for the whole run");
            let stats = deuce_crypto::PadCacheStats {
                hits: end.hits - start.hits,
                misses: end.misses - start.misses,
            };
            result.pad_cache = Some(stats);
            if R::ENABLED {
                rec.pad_cache_totals(stats.hits, stats.misses);
            }
        }
        if R::ENABLED {
            rec.gauge(Gauge::ExecTimeNs, result.exec_time_ns);
            rec.gauge(Gauge::EnergyPj, result.energy_pj());
            rec.gauge(Gauge::HitRatio, result.counter_cache_hit_ratio);
            rec.gauge(Gauge::MetadataBits, f64::from(result.metadata_bits));
            rec.gauge(Gauge::LineStoreBytes, result.line_store_bytes as f64);
        }
        if wants_spans {
            // Pad generation times itself inside the engine (the cache
            // check would hide it from a caller-side clock); the engine
            // outlives the run, so take the delta, and hang it under
            // the scheme stage where the AES work is charged.
            if let Some(start) = pad_timing_start {
                let end = self
                    .engine
                    .pad_timing_stats()
                    .expect("pad timing attached for the whole run");
                rec.span_attach(
                    Some("stage:scheme"),
                    "pad_generation",
                    end.wall_ns - start.wall_ns,
                    end.calls - start.calls,
                );
            }
            rec.span_end();
        }
        Ok(result)
    }
}

/// Wall-clock nanoseconds since `started`, saturating.
fn elapsed_ns(started: Instant) -> u64 {
    u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Compares a replayed fingerprint against the checkpoint, field by
/// field, naming the first divergence.
fn verify_checkpoint(expected: &RunCheckpoint, found: &RunCheckpoint) -> Result<(), RunError> {
    let fields: [(&'static str, u64, u64); 10] = [
        ("reads", expected.reads, found.reads),
        ("writes", expected.writes, found.writes),
        ("data_flips", expected.data_flips, found.data_flips),
        ("meta_flips", expected.meta_flips, found.meta_flips),
        ("counter_flips", expected.counter_flips, found.counter_flips),
        ("epoch_starts", expected.epoch_starts, found.epoch_starts),
        ("total_slots", expected.total_slots, found.total_slots),
        ("exec_time_ns_bits", expected.exec_time_ns_bits, found.exec_time_ns_bits),
        ("flushed_pages", expected.flushed_pages, found.flushed_pages),
        ("flush_fp", expected.flush_fp, found.flush_fp),
    ];
    for (field, want, got) in fields {
        if want != got {
            return Err(RunError::CheckpointMismatch { field, expected: want, found: got });
        }
    }
    Ok(())
}

/// Accumulates one counted write's effect into the aggregate result.
fn fold_effect(result: &mut SimResult, effect: &WriteEffect) {
    result.writes += 1;
    result.data_flips += u64::from(effect.outcome.flips.data);
    result.meta_flips += u64::from(effect.outcome.flips.meta);
    result.counter_flips += u64::from(effect.outcome.counter_flips);
    result.epoch_starts += u64::from(effect.outcome.epoch_started);
    result.total_slots += u64::from(effect.slots);
}

/// Accumulates one write's fault events into the fault report.
/// `result.writes` has already been bumped by [`fold_effect`], so the
/// recorded first-event indices are 1-based write positions.
fn fold_faults(result: &mut SimResult, faults: &FaultEvents) {
    let report = result
        .faults
        .as_mut()
        .expect("fault events only flow when fault injection is configured");
    report.cell_deaths += u64::from(faults.cell_deaths);
    report.ecp_entries_consumed += u64::from(faults.ecp_consumed);
    report.lines_retired += u64::from(faults.retired);
    report.uncorrectable_writes += u64::from(faults.uncorrectable);
    if faults.retired && report.first_retirement_write.is_none() {
        report.first_retirement_write = Some(result.writes);
    }
    if faults.uncorrectable && report.first_uncorrectable_write.is_none() {
        report.first_uncorrectable_write = Some(result.writes);
    }
}

/// Stage 2: a [`LineStore`] materialising lines lazily over the
/// configured backend (in-RAM arena or out-of-core page file). The
/// first write to an address is the initial placement (encrypted as it
/// enters memory, per §3.1) and is not counted.
#[derive(Debug)]
struct StoreStage<'a, S: LineScheme, B: PageBackend<S>> {
    store: LineStore<S, B>,
    engine: &'a OtpEngine,
}

impl<S: LineScheme, B: PageBackend<S>> SchemeStage for StoreStage<'_, S, B> {
    fn write(&mut self, line: LineAddr, data: &[u8; 64]) -> Option<WriteOutcome> {
        self.store.write_first_touch(self.engine, line, data)
    }

    fn resident_bytes(&self) -> u64 {
        self.store.resident_bytes()
    }
}

/// Wear-tracking state bundled together.
#[derive(Debug)]
struct WearState {
    /// Per-cell write counts; covers `lines + spare_lines` physical
    /// lines when fault injection is on, `lines` otherwise.
    cells: CellArray,
    /// The ECP/retirement layer, when fault injection is on.
    repair: Option<EcpRepair>,
    /// Logical (primary-region) lines — the trace-capacity bound; the
    /// cell array may be larger (spare pool).
    lines: usize,
    vwl: Leveler,
    hwl: Option<HwlMode>,
    bits_per_line: u32,
    index_of: HashMap<u64, usize>,
    /// When span tracing is on, the repair ladder times itself here —
    /// wall clock only, never simulated time.
    time_repairs: bool,
    repair_wall_ns: u64,
    repair_calls: u64,
}

/// The vertical wear-leveling substrate in use.
#[derive(Debug)]
enum Leveler {
    StartGap(StartGap),
    SecurityRefresh(SecurityRefresh),
}

impl WearState {
    fn rotation(&self, index: usize, addr: u64) -> u32 {
        let Some(mode) = self.hwl else { return 0 };
        match &self.vwl {
            Leveler::StartGap(sg) => {
                HorizontalWearLeveler::new(mode, self.bits_per_line).rotation(sg, index, addr)
            }
            Leveler::SecurityRefresh(sr) => match mode {
                HwlMode::Algebraic => sr.hwl_rotation(index, self.bits_per_line),
                HwlMode::Hashed => {
                    // Decorrelate per line, as footnote 2 prescribes.
                    let base = u64::from(sr.hwl_rotation(index, self.bits_per_line));
                    let mut z = base ^ addr.rotate_left(17) ^ 0x94d0_49bb_1331_11eb;
                    z = (z ^ (z >> 27)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                    ((z ^ (z >> 31)) % u64::from(self.bits_per_line)) as u32
                }
            },
        }
    }
}

/// Stage 3: cell-array wear recording under the configured vertical
/// and horizontal levelers, with the ECP repair layer consuming any
/// cell deaths when fault injection is on.
impl WearStage for WearState {
    fn record(&mut self, addr: LineAddr, outcome: &WriteOutcome) -> FaultEvents {
        let next = self.index_of.len();
        let lines = self.lines;
        let index = *self.index_of.entry(addr.value()).or_insert_with(|| {
            assert!(
                next < lines,
                "trace touches more than the configured {lines} wear-tracked lines"
            );
            next
        });
        let rotation = self.rotation(index, addr.value());
        // Retired lines wear their spare, not their abandoned primary.
        let physical = self.repair.as_ref().map_or(index, |r| r.resolve(index));
        let deaths =
            self.cells
                .record_write(physical, &outcome.old_image, &outcome.new_image, rotation);
        let mut events = FaultEvents::default();
        if let Some(repair) = &mut self.repair {
            events.cell_deaths = deaths.len() as u32;
            let repair_started = (self.time_repairs && !deaths.is_empty()).then(Instant::now);
            for cell in deaths {
                match repair.note_death(index, cell) {
                    RepairAction::AlreadyCovered => {}
                    RepairAction::Corrected => events.ecp_consumed += 1,
                    // Retirement moves the line to a pristine spare; any
                    // remaining deaths from this write stay behind in the
                    // abandoned physical line, so stop consuming them.
                    RepairAction::Retired { .. } => {
                        events.retired = true;
                        break;
                    }
                    RepairAction::Uncorrectable => {
                        events.uncorrectable = true;
                        break;
                    }
                }
            }
            if let Some(started) = repair_started {
                self.repair_wall_ns = self.repair_wall_ns.saturating_add(elapsed_ns(started));
                self.repair_calls += 1;
            }
        }
        match &mut self.vwl {
            Leveler::StartGap(sg) => {
                let _ = sg.record_write();
            }
            Leveler::SecurityRefresh(sr) => {
                let _ = sr.record_write();
            }
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WearConfig;
    use deuce_schemes::SchemeKind;
    use deuce_trace::{Benchmark, TraceConfig};
    use deuce_wear::HwlMode;

    fn trace(benchmark: Benchmark, writes: usize) -> Trace {
        TraceConfig::new(benchmark).lines(64).writes(writes).seed(11).generate()
    }

    #[test]
    fn encrypted_baseline_flips_half() {
        let t = trace(Benchmark::Mcf, 3000);
        let r = Simulator::new(SimConfig::new(SchemeKind::EncryptedDcw)).run_trace(&t);
        assert!((r.flip_rate() - 0.5).abs() < 0.01, "rate {}", r.flip_rate());
        assert!(r.avg_slots_per_write() > 3.9, "slots {}", r.avg_slots_per_write());
    }

    #[test]
    fn deuce_beats_encrypted_on_sparse_workload() {
        let t = trace(Benchmark::Libquantum, 3000);
        let enc = Simulator::new(SimConfig::new(SchemeKind::EncryptedDcw)).run_trace(&t);
        let deuce = Simulator::new(SimConfig::new(SchemeKind::Deuce)).run_trace(&t);
        assert!(deuce.flip_rate() < enc.flip_rate() / 2.0);
        assert!(deuce.avg_slots_per_write() < enc.avg_slots_per_write());
        assert!(deuce.exec_time_ns < enc.exec_time_ns);
    }

    #[test]
    fn unencrypted_is_cheapest() {
        let t = trace(Benchmark::Omnetpp, 2000);
        let plain = Simulator::new(SimConfig::new(SchemeKind::UnencryptedDcw)).run_trace(&t);
        let deuce = Simulator::new(SimConfig::new(SchemeKind::Deuce)).run_trace(&t);
        assert!(plain.flip_rate() < deuce.flip_rate());
        assert_eq!(plain.counter_flips, 0);
    }

    #[test]
    fn first_write_per_line_is_not_counted() {
        let t = trace(Benchmark::Astar, 500);
        let r = Simulator::new(SimConfig::new(SchemeKind::Deuce)).run_trace(&t);
        let distinct = t
            .writes()
            .map(|e| e.line.value())
            .collect::<std::collections::HashSet<_>>()
            .len() as u64;
        assert_eq!(r.writes, t.write_count() as u64 - distinct);
    }

    #[test]
    fn wear_tracking_populates_cells() {
        let t = trace(Benchmark::Libquantum, 2000);
        let cfg = SimConfig::new(SchemeKind::Deuce)
            .with_wear(WearConfig::with_hwl(64, HwlMode::Hashed).gap_interval(5));
        let r = Simulator::new(cfg).run_trace(&t);
        let cells = r.cells.as_ref().expect("wear enabled");
        assert_eq!(cells.writes_recorded(), r.writes);
        assert!(r.wear_summary().unwrap().total_bit_writes > 0);
        assert!(r.lifetime(crate::LifetimePolicy::VerticalLeveled).unwrap() > 0.0);
    }

    #[test]
    fn hwl_levels_bit_positions() {
        let t = trace(Benchmark::Libquantum, 6000);
        let no_hwl = Simulator::new(
            SimConfig::new(SchemeKind::Deuce).with_wear(WearConfig::vertical_only(64)),
        )
        .run_trace(&t);
        let hwl = Simulator::new(
            SimConfig::new(SchemeKind::Deuce)
                .with_wear(WearConfig::with_hwl(64, HwlMode::Hashed).gap_interval(2)),
        )
        .run_trace(&t);
        let skew_without = no_hwl.cells.as_ref().unwrap().wear_summary().max_over_avg();
        let life_no = no_hwl.lifetime(crate::LifetimePolicy::VerticalLeveled).unwrap();
        let life_hwl = hwl.lifetime(crate::LifetimePolicy::VerticalLeveled).unwrap();
        assert!(skew_without > 3.0, "libq should be skewed, got {skew_without}");
        assert!(
            life_hwl > life_no * 1.5,
            "HWL lifetime {life_hwl} vs {life_no}"
        );
    }

    #[test]
    fn reads_contribute_to_time_and_energy() {
        let t = TraceConfig::new(Benchmark::Mcf).lines(64).writes(1000).seed(1).generate();
        let r = Simulator::new(SimConfig::new(SchemeKind::Deuce)).run_trace(&t);
        assert!(r.reads > 0);
        assert!(r.exec_time_ns > 0.0);
        assert!(r.energy_pj() > 0.0);
        assert!(r.power_mw() > 0.0);
    }

    #[test]
    fn pad_cache_never_changes_results() {
        use crate::config::PadCacheConfig;
        let t = trace(Benchmark::Mcf, 2000);
        let plain = Simulator::new(SimConfig::new(SchemeKind::Deuce)).run_trace(&t);
        let cached = Simulator::new(
            SimConfig::new(SchemeKind::Deuce).with_pad_cache(PadCacheConfig::DEFAULT),
        )
        .run_trace(&t);
        assert!(plain.pad_cache.is_none());
        let stats = cached.pad_cache.expect("pad cache enabled");
        assert!(stats.hits + stats.misses > 0, "pads were requested");
        // Everything simulated is bit-identical; only the AES-work
        // accounting differs.
        assert_eq!(plain.writes, cached.writes);
        assert_eq!(plain.data_flips, cached.data_flips);
        assert_eq!(plain.meta_flips, cached.meta_flips);
        assert_eq!(plain.counter_flips, cached.counter_flips);
        assert_eq!(plain.total_slots, cached.total_slots);
        assert_eq!(plain.exec_time_ns, cached.exec_time_ns);
    }

    #[test]
    #[should_panic(expected = "wear-tracked lines")]
    fn wear_overflow_is_detected() {
        let t = trace(Benchmark::Mcf, 2000);
        let cfg = SimConfig::new(SchemeKind::Deuce).with_wear(WearConfig::vertical_only(2));
        let _ = Simulator::new(cfg).run_trace(&t);
    }
}

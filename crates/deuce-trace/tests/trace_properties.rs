//! Property tests for trace generation and the container format.

use deuce_trace::{
    read_trace, write_trace, Benchmark, Op, Trace, TraceConfig, TraceEvent, TraceStats,
};
use proptest::prelude::*;

fn benchmark_strategy() -> impl Strategy<Value = Benchmark> {
    prop::sample::select(Benchmark::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Structural invariants of every generated trace.
    #[test]
    fn generated_traces_are_well_formed(
        benchmark in benchmark_strategy(),
        writes in 1usize..800,
        lines in 1usize..64,
        cores in 1u8..4,
        seed in any::<u64>(),
    ) {
        let trace = TraceConfig::new(benchmark)
            .lines(lines)
            .writes(writes)
            .cores(cores)
            .seed(seed)
            .generate();
        prop_assert_eq!(trace.write_count(), writes);
        for e in trace.events() {
            prop_assert!(e.core < cores);
            prop_assert!((e.line.value() & 0xFFFF_FFFF) < lines as u64);
            prop_assert_eq!(e.line.value() >> 32, u64::from(e.core));
            match e.op {
                Op::Write => prop_assert!(e.data.is_some()),
                Op::Read => prop_assert!(e.data.is_none()),
            }
        }
    }

    /// Serialization roundtrips bit-exactly for generated traces.
    #[test]
    fn io_roundtrip(
        benchmark in benchmark_strategy(),
        writes in 1usize..300,
        seed in any::<u64>(),
    ) {
        let trace = TraceConfig::new(benchmark).lines(16).writes(writes).seed(seed).generate();
        let mut buffer = Vec::new();
        write_trace(&mut buffer, &trace).unwrap();
        prop_assert_eq!(read_trace(buffer.as_slice()).unwrap(), trace);
    }

    /// Serialization roundtrips for arbitrary hand-built traces too
    /// (not just generator output).
    #[test]
    fn io_roundtrip_arbitrary(
        events in prop::collection::vec(
            (any::<u8>(), any::<u64>(), any::<u64>(), prop::option::of(any::<[u8; 64]>())),
            0..60,
        )
    ) {
        let trace: Trace = events
            .into_iter()
            .map(|(core, instr, line, data)| match data {
                Some(d) => TraceEvent::write(core, instr, deuce_trace::LineAddr::new(line), d),
                None => TraceEvent::read(core, instr, deuce_trace::LineAddr::new(line)),
            })
            .collect();
        let mut buffer = Vec::new();
        write_trace(&mut buffer, &trace).unwrap();
        prop_assert_eq!(read_trace(buffer.as_slice()).unwrap(), trace);
    }

    /// Statistics are finite and within physical bounds.
    #[test]
    fn stats_are_sane(benchmark in benchmark_strategy(), seed in any::<u64>()) {
        let trace = TraceConfig::new(benchmark).lines(32).writes(600).seed(seed).generate();
        let stats = TraceStats::compute(&trace);
        prop_assert!(stats.dirty_bit_fraction > 0.0 && stats.dirty_bit_fraction <= 1.0);
        prop_assert!(stats.avg_words_modified > 0.0 && stats.avg_words_modified <= 32.0);
        prop_assert!(stats.unique_lines <= 32);
        prop_assert!(stats.wbpki > 0.0);
        prop_assert!(stats.mpki >= 0.0);
    }
}

/// Table 2 fidelity across all 12 benchmarks at once.
#[test]
fn all_profiles_reproduce_table2_rates() {
    for benchmark in Benchmark::ALL {
        let profile = benchmark.profile();
        let trace = TraceConfig::new(benchmark)
            .lines(64)
            .writes(6_000)
            .seed(9)
            .generate();
        let stats = TraceStats::compute(&trace);
        let wb_err = (stats.wbpki - profile.wbpki).abs() / profile.wbpki;
        let mpki_err = (stats.mpki - profile.mpki).abs() / profile.mpki;
        assert!(wb_err < 0.05, "{benchmark}: wbpki {} vs {}", stats.wbpki, profile.wbpki);
        assert!(mpki_err < 0.10, "{benchmark}: mpki {} vs {}", stats.mpki, profile.mpki);
    }
}

/// The dirty-bit fractions across benchmarks average near the paper's
/// 12.4% (Fig. 5's unencrypted DCW bar, which equals the trace's own
/// dirty-bit rate).
#[test]
fn average_dirtiness_matches_paper() {
    let mut total = 0.0;
    for benchmark in Benchmark::ALL {
        let trace = TraceConfig::new(benchmark)
            .lines(64)
            .writes(4_000)
            .seed(4)
            .generate();
        total += TraceStats::compute(&trace).dirty_bit_fraction;
    }
    let mean = total / 12.0;
    assert!((mean - 0.124).abs() < 0.03, "mean dirtiness {mean}");
}

//! Configuration builder for [`crate::SecureMemory`].

use deuce_crypto::EpochInterval;
use deuce_schemes::{SchemeConfig, SchemeKind, WordSize};

use crate::memory::SecureMemory;

/// Builds a [`SecureMemory`] (non-consuming builder).
///
/// Defaults: DEUCE at the paper's configuration (2-byte words, epoch
/// 32, 28-bit counters), integrity checking off, key seed 0.
///
/// # Examples
///
/// ```
/// use deuce_memctl::{MemoryBuilder, SchemeKind, WordSize};
///
/// let memory = MemoryBuilder::new(1 << 16)
///     .scheme(SchemeKind::DynDeuce)
///     .word_size(WordSize::Bytes2)
///     .epoch(16)
///     .integrity(true)
///     .key_seed(42)
///     .build();
/// assert_eq!(memory.size_bytes(), 1 << 16);
/// ```
#[derive(Debug, Clone)]
pub struct MemoryBuilder {
    size_bytes: usize,
    scheme: SchemeConfig,
    integrity: bool,
    key_seed: u64,
}

impl MemoryBuilder {
    /// Starts a builder for a memory of `size_bytes` (rounded up to a
    /// whole number of 64-byte lines).
    ///
    /// # Panics
    ///
    /// Panics if `size_bytes == 0`.
    #[must_use]
    pub fn new(size_bytes: usize) -> Self {
        assert!(size_bytes > 0, "memory must be non-empty");
        Self {
            size_bytes,
            scheme: SchemeConfig::new(SchemeKind::Deuce),
            integrity: false,
            key_seed: 0,
        }
    }

    /// Selects the memory encoding scheme.
    pub fn scheme(&mut self, kind: SchemeKind) -> &mut Self {
        self.scheme = SchemeConfig {
            kind,
            ..self.scheme
        };
        self
    }

    /// Sets the DEUCE tracking word size.
    pub fn word_size(&mut self, word_size: WordSize) -> &mut Self {
        self.scheme.word_size = word_size;
        self
    }

    /// Sets the DEUCE epoch interval in writes (must be a power of two
    /// ≥ 2).
    ///
    /// # Panics
    ///
    /// Panics if `writes` is not a power of two ≥ 2 (configuration
    /// error, caught at build time).
    pub fn epoch(&mut self, writes: u64) -> &mut Self {
        self.scheme.epoch = EpochInterval::new(writes).expect("epoch must be a power of two >= 2");
        self
    }

    /// Enables Merkle-tree counter authentication and per-line MACs.
    pub fn integrity(&mut self, enabled: bool) -> &mut Self {
        self.integrity = enabled;
        self
    }

    /// Seeds the controller's secret key (simulation convenience).
    pub fn key_seed(&mut self, seed: u64) -> &mut Self {
        self.key_seed = seed;
        self
    }

    /// Builds the memory.
    #[must_use]
    pub fn build(&self) -> SecureMemory {
        SecureMemory::with_config(self.size_bytes, self.scheme, self.integrity, self.key_seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults() {
        let memory = MemoryBuilder::new(100).build();
        // 100 bytes round up to 2 lines.
        assert_eq!(memory.size_bytes(), 128);
    }

    #[test]
    fn builder_chains() {
        let mut b = MemoryBuilder::new(4096);
        b.scheme(SchemeKind::EncryptedDcw).key_seed(5).integrity(true);
        let memory = b.build();
        assert_eq!(memory.size_bytes(), 4096);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn invalid_epoch_panics_at_configuration() {
        let _ = MemoryBuilder::new(64).epoch(3);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_size_rejected() {
        let _ = MemoryBuilder::new(0);
    }
}

//! ECP repair, line retirement, and the spare-line remap table.
//!
//! This is the controller's graceful-degradation layer, modeled on the
//! DEUCE paper's reference \[4\] (Schechter et al., "Use ECP, not
//! ECC"): every line carries `n` *Error-Correcting Pointer* entries —
//! a pointer to a dead cell plus a replacement bit — so a line
//! transparently survives its first `n` stuck-at cell deaths. When the
//! `n+1`-th cell dies, the controller *retires* the line: its contents
//! move to a line from a spare pool and a remap-table entry redirects
//! all future traffic. Once the spare pool is empty, the next death is
//! an [`UncorrectableError`] — the device has reached end of life.
//!
//! [`EcpRepair`] tracks all three mechanisms per logical line. It works
//! on dense line *indices* (the same index space as
//! [`deuce_nvm::CellArray`]), with physical indices `0..lines` for the
//! primary region and `lines..lines + spare_lines` for the spare pool.
//!
//! ```
//! use deuce_memctl::{EcpConfig, EcpRepair, RepairAction};
//!
//! let mut repair = EcpRepair::new(4, EcpConfig { entries_per_line: 1, spare_lines: 1 });
//! // First death on line 2: an ECP entry absorbs it.
//! assert_eq!(repair.note_death(2, 17), RepairAction::Corrected);
//! // Second death: entries exhausted, the line retires to spare 0,
//! // which lives at physical index 4.
//! assert_eq!(repair.note_death(2, 40), RepairAction::Retired { spare: 0 });
//! assert_eq!(repair.resolve(2), 4);
//! // Spare's first death starts a fresh entry budget.
//! assert_eq!(repair.note_death(2, 9), RepairAction::Corrected);
//! // ...but the pool is empty now, so the next exhaustion is fatal.
//! assert_eq!(repair.note_death(2, 10), RepairAction::Uncorrectable);
//! assert!(repair.line_failed(2));
//! ```

use std::fmt;

use deuce_nvm::{CellArray, LineImage};

/// Sizing of the repair layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EcpConfig {
    /// ECP correction entries per line (the paper's reference \[4\] uses
    /// ECP-6; `0` retires a line on its first death).
    pub entries_per_line: u8,
    /// Spare lines available for retirement (`0` means the first
    /// entry-exhausting death is uncorrectable).
    pub spare_lines: u32,
}

impl EcpConfig {
    /// ECP-6 with no spare pool, the \[4\] baseline.
    pub const ECP6: Self = Self {
        entries_per_line: 6,
        spare_lines: 0,
    };
}

/// What the repair layer did about one cell death.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairAction {
    /// The dead cell was already covered by an ECP entry; nothing was
    /// consumed.
    AlreadyCovered,
    /// A fresh ECP entry now points at the dead cell.
    Corrected,
    /// Entries were exhausted; the line retired to spare `spare` (its
    /// physical index is `lines + spare`).
    Retired {
        /// Index into the spare pool the line now occupies.
        spare: u32,
    },
    /// Entries exhausted and no spare left: the line has failed.
    Uncorrectable,
}

/// A cell death that could not be repaired: the line's ECP entries and
/// the device's spare pool are both exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UncorrectableError {
    /// The logical line index that failed.
    pub line: usize,
}

impl fmt::Display for UncorrectableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "uncorrectable error: line {} has dead cells beyond ECP and spare capacity",
            self.line
        )
    }
}

impl std::error::Error for UncorrectableError {}

/// Per-line ECP entries, the retirement remap table, and the spare
/// pool — see the [module docs](self) for the full flow.
#[derive(Debug, Clone)]
pub struct EcpRepair {
    config: EcpConfig,
    lines: usize,
    /// ECP entries per logical line: the *physical* cells (of the line's
    /// current physical location) being corrected, in consumption order.
    pointed: Vec<Vec<u32>>,
    /// Logical line → spare id, once retired.
    remap: Vec<Option<u32>>,
    /// Logical lines that have gone uncorrectable.
    failed: Vec<bool>,
    spares_used: u32,
    entries_consumed: u64,
    lines_retired: u64,
}

impl EcpRepair {
    /// Creates a repair layer for `lines` logical lines.
    ///
    /// # Panics
    ///
    /// Panics if `lines` is zero.
    #[must_use]
    pub fn new(lines: usize, config: EcpConfig) -> Self {
        assert!(lines > 0, "repair layer needs at least one line");
        Self {
            config,
            lines,
            pointed: vec![Vec::new(); lines],
            remap: vec![None; lines],
            failed: vec![false; lines],
            spares_used: 0,
            entries_consumed: 0,
            lines_retired: 0,
        }
    }

    /// The layer's sizing.
    #[must_use]
    pub fn config(&self) -> EcpConfig {
        self.config
    }

    /// Logical lines covered (excluding spares).
    #[must_use]
    pub fn lines(&self) -> usize {
        self.lines
    }

    /// The physical line index logical `line` currently occupies:
    /// `line` itself, or `lines + spare` after retirement.
    ///
    /// # Panics
    ///
    /// Panics if `line` is out of range.
    #[must_use]
    pub fn resolve(&self, line: usize) -> usize {
        assert!(line < self.lines, "line {line} out of range");
        match self.remap[line] {
            Some(spare) => self.lines + spare as usize,
            None => line,
        }
    }

    /// ECP entries currently consumed on `line` (resets on retirement —
    /// the spare starts with a fresh budget).
    ///
    /// # Panics
    ///
    /// Panics if `line` is out of range.
    #[must_use]
    pub fn entries_used(&self, line: usize) -> u32 {
        assert!(line < self.lines, "line {line} out of range");
        self.pointed[line].len() as u32
    }

    /// Total ECP entries consumed over the device's life (including
    /// entries later abandoned by retirement).
    #[must_use]
    pub fn entries_consumed(&self) -> u64 {
        self.entries_consumed
    }

    /// Retirements performed so far.
    #[must_use]
    pub fn lines_retired(&self) -> u64 {
        self.lines_retired
    }

    /// Spares consumed so far.
    #[must_use]
    pub fn spares_used(&self) -> u32 {
        self.spares_used
    }

    /// Spares still available.
    #[must_use]
    pub fn spares_left(&self) -> u32 {
        self.config.spare_lines - self.spares_used
    }

    /// Whether `line` has been retired to a spare.
    ///
    /// # Panics
    ///
    /// Panics if `line` is out of range.
    #[must_use]
    pub fn is_retired(&self, line: usize) -> bool {
        assert!(line < self.lines, "line {line} out of range");
        self.remap[line].is_some()
    }

    /// Whether `line` has suffered an uncorrectable death.
    ///
    /// # Panics
    ///
    /// Panics if `line` is out of range.
    #[must_use]
    pub fn line_failed(&self, line: usize) -> bool {
        assert!(line < self.lines, "line {line} out of range");
        self.failed[line]
    }

    /// Handles the death of `physical_cell` (a cell of `line`'s current
    /// physical location). Idempotent: a death in an already-pointed-to
    /// cell consumes nothing.
    ///
    /// On retirement the line's ECP entries reset — its dead cells stay
    /// behind in the abandoned physical line — and `resolve` starts
    /// returning the spare's physical index. The stored image travels
    /// with the logical line; the retirement copy-write is not charged
    /// to wear or timing (a once-per-line-lifetime event, negligible
    /// next to the write stream that caused it).
    ///
    /// # Panics
    ///
    /// Panics if `line` is out of range.
    pub fn note_death(&mut self, line: usize, physical_cell: u32) -> RepairAction {
        assert!(line < self.lines, "line {line} out of range");
        if self.failed[line] {
            return RepairAction::Uncorrectable;
        }
        if self.pointed[line].contains(&physical_cell) {
            return RepairAction::AlreadyCovered;
        }
        if self.pointed[line].len() < self.config.entries_per_line as usize {
            self.pointed[line].push(physical_cell);
            self.entries_consumed += 1;
            return RepairAction::Corrected;
        }
        if self.spares_used < self.config.spare_lines {
            let spare = self.spares_used;
            self.spares_used += 1;
            self.lines_retired += 1;
            self.remap[line] = Some(spare);
            self.pointed[line].clear();
            return RepairAction::Retired { spare };
        }
        self.failed[line] = true;
        RepairAction::Uncorrectable
    }

    /// What a read of logical `line` returns: the faulted image of its
    /// current physical line, with every ECP-pointed cell overridden by
    /// its replacement bit (which always holds the intended value). The
    /// result equals `intended` unless the line has failed, in which
    /// case the unrepairable stuck cells remain and an error is
    /// returned.
    ///
    /// `cells` must cover the primary region *and* the spare pool
    /// (`lines + spare_lines` lines); `rotation` is the line's current
    /// HWL rotation.
    ///
    /// # Errors
    ///
    /// Returns [`UncorrectableError`] if `line` has dead cells beyond
    /// ECP and spare capacity.
    ///
    /// # Panics
    ///
    /// Panics if `line` is out of range or `cells` doesn't cover the
    /// spare pool.
    pub fn read_line(
        &self,
        cells: &CellArray,
        line: usize,
        intended: &LineImage,
        rotation: u32,
    ) -> Result<LineImage, UncorrectableError> {
        if self.failed[line] {
            return Err(UncorrectableError { line });
        }
        let physical = self.resolve(line);
        assert!(
            physical < cells.lines(),
            "cell array does not cover the spare pool"
        );
        let mut image = cells.faulted_image(physical, intended, rotation);
        let bits = cells.bits_per_line();
        for &cell in &self.pointed[line] {
            let logical = (cell + bits - rotation % bits) % bits;
            image.set_bit(logical, intended.bit(logical));
        }
        Ok(image)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deuce_nvm::{FailureModel, StuckAtFaults};

    fn config(entries: u8, spares: u32) -> EcpConfig {
        EcpConfig {
            entries_per_line: entries,
            spare_lines: spares,
        }
    }

    #[test]
    fn second_death_in_pointed_cell_consumes_nothing() {
        let mut r = EcpRepair::new(2, config(2, 0));
        assert_eq!(r.note_death(0, 7), RepairAction::Corrected);
        assert_eq!(r.entries_used(0), 1);
        // The same cell dying again (e.g. replayed by an outer layer)
        // must not burn a second entry.
        assert_eq!(r.note_death(0, 7), RepairAction::AlreadyCovered);
        assert_eq!(r.entries_used(0), 1);
        assert_eq!(r.entries_consumed(), 1);
        // A different cell does.
        assert_eq!(r.note_death(0, 8), RepairAction::Corrected);
        assert_eq!(r.entries_used(0), 2);
    }

    #[test]
    fn retirement_with_zero_spares_is_uncorrectable() {
        let mut r = EcpRepair::new(1, config(1, 0));
        assert_eq!(r.note_death(0, 0), RepairAction::Corrected);
        assert_eq!(r.note_death(0, 1), RepairAction::Uncorrectable);
        assert!(r.line_failed(0));
        assert_eq!(r.lines_retired(), 0);
        // Failure is sticky.
        assert_eq!(r.note_death(0, 2), RepairAction::Uncorrectable);
    }

    #[test]
    fn zero_entry_lines_retire_on_first_death() {
        let mut r = EcpRepair::new(2, config(0, 1));
        assert_eq!(r.note_death(1, 5), RepairAction::Retired { spare: 0 });
        assert_eq!(r.resolve(1), 2);
        assert!(r.is_retired(1));
        assert_eq!(r.spares_left(), 0);
    }

    #[test]
    fn retirement_resets_the_entry_budget() {
        let mut r = EcpRepair::new(1, config(1, 2));
        assert_eq!(r.note_death(0, 0), RepairAction::Corrected);
        assert_eq!(r.note_death(0, 1), RepairAction::Retired { spare: 0 });
        assert_eq!(r.entries_used(0), 0, "spare starts fresh");
        assert_eq!(r.note_death(0, 0), RepairAction::Corrected, "same cell id, new physical line");
        assert_eq!(r.note_death(0, 1), RepairAction::Retired { spare: 1 });
        assert_eq!(r.resolve(0), 1 + 1, "second spare");
        assert_eq!(r.lines_retired(), 2);
        assert_eq!(r.entries_consumed(), 2);
    }

    #[test]
    fn reads_from_retired_line_return_the_remapped_image() {
        // One logical line, one spare; every cell dies on its first
        // write.
        let faults = StuckAtFaults::new(
            FailureModel {
                mean_endurance: 1.0,
                cv: 0.0,
                seed: 0,
            },
            1.0,
        );
        let mut cells = CellArray::with_faults(2, 544, faults);
        let mut r = EcpRepair::new(1, config(1, 1));
        let zero = LineImage::zeroed(32);
        let mut first = zero;
        first.data_mut()[0] = 0b01;
        // Write 1 to physical line 0: bit 0 dies, ECP absorbs it.
        let deaths = cells.record_write(0, &zero, &first, 0);
        assert_eq!(deaths, vec![0]);
        assert_eq!(r.note_death(0, 0), RepairAction::Corrected);
        // ECP read-repair hides the stuck cell.
        assert_eq!(r.read_line(&cells, 0, &first, 0).unwrap(), first);
        // Write 2 flips bit 1 too: the second death retires the line.
        let mut second = first;
        second.data_mut()[0] = 0b11;
        let deaths = cells.record_write(0, &first, &second, 0);
        assert_eq!(deaths, vec![1]);
        assert_eq!(r.note_death(0, 1), RepairAction::Retired { spare: 0 });
        assert_eq!(r.resolve(0), 1);
        // The spare physical line is pristine, so the read returns the
        // intended image even though physical line 0 is full of stuck
        // cells.
        assert_eq!(r.read_line(&cells, 0, &second, 0).unwrap(), second);
        // Subsequent writes wear the spare: its first death is absorbed
        // by the fresh entry budget, the next one is fatal.
        let mut third = second;
        third.data_mut()[0] = 0b10;
        let deaths = cells.record_write(r.resolve(0), &second, &third, 0);
        assert_eq!(deaths, vec![0], "spare's cell 0 dies on its first write");
        assert_eq!(r.note_death(0, 0), RepairAction::Corrected);
        let mut fourth = third;
        fourth.data_mut()[0] = 0b00;
        let deaths = cells.record_write(r.resolve(0), &third, &fourth, 0);
        assert_eq!(deaths, vec![1]);
        assert_eq!(r.note_death(0, 1), RepairAction::Uncorrectable);
        assert!(r.read_line(&cells, 0, &fourth, 0).is_err());
        let err = r.read_line(&cells, 0, &fourth, 0).unwrap_err();
        assert_eq!(err.line, 0);
        assert!(err.to_string().contains("uncorrectable"));
    }

    #[test]
    fn read_repair_respects_rotation() {
        let faults = StuckAtFaults::new(
            FailureModel {
                mean_endurance: 1.0,
                cv: 0.0,
                seed: 0,
            },
            1.0,
        );
        let mut cells = CellArray::with_faults(1, 544, faults);
        let mut r = EcpRepair::new(1, config(2, 0));
        let zero = LineImage::zeroed(32);
        let mut img = zero;
        img.set_bit(540, true);
        // Logical 540 under rotation 10 → physical cell 6 dies.
        let deaths = cells.record_write(0, &zero, &img, 10);
        assert_eq!(deaths, vec![6]);
        assert_eq!(r.note_death(0, 6), RepairAction::Corrected);
        // Without repair the stuck cell shadows logical 540...
        assert!(!cells.faulted_image(0, &img, 10).bit(540));
        // ...with repair the replacement bit restores it.
        assert_eq!(r.read_line(&cells, 0, &img, 10).unwrap(), img);
    }
}

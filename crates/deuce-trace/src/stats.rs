//! Trace statistics: the Table 2 characteristics plus the word/bit
//! modification statistics the DEUCE results hinge on.

use std::collections::HashMap;

use deuce_crypto::{LineBytes, LINE_BITS};

use crate::trace::{Op, Trace};

/// Summary statistics of a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Read misses per kilo-instruction (per core, averaged).
    pub mpki: f64,
    /// Writebacks per kilo-instruction (per core, averaged).
    pub wbpki: f64,
    /// Mean 16-bit words modified per writeback (vs the previous write of
    /// the same line).
    pub avg_words_modified: f64,
    /// Mean data bits modified per writeback.
    pub avg_bits_modified: f64,
    /// Mean fraction of the 512 data bits modified per writeback (the
    /// unencrypted-DCW flip rate).
    pub dirty_bit_fraction: f64,
    /// Distinct lines touched.
    pub unique_lines: usize,
    /// Writebacks that were compared (first write per line is skipped).
    pub compared_writes: u64,
}

impl TraceStats {
    /// Computes statistics by replaying the trace's write stream.
    #[must_use]
    pub fn compute(trace: &Trace) -> Self {
        let mut last: HashMap<u64, LineBytes> = HashMap::new();
        let mut words_modified = 0u64;
        let mut bits_modified = 0u64;
        let mut compared = 0u64;
        let mut max_instr_per_core: HashMap<u8, u64> = HashMap::new();
        let mut reads_per_core: HashMap<u8, u64> = HashMap::new();
        let mut writes_per_core: HashMap<u8, u64> = HashMap::new();

        for e in trace.events() {
            let per_core = max_instr_per_core.entry(e.core).or_insert(0);
            *per_core = (*per_core).max(e.instr);
            match e.op {
                Op::Read => *reads_per_core.entry(e.core).or_insert(0) += 1,
                Op::Write => {
                    *writes_per_core.entry(e.core).or_insert(0) += 1;
                    let data = e.data.expect("write events carry data");
                    if let Some(prev) = last.get(&e.line.value()) {
                        compared += 1;
                        for w in 0..32 {
                            let range = w * 2..w * 2 + 2;
                            if prev[range.clone()] != data[range] {
                                words_modified += 1;
                            }
                        }
                        bits_modified += prev
                            .iter()
                            .zip(&data)
                            .map(|(a, b)| u64::from((a ^ b).count_ones()))
                            .sum::<u64>();
                    }
                    last.insert(e.line.value(), data);
                }
            }
        }

        let kilo_instr: f64 = max_instr_per_core.values().map(|&i| i as f64 / 1000.0).sum();
        let reads: u64 = reads_per_core.values().sum();
        let writes: u64 = writes_per_core.values().sum();

        Self {
            mpki: if kilo_instr > 0.0 { reads as f64 / kilo_instr } else { 0.0 },
            wbpki: if kilo_instr > 0.0 { writes as f64 / kilo_instr } else { 0.0 },
            avg_words_modified: if compared > 0 {
                words_modified as f64 / compared as f64
            } else {
                0.0
            },
            avg_bits_modified: if compared > 0 {
                bits_modified as f64 / compared as f64
            } else {
                0.0
            },
            dirty_bit_fraction: if compared > 0 {
                bits_modified as f64 / compared as f64 / LINE_BITS as f64
            } else {
                0.0
            },
            unique_lines: last.len(),
            compared_writes: compared,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Benchmark, TraceConfig};

    #[test]
    fn rates_match_profile() {
        let trace = TraceConfig::new(Benchmark::Mcf).writes(5000).seed(2).generate();
        let stats = TraceStats::compute(&trace);
        assert!((stats.wbpki - 8.78).abs() < 0.5, "wbpki {}", stats.wbpki);
        assert!((stats.mpki - 16.2).abs() < 1.2, "mpki {}", stats.mpki);
    }

    #[test]
    fn sparse_benchmark_has_few_modified_words() {
        let trace = TraceConfig::new(Benchmark::Libquantum)
            .writes(5000)
            .seed(2)
            .generate();
        let stats = TraceStats::compute(&trace);
        assert!(stats.avg_words_modified < 6.0, "{}", stats.avg_words_modified);
        assert!(stats.dirty_bit_fraction < 0.06, "{}", stats.dirty_bit_fraction);
    }

    #[test]
    fn dense_benchmark_has_many_modified_words() {
        let trace = TraceConfig::new(Benchmark::Gems).writes(5000).seed(2).generate();
        let stats = TraceStats::compute(&trace);
        assert!(stats.avg_words_modified > 20.0, "{}", stats.avg_words_modified);
    }

    #[test]
    fn empty_trace_is_all_zero() {
        let stats = TraceStats::compute(&Trace::default());
        assert_eq!(stats.compared_writes, 0);
        assert_eq!(stats.unique_lines, 0);
        assert_eq!(stats.dirty_bit_fraction, 0.0);
    }
}

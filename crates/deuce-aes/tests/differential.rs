//! Differential validation of every AES dispatch tier against the
//! byte-oriented FIPS-197 reference path.
//!
//! The bit-identical-ciphertext contract of the crypto fast path rests
//! on this suite: every FIPS-197 Appendix C known-answer vector plus a
//! large randomized sweep of `(key, block)` pairs must agree byte for
//! byte between `encrypt_block`, `encrypt_blocks4`, `encrypt_blocks8`
//! (the batched entry points) on every tier [`available_backends`]
//! reports — reference, T-table, and hardware where the host has it —
//! and decryption must invert the common ciphertext on each tier.
//! `scripts/ci.sh` runs this file once per tier under
//! `DEUCE_AES_FORCE`, so the process-default path is also exercised
//! pinned to each backend.

use deuce_aes::{available_backends, Aes, Block};
use deuce_rng::{DeuceRng, Rng};

/// FIPS-197 Appendix C: the `00 11 22 .. ff` plaintext under the
/// incrementing key, for all three key sizes.
#[test]
fn fips197_appendix_c_vectors_agree_across_paths() {
    let pt: Block = std::array::from_fn(|i| (i as u8) * 0x11);
    let cases: [(&[u8], Block); 3] = [
        (
            &(0x00..=0x0f).collect::<Vec<u8>>(),
            [
                0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70,
                0xb4, 0xc5, 0x5a,
            ],
        ),
        (
            &(0x00..=0x17).collect::<Vec<u8>>(),
            [
                0xdd, 0xa9, 0x7c, 0xa4, 0x86, 0x4c, 0xdf, 0xe0, 0x6e, 0xaf, 0x70, 0xa0, 0xec,
                0x0d, 0x71, 0x91,
            ],
        ),
        (
            &(0x00..=0x1f).collect::<Vec<u8>>(),
            [
                0x8e, 0xa2, 0xb7, 0xca, 0x51, 0x67, 0x45, 0xbf, 0xea, 0xfc, 0x49, 0x90, 0x4b,
                0x49, 0x60, 0x89,
            ],
        ),
    ];
    for (key, expected) in cases {
        for backend in available_backends() {
            let cipher = Aes::new(key).unwrap().with_backend(*backend);
            assert_eq!(
                cipher.encrypt_block(&pt),
                expected,
                "{backend} KAT, key len {}",
                key.len()
            );
            assert_eq!(
                cipher.encrypt_block_reference(&pt),
                expected,
                "reference KAT, key len {}",
                key.len()
            );
            assert_eq!(
                cipher.encrypt_blocks4(&[pt; 4]),
                [expected; 4],
                "{backend} batched x4 KAT, key len {}",
                key.len()
            );
            assert_eq!(
                cipher.encrypt_blocks8(&[pt; 8]),
                [expected; 8],
                "{backend} batched x8 KAT, key len {}",
                key.len()
            );
            assert_eq!(cipher.decrypt_block(&expected), pt, "{backend} decrypt KAT");
        }
    }
}

/// ≥10k random `(key, block)` pairs per key size: on every available
/// tier the single-block path, the reference path, and both batch
/// widths must agree exactly, and decryption must invert the common
/// ciphertext.
#[test]
fn randomized_differential_sweep() {
    let mut rng = DeuceRng::seed_from_u64(0xAE5_D1FF);
    for key_len in [16usize, 24, 32] {
        let mut key = vec![0u8; key_len];
        for i in 0..3500u32 {
            rng.fill(&mut key);
            let mut blocks = [[0u8; 16]; 8];
            for block in &mut blocks {
                rng.fill(block);
            }
            // The reference path is tier-independent: compute the
            // expected ciphertexts once, then hold every tier to them.
            let oracle = Aes::new(&key).unwrap();
            let expected: [Block; 8] = blocks.map(|b| oracle.encrypt_block_reference(&b));
            for backend in available_backends() {
                let cipher = Aes::new(&key).unwrap().with_backend(*backend);
                let batched8 = cipher.encrypt_blocks8(&blocks);
                assert_eq!(
                    batched8, expected,
                    "x8 divergence: {backend}, key len {key_len}, iter {i}"
                );
                let lo: [Block; 4] = blocks[..4].try_into().unwrap();
                let hi: [Block; 4] = blocks[4..].try_into().unwrap();
                let batched4 = [cipher.encrypt_blocks4(&lo), cipher.encrypt_blocks4(&hi)];
                for (b, (block, exp)) in blocks.iter().zip(&expected).enumerate() {
                    assert_eq!(
                        cipher.encrypt_block(block),
                        *exp,
                        "single divergence: {backend}, key len {key_len}, iter {i}, block {b}"
                    );
                    assert_eq!(
                        batched4[b / 4][b % 4], *exp,
                        "x4 divergence: {backend}, key len {key_len}, iter {i}, block {b}"
                    );
                    assert_eq!(
                        cipher.decrypt_block(exp),
                        *block,
                        "round trip failed: {backend}, key len {key_len}, iter {i}, block {b}"
                    );
                }
            }
        }
    }
}

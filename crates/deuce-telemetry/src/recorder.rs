//! The [`Recorder`] trait, its zero-overhead [`NullRecorder`], and the
//! collecting [`TelemetryRecorder`].
//!
//! Instrumented code is generic over `R: Recorder` and monomorphised,
//! so with [`NullRecorder`] every hook compiles to nothing: the
//! `ENABLED` associated constant is `false`, the guards around argument
//! construction fold away, and the instrumented path is the
//! uninstrumented code. [`TelemetryRecorder`] is the collecting
//! implementation: structured counters, log2-bucketed histograms of
//! flips/write, slots/write, counter-cache residency and per-stage
//! wall-time, and a windowed time-series keyed on *simulated* time so
//! its output is deterministic.

use crate::flight::{FlightEvent, FlightRecorder};
use crate::hist::Histogram;
use crate::series::{Sample, SeriesSampler};
use crate::span::SpanTrace;

/// Structured event counters, one slot per named quantity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Counter {
    /// Line reads driven through the pipeline.
    Reads,
    /// Counted line writes (excludes first touches).
    Writes,
    /// Uncounted initial placements (first write to a line).
    FirstTouches,
    /// Data-bit flips across counted writes.
    DataFlips,
    /// Metadata-bit flips across counted writes.
    MetaFlips,
    /// Counter-storage bit flips across counted writes.
    CounterFlips,
    /// DEUCE epoch starts observed.
    EpochStarts,
    /// Write slots consumed across counted writes.
    SlotsTotal,
    /// Counter-stage accesses (stage 1 present).
    CounterAccesses,
    /// Counter-line fills (counter-cache misses).
    CounterFills,
    /// Dirty counter-line writebacks.
    CounterWritebacks,
}

impl Counter {
    /// Every counter, in export order.
    pub const ALL: [Counter; 11] = [
        Counter::Reads,
        Counter::Writes,
        Counter::FirstTouches,
        Counter::DataFlips,
        Counter::MetaFlips,
        Counter::CounterFlips,
        Counter::EpochStarts,
        Counter::SlotsTotal,
        Counter::CounterAccesses,
        Counter::CounterFills,
        Counter::CounterWritebacks,
    ];

    /// Stable export name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Counter::Reads => "reads",
            Counter::Writes => "writes",
            Counter::FirstTouches => "first_touches",
            Counter::DataFlips => "data_flips",
            Counter::MetaFlips => "meta_flips",
            Counter::CounterFlips => "counter_flips",
            Counter::EpochStarts => "epoch_starts",
            Counter::SlotsTotal => "slots_total",
            Counter::CounterAccesses => "counter_accesses",
            Counter::CounterFills => "counter_fills",
            Counter::CounterWritebacks => "counter_writebacks",
        }
    }
}

/// End-of-run scalar measurements (set once, not accumulated).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Gauge {
    /// Simulated execution time in nanoseconds.
    ExecTimeNs,
    /// Total memory energy in picojoules.
    EnergyPj,
    /// Counter-cache hit ratio over the whole run.
    HitRatio,
    /// Metadata bits per line of the simulated scheme.
    MetadataBits,
    /// Resident bytes of the arena-backed line store at end of run
    /// (stored images + shadows + compact per-line state).
    LineStoreBytes,
}

impl Gauge {
    /// Every gauge, in export order.
    pub const ALL: [Gauge; 5] = [
        Gauge::ExecTimeNs,
        Gauge::EnergyPj,
        Gauge::HitRatio,
        Gauge::MetadataBits,
        Gauge::LineStoreBytes,
    ];

    /// Stable export name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Gauge::ExecTimeNs => "exec_time_ns",
            Gauge::EnergyPj => "energy_pj",
            Gauge::HitRatio => "counter_cache_hit_ratio",
            Gauge::MetadataBits => "metadata_bits",
            Gauge::LineStoreBytes => "line_store_bytes",
        }
    }
}

/// The four stations of the memory-controller write pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Stage 1: counter availability (cache lookup + fills/writebacks).
    Counter,
    /// Stage 2: scheme encode and slot packing.
    Scheme,
    /// Stage 3: cell-wear recording.
    Wear,
    /// Stage 4: timing-model charging.
    Timing,
}

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; 4] = [Stage::Counter, Stage::Scheme, Stage::Wear, Stage::Timing];

    /// Stable export name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Stage::Counter => "counter",
            Stage::Scheme => "scheme",
            Stage::Wear => "wear",
            Stage::Timing => "timing",
        }
    }

    /// Stable span name (`"stage:<name>"`), distinguishing the stage
    /// spans from ad-hoc spans in the same trace.
    #[must_use]
    pub fn span_name(self) -> &'static str {
        match self {
            Stage::Counter => "stage:counter",
            Stage::Scheme => "stage:scheme",
            Stage::Wear => "stage:wear",
            Stage::Timing => "stage:timing",
        }
    }
}

/// One counted write as the time-series sampler sees it: simulated
/// time plus the write's own cost and the cumulative cache statistics
/// (windows are computed from deltas).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WriteObservation {
    /// Simulated time after the write, in nanoseconds.
    pub sim_ns: f64,
    /// Bit flips this write contributed to the figure of merit.
    pub flips: u64,
    /// Write slots this write occupied.
    pub slots: u32,
    /// Cumulative counter-cache hits (0 without a counter cache).
    pub cache_hits: u64,
    /// Cumulative counter-cache misses (0 without a counter cache).
    pub cache_misses: u64,
}

/// One write's fault-injection activity: cell deaths and the repair
/// actions they triggered, stamped with simulated time and the write's
/// ordinal so time-to-first-retirement series are reconstructible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultObservation {
    /// Simulated time after the write, in nanoseconds.
    pub sim_ns: f64,
    /// Ordinal of this counted write within the run (1-based).
    pub write_index: u64,
    /// Cells that reached their endurance threshold on this write.
    pub cell_deaths: u32,
    /// ECP entries consumed repairing those deaths.
    pub ecp_consumed: u32,
    /// The write retired its line to a spare.
    pub retired: bool,
    /// The write hit an uncorrectable death (no entry, no spare).
    pub uncorrectable: bool,
}

/// Fault-injection telemetry, materialised only when a run enables
/// fault injection so fault-free exports stay byte-identical to
/// pre-fault builds.
#[derive(Debug, Clone, Default)]
pub struct FaultTelemetry {
    /// Total cell deaths observed.
    pub cell_deaths: u64,
    /// Total ECP entries consumed.
    pub ecp_consumed: u64,
    /// Total line retirements.
    pub lines_retired: u64,
    /// Writes that hit an uncorrectable death.
    pub uncorrectable_writes: u64,
    /// Distribution of ECP entries in use per line at end of run.
    pub ecp_used_hist: Histogram,
    /// Every retirement as `(write ordinal, simulated ns)`, in order.
    pub retirements: Vec<(u64, f64)>,
    /// The first uncorrectable death as `(write ordinal, simulated
    /// ns)`, if the device reached end of life.
    pub first_uncorrectable: Option<(u64, f64)>,
}

/// Pad-cache telemetry, materialised only when a run attaches the
/// line-pad cache so cache-free exports stay byte-identical to
/// pre-cache builds (the same gating discipline as [`FaultTelemetry`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PadCacheTelemetry {
    /// Line-pad lookups answered from the cache (AES skipped).
    pub hits: u64,
    /// Line-pad lookups that fell through to AES pad generation.
    pub misses: u64,
    /// Pads generated speculatively ahead of demand (next-epoch
    /// prefills); counted as neither hit nor miss.
    pub prefills: u64,
}

/// Store-paging telemetry, materialised only when a run uses a paged
/// line-store backend so arena-backed exports stay byte-identical to
/// pre-paging builds (the same gating discipline as [`FaultTelemetry`]
/// and [`PadCacheTelemetry`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreTelemetry {
    /// Page-cache misses that materialised a page (fresh or reloaded).
    pub page_faults: u64,
    /// Pages evicted from the resident cache.
    pub page_evictions: u64,
    /// Dirty pages written back to the page file (evictions plus the
    /// end-of-run flush).
    pub pages_flushed: u64,
    /// Line-store bytes resident in RAM at end of run.
    pub resident_bytes: u64,
    /// Highest resident-byte watermark observed during the run.
    pub peak_resident_bytes: u64,
}

/// An instrumentation sink. All hooks have empty default bodies, so a
/// sink only overrides what it collects; `ENABLED == false` promises
/// every hook is a no-op and lets call sites skip argument
/// construction entirely.
pub trait Recorder {
    /// Whether this recorder observes anything. Instrumented code may
    /// guard hook-argument construction on this constant.
    const ENABLED: bool = true;

    /// Adds `delta` to a structured counter.
    fn add(&mut self, counter: Counter, delta: u64) {
        let _ = (counter, delta);
    }

    /// Sets an end-of-run gauge.
    fn gauge(&mut self, gauge: Gauge, value: f64) {
        let _ = (gauge, value);
    }

    /// Records one pipeline stage's wall-clock cost for one request, in
    /// nanoseconds. Wall time never feeds back into simulated results.
    fn stage_ns(&mut self, stage: Stage, ns: u64) {
        let _ = (stage, ns);
    }

    /// Records the counter cache's occupancy (lines resident) observed
    /// at one access.
    fn residency(&mut self, lines: u64) {
        let _ = lines;
    }

    /// Feeds one counted write to the histograms and the time-series
    /// sampler.
    fn write_observed(&mut self, obs: &WriteObservation) {
        let _ = obs;
    }

    /// Announces that the run injects faults, so fault telemetry is
    /// collected (and exported) even if no cell ever dies.
    fn fault_injection_active(&mut self) {}

    /// Feeds one write's fault activity. Only called for writes where
    /// something fault-related happened.
    fn fault_observed(&mut self, obs: &FaultObservation) {
        let _ = obs;
    }

    /// Feeds one line's end-of-run count of ECP entries in use to the
    /// per-line distribution.
    fn ecp_entries_used(&mut self, entries: u64) {
        let _ = entries;
    }

    /// Announces that the run attaches a line-pad cache, so pad-cache
    /// telemetry is collected (and exported) even if no lookup ever
    /// hits.
    fn pad_cache_active(&mut self) {}

    /// Sets the run's end-of-run pad-cache hit/miss/prefill totals.
    fn pad_cache_totals(&mut self, hits: u64, misses: u64, prefills: u64) {
        let _ = (hits, misses, prefills);
    }

    /// Records which AES dispatch tier generated this run's pads. A
    /// host/dispatch property: every tier is bit-identical, so nothing
    /// simulated depends on it.
    fn aes_backend(&mut self, backend: &'static str) {
        let _ = backend;
    }

    /// Announces that the run pages its line store out of core, so
    /// store-paging telemetry is collected (and exported) even if no
    /// page ever faults.
    fn store_paging_active(&mut self) {}

    /// Sets the run's end-of-run store-paging totals.
    fn store_totals(&mut self, totals: &StoreTelemetry) {
        let _ = totals;
    }

    /// Whether this sink collects hierarchical spans. Callers use this
    /// (under an `ENABLED` guard) to skip the wall-clock reads that
    /// span measurement needs.
    fn wants_spans(&self) -> bool {
        false
    }

    /// Opens an enclosing span; nested spans and parentless
    /// [`span_attach`](Self::span_attach) calls fold under it.
    fn span_begin(&mut self, name: &'static str) {
        let _ = name;
    }

    /// Closes the innermost open span.
    fn span_end(&mut self) {}

    /// Folds a pre-measured child span under `parent` (`None` = the
    /// innermost open span).
    fn span_attach(
        &mut self,
        parent: Option<&'static str>,
        name: &'static str,
        wall_ns: u64,
        count: u64,
    ) {
        let _ = (parent, name, wall_ns, count);
    }

    /// Whether this sink keeps a flight-recorder ring. Callers use this
    /// (under an `ENABLED` guard) to skip event construction.
    fn wants_flight(&self) -> bool {
        false
    }

    /// Feeds one write event to the flight-recorder ring.
    fn flight_observed(&mut self, event: FlightEvent) {
        let _ = event;
    }
}

/// The zero-overhead default: nothing is recorded, and with
/// `ENABLED == false` monomorphised call sites compile the hooks away.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    const ENABLED: bool = false;
}

/// Configuration for [`TelemetryRecorder`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TelemetryConfig {
    /// Counted writes per time-series window (a sample is emitted every
    /// `sample_every` writes, keyed on simulated time).
    pub sample_every: u64,
    /// Picojoules per bit flip, used for the window power estimate
    /// (`0.0` reports power as 0).
    pub energy_pj_per_flip: f64,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        Self { sample_every: 64, energy_pj_per_flip: 0.0 }
    }
}

/// The collecting recorder: counters, gauges, histograms, per-stage
/// wall-time, and the deterministic time-series.
#[derive(Debug, Clone)]
pub struct TelemetryRecorder {
    config: TelemetryConfig,
    counters: [u64; Counter::ALL.len()],
    gauges: [f64; Gauge::ALL.len()],
    flips_hist: Histogram,
    slots_hist: Histogram,
    residency_hist: Histogram,
    stage_hists: [Histogram; Stage::ALL.len()],
    series: SeriesSampler,
    faults: Option<FaultTelemetry>,
    pad_cache: Option<PadCacheTelemetry>,
    store: Option<StoreTelemetry>,
    aes_backend: Option<&'static str>,
    spans: Option<SpanTrace>,
    flight: Option<FlightRecorder>,
}

impl Default for TelemetryRecorder {
    fn default() -> Self {
        Self::new(TelemetryConfig::default())
    }
}

impl TelemetryRecorder {
    /// A fresh recorder.
    #[must_use]
    pub fn new(config: TelemetryConfig) -> Self {
        Self {
            config,
            counters: [0; Counter::ALL.len()],
            gauges: [0.0; Gauge::ALL.len()],
            flips_hist: Histogram::new(),
            slots_hist: Histogram::new(),
            residency_hist: Histogram::new(),
            stage_hists: std::array::from_fn(|_| Histogram::new()),
            series: SeriesSampler::new(config.sample_every, config.energy_pj_per_flip),
            faults: None,
            pad_cache: None,
            store: None,
            aes_backend: None,
            spans: None,
            flight: None,
        }
    }

    /// Enables hierarchical span tracing (off by default, so span-free
    /// recorders cost nothing extra and their exports are unchanged).
    #[must_use]
    pub fn with_spans(mut self) -> Self {
        self.spans = Some(SpanTrace::new());
        self
    }

    /// Enables the flight recorder, keeping the last `capacity` write
    /// events (off by default).
    #[must_use]
    pub fn with_flight_recorder(mut self, capacity: usize) -> Self {
        self.flight = Some(FlightRecorder::new(capacity));
        self
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &TelemetryConfig {
        &self.config
    }

    /// Current value of a counter.
    #[must_use]
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters[counter as usize]
    }

    /// Current value of a gauge (0 until set).
    #[must_use]
    pub fn gauge_value(&self, gauge: Gauge) -> f64 {
        self.gauges[gauge as usize]
    }

    /// Histogram of figure-of-merit flips per counted write.
    #[must_use]
    pub fn flips_hist(&self) -> &Histogram {
        &self.flips_hist
    }

    /// Histogram of write slots per counted write.
    #[must_use]
    pub fn slots_hist(&self) -> &Histogram {
        &self.slots_hist
    }

    /// Histogram of counter-cache occupancy at access time.
    #[must_use]
    pub fn residency_hist(&self) -> &Histogram {
        &self.residency_hist
    }

    /// Wall-time histogram (nanoseconds per request) of one stage.
    #[must_use]
    pub fn stage_hist(&self, stage: Stage) -> &Histogram {
        &self.stage_hists[stage as usize]
    }

    /// Time-series samples collected so far.
    #[must_use]
    pub fn samples(&self) -> &[Sample] {
        self.series.samples()
    }

    /// Fault-injection telemetry, present only if the run announced
    /// fault injection (or a fault event arrived).
    #[must_use]
    pub fn faults(&self) -> Option<&FaultTelemetry> {
        self.faults.as_ref()
    }

    /// Pad-cache telemetry, present only if the run announced a pad
    /// cache (or totals arrived).
    #[must_use]
    pub fn pad_cache(&self) -> Option<&PadCacheTelemetry> {
        self.pad_cache.as_ref()
    }

    /// Store-paging telemetry, present only if the run announced a
    /// paged store (or totals arrived).
    #[must_use]
    pub fn store(&self) -> Option<&StoreTelemetry> {
        self.store.as_ref()
    }

    /// The AES dispatch tier the run reported, if any (the same gating
    /// discipline as the other optional sections: recorders fed by
    /// pre-dispatch drivers export byte-identically).
    #[must_use]
    pub fn aes_backend_name(&self) -> Option<&'static str> {
        self.aes_backend
    }

    /// The span trace, present only with
    /// [`with_spans`](Self::with_spans).
    #[must_use]
    pub fn spans(&self) -> Option<&SpanTrace> {
        self.spans.as_ref()
    }

    /// The flight-recorder ring, present only with
    /// [`with_flight_recorder`](Self::with_flight_recorder).
    #[must_use]
    pub fn flight(&self) -> Option<&FlightRecorder> {
        self.flight.as_ref()
    }
}

impl Recorder for TelemetryRecorder {
    fn add(&mut self, counter: Counter, delta: u64) {
        self.counters[counter as usize] += delta;
    }

    fn gauge(&mut self, gauge: Gauge, value: f64) {
        self.gauges[gauge as usize] = value;
    }

    fn stage_ns(&mut self, stage: Stage, ns: u64) {
        self.stage_hists[stage as usize].record(ns);
        if let Some(spans) = &mut self.spans {
            spans.attach(None, stage.span_name(), ns, 1);
        }
    }

    fn residency(&mut self, lines: u64) {
        self.residency_hist.record(lines);
    }

    fn write_observed(&mut self, obs: &WriteObservation) {
        self.flips_hist.record(obs.flips);
        self.slots_hist.record(u64::from(obs.slots));
        self.series.observe(obs);
        if let Some(spans) = &mut self.spans {
            spans.observe_write(obs.sim_ns);
        }
    }

    fn fault_injection_active(&mut self) {
        self.faults.get_or_insert_with(FaultTelemetry::default);
    }

    fn fault_observed(&mut self, obs: &FaultObservation) {
        let faults = self.faults.get_or_insert_with(FaultTelemetry::default);
        faults.cell_deaths += u64::from(obs.cell_deaths);
        faults.ecp_consumed += u64::from(obs.ecp_consumed);
        if obs.retired {
            faults.lines_retired += 1;
            faults.retirements.push((obs.write_index, obs.sim_ns));
        }
        if obs.uncorrectable {
            faults.uncorrectable_writes += 1;
            if faults.first_uncorrectable.is_none() {
                faults.first_uncorrectable = Some((obs.write_index, obs.sim_ns));
            }
        }
    }

    fn ecp_entries_used(&mut self, entries: u64) {
        let faults = self.faults.get_or_insert_with(FaultTelemetry::default);
        faults.ecp_used_hist.record(entries);
    }

    fn pad_cache_active(&mut self) {
        self.pad_cache.get_or_insert_with(PadCacheTelemetry::default);
    }

    fn pad_cache_totals(&mut self, hits: u64, misses: u64, prefills: u64) {
        let cache = self.pad_cache.get_or_insert_with(PadCacheTelemetry::default);
        cache.hits = hits;
        cache.misses = misses;
        cache.prefills = prefills;
    }

    fn aes_backend(&mut self, backend: &'static str) {
        self.aes_backend = Some(backend);
    }

    fn store_paging_active(&mut self) {
        self.store.get_or_insert_with(StoreTelemetry::default);
    }

    fn store_totals(&mut self, totals: &StoreTelemetry) {
        *self.store.get_or_insert_with(StoreTelemetry::default) = *totals;
    }

    fn wants_spans(&self) -> bool {
        self.spans.is_some()
    }

    fn span_begin(&mut self, name: &'static str) {
        if let Some(spans) = &mut self.spans {
            spans.begin(name);
        }
    }

    fn span_end(&mut self) {
        if let Some(spans) = &mut self.spans {
            spans.end();
        }
    }

    fn span_attach(
        &mut self,
        parent: Option<&'static str>,
        name: &'static str,
        wall_ns: u64,
        count: u64,
    ) {
        if let Some(spans) = &mut self.spans {
            spans.attach(parent, name, wall_ns, count);
        }
    }

    fn wants_flight(&self) -> bool {
        self.flight.is_some()
    }

    fn flight_observed(&mut self, event: FlightEvent) {
        if let Some(flight) = &mut self.flight {
            flight.record(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_recorder_is_disabled_and_inert() {
        const { assert!(!NullRecorder::ENABLED) };
        let mut r = NullRecorder;
        r.add(Counter::Writes, 3);
        r.stage_ns(Stage::Scheme, 17);
        r.write_observed(&WriteObservation {
            sim_ns: 1.0,
            flips: 2,
            slots: 1,
            cache_hits: 0,
            cache_misses: 0,
        });
        assert_eq!(r, NullRecorder);
    }

    #[test]
    fn telemetry_recorder_collects_everything() {
        let mut r = TelemetryRecorder::new(TelemetryConfig {
            sample_every: 2,
            energy_pj_per_flip: 1.0,
        });
        const { assert!(TelemetryRecorder::ENABLED) };
        r.add(Counter::Writes, 1);
        r.add(Counter::Writes, 1);
        r.gauge(Gauge::ExecTimeNs, 500.0);
        r.stage_ns(Stage::Counter, 100);
        r.residency(3);
        for (i, flips) in [10u64, 30].into_iter().enumerate() {
            r.write_observed(&WriteObservation {
                sim_ns: 100.0 * (i + 1) as f64,
                flips,
                slots: 2,
                cache_hits: i as u64,
                cache_misses: 1,
            });
        }
        assert_eq!(r.counter(Counter::Writes), 2);
        assert!((r.gauge_value(Gauge::ExecTimeNs) - 500.0).abs() < 1e-12);
        assert_eq!(r.flips_hist().count(), 2);
        assert_eq!(r.slots_hist().sum(), 4);
        assert_eq!(r.residency_hist().max(), Some(3));
        assert_eq!(r.stage_hist(Stage::Counter).count(), 1);
        assert_eq!(r.samples().len(), 1, "one full window of 2 writes");
        let s = &r.samples()[0];
        assert_eq!(s.writes, 2);
        assert!((s.flips_per_write - 20.0).abs() < 1e-12);
    }

    #[test]
    fn fault_telemetry_absent_until_announced() {
        let mut r = TelemetryRecorder::default();
        assert!(r.faults().is_none(), "fault-free runs carry no fault section");
        r.fault_injection_active();
        let faults = r.faults().expect("announced");
        assert_eq!(faults.cell_deaths, 0);
        assert!(faults.retirements.is_empty());
    }

    #[test]
    fn pad_cache_telemetry_absent_until_announced() {
        let mut r = TelemetryRecorder::default();
        assert!(r.pad_cache().is_none(), "cache-free runs carry no pad-cache section");
        r.pad_cache_active();
        assert_eq!(r.pad_cache(), Some(&PadCacheTelemetry::default()));
        r.pad_cache_totals(12, 3, 5);
        assert_eq!(
            r.pad_cache(),
            Some(&PadCacheTelemetry { hits: 12, misses: 3, prefills: 5 })
        );
    }

    #[test]
    fn aes_backend_absent_until_reported() {
        let mut r = TelemetryRecorder::default();
        assert!(r.aes_backend_name().is_none(), "pre-dispatch exports stay unchanged");
        r.aes_backend("ttable");
        assert_eq!(r.aes_backend_name(), Some("ttable"));
    }

    #[test]
    fn store_telemetry_absent_until_announced() {
        let mut r = TelemetryRecorder::default();
        assert!(r.store().is_none(), "arena-backed runs carry no store section");
        r.store_paging_active();
        assert_eq!(r.store(), Some(&StoreTelemetry::default()));
        let totals = StoreTelemetry {
            page_faults: 12,
            page_evictions: 7,
            pages_flushed: 9,
            resident_bytes: 4096,
            peak_resident_bytes: 8192,
        };
        r.store_totals(&totals);
        assert_eq!(r.store(), Some(&totals));
    }

    #[test]
    fn fault_events_accumulate() {
        let mut r = TelemetryRecorder::default();
        r.fault_observed(&FaultObservation {
            sim_ns: 100.0,
            write_index: 10,
            cell_deaths: 2,
            ecp_consumed: 2,
            retired: false,
            uncorrectable: false,
        });
        r.fault_observed(&FaultObservation {
            sim_ns: 250.0,
            write_index: 30,
            cell_deaths: 1,
            ecp_consumed: 0,
            retired: true,
            uncorrectable: false,
        });
        r.fault_observed(&FaultObservation {
            sim_ns: 400.0,
            write_index: 55,
            cell_deaths: 1,
            ecp_consumed: 0,
            retired: false,
            uncorrectable: true,
        });
        r.ecp_entries_used(2);
        r.ecp_entries_used(0);
        let faults = r.faults().expect("events imply a fault section");
        assert_eq!(faults.cell_deaths, 4);
        assert_eq!(faults.ecp_consumed, 2);
        assert_eq!(faults.lines_retired, 1);
        assert_eq!(faults.uncorrectable_writes, 1);
        assert_eq!(faults.retirements, vec![(30, 250.0)]);
        assert_eq!(faults.first_uncorrectable, Some((55, 400.0)));
        assert_eq!(faults.ecp_used_hist.count(), 2);
        assert_eq!(faults.ecp_used_hist.sum(), 2);
    }

    #[test]
    fn names_are_unique_and_stable() {
        let mut names: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
        names.extend(Gauge::ALL.iter().map(|g| g.name()));
        names.extend(Stage::ALL.iter().map(|s| s.name()));
        let mut deduped = names.clone();
        deduped.sort_unstable();
        deduped.dedup();
        assert_eq!(deduped.len(), names.len(), "no duplicate export names");
    }
}

//! Streaming write ingestion: the [`WriteSource`] abstraction.
//!
//! Every consumer of a workload — the simulator, the CLI, analysis
//! tools — historically took a fully materialised [`Trace`], which caps
//! runs at what fits in host RAM (a multi-billion-write lifetime
//! campaign is hundreds of gigabytes of events). [`WriteSource`] turns
//! the workload into a *pull stream*: events are produced on demand, in
//! issue order, and the consumer's memory footprint is independent of
//! the stream length.
//!
//! Three families of sources exist:
//!
//! - [`TraceSource`] — the trivial adapter over an in-RAM [`Trace`].
//!   `Simulator::run_trace` delegates through it, so the materialised
//!   and streaming paths are the same code and bit-identical by
//!   construction.
//! - [`crate::GeneratorSource`] — a seeded benchmark generator yielding
//!   events on demand ([`crate::TraceConfig::stream`]); `generate()` is
//!   implemented on top of it.
//! - [`crate::BinaryStreamSource`] / [`crate::JsonlStreamSource`] —
//!   buffered file readers decoding one event at a time from disk.
//!
//! # Determinism contract
//!
//! A source must yield exactly the event sequence of the corresponding
//! materialised trace, and [`WriteSource::cores`] must equal
//! `max(event.core) + 1` over the whole stream (`1` for an empty
//! stream) — the simulator sizes its timing model from it *before*
//! consuming any event, so a wrong value changes simulated time.

use crate::io::TraceIoError;
use crate::trace::{Trace, TraceEvent};

/// A pull stream of trace events in issue order.
pub trait WriteSource {
    /// Number of issuing cores in the whole stream: `max(core) + 1`,
    /// or `1` if the stream is empty. Must be exact (see the module
    /// docs' determinism contract) and available before the first
    /// event is pulled.
    fn cores(&self) -> usize;

    /// Pulls the next event, or `Ok(None)` at end of stream.
    ///
    /// # Errors
    ///
    /// File-backed sources return [`TraceIoError`] on I/O failure or
    /// malformed input; in-RAM and generator sources never fail.
    fn next_event(&mut self) -> Result<Option<TraceEvent>, TraceIoError>;

    /// Total events in the stream when known up front (progress
    /// display only; `None` when the stream length is not predictable).
    fn len_hint(&self) -> Option<u64> {
        None
    }
}

impl<S: WriteSource + ?Sized> WriteSource for &mut S {
    fn cores(&self) -> usize {
        (**self).cores()
    }

    fn next_event(&mut self) -> Result<Option<TraceEvent>, TraceIoError> {
        (**self).next_event()
    }

    fn len_hint(&self) -> Option<u64> {
        (**self).len_hint()
    }
}

impl<S: WriteSource + ?Sized> WriteSource for Box<S> {
    fn cores(&self) -> usize {
        (**self).cores()
    }

    fn next_event(&mut self) -> Result<Option<TraceEvent>, TraceIoError> {
        (**self).next_event()
    }

    fn len_hint(&self) -> Option<u64> {
        (**self).len_hint()
    }
}

/// The canonical core count of an event sequence: `max(core) + 1`, or
/// `1` when empty. Every source and container must agree on this
/// formula.
#[must_use]
pub fn core_count<'a, I: IntoIterator<Item = &'a TraceEvent>>(events: I) -> usize {
    events
        .into_iter()
        .map(|e| usize::from(e.core) + 1)
        .max()
        .unwrap_or(1)
}

/// The trivial in-RAM source: iterates a borrowed [`Trace`].
///
/// # Examples
///
/// ```
/// use deuce_trace::{Benchmark, Trace, TraceConfig, TraceSource, WriteSource};
///
/// let trace = TraceConfig::new(Benchmark::Mcf).writes(100).generate();
/// let mut source = TraceSource::new(&trace);
/// let mut pulled = 0;
/// while source.next_event().unwrap().is_some() {
///     pulled += 1;
/// }
/// assert_eq!(pulled, trace.len());
/// ```
#[derive(Debug, Clone)]
pub struct TraceSource<'a> {
    events: &'a [TraceEvent],
    pos: usize,
    cores: usize,
}

impl<'a> TraceSource<'a> {
    /// Streams `trace` from its first event.
    #[must_use]
    pub fn new(trace: &'a Trace) -> Self {
        Self {
            events: trace.events(),
            pos: 0,
            cores: core_count(trace.events()),
        }
    }
}

impl WriteSource for TraceSource<'_> {
    fn cores(&self) -> usize {
        self.cores
    }

    fn next_event(&mut self) -> Result<Option<TraceEvent>, TraceIoError> {
        let event = self.events.get(self.pos).cloned();
        if event.is_some() {
            self.pos += 1;
        }
        Ok(event)
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.events.len() as u64)
    }
}

impl Trace {
    /// Materialises a whole stream into a trace (the inverse of
    /// [`TraceSource`]). Mostly useful in tests and tools; the point of
    /// a source is usually *not* to do this.
    ///
    /// # Errors
    ///
    /// Propagates the source's [`TraceIoError`].
    pub fn from_source<S: WriteSource + ?Sized>(source: &mut S) -> Result<Trace, TraceIoError> {
        let mut trace = Trace::default();
        while let Some(event) = source.next_event()? {
            trace.push(event);
        }
        Ok(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Benchmark, TraceConfig};

    #[test]
    fn trace_source_replays_the_trace() {
        let trace = TraceConfig::new(Benchmark::Libquantum).writes(200).seed(3).generate();
        let mut source = TraceSource::new(&trace);
        assert_eq!(source.len_hint(), Some(trace.len() as u64));
        let replayed = Trace::from_source(&mut source).unwrap();
        assert_eq!(replayed, trace);
        assert!(source.next_event().unwrap().is_none(), "exhausted stays exhausted");
    }

    #[test]
    fn core_count_matches_simulator_formula() {
        assert_eq!(core_count([].iter()), 1, "empty stream sizes one core");
        let trace = TraceConfig::new(Benchmark::Mcf).writes(50).cores(3).generate();
        assert_eq!(core_count(trace.events()), 3);
        assert_eq!(TraceSource::new(&trace).cores(), 3);
    }

    #[test]
    fn fewer_writes_than_cores_only_uses_leading_cores() {
        let trace = TraceConfig::new(Benchmark::Mcf).writes(2).cores(8).generate();
        assert_eq!(core_count(trace.events()), 2);
    }
}

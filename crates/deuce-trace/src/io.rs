//! A small self-describing binary container for traces, so generated
//! workloads can be saved and replayed across runs and tools.

use std::io::{self, Read, Write};

use deuce_crypto::{LineAddr, LINE_BYTES};

use crate::trace::{Op, Trace, TraceEvent};

const MAGIC: &[u8; 8] = b"DEUCETRC";
const VERSION: u32 = 1;

/// Errors from trace (de)serialization.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream does not start with the trace magic.
    BadMagic([u8; 8]),
    /// The container version is not supported.
    UnsupportedVersion(u32),
    /// An event record had an invalid op byte.
    BadOp(u8),
}

impl core::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace i/o failed: {e}"),
            TraceIoError::BadMagic(m) => write!(f, "not a DEUCE trace (magic {m:02x?})"),
            TraceIoError::UnsupportedVersion(v) => write!(f, "unsupported trace version {v}"),
            TraceIoError::BadOp(op) => write!(f, "invalid op byte {op:#04x}"),
        }
    }
}

impl std::error::Error for TraceIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceIoError {
    fn from(e: io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

/// Serializes a trace. A `&mut` reference can be passed for any
/// `W: Write`.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn write_trace<W: Write>(mut writer: W, trace: &Trace) -> Result<(), TraceIoError> {
    writer.write_all(MAGIC)?;
    writer.write_all(&VERSION.to_le_bytes())?;
    writer.write_all(&(trace.len() as u64).to_le_bytes())?;
    for e in trace.events() {
        writer.write_all(&[e.core, matches!(e.op, Op::Write) as u8])?;
        writer.write_all(&e.instr.to_le_bytes())?;
        writer.write_all(&e.line.value().to_le_bytes())?;
        if let Some(data) = &e.data {
            writer.write_all(data)?;
        }
    }
    Ok(())
}

/// Deserializes a trace written by [`write_trace`]. A `&mut` reference
/// can be passed for any `R: Read`.
///
/// # Errors
///
/// Returns [`TraceIoError`] on malformed input or I/O failure.
pub fn read_trace<R: Read>(mut reader: R) -> Result<Trace, TraceIoError> {
    let mut magic = [0u8; 8];
    reader.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(TraceIoError::BadMagic(magic));
    }
    let mut buf4 = [0u8; 4];
    reader.read_exact(&mut buf4)?;
    let version = u32::from_le_bytes(buf4);
    if version != VERSION {
        return Err(TraceIoError::UnsupportedVersion(version));
    }
    let mut buf8 = [0u8; 8];
    reader.read_exact(&mut buf8)?;
    let count = u64::from_le_bytes(buf8);

    let mut trace = Trace::default();
    for _ in 0..count {
        let mut head = [0u8; 2];
        reader.read_exact(&mut head)?;
        let core = head[0];
        let op = match head[1] {
            0 => Op::Read,
            1 => Op::Write,
            other => return Err(TraceIoError::BadOp(other)),
        };
        reader.read_exact(&mut buf8)?;
        let instr = u64::from_le_bytes(buf8);
        reader.read_exact(&mut buf8)?;
        let line = LineAddr::new(u64::from_le_bytes(buf8));
        let data = if op == Op::Write {
            let mut data = [0u8; LINE_BYTES];
            reader.read_exact(&mut data)?;
            Some(data)
        } else {
            None
        };
        trace.push(TraceEvent {
            core,
            instr,
            op,
            line,
            data,
        });
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Benchmark, TraceConfig};

    #[test]
    fn roundtrip() {
        let trace = TraceConfig::new(Benchmark::Omnetpp).writes(300).seed(4).generate();
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).unwrap();
        let loaded = read_trace(buf.as_slice()).unwrap();
        assert_eq!(trace, loaded);
    }

    #[test]
    fn rejects_bad_magic() {
        let err = read_trace(&b"NOTATRACE-------"[..]).unwrap_err();
        assert!(matches!(err, TraceIoError::BadMagic(_)));
        assert!(err.to_string().contains("not a DEUCE trace"));
    }

    #[test]
    fn rejects_bad_version() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&99u32.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        assert!(matches!(
            read_trace(buf.as_slice()),
            Err(TraceIoError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn rejects_truncated_stream() {
        let trace = TraceConfig::new(Benchmark::Astar).writes(10).generate();
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).unwrap();
        buf.truncate(buf.len() - 5);
        assert!(matches!(read_trace(buf.as_slice()), Err(TraceIoError::Io(_))));
    }

    #[test]
    fn rejects_bad_op_byte() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.extend_from_slice(&[0u8, 7u8]); // op byte 7 is invalid
        buf.extend_from_slice(&[0u8; 16]);
        assert!(matches!(read_trace(buf.as_slice()), Err(TraceIoError::BadOp(7))));
    }
}

//! The byte-addressable secure memory.

use deuce_crypto::{LineAddr, OtpEngine, SecretKey, LINE_BYTES};
use deuce_integrity::{CounterTree, LineMac};
use deuce_nvm::{write_slots, SlotConfig};
use deuce_schemes::{AnyScheme, LineStore, SchemeConfig};

/// Errors from [`SecureMemory`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemoryError {
    /// The access runs past the end of the memory.
    OutOfBounds {
        /// First byte of the access.
        offset: usize,
        /// Access length.
        len: usize,
        /// Memory size.
        size: usize,
    },
    /// The integrity layer rejected a fetched line (bus tampering).
    IntegrityViolation {
        /// The offending line index.
        line: usize,
    },
}

impl core::fmt::Display for MemoryError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MemoryError::OutOfBounds { offset, len, size } => {
                write!(f, "access [{offset}, {offset}+{len}) exceeds memory size {size}")
            }
            MemoryError::IntegrityViolation { line } => {
                write!(f, "integrity violation on line {line}")
            }
        }
    }
}

impl std::error::Error for MemoryError {}

/// Cumulative device statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoryStats {
    /// Line writes performed (read-modify-write of partial lines
    /// included).
    pub line_writes: u64,
    /// Line reads performed.
    pub line_reads: u64,
    /// PCM cells flipped (data + scheme metadata).
    pub bit_flips: u64,
    /// Write slots consumed.
    pub write_slots: u64,
    /// Integrity verifications performed.
    pub integrity_checks: u64,
}

/// Byte-addressable encrypted NVM with DEUCE-style write reduction.
///
/// Writes smaller than a line perform the controller's read-modify-write
/// internally. All data at rest is encrypted per the configured scheme;
/// with integrity enabled, counters are authenticated by a Merkle tree
/// and lines carry MACs, so tampering surfaces as
/// [`MemoryError::IntegrityViolation`].
#[derive(Debug)]
pub struct SecureMemory {
    engine: OtpEngine,
    scheme: SchemeConfig,
    /// Arena-backed line storage, materialised lazily: an untouched line
    /// logically holds encrypted zeroes but costs no storage.
    store: LineStore<AnyScheme>,
    line_count: usize,
    counters: Vec<u64>,
    integrity: Option<Integrity>,
    stats: MemoryStats,
    slot_config: SlotConfig,
}

#[derive(Debug)]
struct Integrity {
    tree: CounterTree,
    mac: LineMac,
    /// Per-line MAC tags, sealed lazily when a line first materialises.
    tags: Vec<Option<deuce_integrity::Digest>>,
}

impl SecureMemory {
    pub(crate) fn with_config(
        size_bytes: usize,
        scheme: SchemeConfig,
        integrity: bool,
        key_seed: u64,
    ) -> Self {
        let line_count = size_bytes.div_ceil(LINE_BYTES);
        let key = SecretKey::from_seed(key_seed);
        let engine = OtpEngine::new(&key);
        let store = LineStore::new(AnyScheme::from_config(&scheme));
        let integrity = integrity.then(|| {
            // Domain-separate the integrity keys from the pad key.
            let mac = LineMac::new(*SecretKey::from_seed(key_seed ^ 0x004D_4143).as_bytes());
            let tree = CounterTree::new(line_count, *SecretKey::from_seed(key_seed ^ 1).as_bytes());
            Integrity { tree, mac, tags: vec![None; line_count] }
        });
        Self {
            engine,
            scheme,
            store,
            line_count,
            counters: vec![0; line_count],
            integrity,
            stats: MemoryStats::default(),
            slot_config: SlotConfig::PAPER,
        }
    }

    /// Memory capacity in bytes (whole lines).
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.line_count * LINE_BYTES
    }

    /// Lines materialised so far (touched by a write, or verified under
    /// integrity). Untouched lines cost no line storage.
    #[must_use]
    pub fn resident_lines(&self) -> usize {
        self.store.len()
    }

    /// Cumulative device statistics.
    #[must_use]
    pub fn stats(&self) -> MemoryStats {
        self.stats
    }

    /// The configured scheme.
    #[must_use]
    pub fn scheme(&self) -> SchemeConfig {
        self.scheme
    }

    fn check_bounds(&self, offset: usize, len: usize) -> Result<(), MemoryError> {
        if offset.checked_add(len).is_none_or(|end| end > self.size_bytes()) {
            Err(MemoryError::OutOfBounds {
                offset,
                len,
                size: self.size_bytes(),
            })
        } else {
            Ok(())
        }
    }

    /// Materialises `line` (zero-filled, encrypted per the scheme) and,
    /// with integrity enabled, seals its initial-placement tag — exactly
    /// the state an eager construction would have produced for it.
    fn materialize_line(&mut self, line: usize) {
        let addr = LineAddr::new(line as u64);
        if !self.store.contains(addr) {
            let _ = self.store.materialize(&self.engine, addr, &[0u8; LINE_BYTES]);
        }
        if let Some(integrity) = &mut self.integrity {
            if integrity.tags[line].is_none() {
                let image = self.store.image(addr).expect("line just materialised");
                integrity.tags[line] = Some(integrity.mac.tag(addr, 0, image.data()));
            }
        }
    }

    fn verify_line(&mut self, line: usize) -> Result<(), MemoryError> {
        if self.integrity.is_none() {
            return Ok(());
        }
        self.materialize_line(line);
        self.stats.integrity_checks += 1;
        let addr = LineAddr::new(line as u64);
        let image = self.store.image(addr).expect("verified lines are materialised");
        let counter = self.counters[line];
        let integrity = self.integrity.as_mut().expect("checked above");
        integrity
            .tree
            .verify(line, counter)
            .map_err(|_| MemoryError::IntegrityViolation { line })?;
        let tag = integrity.tags[line].as_ref().expect("materialised lines carry a tag");
        if !integrity.mac.check(addr, counter, image.data(), tag) {
            return Err(MemoryError::IntegrityViolation { line });
        }
        Ok(())
    }

    fn read_line(&mut self, line: usize) -> Result<[u8; LINE_BYTES], MemoryError> {
        self.verify_line(line)?;
        self.stats.line_reads += 1;
        // An untouched line logically holds zeroes; reading it does not
        // materialise storage (unless integrity verification already did).
        Ok(self
            .store
            .read(&self.engine, LineAddr::new(line as u64))
            .unwrap_or([0u8; LINE_BYTES]))
    }

    fn write_line(&mut self, line: usize, data: &[u8; LINE_BYTES]) {
        let addr = LineAddr::new(line as u64);
        let outcome = self.store.write(&self.engine, addr, data);
        self.counters[line] += 1;
        self.stats.line_writes += 1;
        self.stats.bit_flips += u64::from(outcome.flips.total());
        self.stats.write_slots +=
            u64::from(write_slots(&outcome.old_image, &outcome.new_image, self.slot_config));
        if let Some(integrity) = &mut self.integrity {
            integrity.tree.update(line, self.counters[line]);
            let image = self.store.image(addr).expect("written lines are materialised");
            integrity.tags[line] =
                Some(integrity.mac.tag(addr, self.counters[line], image.data()));
        }
    }

    /// Reads `buf.len()` bytes starting at `offset`.
    ///
    /// # Errors
    ///
    /// [`MemoryError::OutOfBounds`] past the end;
    /// [`MemoryError::IntegrityViolation`] if verification fails.
    pub fn read(&mut self, offset: usize, buf: &mut [u8]) -> Result<(), MemoryError> {
        self.check_bounds(offset, buf.len())?;
        let mut cursor = 0usize;
        while cursor < buf.len() {
            let absolute = offset + cursor;
            let line = absolute / LINE_BYTES;
            let within = absolute % LINE_BYTES;
            let take = (LINE_BYTES - within).min(buf.len() - cursor);
            let data = self.read_line(line)?;
            buf[cursor..cursor + take].copy_from_slice(&data[within..within + take]);
            cursor += take;
        }
        Ok(())
    }

    /// Writes `data` starting at `offset` (read-modify-write for
    /// partial lines).
    ///
    /// # Errors
    ///
    /// [`MemoryError::OutOfBounds`] past the end;
    /// [`MemoryError::IntegrityViolation`] if a read-modify-write's
    /// verification fails.
    pub fn write(&mut self, offset: usize, data: &[u8]) -> Result<(), MemoryError> {
        self.check_bounds(offset, data.len())?;
        let mut cursor = 0usize;
        while cursor < data.len() {
            let absolute = offset + cursor;
            let line = absolute / LINE_BYTES;
            let within = absolute % LINE_BYTES;
            let take = (LINE_BYTES - within).min(data.len() - cursor);
            let mut buffer = if take == LINE_BYTES {
                [0u8; LINE_BYTES]
            } else {
                self.read_line(line)?
            };
            buffer[within..within + take].copy_from_slice(&data[cursor..cursor + take]);
            self.write_line(line, &buffer);
            cursor += take;
        }
        Ok(())
    }

    /// Simulates a bus-tampering adversary resetting a line's stored
    /// counter (test/demo hook). Subsequent accesses to the line fail
    /// verification when integrity is enabled.
    pub fn tamper_counter(&mut self, line: usize, forged: u64) {
        self.counters[line] = forged;
    }

    /// Simulates a power cycle: this *is* non-volatile memory, so all
    /// state — ciphertext, counters, integrity tree — persists; only
    /// volatile controller state (statistics) resets. The returned
    /// memory decrypts identically, which is exactly the property that
    /// makes stolen-DIMM attacks worth defending against.
    #[must_use]
    pub fn power_cycle(mut self) -> Self {
        self.stats = MemoryStats::default();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemoryBuilder;
    use deuce_schemes::SchemeKind;

    #[test]
    fn byte_addressable_roundtrip() {
        let mut memory = MemoryBuilder::new(1024).key_seed(1).build();
        memory.write(10, b"alpha").unwrap();
        memory.write(700, b"omega").unwrap();
        let mut buf = [0u8; 5];
        memory.read(10, &mut buf).unwrap();
        assert_eq!(&buf, b"alpha");
        memory.read(700, &mut buf).unwrap();
        assert_eq!(&buf, b"omega");
    }

    #[test]
    fn cross_line_access() {
        let mut memory = MemoryBuilder::new(256).key_seed(2).build();
        let payload: Vec<u8> = (0..150).collect();
        memory.write(40, &payload).unwrap(); // spans 3 lines
        let mut buf = vec![0u8; 150];
        memory.read(40, &mut buf).unwrap();
        assert_eq!(buf, payload);
        assert!(memory.stats().line_writes >= 3);
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mut memory = MemoryBuilder::new(128).build();
        assert!(matches!(
            memory.write(120, &[0u8; 16]),
            Err(MemoryError::OutOfBounds { .. })
        ));
        let mut buf = [0u8; 1];
        assert!(memory.read(128, &mut buf).is_err());
        assert!(memory.read(usize::MAX, &mut buf).is_err());
    }

    #[test]
    fn stats_accumulate() {
        let mut memory = MemoryBuilder::new(512).scheme(SchemeKind::EncryptedDcw).build();
        memory.write(0, &[1u8; 64]).unwrap();
        memory.write(0, &[2u8; 64]).unwrap();
        let stats = memory.stats();
        assert_eq!(stats.line_writes, 2);
        assert!(stats.bit_flips > 400, "two avalanche writes: {}", stats.bit_flips);
        assert!(stats.write_slots >= 7);
    }

    #[test]
    fn deuce_scheme_flips_less_than_encrypted() {
        let run = |kind: SchemeKind| {
            let mut memory = MemoryBuilder::new(512).scheme(kind).key_seed(3).build();
            for i in 0..50u8 {
                memory.write(0, &[i]).unwrap(); // single-byte updates
            }
            memory.stats().bit_flips
        };
        let encrypted = run(SchemeKind::EncryptedDcw);
        let deuce = run(SchemeKind::Deuce);
        assert!(deuce * 2 < encrypted, "DEUCE {deuce} vs encrypted {encrypted}");
    }

    #[test]
    fn integrity_detects_counter_tampering() {
        let mut memory = MemoryBuilder::new(256).integrity(true).key_seed(4).build();
        memory.write(64, b"secret").unwrap();
        let mut buf = [0u8; 6];
        memory.read(64, &mut buf).unwrap();
        assert_eq!(&buf, b"secret");

        memory.tamper_counter(1, 0);
        assert_eq!(
            memory.read(64, &mut buf),
            Err(MemoryError::IntegrityViolation { line: 1 })
        );
    }

    #[test]
    fn integrity_off_is_permissive() {
        let mut memory = MemoryBuilder::new(256).key_seed(5).build();
        memory.write(64, b"secret").unwrap();
        memory.tamper_counter(1, 0);
        // Without integrity the (simulated) rollback goes unnoticed —
        // this is exactly the exposure footnote 1 describes.
        let mut buf = [0u8; 6];
        assert!(memory.read(64, &mut buf).is_ok());
    }

    #[test]
    fn power_cycle_preserves_data_and_protection() {
        let mut memory = MemoryBuilder::new(512).integrity(true).key_seed(8).build();
        memory.write(100, b"persists").unwrap();
        let before = memory.stats();
        assert!(before.line_writes > 0);

        let mut rebooted = memory.power_cycle();
        assert_eq!(rebooted.stats(), MemoryStats::default(), "stats are volatile");
        let mut buf = [0u8; 8];
        rebooted.read(100, &mut buf).unwrap();
        assert_eq!(&buf, b"persists");

        // Integrity still guards the persisted state.
        rebooted.tamper_counter(1, 0);
        assert!(rebooted.read(64, &mut buf).is_err());
    }

    /// Regression test for the eager-construction startup cost: building
    /// a memory must not materialise any line, and plain reads of
    /// untouched lines must stay free.
    #[test]
    fn construction_is_lazy() {
        let mut memory = MemoryBuilder::new(1 << 20).key_seed(6).build();
        assert_eq!(memory.resident_lines(), 0, "no lines materialised at startup");
        let mut buf = [0u8; 8];
        memory.read(4096, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 8], "untouched lines read as zeroes");
        assert_eq!(memory.resident_lines(), 0, "reads without integrity stay lazy");
        memory.write(0, &[1u8; 8]).unwrap();
        assert_eq!(memory.resident_lines(), 1, "one write materialises one line");
    }

    /// With integrity enabled, verification seals the untouched line's
    /// initial-placement tag lazily — and still rejects tampering.
    #[test]
    fn lazy_integrity_tags_still_verify() {
        let mut memory = MemoryBuilder::new(1024).integrity(true).key_seed(7).build();
        assert_eq!(memory.resident_lines(), 0);
        let mut buf = [0u8; 4];
        memory.read(128, &mut buf).unwrap(); // verifies an untouched line
        assert_eq!(buf, [0u8; 4]);
        assert_eq!(memory.resident_lines(), 1, "verification materialises the line");

        memory.tamper_counter(5, 99);
        assert_eq!(
            memory.read(5 * 64, &mut buf),
            Err(MemoryError::IntegrityViolation { line: 5 })
        );
    }

    #[test]
    fn error_display() {
        let err = MemoryError::OutOfBounds { offset: 1, len: 2, size: 3 };
        assert!(err.to_string().contains("exceeds"));
        let err = MemoryError::IntegrityViolation { line: 9 };
        assert!(err.to_string().contains('9'));
    }
}

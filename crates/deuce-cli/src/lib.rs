//! Library backing the `deuce` command-line tool.
//!
//! All command logic lives here (unit-testable); `main.rs` is a thin
//! shell. The tool drives the full simulator stack from the terminal:
//!
//! ```text
//! deuce gen --benchmark libq --writes 20000 -o libq.trace
//! deuce stats libq.trace
//! deuce run --trace libq.trace --scheme deuce
//! deuce run --benchmark mcf --scheme dyndeuce --epoch 16
//! deuce compare --benchmark gems
//! deuce run --benchmark libq --scheme deuce --telemetry run.jsonl
//! deuce report run.jsonl
//! deuce run --benchmark libq --scheme deuce --faults --endurance-scale 1e-6
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod args;
mod commands;
mod format;
mod watch;

pub use args::{
    CliError, Command, FaultArgs, GenArgs, MergeArgs, ReportArgs, RunArgs, ServeArgs, StatsArgs,
    TraceFormat, WatchArgs,
};
pub use commands::{aes_backend, compare, gen, merge, report, run, serve, stats, sweep};
pub use watch::watch;
pub use format::{FaultSummary, RunSummary, METRIC_HEADER};

/// Entry point shared by the binary and tests.
///
/// # Errors
///
/// Returns a [`CliError`] for malformed arguments or failing I/O; the
/// binary prints it and exits non-zero.
pub fn main_with_args<I, W>(argv: I, out: &mut W) -> Result<(), CliError>
where
    I: IntoIterator<Item = String>,
    W: std::io::Write,
{
    match Command::parse(argv)? {
        Command::Gen(args) => gen(&args, out),
        Command::Stats(args) => stats(&args, out),
        Command::Run(args) => run(&args, out),
        Command::Compare(args) => compare(&args, out),
        Command::Sweep(args) => sweep(&args, out),
        Command::Merge(args) => merge(&args, out),
        Command::Report(args) => report(&args, out),
        Command::Watch(args) => watch(&args, out),
        Command::Serve(args) => serve(&args, out),
        Command::AesBackend => aes_backend(out),
        Command::Help => {
            writeln!(out, "{}", args::USAGE)?;
            Ok(())
        }
    }
}

//! Synthetic SPEC2006-calibrated writeback traces for secure-NVM studies.
//!
//! The DEUCE paper evaluates 12 SPEC2006 benchmarks (8-copy rate mode,
//! 4-billion-instruction slices) traced through a 64 MB L4 cache. Neither
//! the binaries nor the authors' traces are available, so this crate
//! builds *calibrated synthetic generators*: one profile per benchmark,
//! parameterized directly on the statistics every DEUCE result depends
//! on —
//!
//! 1. read/writeback arrival rates (Table 2's MPKI / WBPKI),
//! 2. how many 16-bit words of a line change per writeback and how
//!    *stable* that modified-word footprint is across writes (drives
//!    DEUCE, Figs. 9–10),
//! 3. how many and which bits change inside a modified word — counter,
//!    pointer, or float update patterns (drives DCW/FNW rates and the
//!    per-bit-position skew of Fig. 12),
//! 4. line reuse (Zipf working-set selection).
//!
//! The generators are deterministic given a seed.
//!
//! # Examples
//!
//! ```
//! use deuce_trace::{Benchmark, TraceConfig};
//!
//! let trace = TraceConfig::new(Benchmark::Libquantum)
//!     .lines(64)
//!     .writes(1_000)
//!     .seed(7)
//!     .generate();
//! assert_eq!(trace.write_count(), 1_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod attack;
mod generator;
mod io;
mod profiles;
mod source;
mod stats;
mod trace;
mod value_model;

pub use attack::{AttackKind, AttackTrace};
pub use generator::{GeneratorSource, TraceConfig};
pub use io::{
    open_source, read_trace, write_source_jsonl, write_source_to_file, write_trace,
    write_trace_jsonl, BinaryStreamSource, JsonlStreamSource, TraceIoError,
};
pub use source::{core_count, TraceSource, WriteSource};
pub use profiles::{Benchmark, BenchmarkProfile, FootprintDrift};
pub use stats::TraceStats;
pub use trace::{Op, Trace, TraceEvent};
pub use value_model::WordRole;

pub use deuce_crypto::{LineAddr, LineBytes, LINE_BYTES};

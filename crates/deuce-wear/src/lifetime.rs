//! Lifetime estimation from cell wear (Fig. 14).
//!
//! This is the *analytic* view: [`relative_lifetime`] post-processes a
//! run's final wear histogram to compute when the binding cell would
//! have died. The complementary *online* view lives in the simulator —
//! enabling `deuce_sim::FaultConfig` makes cells actually fail at
//! [`deuce_nvm::FailureModel`] endurance thresholds mid-run, and the
//! resulting `deuce_sim::FaultReport` records the first uncorrectable
//! write directly. The two agree on Fig. 14's ordering (pinned by
//! `deuce-sim/tests/fault_injection.rs`); use this module for cheap
//! normalized ratios over many configurations, and fault injection to
//! watch the ECP/retirement degradation path itself.

/// How inter-line wear is assumed to be handled when estimating lifetime
/// from intra-line bit wear.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LifetimePolicy {
    /// Vertical wear leveling (Start-Gap) spreads line-level wear, so
    /// lifetime is limited by the hottest *bit position* aggregated
    /// across lines. This matches the paper's setup, where every
    /// configuration in Fig. 14 includes vertical wear leveling.
    VerticalLeveled,
    /// No inter-line leveling: lifetime is limited by the single hottest
    /// cell anywhere (pessimistic).
    Raw,
    /// Perfect wear leveling oracle: every cell wears at the average rate
    /// (the upper bound HWL is within 0.5% of, per §5.3).
    Perfect,
}

/// Lifetime metric for one configuration: line writes sustained per unit
/// of wear on the binding cell. Higher is longer-lived; the *ratio* of
/// two metrics is the normalized lifetime of Fig. 14.
///
/// `position_totals` is per-bit-position write counts aggregated across
/// lines ([`deuce_nvm::CellArray::position_totals`]); `per_cell_max` is
/// the hottest single cell; `line_writes` the writes recorded.
///
/// # Examples
///
/// ```
/// use deuce_wear::{relative_lifetime, LifetimePolicy};
///
/// // 4 positions, one of which is written twice as often:
/// let totals = vec![10, 20, 10, 10];
/// let leveled = relative_lifetime(&totals, 20, 100, LifetimePolicy::VerticalLeveled);
/// let perfect = relative_lifetime(&totals, 20, 100, LifetimePolicy::Perfect);
/// assert!(perfect > leveled);
/// ```
#[must_use]
pub fn relative_lifetime(
    position_totals: &[u64],
    per_cell_max: u64,
    line_writes: u64,
    policy: LifetimePolicy,
) -> f64 {
    if line_writes == 0 {
        return f64::INFINITY;
    }
    let binding_rate = match policy {
        LifetimePolicy::VerticalLeveled => {
            position_totals.iter().copied().max().unwrap_or(0) as f64
        }
        LifetimePolicy::Raw => per_cell_max as f64,
        LifetimePolicy::Perfect => {
            if position_totals.is_empty() {
                0.0
            } else {
                position_totals.iter().sum::<u64>() as f64 / position_totals.len() as f64
            }
        }
    };
    if binding_rate == 0.0 {
        f64::INFINITY
    } else {
        line_writes as f64 / binding_rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_wear_matches_perfect() {
        let totals = vec![50u64; 8];
        let leveled = relative_lifetime(&totals, 50, 100, LifetimePolicy::VerticalLeveled);
        let perfect = relative_lifetime(&totals, 50, 100, LifetimePolicy::Perfect);
        assert!((leveled - perfect).abs() < 1e-12);
    }

    #[test]
    fn skewed_wear_cuts_lifetime() {
        let skewed = vec![10, 10, 10, 90];
        let uniform = vec![30, 30, 30, 30];
        let l_skewed = relative_lifetime(&skewed, 90, 100, LifetimePolicy::VerticalLeveled);
        let l_uniform = relative_lifetime(&uniform, 30, 100, LifetimePolicy::VerticalLeveled);
        assert!(l_uniform / l_skewed > 2.9, "uniform should last 3x longer");
    }

    #[test]
    fn raw_policy_uses_hottest_cell() {
        let totals = vec![10, 10];
        // Hottest single cell is hotter than any aggregated position.
        let raw = relative_lifetime(&totals, 40, 100, LifetimePolicy::Raw);
        let leveled = relative_lifetime(&totals, 40, 100, LifetimePolicy::VerticalLeveled);
        assert!(raw < leveled);
    }

    #[test]
    fn zero_writes_is_infinite() {
        assert!(relative_lifetime(&[], 0, 0, LifetimePolicy::Raw).is_infinite());
        assert!(relative_lifetime(&[0, 0], 0, 5, LifetimePolicy::Perfect).is_infinite());
    }

    #[test]
    fn halved_flips_double_lifetime_when_uniform() {
        // The headline claim: DEUCE halves bit writes; with HWL making
        // them uniform, lifetime doubles.
        let encrypted = vec![256u64; 544]; // 50% of 512 bits per write, uniform
        let deuce_hwl = vec![122u64; 544]; // ~24% per write, uniform
        let l_enc = relative_lifetime(&encrypted, 256, 512, LifetimePolicy::VerticalLeveled);
        let l_deuce = relative_lifetime(&deuce_hwl, 122, 512, LifetimePolicy::VerticalLeveled);
        let ratio = l_deuce / l_enc;
        assert!((ratio - 2.1).abs() < 0.15, "lifetime ratio {ratio}");
    }
}

//! The memory-controller timing model.
//!
//! A deliberately compact trace-driven model that reproduces the
//! mechanism behind Fig. 15–16: PCM banks are occupied by writes for
//! `slots × 150 ns`, reads are blocking for the issuing core and must
//! wait for their bank, so schemes that need fewer write slots free the
//! banks sooner and speed reads (and the whole system) up.

use deuce_nvm::{Geometry, TimingParams};

use crate::config::CpuParams;

/// Per-bank, per-core timing state driven event by event.
#[derive(Debug, Clone)]
pub struct MemoryTimingModel {
    timing: TimingParams,
    cpu: CpuParams,
    geometry: Geometry,
    bank_free_ns: Vec<f64>,
    /// Global write-power channels (§6.1 / \[22\]): each channel can drive
    /// one slot's worth of current; empty = unlimited power delivery.
    power_free_ns: Vec<f64>,
    core_time_ns: Vec<f64>,
    core_last_instr: Vec<u64>,
    total_read_latency_ns: f64,
    reads: u64,
}

impl MemoryTimingModel {
    /// Creates the model for `cores` cores with unlimited write power
    /// (banks are the only write-concurrency limit).
    #[must_use]
    pub fn new(timing: TimingParams, cpu: CpuParams, geometry: Geometry, cores: usize) -> Self {
        Self::with_power_channels(timing, cpu, geometry, cores, None)
    }

    /// Creates the model with a global current budget of `channels`
    /// concurrent write slots across the whole module ("multiple writes
    /// can be scheduled concurrently, provided the total number of bit
    /// flips does not exceed the current capacity", §6.1).
    #[must_use]
    pub fn with_power_channels(
        timing: TimingParams,
        cpu: CpuParams,
        geometry: Geometry,
        cores: usize,
        channels: Option<usize>,
    ) -> Self {
        Self {
            timing,
            cpu,
            geometry,
            bank_free_ns: vec![0.0; geometry.total_banks() as usize],
            power_free_ns: vec![0.0; channels.unwrap_or(0)],
            core_time_ns: vec![0.0; cores.max(1)],
            core_last_instr: vec![0; cores.max(1)],
            total_read_latency_ns: 0.0,
            reads: 0,
        }
    }

    fn arrival(&mut self, core: usize, instr: u64) -> f64 {
        let delta = instr.saturating_sub(self.core_last_instr[core]);
        self.core_last_instr[core] = instr;
        self.core_time_ns[core] += delta as f64 / self.cpu.instr_per_ns;
        self.core_time_ns[core]
    }

    fn bank_index(&self, line: deuce_crypto::LineAddr) -> usize {
        self.geometry.bank_of(line).0 as usize
    }

    /// Issues a blocking read: the core stalls until the bank can service
    /// it and the array read completes. Reads have priority over the
    /// bank's write backlog — they wait only for a
    /// `read_priority_weight` fraction of it (write pausing /
    /// cancellation; see [`TimingParams::read_priority_weight`]).
    pub fn read(&mut self, core: usize, instr: u64, line: deuce_crypto::LineAddr) {
        let arrival = self.arrival(core, instr);
        let bank = self.bank_index(line);
        let backlog = (self.bank_free_ns[bank] - arrival).max(0.0);
        let start = arrival + backlog * self.timing.read_priority_weight;
        let finish =
            start + (self.timing.read_ns + self.timing.read_overhead_ns) as f64;
        self.bank_free_ns[bank] = self.bank_free_ns[bank].max(finish);
        self.total_read_latency_ns += finish - arrival;
        self.reads += 1;
        self.core_time_ns[core] = finish;
    }

    /// Issues a non-blocking write consuming `slots` write slots: the
    /// bank is occupied but the core continues. With a power budget
    /// configured, the write also needs a free current channel.
    pub fn write(&mut self, core: usize, instr: u64, line: deuce_crypto::LineAddr, slots: u32) {
        let arrival = self.arrival(core, instr);
        let bank = self.bank_index(line);
        let mut start = arrival.max(self.bank_free_ns[bank]);
        let duration = self.timing.write_latency_ns(slots) as f64;
        if !self.power_free_ns.is_empty() {
            // Claim the earliest-free current channel.
            let channel = self
                .power_free_ns
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .expect("non-empty");
            start = start.max(self.power_free_ns[channel]);
            self.power_free_ns[channel] = start + duration;
        }
        self.bank_free_ns[bank] = start + duration;
    }

    /// Execution time: the slowest core's time, extended to cover any
    /// still-draining bank.
    #[must_use]
    pub fn exec_time_ns(&self) -> f64 {
        let core_max = self.core_time_ns.iter().copied().fold(0.0, f64::max);
        let bank_max = self.bank_free_ns.iter().copied().fold(0.0, f64::max);
        core_max.max(bank_max)
    }

    /// Mean read latency (queueing + service) observed so far.
    #[must_use]
    pub fn avg_read_latency_ns(&self) -> f64 {
        if self.reads == 0 {
            0.0
        } else {
            self.total_read_latency_ns / self.reads as f64
        }
    }
}

/// The timing model is the controller pipeline's stage 4: every issued
/// request is charged latency, bank occupancy, and power-channel time.
impl deuce_memctl::TimingStage for MemoryTimingModel {
    fn read(&mut self, core: usize, instr: u64, line: deuce_crypto::LineAddr) {
        MemoryTimingModel::read(self, core, instr, line);
    }

    fn write(&mut self, core: usize, instr: u64, line: deuce_crypto::LineAddr, slots: u32) {
        MemoryTimingModel::write(self, core, instr, line, slots);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deuce_crypto::LineAddr;

    fn model(cores: usize) -> MemoryTimingModel {
        // Strict FIFO keeps the arithmetic in these tests exact.
        MemoryTimingModel::new(
            TimingParams::STRICT_FIFO,
            CpuParams::PAPER,
            Geometry::PAPER,
            cores,
        )
    }

    #[test]
    fn read_priority_shortens_the_wait() {
        let mut strict = model(1);
        strict.write(0, 0, LineAddr::new(0), 4);
        strict.read(0, 1600, LineAddr::new(32));
        let mut prioritized = MemoryTimingModel::new(
            TimingParams::PAPER,
            CpuParams::PAPER,
            Geometry::PAPER,
            1,
        );
        prioritized.write(0, 0, LineAddr::new(0), 4);
        prioritized.read(0, 1600, LineAddr::new(32));
        // Strict: waits 500 ns of backlog. Prioritized: 35% of it, plus
        // the controller overhead the PAPER config includes.
        assert!((strict.avg_read_latency_ns() - 575.0).abs() < 1e-9);
        let expected = 500.0 * 0.35 + (75 + TimingParams::PAPER.read_overhead_ns) as f64;
        assert!((prioritized.avg_read_latency_ns() - expected).abs() < 1e-9);
    }

    #[test]
    fn uncontended_read_takes_array_latency() {
        let mut m = model(1);
        m.read(0, 1600, LineAddr::new(0)); // arrival at 100 ns
        assert!((m.exec_time_ns() - 175.0).abs() < 1e-9);
        assert!((m.avg_read_latency_ns() - 75.0).abs() < 1e-9);
    }

    #[test]
    fn read_behind_write_waits_for_slots() {
        let mut m = model(1);
        // Write at t=0 to bank 0 using 4 slots: bank busy until 600 ns.
        m.write(0, 0, LineAddr::new(0), 4);
        // Read arrives (same bank) at 100 ns: starts at 600, ends 675.
        m.read(0, 1600, LineAddr::new(32)); // 32 % 32 banks = bank 0
        assert!((m.exec_time_ns() - 675.0).abs() < 1e-9, "{}", m.exec_time_ns());
        assert!((m.avg_read_latency_ns() - 575.0).abs() < 1e-9);
    }

    #[test]
    fn fewer_slots_mean_faster_reads_behind_writes() {
        let mut slow = model(1);
        slow.write(0, 0, LineAddr::new(0), 4);
        slow.read(0, 160, LineAddr::new(32));
        let mut fast = model(1);
        fast.write(0, 0, LineAddr::new(0), 2);
        fast.read(0, 160, LineAddr::new(32));
        assert!(fast.exec_time_ns() < slow.exec_time_ns());
    }

    #[test]
    fn different_banks_do_not_interfere() {
        let mut m = model(1);
        m.write(0, 0, LineAddr::new(0), 4); // bank 0
        m.read(0, 160, LineAddr::new(1)); // bank 1: no wait
        // arrival 10 ns, finish 85 ns; bank 0 still busy till 600.
        assert!((m.avg_read_latency_ns() - 75.0).abs() < 1e-9);
        assert!((m.exec_time_ns() - 600.0).abs() < 1e-9, "bank drain dominates");
    }

    #[test]
    fn cores_progress_independently() {
        let mut m = model(2);
        m.read(0, 16_000, LineAddr::new(0));
        m.read(1, 1_600, LineAddr::new(1));
        // Core 0: arrival 1000, finish 1075. Core 1: arrival 100, finish 175.
        assert!((m.exec_time_ns() - 1075.0).abs() < 1e-9);
    }

    #[test]
    fn power_budget_serializes_writes_across_banks() {
        // Two 4-slot writes to different banks: with one power channel
        // they serialize; with unlimited power they overlap.
        let mut limited = MemoryTimingModel::with_power_channels(
            TimingParams::STRICT_FIFO,
            CpuParams::PAPER,
            Geometry::PAPER,
            1,
            Some(1),
        );
        limited.write(0, 0, LineAddr::new(0), 4);
        limited.write(0, 0, LineAddr::new(1), 4);
        assert!((limited.exec_time_ns() - 1200.0).abs() < 1e-9, "{}", limited.exec_time_ns());

        let mut unlimited = model(1);
        unlimited.write(0, 0, LineAddr::new(0), 4);
        unlimited.write(0, 0, LineAddr::new(1), 4);
        assert!((unlimited.exec_time_ns() - 600.0).abs() < 1e-9);
    }

    #[test]
    fn two_power_channels_allow_two_concurrent_writes() {
        let mut m = MemoryTimingModel::with_power_channels(
            TimingParams::STRICT_FIFO,
            CpuParams::PAPER,
            Geometry::PAPER,
            1,
            Some(2),
        );
        m.write(0, 0, LineAddr::new(0), 4);
        m.write(0, 0, LineAddr::new(1), 4);
        m.write(0, 0, LineAddr::new(2), 4);
        // Third write waits for a channel: 600 + 600 = 1200.
        assert!((m.exec_time_ns() - 1200.0).abs() < 1e-9);
    }

    #[test]
    fn writes_do_not_stall_the_core() {
        let mut m = model(1);
        m.write(0, 1600, LineAddr::new(0), 4);
        m.read(0, 1616, LineAddr::new(1)); // different bank
        // Core reached 100 ns at the write, 101 at the read; read ends 176.
        assert!((m.avg_read_latency_ns() - 75.0).abs() < 1e-9);
    }
}

//! Differential validation of the batched T-table pad path against the
//! serial byte-oriented reference engine.
//!
//! `OtpEngine::new` (batched fast path, optionally cached) and
//! `OtpEngine::new_reference` must emit bit-identical pads for every
//! `(address, counter)` pair — this is the engine-level half of the
//! bit-identical-ciphertext contract (the cipher-level half lives in
//! `deuce-aes/tests/differential.rs`).

use deuce_crypto::{LineAddr, OtpEngine, SecretKey};
use deuce_rng::{DeuceRng, Rng};

#[test]
fn line_pads_agree_across_engines() {
    let key = SecretKey::from_seed(0x5EED);
    let fast = OtpEngine::new(&key);
    let cached = OtpEngine::new(&key).with_pad_cache(32);
    let reference = OtpEngine::new_reference(&key);
    let mut rng = DeuceRng::seed_from_u64(0x11AE);
    for _ in 0..2000 {
        let mut raw = [0u8; 16];
        rng.fill(&mut raw);
        let addr = LineAddr::new(u64::from_le_bytes(raw[..8].try_into().unwrap()));
        let counter = u64::from_le_bytes(raw[8..].try_into().unwrap()) & ((1 << 48) - 1);
        let expected = reference.line_pad(addr, counter);
        assert_eq!(fast.line_pad(addr, counter), expected, "addr {addr}, counter {counter}");
        assert_eq!(
            cached.line_pad(addr, counter),
            expected,
            "cached engine diverged at addr {addr}, counter {counter}"
        );
    }
}

#[test]
fn block_pads_agree_across_engines() {
    let key = SecretKey::from_seed(0xB10C);
    let fast = OtpEngine::new(&key);
    let reference = OtpEngine::new_reference(&key);
    let mut rng = DeuceRng::seed_from_u64(0x22BE);
    for _ in 0..2000 {
        let mut raw = [0u8; 16];
        rng.fill(&mut raw);
        let addr = LineAddr::new(u64::from_le_bytes(raw[..8].try_into().unwrap()));
        let counter = u64::from_le_bytes(raw[8..].try_into().unwrap()) & ((1 << 48) - 1);
        for block in 0..4 {
            assert_eq!(
                fast.block_pad(addr, block, counter),
                reference.block_pad(addr, block, counter),
                "addr {addr}, counter {counter}, block {block}"
            );
        }
    }
}

/// Boundary values of the 48-bit counter field and the address space
/// must agree too — the randomized sweep is unlikely to land on them.
#[test]
fn edge_inputs_agree_across_engines() {
    let key = SecretKey::from_seed(7);
    let fast = OtpEngine::new(&key);
    let reference = OtpEngine::new_reference(&key);
    for addr in [0u64, 1, u64::MAX] {
        for counter in [0u64, 1, (1 << 48) - 1] {
            let addr = LineAddr::new(addr);
            assert_eq!(fast.line_pad(addr, counter), reference.line_pad(addr, counter));
            for block in 0..4 {
                assert_eq!(
                    fast.block_pad(addr, block, counter),
                    reference.block_pad(addr, block, counter)
                );
            }
        }
    }
}

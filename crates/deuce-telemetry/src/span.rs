//! Aggregated hierarchical span tracing.
//!
//! A span names one region of work — the run loop, a pipeline stage,
//! pad generation, the ECP repair ladder, a checkpoint emission — and
//! accumulates its wall-clock time, invocation count, simulated-time
//! range, and write-index range. Spans are *aggregated*: all
//! invocations of the same `(name, parent)` pair fold into one
//! [`SpanNode`], so memory stays O(distinct spans) at any stream
//! length (a 100M-write run produces the same dozen nodes as a
//! 100-write run).
//!
//! The hierarchy is a tree keyed by name: `begin`/`end` maintain an
//! explicit stack for enclosing spans (the run loop), while
//! [`SpanTrace::attach`] folds a pre-measured child under a named
//! parent (how the pipeline's per-stage timings, pad generation, and
//! the repair ladder report in without threading a context handle
//! through every layer).
//!
//! Two exports:
//!
//! - [`SpanTrace::write_chrome_trace`] emits Chrome trace-event JSON
//!   (load in Perfetto or `chrome://tracing`). Because spans are
//!   aggregated, the timeline is a *flame-graph layout*, not a
//!   chronology: children are laid out sequentially inside their
//!   parent at synthetic start offsets, with their **real** total
//!   durations. Widths are meaningful; x-positions are not.
//! - [`SpanTrace::self_times`] computes each node's self time (total
//!   minus the sum of its children), the basis of `deuce report`'s
//!   top-N table. Self times partition the root's wall time exactly:
//!   summing `self_ns` over every node reproduces the root total.
//!
//! Wall-clock times are inherently nondeterministic; span records must
//! never land in a byte-compared section of any export.

use std::io::{self, Write};
use std::time::Instant;

/// One aggregated span: every invocation of `name` under the same
/// parent, folded together.
#[derive(Debug, Clone)]
pub struct SpanNode {
    /// Span name (e.g. `"run"`, `"stage:scheme"`, `"pad_generation"`).
    pub name: &'static str,
    /// Index of the parent node in [`SpanTrace::nodes`], `None` for a
    /// root.
    pub parent: Option<usize>,
    /// Total wall-clock nanoseconds across all invocations.
    pub wall_ns: u64,
    /// Invocation count.
    pub count: u64,
    /// First and last simulated timestamp (ns) observed while this
    /// span was being recorded, when any write was observed.
    pub sim_ns_range: Option<(f64, f64)>,
    /// First and last 1-based write index observed while this span was
    /// being recorded, when any write was observed.
    pub write_range: Option<(u64, u64)>,
}

/// One row of the self-time table: a span with its exclusive time.
#[derive(Debug, Clone, PartialEq)]
pub struct SelfTime {
    /// Span name.
    pub name: &'static str,
    /// Parent span name, empty for a root.
    pub parent: &'static str,
    /// Total (inclusive) wall nanoseconds.
    pub total_ns: u64,
    /// Exclusive wall nanoseconds: total minus the children's totals.
    pub self_ns: u64,
    /// Invocation count.
    pub count: u64,
    /// Simulated-time range covered, when known.
    pub sim_ns_range: Option<(f64, f64)>,
    /// Write-index range covered, when known.
    pub write_range: Option<(u64, u64)>,
}

/// An open `begin`/`end` frame.
#[derive(Debug, Clone)]
struct Frame {
    node: usize,
    started: Instant,
}

/// The span accumulator one run records into.
#[derive(Debug, Clone, Default)]
pub struct SpanTrace {
    nodes: Vec<SpanNode>,
    stack: Vec<Frame>,
    /// Counted writes observed so far (the 1-based write index).
    write_count: u64,
    /// Last write index / simulated time reported via
    /// [`observe_write`](Self::observe_write); folded into nodes as
    /// spans close or attach.
    cursor: Option<(u64, f64)>,
}

impl SpanTrace {
    /// An empty trace.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The aggregated nodes, in first-seen order.
    #[must_use]
    pub fn nodes(&self) -> &[SpanNode] {
        &self.nodes
    }

    /// Finds or creates the node for `name` under `parent`.
    fn intern(&mut self, name: &'static str, parent: Option<usize>) -> usize {
        if let Some(i) = self
            .nodes
            .iter()
            .position(|n| n.name == name && n.parent == parent)
        {
            return i;
        }
        self.nodes.push(SpanNode {
            name,
            parent,
            wall_ns: 0,
            count: 0,
            sim_ns_range: None,
            write_range: None,
        });
        self.nodes.len() - 1
    }

    /// Finds the most recently created node called `name` (attachment
    /// parents are named, not indexed).
    fn find_named(&self, name: &str) -> Option<usize> {
        self.nodes.iter().rposition(|n| n.name == name)
    }

    fn fold(&mut self, node: usize, wall_ns: u64, count: u64) {
        let cursor = self.cursor;
        let n = &mut self.nodes[node];
        n.wall_ns += wall_ns;
        n.count += count;
        if let Some((write, sim_ns)) = cursor {
            n.write_range = Some(match n.write_range {
                None => (write, write),
                Some((first, _)) => (first, write),
            });
            n.sim_ns_range = Some(match n.sim_ns_range {
                None => (sim_ns, sim_ns),
                Some((first, _)) => (first, sim_ns),
            });
        }
    }

    /// Opens an enclosing span; every subsequent `begin`/`attach`
    /// without an explicit parent nests under it until [`end`](Self::end).
    pub fn begin(&mut self, name: &'static str) {
        let parent = self.stack.last().map(|f| f.node);
        let node = self.intern(name, parent);
        self.stack.push(Frame { node, started: Instant::now() });
    }

    /// Closes the innermost open span, folding its elapsed wall time in.
    pub fn end(&mut self) {
        if let Some(frame) = self.stack.pop() {
            let ns =
                u64::try_from(frame.started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.fold(frame.node, ns, 1);
        }
    }

    /// Folds a pre-measured child span in. `parent` names the parent
    /// node (`None` = the innermost open span, or a root if none is
    /// open); a named parent that was never recorded is created as a
    /// root so the measurement is kept rather than dropped.
    pub fn attach(
        &mut self,
        parent: Option<&'static str>,
        name: &'static str,
        wall_ns: u64,
        count: u64,
    ) {
        let parent = match parent {
            Some(p) => Some(self.find_named(p).unwrap_or_else(|| self.intern(p, None))),
            None => self.stack.last().map(|f| f.node),
        };
        let node = self.intern(name, parent);
        self.fold(node, wall_ns, count);
    }

    /// Notes one counted write (with the simulated time after it), so
    /// closing and attaching spans record the range of the run they
    /// covered.
    pub fn observe_write(&mut self, sim_ns: f64) {
        self.write_count += 1;
        self.cursor = Some((self.write_count, sim_ns));
    }

    /// The self-time table: every node with its exclusive time, in
    /// first-seen (roughly topological) order. Self times partition
    /// each root's total exactly.
    #[must_use]
    pub fn self_times(&self) -> Vec<SelfTime> {
        let mut child_ns = vec![0u64; self.nodes.len()];
        for node in &self.nodes {
            if let Some(p) = node.parent {
                child_ns[p] += node.wall_ns;
            }
        }
        self.nodes
            .iter()
            .zip(&child_ns)
            .map(|(node, &children)| SelfTime {
                name: node.name,
                parent: node.parent.map_or("", |p| self.nodes[p].name),
                total_ns: node.wall_ns,
                self_ns: node.wall_ns.saturating_sub(children),
                count: node.count,
                sim_ns_range: node.sim_ns_range,
                write_range: node.write_range,
            })
            .collect()
    }

    /// Writes Chrome trace-event JSON (the `traceEvents` array format
    /// Perfetto and `chrome://tracing` load). Aggregated spans are laid
    /// out flame-graph style: each child starts where its previous
    /// sibling ended, inside its parent, with its real total duration —
    /// widths are real, positions are synthetic.
    ///
    /// # Errors
    ///
    /// Returns I/O errors from the writer.
    pub fn write_chrome_trace<W: Write>(&self, out: &mut W) -> io::Result<()> {
        writeln!(out, "{{\"displayTimeUnit\":\"ns\",\"traceEvents\":[")?;
        // Synthetic start offsets: children are packed left-to-right
        // inside their parent's start.
        let mut start_ns = vec![0u64; self.nodes.len()];
        let mut next_free: Vec<u64> = vec![0; self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            let base = match node.parent {
                Some(p) => {
                    let s = start_ns[p] + next_free[p];
                    next_free[p] += node.wall_ns;
                    s
                }
                None => 0,
            };
            start_ns[i] = base;
        }
        let selfs = self.self_times();
        for (i, (node, st)) in self.nodes.iter().zip(&selfs).enumerate() {
            let comma = if i + 1 == self.nodes.len() { "" } else { "," };
            let (wf, wl) = node.write_range.unwrap_or((0, 0));
            writeln!(
                out,
                "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\
                 \"ts\":{:.3},\"dur\":{:.3},\"args\":{{\"count\":{},\
                 \"self_ns\":{},\"write_first\":{},\"write_last\":{}}}}}{}",
                node.name,
                start_ns[i] as f64 / 1000.0,
                node.wall_ns as f64 / 1000.0,
                node.count,
                st.self_ns,
                wf,
                wl,
                comma,
            )?;
        }
        writeln!(out, "]}}")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attach_aggregates_and_partitions_self_time() {
        let mut t = SpanTrace::new();
        t.begin("run");
        t.attach(None, "stage:scheme", 700, 1);
        t.attach(None, "stage:scheme", 300, 1);
        t.attach(None, "stage:wear", 500, 2);
        t.attach(Some("stage:scheme"), "pad_generation", 400, 4);
        for i in 0..42 {
            t.observe_write(150.0 * (i + 1) as f64);
        }
        t.end();

        let selfs = t.self_times();
        let by_name = |n: &str| selfs.iter().find(|s| s.name == n).unwrap();
        let run = by_name("run");
        let scheme = by_name("stage:scheme");
        assert_eq!(scheme.total_ns, 1000, "invocations aggregate");
        assert_eq!(scheme.count, 2);
        assert_eq!(scheme.self_ns, 600, "pad_generation is nested inside");
        assert_eq!(by_name("pad_generation").parent, "stage:scheme");
        assert_eq!(run.write_range, Some((42, 42)), "run closed after write 42");
        // Self times partition the root exactly.
        let total_self: u64 = selfs.iter().map(|s| s.self_ns).sum();
        assert_eq!(total_self, run.total_ns);
    }

    #[test]
    fn begin_end_measures_and_nests() {
        let mut t = SpanTrace::new();
        t.begin("run");
        t.begin("inner");
        std::thread::sleep(std::time::Duration::from_millis(1));
        t.end();
        t.end();
        let selfs = t.self_times();
        let run = selfs.iter().find(|s| s.name == "run").unwrap();
        let inner = selfs.iter().find(|s| s.name == "inner").unwrap();
        assert_eq!(inner.parent, "run");
        assert!(inner.total_ns >= 1_000_000, "slept a millisecond");
        assert!(run.total_ns >= inner.total_ns, "parent encloses child");
    }

    #[test]
    fn attach_to_unknown_parent_creates_a_root() {
        let mut t = SpanTrace::new();
        t.attach(Some("never_opened"), "orphan", 10, 1);
        let selfs = t.self_times();
        assert_eq!(selfs.len(), 2);
        assert_eq!(selfs[0].name, "never_opened");
        assert_eq!(selfs[1].parent, "never_opened");
    }

    #[test]
    fn chrome_trace_is_flat_json_with_real_durations() {
        let mut t = SpanTrace::new();
        t.begin("run");
        t.attach(None, "stage:counter", 250, 1);
        t.attach(None, "stage:scheme", 750, 1);
        t.end();
        let mut out = Vec::new();
        t.write_chrome_trace(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("{\"displayTimeUnit\":\"ns\",\"traceEvents\":["));
        assert!(text.trim_end().ends_with("]}"));
        assert!(text.contains("\"name\":\"stage:scheme\""));
        assert!(text.contains("\"dur\":0.750"), "{text}");
        // Siblings pack sequentially: scheme starts where counter ends.
        assert!(text.contains("\"ts\":0.250,\"dur\":0.750"), "{text}");
        // No trailing comma before the closing bracket.
        assert!(!text.contains(",\n]"));
    }
}
